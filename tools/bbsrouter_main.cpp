// bbsrouter — the sharded-cluster front door.
//
// Fronts N bbsmined shards (a transaction-range partition of one logical
// database) behind the same wire protocol the daemon speaks, so unmodified
// clients (`bbsmine client`, bbsbench) talk to the fleet exactly as they
// talk to one daemon. COUNT fans out to the shards the Bloofi-style
// routing tree cannot rule out and sums in shard order; MINE runs the
// two-round global-τ candidate exchange; both are bit-identical to a
// single node over the concatenated database (docs/CLUSTER.md).
//
// Examples:
//   bbsrouter --shards 127.0.0.1:7071,127.0.0.1:7072 --port 7070
//   bbsrouter --shard-map cluster.shards --port 0 --hedge-ms 50
//
// SIGTERM / SIGINT drain gracefully: stop accepting, finish in-flight
// requests, write the service report (--report-out), exit 0.

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <iostream>
#include <map>
#include <string>
#include <thread>

#include "cluster/router.h"
#include "cluster/shard_map.h"
#include "obs/json.h"
#include "service/server.h"

using namespace bbsmine;

namespace {

std::atomic<bool> g_stop{false};

void HandleSignal(int) { g_stop.store(true, std::memory_order_release); }

/// Minimal flag parser: accepts `--flag value` and `--flag=value`;
/// bare flags map to "true". (Mirrors the bbsmined parser.)
class Args {
 public:
  Args(int argc, char** argv, int first) {
    for (int i = first; i < argc; ++i) {
      std::string arg = argv[i];
      if (arg.rfind("--", 0) != 0) {
        std::cerr << "unexpected argument: " << arg << "\n";
        std::exit(2);
      }
      std::string key = arg.substr(2);
      if (size_t eq = key.find('='); eq != std::string::npos) {
        values_[key.substr(0, eq)] = key.substr(eq + 1);
      } else if (i + 1 < argc && std::strncmp(argv[i + 1], "--", 2) != 0) {
        values_[key] = argv[++i];
      } else {
        values_[key] = "true";
      }
    }
  }

  bool Has(const std::string& key) const { return values_.count(key) != 0; }

  std::string GetString(const std::string& key,
                        const std::string& fallback = "") const {
    auto it = values_.find(key);
    return it == values_.end() ? fallback : it->second;
  }

  uint64_t GetUint(const std::string& key, uint64_t fallback) const {
    auto it = values_.find(key);
    return it == values_.end() ? fallback : std::strtoull(it->second.c_str(),
                                                          nullptr, 10);
  }

  double GetDouble(const std::string& key, double fallback) const {
    auto it = values_.find(key);
    return it == values_.end() ? fallback
                               : std::strtod(it->second.c_str(), nullptr);
  }

 private:
  std::map<std::string, std::string> values_;
};

[[noreturn]] void Die(const Status& status) {
  std::cerr << "bbsrouter: " << status.ToString() << "\n";
  std::exit(1);
}

void Usage() {
  std::cerr <<
      "usage: bbsrouter (--shards LIST | --shard-map FILE) [--flag value ...]\n"
      "  --shards H:P[/H:P],...  comma-separated shard endpoints, in\n"
      "                      transaction-range order (shard 0 holds the\n"
      "                      first range; INSERTs route to the last). An\n"
      "                      optional /host:port names the shard's warm\n"
      "                      replica (a bbsmined --follow of the primary);\n"
      "                      the router promotes it when the primary dies\n"
      "  --shard-map FILE    one host:port[/host:port] per line ('#'\n"
      "                      comments); same ordering contract\n"
      "  --host A.B.C.D      bind address (default 127.0.0.1)\n"
      "  --port N            TCP port; 0 = ephemeral (default 7070)\n"
      "  --fanout-deadline-ms N  per-leg downstream budget (default 5000)\n"
      "  --hedge-ms N        re-issue an idempotent leg on a fresh\n"
      "                      connection after N ms of silence (default 0 =\n"
      "                      no hedging)\n"
      "  --retries N         backpressure retries per leg (default 3)\n"
      "  --backoff-ms N      base backpressure backoff (default 100)\n"
      "  --max-backoff-ms N  backoff cap (default 5000)\n"
      "  --no-prune          disable Bloofi pruning (fan out everywhere;\n"
      "                      answers are identical, just slower)\n"
      "  --branching N       Bloofi tree fan-in (default 4)\n"
      "  --require-all       answer Unavailable instead of degraded when a\n"
      "                      shard is unreachable\n"
      "  --minsup F          default MINE minimum support (default 0.003)\n"
      "  --mine-top N        default MINE result cap (default 10)\n"
      "  --mine-round1-top N round-1 'top' sent to shards; must exceed any\n"
      "                      shard's local frequent-set size (default 5e7)\n"
      "  --mine-snapshot-retries N  extra MINE exchange passes when\n"
      "                      concurrent INSERTs land between the rounds\n"
      "                      (default 2; exhaustion is flagged, not fatal)\n"
      "  --connect-retries N startup handshake attempts per shard\n"
      "                      (default 40, spaced --connect-backoff-ms)\n"
      "  --connect-backoff-ms N  handshake retry spacing (default 250)\n"
      "  --probe-interval-ms N  background re-probe cadence for down\n"
      "                      shards; drives failover and rejoin without\n"
      "                      client traffic (default 1000; 0 disables)\n"
      "  --probe-timeout-ms N  per-probe SHARDINFO budget (default 1000)\n"
      "  --failover-probe-failures N  consecutive silent (timed-out)\n"
      "                      probes of a primary before promoting its\n"
      "                      replica; transport failures (connection\n"
      "                      refused/reset) fail over immediately\n"
      "                      (default 3)\n"
      "  --report-out FILE   write the service report on shutdown\n"
      "  --stats-window-s N  windowed-metrics rotation interval, seconds\n"
      "                      (default 10; 12 slots are retained)\n";
}

}  // namespace

int main(int argc, char** argv) {
  if (argc > 1 && (std::strcmp(argv[1], "--help") == 0 ||
                   std::strcmp(argv[1], "-h") == 0)) {
    Usage();
    return 0;
  }
  Args args(argc, argv, 1);

  cluster::ShardMap map;
  const std::string shards_flag = args.GetString("shards");
  const std::string map_flag = args.GetString("shard-map");
  if (shards_flag.empty() == map_flag.empty()) {
    std::cerr << "bbsrouter: exactly one of --shards or --shard-map is "
                 "required\n";
    Usage();
    return 2;
  }
  if (!shards_flag.empty()) {
    auto parsed = cluster::ParseShardSpec(shards_flag);
    if (!parsed.ok()) Die(parsed.status());
    map = std::move(*parsed);
  } else {
    auto loaded = cluster::LoadShardMapFile(map_flag);
    if (!loaded.ok()) Die(loaded.status());
    map = std::move(*loaded);
  }

  const uint64_t stats_window_s = args.GetUint("stats-window-s", 10);
  if (stats_window_s == 0) {
    std::cerr << "bbsrouter: --stats-window-s must be positive\n";
    return 2;
  }

  cluster::RouterOptions options;
  options.retry.retries = static_cast<uint32_t>(args.GetUint("retries", 3));
  options.retry.backoff_ms =
      static_cast<uint32_t>(args.GetUint("backoff-ms", 100));
  options.retry.max_backoff_ms =
      static_cast<uint32_t>(args.GetUint("max-backoff-ms", 5000));
  options.fanout_deadline_ms =
      static_cast<int>(args.GetUint("fanout-deadline-ms", 5000));
  options.hedge_ms = static_cast<int>(args.GetUint("hedge-ms", 0));
  options.prune = !args.Has("no-prune");
  options.branching = args.GetUint("branching", 4);
  options.allow_degraded = !args.Has("require-all");
  options.default_min_support = args.GetDouble("minsup", 0.003);
  options.mine_top = args.GetUint("mine-top", 10);
  options.mine_round1_top = args.GetUint("mine-round1-top", 50'000'000);
  options.mine_snapshot_retries =
      static_cast<uint32_t>(args.GetUint("mine-snapshot-retries", 2));
  options.connect_retries =
      static_cast<uint32_t>(args.GetUint("connect-retries", 40));
  options.connect_backoff_ms =
      static_cast<uint32_t>(args.GetUint("connect-backoff-ms", 250));
  options.probe_interval_ms =
      static_cast<uint32_t>(args.GetUint("probe-interval-ms", 1000));
  options.probe_timeout_ms =
      static_cast<int>(args.GetUint("probe-timeout-ms", 1000));
  options.failover_probe_failures =
      static_cast<uint32_t>(args.GetUint("failover-probe-failures", 3));
  options.stats_windows.interval_us = stats_window_s * 1'000'000;

  const size_t num_shards = map.size();
  cluster::RouterService router(std::move(map), options);
  if (Status initialized = router.Init(); !initialized.ok()) Die(initialized);

  const uint64_t port = args.GetUint("port", 7070);
  if (port > 65535) {
    std::cerr << "bbsrouter: --port must be in [0, 65535], got " << port
              << "\n";
    return 2;
  }
  service::SocketServerOptions server_options;
  server_options.host = args.GetString("host", "127.0.0.1");
  server_options.port = static_cast<uint16_t>(port);
  service::SocketServer server(&router, server_options);
  if (Status started = server.Start(); !started.ok()) Die(started);

  std::signal(SIGTERM, HandleSignal);
  std::signal(SIGINT, HandleSignal);

  // The cluster smoke script parses this line to learn the ephemeral port.
  std::printf(
      "bbsrouter listening on %s:%u (%zu shards, %llu up, %llu "
      "transactions)\n",
      server_options.host.c_str(), server.port(), num_shards,
      static_cast<unsigned long long>(router.shards_up()),
      static_cast<unsigned long long>(router.TotalTransactions()));
  std::fflush(stdout);

  while (!g_stop.load(std::memory_order_acquire)) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }

  std::printf("bbsrouter draining...\n");
  std::fflush(stdout);
  server.Stop();
  router.Drain();
  if (std::string path = args.GetString("report-out"); !path.empty()) {
    obs::JsonValue report = router.BuildStatsReport();
    if (Status written = obs::WriteJsonFile(report, path); !written.ok()) {
      std::cerr << "bbsrouter: cannot write report: " << written.ToString()
                << "\n";
      return 1;
    }
    std::printf("bbsrouter wrote service report to %s\n", path.c_str());
  }
  std::printf("bbsrouter exited cleanly (%llu/%zu shards up, %llu "
              "transactions)\n",
              static_cast<unsigned long long>(router.shards_up()), num_shards,
              static_cast<unsigned long long>(router.TotalTransactions()));
  return 0;
}
