// bbsbench — open-loop traffic generator and SLO harness for bbsmined.
//
// Replays a deterministic, Zipf-skewed request stream (datagen/traffic_gen)
// against a running daemon over many persistent connections, measuring
// every request's latency from its *arrival-process-scheduled* send time.
// That scheduling discipline is what avoids coordinated omission: a stalled
// server delays subsequent sends on the same connection, and those delays
// land in the recorded latencies instead of silently thinning the load.
// Requests are never retried at the bench level — a retry would hide the
// very tail the harness exists to measure. A timed-out or failed request
// still contributes a latency sample (its elapsed time at detection, by
// construction >= the timeout), so the percentiles describe the user
// experience, not just the lucky requests.
//
// Client-side latencies are held exactly in fixed-capacity reservoirs
// (obs::LatencyReservoir) per verb; daemon-side latencies are obtained by
// diffing STATS `latency_us.*` log2 histograms before/after the run and
// pushing the diff through obs::PercentileFromLog2Buckets — the same
// estimator the docs describe — so client and daemon views of p50 can be
// cross-checked bucket-for-bucket.
//
// Examples:
//   bbsbench --port 7071 --rate 500 --duration-s 10
//   bbsbench --port 7071 --arrival bursty --mix-insert 40 --mix-count 60
//   bbsbench --port 7071 --rate-steps 5 --rate-start 100 --rate-factor 2
//            --slo-p99-ms 50 --slo-verb count      (saturation search)
//   bbsbench --dry-run --dump-stream stream.txt    # no daemon needed
//
// Writes a schema-versioned BENCH_service.json (see docs/BENCHMARKS.md).

#include <algorithm>
#include <cctype>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "datagen/traffic_gen.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "service/wire.h"
#include "util/socket.h"
#include "util/status.h"

using namespace bbsmine;

namespace {

/// Minimal flag parser: accepts `--flag value` and `--flag=value`;
/// bare flags map to "true". (Mirrors the bbsmined parser.)
class Args {
 public:
  Args(int argc, char** argv, int first) {
    for (int i = first; i < argc; ++i) {
      std::string arg = argv[i];
      if (arg.rfind("--", 0) != 0) {
        std::cerr << "unexpected argument: " << arg << "\n";
        std::exit(2);
      }
      std::string key = arg.substr(2);
      if (size_t eq = key.find('='); eq != std::string::npos) {
        values_[key.substr(0, eq)] = key.substr(eq + 1);
      } else if (i + 1 < argc && std::strncmp(argv[i + 1], "--", 2) != 0) {
        values_[key] = argv[++i];
      } else {
        values_[key] = "true";
      }
    }
  }

  bool Has(const std::string& key) const { return values_.count(key) != 0; }

  std::string GetString(const std::string& key,
                        const std::string& fallback = "") const {
    auto it = values_.find(key);
    return it == values_.end() ? fallback : it->second;
  }

  uint64_t GetUint(const std::string& key, uint64_t fallback) const {
    auto it = values_.find(key);
    return it == values_.end() ? fallback : std::strtoull(it->second.c_str(),
                                                          nullptr, 10);
  }

  double GetDouble(const std::string& key, double fallback) const {
    auto it = values_.find(key);
    return it == values_.end() ? fallback
                               : std::strtod(it->second.c_str(), nullptr);
  }

 private:
  std::map<std::string, std::string> values_;
};

void Usage() {
  std::cerr <<
      "usage: bbsbench [--flag value | --flag=value ...]\n"
      "target:\n"
      "  --host A.B.C.D      daemon address (default 127.0.0.1)\n"
      "  --port N            daemon port (required unless --dry-run)\n"
      "  --target H:P        daemon or bbsrouter endpoint (overrides\n"
      "                      --host/--port); against a router the report\n"
      "                      gains a \"cluster\" section with per-shard\n"
      "                      fan-out deltas\n"
      "  --connections N     concurrent connections (default 32)\n"
      "  --timeout-ms N      per-request response timeout (default 5000)\n"
      "workload (see docs/BENCHMARKS.md):\n"
      "  --seed N            request-stream seed (default 42)\n"
      "  --rate R            offered load, requests/s (default 200)\n"
      "  --duration-s S      stream duration (default 10)\n"
      "  --arrival KIND      poisson | bursty (default poisson)\n"
      "  --burst-on-ms M --burst-off-ms M   bursty on/off windows\n"
      "  --mix-ping W --mix-count W --mix-insert W --mix-mine W\n"
      "  --mix-stats W       verb weights (default 0/70/20/5/5)\n"
      "  --items N           item universe size (default 1000)\n"
      "  --zipf-s S          item skew exponent; 0 = uniform (default 0.99)\n"
      "  --query-len N       items per COUNT (default 2)\n"
      "  --insert-len M      mean INSERT transaction size (default 10)\n"
      "  --minsup F --top N  MINE parameters (default 0.1 / 10)\n"
      "saturation search (off unless --rate-steps > 0):\n"
      "  --rate-steps N      stepped-rate points to probe\n"
      "  --rate-start R      first step's rate (default --rate)\n"
      "  --rate-factor F     rate multiplier per step (default 2.0)\n"
      "  --step-duration-s S duration of each step (default 5)\n"
      "  --slo-p99-ms M      the SLO: client p99 <= M ms (default 50)\n"
      "  --slo-verb VERB     verb the SLO is judged on (default count)\n"
      "output:\n"
      "  --out FILE          report path (default BENCH_service.json)\n"
      "  --reservoir N       latency samples kept per verb (default 65536)\n"
      "  --trace-ids         tag every request with a deterministic\n"
      "                      trace_id (b<seed>-<stream index>) so daemon\n"
      "                      traces / slow-log lines correlate to the\n"
      "                      generated stream\n"
      "  --dry-run           generate the stream only; no daemon needed\n"
      "  --dump-stream FILE  write the request stream as text (for\n"
      "                      reproducibility diffs)\n";
}

constexpr size_t kNumVerbs = 5;
constexpr TrafficVerb kVerbs[kNumVerbs] = {
    TrafficVerb::kPing, TrafficVerb::kCount, TrafficVerb::kInsert,
    TrafficVerb::kMine, TrafficVerb::kStats};

/// Aggregated per-verb outcome of one traffic run. The reservoir is
/// shared across worker threads under `mu` — contention is negligible
/// next to a network round trip.
struct VerbStats {
  explicit VerbStats(size_t reservoir_capacity, uint64_t seed)
      : reservoir(reservoir_capacity, seed) {}
  std::mutex mu;
  obs::LatencyReservoir reservoir;
  uint64_t sent = 0;
  uint64_t ok = 0;
  uint64_t errors = 0;         // daemon answered with ok:false
  uint64_t timeouts = 0;       // idempotent verb, no response in time
  uint64_t indeterminate = 0;  // INSERT sent, response timed out
  uint64_t transport = 0;      // connect/send/read hard failure
};

struct RunResult {
  std::vector<std::unique_ptr<VerbStats>> verbs;  // indexed by enum value
  double elapsed_s = 0;
  uint64_t scheduled = 0;
  obs::JsonValue daemon_before;  // STATS report before the run
  obs::JsonValue daemon_after;   // STATS report after the run
  bool daemon_stats_ok = false;
};

obs::JsonValue BuildWireRequest(const TrafficRequest& request,
                                const TrafficSpec& spec) {
  obs::JsonValue wire = obs::JsonValue::Object();
  wire.Set("verb", obs::JsonValue::String(TrafficVerbName(request.verb)));
  switch (request.verb) {
    case TrafficVerb::kCount:
    case TrafficVerb::kInsert:
      wire.Set("items", service::ItemsToJson(request.items));
      break;
    case TrafficVerb::kMine:
      wire.Set("minsup", obs::JsonValue::Double(spec.mine_minsup));
      wire.Set("top", obs::JsonValue::Uint(spec.mine_top));
      break;
    case TrafficVerb::kPing:
    case TrafficVerb::kStats:
      break;
  }
  return wire;
}

/// One out-of-band request (used for the STATS snapshots around a run).
Result<obs::JsonValue> CallOnce(const std::string& host, uint16_t port,
                                const obs::JsonValue& request,
                                int timeout_ms) {
  Result<OwnedFd> fd = ConnectTcp(host, port);
  if (!fd.ok()) return fd.status();
  BBSMINE_RETURN_IF_ERROR(service::WriteFrame(fd->get(), request));
  return service::ReadFrame(fd->get(), timeout_ms);
}

/// Replays the worker's round-robin share of the stream over one
/// persistent connection, reconnecting after timeouts (a late response
/// would otherwise be mis-paired with the next request).
void Worker(const std::vector<TrafficRequest>& stream, size_t worker_id,
            size_t num_workers, const TrafficSpec& spec,
            const std::string& host, uint16_t port, int timeout_ms,
            std::chrono::steady_clock::time_point start,
            const std::string* trace_prefix, RunResult* result) {
  OwnedFd fd;
  for (size_t i = worker_id; i < stream.size(); i += num_workers) {
    const TrafficRequest& request = stream[i];
    const auto scheduled =
        start + std::chrono::microseconds(request.scheduled_us);
    std::this_thread::sleep_until(scheduled);

    VerbStats& stats = *result->verbs[static_cast<size_t>(request.verb)];
    obs::JsonValue wire = BuildWireRequest(request, spec);
    if (trace_prefix != nullptr) {
      // Deterministic per-request id: "b<seed>-<stream index>". The index
      // is the position in the generated stream, so a slow-log line or a
      // trace span names exactly one request of the replayed workload.
      wire.Set("trace_id",
               obs::JsonValue::String(*trace_prefix + std::to_string(i)));
    }

    enum class Outcome { kOk, kError, kTimeout, kTransport } outcome;
    if (!fd.valid()) {
      Result<OwnedFd> connected = ConnectTcp(host, port);
      if (connected.ok()) fd = std::move(*connected);
    }
    if (!fd.valid()) {
      outcome = Outcome::kTransport;
    } else if (Status sent = service::WriteFrame(fd.get(), wire);
               !sent.ok()) {
      outcome = Outcome::kTransport;
      fd = OwnedFd();
    } else {
      Result<obs::JsonValue> response =
          service::ReadFrame(fd.get(), timeout_ms);
      if (response.ok()) {
        outcome = response->Has("ok") && response->at("ok").AsBool()
                      ? Outcome::kOk
                      : Outcome::kError;
      } else if (response.status().code() == StatusCode::kUnavailable) {
        outcome = Outcome::kTimeout;
        fd = OwnedFd();  // a late response would desynchronize the stream
      } else {
        outcome = Outcome::kTransport;
        fd = OwnedFd();
      }
    }

    // Latency from the *scheduled* send time: queueing delay behind a slow
    // server is part of the measurement, not omitted from it.
    uint64_t latency_us = static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - scheduled)
            .count());
    std::lock_guard<std::mutex> lock(stats.mu);
    ++stats.sent;
    stats.reservoir.Add(latency_us);
    switch (outcome) {
      case Outcome::kOk:
        ++stats.ok;
        break;
      case Outcome::kError:
        ++stats.errors;
        break;
      case Outcome::kTimeout:
        if (request.verb == TrafficVerb::kInsert) {
          ++stats.indeterminate;  // sent but unacknowledged: may be applied
        } else {
          ++stats.timeouts;
        }
        break;
      case Outcome::kTransport:
        ++stats.transport;
        break;
    }
  }
}

/// Extracts `report.metrics.latency_us.<verb>` from a STATS response into
/// MetricSample bucket layout ([0] = overflow, [d] = log2 bucket d).
/// Missing histograms (verb never hit) come back all-zero.
std::vector<uint64_t> DaemonLatencyBuckets(const obs::JsonValue& stats_report,
                                           const std::string& verb_lower) {
  std::vector<uint64_t> buckets(obs::DepthHistogram::kMaxTrackedDepth + 1, 0);
  if (!stats_report.Has("metrics")) return buckets;
  const obs::JsonValue& metrics = stats_report.at("metrics");
  if (!metrics.Has("latency_us")) return buckets;
  const obs::JsonValue& section = metrics.at("latency_us");
  if (!section.Has(verb_lower)) return buckets;
  const obs::JsonValue& h = section.at(verb_lower);
  buckets[0] = h.at("overflow").AsUint();
  const obs::JsonValue& by_depth = h.at("by_depth");
  for (size_t d = 0; d < by_depth.size() && d + 1 < buckets.size(); ++d) {
    buckets[d + 1] = by_depth.at(d).AsUint();
  }
  return buckets;
}

/// Points at `report.window.last_60s.latency_us.<verb>` in a STATS
/// response — the daemon's recent-window histogram, already annotated with
/// p50/p95/p99 — or nullptr when the daemon predates windowed metrics or
/// the verb never appears in the recent window.
const obs::JsonValue* DaemonRecentLatency(const obs::JsonValue& stats_report,
                                          const std::string& verb_lower) {
  const obs::JsonValue* node = &stats_report;
  for (const char* key : {"window", "last_60s", "latency_us"}) {
    if (node->kind() != obs::JsonValue::Kind::kObject || !node->Has(key)) {
      return nullptr;
    }
    node = &node->at(key);
  }
  if (node->kind() != obs::JsonValue::Kind::kObject ||
      !node->Has(verb_lower)) {
    return nullptr;
  }
  return &node->at(verb_lower);
}

std::string LowerVerb(TrafficVerb verb) {
  std::string name = TrafficVerbName(verb);
  std::transform(name.begin(), name.end(), name.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return name;
}

/// Runs one full traffic stream against the daemon and collects per-verb
/// client stats plus daemon STATS snapshots bracketing the run.
Result<RunResult> RunTraffic(const TrafficSpec& spec, const std::string& host,
                             uint16_t port, size_t connections,
                             int timeout_ms, size_t reservoir_capacity,
                             bool trace_ids) {
  Result<std::vector<TrafficRequest>> stream = GenerateTraffic(spec);
  if (!stream.ok()) return stream.status();

  RunResult result;
  result.scheduled = stream->size();
  for (size_t v = 0; v < kNumVerbs; ++v) {
    result.verbs.push_back(
        std::make_unique<VerbStats>(reservoir_capacity, spec.seed + v));
  }

  obs::JsonValue stats_request = obs::JsonValue::Object();
  stats_request.Set("verb", obs::JsonValue::String("STATS"));
  if (Result<obs::JsonValue> before =
          CallOnce(host, port, stats_request, timeout_ms);
      before.ok() && before->Has("report")) {
    result.daemon_before = before->at("report");
    result.daemon_stats_ok = true;
  }

  size_t num_workers = std::max<size_t>(1, std::min(connections,
                                                    stream->size()));
  // Outlives the workers: RunTraffic joins them before returning.
  const std::string trace_prefix = "b" + std::to_string(spec.seed) + "-";
  auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> workers;
  workers.reserve(num_workers);
  for (size_t w = 0; w < num_workers; ++w) {
    workers.emplace_back(Worker, std::cref(*stream), w, num_workers,
                         std::cref(spec), std::cref(host), port, timeout_ms,
                         start, trace_ids ? &trace_prefix : nullptr, &result);
  }
  for (std::thread& t : workers) t.join();
  result.elapsed_s =
      std::chrono::duration_cast<std::chrono::duration<double>>(
          std::chrono::steady_clock::now() - start)
          .count();

  if (result.daemon_stats_ok) {
    Result<obs::JsonValue> after =
        CallOnce(host, port, stats_request, timeout_ms);
    if (after.ok() && after->Has("report")) {
      result.daemon_after = after->at("report");
    } else {
      result.daemon_stats_ok = false;
    }
  }
  return result;
}

obs::JsonValue MixJson(const TrafficMix& mix) {
  obs::JsonValue j = obs::JsonValue::Object();
  j.Set("ping", obs::JsonValue::Double(mix.ping));
  j.Set("count", obs::JsonValue::Double(mix.count));
  j.Set("insert", obs::JsonValue::Double(mix.insert));
  j.Set("mine", obs::JsonValue::Double(mix.mine));
  j.Set("stats", obs::JsonValue::Double(mix.stats));
  return j;
}

obs::JsonValue ConfigJson(const TrafficSpec& spec, size_t connections,
                          int timeout_ms, bool trace_ids) {
  obs::JsonValue config = obs::JsonValue::Object();
  config.Set("seed", obs::JsonValue::Uint(spec.seed));
  config.Set("rate_rps", obs::JsonValue::Double(spec.rate_rps));
  config.Set("duration_s", obs::JsonValue::Double(spec.duration_s));
  config.Set("arrival", obs::JsonValue::String(
                            spec.arrival == ArrivalProcess::kBursty
                                ? "bursty"
                                : "poisson"));
  if (spec.arrival == ArrivalProcess::kBursty) {
    config.Set("burst_on_ms", obs::JsonValue::Double(spec.burst_on_ms));
    config.Set("burst_off_ms", obs::JsonValue::Double(spec.burst_off_ms));
  }
  config.Set("mix", MixJson(spec.mix));
  config.Set("item_universe", obs::JsonValue::Uint(spec.item_universe));
  config.Set("zipf_s", obs::JsonValue::Double(spec.zipf_s));
  config.Set("query_len", obs::JsonValue::Uint(spec.query_len));
  config.Set("insert_len_mean", obs::JsonValue::Double(spec.insert_len_mean));
  config.Set("mine_minsup", obs::JsonValue::Double(spec.mine_minsup));
  config.Set("mine_top", obs::JsonValue::Uint(spec.mine_top));
  config.Set("connections", obs::JsonValue::Uint(connections));
  config.Set("timeout_ms", obs::JsonValue::Int(timeout_ms));
  config.Set("trace_ids", obs::JsonValue::Bool(trace_ids));
  return config;
}

/// Renders one verb's client + daemon view. `daemon_diff` is the
/// after-minus-before daemon histogram (absent when STATS failed);
/// `recent` is the daemon's `window.last_60s` histogram for the verb
/// (absent when the daemon predates windowed metrics).
obs::JsonValue VerbJson(VerbStats& stats,
                        const std::vector<uint64_t>* daemon_diff,
                        const obs::JsonValue* recent) {
  obs::JsonValue v = obs::JsonValue::Object();
  v.Set("sent", obs::JsonValue::Uint(stats.sent));
  v.Set("ok", obs::JsonValue::Uint(stats.ok));
  v.Set("errors", obs::JsonValue::Uint(stats.errors));
  v.Set("timeouts", obs::JsonValue::Uint(stats.timeouts));
  v.Set("indeterminate", obs::JsonValue::Uint(stats.indeterminate));
  v.Set("transport_failures", obs::JsonValue::Uint(stats.transport));

  obs::JsonValue latency = obs::JsonValue::Object();
  double client_p50 = stats.reservoir.Quantile(0.50);
  latency.Set("p50", obs::JsonValue::Double(client_p50));
  latency.Set("p95", obs::JsonValue::Double(stats.reservoir.Quantile(0.95)));
  latency.Set("p99", obs::JsonValue::Double(stats.reservoir.Quantile(0.99)));
  latency.Set("max", obs::JsonValue::Uint(stats.reservoir.max()));
  latency.Set("samples", obs::JsonValue::Uint(
                             std::min<uint64_t>(stats.reservoir.count(),
                                                stats.sent)));
  v.Set("latency_us", std::move(latency));

  if (daemon_diff != nullptr) {
    uint64_t total = 0;
    for (uint64_t c : *daemon_diff) total += c;
    obs::JsonValue daemon = obs::JsonValue::Object();
    double daemon_p50 = obs::PercentileFromLog2Buckets(*daemon_diff, 0.50);
    daemon.Set("p50", obs::JsonValue::Double(daemon_p50));
    daemon.Set("p95", obs::JsonValue::Double(
                          obs::PercentileFromLog2Buckets(*daemon_diff, 0.95)));
    daemon.Set("p99", obs::JsonValue::Double(
                          obs::PercentileFromLog2Buckets(*daemon_diff, 0.99)));
    daemon.Set("total", obs::JsonValue::Uint(total));
    v.Set("daemon_latency_us", std::move(daemon));
    if (total > 0 && stats.sent > 0) {
      // How far apart the two views land in log2 buckets. Client latency
      // includes the transport and any send-queue wait, so a small
      // positive delta is expected for sub-millisecond verbs; service-
      // dominated verbs (MINE) should agree within one bucket.
      int client_bucket = static_cast<int>(obs::Log2Bucket(
          static_cast<uint64_t>(std::max(0.0, client_p50))));
      int daemon_bucket = static_cast<int>(obs::Log2Bucket(
          static_cast<uint64_t>(std::max(0.0, daemon_p50))));
      v.Set("p50_bucket_delta",
            obs::JsonValue::Int(client_bucket - daemon_bucket));
    }
  }

  if (recent != nullptr && recent->Has("total") &&
      recent->at("total").AsUint() > 0) {
    obs::JsonValue rec = obs::JsonValue::Object();
    double recent_p50 =
        recent->Has("p50") ? recent->at("p50").AsDouble() : 0.0;
    rec.Set("p50", obs::JsonValue::Double(recent_p50));
    if (recent->Has("p95")) {
      rec.Set("p95", obs::JsonValue::Double(recent->at("p95").AsDouble()));
    }
    if (recent->Has("p99")) {
      rec.Set("p99", obs::JsonValue::Double(recent->at("p99").AsDouble()));
    }
    rec.Set("total", obs::JsonValue::Uint(recent->at("total").AsUint()));
    v.Set("daemon_recent_latency_us", std::move(rec));
    if (stats.sent > 0 && recent_p50 > 0) {
      // The recent window covers the whole run when the run is shorter
      // than the daemon's lookback, so for a freshly started daemon the
      // client reservoir p50 and the windowed p50 should land in the
      // same (or adjacent) log2 bucket — bench_smoke asserts exactly
      // that.
      int client_bucket = static_cast<int>(obs::Log2Bucket(
          static_cast<uint64_t>(std::max(0.0, client_p50))));
      int recent_bucket = static_cast<int>(
          obs::Log2Bucket(static_cast<uint64_t>(recent_p50)));
      v.Set("recent_p50_bucket_delta",
            obs::JsonValue::Int(client_bucket - recent_bucket));
    }
  }
  return v;
}

/// A counter delta between two report "cluster" sections (0 when absent).
uint64_t ClusterCounterDelta(const obs::JsonValue& before,
                             const obs::JsonValue& after,
                             const std::string& key) {
  uint64_t b = before.Has(key) ? before.at(key).AsUint() : 0;
  uint64_t a = after.Has(key) ? after.at(key).AsUint() : 0;
  return a - std::min(a, b);
}

/// The report's "cluster" section: present only when the target's STATS
/// reports carry one (a bbsrouter, or a cluster-aware daemon). Counters
/// are after-minus-before deltas, so the section describes this run's
/// fan-out behavior; per-shard rows (router only) carry the same deltas
/// broken down by shard.
obs::JsonValue BenchClusterJson(const RunResult& run) {
  if (!run.daemon_stats_ok || !run.daemon_after.Has("cluster")) {
    return obs::JsonValue::Null();
  }
  const obs::JsonValue& before = run.daemon_before.at("cluster");
  const obs::JsonValue& after = run.daemon_after.at("cluster");
  obs::JsonValue section = obs::JsonValue::Object();
  if (after.Has("role")) {
    section.Set("role", obs::JsonValue::String(after.at("role").AsString()));
  }
  if (after.Has("shards_total")) {
    section.Set("shards_total",
                obs::JsonValue::Uint(after.at("shards_total").AsUint()));
  }
  if (after.Has("shards_up")) {
    section.Set("shards_up",
                obs::JsonValue::Uint(after.at("shards_up").AsUint()));
  }
  for (const char* key : {"pruned_shard_queries", "hedged_requests",
                          "degraded_responses", "shard_errors"}) {
    section.Set(key,
                obs::JsonValue::Uint(ClusterCounterDelta(before, after, key)));
  }
  if (after.Has("shards") &&
      after.at("shards").kind() == obs::JsonValue::Kind::kArray) {
    const obs::JsonValue& shards_after = after.at("shards");
    const obs::JsonValue* shards_before =
        before.Has("shards") &&
                before.at("shards").kind() == obs::JsonValue::Kind::kArray
            ? &before.at("shards")
            : nullptr;
    obs::JsonValue rows = obs::JsonValue::Array();
    for (size_t i = 0; i < shards_after.size(); ++i) {
      const obs::JsonValue& a = shards_after.at(i);
      static const obs::JsonValue kEmpty = obs::JsonValue::Object();
      const obs::JsonValue& b =
          shards_before != nullptr && i < shards_before->size()
              ? shards_before->at(i)
              : kEmpty;
      obs::JsonValue row = obs::JsonValue::Object();
      row.Set("shard", obs::JsonValue::Uint(a.at("shard").AsUint()));
      row.Set("endpoint",
              obs::JsonValue::String(a.at("endpoint").AsString()));
      row.Set("up", obs::JsonValue::Bool(a.at("up").AsBool()));
      row.Set("transactions",
              obs::JsonValue::Uint(a.at("transactions").AsUint()));
      row.Set("requests",
              obs::JsonValue::Uint(ClusterCounterDelta(b, a, "requests")));
      row.Set("errors",
              obs::JsonValue::Uint(ClusterCounterDelta(b, a, "errors")));
      row.Set("pruned_queries",
              obs::JsonValue::Uint(
                  ClusterCounterDelta(b, a, "pruned_queries")));
      row.Set("hedged",
              obs::JsonValue::Uint(ClusterCounterDelta(b, a, "hedged")));
      rows.Append(std::move(row));
    }
    section.Set("shards", std::move(rows));
  }
  return section;
}

obs::JsonValue ReportJson(const TrafficSpec& spec, RunResult& run,
                          size_t connections, int timeout_ms,
                          bool trace_ids) {
  obs::JsonValue report = obs::JsonValue::Object();
  report.Set("schema_version", obs::JsonValue::Int(1));
  report.Set("kind", obs::JsonValue::String("bbsbench_service"));
  report.Set("config", ConfigJson(spec, connections, timeout_ms, trace_ids));

  uint64_t sent = 0, ok = 0, errors = 0, timeouts = 0, indeterminate = 0,
           transport = 0;
  obs::JsonValue verbs = obs::JsonValue::Object();
  for (TrafficVerb verb : kVerbs) {
    VerbStats& stats = *run.verbs[static_cast<size_t>(verb)];
    if (stats.sent == 0) continue;
    std::vector<uint64_t> diff;
    const std::vector<uint64_t>* diff_ptr = nullptr;
    const obs::JsonValue* recent = nullptr;
    if (run.daemon_stats_ok) {
      std::string lower = LowerVerb(verb);
      std::vector<uint64_t> before =
          DaemonLatencyBuckets(run.daemon_before, lower);
      diff = DaemonLatencyBuckets(run.daemon_after, lower);
      for (size_t i = 0; i < diff.size(); ++i) {
        diff[i] -= std::min(before[i], diff[i]);
      }
      diff_ptr = &diff;
      recent = DaemonRecentLatency(run.daemon_after, lower);
    }
    verbs.Set(TrafficVerbName(verb), VerbJson(stats, diff_ptr, recent));
    sent += stats.sent;
    ok += stats.ok;
    errors += stats.errors;
    timeouts += stats.timeouts;
    indeterminate += stats.indeterminate;
    transport += stats.transport;
  }
  report.Set("verbs", std::move(verbs));

  obs::JsonValue totals = obs::JsonValue::Object();
  totals.Set("scheduled", obs::JsonValue::Uint(run.scheduled));
  totals.Set("sent", obs::JsonValue::Uint(sent));
  totals.Set("ok", obs::JsonValue::Uint(ok));
  totals.Set("errors", obs::JsonValue::Uint(errors));
  totals.Set("timeouts", obs::JsonValue::Uint(timeouts));
  totals.Set("indeterminate", obs::JsonValue::Uint(indeterminate));
  totals.Set("transport_failures", obs::JsonValue::Uint(transport));
  totals.Set("elapsed_s", obs::JsonValue::Double(run.elapsed_s));
  totals.Set("achieved_rps",
             obs::JsonValue::Double(
                 run.elapsed_s > 0 ? static_cast<double>(sent) / run.elapsed_s
                                   : 0.0));
  report.Set("totals", std::move(totals));
  if (obs::JsonValue cluster = BenchClusterJson(run);
      cluster.kind() == obs::JsonValue::Kind::kObject) {
    report.Set("cluster", std::move(cluster));
  }
  return report;
}

TrafficVerb ParseSloVerb(const std::string& name) {
  for (TrafficVerb verb : kVerbs) {
    if (LowerVerb(verb) == name) return verb;
  }
  std::cerr << "bbsbench: unknown --slo-verb " << name << "\n";
  std::exit(2);
}

int DumpStream(const std::vector<TrafficRequest>& stream,
               const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::cerr << "bbsbench: cannot open " << path << "\n";
    return 1;
  }
  for (const TrafficRequest& request : stream) {
    std::fprintf(f, "%llu %s",
                 static_cast<unsigned long long>(request.scheduled_us),
                 TrafficVerbName(request.verb));
    for (size_t i = 0; i < request.items.size(); ++i) {
      std::fprintf(f, "%c%u", i == 0 ? ' ' : ',', request.items[i]);
    }
    std::fputc('\n', f);
  }
  std::fclose(f);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc > 1 && (std::strcmp(argv[1], "--help") == 0 ||
                   std::strcmp(argv[1], "-h") == 0)) {
    Usage();
    return 0;
  }
  Args args(argc, argv, 1);

  TrafficSpec spec;
  spec.seed = args.GetUint("seed", 42);
  spec.rate_rps = args.GetDouble("rate", 200.0);
  spec.duration_s = args.GetDouble("duration-s", 10.0);
  std::string arrival = args.GetString("arrival", "poisson");
  if (arrival == "bursty") {
    spec.arrival = ArrivalProcess::kBursty;
  } else if (arrival != "poisson") {
    std::cerr << "bbsbench: --arrival must be poisson or bursty\n";
    return 2;
  }
  spec.burst_on_ms = args.GetDouble("burst-on-ms", 200.0);
  spec.burst_off_ms = args.GetDouble("burst-off-ms", 800.0);
  spec.mix.ping = args.GetDouble("mix-ping", 0.0);
  spec.mix.count = args.GetDouble("mix-count", 70.0);
  spec.mix.insert = args.GetDouble("mix-insert", 20.0);
  spec.mix.mine = args.GetDouble("mix-mine", 5.0);
  spec.mix.stats = args.GetDouble("mix-stats", 5.0);
  spec.item_universe = static_cast<uint32_t>(args.GetUint("items", 1000));
  spec.zipf_s = args.GetDouble("zipf-s", 0.99);
  spec.query_len = static_cast<uint32_t>(args.GetUint("query-len", 2));
  spec.insert_len_mean = args.GetDouble("insert-len", 10.0);
  spec.mine_minsup = args.GetDouble("minsup", 0.1);
  spec.mine_top = static_cast<uint32_t>(args.GetUint("top", 10));

  std::string host = args.GetString("host", "127.0.0.1");
  const uint64_t port_value = args.GetUint("port", 0);
  if (port_value > 65535) {
    std::cerr << "bbsbench: --port must be in [0, 65535], got " << port_value
              << "\n";
    return 2;
  }
  uint16_t port = static_cast<uint16_t>(port_value);
  if (std::string target = args.GetString("target"); !target.empty()) {
    // --target H:P addresses a daemon or a bbsrouter alike (they speak the
    // same protocol); it overrides --host/--port.
    size_t colon = target.rfind(':');
    unsigned long parsed =
        colon == std::string::npos
            ? 0
            : std::strtoul(target.substr(colon + 1).c_str(), nullptr, 10);
    if (colon == 0 || colon == std::string::npos || parsed == 0 ||
        parsed > 65535) {
      std::cerr << "bbsbench: --target must be host:port\n";
      return 2;
    }
    host = target.substr(0, colon);
    port = static_cast<uint16_t>(parsed);
  }
  const size_t connections = args.GetUint("connections", 32);
  const int timeout_ms = static_cast<int>(args.GetUint("timeout-ms", 5000));
  const size_t reservoir = args.GetUint("reservoir", 65536);
  const std::string out_path = args.GetString("out", "BENCH_service.json");
  const bool dry_run = args.Has("dry-run");
  const bool trace_ids = args.Has("trace-ids");

  if (!dry_run && port == 0) {
    std::cerr << "bbsbench: --port is required (or use --dry-run)\n";
    return 2;
  }
  if (connections == 0) {
    std::cerr << "bbsbench: --connections must be positive\n";
    return 2;
  }

  if (std::string dump = args.GetString("dump-stream"); !dump.empty()) {
    Result<std::vector<TrafficRequest>> stream = GenerateTraffic(spec);
    if (!stream.ok()) {
      std::cerr << "bbsbench: " << stream.status().ToString() << "\n";
      return 1;
    }
    if (int rc = DumpStream(*stream, dump); rc != 0) return rc;
    std::printf("bbsbench dumped %zu requests to %s\n", stream->size(),
                dump.c_str());
  }
  if (dry_run) {
    Result<std::vector<TrafficRequest>> stream = GenerateTraffic(spec);
    if (!stream.ok()) {
      std::cerr << "bbsbench: " << stream.status().ToString() << "\n";
      return 1;
    }
    std::printf("bbsbench dry run: %zu requests over %.1f s (seed %llu)\n",
                stream->size(), spec.duration_s,
                static_cast<unsigned long long>(spec.seed));
    return 0;
  }

  // Main measured run.
  Result<RunResult> run = RunTraffic(spec, host, port, connections,
                                     timeout_ms, reservoir, trace_ids);
  if (!run.ok()) {
    std::cerr << "bbsbench: " << run.status().ToString() << "\n";
    return 1;
  }
  obs::JsonValue report =
      ReportJson(spec, *run, connections, timeout_ms, trace_ids);

  // Optional stepped-rate saturation search: probe increasing offered
  // loads and report the highest one whose client p99 for --slo-verb
  // still meets the SLO.
  const uint64_t rate_steps = args.GetUint("rate-steps", 0);
  if (rate_steps > 0) {
    const double slo_p99_ms = args.GetDouble("slo-p99-ms", 50.0);
    const TrafficVerb slo_verb =
        ParseSloVerb(args.GetString("slo-verb", "count"));
    double step_rate = args.GetDouble("rate-start", spec.rate_rps);
    const double factor = args.GetDouble("rate-factor", 2.0);
    TrafficSpec step_spec = spec;
    step_spec.duration_s = args.GetDouble("step-duration-s", 5.0);

    obs::JsonValue steps = obs::JsonValue::Array();
    double best_rate = 0.0;
    for (uint64_t s = 0; s < rate_steps; ++s) {
      step_spec.rate_rps = step_rate;
      step_spec.seed = spec.seed + 1000 + s;  // a fresh stream per step
      Result<RunResult> step = RunTraffic(step_spec, host, port, connections,
                                          timeout_ms, reservoir, trace_ids);
      if (!step.ok()) {
        std::cerr << "bbsbench: saturation step failed: "
                  << step.status().ToString() << "\n";
        return 1;
      }
      VerbStats& stats = *step->verbs[static_cast<size_t>(slo_verb)];
      double p99_ms = stats.reservoir.Quantile(0.99) / 1e3;
      bool met = stats.sent > 0 && p99_ms <= slo_p99_ms &&
                 stats.transport == 0;
      if (met) best_rate = std::max(best_rate, step_rate);
      uint64_t step_sent = 0;
      for (const auto& verb_stats : step->verbs) step_sent += verb_stats->sent;
      obs::JsonValue entry = obs::JsonValue::Object();
      entry.Set("offered_rps", obs::JsonValue::Double(step_rate));
      entry.Set("achieved_rps",
                obs::JsonValue::Double(
                    step->elapsed_s > 0
                        ? static_cast<double>(step_sent) / step->elapsed_s
                        : 0.0));
      entry.Set("p99_ms", obs::JsonValue::Double(p99_ms));
      entry.Set("met_slo", obs::JsonValue::Bool(met));
      steps.Append(std::move(entry));
      std::printf("bbsbench step %llu: %.0f rps offered, %s p99 %.2f ms%s\n",
                  static_cast<unsigned long long>(s), step_rate,
                  TrafficVerbName(slo_verb), p99_ms,
                  met ? "" : " (SLO MISSED)");
      step_rate *= factor;
    }
    obs::JsonValue saturation = obs::JsonValue::Object();
    saturation.Set("slo_verb", obs::JsonValue::String(
                                   TrafficVerbName(slo_verb)));
    saturation.Set("slo_p99_ms", obs::JsonValue::Double(slo_p99_ms));
    saturation.Set("steps", std::move(steps));
    saturation.Set("max_rps_meeting_slo", obs::JsonValue::Double(best_rate));
    report.Set("saturation", std::move(saturation));
  }

  if (Status written = obs::WriteJsonFile(report, out_path); !written.ok()) {
    std::cerr << "bbsbench: cannot write report: " << written.ToString()
              << "\n";
    return 1;
  }
  std::printf("bbsbench wrote %s\n", out_path.c_str());
  return 0;
}
