// bbsmined — the BBS query daemon.
//
// Serves COUNT / MINE / INSERT / STATS / PING over length-prefixed JSON
// frames (docs/SERVICE.md is the protocol spec). Counting queries run
// against lock-free snapshots of a segmented index (snapshot-isolated from
// inserts), are batched by the scheduler, and are answered bit-identically
// to a direct SegmentedBbs::CountItemSet over the same prefix — which is
// what the CI smoke test checks against the `bbsmine count` oracle.
//
// Examples:
//   bbsmined --index data.seg --db data.db --port 7071
//   bbsmined --bits 1600 --hashes 4 --segment-capacity 4096 --port 0
//
// SIGTERM / SIGINT drain gracefully: stop accepting, finish in-flight
// requests, write the service report (--report-out), exit 0.

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <map>
#include <optional>
#include <string>
#include <sys/stat.h>
#include <thread>

#include <memory>

#include "core/bbs_index.h"
#include "core/segmented_bbs.h"
#include "obs/json.h"
#include "obs/trace.h"
#include "service/durability.h"
#include "service/replication.h"
#include "service/server.h"
#include "storage/transaction_db.h"
#include "util/fault_injector.h"

using namespace bbsmine;

namespace {

std::atomic<bool> g_stop{false};

void HandleSignal(int) { g_stop.store(true, std::memory_order_release); }

// Crash-hook plumbing: the fault-injection crash path (_Exit(137) at an
// armed boundary) dumps the flight recorder first, so post-mortem
// artifacts exist for exactly the runs that die mid-write. Plain stdio on
// purpose — the injected-fault file_io layer is what just "failed".
service::FlightRecorder* g_crash_recorder = nullptr;
service::BbsService* g_crash_service = nullptr;
std::string g_crash_flight_path;

void CrashDumpHook() {
  if (g_crash_recorder == nullptr || g_crash_flight_path.empty()) return;
  uint64_t now_rel_us =
      g_crash_service != nullptr ? g_crash_service->NowRelMicros() : 0;
  std::string text =
      g_crash_recorder->DumpJsonForCrash(now_rel_us).Serialize();
  if (std::FILE* out = std::fopen(g_crash_flight_path.c_str(), "wb")) {
    std::fwrite(text.data(), 1, text.size(), out);
    std::fclose(out);
  }
}

/// Minimal flag parser: accepts `--flag value` and `--flag=value`;
/// bare flags map to "true". (Mirrors the bbsmine CLI parser.)
class Args {
 public:
  Args(int argc, char** argv, int first) {
    for (int i = first; i < argc; ++i) {
      std::string arg = argv[i];
      if (arg.rfind("--", 0) != 0) {
        std::cerr << "unexpected argument: " << arg << "\n";
        std::exit(2);
      }
      std::string key = arg.substr(2);
      if (size_t eq = key.find('='); eq != std::string::npos) {
        values_[key.substr(0, eq)] = key.substr(eq + 1);
      } else if (i + 1 < argc && std::strncmp(argv[i + 1], "--", 2) != 0) {
        values_[key] = argv[++i];
      } else {
        values_[key] = "true";
      }
    }
  }

  std::string GetString(const std::string& key,
                        const std::string& fallback = "") const {
    auto it = values_.find(key);
    return it == values_.end() ? fallback : it->second;
  }

  uint64_t GetUint(const std::string& key, uint64_t fallback) const {
    auto it = values_.find(key);
    return it == values_.end() ? fallback : std::strtoull(it->second.c_str(),
                                                          nullptr, 10);
  }

  double GetDouble(const std::string& key, double fallback) const {
    auto it = values_.find(key);
    return it == values_.end() ? fallback
                               : std::strtod(it->second.c_str(), nullptr);
  }

 private:
  std::map<std::string, std::string> values_;
};

[[noreturn]] void Die(const Status& status) {
  std::cerr << "bbsmined: " << status.ToString() << "\n";
  std::exit(1);
}

bool FileExists(const std::string& path) {
  struct stat st;
  return ::stat(path.c_str(), &st) == 0;
}

/// The persisted fencing term (DIR/term), or 1 when the file is absent or
/// unreadable (a fresh node starts at term 1).
uint64_t LoadTermFile(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "r");
  if (f == nullptr) return 1;
  unsigned long long term = 1;
  if (std::fscanf(f, "%llu", &term) != 1 || term == 0) term = 1;
  std::fclose(f);
  return term;
}

/// Parses "host:port" for --follow.
bool ParseHostPort(const std::string& spec, std::string* host,
                   uint16_t* port) {
  size_t colon = spec.rfind(':');
  if (colon == std::string::npos || colon == 0 ||
      colon + 1 >= spec.size()) {
    return false;
  }
  unsigned long parsed = std::strtoul(spec.c_str() + colon + 1, nullptr, 10);
  if (parsed == 0 || parsed > 65535) return false;
  *host = spec.substr(0, colon);
  *port = static_cast<uint16_t>(parsed);
  return true;
}

void Usage() {
  std::cerr <<
      "usage: bbsmined [--flag value | --flag=value ...]\n"
      "  --index PREFIX      saved index: a SegmentedBbs prefix (loads\n"
      "                      PREFIX.manifest) or a monolithic .bbs file\n"
      "                      (wrapped as one sealed segment)\n"
      "  --db FILE           transaction database; enables MINE and keeps\n"
      "                      INSERTed transactions for exact mining\n"
      "  --bits N            when no --index: create empty (default 1600)\n"
      "  --hashes N          when no --index: hashes per item (default 4)\n"
      "  --segment-capacity N  transactions per segment (default 4096)\n"
      "  --index-backend B   resident (default: heap slices, fully\n"
      "                      verified at load) or mmap (serve the v2\n"
      "                      aligned index in place: near-zero heap, pages\n"
      "                      faulted on demand; answers are bit-identical;\n"
      "                      incompatible with --durable-dir)\n"
      "  --compact-cold-epochs N  with --compact-fold-bits: after each\n"
      "                      INSERT, fold sealed segments untouched for N\n"
      "                      publication epochs (counts become upper\n"
      "                      bounds; default off)\n"
      "  --compact-fold-bits M  fold target width for cold segments\n"
      "  --host A.B.C.D      bind address (default 127.0.0.1)\n"
      "  --port N            TCP port; 0 = ephemeral (default 7071)\n"
      "  --threads N         per-batch worker threads (0 = hw threads)\n"
      "  --max-pending N     admission-queue bound (default 1024)\n"
      "  --max-batch N       requests fused per batch (default 256)\n"
      "  --minsup F          default MINE minimum support (default 0.003)\n"
      "  --report-out FILE   write the service report on shutdown\n"
      "  --trace-out FILE    write a Chrome trace of sampled requests on\n"
      "                      shutdown (load in Perfetto)\n"
      "  --trace-sample N    trace 1-in-N requests (default 1 when\n"
      "                      --trace-out is set, else off)\n"
      "  --slow-log FILE     append one JSON line per slow request\n"
      "  --slow-query-us N   slow-query threshold, microseconds (default\n"
      "                      10000; 0 logs every request)\n"
      "  --flight-recorder-size N  per-connection flight-ring capacity in\n"
      "                      events (default 64; 0 disables DUMP)\n"
      "  --flight-out FILE   write the flight-recorder dump on shutdown\n"
      "                      and from the fault-injection crash path\n"
      "  --stats-window-s N  windowed-metrics rotation interval, seconds\n"
      "                      (default 10; 12 slots are retained)\n"
      "  --durable-dir DIR   crash-safe durability: WAL + checkpoints in\n"
      "                      DIR; recovers state from DIR on startup\n"
      "  --fsync POLICY      WAL fsync policy: always | none | every=N\n"
      "                      (default always)\n"
      "  --checkpoint-every N  auto-checkpoint after N inserted\n"
      "                      transactions; 0 = manual only (default 4096)\n"
      "  --follow HOST:PORT  run as a warm follower of that primary: tail\n"
      "                      its WAL over WALSTREAM, apply locally, reject\n"
      "                      INSERT until PROMOTE (requires --durable-dir)\n"
      "  --repl-ack          semi-sync: withhold INSERT acks until the\n"
      "                      follower has the record (requires\n"
      "                      --durable-dir; see docs/CLUSTER.md)\n"
      "  --repl-ack-timeout-ms N  semi-sync ack wait before degrading the\n"
      "                      response to replicated=false (default 1000)\n";
}

}  // namespace

int main(int argc, char** argv) {
  if (argc > 1 && (std::strcmp(argv[1], "--help") == 0 ||
                   std::strcmp(argv[1], "-h") == 0)) {
    Usage();
    return 0;
  }
  Args args(argc, argv, 1);

  uint64_t segment_capacity = args.GetUint("segment-capacity", 4096);
  if (segment_capacity == 0) {
    std::cerr << "bbsmined: --segment-capacity must be positive\n";
    return 2;
  }

  auto backend_flag =
      ParseIndexBackend(args.GetString("index-backend", "resident"));
  if (!backend_flag.ok()) {
    std::cerr << "bbsmined: " << backend_flag.status().ToString() << "\n";
    return 2;
  }
  const IndexBackend backend = *backend_flag;

  // Assemble the snapshot manager from the requested source.
  std::optional<service::SnapshotManager> index;
  std::optional<TransactionDatabase> db;
  std::unique_ptr<service::DurabilityManager> durability;
  std::string index_arg = args.GetString("index");
  std::string durable_dir = args.GetString("durable-dir");

  if (backend == IndexBackend::kMmap && index_arg.empty()) {
    // An empty index has no file to map; the flag would silently serve a
    // heap-backed index while STATS claims mmap.
    std::cerr << "bbsmined: --index-backend=mmap requires --index\n";
    return 2;
  }

  if (!durable_dir.empty()) {
    if (backend == IndexBackend::kMmap) {
      // Checkpoints rewrite the segment files the mappings would be backed
      // by, so durable mode pins the resident backend.
      std::cerr << "bbsmined: --index-backend=mmap is incompatible with "
                   "--durable-dir (checkpoints rewrite the mapped files); "
                   "use the resident backend\n";
      return 2;
    }
    // Durable mode: the durable directory is the source of truth; --index
    // and --db only seed the very first start (before any checkpoint/WAL
    // exists there).
    std::optional<SegmentedBbs> bootstrap;
    if (!index_arg.empty()) {
      if (!FileExists(index_arg + ".manifest")) {
        std::cerr << "bbsmined: with --durable-dir, --index must be a "
                     "SegmentedBbs prefix (monolithic .bbs files are not "
                     "supported)\n";
        return 2;
      }
      auto segmented = SegmentedBbs::Load(index_arg);
      if (!segmented.ok()) Die(segmented.status());
      bootstrap.emplace(std::move(*segmented));
    } else {
      BbsConfig config;
      config.num_bits = static_cast<uint32_t>(args.GetUint("bits", 1600));
      config.num_hashes = static_cast<uint32_t>(args.GetUint("hashes", 4));
      auto empty = SegmentedBbs::Create(config, segment_capacity);
      if (!empty.ok()) Die(empty.status());
      bootstrap.emplace(std::move(*empty));
    }
    if (std::string path = args.GetString("db"); !path.empty()) {
      if (FileExists(path)) {
        auto loaded = TransactionDatabase::Load(path);
        if (!loaded.ok()) Die(loaded.status());
        db.emplace(std::move(*loaded));
      } else {
        // The durable directory owns the database from here on; an absent
        // seed file just means "enable MINE, start empty".
        db.emplace();
      }
    }

    service::DurabilityOptions durable_options;
    durable_options.dir = durable_dir;
    durable_options.checkpoint_every = args.GetUint("checkpoint-every", 4096);
    if (Status parsed = service::ParseFsyncSpec(
            args.GetString("fsync", "always"), &durable_options.wal);
        !parsed.ok()) {
      std::cerr << "bbsmined: " << parsed.ToString() << "\n";
      return 2;
    }
    auto opened = service::DurabilityManager::Open(
        durable_options, std::move(*bootstrap), db ? &*db : nullptr);
    if (!opened.ok()) Die(opened.status());
    durability = std::move(*opened);

    const auto& recovery = durability->recovery();
    std::printf(
        "bbsmined recovery: checkpoint=%s epoch=%llu base=%llu "
        "wal_records=%llu replayed_txns=%llu torn_tail_bytes=%llu "
        "(%.3f s)\n",
        recovery.checkpoint_loaded ? "loaded" : "none",
        static_cast<unsigned long long>(recovery.checkpoint_epoch),
        static_cast<unsigned long long>(recovery.checkpoint_transactions),
        static_cast<unsigned long long>(recovery.wal_records_scanned),
        static_cast<unsigned long long>(recovery.recovered_records),
        static_cast<unsigned long long>(recovery.torn_tail_bytes),
        recovery.recovery_seconds);

    SegmentedBbs recovered = durability->TakeRecoveredIndex();
    auto manager = service::SnapshotManager::FromIndex(recovered);
    if (!manager.ok()) Die(manager.status());
    index.emplace(std::move(*manager));
  } else if (!index_arg.empty()) {
    if (FileExists(index_arg + ".manifest")) {
      auto segmented = SegmentedBbs::Load(index_arg, nullptr, backend);
      if (!segmented.ok()) Die(segmented.status());
      auto manager = service::SnapshotManager::FromIndex(*segmented);
      if (!manager.ok()) Die(manager.status());
      index.emplace(std::move(*manager));
    } else {
      auto monolithic = backend == IndexBackend::kMmap
                            ? BbsIndex::OpenMmap(index_arg)
                            : BbsIndex::Load(index_arg);
      if (!monolithic.ok()) Die(monolithic.status());
      auto manager =
          service::SnapshotManager::FromIndex(*monolithic, segment_capacity);
      if (!manager.ok()) Die(manager.status());
      index.emplace(std::move(*manager));
    }
  } else {
    BbsConfig config;
    config.num_bits = static_cast<uint32_t>(args.GetUint("bits", 1600));
    config.num_hashes = static_cast<uint32_t>(args.GetUint("hashes", 4));
    auto manager = service::SnapshotManager::Create(config, segment_capacity);
    if (!manager.ok()) Die(manager.status());
    index.emplace(std::move(*manager));
  }

  if (durable_dir.empty()) {
    if (std::string path = args.GetString("db"); !path.empty()) {
      auto loaded = TransactionDatabase::Load(path);
      if (!loaded.ok()) Die(loaded.status());
      db.emplace(std::move(*loaded));
      if (db->size() != index->num_transactions()) {
        std::cerr << "bbsmined: index/database mismatch: "
                  << index->num_transactions() << " vs " << db->size()
                  << " transactions\n";
        return 1;
      }
    }
  }

  // Observability plane: tracer, slow-query log, flight recorder, window
  // shape. All off (or passive) unless their flags are given.
  const std::string trace_out = args.GetString("trace-out");
  uint64_t trace_sample =
      args.GetUint("trace-sample", trace_out.empty() ? 0 : 1);
  std::unique_ptr<obs::Tracer> tracer;
  if (!trace_out.empty() && trace_sample > 0) {
    tracer = std::make_unique<obs::Tracer>(obs::kTraceService);
  }
  std::unique_ptr<service::SlowQueryLog> slow_log;
  if (std::string path = args.GetString("slow-log"); !path.empty()) {
    auto opened = service::SlowQueryLog::Open(path);
    if (!opened.ok()) Die(opened.status());
    slow_log = std::move(*opened);
  }
  const uint64_t flight_size = args.GetUint("flight-recorder-size", 64);
  std::unique_ptr<service::FlightRecorder> flight_recorder;
  if (flight_size > 0) {
    flight_recorder = std::make_unique<service::FlightRecorder>(flight_size);
  }
  const std::string flight_out = args.GetString("flight-out");
  const uint64_t stats_window_s = args.GetUint("stats-window-s", 10);
  if (stats_window_s == 0) {
    std::cerr << "bbsmined: --stats-window-s must be positive\n";
    return 2;
  }

  // Replication wiring (docs/CLUSTER.md): a durable daemon is a primary
  // (serves WALSTREAM); --follow makes it a warm follower instead. Both
  // need the durable directory — the stream's positions are WAL positions.
  const std::string follow_arg = args.GetString("follow");
  const bool repl_ack = args.GetString("repl-ack") == "true";
  if ((!follow_arg.empty() || repl_ack) && durable_dir.empty()) {
    std::cerr << "bbsmined: --follow and --repl-ack require --durable-dir\n";
    return 2;
  }
  std::unique_ptr<service::ReplicationSource> replication;
  std::unique_ptr<service::ReplicationFollower> follower;
  service::BbsService* follower_target = nullptr;  // set once built
  if (durability != nullptr) {
    service::ReplicationSourceOptions source_options;
    replication = std::make_unique<service::ReplicationSource>(
        durability.get(),
        [&index] {
          return static_cast<uint64_t>(index->num_transactions());
        },
        source_options);
  }
  if (!follow_arg.empty()) {
    service::ReplicationFollowerOptions follow_options;
    if (!ParseHostPort(follow_arg, &follow_options.host,
                       &follow_options.port)) {
      std::cerr << "bbsmined: --follow expects HOST:PORT, got \""
                << follow_arg << "\"\n";
      return 2;
    }
    follower = std::make_unique<service::ReplicationFollower>(
        follow_options,
        [&index] {
          return static_cast<uint64_t>(index->num_transactions());
        },
        [&follower_target](
            const std::vector<std::vector<Itemset>>& batches) {
          return follower_target->ApplyReplicated(batches);
        });
  }

  service::ServiceOptions options;
  options.scheduler.num_threads = args.GetUint("threads", 0);
  options.scheduler.max_pending = args.GetUint("max-pending", 1024);
  options.scheduler.max_batch = args.GetUint("max-batch", 256);
  options.default_min_support = args.GetDouble("minsup", 0.003);
  options.durability = durability.get();
  options.index_backend = backend;
  options.tracer = tracer.get();
  options.trace_sample = trace_sample;
  options.slow_log = slow_log.get();
  options.slow_query_us = args.GetUint("slow-query-us", 10000);
  options.flight_recorder = flight_recorder.get();
  options.stats_windows.interval_us = stats_window_s * 1'000'000;
  options.compaction.cold_epochs = args.GetUint("compact-cold-epochs", 0);
  options.compaction.fold_bits =
      static_cast<uint32_t>(args.GetUint("compact-fold-bits", 0));
  if (options.compaction.cold_epochs != 0 ||
      options.compaction.fold_bits != 0) {
    if (!options.compaction.enabled()) {
      std::cerr << "bbsmined: --compact-cold-epochs and --compact-fold-bits "
                   "must be set together (both positive)\n";
      return 2;
    }
  }
  options.replication = replication.get();
  options.follower = follower.get();
  options.repl_ack = repl_ack;
  options.repl_ack_timeout_ms =
      static_cast<int>(args.GetUint("repl-ack-timeout-ms", 1000));
  if (!durable_dir.empty()) {
    options.term_file = durable_dir + "/term";
    options.term = LoadTermFile(options.term_file);
  }
  options.role = follower != nullptr ? service::ServiceRole::kFollower
                 : durability != nullptr ? service::ServiceRole::kPrimary
                                         : service::ServiceRole::kStandalone;
  options.on_promote = [&follower] {
    if (follower != nullptr) follower->Stop();
  };
  service::BbsService bbs_service(&*index, db ? &*db : nullptr, options);
  follower_target = &bbs_service;
  if (follower != nullptr) follower->Start();

  if (flight_recorder != nullptr && !flight_out.empty()) {
    g_crash_recorder = flight_recorder.get();
    g_crash_service = &bbs_service;
    g_crash_flight_path = flight_out;
    FaultInjector::SetCrashHook(CrashDumpHook);
  }

  const uint64_t port = args.GetUint("port", 7071);
  if (port > 65535) {
    std::cerr << "bbsmined: --port must be in [0, 65535], got " << port
              << "\n";
    return 2;
  }
  service::SocketServerOptions server_options;
  server_options.host = args.GetString("host", "127.0.0.1");
  server_options.port = static_cast<uint16_t>(port);
  service::SocketServer server(&bbs_service, server_options);
  if (Status started = server.Start(); !started.ok()) Die(started);

  std::signal(SIGTERM, HandleSignal);
  std::signal(SIGINT, HandleSignal);

  // The smoke script parses this line to learn the ephemeral port.
  std::printf("bbsmined listening on %s:%u (%zu transactions, epoch %llu)\n",
              server_options.host.c_str(), server.port(),
              index->num_transactions(),
              static_cast<unsigned long long>(index->epoch()));
  if (options.role != service::ServiceRole::kStandalone) {
    std::printf("bbsmined role %s term %llu%s%s\n",
                service::ServiceRoleName(options.role),
                static_cast<unsigned long long>(options.term),
                follower != nullptr ? " following " : "",
                follower != nullptr ? follow_arg.c_str() : "");
  }
  std::fflush(stdout);

  while (!g_stop.load(std::memory_order_acquire)) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }

  std::printf("bbsmined draining...\n");
  std::fflush(stdout);
  // Stop the replication tail before the final checkpoint so no stream
  // apply races it.
  if (follower != nullptr) follower->Stop();
  server.Stop();
  bbs_service.Drain();
  if (durability != nullptr) {
    // A final checkpoint makes the next startup instant (empty WAL). Its
    // failure costs nothing but recovery time — the WAL still covers
    // everything — so sync it and carry on.
    Status final_checkpoint =
        durability->Checkpoint(index->Acquire(), db ? &*db : nullptr);
    if (!final_checkpoint.ok()) {
      std::cerr << "bbsmined: final checkpoint failed: "
                << final_checkpoint.ToString() << "\n";
      if (Status synced = durability->SyncWal(); !synced.ok()) {
        std::cerr << "bbsmined: final WAL sync failed: " << synced.ToString()
                  << "\n";
      }
    } else {
      std::printf("bbsmined checkpointed %zu transactions\n",
                  index->num_transactions());
    }
  }
  if (std::string path = args.GetString("report-out"); !path.empty()) {
    obs::JsonValue report = bbs_service.BuildStatsReport();
    if (Status written = obs::WriteJsonFile(report, path); !written.ok()) {
      std::cerr << "bbsmined: cannot write report: " << written.ToString()
                << "\n";
      return 1;
    }
    std::printf("bbsmined wrote service report to %s\n", path.c_str());
  }
  if (flight_recorder != nullptr && !flight_out.empty()) {
    obs::JsonValue dump =
        flight_recorder->DumpJson(bbs_service.NowRelMicros());
    if (Status written = obs::WriteJsonFile(dump, flight_out);
        !written.ok()) {
      std::cerr << "bbsmined: cannot write flight dump: "
                << written.ToString() << "\n";
      return 1;
    }
    std::printf("bbsmined wrote flight-recorder dump to %s\n",
                flight_out.c_str());
  }
  if (tracer != nullptr && !trace_out.empty()) {
    if (Status written = tracer->WriteJson(trace_out); !written.ok()) {
      std::cerr << "bbsmined: cannot write trace: " << written.ToString()
                << "\n";
      return 1;
    }
    std::printf("bbsmined wrote trace (%zu events) to %s\n",
                tracer->event_count(), trace_out.c_str());
  }
  std::printf("bbsmined exited cleanly (epoch %llu, %zu transactions)\n",
              static_cast<unsigned long long>(index->epoch()),
              index->num_transactions());
  return 0;
}
