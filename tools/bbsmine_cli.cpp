// bbsmine — command-line front end for the BBS mining library.
//
// Subcommands:
//   gen      generate a Quest-style synthetic dataset
//   convert  convert between FIMI text and the binary database format
//   build    build a BBS index over a database
//   stats    show database / index statistics
//   mine     mine frequent patterns (SFS/SFP/DFS/DFP/apriori/fpgrowth)
//   count    ad-hoc exact count of an itemset (optionally TID-constrained)
//
// Examples:
//   bbsmine gen --txns 10000 --items 10000 --t 10 --i 10 --out data.fimi
//   bbsmine convert --in data.fimi --out data.db
//   bbsmine build --db data.db --bits 1600 --hashes 4 --out data.bbs
//   bbsmine mine --db data.db --index data.bbs --algo dfp --minsup 0.003
//   bbsmine count --db data.db --index data.bbs --items 3,17,42 --tid-mod 7:0

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include <sys/stat.h>

#include "baseline/apriori.h"
#include "baseline/eclat.h"
#include "baseline/fp_tree.h"
#include "core/adhoc.h"
#include "core/approximate.h"
#include "core/bbs_index.h"
#include "core/miner.h"
#include "core/pattern_sets.h"
#include "core/rules.h"
#include "core/segmented_bbs.h"
#include "datagen/quest_gen.h"
#include "obs/report.h"
#include "obs/trace.h"
#include "service/client.h"
#include "service/wire.h"
#include "storage/fimi_io.h"
#include "storage/transaction_db.h"
#include "util/bitvector_kernels.h"
#include "util/rusage.h"
#include "util/socket.h"
#include "util/thread_pool.h"

using namespace bbsmine;

namespace {

/// Minimal flag parser: accepts `--flag value` and `--flag=value`;
/// bare flags map to "true".
class Args {
 public:
  Args(int argc, char** argv, int first) {
    for (int i = first; i < argc; ++i) {
      std::string arg = argv[i];
      if (arg.rfind("--", 0) != 0) {
        std::cerr << "unexpected argument: " << arg << "\n";
        std::exit(2);
      }
      std::string key = arg.substr(2);
      if (size_t eq = key.find('='); eq != std::string::npos) {
        values_[key.substr(0, eq)] = key.substr(eq + 1);
      } else if (i + 1 < argc && std::strncmp(argv[i + 1], "--", 2) != 0) {
        values_[key] = argv[++i];
      } else {
        values_[key] = "true";
      }
    }
  }

  std::string GetString(const std::string& key,
                        const std::string& fallback = "") const {
    auto it = values_.find(key);
    return it == values_.end() ? fallback : it->second;
  }

  std::string Require(const std::string& key) const {
    auto it = values_.find(key);
    if (it == values_.end()) {
      std::cerr << "missing required flag --" << key << "\n";
      std::exit(2);
    }
    return it->second;
  }

  uint64_t GetUint(const std::string& key, uint64_t fallback) const {
    auto it = values_.find(key);
    return it == values_.end() ? fallback : std::strtoull(it->second.c_str(),
                                                          nullptr, 10);
  }

  double GetDouble(const std::string& key, double fallback) const {
    auto it = values_.find(key);
    return it == values_.end() ? fallback
                               : std::strtod(it->second.c_str(), nullptr);
  }

  bool GetBool(const std::string& key) const {
    return GetString(key) == "true";
  }

 private:
  std::map<std::string, std::string> values_;
};

[[noreturn]] void Die(const Status& status) {
  std::cerr << "error: " << status.ToString() << "\n";
  std::exit(1);
}

bool EndsWith(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

TransactionDatabase LoadDb(const std::string& path) {
  if (EndsWith(path, ".fimi") || EndsWith(path, ".dat") ||
      EndsWith(path, ".txt")) {
    auto db = ReadFimi(path);
    if (!db.ok()) Die(db.status());
    return std::move(db).value();
  }
  auto db = TransactionDatabase::Load(path);
  if (!db.ok()) Die(db.status());
  return std::move(db).value();
}

IndexBackend ParseBackendFlag(const Args& args) {
  auto backend = ParseIndexBackend(args.GetString("index-backend", "resident"));
  if (!backend.ok()) Die(backend.status());
  return *backend;
}

/// Loads a monolithic index honoring --index-backend: "resident" reads and
/// fully verifies the file into heap slices; "mmap" serves the v2 aligned
/// file in place (header-verified, slice pages faulted on demand).
Result<BbsIndex> LoadIndexWithBackend(const std::string& path,
                                      IndexBackend backend) {
  return backend == IndexBackend::kMmap ? BbsIndex::OpenMmap(path)
                                        : BbsIndex::Load(path);
}

Itemset ParseItems(const std::string& spec) {
  Itemset items;
  size_t pos = 0;
  while (pos < spec.size()) {
    size_t comma = spec.find(',', pos);
    if (comma == std::string::npos) comma = spec.size();
    items.push_back(static_cast<ItemId>(
        std::strtoul(spec.substr(pos, comma - pos).c_str(), nullptr, 10)));
    pos = comma + 1;
  }
  Canonicalize(&items);
  return items;
}

int CmdGen(const Args& args) {
  QuestConfig config;
  config.num_transactions = static_cast<uint32_t>(args.GetUint("txns", 10'000));
  config.num_items = static_cast<uint32_t>(args.GetUint("items", 10'000));
  config.avg_transaction_size = args.GetDouble("t", 10);
  config.avg_pattern_size = args.GetDouble("i", 10);
  config.num_patterns = static_cast<uint32_t>(args.GetUint("patterns", 2'000));
  config.seed = args.GetUint("seed", 42);
  std::string out = args.Require("out");

  auto db = GenerateQuest(config);
  if (!db.ok()) Die(db.status());
  Status status = EndsWith(out, ".fimi") || EndsWith(out, ".dat")
                      ? WriteFimi(*db, out)
                      : db->Save(out);
  if (!status.ok()) Die(status);
  std::printf("wrote %zu transactions (%llu bytes of records) to %s\n",
              db->size(),
              static_cast<unsigned long long>(db->SerializedBytes()),
              out.c_str());
  return 0;
}

int CmdConvert(const Args& args) {
  TransactionDatabase db = LoadDb(args.Require("in"));
  std::string out = args.Require("out");
  Status status = EndsWith(out, ".fimi") || EndsWith(out, ".dat")
                      ? WriteFimi(db, out)
                      : db.Save(out);
  if (!status.ok()) Die(status);
  std::printf("converted %zu transactions to %s\n", db.size(), out.c_str());
  return 0;
}

int CmdBuild(const Args& args) {
  TransactionDatabase db = LoadDb(args.Require("db"));
  BbsConfig config;
  config.num_bits = static_cast<uint32_t>(args.GetUint("bits", 1600));
  config.num_hashes = static_cast<uint32_t>(args.GetUint("hashes", 4));
  std::string hash = args.GetString("hash", "md5");
  if (hash == "md5") {
    config.hash_kind = HashKind::kMd5;
  } else if (hash == "mult") {
    config.hash_kind = HashKind::kMultiplyShift;
  } else if (hash == "mod") {
    config.hash_kind = HashKind::kModulo;
  } else {
    std::cerr << "unknown --hash (use md5 | mult | mod)\n";
    return 2;
  }
  config.seed = args.GetUint("seed", 0);
  std::string out = args.Require("out");

  // --segment-capacity selects a segmented index (one file per segment
  // plus <out>.manifest) — the format bbsmined serves incrementally.
  if (uint64_t capacity = args.GetUint("segment-capacity", 0); capacity > 0) {
    auto segmented = SegmentedBbs::Create(config, capacity);
    if (!segmented.ok()) Die(segmented.status());
    if (Status st = segmented->InsertAll(db); !st.ok()) Die(st);
    if (Status st = segmented->Save(out); !st.ok()) Die(st);
    std::printf(
        "built segmented BBS: m=%u, k=%u, %zu transactions in %zu "
        "segments of %llu, %llu bytes -> %s.manifest\n",
        segmented->config().num_bits, config.num_hashes,
        segmented->num_transactions(), segmented->num_segments(),
        static_cast<unsigned long long>(capacity),
        static_cast<unsigned long long>(segmented->SerializedBytes()),
        out.c_str());
    return 0;
  }

  auto bbs = BbsIndex::Create(config);
  if (!bbs.ok()) Die(bbs.status());
  bbs->InsertAll(db);
  if (Status st = bbs->Save(out); !st.ok()) Die(st);
  std::printf("built BBS: m=%u, k=%u, %zu transactions, %llu bytes -> %s\n",
              bbs->num_bits(), config.num_hashes, bbs->num_transactions(),
              static_cast<unsigned long long>(bbs->SerializedBytes()),
              out.c_str());
  return 0;
}

int CmdStats(const Args& args) {
  if (std::string path = args.GetString("db"); !path.empty()) {
    TransactionDatabase db = LoadDb(path);
    uint64_t total_items = 0;
    size_t max_len = 0;
    for (size_t t = 0; t < db.size(); ++t) {
      total_items += db.At(t).items.size();
      max_len = std::max(max_len, db.At(t).items.size());
    }
    std::printf("database %s:\n  transactions: %zu\n  item universe: %u\n"
                "  distinct items: %zu\n  avg txn length: %.2f (max %zu)\n"
                "  serialized bytes: %llu\n",
                path.c_str(), db.size(), db.item_universe(),
                db.DistinctItems().size(),
                db.empty() ? 0.0
                           : static_cast<double>(total_items) /
                                 static_cast<double>(db.size()),
                max_len,
                static_cast<unsigned long long>(db.SerializedBytes()));
  }
  if (std::string path = args.GetString("index"); !path.empty()) {
    auto bbs = BbsIndex::Load(path);
    if (!bbs.ok()) Die(bbs.status());
    size_t min_pop = SIZE_MAX;
    size_t max_pop = 0;
    uint64_t total_pop = 0;
    for (uint32_t s = 0; s < bbs->num_bits(); ++s) {
      size_t pop = bbs->SlicePopcount(s);
      min_pop = std::min(min_pop, pop);
      max_pop = std::max(max_pop, pop);
      total_pop += pop;
    }
    std::printf("index %s:\n  m=%u bits, k=%u hashes, hash kind %d%s\n"
                "  transactions: %zu\n  serialized bytes: %llu\n"
                "  slice popcount min/avg/max: %zu / %.1f / %zu\n",
                path.c_str(), bbs->num_bits(), bbs->config().num_hashes,
                static_cast<int>(bbs->config().hash_kind),
                bbs->is_folded() ? " (folded)" : "",
                bbs->num_transactions(),
                static_cast<unsigned long long>(bbs->SerializedBytes()),
                min_pop == SIZE_MAX ? 0 : min_pop,
                bbs->num_bits()
                    ? static_cast<double>(total_pop) / bbs->num_bits()
                    : 0.0,
                max_pop);
  }
  return 0;
}

int CmdMine(const Args& args) {
  TransactionDatabase db = LoadDb(args.Require("db"));
  double min_support = args.GetDouble("minsup", 0.003);
  std::string algo = args.GetString("algo", "dfp");
  size_t top = args.GetUint("top", 10);
  std::string stats_json = args.GetString("stats-json");
  std::string trace_out = args.GetString("trace-out");

  std::optional<obs::Tracer> tracer;
  if (!trace_out.empty()) {
    uint32_t categories = obs::kTraceDefault;
    if (args.GetBool("trace-kernels")) categories |= obs::kTraceKernel;
    tracer.emplace(categories);
  }

  // Report context; only the BBS schemes fill the config/index fields.
  MineConfig config;
  uint32_t index_bits = 0;
  uint32_t index_hashes = 0;
  std::string index_backend = "resident";
  uint64_t resident_slice_bytes = 0;
  PageFaultCounters fault_delta;
  bool is_bbs = false;

  MiningResult result;
  if (algo == "apriori") {
    AprioriConfig apriori_config;
    apriori_config.min_support = min_support;
    apriori_config.memory_budget_bytes = args.GetUint("budget", 0);
    result = MineApriori(db, apriori_config);
  } else if (algo == "eclat") {
    EclatConfig eclat_config;
    eclat_config.min_support = min_support;
    result = MineEclat(db, eclat_config);
  } else if (algo == "fpgrowth") {
    FpGrowthConfig fp_config;
    fp_config.min_support = min_support;
    fp_config.memory_budget_bytes = args.GetUint("budget", 0);
    result = MineFpGrowth(db, fp_config);
  } else {
    is_bbs = true;
    config.min_support = min_support;
    config.memory_budget_bytes = args.GetUint("budget", 0);
    config.num_threads = static_cast<uint32_t>(args.GetUint("threads", 1));
    if (tracer.has_value()) config.tracer = &*tracer;
    if (algo == "sfs") {
      config.algorithm = Algorithm::kSFS;
    } else if (algo == "sfp") {
      config.algorithm = Algorithm::kSFP;
    } else if (algo == "dfs") {
      config.algorithm = Algorithm::kDFS;
    } else if (algo == "dfp") {
      config.algorithm = Algorithm::kDFP;
    } else {
      std::cerr
          << "unknown --algo (sfs|sfp|dfs|dfp|apriori|fpgrowth|eclat)\n";
      return 2;
    }
    auto bbs = LoadIndexWithBackend(args.Require("index"),
                                    ParseBackendFlag(args));
    if (!bbs.ok()) Die(bbs.status());
    if (bbs->num_transactions() != db.size()) {
      std::cerr << "index/database mismatch: " << bbs->num_transactions()
                << " vs " << db.size() << " transactions\n";
      return 1;
    }
    index_bits = bbs->num_bits();
    index_hashes = bbs->config().num_hashes;
    index_backend = bbs->backend_name();
    resident_slice_bytes = bbs->ApproxResidentBytes();
    const PageFaultCounters faults_before = CurrentPageFaults();
    result = MineFrequentPatterns(db, *bbs, config);
    fault_delta = CurrentPageFaults() - faults_before;
  }

  if (!stats_json.empty() || args.GetBool("report")) {
    obs::RunReportContext ctx;
    for (char& c : algo) c = static_cast<char>(std::toupper(c));
    ctx.scheme = algo;
    ctx.config = is_bbs ? &config : nullptr;
    ctx.num_transactions = db.size();
    ctx.item_universe = db.item_universe();
    ctx.tau = AbsoluteThreshold(min_support, db.size());
    ctx.resolved_threads = static_cast<uint32_t>(
        is_bbs ? ResolveThreads(config.num_threads) : 1);
    ctx.kernel = kernels::ActiveName();
    ctx.index_bits = index_bits;
    ctx.index_hashes = index_hashes;
    ctx.index_backend = index_backend;
    ctx.resident_slice_bytes = resident_slice_bytes;
    ctx.minor_faults = fault_delta.minor;
    ctx.major_faults = fault_delta.major;
    obs::JsonValue report = obs::BuildRunReport(ctx, result);
    if (!stats_json.empty()) {
      if (Status st = obs::WriteJsonFile(report, stats_json); !st.ok()) {
        Die(st);
      }
      std::printf("wrote run report to %s\n", stats_json.c_str());
    }
    if (args.GetBool("report")) obs::PrintRunReportTable(report, std::cout);
  }
  if (tracer.has_value()) {
    if (Status st = tracer->WriteJson(trace_out); !st.ok()) Die(st);
    std::printf("wrote trace (%zu events) to %s\n", tracer->event_count(),
                trace_out.c_str());
  }

  std::printf(
      "%zu frequent patterns (minsup %.4f%%, tau %llu)\n"
      "candidates %llu, false drops %llu, certified %llu, db scans %llu, "
      "%.1f ms\n",
      result.patterns.size(), min_support * 100,
      static_cast<unsigned long long>(
          AbsoluteThreshold(min_support, db.size())),
      static_cast<unsigned long long>(result.stats.candidates),
      static_cast<unsigned long long>(result.stats.false_drops),
      static_cast<unsigned long long>(result.stats.certified),
      static_cast<unsigned long long>(result.stats.db_scans),
      result.stats.total_seconds * 1e3);

  std::sort(result.patterns.begin(), result.patterns.end(),
            [](const Pattern& a, const Pattern& b) {
              return a.support > b.support;
            });
  for (size_t i = 0; i < std::min(top, result.patterns.size()); ++i) {
    std::printf("  %8llu  %s\n",
                static_cast<unsigned long long>(result.patterns[i].support),
                ItemsetToString(result.patterns[i].items).c_str());
  }
  if (args.GetBool("closed") || args.GetBool("maximal")) {
    std::vector<Pattern> condensed = args.GetBool("maximal")
                                         ? MaximalPatterns(result.patterns)
                                         : ClosedPatterns(result.patterns);
    std::printf("%s patterns: %zu of %zu\n",
                args.GetBool("maximal") ? "maximal" : "closed",
                condensed.size(), result.patterns.size());
    result.patterns = std::move(condensed);
  }
  if (std::string out = args.GetString("out"); !out.empty()) {
    std::FILE* f = std::fopen(out.c_str(), "w");
    if (f == nullptr) {
      std::cerr << "cannot open " << out << "\n";
      return 1;
    }
    for (const Pattern& p : result.patterns) {
      for (size_t i = 0; i < p.items.size(); ++i) {
        std::fprintf(f, "%s%u", i ? " " : "", p.items[i]);
      }
      std::fprintf(f, " (%llu)\n",
                   static_cast<unsigned long long>(p.support));
    }
    std::fclose(f);
    std::printf("wrote all patterns to %s\n", out.c_str());
  }
  return 0;
}

bool FileExists(const std::string& path) {
  struct stat st;
  return ::stat(path.c_str(), &st) == 0;
}

/// Index-only count: no database, so no refinement — the printed estimate
/// is exactly what the daemon answers from a snapshot of the same index.
/// This is the oracle the CI smoke test diffs `bbsmine client` against.
int CmdCountIndexOnly(const Args& args) {
  std::string index_arg = args.Require("index");
  Itemset items = ParseItems(args.Require("items"));
  size_t estimate;
  size_t transactions;
  const IndexBackend backend = ParseBackendFlag(args);
  if (FileExists(index_arg + ".manifest")) {
    auto segmented = SegmentedBbs::Load(index_arg, nullptr, backend);
    if (!segmented.ok()) Die(segmented.status());
    estimate = segmented->CountItemSet(items);
    transactions = segmented->num_transactions();
  } else {
    auto bbs = LoadIndexWithBackend(index_arg, backend);
    if (!bbs.ok()) Die(bbs.status());
    estimate = bbs->CountItemSet(items);
    transactions = bbs->num_transactions();
  }
  std::printf("pattern %s\n  estimate %zu (no database: estimate only, "
              "%zu transactions indexed)\n",
              ItemsetToString(items).c_str(), estimate, transactions);
  return 0;
}

int CmdCount(const Args& args) {
  if (args.GetString("db").empty()) return CmdCountIndexOnly(args);
  TransactionDatabase db = LoadDb(args.Require("db"));
  auto bbs = LoadIndexWithBackend(args.Require("index"),
                                  ParseBackendFlag(args));
  if (!bbs.ok()) Die(bbs.status());
  Itemset items = ParseItems(args.Require("items"));

  BitVector constraint;
  const BitVector* constraint_ptr = nullptr;
  if (std::string spec = args.GetString("tid-mod"); !spec.empty()) {
    size_t colon = spec.find(':');
    uint64_t mod = std::strtoull(spec.substr(0, colon).c_str(), nullptr, 10);
    uint64_t rem = colon == std::string::npos
                       ? 0
                       : std::strtoull(spec.substr(colon + 1).c_str(),
                                       nullptr, 10);
    if (mod == 0) {
      std::cerr << "--tid-mod wants M:R with M > 0\n";
      return 2;
    }
    constraint = MakeConstraintSlice(db, [mod, rem](const Transaction& txn) {
      return txn.tid % mod == rem;
    });
    constraint_ptr = &constraint;
  }

  AdhocQueryResult result =
      CountPatternExact(db, *bbs, items, constraint_ptr);
  std::printf("pattern %s%s\n  estimate %llu, exact %llu, probed %llu "
              "transactions\n",
              ItemsetToString(items).c_str(),
              constraint_ptr ? " (constrained)" : "",
              static_cast<unsigned long long>(result.estimate),
              static_cast<unsigned long long>(result.exact),
              static_cast<unsigned long long>(result.probed_transactions));
  return 0;
}

int CmdRules(const Args& args) {
  TransactionDatabase db = LoadDb(args.Require("db"));
  double min_support = args.GetDouble("minsup", 0.003);
  FpGrowthConfig mine;
  mine.min_support = min_support;
  MiningResult result = MineFpGrowth(db, mine);
  result.SortPatterns();

  RuleConfig config;
  config.min_confidence = args.GetDouble("minconf", 0.5);
  config.max_rules = args.GetUint("top", 20);
  std::vector<AssociationRule> rules =
      GenerateRules(result, db.size(), config);
  std::printf("%zu rules (minsup %.3f%%, minconf %.2f)\n", rules.size(),
              min_support * 100, config.min_confidence);
  for (const AssociationRule& r : rules) {
    std::printf("  %s => %s  conf %.3f  lift %.2f  support %llu\n",
                ItemsetToString(r.antecedent).c_str(),
                ItemsetToString(r.consequent).c_str(), r.confidence, r.lift,
                static_cast<unsigned long long>(r.support));
  }
  return 0;
}

int CmdApprox(const Args& args) {
  TransactionDatabase db = LoadDb(args.Require("db"));
  auto bbs = BbsIndex::Load(args.Require("index"));
  if (!bbs.ok()) Die(bbs.status());
  if (bbs->num_transactions() != db.size()) {
    std::cerr << "index/database mismatch\n";
    return 1;
  }
  ApproxMineConfig config;
  config.min_support = args.GetDouble("minsup", 0.003);
  config.min_confidence = args.GetDouble("minconf", 0.0);
  Itemset universe(db.item_universe());
  for (ItemId i = 0; i < db.item_universe(); ++i) universe[i] = i;

  std::vector<ApproxPattern> patterns =
      MineApproximate(*bbs, config, universe);
  size_t certified = 0;
  for (const ApproxPattern& p : patterns) certified += p.certified ? 1 : 0;
  std::printf(
      "%zu approximate patterns (certified %zu) at minsup %.3f%%, "
      "minconf %.2f — no refinement pass was run\n",
      patterns.size(), certified, config.min_support * 100,
      config.min_confidence);
  std::sort(patterns.begin(), patterns.end(),
            [](const ApproxPattern& a, const ApproxPattern& b) {
              return a.est > b.est;
            });
  size_t top = args.GetUint("top", 10);
  for (size_t i = 0; i < std::min(top, patterns.size()); ++i) {
    std::printf("  est %-7llu conf %.3f%s  %s\n",
                static_cast<unsigned long long>(patterns[i].est),
                patterns[i].confidence,
                patterns[i].certified ? "*" : " ",
                ItemsetToString(patterns[i].items).c_str());
  }
  return 0;
}

/// Talks to a running bbsmined (docs/SERVICE.md): sends one request frame,
/// prints the response. --json dumps the raw response document (what the
/// CI smoke test parses); the default output is a human-readable summary.
///
/// Backpressure (Unavailable) responses are retried --retries times with
/// exponential backoff; response timeouts are retried only for idempotent
/// verbs (PING/COUNT/STATS/MINE); transport failures are not retried.
/// Exit codes: 0 ok, 1 application error, 2 usage, 3 transport error,
/// 4 retries exhausted on backpressure, 5 indeterminate (a non-idempotent
/// request such as INSERT was sent but its response timed out — it may or
/// may not have been applied; reconcile before re-sending).
int CmdSplit(const Args& args) {
  // Contiguous transaction-range partition for a bbsrouter fleet: shard i
  // holds the i-th range, so concatenating the shard databases in shard
  // order reproduces the input exactly — the invariant cluster answers
  // (and their bit-identity tests) rest on. When the count does not divide
  // evenly the first (size % shards) shards take one extra transaction.
  TransactionDatabase db = LoadDb(args.Require("db"));
  const uint64_t shards = args.GetUint("shards", 0);
  if (shards == 0 || shards > db.size()) {
    std::cerr << "--shards must be in [1, " << db.size()
              << "] (the database size)\n";
    return 2;
  }
  const std::string prefix = args.Require("out-prefix");
  const size_t base = db.size() / shards;
  const size_t extra = db.size() % shards;
  size_t next = 0;
  for (size_t s = 0; s < shards; ++s) {
    const size_t take = base + (s < extra ? 1 : 0);
    TransactionDatabase part;
    for (size_t t = 0; t < take; ++t) {
      part.Append(db.At(next++).items);
    }
    const std::string path = prefix + "." + std::to_string(s) + ".db";
    if (Status saved = part.Save(path); !saved.ok()) Die(saved);
    std::printf("shard %zu: %zu transactions -> %s\n", s, part.size(),
                path.c_str());
  }
  return 0;
}

int CmdClient(const Args& args) {
  std::string host = args.GetString("host", "127.0.0.1");
  const uint64_t port_value = args.GetUint("port", 7071);
  if (port_value > 65535) {
    std::cerr << "bbsmine client: --port must be in [0, 65535], got "
              << port_value << "\n";
    return 2;
  }
  uint16_t port = static_cast<uint16_t>(port_value);
  std::string verb = args.GetString("verb", "PING");
  for (char& c : verb) c = static_cast<char>(std::toupper(c));

  obs::JsonValue request = obs::JsonValue::Object();
  request.Set("verb", obs::JsonValue::String(verb));
  if (std::string spec = args.GetString("items"); !spec.empty()) {
    request.Set("items", service::ItemsToJson(ParseItems(spec)));
  }
  if (std::string minsup = args.GetString("minsup"); !minsup.empty()) {
    request.Set("minsup",
                obs::JsonValue::Double(args.GetDouble("minsup", 0.003)));
  }
  if (std::string top = args.GetString("top"); !top.empty()) {
    request.Set("top", obs::JsonValue::Uint(args.GetUint("top", 10)));
  }
  if (std::string trace_id = args.GetString("trace-id"); !trace_id.empty()) {
    // Client-supplied request identity: the daemon tags this request's
    // spans, slow-log line, and flight-recorder event with it.
    request.Set("trace_id", obs::JsonValue::String(trace_id));
  }

  service::RetryOptions retry;
  retry.retries = static_cast<uint32_t>(args.GetUint("retries", 0));
  retry.backoff_ms = static_cast<uint32_t>(args.GetUint("backoff-ms", 100));
  retry.max_backoff_ms =
      static_cast<uint32_t>(args.GetUint("max-backoff-ms", 5000));
  retry.timeout_ms = static_cast<int>(args.GetUint("timeout-ms", 30'000));
  retry.jitter_seed = args.GetUint("jitter-seed", 1);

  // One persistent session (the router-pool API); still one-shot here —
  // the process exits after a single exchange, so behavior is unchanged.
  service::ClientSession session(host, port);
  auto outcome = session.CallWithRetry(request, retry);
  if (!outcome.ok()) {
    std::fprintf(stderr, "%s failed: %s\n", verb.c_str(),
                 outcome.status().ToString().c_str());
    // Exhausting retries against a live-but-overloaded daemon (every
    // attempt timed out) is backpressure (4); a timed-out non-idempotent
    // request is indeterminate (5) — it was NOT re-sent and the caller
    // must reconcile; anything else is transport (3).
    if (outcome.status().code() == StatusCode::kIndeterminate) return 5;
    return outcome.status().code() == StatusCode::kUnavailable ? 4 : 3;
  }
  const obs::JsonValue* response = &outcome->response;
  if (outcome->attempts > 1) {
    std::fprintf(stderr, "note: %u attempts\n", outcome->attempts);
  }

  if (args.GetBool("json")) {
    std::printf("%s\n", response->Serialize(2).c_str());
  } else if (!response->at("ok").AsBool()) {
    const obs::JsonValue& error = response->at("error");
    std::fprintf(stderr, "%s failed: %s: %s\n", verb.c_str(),
                 error.at("code").AsString().c_str(),
                 error.at("message").AsString().c_str());
  } else if (verb == "COUNT") {
    std::printf("count %llu (epoch %llu, %llu visible transactions, "
                "batch of %llu)\n",
                static_cast<unsigned long long>(
                    response->at("count").AsUint()),
                static_cast<unsigned long long>(
                    response->at("epoch").AsUint()),
                static_cast<unsigned long long>(
                    response->at("visible_transactions").AsUint()),
                static_cast<unsigned long long>(
                    response->at("batch_size").AsUint()));
  } else if (verb == "MINE") {
    const obs::JsonValue& patterns = response->at("patterns");
    std::printf("%llu frequent patterns (showing %zu)\n",
                static_cast<unsigned long long>(
                    response->at("total_frequent").AsUint()),
                patterns.size());
    for (size_t i = 0; i < patterns.size(); ++i) {
      const obs::JsonValue& entry = patterns.at(i);
      Itemset items;
      for (size_t j = 0; j < entry.at("items").size(); ++j) {
        items.push_back(
            static_cast<ItemId>(entry.at("items").at(j).AsUint()));
      }
      std::printf("  %8llu  %s\n",
                  static_cast<unsigned long long>(
                      entry.at("support").AsUint()),
                  ItemsetToString(items).c_str());
    }
  } else {
    std::printf("%s\n", response->Serialize(2).c_str());
  }
  // A router may answer from a partial fleet; make that loudly visible
  // even in the human-readable output (the JSON carries the same fields).
  if (response->Has("degraded") && response->at("degraded").AsBool()) {
    std::string missing;
    const obs::JsonValue& shards = response->at("missing_shards");
    for (size_t i = 0; i < shards.size(); ++i) {
      if (!missing.empty()) missing += ",";
      missing += std::to_string(shards.at(i).AsUint());
    }
    std::fprintf(stderr, "warning: degraded answer (missing shards: %s)\n",
                 missing.c_str());
  }
  if (outcome->backpressure_exhausted) return 4;
  return response->at("ok").AsBool() ? 0 : 1;
}

void Usage() {
  std::cerr <<
      "usage: bbsmine <command> [--flag value | --flag=value ...]\n"
      "commands:\n"
      "  gen      --out FILE [--txns N] [--items N] [--t F] [--i F]\n"
      "           [--patterns N] [--seed N]\n"
      "  convert  --in FILE --out FILE      (.fimi/.dat = text, else binary)\n"
      "  build    --db FILE --out FILE [--bits N] [--hashes N]\n"
      "           [--hash md5|mult|mod] [--seed N]\n"
      "           [--segment-capacity N]  (segmented index: one file per\n"
      "           segment plus OUT.manifest; the format bbsmined serves)\n"
      "  stats    [--db FILE] [--index FILE]\n"
      "  mine     --db FILE [--index FILE] [--algo sfs|sfp|dfs|dfp|apriori|\n"
      "           fpgrowth|eclat] [--minsup F] [--budget BYTES] [--top N]\n"
      "           [--threads N]  (0 = one per hardware thread; BBS algos\n"
      "           only; the pattern set is identical at any thread count)\n"
      "           [--closed | --maximal] [--out FILE]\n"
      "           [--stats-json FILE]  (schema-versioned JSON run report)\n"
      "           [--report]           (human-readable run-report table)\n"
      "           [--trace-out FILE]   (Chrome trace-event JSON; view at\n"
      "           chrome://tracing or ui.perfetto.dev; BBS algos only)\n"
      "           [--trace-kernels]    (also trace per-kernel-call spans)\n"
      "           [--index-backend resident|mmap]  (mmap serves the v2\n"
      "           aligned index in place: near-zero heap, pages faulted on\n"
      "           demand; results are bit-identical to resident)\n"
      "  count    --db FILE --index FILE --items A,B,C [--tid-mod M:R]\n"
      "           (omit --db for the estimate-only oracle over a saved\n"
      "           index or segmented-index prefix)\n"
      "           [--index-backend resident|mmap]\n"
      "  client   [--host A] [--port N] [--verb PING|COUNT|MINE|INSERT|\n"
      "           STATS|CHECKPOINT|DUMP|SHARDINFO] [--items A,B,C]\n"
      "           [--minsup F]\n"
      "           [--top N] [--trace-id ID] (tag the request's spans,\n"
      "           slow-log line, and flight-recorder event)\n"
      "           [--json] [--retries N] [--backoff-ms N]\n"
      "           [--max-backoff-ms N] [--timeout-ms N]\n"
      "           (talks to a running bbsmined; retries Unavailable with\n"
      "           exponential backoff; response timeouts retry only for\n"
      "           idempotent verbs; exit 0 ok, 1 application error,\n"
      "           3 transport error, 4 backpressure retries exhausted,\n"
      "           5 indeterminate: INSERT sent but response timed out)\n"
      "  split    --db FILE --shards N --out-prefix P\n"
      "           (contiguous transaction-range partition for a bbsrouter\n"
      "           fleet: writes P.0.db .. P.N-1.db; concatenating them in\n"
      "           shard order reproduces the input exactly)\n"
      "  rules    --db FILE [--minsup F] [--minconf F] [--top N]\n"
      "  approx   --db FILE --index FILE [--minsup F] [--minconf F]\n"
      "           [--top N]\n";
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    Usage();
    return 2;
  }
  std::string command = argv[1];
  Args args(argc, argv, 2);
  if (command == "gen") return CmdGen(args);
  if (command == "convert") return CmdConvert(args);
  if (command == "build") return CmdBuild(args);
  if (command == "stats") return CmdStats(args);
  if (command == "mine") return CmdMine(args);
  if (command == "count") return CmdCount(args);
  if (command == "client") return CmdClient(args);
  if (command == "split") return CmdSplit(args);
  if (command == "rules") return CmdRules(args);
  if (command == "approx") return CmdApprox(args);
  Usage();
  return 2;
}
