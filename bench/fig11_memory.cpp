// Figure 11: effect of the memory size (250 KB .. 2 MB) on DFP, APS and
// FPS.
//
// Expected shape (paper Section 4.7): every scheme's response time grows as
// memory shrinks — DFP pays the adaptive pre/post-processing (the BBS is
// folded into a MemBBS, with more false drops and thus more probes), FPS
// pays extra scans when the FP-tree no longer fits, and APS partitions its
// candidate sets across multiple scans. DFP stays the best overall. The
// response metric here includes the simulated I/O cost, which is what the
// memory pressure actually buys.

#include <iostream>

#include "bench_util.h"

using namespace bbsmine;
using namespace bbsmine::bench;

int main(int argc, char** argv) {
  bool quick = QuickMode(argc, argv);
  uint32_t d = quick ? 4'000 : 10'000;
  TransactionDatabase db = MakeQuest(d, 10'000, 10, 10);
  BbsIndex bbs = MakeBbs(db, 1600);
  double min_support = 0.003;

  const std::vector<uint64_t> budgets =
      quick ? std::vector<uint64_t>{250'000, 2'000'000}
            : std::vector<uint64_t>{250'000, 500'000, 1'000'000, 2'000'000};

  std::cout << "BBS size: " << bbs.SerializedBytes() / 1024
            << " KiB, database size: " << db.SerializedBytes() / 1024
            << " KiB\n";

  ResultTable table("Figure 11: response time vs memory budget");
  table.SetHeader({"memory_KB", "DFP_wall_ms", "DFP_resp_s", "DFP_fdr",
                   "FPS_wall_ms", "FPS_resp_s", "FPS_scans", "APS_wall_ms",
                   "APS_resp_s", "APS_scans"});

  for (uint64_t budget : budgets) {
    SchemeResult dfp =
        RunBbsScheme(db, bbs, Algorithm::kDFP, min_support, budget);
    SchemeResult fps = RunFpGrowth(db, min_support, budget);
    SchemeResult aps = RunApriori(db, min_support, budget);
    table.AddRow({std::to_string(budget / 1000),
                  ResultTable::Num(dfp.wall_seconds * 1e3, 1),
                  ResultTable::Num(dfp.response_seconds(), 3),
                  ResultTable::Num(dfp.fdr, 4),
                  ResultTable::Num(fps.wall_seconds * 1e3, 1),
                  ResultTable::Num(fps.response_seconds(), 3),
                  ResultTable::Int(static_cast<long long>(fps.db_scans)),
                  ResultTable::Num(aps.wall_seconds * 1e3, 1),
                  ResultTable::Num(aps.response_seconds(), 3),
                  ResultTable::Int(static_cast<long long>(aps.db_scans))});
  }
  table.Print(std::cout);
  table.PrintCsv(std::cout);
  return 0;
}
