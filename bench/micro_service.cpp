// micro_service — overhead gate for the bbsmined observability plane.
//
// Measures BbsService::Handle on a COUNT request two ways: a bare service
// (no tracer, no slow log, no flight recorder) and one with the full plane
// attached but quiet — sampling set so no request traces, the slow-query
// threshold set so no request logs, the flight ring recording every
// request (it always does; recording is the plane's only unconditional
// per-request work). The delta is what production pays for having the
// plane armed, and the gate fails when it exceeds the limit (default 2%,
// the bound docs/OBSERVABILITY.md promises).
//
// The companion scripts/service_overhead.sh makes the same comparison
// end-to-end through bbsbench and a real daemon; this binary is the
// in-process version CI can run quickly and deterministically.
//
// Usage: micro_service [--limit-pct P]

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "core/segmented_bbs.h"
#include "datagen/quest_gen.h"
#include "obs/json.h"
#include "obs/trace.h"
#include "service/flight_recorder.h"
#include "service/metrics.h"
#include "service/server.h"
#include "service/slow_log.h"
#include "service/snapshot.h"
#include "service/wire.h"

using namespace bbsmine;

namespace {

/// Keeps `value` observable so the handled responses are not optimized
/// away (same contract as benchmark::DoNotOptimize, without the library).
template <typename T>
inline void Consume(const T& value) {
  asm volatile("" : : "r,m"(value) : "memory");
}

/// Per-call wall time of `fn(thread, call)` replayed from `num_threads`
/// concurrent submitters, `batch` calls each. Concurrent submission is
/// what production sees (it is what makes the scheduler fuse batches),
/// and averaging over num_threads * batch calls drowns the per-wakeup
/// futex jitter that dominates a single request's latency.
template <typename Fn>
double TimeBatchNs(Fn&& fn, size_t num_threads, uint64_t batch) {
  auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  threads.reserve(num_threads);
  for (size_t t = 0; t < num_threads; ++t) {
    threads.emplace_back([&fn, t, batch] {
      for (uint64_t i = 0; i < batch; ++i) fn(t, i);
    });
  }
  for (std::thread& thread : threads) thread.join();
  return std::chrono::duration<double, std::nano>(
             std::chrono::steady_clock::now() - start)
             .count() /
         static_cast<double>(num_threads * batch);
}

/// Compares two workloads' per-call wall time and returns the median of
/// the per-rep B/A ratios (plus representative per-call times).
///
/// Handle() is µs-scale and dominated by the scheduler's thread handoff,
/// whose cost drifts with CPU frequency and thread placement over a run.
/// Sequential A-then-B timing (the micro_bbs idiom) drowns a percent-
/// level delta in that drift; here each rep times an A batch and a B
/// batch back to back, so the pair shares its drift and the ratio
/// isolates the configuration delta. The median over reps discards the
/// pairs a descheduling landed in.
template <typename FnA, typename FnB>
double MedianRatio(FnA&& a, FnB&& b, size_t num_threads, double* a_ns,
                   double* b_ns) {
  constexpr int kReps = 9;
  constexpr double kMinRepNs = 1e8;
  uint64_t batch = 16;
  while (TimeBatchNs(a, num_threads, batch) *
                 static_cast<double>(num_threads * batch) <
             kMinRepNs &&
         batch < (1u << 20)) {
    batch *= 4;
  }
  TimeBatchNs(b, num_threads, batch);  // equalize warm-up before the reps
  std::vector<double> ratios;
  std::vector<double> a_times;
  for (int rep = 0; rep < kReps; ++rep) {
    // Alternate which workload goes first: whichever runs second in a
    // pair inherits a slightly different cache/frequency state, and that
    // bias must not masquerade as plane overhead.
    double at;
    double bt;
    if (rep % 2 == 0) {
      at = TimeBatchNs(a, num_threads, batch);
      bt = TimeBatchNs(b, num_threads, batch);
    } else {
      bt = TimeBatchNs(b, num_threads, batch);
      at = TimeBatchNs(a, num_threads, batch);
    }
    ratios.push_back(bt / at);
    a_times.push_back(at);
  }
  std::sort(ratios.begin(), ratios.end());
  std::sort(a_times.begin(), a_times.end());
  *a_ns = a_times[kReps / 2];
  *b_ns = *a_ns * ratios[kReps / 2];
  return ratios[kReps / 2];
}

std::vector<obs::JsonValue> BuildRequests() {
  // A fixed COUNT mix (sizes 1..3), precomputed so both loops replay the
  // identical request sequence with no JSON construction in the timed
  // region.
  std::vector<obs::JsonValue> requests;
  for (uint32_t q = 0; q < 64; ++q) {
    Itemset items;
    for (uint32_t k = 0; k <= q % 3; ++k) {
      items.push_back(static_cast<ItemId>((q * 131 + k * 977) % 10'000));
    }
    Canonicalize(&items);
    obs::JsonValue request = obs::JsonValue::Object();
    request.Set("verb", obs::JsonValue::String("COUNT"));
    request.Set("items", service::ItemsToJson(items));
    requests.push_back(std::move(request));
  }
  return requests;
}

}  // namespace

int main(int argc, char** argv) {
  double limit_pct = 2.0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--limit-pct") == 0 && i + 1 < argc) {
      limit_pct = std::atof(argv[++i]);
    } else {
      std::fprintf(stderr, "usage: micro_service [--limit-pct P]\n");
      return 2;
    }
  }

  QuestConfig quest;  // default T10.I10.D10K
  TransactionDatabase db = std::move(GenerateQuest(quest)).value();
  BbsConfig config;
  // Wide vectors over many segments: each COUNT streams enough slice
  // words that Handle's cost is dominated by deterministic index work
  // (as production requests are), not by the futex handoff whose jitter
  // would otherwise drown a percent-level overhead.
  config.num_bits = 16384;
  config.num_hashes = 4;
  auto index = SegmentedBbs::Create(config, /*segment_capacity=*/1024);
  if (!index.ok() || !index->InsertAll(db).ok()) {
    std::fprintf(stderr, "micro_service: failed to build the index\n");
    return 1;
  }
  auto manager = service::SnapshotManager::FromIndex(*index);
  if (!manager.ok()) {
    std::fprintf(stderr, "micro_service: %s\n",
                 manager.status().ToString().c_str());
    return 1;
  }
  std::vector<obs::JsonValue> requests = BuildRequests();

  // Bare: the plane absent, as a daemon started with no --trace-out /
  // --slow-log / --flight-recorder-size runs.
  service::BbsService bare(&*manager, nullptr, service::ServiceOptions{});

  // Armed-but-quiet: tracer attached with a sampling period no request
  // hits, slow log attached with an unreachable threshold, flight ring
  // recording every request.
  std::string slow_path =
      (std::filesystem::temp_directory_path() /
       ("micro_service_slow_" + std::to_string(::getpid()) + ".jsonl"))
          .string();
  auto slow_log = service::SlowQueryLog::Open(slow_path);
  if (!slow_log.ok()) {
    std::fprintf(stderr, "micro_service: %s\n",
                 slow_log.status().ToString().c_str());
    return 1;
  }
  obs::Tracer tracer(obs::kTraceService);
  service::FlightRecorder recorder(/*ring_capacity=*/64);
  service::ServiceOptions armed_options;
  armed_options.tracer = &tracer;
  armed_options.trace_sample = 1u << 30;  // sampled: effectively never
  armed_options.slow_log = slow_log->get();
  armed_options.slow_query_us = ~0ull;  // logged: never
  armed_options.flight_recorder = &recorder;
  service::BbsService armed(&*manager, nullptr, armed_options);
  // One flight ring per submitter: rings are single-writer, exactly as
  // the socket server hands one per connection.
  constexpr size_t kSubmitters = 4;
  std::vector<service::RequestContext> ctxs(kSubmitters);
  for (size_t t = 0; t < kSubmitters; ++t) {
    ctxs[t].connection_id = t + 1;
    ctxs[t].flight = recorder.AcquireRing(t + 1);
  }
  // Warm-up: request seq 0 always samples (seq % period == 0), so absorb
  // it outside the timed region; afterwards no request may trace or log.
  Consume(armed.Handle(requests[0], ctxs[0]));
  const size_t traced_after_warmup = tracer.event_count();

  // A descheduling storm can land entirely inside one mode's batches and
  // fake a percent-level delta, so a failing measurement gets re-measured:
  // a real regression fails every attempt, noise does not repeat.
  constexpr int kAttempts = 5;
  double bare_ns = 0;
  double armed_ns = 0;
  double overhead_pct = 0;
  for (int attempt = 1; attempt <= kAttempts; ++attempt) {
    double ratio = MedianRatio(
        [&](size_t t, uint64_t i) {
          Consume(bare.Handle(requests[(t * 17 + i) % requests.size()]));
        },
        [&](size_t t, uint64_t i) {
          Consume(armed.Handle(requests[(t * 17 + i) % requests.size()],
                               ctxs[t]));
        },
        kSubmitters, &bare_ns, &armed_ns);
    overhead_pct = (ratio - 1.0) * 100.0;
    std::printf(
        "observability-plane overhead on Handle(COUNT), attempt %d/%d: "
        "bare %.0f ns, armed-but-quiet %.0f ns, overhead %.2f%% "
        "(limit %.1f%%)\n",
        attempt, kAttempts, bare_ns, armed_ns, overhead_pct, limit_pct);
    if (overhead_pct < limit_pct) break;
  }
  uint64_t flight_recorded = 0;
  for (const service::RequestContext& ctx : ctxs) {
    flight_recorded += ctx.flight->recorded();
  }
  std::printf("sanity: traced=%zu slow_logged=%llu flight_recorded=%llu\n",
              tracer.event_count(),
              static_cast<unsigned long long>((*slow_log)->appended()),
              static_cast<unsigned long long>(flight_recorded));
  std::filesystem::remove(slow_path);

  if (tracer.event_count() != traced_after_warmup ||
      (*slow_log)->appended() != 0) {
    std::fprintf(stderr,
                 "FAIL: the quiet configuration produced trace/slow-log "
                 "output; the measurement is not an apples-to-apples "
                 "overhead\n");
    return 1;
  }
  if (overhead_pct >= limit_pct) {
    std::fprintf(stderr, "FAIL: observability-plane overhead above limit\n");
    return 1;
  }
  return 0;
}
