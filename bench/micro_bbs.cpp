// Micro-benchmarks of the BBS primitives (google-benchmark).
//
// Covers the ablation hooks called out in DESIGN.md: word-parallel AND with
// fused popcount, hash-family throughput (MD5 vs multiply-shift), index
// insertion, CountItemSet (with and without the sparsest-slice early exit),
// folding, and the hybrid dense/sparse intersection.
//
// Before the google-benchmark suite runs, main() measures the overhead of
// the observability layer on the CountItemSet hot loop — a disarmed
// TraceSpan plus the counter updates the engine performs per candidate —
// against the bare loop, and fails (exit 1) if it exceeds 2%.

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>

#include "core/bbs_index.h"
#include "core/mining_types.h"
#include "core/segmented_bbs.h"
#include "core/tidset.h"
#include "datagen/quest_gen.h"
#include "obs/trace.h"
#include "util/bitvector.h"
#include "util/md5.h"
#include "util/rng.h"

namespace bbsmine {
namespace {

BitVector RandomVector(size_t bits, double density, uint64_t seed) {
  Rng rng(seed);
  BitVector v(bits);
  for (size_t i = 0; i < bits; ++i) {
    if (rng.Bernoulli(density)) v.Set(i);
  }
  return v;
}

void BM_BitVectorAndWithCount(benchmark::State& state) {
  size_t bits = static_cast<size_t>(state.range(0));
  BitVector a = RandomVector(bits, 0.05, 1);
  BitVector b = RandomVector(bits, 0.05, 2);
  BitVector scratch = a;
  for (auto _ : state) {
    scratch = a;
    benchmark::DoNotOptimize(scratch.AndWithCount(b));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(bits / 8) * 2);
}
BENCHMARK(BM_BitVectorAndWithCount)->Arg(10'000)->Arg(100'000)->Arg(1'000'000);

void BM_SparseIntersection(benchmark::State& state) {
  size_t bits = 100'000;
  size_t sparse_count = static_cast<size_t>(state.range(0));
  BitVector with = RandomVector(bits, 0.05, 3);
  TidSet parent;
  {
    Rng rng(4);
    std::vector<uint32_t> tids;
    for (size_t i = 0; i < sparse_count; ++i) {
      tids.push_back(static_cast<uint32_t>(rng.Uniform(bits)));
    }
    std::sort(tids.begin(), tids.end());
    tids.erase(std::unique(tids.begin(), tids.end()), tids.end());
    parent.AssignSparse(std::move(tids));
  }
  TidSet out;
  for (auto _ : state) {
    benchmark::DoNotOptimize(out.AssignIntersection(parent, with, 1 << 20));
  }
}
BENCHMARK(BM_SparseIntersection)->Arg(32)->Arg(256)->Arg(2048);

void BM_Md5Hash(benchmark::State& state) {
  std::string name = "123456";
  for (auto _ : state) {
    benchmark::DoNotOptimize(Md5::Hash(name));
  }
}
BENCHMARK(BM_Md5Hash);

void BM_HashFamilyPositions(benchmark::State& state) {
  HashKind kind = static_cast<HashKind>(state.range(0));
  auto family = BloomHashFamily::Create(1600, 4, kind);
  ItemId item = 0;
  for (auto _ : state) {
    // Defeat the memo cache to measure raw hashing.
    state.PauseTiming();
    auto fresh = BloomHashFamily::Create(1600, 4, kind, item + 1);
    state.ResumeTiming();
    benchmark::DoNotOptimize(fresh->Positions(item));
    ++item;
  }
  (void)family;
}
BENCHMARK(BM_HashFamilyPositions)
    ->Arg(static_cast<int>(HashKind::kMd5))
    ->Arg(static_cast<int>(HashKind::kMultiplyShift));

void BM_BbsInsert(benchmark::State& state) {
  QuestConfig quest;
  quest.num_transactions = 1'000;
  quest.num_items = 10'000;
  auto db = GenerateQuest(quest);
  BbsConfig config;
  config.num_bits = static_cast<uint32_t>(state.range(0));
  size_t t = 0;
  auto bbs = BbsIndex::Create(config);
  for (auto _ : state) {
    bbs->Insert(db->At(t % db->size()).items);
    ++t;
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_BbsInsert)->Arg(400)->Arg(1600)->Arg(6400);

class CountFixture : public benchmark::Fixture {
 public:
  void SetUp(const benchmark::State&) override {
    if (bbs) return;
    QuestConfig quest;  // default T10.I10.D10K
    db = std::move(GenerateQuest(quest)).value();
    BbsConfig config;
    config.num_bits = 1600;
    config.num_hashes = 4;
    bbs.emplace(std::move(BbsIndex::Create(config)).value());
    bbs->InsertAll(db);
  }
  TransactionDatabase db;
  std::optional<BbsIndex> bbs;
};

BENCHMARK_DEFINE_F(CountFixture, CountItemSet)(benchmark::State& state) {
  Rng rng(7);
  Itemset items(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    for (ItemId& item : items) {
      item = static_cast<ItemId>(rng.Uniform(10'000));
    }
    Canonicalize(&items);
    benchmark::DoNotOptimize(bbs->CountItemSet(items));
  }
}
BENCHMARK_REGISTER_F(CountFixture, CountItemSet)->Arg(1)->Arg(3)->Arg(8);

BENCHMARK_DEFINE_F(CountFixture, CountItemSetAtLeast)
(benchmark::State& state) {
  Rng rng(7);
  Itemset items(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    for (ItemId& item : items) {
      item = static_cast<ItemId>(rng.Uniform(10'000));
    }
    Canonicalize(&items);
    benchmark::DoNotOptimize(bbs->CountItemSetAtLeast(items, 30));
  }
}
BENCHMARK_REGISTER_F(CountFixture, CountItemSetAtLeast)->Arg(1)->Arg(3)->Arg(8);

/// Segment-parallel counting: range(0) = thread count (1 = serial path).
class SegmentedCountFixture : public benchmark::Fixture {
 public:
  void SetUp(const benchmark::State&) override {
    if (bbs) return;
    QuestConfig quest;  // default T10.I10.D10K
    db = std::move(GenerateQuest(quest)).value();
    BbsConfig config;
    config.num_bits = 1600;
    config.num_hashes = 4;
    bbs.emplace(std::move(SegmentedBbs::Create(config, 1000)).value());
    for (size_t t = 0; t < db.size(); ++t) {
      if (!bbs->Insert(db.At(t).items).ok()) std::abort();
    }
  }
  TransactionDatabase db;
  std::optional<SegmentedBbs> bbs;
};

BENCHMARK_DEFINE_F(SegmentedCountFixture, CountItemSet)
(benchmark::State& state) {
  size_t threads = static_cast<size_t>(state.range(0));
  Rng rng(7);
  Itemset items(3);
  for (auto _ : state) {
    for (ItemId& item : items) {
      item = static_cast<ItemId>(rng.Uniform(10'000));
    }
    Canonicalize(&items);
    benchmark::DoNotOptimize(
        bbs->CountItemSet(items, /*io=*/nullptr, threads));
  }
}
BENCHMARK_REGISTER_F(SegmentedCountFixture, CountItemSet)
    ->Arg(1)->Arg(2)->Arg(4);

BENCHMARK_DEFINE_F(CountFixture, Fold)(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(bbs->Fold(static_cast<uint32_t>(state.range(0))));
  }
}
BENCHMARK_REGISTER_F(CountFixture, Fold)->Arg(64)->Arg(400);

/// Best-of-`kReps` wall time of `fn()` with a calibrated inner loop, in
/// nanoseconds per call (same idiom as micro_kernels.cpp).
template <typename Fn>
double TimeNs(Fn&& fn) {
  constexpr int kReps = 5;
  constexpr double kMinBatchNs = 5e6;
  uint64_t batch = 1;
  for (;;) {
    auto start = std::chrono::steady_clock::now();
    for (uint64_t i = 0; i < batch; ++i) fn();
    double ns = std::chrono::duration<double, std::nano>(
                    std::chrono::steady_clock::now() - start)
                    .count();
    if (ns >= kMinBatchNs || batch >= (1u << 24)) break;
    batch *= 4;
  }
  double best = 1e30;
  for (int rep = 0; rep < kReps; ++rep) {
    auto start = std::chrono::steady_clock::now();
    for (uint64_t i = 0; i < batch; ++i) fn();
    double ns = std::chrono::duration<double, std::nano>(
                    std::chrono::steady_clock::now() - start)
                    .count();
    best = std::min(best, ns / static_cast<double>(batch));
  }
  return best;
}

/// Measures the cost the observability layer adds to one CountItemSet
/// candidate test when tracing is off (the production default): a disarmed
/// TraceSpan (null tracer) plus the per-candidate counter and depth-
/// histogram updates. Returns false when the overhead exceeds `limit_pct`.
bool CheckInstrumentationOverhead(double limit_pct) {
  QuestConfig quest;  // default T10.I10.D10K
  TransactionDatabase db = std::move(GenerateQuest(quest)).value();
  BbsConfig config;
  config.num_bits = 1600;
  config.num_hashes = 4;
  BbsIndex bbs = std::move(BbsIndex::Create(config)).value();
  bbs.InsertAll(db);

  // A fixed query mix (sizes 1..4), precomputed so both loops replay the
  // identical candidate sequence with no RNG in the timed region.
  Rng rng(7);
  std::vector<Itemset> queries(64);
  for (size_t q = 0; q < queries.size(); ++q) {
    queries[q].resize(1 + q % 4);
    for (ItemId& item : queries[q]) {
      item = static_cast<ItemId>(rng.Uniform(10'000));
    }
    Canonicalize(&queries[q]);
  }

  size_t next_bare = 0;
  double bare_ns = TimeNs([&] {
    const Itemset& items = queries[next_bare++ % queries.size()];
    benchmark::DoNotOptimize(bbs.CountItemSet(items));
  });

  MineStats stats;
  size_t next_instr = 0;
  double instrumented_ns = TimeNs([&] {
    const Itemset& items = queries[next_instr++ % queries.size()];
    obs::TraceSpan span(nullptr, obs::kTraceKernel, "bbs.count");
    ++stats.candidates;
    stats.candidates_by_depth.Add(items.size());
    benchmark::DoNotOptimize(bbs.CountItemSet(items));
  });
  benchmark::DoNotOptimize(stats.candidates);

  double overhead_pct = (instrumented_ns - bare_ns) / bare_ns * 100.0;
  std::printf(
      "instrumentation overhead on CountItemSet: bare %.1f ns, "
      "instrumented %.1f ns, overhead %.2f%% (limit %.1f%%)\n\n",
      bare_ns, instrumented_ns, overhead_pct, limit_pct);
  return overhead_pct < limit_pct;
}

}  // namespace
}  // namespace bbsmine

int main(int argc, char** argv) {
  bool overhead_ok = bbsmine::CheckInstrumentationOverhead(2.0);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  if (!overhead_ok) {
    std::fprintf(stderr, "FAIL: instrumentation overhead above limit\n");
    return 1;
  }
  return 0;
}
