// Figure 10: effect of the average number of items per transaction
// (T = 10 .. 30).
//
// Expected shape (paper Section 4.6): longer transactions mean more
// frequent itemsets at a fixed threshold, so every scheme slows down; more
// set bits per signature also raise the BBS false-drop rate; DFP remains
// the best of the proposed schemes.

#include <iostream>

#include "bench_util.h"

using namespace bbsmine;
using namespace bbsmine::bench;

int main(int argc, char** argv) {
  bool quick = QuickMode(argc, argv);
  // The paper sweeps T = 10..30. Our generator's pattern density makes
  // T = 30 yield 1.4M frequent itemsets at tau = 0.3% (intractable for the
  // APS/SFS baselines at full scale), so the sweep stops at T = 20 — the
  // paper's monotone-increasing shape is fully visible. See EXPERIMENTS.md.
  const std::vector<double> lengths =
      quick ? std::vector<double>{10, 15}
            : std::vector<double>{10, 12, 15, 20};
  double min_support = 0.003;
  uint32_t d = quick ? 4'000 : 10'000;

  ResultTable table("Figure 10: response time vs avg items per transaction");
  std::vector<std::string> header = {"T", "patterns"};
  for (const char* name : {"APS", "FPS", "SFS", "SFP", "DFS", "DFP"}) {
    header.push_back(std::string(name) + "_wall_ms");
  }
  header.push_back("DFP_fdr");
  table.SetHeader(header);

  for (double t : lengths) {
    TransactionDatabase db = MakeQuest(d, 10'000, t, 10);
    BbsIndex bbs = MakeBbs(db, 1600);
    std::vector<SchemeResult> results;
    results.push_back(RunApriori(db, min_support));
    results.push_back(RunFpGrowth(db, min_support));
    for (Algorithm a : {Algorithm::kSFS, Algorithm::kSFP, Algorithm::kDFS,
                        Algorithm::kDFP}) {
      results.push_back(RunBbsScheme(db, bbs, a, min_support));
    }
    std::vector<std::string> row = {
        ResultTable::Num(t, 0),
        ResultTable::Int(static_cast<long long>(results.back().patterns))};
    for (const SchemeResult& r : results) {
      row.push_back(ResultTable::Num(r.wall_seconds * 1e3, 1));
    }
    row.push_back(ResultTable::Num(results.back().fdr, 4));
    table.AddRow(row);
  }
  table.Print(std::cout);
  table.PrintCsv(std::cout);
  return 0;
}
