// Figure 12: dynamic databases (paper Section 4.8).
//
// A web-server log grows by one day's transactions at a time (5000 files,
// 10% of hot files churn daily — the workload of [10], synthesized; see
// DESIGN.md substitutions). After each day's batch we mine the accumulated
// database with:
//   DFP — the BBS absorbs the new transactions in place (insert cost is
//         charged), no rebuild;
//   FPS — the FP-tree must be rebuilt from scratch over the full history;
//   APS — re-scans the full history once per level.
//
// Expected shape: DFP's per-day cost grows slowest; APS is worst; the gap
// widens with each additional day.

#include <iostream>

#include "bench_util.h"
#include "core/segmented_bbs.h"
#include "datagen/weblog_gen.h"
#include "util/stopwatch.h"

using namespace bbsmine;
using namespace bbsmine::bench;

int main(int argc, char** argv) {
  bool quick = QuickMode(argc, argv);
  WebLogConfig weblog;
  weblog.num_files = 5'000;
  weblog.transactions_per_day = quick ? 5'000 : 20'000;
  auto gen = WebLogGenerator::Create(weblog);
  if (!gen.ok()) {
    std::cerr << gen.status().ToString() << "\n";
    return 1;
  }
  int days = quick ? 3 : 5;
  double min_support = 0.01;

  // m is tuned to the 5000-file universe (the paper's default m = 1600 is
  // calibrated for 10K items); an oversized vector only inflates the BBS's
  // own footprint relative to the raw log.
  BbsConfig config;
  config.num_bits = 400;
  config.num_hashes = 4;
  auto bbs = BbsIndex::Create(config);
  if (!bbs.ok()) return 1;
  // A segmented twin absorbs the same daily batches; its appends only ever
  // touch the open tail segment, which is what the bbsmined service (and
  // any disk-resident deployment) relies on. The timing column quantifies
  // the overhead of segment rollover against the monolithic insert path.
  auto segmented = SegmentedBbs::Create(config, /*segment_capacity=*/8192);
  if (!segmented.ok()) return 1;

  TransactionDatabase db;

  ResultTable table("Figure 12: dynamic database, per-day mining cost");
  table.SetHeader({"day", "transactions", "patterns", "DFP_ms(insert+mine)",
                   "seg_insert_ms", "FPS_ms(rebuild+mine)", "APS_ms(rescan)",
                   "DFP_resp_s", "FPS_resp_s", "APS_resp_s"});

  for (int day = 1; day <= days; ++day) {
    size_t before = db.size();
    gen->GenerateDay(&db);

    // DFP: incremental insert (charged as sequential appends) + mine.
    Stopwatch insert_timer;
    IoStats insert_io;
    for (size_t t = before; t < db.size(); ++t) bbs->Insert(db.At(t).items);
    insert_io.writes = BlocksFor(
        (db.size() - before) * (bbs->num_bits() / 8), 4096);
    double insert_wall = insert_timer.ElapsedSeconds();

    // Segmented append of the same day's suffix (tail segments only).
    Stopwatch seg_timer;
    if (!segmented->InsertAll(db, before, db.size() - before).ok()) return 1;
    double seg_wall = seg_timer.ElapsedSeconds();

    SchemeResult dfp = RunBbsScheme(db, *bbs, Algorithm::kDFP, min_support);
    dfp.wall_seconds += insert_wall;
    dfp.sim_io_seconds +=
        SimulatedIoSeconds(insert_io, IoCostParams::PaperEraDisk());

    SchemeResult fps = RunFpGrowth(db, min_support);
    SchemeResult aps = RunApriori(db, min_support);

    table.AddRow({std::to_string(day), std::to_string(db.size()),
                  ResultTable::Int(static_cast<long long>(dfp.patterns)),
                  ResultTable::Num(dfp.wall_seconds * 1e3, 1),
                  ResultTable::Num(seg_wall * 1e3, 1),
                  ResultTable::Num(fps.wall_seconds * 1e3, 1),
                  ResultTable::Num(aps.wall_seconds * 1e3, 1),
                  ResultTable::Num(dfp.response_seconds(), 3),
                  ResultTable::Num(fps.response_seconds(), 3),
                  ResultTable::Num(aps.response_seconds(), 3)});
  }
  table.Print(std::cout);
  table.PrintCsv(std::cout);
  return 0;
}
