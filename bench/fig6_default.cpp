// Figure 6: comparison of all six schemes at the default settings
// (T10.I10.D10K, 10K items, m = 1600, tau = 0.3%).
//
// Expected shape (paper Section 4.2): every BBS scheme beats APS (SFS at
// ~90% of APS's time, DFP under 20%); FPS is competitive, beating SFS/DFS
// but losing to the probe-based SFP/DFP in the paper's environment. On
// modern hardware FP-growth's in-memory construction is far cheaper than in
// 2002, so FPS may win on raw wall-clock — see EXPERIMENTS.md.

#include <iostream>

#include "bench_util.h"

using namespace bbsmine;
using namespace bbsmine::bench;

int main(int argc, char** argv) {
  bool quick = QuickMode(argc, argv);
  TransactionDatabase db = MakeQuest(quick ? 4'000 : 10'000, 10'000, 10, 10);
  BbsIndex bbs = MakeBbs(db, 1600);
  double min_support = 0.003;

  std::vector<SchemeResult> results;
  results.push_back(RunApriori(db, min_support));
  results.push_back(RunFpGrowth(db, min_support));
  for (Algorithm a : {Algorithm::kSFS, Algorithm::kSFP, Algorithm::kDFS,
                      Algorithm::kDFP}) {
    results.push_back(RunBbsScheme(db, bbs, a, min_support));
  }

  ResultTable table("Figure 6: all schemes at default settings");
  table.SetHeader({"scheme", "patterns", "wall_ms", "resp_s", "fdr",
                   "certified", "db_scans", "pct_of_APS_wall"});
  double aps_wall = results[0].wall_seconds;
  for (const SchemeResult& r : results) {
    table.AddRow({r.name, ResultTable::Int(static_cast<long long>(r.patterns)),
                  ResultTable::Num(r.wall_seconds * 1e3, 1),
                  ResultTable::Num(r.response_seconds(), 3),
                  ResultTable::Num(r.fdr, 4),
                  ResultTable::Int(static_cast<long long>(r.certified)),
                  ResultTable::Int(static_cast<long long>(r.db_scans)),
                  ResultTable::Num(100.0 * r.wall_seconds / aps_wall, 1)});
  }
  table.Print(std::cout);
  table.PrintCsv(std::cout);
  return 0;
}
