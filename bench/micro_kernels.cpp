// Microbenchmark of the SIMD kernel layer (util/bitvector_kernels.h).
//
// Times every kernel available on this machine on the four hot primitives
// (count, and_count, assign_and_count, and_many_count) at slice sizes
// bracketing the paper's workloads, plus the pre-kernel baseline for a
// k-way CountItemSet: k-1 scalar pairwise AND sweeps followed by a count.
// The headline number is the speedup of the native fused and_many_count
// over that baseline.
//
// Emits BENCH_kernels.json (path overridable as argv[1]) for the CI
// artifact, alongside a human-readable table on stdout.

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "util/bitvector.h"
#include "util/bitvector_kernels.h"
#include "util/rng.h"

using namespace bbsmine;
using Word = kernels::Word;
using WordVector = BitVector::WordVector;

namespace {

// Sink defeating dead-code elimination of the benchmarked counts.
volatile uint64_t g_sink = 0;

WordVector RandomWords(size_t n, Rng* rng) {
  WordVector words(n);
  for (Word& w : words) w = rng->Next();
  return words;
}

/// Best-of-`kReps` wall time of `fn()` with a calibrated inner loop, in
/// nanoseconds per call.
template <typename Fn>
double TimeNs(Fn&& fn) {
  constexpr int kReps = 5;
  constexpr double kMinBatchNs = 2e6;
  // Calibrate the batch size so one batch runs long enough to time.
  uint64_t batch = 1;
  for (;;) {
    auto start = std::chrono::steady_clock::now();
    for (uint64_t i = 0; i < batch; ++i) fn();
    double ns = std::chrono::duration<double, std::nano>(
                    std::chrono::steady_clock::now() - start)
                    .count();
    if (ns >= kMinBatchNs || batch >= (1u << 24)) break;
    batch *= 4;
  }
  double best = 1e30;
  for (int rep = 0; rep < kReps; ++rep) {
    auto start = std::chrono::steady_clock::now();
    for (uint64_t i = 0; i < batch; ++i) fn();
    double ns = std::chrono::duration<double, std::nano>(
                    std::chrono::steady_clock::now() - start)
                    .count();
    best = std::min(best, ns / static_cast<double>(batch));
  }
  return best;
}

struct OpResult {
  std::string op;
  size_t bits;
  double ns;
  /// Words streamed per call (for bandwidth: reads + writes, 8 B each).
  double words_moved;
  double GiBPerSec() const {
    return words_moved * 8.0 / (ns * 1e-9) / (1024.0 * 1024.0 * 1024.0);
  }
};

}  // namespace

int main(int argc, char** argv) {
  const char* json_path = argc > 1 ? argv[1] : "BENCH_kernels.json";
  const size_t kSizesBits[] = {1u << 14, 1u << 17, 1u << 20};
  constexpr size_t kManyK = 8;

  Rng rng(2002);
  const char* default_kernel = kernels::ActiveName();
  std::printf("default kernel on this host: %s\n\n", default_kernel);

  struct KernelSection {
    std::string kernel;
    std::vector<OpResult> results;
  };
  std::vector<KernelSection> sections;

  // Per-size operand pools, shared across kernels so every kernel chews the
  // same bytes.
  struct Operands {
    size_t n;
    WordVector a, b, dst;
    std::vector<WordVector> many;
    std::vector<const Word*> srcs;
  };
  std::vector<Operands> pools;
  for (size_t bits : kSizesBits) {
    Operands ops;
    ops.n = bits / 64;
    ops.a = RandomWords(ops.n, &rng);
    ops.b = RandomWords(ops.n, &rng);
    ops.dst.resize(ops.n);
    for (size_t i = 0; i < kManyK; ++i) {
      ops.many.push_back(RandomWords(ops.n, &rng));
      // Dense operands: bias toward ones so the k-way AND rarely hits the
      // all-zero block short-circuit and we time the full streaming cost.
      for (Word& w : ops.many.back()) w |= rng.Next() | rng.Next();
    }
    for (const WordVector& v : ops.many) ops.srcs.push_back(v.data());
    pools.push_back(std::move(ops));
  }

  for (const char* name : kernels::AvailableNames()) {
    if (!kernels::SetActive(name)) continue;
    KernelSection section{name, {}};
    std::printf("--- kernel %s ---\n", name);
    std::printf("%-18s %10s %12s %10s\n", "op", "bits", "ns/call", "GiB/s");
    for (size_t si = 0; si < pools.size(); ++si) {
      Operands& ops = pools[si];
      const size_t bits = kSizesBits[si];
      const double n = static_cast<double>(ops.n);

      OpResult r;
      r = {"count", bits,
           TimeNs([&] { g_sink = g_sink + kernels::Count(ops.a.data(), ops.n); }), n};
      section.results.push_back(r);
      r = {"and_count", bits, TimeNs([&] {
             g_sink = g_sink +
                      kernels::AndCount(ops.dst.data(), ops.a.data(), ops.n);
           }),
           3 * n};
      section.results.push_back(r);
      r = {"assign_and_count", bits, TimeNs([&] {
             g_sink = g_sink + kernels::AssignAndCount(ops.dst.data(), ops.a.data(),
                                               ops.b.data(), ops.n);
           }),
           3 * n};
      section.results.push_back(r);
      r = {"and_many_count", bits, TimeNs([&] {
             g_sink = g_sink + kernels::AndManyCount(ops.dst.data(), ops.srcs.data(),
                                             kManyK, ops.n);
           }),
           static_cast<double>(kManyK + 1) * n};
      section.results.push_back(r);

      for (size_t i = section.results.size() - 4; i < section.results.size();
           ++i) {
        const OpResult& row = section.results[i];
        std::printf("%-18s %10zu %12.1f %10.2f\n", row.op.c_str(), row.bits,
                    row.ns, row.GiBPerSec());
      }
    }
    std::printf("\n");
    sections.push_back(std::move(section));
  }

  // Headline: fused multi-way AND+count on the host's default kernel vs the
  // pre-kernel CountItemSet inner loop (copy + k-1 scalar pairwise ANDs +
  // final count) on the largest size.
  Operands& big = pools.back();
  const size_t big_bits = kSizesBits[sizeof(kSizesBits) / sizeof(size_t) - 1];
  kernels::SetActive("scalar");
  const kernels::KernelOps& scalar = kernels::Active();
  double pairwise_ns = TimeNs([&] {
    std::copy(big.many[0].begin(), big.many[0].end(), big.dst.begin());
    for (size_t i = 1; i < kManyK; ++i) {
      scalar.and_words(big.dst.data(), big.srcs[i], big.n);
    }
    g_sink = g_sink + scalar.count(big.dst.data(), big.n);
  });
  kernels::SetActive(default_kernel);
  double fused_ns = TimeNs([&] {
    g_sink = g_sink + kernels::AndManyCount(big.dst.data(), big.srcs.data(), kManyK,
                                    big.n);
  });
  double speedup = pairwise_ns / fused_ns;
  std::printf("k-way CountItemSet inner loop, k=%zu, %zu bits:\n", kManyK,
              big_bits);
  std::printf("  scalar pairwise baseline: %12.1f ns\n", pairwise_ns);
  std::printf("  %s and_many_count:   %12.1f ns\n", default_kernel, fused_ns);
  std::printf("  speedup: %.2fx\n", speedup);

  FILE* json = std::fopen(json_path, "w");
  if (json == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", json_path);
    return 1;
  }
  std::fprintf(json, "{\n  \"schema_version\": 1,\n");
  std::fprintf(json, "  \"kind\": \"bbsmine_kernels\",\n");
  std::fprintf(json, "  \"default_kernel\": \"%s\",\n", default_kernel);
  std::fprintf(json, "  \"kernels\": [\n");
  for (size_t s = 0; s < sections.size(); ++s) {
    std::fprintf(json, "    {\"kernel\": \"%s\", \"results\": [\n",
                 sections[s].kernel.c_str());
    for (size_t i = 0; i < sections[s].results.size(); ++i) {
      const OpResult& row = sections[s].results[i];
      std::fprintf(json,
                   "      {\"op\": \"%s\", \"bits\": %zu, \"ns_per_call\": "
                   "%.1f, \"gib_per_s\": %.2f}%s\n",
                   row.op.c_str(), row.bits, row.ns, row.GiBPerSec(),
                   i + 1 < sections[s].results.size() ? "," : "");
    }
    std::fprintf(json, "    ]}%s\n", s + 1 < sections.size() ? "," : "");
  }
  std::fprintf(json, "  ],\n");
  std::fprintf(json,
               "  \"and_many_vs_scalar_pairwise\": {\"k\": %zu, \"bits\": "
               "%zu, \"scalar_pairwise_ns\": %.1f, \"fused_kernel\": \"%s\", "
               "\"fused_ns\": %.1f, \"speedup\": %.2f}\n",
               kManyK, big_bits, pairwise_ns, default_kernel, fused_ns,
               speedup);
  std::fprintf(json, "}\n");
  std::fclose(json);
  std::printf("\nwrote %s\n", json_path);
  return 0;
}
