#include "bench_util.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>

#include "obs/report.h"
#include "util/bitvector_kernels.h"
#include "util/thread_pool.h"

namespace bbsmine::bench {

TransactionDatabase MakeQuest(uint32_t num_transactions, uint32_t num_items,
                              double t, double i, uint64_t seed) {
  QuestConfig config;
  config.num_transactions = num_transactions;
  config.num_items = num_items;
  config.avg_transaction_size = t;
  config.avg_pattern_size = i;
  config.seed = seed;
  auto db = GenerateQuest(config);
  if (!db.ok()) {
    std::cerr << "dataset generation failed: " << db.status().ToString()
              << "\n";
    std::exit(1);
  }
  return std::move(db).value();
}

BbsIndex MakeBbs(const TransactionDatabase& db, uint32_t num_bits,
                 uint32_t num_hashes) {
  BbsConfig config;
  config.num_bits = num_bits;
  config.num_hashes = num_hashes;
  auto bbs = BbsIndex::Create(config);
  if (!bbs.ok()) {
    std::cerr << "index creation failed: " << bbs.status().ToString() << "\n";
    std::exit(1);
  }
  bbs->InsertAll(db);
  return std::move(bbs).value();
}

SchemeResult Summarize(std::string name, const MiningResult& result) {
  SchemeResult r;
  r.name = std::move(name);
  r.patterns = result.patterns.size();
  r.candidates = result.stats.candidates;
  r.false_drops = result.stats.false_drops;
  r.certified = result.stats.certified;
  r.probed = result.stats.probed_transactions;
  r.db_scans = result.stats.db_scans;
  r.fdr = result.FalseDropRatio();
  r.wall_seconds = result.stats.total_seconds;
  r.sim_io_seconds =
      SimulatedIoSeconds(result.stats.io, IoCostParams::PaperEraDisk());
  return r;
}

void MaybeWriteRunReport(const std::string& scheme, const MineConfig* config,
                         double min_support, const TransactionDatabase& db,
                         const MiningResult& result, uint32_t index_bits,
                         uint32_t index_hashes) {
  const char* dir = std::getenv("BBSMINE_BENCH_JSON");
  if (dir == nullptr || dir[0] == '\0') return;
  static int sequence = 0;
  obs::RunReportContext ctx;
  ctx.scheme = scheme;
  ctx.config = config;
  ctx.num_transactions = db.size();
  ctx.item_universe = db.item_universe();
  ctx.tau = AbsoluteThreshold(min_support, db.size());
  ctx.resolved_threads = static_cast<uint32_t>(
      config != nullptr ? ResolveThreads(config->num_threads) : 1);
  ctx.kernel = kernels::ActiveName();
  ctx.index_bits = index_bits;
  ctx.index_hashes = index_hashes;
  char name[64];
  std::snprintf(name, sizeof(name), "%03d-%s.json", sequence++,
                scheme.c_str());
  std::string path = std::string(dir) + "/" + name;
  Status st = obs::WriteJsonFile(obs::BuildRunReport(ctx, result), path);
  if (!st.ok()) {
    std::cerr << "warning: run report not written: " << st.ToString() << "\n";
  }
}

SchemeResult RunBbsScheme(const TransactionDatabase& db, const BbsIndex& bbs,
                          Algorithm algorithm, double min_support,
                          uint64_t memory_budget) {
  MineConfig config;
  config.algorithm = algorithm;
  config.min_support = min_support;
  config.memory_budget_bytes = memory_budget;
  MiningResult result = MineFrequentPatterns(db, bbs, config);
  MaybeWriteRunReport(AlgorithmName(algorithm), &config, min_support, db,
                      result, bbs.num_bits(), bbs.config().num_hashes);
  return Summarize(AlgorithmName(algorithm), result);
}

SchemeResult RunApriori(const TransactionDatabase& db, double min_support,
                        uint64_t memory_budget, bool pair_matrix) {
  AprioriConfig config;
  config.min_support = min_support;
  config.memory_budget_bytes = memory_budget;
  config.use_pair_count_matrix = pair_matrix;
  MiningResult result = MineApriori(db, config);
  const char* name = pair_matrix ? "APS+pairs" : "APS";
  MaybeWriteRunReport(name, nullptr, min_support, db, result);
  return Summarize(name, result);
}

SchemeResult RunFpGrowth(const TransactionDatabase& db, double min_support,
                         uint64_t memory_budget) {
  FpGrowthConfig config;
  config.min_support = min_support;
  config.memory_budget_bytes = memory_budget;
  MiningResult result = MineFpGrowth(db, config);
  MaybeWriteRunReport("FPS", nullptr, min_support, db, result);
  return Summarize("FPS", result);
}

void AppendSchemeHeaders(const std::string& prefix,
                         std::vector<std::string>* header) {
  header->push_back(prefix + "_wall_ms");
  header->push_back(prefix + "_resp_s");
  header->push_back(prefix + "_fdr");
}

void AppendSchemeCells(const SchemeResult& r, std::vector<std::string>* row) {
  row->push_back(ResultTable::Num(r.wall_seconds * 1e3, 1));
  row->push_back(ResultTable::Num(r.response_seconds(), 3));
  row->push_back(ResultTable::Num(r.fdr, 4));
}

bool QuickMode(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) return true;
  }
  const char* env = std::getenv("BBSMINE_BENCH_QUICK");
  return env != nullptr && env[0] == '1';
}

}  // namespace bbsmine::bench
