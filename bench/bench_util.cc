#include "bench_util.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>

namespace bbsmine::bench {

TransactionDatabase MakeQuest(uint32_t num_transactions, uint32_t num_items,
                              double t, double i, uint64_t seed) {
  QuestConfig config;
  config.num_transactions = num_transactions;
  config.num_items = num_items;
  config.avg_transaction_size = t;
  config.avg_pattern_size = i;
  config.seed = seed;
  auto db = GenerateQuest(config);
  if (!db.ok()) {
    std::cerr << "dataset generation failed: " << db.status().ToString()
              << "\n";
    std::exit(1);
  }
  return std::move(db).value();
}

BbsIndex MakeBbs(const TransactionDatabase& db, uint32_t num_bits,
                 uint32_t num_hashes) {
  BbsConfig config;
  config.num_bits = num_bits;
  config.num_hashes = num_hashes;
  auto bbs = BbsIndex::Create(config);
  if (!bbs.ok()) {
    std::cerr << "index creation failed: " << bbs.status().ToString() << "\n";
    std::exit(1);
  }
  bbs->InsertAll(db);
  return std::move(bbs).value();
}

SchemeResult Summarize(std::string name, const MiningResult& result) {
  SchemeResult r;
  r.name = std::move(name);
  r.patterns = result.patterns.size();
  r.candidates = result.stats.candidates;
  r.false_drops = result.stats.false_drops;
  r.certified = result.stats.certified;
  r.probed = result.stats.probed_transactions;
  r.db_scans = result.stats.db_scans;
  r.fdr = result.FalseDropRatio();
  r.wall_seconds = result.stats.total_seconds;
  r.sim_io_seconds =
      SimulatedIoSeconds(result.stats.io, IoCostParams::PaperEraDisk());
  return r;
}

SchemeResult RunBbsScheme(const TransactionDatabase& db, const BbsIndex& bbs,
                          Algorithm algorithm, double min_support,
                          uint64_t memory_budget) {
  MineConfig config;
  config.algorithm = algorithm;
  config.min_support = min_support;
  config.memory_budget_bytes = memory_budget;
  return Summarize(AlgorithmName(algorithm),
                   MineFrequentPatterns(db, bbs, config));
}

SchemeResult RunApriori(const TransactionDatabase& db, double min_support,
                        uint64_t memory_budget, bool pair_matrix) {
  AprioriConfig config;
  config.min_support = min_support;
  config.memory_budget_bytes = memory_budget;
  config.use_pair_count_matrix = pair_matrix;
  return Summarize(pair_matrix ? "APS+pairs" : "APS",
                   MineApriori(db, config));
}

SchemeResult RunFpGrowth(const TransactionDatabase& db, double min_support,
                         uint64_t memory_budget) {
  FpGrowthConfig config;
  config.min_support = min_support;
  config.memory_budget_bytes = memory_budget;
  return Summarize("FPS", MineFpGrowth(db, config));
}

void AppendSchemeHeaders(const std::string& prefix,
                         std::vector<std::string>* header) {
  header->push_back(prefix + "_wall_ms");
  header->push_back(prefix + "_resp_s");
  header->push_back(prefix + "_fdr");
}

void AppendSchemeCells(const SchemeResult& r, std::vector<std::string>* row) {
  row->push_back(ResultTable::Num(r.wall_seconds * 1e3, 1));
  row->push_back(ResultTable::Num(r.response_seconds(), 3));
  row->push_back(ResultTable::Num(r.fdr, 4));
}

bool QuickMode(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) return true;
  }
  const char* env = std::getenv("BBSMINE_BENCH_QUICK");
  return env != nullptr && env[0] == '1';
}

}  // namespace bbsmine::bench
