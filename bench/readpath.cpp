// readpath — read-path benchmark: resident vs mmap vs folded serving.
//
// The tentpole claim of the memory-independent read path is that a v2
// aligned index can be served (a) without heap-resident slices, through the
// mmap SliceSource, bit-identically to the resident backend, and (b) at a
// fraction of its bytes after fold compaction, with every folded count still
// an upper bound on the exact count. This benchmark measures both on an
// index whose slice data exceeds a configurable resident-memory budget:
//
//   resident   — BbsIndex::Load: heap slices, fully verified at load
//   mmap-cold  — BbsIndex::OpenMmap, first query pass (pages faulted in
//                on demand; the fault deltas are the real-memory signal)
//   mmap-warm  — second pass over the same mapping (pages already mapped)
//   folded     — the index folded to bits/4: serialized bytes before/after
//                plus an upper-bound check of every estimate against the
//                exact count from a database scan
//
// Emits a machine-readable JSON report (default BENCH_readpath.json; CI's
// bench-smoke job validates and uploads it):
//   checksum   — sum of all estimates in a leg; resident and both mmap legs
//                must agree exactly (bit-identical serving)
//   exceeds_budget — slice bytes > --budget-bytes while the mmap backend
//                pins ~0 heap bytes for them
//
// Usage: readpath [--txns N] [--items N] [--bits M] [--hashes K]
//                 [--queries N] [--budget-bytes B] [--out FILE]
//                 [--work FILE] [--quick]

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <random>
#include <string>
#include <vector>

#include "core/bbs_index.h"
#include "datagen/quest_gen.h"
#include "obs/json.h"
#include "storage/transaction_db.h"
#include "util/rusage.h"
#include "util/status.h"
#include "util/stopwatch.h"

using namespace bbsmine;

namespace {

[[noreturn]] void Die(const Status& status) {
  std::fprintf(stderr, "readpath: %s\n", status.ToString().c_str());
  std::exit(1);
}

uint64_t FlagUint(int argc, char** argv, const char* name, uint64_t fallback) {
  const std::string prefix = std::string(name) + "=";
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == name && i + 1 < argc) return std::strtoull(argv[i + 1], nullptr, 10);
    if (arg.rfind(prefix, 0) == 0) {
      return std::strtoull(arg.substr(prefix.size()).c_str(), nullptr, 10);
    }
  }
  return fallback;
}

std::string FlagString(int argc, char** argv, const char* name,
                       const std::string& fallback) {
  const std::string prefix = std::string(name) + "=";
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == name && i + 1 < argc) return argv[i + 1];
    if (arg.rfind(prefix, 0) == 0) return arg.substr(prefix.size());
  }
  return fallback;
}

bool FlagBool(int argc, char** argv, const char* name) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], name) == 0) return true;
  }
  return false;
}

/// One query pass: sums the estimates (the cross-leg checksum).
struct LegResult {
  double seconds = 0;
  uint64_t checksum = 0;
  uint64_t resident_slice_bytes = 0;
  uint64_t minor_faults = 0;
  uint64_t major_faults = 0;
};

LegResult RunLeg(const BbsIndex& bbs, const std::vector<Itemset>& queries) {
  LegResult leg;
  leg.resident_slice_bytes = bbs.ApproxResidentBytes();
  const PageFaultCounters before = CurrentPageFaults();
  Stopwatch timer;
  for (const Itemset& query : queries) {
    leg.checksum += bbs.CountItemSet(query);
  }
  leg.seconds = timer.ElapsedSeconds();
  const PageFaultCounters delta = CurrentPageFaults() - before;
  leg.minor_faults = delta.minor;
  leg.major_faults = delta.major;
  return leg;
}

obs::JsonValue LegJson(const LegResult& leg) {
  obs::JsonValue out = obs::JsonValue::Object();
  out.Set("seconds", obs::JsonValue::Double(leg.seconds));
  out.Set("checksum", obs::JsonValue::Uint(leg.checksum));
  out.Set("resident_slice_bytes",
          obs::JsonValue::Uint(leg.resident_slice_bytes));
  out.Set("minor_faults", obs::JsonValue::Uint(leg.minor_faults));
  out.Set("major_faults", obs::JsonValue::Uint(leg.major_faults));
  return out;
}

/// Exact support of `query` by database scan (the ground truth every
/// folded estimate must upper-bound).
uint64_t ExactCount(const TransactionDatabase& db, const Itemset& query) {
  uint64_t count = 0;
  for (size_t t = 0; t < db.size(); ++t) {
    const Itemset& txn = db.At(t).items;
    if (std::includes(txn.begin(), txn.end(), query.begin(), query.end())) {
      ++count;
    }
  }
  return count;
}

}  // namespace

int main(int argc, char** argv) {
  const bool quick = FlagBool(argc, argv, "--quick");
  const uint32_t txns = static_cast<uint32_t>(
      FlagUint(argc, argv, "--txns", quick ? 6'000 : 20'000));
  const uint32_t items =
      static_cast<uint32_t>(FlagUint(argc, argv, "--items", 400));
  const uint32_t bits = static_cast<uint32_t>(
      FlagUint(argc, argv, "--bits", quick ? 2'048 : 4'096));
  const uint32_t hashes =
      static_cast<uint32_t>(FlagUint(argc, argv, "--hashes", 4));
  const uint64_t num_queries =
      FlagUint(argc, argv, "--queries", quick ? 64 : 200);
  const uint64_t budget_bytes =
      FlagUint(argc, argv, "--budget-bytes", 4ull << 20);
  const std::string out_path =
      FlagString(argc, argv, "--out", "BENCH_readpath.json");
  const std::string work_path =
      FlagString(argc, argv, "--work", "/tmp/bbsmine_readpath.bbs");

  // Workload: a Quest dataset and the v2 aligned index file on disk.
  QuestConfig gen;
  gen.num_transactions = txns;
  gen.num_items = items;
  gen.avg_transaction_size = 10;
  gen.avg_pattern_size = 4;
  gen.num_patterns = 60;
  gen.seed = 7;
  auto db = GenerateQuest(gen);
  if (!db.ok()) Die(db.status());

  BbsConfig config;
  config.num_bits = bits;
  config.num_hashes = hashes;
  auto built = BbsIndex::Create(config);
  if (!built.ok()) Die(built.status());
  built->InsertAll(*db);
  if (Status saved = built->Save(work_path); !saved.ok()) Die(saved);

  const uint64_t words_per_slice = (static_cast<uint64_t>(txns) + 63) / 64;
  const uint64_t stride = (words_per_slice * 8 + 63) / 64 * 64;
  const uint64_t slice_bytes = static_cast<uint64_t>(bits) * stride;
  const uint64_t file_bytes = built->SerializedBytes();
  const bool exceeds_budget = slice_bytes > budget_bytes;

  // Deterministic query mix: singletons and pairs over the item universe.
  std::mt19937_64 rng(7);
  std::uniform_int_distribution<uint32_t> pick_item(0, items - 1);
  std::vector<Itemset> queries;
  queries.reserve(num_queries);
  for (uint64_t q = 0; q < num_queries; ++q) {
    Itemset query;
    query.push_back(static_cast<ItemId>(pick_item(rng)));
    if (q % 2 == 1) query.push_back(static_cast<ItemId>(pick_item(rng)));
    Canonicalize(&query);
    queries.push_back(std::move(query));
  }

  std::printf("readpath: %u txns, %u items, m=%u k=%u, %zu queries\n", txns,
              items, bits, hashes, queries.size());
  std::printf("  slice bytes %llu, file bytes %llu, budget %llu (%s)\n",
              static_cast<unsigned long long>(slice_bytes),
              static_cast<unsigned long long>(file_bytes),
              static_cast<unsigned long long>(budget_bytes),
              exceeds_budget ? "index exceeds budget" : "fits in budget");

  // Leg 1: resident (fully verified heap load).
  auto resident = BbsIndex::Load(work_path);
  if (!resident.ok()) Die(resident.status());
  const LegResult resident_leg = RunLeg(*resident, queries);

  // Legs 2+3: mmap cold (first touch faults the slice pages in) then warm.
  auto mapped = BbsIndex::OpenMmap(work_path);
  if (!mapped.ok()) Die(mapped.status());
  const LegResult mmap_cold_leg = RunLeg(*mapped, queries);
  const LegResult mmap_warm_leg = RunLeg(*mapped, queries);

  // Leg 4: fold compaction to a quarter of the width. Counts must remain
  // upper bounds on the exact supports.
  const uint32_t fold_bits = std::max(64u, bits / 4);
  BbsIndex folded = resident->Fold(fold_bits);
  const uint64_t bytes_before = resident->SerializedBytes();
  const uint64_t bytes_after = folded.SerializedBytes();
  const LegResult folded_leg = RunLeg(folded, queries);
  uint64_t upper_bound_violations = 0;
  for (const Itemset& query : queries) {
    if (folded.CountItemSet(query) < ExactCount(*db, query)) {
      ++upper_bound_violations;
    }
  }

  const bool parity = resident_leg.checksum == mmap_cold_leg.checksum &&
                      resident_leg.checksum == mmap_warm_leg.checksum;
  const double bytes_ratio =
      bytes_after == 0 ? 0.0
                       : static_cast<double>(bytes_before) /
                             static_cast<double>(bytes_after);

  std::printf("  resident:  %.4fs  checksum %llu  heap %llu B\n",
              resident_leg.seconds,
              static_cast<unsigned long long>(resident_leg.checksum),
              static_cast<unsigned long long>(
                  resident_leg.resident_slice_bytes));
  std::printf("  mmap-cold: %.4fs  checksum %llu  heap %llu B  "
              "faults %llu/%llu (min/maj)\n",
              mmap_cold_leg.seconds,
              static_cast<unsigned long long>(mmap_cold_leg.checksum),
              static_cast<unsigned long long>(
                  mmap_cold_leg.resident_slice_bytes),
              static_cast<unsigned long long>(mmap_cold_leg.minor_faults),
              static_cast<unsigned long long>(mmap_cold_leg.major_faults));
  std::printf("  mmap-warm: %.4fs  checksum %llu\n", mmap_warm_leg.seconds,
              static_cast<unsigned long long>(mmap_warm_leg.checksum));
  std::printf("  folded(m=%u): %.4fs  %llu -> %llu bytes (%.2fx)  "
              "violations %llu\n",
              fold_bits, folded_leg.seconds,
              static_cast<unsigned long long>(bytes_before),
              static_cast<unsigned long long>(bytes_after), bytes_ratio,
              static_cast<unsigned long long>(upper_bound_violations));
  std::printf("  parity: %s\n", parity ? "bit-identical" : "MISMATCH");

  obs::JsonValue report = obs::JsonValue::Object();
  report.Set("schema_version", obs::JsonValue::Int(1));
  report.Set("kind", obs::JsonValue::String("bbsmine_readpath"));

  obs::JsonValue cfg = obs::JsonValue::Object();
  cfg.Set("transactions", obs::JsonValue::Uint(txns));
  cfg.Set("items", obs::JsonValue::Uint(items));
  cfg.Set("bits", obs::JsonValue::Uint(bits));
  cfg.Set("hashes", obs::JsonValue::Uint(hashes));
  cfg.Set("queries", obs::JsonValue::Uint(queries.size()));
  cfg.Set("budget_bytes", obs::JsonValue::Uint(budget_bytes));
  report.Set("config", std::move(cfg));

  obs::JsonValue index = obs::JsonValue::Object();
  index.Set("slice_bytes", obs::JsonValue::Uint(slice_bytes));
  index.Set("file_bytes", obs::JsonValue::Uint(file_bytes));
  index.Set("exceeds_budget", obs::JsonValue::Bool(exceeds_budget));
  report.Set("index", std::move(index));

  obs::JsonValue legs = obs::JsonValue::Object();
  legs.Set("resident", LegJson(resident_leg));
  legs.Set("mmap_cold", LegJson(mmap_cold_leg));
  legs.Set("mmap_warm", LegJson(mmap_warm_leg));
  obs::JsonValue folded_json = LegJson(folded_leg);
  folded_json.Set("fold_bits", obs::JsonValue::Uint(fold_bits));
  folded_json.Set("bytes_before", obs::JsonValue::Uint(bytes_before));
  folded_json.Set("bytes_after", obs::JsonValue::Uint(bytes_after));
  folded_json.Set("bytes_ratio", obs::JsonValue::Double(bytes_ratio));
  folded_json.Set("upper_bound_violations",
                  obs::JsonValue::Uint(upper_bound_violations));
  legs.Set("folded", std::move(folded_json));
  report.Set("legs", std::move(legs));

  obs::JsonValue parity_json = obs::JsonValue::Object();
  parity_json.Set("mmap_matches_resident", obs::JsonValue::Bool(parity));
  report.Set("parity", std::move(parity_json));

  if (Status written = obs::WriteJsonFile(report, out_path); !written.ok()) {
    Die(written);
  }
  std::printf("wrote %s\n", out_path.c_str());
  std::remove(work_path.c_str());
  return parity && upper_bound_violations == 0 ? 0 : 1;
}
