// Shared harness for the figure-reproduction benchmarks.
//
// Each bench binary regenerates one figure of the paper's evaluation
// (Section 4): it builds the workload, runs the schemes, and prints the
// series the paper plots, both as an aligned table and as CSV.
//
// Response time is reported two ways:
//   * wall    — measured wall-clock seconds on this machine, and
//   * resp    — wall + simulated I/O seconds under the explicit block-I/O
//               cost model (util/iomodel.h), standing in for the paper's
//               1997-era disk (see DESIGN.md, substitutions).

#ifndef BBSMINE_BENCH_BENCH_UTIL_H_
#define BBSMINE_BENCH_BENCH_UTIL_H_

#include <string>
#include <vector>

#include "baseline/apriori.h"
#include "baseline/fp_tree.h"
#include "core/bbs_index.h"
#include "core/miner.h"
#include "datagen/quest_gen.h"
#include "storage/transaction_db.h"
#include "util/table.h"

namespace bbsmine::bench {

/// One scheme's measurements on one workload point.
struct SchemeResult {
  std::string name;
  size_t patterns = 0;
  uint64_t candidates = 0;
  uint64_t false_drops = 0;
  uint64_t certified = 0;
  uint64_t probed = 0;
  uint64_t db_scans = 0;
  double fdr = 0;
  double wall_seconds = 0;
  double sim_io_seconds = 0;
  /// wall + simulated I/O.
  double response_seconds() const { return wall_seconds + sim_io_seconds; }
};

/// Builds a Quest dataset (exits on invalid config).
TransactionDatabase MakeQuest(uint32_t num_transactions, uint32_t num_items,
                              double t, double i, uint64_t seed = 42);

/// Builds a BBS over `db` (m bits, k hashes, MD5 family).
BbsIndex MakeBbs(const TransactionDatabase& db, uint32_t num_bits,
                 uint32_t num_hashes = 4);

/// Runs one of the four BBS schemes.
SchemeResult RunBbsScheme(const TransactionDatabase& db, const BbsIndex& bbs,
                          Algorithm algorithm, double min_support,
                          uint64_t memory_budget = 0);

/// Runs the Apriori baseline (APS). `pair_matrix` switches on the modern
/// triangular-array second pass (ablation).
SchemeResult RunApriori(const TransactionDatabase& db, double min_support,
                        uint64_t memory_budget = 0, bool pair_matrix = false);

/// Runs the FP-growth baseline (FPS).
SchemeResult RunFpGrowth(const TransactionDatabase& db, double min_support,
                         uint64_t memory_budget = 0);

/// Converts a MiningResult into a SchemeResult.
SchemeResult Summarize(std::string name, const MiningResult& result);

/// When the BBSMINE_BENCH_JSON environment variable names a directory,
/// writes the machine-readable run report for `result` there as
/// <dir>/<NNN>-<scheme>.json (sequence-numbered per process), using the
/// same serializer as `bbsmine_cli --stats-json` (obs/report.h) so bench
/// output and CLI output never drift apart. No-op when the variable is
/// unset. `config` may be null (baselines); `index_bits`/`index_hashes`
/// describe the BBS geometry when one was used.
void MaybeWriteRunReport(const std::string& scheme, const MineConfig* config,
                         double min_support, const TransactionDatabase& db,
                         const MiningResult& result, uint32_t index_bits = 0,
                         uint32_t index_hashes = 0);

/// Appends the standard columns for one scheme to a table row.
void AppendSchemeCells(const SchemeResult& r, std::vector<std::string>* row);

/// The standard column headers matching AppendSchemeCells.
void AppendSchemeHeaders(const std::string& prefix,
                         std::vector<std::string>* header);

/// True when the binary was invoked with --quick (reduced workloads).
bool QuickMode(int argc, char** argv);

}  // namespace bbsmine::bench

#endif  // BBSMINE_BENCH_BENCH_UTIL_H_
