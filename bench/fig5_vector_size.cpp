// Figure 5: effect of the bit-vector size m on (a) the false drop ratio and
// (b) the response time of the four BBS schemes.
//
// Workload: the paper's default T10.I10.D10K with 10K items, tau = 0.3%.
// Expected shape (paper Section 4.1): FDR falls steeply up to m ~ 1600 and
// flattens after; response time is U-shaped with its sweet spot around
// m = 1600; the probe-based schemes (SFP/DFP) see no more than ~10% of the
// false drops of the scan-based schemes.

#include <iostream>

#include "bench_util.h"

using namespace bbsmine;
using namespace bbsmine::bench;

int main(int argc, char** argv) {
  bool quick = QuickMode(argc, argv);
  uint32_t d = quick ? 4'000 : 10'000;
  TransactionDatabase db = MakeQuest(d, 10'000, 10, 10);
  double min_support = 0.003;

  const std::vector<uint32_t> sizes =
      quick ? std::vector<uint32_t>{400, 1600, 6400}
            : std::vector<uint32_t>{400, 800, 1600, 3200, 6400};
  const Algorithm algorithms[] = {Algorithm::kSFS, Algorithm::kSFP,
                                  Algorithm::kDFS, Algorithm::kDFP};

  ResultTable fdr_table("Figure 5(a): false drop ratio vs vector size m");
  ResultTable time_table("Figure 5(b): response time vs vector size m");
  std::vector<std::string> header = {"m"};
  std::vector<std::string> time_header = {"m"};
  for (Algorithm a : algorithms) {
    header.push_back(std::string(AlgorithmName(a)) + "_fdr");
    time_header.push_back(std::string(AlgorithmName(a)) + "_wall_ms");
    time_header.push_back(std::string(AlgorithmName(a)) + "_resp_s");
  }
  fdr_table.SetHeader(header);
  time_table.SetHeader(time_header);

  for (uint32_t m : sizes) {
    BbsIndex bbs = MakeBbs(db, m);
    std::vector<std::string> fdr_row = {std::to_string(m)};
    std::vector<std::string> time_row = {std::to_string(m)};
    for (Algorithm a : algorithms) {
      SchemeResult r = RunBbsScheme(db, bbs, a, min_support);
      fdr_row.push_back(ResultTable::Num(r.fdr, 4));
      time_row.push_back(ResultTable::Num(r.wall_seconds * 1e3, 1));
      time_row.push_back(ResultTable::Num(r.response_seconds(), 3));
    }
    fdr_table.AddRow(fdr_row);
    time_table.AddRow(time_row);
  }

  fdr_table.Print(std::cout);
  time_table.Print(std::cout);
  fdr_table.PrintCsv(std::cout);
  time_table.PrintCsv(std::cout);
  return 0;
}
