// Figure 9: effect of the number of distinct items V (10K .. 100K).
//
// Expected shape (paper Section 4.5): more items means fewer and shorter
// frequent itemsets, so everything gets faster; APS's time falls quickest;
// for the BBS schemes a fixed m over more items reduces false drops (fewer
// genuinely frequent bit collisions), with the larger reduction going to
// the scan-based schemes; the relative order is unchanged.

#include <iostream>

#include "bench_util.h"

using namespace bbsmine;
using namespace bbsmine::bench;

int main(int argc, char** argv) {
  bool quick = QuickMode(argc, argv);
  const std::vector<uint32_t> item_counts =
      quick ? std::vector<uint32_t>{10'000, 50'000}
            : std::vector<uint32_t>{10'000, 25'000, 50'000, 100'000};
  double min_support = 0.003;
  uint32_t d = quick ? 4'000 : 10'000;

  ResultTable table("Figure 9: response time vs number of distinct items");
  std::vector<std::string> header = {"items", "patterns"};
  for (const char* name : {"APS", "FPS", "SFS", "SFP", "DFS", "DFP"}) {
    header.push_back(std::string(name) + "_wall_ms");
  }
  header.push_back("SFS_fdr");
  header.push_back("DFP_fdr");
  table.SetHeader(header);

  for (uint32_t v : item_counts) {
    TransactionDatabase db = MakeQuest(d, v, 10, 10);
    BbsIndex bbs = MakeBbs(db, 1600);
    std::vector<SchemeResult> results;
    results.push_back(RunApriori(db, min_support));
    results.push_back(RunFpGrowth(db, min_support));
    for (Algorithm a : {Algorithm::kSFS, Algorithm::kSFP, Algorithm::kDFS,
                        Algorithm::kDFP}) {
      results.push_back(RunBbsScheme(db, bbs, a, min_support));
    }
    std::vector<std::string> row = {
        std::to_string(v),
        ResultTable::Int(static_cast<long long>(results.back().patterns))};
    for (const SchemeResult& r : results) {
      row.push_back(ResultTable::Num(r.wall_seconds * 1e3, 1));
    }
    row.push_back(ResultTable::Num(results[2].fdr, 4));
    row.push_back(ResultTable::Num(results[5].fdr, 4));
    table.AddRow(row);
  }
  table.Print(std::cout);
  table.PrintCsv(std::cout);
  return 0;
}
