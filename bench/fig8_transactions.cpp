// Figure 8: scalability in the number of transactions (10K .. 100K).
//
// Expected shape (paper Section 4.4): all schemes scale linearly in the
// database size; SFP and DFP are the least affected thanks to their low FDR
// and CheckCount certification; the efficiency order is DFP, SFP, FPS, DFS,
// SFS, APS.

#include <iostream>

#include "bench_util.h"

using namespace bbsmine;
using namespace bbsmine::bench;

int main(int argc, char** argv) {
  bool quick = QuickMode(argc, argv);
  const std::vector<uint32_t> sizes =
      quick ? std::vector<uint32_t>{5'000, 20'000}
            : std::vector<uint32_t>{10'000, 25'000, 50'000, 100'000};
  double min_support = 0.003;

  ResultTable table("Figure 8: response time vs number of transactions");
  std::vector<std::string> header = {"transactions", "patterns"};
  for (const char* name : {"APS", "FPS", "SFS", "SFP", "DFS", "DFP"}) {
    header.push_back(std::string(name) + "_wall_ms");
  }
  table.SetHeader(header);

  for (uint32_t d : sizes) {
    TransactionDatabase db = MakeQuest(d, 10'000, 10, 10);
    BbsIndex bbs = MakeBbs(db, 1600);
    std::vector<SchemeResult> results;
    results.push_back(RunApriori(db, min_support));
    results.push_back(RunFpGrowth(db, min_support));
    for (Algorithm a : {Algorithm::kSFS, Algorithm::kSFP, Algorithm::kDFS,
                        Algorithm::kDFP}) {
      results.push_back(RunBbsScheme(db, bbs, a, min_support));
    }
    std::vector<std::string> row = {
        std::to_string(d),
        ResultTable::Int(static_cast<long long>(results.back().patterns))};
    for (const SchemeResult& r : results) {
      row.push_back(ResultTable::Num(r.wall_seconds * 1e3, 1));
    }
    table.AddRow(row);
  }
  table.Print(std::cout);
  table.PrintCsv(std::cout);
  return 0;
}
