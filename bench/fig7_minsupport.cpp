// Figure 7: effect of the minimum support threshold (0.1% .. 1.2%) on all
// six schemes.
//
// Expected shape (paper Section 4.3): response time decreases as the
// threshold rises (fewer candidates); the relative order of the schemes is
// unchanged; DFP's FDR stays below ~3% throughout, and 80-90% of its
// candidates are certified without probing.

#include <iostream>

#include "bench_util.h"

using namespace bbsmine;
using namespace bbsmine::bench;

int main(int argc, char** argv) {
  bool quick = QuickMode(argc, argv);
  TransactionDatabase db = MakeQuest(quick ? 4'000 : 10'000, 10'000, 10, 10);
  BbsIndex bbs = MakeBbs(db, 1600);

  // The paper sweeps 0.1%..1.2%. Our Quest-generated data is considerably
  // denser in long patterns than the authors' instance (|F| explodes past
  // 3.5M itemsets at 0.1%), so the sweep starts at 0.3% — see
  // EXPERIMENTS.md. The paper's monotone-decreasing shape and unchanged
  // scheme ordering are fully visible in this range.
  const std::vector<double> supports =
      quick ? std::vector<double>{0.003, 0.012}
            : std::vector<double>{0.003, 0.0045, 0.006, 0.009, 0.012};

  ResultTable table("Figure 7: response time vs minimum support");
  std::vector<std::string> header = {"minsup_pct", "patterns"};
  for (const char* name : {"APS", "FPS", "SFS", "SFP", "DFS", "DFP"}) {
    header.push_back(std::string(name) + "_wall_ms");
  }
  header.push_back("DFP_fdr");
  header.push_back("DFP_certified_pct");
  table.SetHeader(header);

  for (double s : supports) {
    std::vector<SchemeResult> results;
    results.push_back(RunApriori(db, s));
    results.push_back(RunFpGrowth(db, s));
    for (Algorithm a : {Algorithm::kSFS, Algorithm::kSFP, Algorithm::kDFS,
                        Algorithm::kDFP}) {
      results.push_back(RunBbsScheme(db, bbs, a, s));
    }
    const SchemeResult& dfp = results.back();
    std::vector<std::string> row = {
        ResultTable::Num(s * 100, 2),
        ResultTable::Int(static_cast<long long>(dfp.patterns))};
    for (const SchemeResult& r : results) {
      row.push_back(ResultTable::Num(r.wall_seconds * 1e3, 1));
    }
    row.push_back(ResultTable::Num(dfp.fdr, 4));
    row.push_back(ResultTable::Num(
        dfp.candidates ? 100.0 * static_cast<double>(dfp.certified) /
                             static_cast<double>(dfp.candidates)
                       : 0.0,
        1));
    table.AddRow(row);
  }
  table.Print(std::cout);
  table.PrintCsv(std::cout);
  return 0;
}
