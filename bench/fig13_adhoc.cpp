// Figure 13: ad-hoc queries with constraints (paper Section 4.9).
//
//   Query 1 — exact count of a non-frequent pattern.
//   Query 2 — count of an itemset among transactions with TID % 7 == 0.
//
// DFP answers both from the BBS (CountItemSet + probe, one extra constraint
// slice for Query 2); APS must re-scan the database; FPS cannot answer them
// at all (the FP-tree stores only frequent items and is not dynamic), which
// is why the paper's figure has no FPS bar.
//
// Expected shape: DFP beats the APS rescan by a wide margin, and Query 1
// vs Query 2 cost is nearly identical for DFP.

#include <iostream>

#include "bench_util.h"
#include "core/adhoc.h"
#include "util/stopwatch.h"

using namespace bbsmine;
using namespace bbsmine::bench;

namespace {

/// APS's only way to answer an ad-hoc count: one full scan of the database.
uint64_t ScanCount(const TransactionDatabase& db, const Itemset& items,
                   const BitVector* constraint, IoStats* io) {
  uint64_t count = 0;
  size_t position = 0;
  db.ForEach(io, [&](const Transaction& txn) {
    bool selected = constraint == nullptr || constraint->Get(position);
    if (selected && IsSubsetOf(items, txn.items)) ++count;
    ++position;
  });
  return count;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = QuickMode(argc, argv);
  TransactionDatabase db = MakeQuest(quick ? 10'000 : 50'000, 10'000, 10, 10);
  BbsIndex bbs = MakeBbs(db, 1600);
  IoCostParams disk = IoCostParams::PaperEraDisk();

  // A non-frequent pattern: two mid-popularity items unlikely to co-occur.
  Itemset rare = {123, 4567};
  // A pattern with some support: take a frequent pair if one exists.
  MineConfig mine;
  mine.algorithm = Algorithm::kDFP;
  mine.min_support = 0.003;
  MiningResult mined = MineFrequentPatterns(db, bbs, mine);
  Itemset popular = {1};
  for (const Pattern& p : mined.patterns) {
    if (p.items.size() == 2) {
      popular = p.items;
      break;
    }
  }

  BitVector constraint = MakeConstraintSlice(
      db, [](const Transaction& txn) { return txn.tid % 7 == 0; });

  ResultTable table("Figure 13: ad-hoc query response time");
  table.SetHeader({"query", "scheme", "answer", "wall_ms", "resp_s"});

  struct Case {
    const char* name;
    Itemset items;
    const BitVector* constraint;
  };
  const Case cases[] = {
      {"Q1 non-frequent count", rare, nullptr},
      {"Q2 constrained count", popular, &constraint},
  };

  for (const Case& c : cases) {
    // DFP / BBS path.
    Stopwatch bbs_timer;
    AdhocQueryResult bbs_answer =
        CountPatternExact(db, bbs, c.items, c.constraint);
    double bbs_wall = bbs_timer.ElapsedSeconds();
    table.AddRow({c.name, "DFP",
                  std::to_string(bbs_answer.exact),
                  ResultTable::Num(bbs_wall * 1e3, 2),
                  ResultTable::Num(
                      bbs_wall + SimulatedIoSeconds(bbs_answer.io, disk), 3)});

    // APS path: full rescan.
    Stopwatch scan_timer;
    IoStats scan_io;
    uint64_t scan_answer = ScanCount(db, c.items, c.constraint, &scan_io);
    double scan_wall = scan_timer.ElapsedSeconds();
    table.AddRow({c.name, "APS",
                  std::to_string(scan_answer),
                  ResultTable::Num(scan_wall * 1e3, 2),
                  ResultTable::Num(
                      scan_wall + SimulatedIoSeconds(scan_io, disk), 3)});

    table.AddRow({c.name, "FPS", "n/a", "n/a", "n/a"});
    if (bbs_answer.exact != scan_answer) {
      std::cerr << "ERROR: BBS and scan disagree on " << c.name << "\n";
      return 1;
    }
  }
  table.Print(std::cout);
  table.PrintCsv(std::cout);
  return 0;
}
