// Ablation benches for the design choices called out in DESIGN.md §6:
//
//   A1  hash family    — paper's MD5 groups vs multiply-shift: FDR and time.
//   A2  item ordering  — rare-first walk order vs the paper's item order
//                        (identical output, different traversal cost).
//   A3  tighten-after-probe — shrink a probed candidate's transaction set
//                        to its true containers (not in the paper).
//   A4  Apriori C2     — classic hash-tree second pass vs the triangular
//                        pair-count matrix (how much of the paper's APS gap
//                        is implementation vintage).

//   A5  vertical representations — BBS (lossy bit-slices + refinement) vs
//                        Eclat (exact tid-lists): time and index footprint.

#include <iostream>

#include "baseline/eclat.h"
#include "bench_util.h"

using namespace bbsmine;
using namespace bbsmine::bench;

namespace {

SchemeResult RunWithConfig(const TransactionDatabase& db, const BbsIndex& bbs,
                           const MineConfig& config, std::string name) {
  return Summarize(std::move(name), MineFrequentPatterns(db, bbs, config));
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = QuickMode(argc, argv);
  TransactionDatabase db = MakeQuest(quick ? 4'000 : 10'000, 10'000, 10, 10);
  double min_support = 0.003;

  // --- A1: hash family -------------------------------------------------------
  {
    ResultTable table("Ablation A1: MD5 vs multiply-shift hash family");
    table.SetHeader({"family", "scheme", "wall_ms", "fdr", "patterns"});
    for (HashKind kind : {HashKind::kMd5, HashKind::kMultiplyShift}) {
      BbsConfig config;
      config.num_bits = 1600;
      config.num_hashes = 4;
      config.hash_kind = kind;
      auto bbs = BbsIndex::Create(config);
      bbs->InsertAll(db);
      for (Algorithm a : {Algorithm::kSFS, Algorithm::kDFP}) {
        SchemeResult r = RunBbsScheme(db, *bbs, a, min_support);
        table.AddRow({kind == HashKind::kMd5 ? "md5" : "multiply-shift",
                      r.name, ResultTable::Num(r.wall_seconds * 1e3, 1),
                      ResultTable::Num(r.fdr, 4),
                      ResultTable::Int(static_cast<long long>(r.patterns))});
      }
    }
    table.Print(std::cout);
  }

  BbsIndex bbs = MakeBbs(db, 1600);

  // --- A2: item ordering -----------------------------------------------------
  {
    ResultTable table("Ablation A2: rare-first vs item-order walk");
    table.SetHeader({"order", "scheme", "wall_ms", "extension_tests",
                     "patterns"});
    for (bool rare_first : {true, false}) {
      for (Algorithm a : {Algorithm::kSFS, Algorithm::kDFP}) {
        MineConfig config;
        config.algorithm = a;
        config.min_support = min_support;
        config.rare_first_order = rare_first;
        MiningResult result = MineFrequentPatterns(db, bbs, config);
        table.AddRow(
            {rare_first ? "rare-first" : "item-order", AlgorithmName(a),
             ResultTable::Num(result.stats.total_seconds * 1e3, 1),
             ResultTable::Int(
                 static_cast<long long>(result.stats.extension_tests)),
             ResultTable::Int(static_cast<long long>(result.patterns.size()))});
      }
    }
    table.Print(std::cout);
  }

  // --- A3: tighten-after-probe ------------------------------------------------
  {
    // A narrow vector provokes false drops, which is where tightening pays.
    BbsIndex narrow = MakeBbs(db, 400);
    ResultTable table("Ablation A3: tighten-after-probe (m=400)");
    table.SetHeader({"tighten", "scheme", "wall_ms", "false_drops",
                     "probed_txns"});
    for (bool tighten : {false, true}) {
      for (Algorithm a : {Algorithm::kSFP, Algorithm::kDFP}) {
        MineConfig config;
        config.algorithm = a;
        config.min_support = min_support;
        config.tighten_after_probe = tighten;
        SchemeResult r = RunWithConfig(
            db, narrow, config,
            std::string(AlgorithmName(a)) + (tighten ? "+tighten" : ""));
        table.AddRow({tighten ? "on" : "off", r.name,
                      ResultTable::Num(r.wall_seconds * 1e3, 1),
                      ResultTable::Int(static_cast<long long>(r.false_drops)),
                      ResultTable::Int(static_cast<long long>(r.probed))});
      }
    }
    table.Print(std::cout);
  }

  // --- A5: lossy bit-slices vs exact tid-lists ---------------------------------
  {
    ResultTable table("Ablation A5: BBS (DFP) vs exact vertical (Eclat)");
    table.SetHeader({"approach", "wall_ms", "patterns", "index_bytes"});
    SchemeResult dfp = RunBbsScheme(db, bbs, Algorithm::kDFP, min_support);
    table.AddRow({"BBS m=1600 + DFP",
                  ResultTable::Num(dfp.wall_seconds * 1e3, 1),
                  ResultTable::Int(static_cast<long long>(dfp.patterns)),
                  ResultTable::Int(static_cast<long long>(
                      bbs.SerializedBytes()))});
    EclatConfig eclat_config;
    eclat_config.min_support = min_support;
    SchemeResult eclat = Summarize("eclat", MineEclat(db, eclat_config));
    // Tid-list footprint = 4 bytes per (item, transaction) occurrence.
    uint64_t vertical_bytes = 0;
    for (size_t t = 0; t < db.size(); ++t) {
      vertical_bytes += 4 * db.At(t).items.size();
    }
    table.AddRow({"Eclat tid-lists",
                  ResultTable::Num(eclat.wall_seconds * 1e3, 1),
                  ResultTable::Int(static_cast<long long>(eclat.patterns)),
                  ResultTable::Int(static_cast<long long>(vertical_bytes))});
    table.Print(std::cout);
  }

  // --- A4: Apriori second pass -------------------------------------------------
  {
    ResultTable table("Ablation A4: Apriori C2 counting strategy");
    table.SetHeader({"variant", "wall_ms", "db_scans", "patterns"});
    for (bool pairs : {false, true}) {
      SchemeResult r = RunApriori(db, min_support, 0, pairs);
      table.AddRow({pairs ? "pair-count matrix" : "hash tree (paper-era)",
                    ResultTable::Num(r.wall_seconds * 1e3, 1),
                    ResultTable::Int(static_cast<long long>(r.db_scans)),
                    ResultTable::Int(static_cast<long long>(r.patterns))});
    }
    table.Print(std::cout);
  }
  return 0;
}
