// Approximate (filter-only) mining — the paper's Section 5 future-work
// extension: skip the refinement phase entirely and return every estimated-
// frequent pattern with a probability of being truly frequent.
//
//   $ ./approximate_mining
//
// The demo deliberately uses a narrow vector (heavy false drops) to show
// the confidence model separating true patterns from false ones, then
// compares against the exact DFP result.

#include <algorithm>
#include <cstdio>
#include <iostream>
#include <set>

#include "core/approximate.h"
#include "core/bbs_index.h"
#include "core/miner.h"
#include "datagen/quest_gen.h"
#include "util/stopwatch.h"

using namespace bbsmine;

int main() {
  QuestConfig quest;
  quest.num_transactions = 10'000;
  quest.num_items = 2'000;
  quest.avg_transaction_size = 10;
  quest.avg_pattern_size = 4;
  quest.num_patterns = 300;
  auto db = GenerateQuest(quest);
  if (!db.ok()) {
    std::cerr << db.status().ToString() << "\n";
    return 1;
  }

  // A narrow vector: fast and small, but lossy.
  BbsConfig config;
  config.num_bits = 300;
  config.num_hashes = 3;
  auto bbs = BbsIndex::Create(config);
  if (!bbs.ok()) {
    std::cerr << bbs.status().ToString() << "\n";
    return 1;
  }
  bbs->InsertAll(*db);

  Itemset universe(db->item_universe());
  for (ItemId i = 0; i < db->item_universe(); ++i) universe[i] = i;

  // Exact mining for ground truth.
  MineConfig exact;
  exact.algorithm = Algorithm::kDFP;
  exact.min_support = 0.005;
  MiningResult truth = MineFrequentPatterns(*db, *bbs, exact);
  std::set<Itemset> true_set;
  for (const Pattern& p : truth.patterns) true_set.insert(p.items);

  // Approximate mining: no refinement at all.
  ApproxMineConfig approx;
  approx.min_support = 0.005;
  Stopwatch timer;
  std::vector<ApproxPattern> patterns =
      MineApproximate(*bbs, approx, universe);
  double approx_ms = timer.ElapsedMillis();

  std::printf(
      "exact DFP: %zu patterns in %.1f ms\n"
      "approximate (filter only): %zu patterns in %.1f ms\n\n",
      truth.patterns.size(), truth.stats.total_seconds * 1e3, patterns.size(),
      approx_ms);

  // Precision by confidence bucket: high-confidence buckets should be
  // nearly pure, low-confidence ones polluted by false drops.
  struct Bucket {
    double lo, hi;
    size_t total = 0, correct = 0;
  };
  Bucket buckets[] = {{0.0, 0.5, 0, 0},
                      {0.5, 0.9, 0, 0},
                      {0.9, 0.999, 0, 0},
                      {0.999, 1.01, 0, 0}};
  for (const ApproxPattern& p : patterns) {
    for (Bucket& b : buckets) {
      if (p.confidence >= b.lo && p.confidence < b.hi) {
        ++b.total;
        if (true_set.contains(p.items)) ++b.correct;
        break;
      }
    }
  }
  std::printf("confidence bucket | patterns | actually frequent\n");
  for (const Bucket& b : buckets) {
    std::printf("  [%.3f, %.3f)  | %8zu | %s\n", b.lo, b.hi, b.total,
                b.total ? (std::to_string(100 * b.correct / b.total) + "%")
                              .c_str()
                        : "-");
  }

  // Thresholding on confidence trades recall for precision.
  std::printf("\nmin_confidence sweep (recall vs precision):\n");
  for (double min_conf : {0.0, 0.5, 0.9, 0.99}) {
    size_t kept = 0;
    size_t correct = 0;
    for (const ApproxPattern& p : patterns) {
      if (p.confidence >= min_conf) {
        ++kept;
        if (true_set.contains(p.items)) ++correct;
      }
    }
    std::printf(
        "  conf >= %-5.2f: %6zu patterns, precision %5.1f%%, recall %5.1f%%\n",
        min_conf, kept,
        kept ? 100.0 * static_cast<double>(correct) /
                   static_cast<double>(kept)
             : 0.0,
        true_set.empty()
            ? 0.0
            : 100.0 * static_cast<double>(correct) /
                  static_cast<double>(true_set.size()));
  }
  return 0;
}
