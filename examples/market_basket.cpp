// Market-basket analysis end to end: generate a retail-like dataset,
// persist the database and its BBS index to disk, reload both, mine
// frequent patterns with DFP, and derive association rules.
//
//   $ ./market_basket [data_dir]
//
// This is the workflow the paper motivates: the BBS is built once, kept on
// disk alongside the database, and reused (and incrementally extended) for
// every subsequent mining run — unlike an FP-tree, which must be rebuilt
// from the raw data each time.

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <iostream>
#include <string>

#include "core/bbs_index.h"
#include "core/miner.h"
#include "datagen/quest_gen.h"
#include "storage/transaction_db.h"

using namespace bbsmine;

int main(int argc, char** argv) {
  std::string dir = argc > 1 ? argv[1] : std::filesystem::temp_directory_path().string();
  std::string db_path = dir + "/market_basket.db";
  std::string idx_path = dir + "/market_basket.bbs";

  // --- Build: a store with 2,000 SKUs and 20,000 baskets -------------------
  QuestConfig quest;
  quest.num_transactions = 20'000;
  quest.num_items = 2'000;
  quest.avg_transaction_size = 12;
  quest.avg_pattern_size = 4;
  quest.num_patterns = 400;
  quest.seed = 2026;
  auto generated = GenerateQuest(quest);
  if (!generated.ok()) {
    std::cerr << "generation failed: " << generated.status().ToString() << "\n";
    return 1;
  }

  BbsConfig bbs_config;
  bbs_config.num_bits = 1600;
  bbs_config.num_hashes = 4;
  auto built = BbsIndex::Create(bbs_config);
  if (!built.ok()) {
    std::cerr << built.status().ToString() << "\n";
    return 1;
  }
  built->InsertAll(*generated);

  if (Status st = generated->Save(db_path); !st.ok()) {
    std::cerr << "save db: " << st.ToString() << "\n";
    return 1;
  }
  if (Status st = built->Save(idx_path); !st.ok()) {
    std::cerr << "save index: " << st.ToString() << "\n";
    return 1;
  }
  std::cout << "Persisted " << generated->size() << " baskets ("
            << generated->SerializedBytes() / 1024 << " KiB) and BBS ("
            << built->SerializedBytes() / 1024 << " KiB) to " << dir << "\n";

  // --- Reload and mine ------------------------------------------------------
  auto db = TransactionDatabase::Load(db_path);
  auto bbs = BbsIndex::Load(idx_path);
  if (!db.ok() || !bbs.ok()) {
    std::cerr << "reload failed\n";
    return 1;
  }

  MineConfig mine;
  mine.algorithm = Algorithm::kDFP;
  mine.min_support = 0.005;
  MiningResult result = MineFrequentPatterns(*db, *bbs, mine);
  std::printf(
      "DFP mined %zu frequent patterns (tau=%llu) in %.1f ms; "
      "%.0f%% certified without probing, FDR=%.4f\n",
      result.patterns.size(),
      static_cast<unsigned long long>(
          AbsoluteThreshold(mine.min_support, db->size())),
      result.stats.total_seconds * 1e3,
      result.stats.candidates
          ? 100.0 * static_cast<double>(result.stats.certified) /
                static_cast<double>(result.stats.candidates)
          : 0.0,
      result.FalseDropRatio());

  // --- Association rules from the 2-itemsets -------------------------------
  result.SortPatterns();
  struct Rule {
    ItemId lhs, rhs;
    double confidence;
    uint64_t support;
  };
  std::vector<Rule> rules;
  for (const Pattern& p : result.patterns) {
    if (p.items.size() != 2) continue;
    const Pattern* lhs1 = result.Find({p.items[0]});
    const Pattern* lhs2 = result.Find({p.items[1]});
    if (lhs1 != nullptr && lhs1->support > 0) {
      rules.push_back({p.items[0], p.items[1],
                       static_cast<double>(p.support) /
                           static_cast<double>(lhs1->support),
                       p.support});
    }
    if (lhs2 != nullptr && lhs2->support > 0) {
      rules.push_back({p.items[1], p.items[0],
                       static_cast<double>(p.support) /
                           static_cast<double>(lhs2->support),
                       p.support});
    }
  }
  std::sort(rules.begin(), rules.end(),
            [](const Rule& a, const Rule& b) {
              return a.confidence > b.confidence;
            });
  std::cout << "Top association rules (confidence >= 0.5):\n";
  int shown = 0;
  for (const Rule& r : rules) {
    if (r.confidence < 0.5 || shown >= 8) break;
    std::printf("  SKU %-5u => SKU %-5u  conf %.2f  support %llu\n", r.lhs,
                r.rhs, r.confidence,
                static_cast<unsigned long long>(r.support));
    ++shown;
  }
  if (shown == 0) std::cout << "  (none above 0.5)\n";

  // --- Incremental day-2 baskets --------------------------------------------
  quest.seed = 2027;
  quest.num_transactions = 2'000;
  auto day2 = GenerateQuest(quest);
  if (day2.ok()) {
    for (size_t t = 0; t < day2->size(); ++t) {
      db->Append(day2->At(t).items);
      bbs->Insert(day2->At(t).items);  // no rebuild — just append
    }
    MiningResult updated = MineFrequentPatterns(*db, *bbs, mine);
    std::printf(
        "After appending %zu new baskets (no index rebuild): %zu patterns "
        "in %.1f ms\n",
        day2->size(), updated.patterns.size(),
        updated.stats.total_seconds * 1e3);
  }

  std::remove(db_path.c_str());
  std::remove(idx_path.c_str());
  return 0;
}
