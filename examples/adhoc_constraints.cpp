// Ad-hoc queries with constraints (paper Sections 3.4 and 4.9).
//
//   $ ./adhoc_constraints
//
// Demonstrates the two query classes the paper uses to argue that BBS
// answers questions the mined pattern set cannot:
//   Query 1 — the exact count of a pattern that is NOT frequent (Apriori's
//             output doesn't contain it; the FP-tree never stored it);
//   Query 2 — the count of a pattern restricted by a predicate on the
//             transactions (here: "Sunday transactions", TID % 7 == 0),
//             answered by ANDing one extra constraint slice.

#include <cstdio>
#include <iostream>

#include "core/adhoc.h"
#include "core/bbs_index.h"
#include "core/miner.h"
#include "datagen/quest_gen.h"

using namespace bbsmine;

int main() {
  QuestConfig quest;
  quest.num_transactions = 20'000;
  quest.num_items = 2'000;
  quest.avg_transaction_size = 10;
  quest.avg_pattern_size = 4;
  quest.num_patterns = 300;
  auto db = GenerateQuest(quest);
  if (!db.ok()) {
    std::cerr << db.status().ToString() << "\n";
    return 1;
  }

  BbsConfig config;
  config.num_bits = 1600;
  config.num_hashes = 4;
  auto bbs = BbsIndex::Create(config);
  if (!bbs.ok()) {
    std::cerr << bbs.status().ToString() << "\n";
    return 1;
  }
  bbs->InsertAll(*db);

  // Mine once so we can pick a genuinely non-frequent pattern.
  MineConfig mine;
  mine.algorithm = Algorithm::kDFP;
  mine.min_support = 0.005;
  MiningResult mined = MineFrequentPatterns(*db, *bbs, mine);
  mined.SortPatterns();
  std::printf("Mined %zu frequent patterns at minsup %.2f%%.\n\n",
              mined.patterns.size(), mine.min_support * 100);

  // --- Query 1: exact count of a non-frequent pattern -----------------------
  Itemset rare;
  for (ItemId a = 0; a < 100 && rare.empty(); ++a) {
    for (ItemId b = a + 1; b < 100; ++b) {
      if (mined.Find({a, b}) == nullptr) {
        rare = {a, b};
        break;
      }
    }
  }
  if (!rare.empty()) {
    AdhocQueryResult q1 = CountPatternExact(*db, *bbs, rare);
    std::printf(
        "Query 1: count of non-frequent pattern %s\n"
        "  BBS estimate %llu -> probed %llu transactions -> exact count "
        "%llu\n"
        "  (Apriori's output cannot answer this; the FP-tree never stored "
        "it.)\n\n",
        ItemsetToString(rare).c_str(),
        static_cast<unsigned long long>(q1.estimate),
        static_cast<unsigned long long>(q1.probed_transactions),
        static_cast<unsigned long long>(q1.exact));
  }

  // --- Query 2: constrained count -------------------------------------------
  // "Is itemset I frequent among Sunday transactions?" with TIDs as day
  // numbers: Sundays are TID % 7 == 0.
  BitVector sundays = MakeConstraintSlice(
      *db, [](const Transaction& txn) { return txn.tid % 7 == 0; });
  Itemset target =
      mined.patterns.empty() ? Itemset{1} : mined.patterns.front().items;

  AdhocQueryResult overall = CountPatternExact(*db, *bbs, target);
  AdhocQueryResult sunday = CountPatternExact(*db, *bbs, target, &sundays);
  std::printf(
      "Query 2: pattern %s\n"
      "  overall: exact %llu (estimate %llu)\n"
      "  Sundays (TID %% 7 == 0, %zu transactions): exact %llu (estimate "
      "%llu), %llu probes\n",
      ItemsetToString(target).c_str(),
      static_cast<unsigned long long>(overall.exact),
      static_cast<unsigned long long>(overall.estimate), sundays.Count(),
      static_cast<unsigned long long>(sunday.exact),
      static_cast<unsigned long long>(sunday.estimate),
      static_cast<unsigned long long>(sunday.probed_transactions));

  // Constraint slices are ordinary bit vectors: combine them freely.
  BitVector long_sessions = MakeConstraintSlice(
      *db, [](const Transaction& txn) { return txn.items.size() >= 12; });
  BitVector both = sundays;
  both.AndWith(long_sessions);
  AdhocQueryResult combo = CountPatternExact(*db, *bbs, target, &both);
  std::printf(
      "  Sundays AND session length >= 12 (%zu transactions): exact %llu\n",
      both.Count(), static_cast<unsigned long long>(combo.exact));
  return 0;
}
