// Quickstart: walks through the paper's running example (Tables 1 and 2,
// Example 2) and then mines a small synthetic dataset with all four BBS
// schemes.
//
//   $ ./quickstart

#include <cstdio>
#include <iostream>

#include "core/adhoc.h"
#include "core/bbs_index.h"
#include "core/miner.h"
#include "datagen/quest_gen.h"
#include "storage/transaction_db.h"

using namespace bbsmine;

namespace {

void RunningExample() {
  std::cout << "=== The paper's running example (Section 2.1) ===\n";

  // Table 1: five transactions over items 0..15.
  TransactionDatabase db;
  db.AppendTransaction({100, {0, 1, 2, 3, 4, 5, 14, 15}});
  db.AppendTransaction({200, {1, 2, 3, 5, 6, 7}});
  db.AppendTransaction({300, {1, 5, 14, 15}});
  db.AppendTransaction({400, {0, 1, 2, 7}});
  db.AppendTransaction({500, {1, 2, 5, 6, 11, 15}});

  // The paper's toy BBS: m = 8 bits, one hash function h(x) = x mod 8.
  BbsConfig config;
  config.num_bits = 8;
  config.num_hashes = 1;
  config.hash_kind = HashKind::kModulo;
  auto bbs = BbsIndex::Create(config);
  if (!bbs.ok()) {
    std::cerr << bbs.status().ToString() << "\n";
    return;
  }
  bbs->InsertAll(db);

  std::cout << "Transaction signatures (Table 1):\n";
  for (size_t t = 0; t < db.size(); ++t) {
    BitVector sig = bbs->MakeSignature(db.At(t).items);
    std::cout << "  TID " << db.At(t).tid << "  items "
              << ItemsetToString(db.At(t).items) << "  -> ";
    for (uint32_t b = 0; b < 8; ++b) std::cout << (sig.Get(b) ? '1' : '0');
    std::cout << "\n";
  }

  std::cout << "Bit slices (Table 2, transposed view):\n";
  for (uint32_t s = 0; s < bbs->num_bits(); ++s) {
    std::cout << "  slice " << s << ": ";
    for (size_t t = 0; t < db.size(); ++t) {
      std::cout << (bbs->Slice(s).Get(t) ? '1' : '0');
    }
    std::cout << "\n";
  }

  // Example 2: CountItemSet on {0,1} is exact (2); on {1,3} it
  // overestimates (3 instead of 2).
  std::cout << "CountItemSet({0,1}) = " << bbs->CountItemSet({0, 1})
            << "   (exact: 2)\n";
  std::cout << "CountItemSet({1,3}) = " << bbs->CountItemSet({1, 3})
            << "   (actual support is 2 -> the estimate may overshoot)\n\n";
}

void MineSynthetic() {
  std::cout << "=== Mining a synthetic T8.I4 dataset with all four schemes "
               "===\n";
  QuestConfig quest;
  quest.num_transactions = 5'000;
  quest.num_items = 1'000;
  quest.avg_transaction_size = 8;
  quest.avg_pattern_size = 4;
  quest.num_patterns = 200;
  auto db = GenerateQuest(quest);
  if (!db.ok()) {
    std::cerr << db.status().ToString() << "\n";
    return;
  }

  BbsConfig config;
  config.num_bits = 800;
  config.num_hashes = 4;
  auto bbs = BbsIndex::Create(config);
  if (!bbs.ok()) {
    std::cerr << bbs.status().ToString() << "\n";
    return;
  }
  bbs->InsertAll(*db);

  for (Algorithm algorithm : {Algorithm::kSFS, Algorithm::kSFP,
                              Algorithm::kDFS, Algorithm::kDFP}) {
    MineConfig mine;
    mine.algorithm = algorithm;
    mine.min_support = 0.01;
    MiningResult result = MineFrequentPatterns(*db, *bbs, mine);
    std::printf(
        "  %-3s  patterns=%-5zu candidates=%-5llu false_drops=%-4llu "
        "certified=%-5llu FDR=%.4f  %.1f ms\n",
        AlgorithmName(algorithm), result.patterns.size(),
        static_cast<unsigned long long>(result.stats.candidates),
        static_cast<unsigned long long>(result.stats.false_drops),
        static_cast<unsigned long long>(result.stats.certified),
        result.FalseDropRatio(), result.stats.total_seconds * 1e3);
  }

  // Show a few of the longest patterns found by DFP.
  MineConfig mine;
  mine.algorithm = Algorithm::kDFP;
  mine.min_support = 0.01;
  MiningResult result = MineFrequentPatterns(*db, *bbs, mine);
  std::sort(result.patterns.begin(), result.patterns.end(),
            [](const Pattern& a, const Pattern& b) {
              return a.items.size() > b.items.size();
            });
  std::cout << "Longest frequent patterns (DFP):\n";
  for (size_t i = 0; i < std::min<size_t>(5, result.patterns.size()); ++i) {
    std::cout << "  " << ItemsetToString(result.patterns[i].items)
              << "  support " << result.patterns[i].support << "\n";
  }
}

}  // namespace

int main() {
  RunningExample();
  MineSynthetic();
  return 0;
}
