// Dynamic database scenario (paper Section 4.8): a web server's access log
// grows day by day while the set of "hot" files churns. The BBS absorbs the
// new transactions incrementally; the FP-tree must be rebuilt from scratch
// after every batch, and Apriori re-scans the whole history.
//
//   $ ./weblog_dynamic [days]

#include <cstdio>
#include <cstdlib>
#include <iostream>

#include "baseline/apriori.h"
#include "baseline/fp_tree.h"
#include "core/bbs_index.h"
#include "core/miner.h"
#include "datagen/weblog_gen.h"
#include "util/stopwatch.h"

using namespace bbsmine;

int main(int argc, char** argv) {
  int days = argc > 1 ? std::atoi(argv[1]) : 4;
  if (days < 1) days = 1;

  WebLogConfig weblog;
  weblog.num_files = 5'000;
  weblog.transactions_per_day = 10'000;
  auto gen = WebLogGenerator::Create(weblog);
  if (!gen.ok()) {
    std::cerr << gen.status().ToString() << "\n";
    return 1;
  }

  BbsConfig bbs_config;
  bbs_config.num_bits = 1600;
  bbs_config.num_hashes = 4;
  auto bbs = BbsIndex::Create(bbs_config);
  if (!bbs.ok()) {
    std::cerr << bbs.status().ToString() << "\n";
    return 1;
  }

  TransactionDatabase db;
  double min_support = 0.01;

  std::cout << "day | txns total | DFP ms (incremental) | FPS ms (rebuild) | "
               "APS ms (rescan)\n";
  for (int day = 1; day <= days; ++day) {
    // New day's sessions arrive; the BBS absorbs them in place.
    size_t before = db.size();
    gen->GenerateDay(&db);
    Stopwatch insert_timer;
    for (size_t t = before; t < db.size(); ++t) bbs->Insert(db.At(t).items);
    double insert_ms = insert_timer.ElapsedMillis();

    MineConfig mine;
    mine.algorithm = Algorithm::kDFP;
    mine.min_support = min_support;
    MiningResult dfp = MineFrequentPatterns(db, *bbs, mine);

    FpGrowthConfig fp;
    fp.min_support = min_support;
    MiningResult fps = MineFpGrowth(db, fp);

    AprioriConfig ap;
    ap.min_support = min_support;
    MiningResult aps = MineApriori(db, ap);

    std::printf("%3d | %10zu | %8.1f (+%.1f ins) | %16.1f | %15.1f   "
                "[%zu patterns]\n",
                day, db.size(), dfp.stats.total_seconds * 1e3, insert_ms,
                fps.stats.total_seconds * 1e3, aps.stats.total_seconds * 1e3,
                dfp.patterns.size());
    if (dfp.patterns.size() != fps.patterns.size() ||
        fps.patterns.size() != aps.patterns.size()) {
      std::cerr << "ERROR: algorithms disagree!\n";
      return 1;
    }
  }
  std::cout << "\nThe DFP column stays flat-ish because only the new day's "
               "transactions\nare inserted; FPS pays a full rebuild and APS "
               "full rescans every day.\n";
  return 0;
}
