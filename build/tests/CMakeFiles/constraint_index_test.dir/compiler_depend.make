# Empty compiler generated dependencies file for constraint_index_test.
# This may be replaced when dependencies are built.
