file(REMOVE_RECURSE
  "CMakeFiles/constraint_index_test.dir/constraint_index_test.cc.o"
  "CMakeFiles/constraint_index_test.dir/constraint_index_test.cc.o.d"
  "constraint_index_test"
  "constraint_index_test.pdb"
  "constraint_index_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/constraint_index_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
