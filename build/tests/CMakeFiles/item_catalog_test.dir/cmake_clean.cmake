file(REMOVE_RECURSE
  "CMakeFiles/item_catalog_test.dir/item_catalog_test.cc.o"
  "CMakeFiles/item_catalog_test.dir/item_catalog_test.cc.o.d"
  "item_catalog_test"
  "item_catalog_test.pdb"
  "item_catalog_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/item_catalog_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
