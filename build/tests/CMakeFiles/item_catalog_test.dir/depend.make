# Empty dependencies file for item_catalog_test.
# This may be replaced when dependencies are built.
