# Empty compiler generated dependencies file for fimi_io_test.
# This may be replaced when dependencies are built.
