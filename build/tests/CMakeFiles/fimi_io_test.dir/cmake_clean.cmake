file(REMOVE_RECURSE
  "CMakeFiles/fimi_io_test.dir/fimi_io_test.cc.o"
  "CMakeFiles/fimi_io_test.dir/fimi_io_test.cc.o.d"
  "fimi_io_test"
  "fimi_io_test.pdb"
  "fimi_io_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fimi_io_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
