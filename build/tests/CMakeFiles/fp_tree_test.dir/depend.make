# Empty dependencies file for fp_tree_test.
# This may be replaced when dependencies are built.
