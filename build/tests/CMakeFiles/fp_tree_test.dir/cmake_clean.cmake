file(REMOVE_RECURSE
  "CMakeFiles/fp_tree_test.dir/fp_tree_test.cc.o"
  "CMakeFiles/fp_tree_test.dir/fp_tree_test.cc.o.d"
  "fp_tree_test"
  "fp_tree_test.pdb"
  "fp_tree_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fp_tree_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
