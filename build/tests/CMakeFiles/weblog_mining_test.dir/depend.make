# Empty dependencies file for weblog_mining_test.
# This may be replaced when dependencies are built.
