file(REMOVE_RECURSE
  "CMakeFiles/weblog_mining_test.dir/weblog_mining_test.cc.o"
  "CMakeFiles/weblog_mining_test.dir/weblog_mining_test.cc.o.d"
  "weblog_mining_test"
  "weblog_mining_test.pdb"
  "weblog_mining_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/weblog_mining_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
