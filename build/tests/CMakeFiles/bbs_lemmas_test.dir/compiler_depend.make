# Empty compiler generated dependencies file for bbs_lemmas_test.
# This may be replaced when dependencies are built.
