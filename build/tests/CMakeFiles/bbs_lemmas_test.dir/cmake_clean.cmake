file(REMOVE_RECURSE
  "CMakeFiles/bbs_lemmas_test.dir/bbs_lemmas_test.cc.o"
  "CMakeFiles/bbs_lemmas_test.dir/bbs_lemmas_test.cc.o.d"
  "bbs_lemmas_test"
  "bbs_lemmas_test.pdb"
  "bbs_lemmas_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bbs_lemmas_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
