
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/bbs_lemmas_test.cc" "tests/CMakeFiles/bbs_lemmas_test.dir/bbs_lemmas_test.cc.o" "gcc" "tests/CMakeFiles/bbs_lemmas_test.dir/bbs_lemmas_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/tests/CMakeFiles/bbsmine_testing.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/bbsmine_core.dir/DependInfo.cmake"
  "/root/repo/build/src/baseline/CMakeFiles/bbsmine_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/datagen/CMakeFiles/bbsmine_datagen.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/bbsmine_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/bbsmine_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
