file(REMOVE_RECURSE
  "CMakeFiles/bbsmine_testing.dir/testing/reference.cc.o"
  "CMakeFiles/bbsmine_testing.dir/testing/reference.cc.o.d"
  "libbbsmine_testing.a"
  "libbbsmine_testing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bbsmine_testing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
