file(REMOVE_RECURSE
  "libbbsmine_testing.a"
)
