# Empty compiler generated dependencies file for bbsmine_testing.
# This may be replaced when dependencies are built.
