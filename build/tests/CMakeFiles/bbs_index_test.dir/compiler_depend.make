# Empty compiler generated dependencies file for bbs_index_test.
# This may be replaced when dependencies are built.
