# Empty compiler generated dependencies file for eclat_test.
# This may be replaced when dependencies are built.
