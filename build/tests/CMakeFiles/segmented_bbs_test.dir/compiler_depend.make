# Empty compiler generated dependencies file for segmented_bbs_test.
# This may be replaced when dependencies are built.
