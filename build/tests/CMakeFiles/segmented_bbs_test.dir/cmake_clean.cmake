file(REMOVE_RECURSE
  "CMakeFiles/segmented_bbs_test.dir/segmented_bbs_test.cc.o"
  "CMakeFiles/segmented_bbs_test.dir/segmented_bbs_test.cc.o.d"
  "segmented_bbs_test"
  "segmented_bbs_test.pdb"
  "segmented_bbs_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/segmented_bbs_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
