file(REMOVE_RECURSE
  "CMakeFiles/tidset_test.dir/tidset_test.cc.o"
  "CMakeFiles/tidset_test.dir/tidset_test.cc.o.d"
  "tidset_test"
  "tidset_test.pdb"
  "tidset_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tidset_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
