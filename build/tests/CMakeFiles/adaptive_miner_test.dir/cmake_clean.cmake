file(REMOVE_RECURSE
  "CMakeFiles/adaptive_miner_test.dir/adaptive_miner_test.cc.o"
  "CMakeFiles/adaptive_miner_test.dir/adaptive_miner_test.cc.o.d"
  "adaptive_miner_test"
  "adaptive_miner_test.pdb"
  "adaptive_miner_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adaptive_miner_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
