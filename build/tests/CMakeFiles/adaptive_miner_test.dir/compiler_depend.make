# Empty compiler generated dependencies file for adaptive_miner_test.
# This may be replaced when dependencies are built.
