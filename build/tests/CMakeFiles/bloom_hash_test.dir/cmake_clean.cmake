file(REMOVE_RECURSE
  "CMakeFiles/bloom_hash_test.dir/bloom_hash_test.cc.o"
  "CMakeFiles/bloom_hash_test.dir/bloom_hash_test.cc.o.d"
  "bloom_hash_test"
  "bloom_hash_test.pdb"
  "bloom_hash_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bloom_hash_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
