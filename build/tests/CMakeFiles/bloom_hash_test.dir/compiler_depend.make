# Empty compiler generated dependencies file for bloom_hash_test.
# This may be replaced when dependencies are built.
