file(REMOVE_RECURSE
  "CMakeFiles/bbs_index_edge_test.dir/bbs_index_edge_test.cc.o"
  "CMakeFiles/bbs_index_edge_test.dir/bbs_index_edge_test.cc.o.d"
  "bbs_index_edge_test"
  "bbs_index_edge_test.pdb"
  "bbs_index_edge_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bbs_index_edge_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
