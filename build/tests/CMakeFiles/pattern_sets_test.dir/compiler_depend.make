# Empty compiler generated dependencies file for pattern_sets_test.
# This may be replaced when dependencies are built.
