file(REMOVE_RECURSE
  "CMakeFiles/pattern_sets_test.dir/pattern_sets_test.cc.o"
  "CMakeFiles/pattern_sets_test.dir/pattern_sets_test.cc.o.d"
  "pattern_sets_test"
  "pattern_sets_test.pdb"
  "pattern_sets_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pattern_sets_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
