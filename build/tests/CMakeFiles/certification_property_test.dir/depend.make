# Empty dependencies file for certification_property_test.
# This may be replaced when dependencies are built.
