file(REMOVE_RECURSE
  "CMakeFiles/certification_property_test.dir/certification_property_test.cc.o"
  "CMakeFiles/certification_property_test.dir/certification_property_test.cc.o.d"
  "certification_property_test"
  "certification_property_test.pdb"
  "certification_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/certification_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
