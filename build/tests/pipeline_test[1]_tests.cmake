add_test([=[PipelineTest.FullWorkflow]=]  /root/repo/build/tests/pipeline_test [==[--gtest_filter=PipelineTest.FullWorkflow]==] --gtest_also_run_disabled_tests)
set_tests_properties([=[PipelineTest.FullWorkflow]=]  PROPERTIES WORKING_DIRECTORY /root/repo/build/tests SKIP_REGULAR_EXPRESSION [==[\[  SKIPPED \]]==])
set(  pipeline_test_TESTS PipelineTest.FullWorkflow)
