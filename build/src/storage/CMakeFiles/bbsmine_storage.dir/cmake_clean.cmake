file(REMOVE_RECURSE
  "CMakeFiles/bbsmine_storage.dir/fimi_io.cc.o"
  "CMakeFiles/bbsmine_storage.dir/fimi_io.cc.o.d"
  "CMakeFiles/bbsmine_storage.dir/item_catalog.cc.o"
  "CMakeFiles/bbsmine_storage.dir/item_catalog.cc.o.d"
  "CMakeFiles/bbsmine_storage.dir/page_cache.cc.o"
  "CMakeFiles/bbsmine_storage.dir/page_cache.cc.o.d"
  "CMakeFiles/bbsmine_storage.dir/record_store.cc.o"
  "CMakeFiles/bbsmine_storage.dir/record_store.cc.o.d"
  "CMakeFiles/bbsmine_storage.dir/transaction.cc.o"
  "CMakeFiles/bbsmine_storage.dir/transaction.cc.o.d"
  "CMakeFiles/bbsmine_storage.dir/transaction_db.cc.o"
  "CMakeFiles/bbsmine_storage.dir/transaction_db.cc.o.d"
  "libbbsmine_storage.a"
  "libbbsmine_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bbsmine_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
