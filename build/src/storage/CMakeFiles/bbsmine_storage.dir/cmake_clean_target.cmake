file(REMOVE_RECURSE
  "libbbsmine_storage.a"
)
