
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/storage/fimi_io.cc" "src/storage/CMakeFiles/bbsmine_storage.dir/fimi_io.cc.o" "gcc" "src/storage/CMakeFiles/bbsmine_storage.dir/fimi_io.cc.o.d"
  "/root/repo/src/storage/item_catalog.cc" "src/storage/CMakeFiles/bbsmine_storage.dir/item_catalog.cc.o" "gcc" "src/storage/CMakeFiles/bbsmine_storage.dir/item_catalog.cc.o.d"
  "/root/repo/src/storage/page_cache.cc" "src/storage/CMakeFiles/bbsmine_storage.dir/page_cache.cc.o" "gcc" "src/storage/CMakeFiles/bbsmine_storage.dir/page_cache.cc.o.d"
  "/root/repo/src/storage/record_store.cc" "src/storage/CMakeFiles/bbsmine_storage.dir/record_store.cc.o" "gcc" "src/storage/CMakeFiles/bbsmine_storage.dir/record_store.cc.o.d"
  "/root/repo/src/storage/transaction.cc" "src/storage/CMakeFiles/bbsmine_storage.dir/transaction.cc.o" "gcc" "src/storage/CMakeFiles/bbsmine_storage.dir/transaction.cc.o.d"
  "/root/repo/src/storage/transaction_db.cc" "src/storage/CMakeFiles/bbsmine_storage.dir/transaction_db.cc.o" "gcc" "src/storage/CMakeFiles/bbsmine_storage.dir/transaction_db.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/bbsmine_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
