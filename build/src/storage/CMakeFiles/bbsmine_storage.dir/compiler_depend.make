# Empty compiler generated dependencies file for bbsmine_storage.
# This may be replaced when dependencies are built.
