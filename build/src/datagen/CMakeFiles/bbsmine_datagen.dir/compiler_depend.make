# Empty compiler generated dependencies file for bbsmine_datagen.
# This may be replaced when dependencies are built.
