file(REMOVE_RECURSE
  "CMakeFiles/bbsmine_datagen.dir/quest_gen.cc.o"
  "CMakeFiles/bbsmine_datagen.dir/quest_gen.cc.o.d"
  "CMakeFiles/bbsmine_datagen.dir/weblog_gen.cc.o"
  "CMakeFiles/bbsmine_datagen.dir/weblog_gen.cc.o.d"
  "libbbsmine_datagen.a"
  "libbbsmine_datagen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bbsmine_datagen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
