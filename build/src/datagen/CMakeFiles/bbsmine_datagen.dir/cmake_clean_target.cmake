file(REMOVE_RECURSE
  "libbbsmine_datagen.a"
)
