file(REMOVE_RECURSE
  "CMakeFiles/bbsmine_util.dir/bitvector.cc.o"
  "CMakeFiles/bbsmine_util.dir/bitvector.cc.o.d"
  "CMakeFiles/bbsmine_util.dir/crc32.cc.o"
  "CMakeFiles/bbsmine_util.dir/crc32.cc.o.d"
  "CMakeFiles/bbsmine_util.dir/iomodel.cc.o"
  "CMakeFiles/bbsmine_util.dir/iomodel.cc.o.d"
  "CMakeFiles/bbsmine_util.dir/md5.cc.o"
  "CMakeFiles/bbsmine_util.dir/md5.cc.o.d"
  "CMakeFiles/bbsmine_util.dir/status.cc.o"
  "CMakeFiles/bbsmine_util.dir/status.cc.o.d"
  "CMakeFiles/bbsmine_util.dir/table.cc.o"
  "CMakeFiles/bbsmine_util.dir/table.cc.o.d"
  "libbbsmine_util.a"
  "libbbsmine_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bbsmine_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
