# Empty compiler generated dependencies file for bbsmine_util.
# This may be replaced when dependencies are built.
