file(REMOVE_RECURSE
  "libbbsmine_util.a"
)
