
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/util/bitvector.cc" "src/util/CMakeFiles/bbsmine_util.dir/bitvector.cc.o" "gcc" "src/util/CMakeFiles/bbsmine_util.dir/bitvector.cc.o.d"
  "/root/repo/src/util/crc32.cc" "src/util/CMakeFiles/bbsmine_util.dir/crc32.cc.o" "gcc" "src/util/CMakeFiles/bbsmine_util.dir/crc32.cc.o.d"
  "/root/repo/src/util/iomodel.cc" "src/util/CMakeFiles/bbsmine_util.dir/iomodel.cc.o" "gcc" "src/util/CMakeFiles/bbsmine_util.dir/iomodel.cc.o.d"
  "/root/repo/src/util/md5.cc" "src/util/CMakeFiles/bbsmine_util.dir/md5.cc.o" "gcc" "src/util/CMakeFiles/bbsmine_util.dir/md5.cc.o.d"
  "/root/repo/src/util/status.cc" "src/util/CMakeFiles/bbsmine_util.dir/status.cc.o" "gcc" "src/util/CMakeFiles/bbsmine_util.dir/status.cc.o.d"
  "/root/repo/src/util/table.cc" "src/util/CMakeFiles/bbsmine_util.dir/table.cc.o" "gcc" "src/util/CMakeFiles/bbsmine_util.dir/table.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
