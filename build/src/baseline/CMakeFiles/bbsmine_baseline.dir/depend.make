# Empty dependencies file for bbsmine_baseline.
# This may be replaced when dependencies are built.
