file(REMOVE_RECURSE
  "libbbsmine_baseline.a"
)
