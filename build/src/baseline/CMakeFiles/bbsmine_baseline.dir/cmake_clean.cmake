file(REMOVE_RECURSE
  "CMakeFiles/bbsmine_baseline.dir/apriori.cc.o"
  "CMakeFiles/bbsmine_baseline.dir/apriori.cc.o.d"
  "CMakeFiles/bbsmine_baseline.dir/eclat.cc.o"
  "CMakeFiles/bbsmine_baseline.dir/eclat.cc.o.d"
  "CMakeFiles/bbsmine_baseline.dir/fp_tree.cc.o"
  "CMakeFiles/bbsmine_baseline.dir/fp_tree.cc.o.d"
  "CMakeFiles/bbsmine_baseline.dir/hash_tree.cc.o"
  "CMakeFiles/bbsmine_baseline.dir/hash_tree.cc.o.d"
  "libbbsmine_baseline.a"
  "libbbsmine_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bbsmine_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
