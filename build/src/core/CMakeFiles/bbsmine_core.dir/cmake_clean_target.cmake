file(REMOVE_RECURSE
  "libbbsmine_core.a"
)
