# Empty dependencies file for bbsmine_core.
# This may be replaced when dependencies are built.
