file(REMOVE_RECURSE
  "CMakeFiles/bbsmine_core.dir/adhoc.cc.o"
  "CMakeFiles/bbsmine_core.dir/adhoc.cc.o.d"
  "CMakeFiles/bbsmine_core.dir/approximate.cc.o"
  "CMakeFiles/bbsmine_core.dir/approximate.cc.o.d"
  "CMakeFiles/bbsmine_core.dir/bbs_index.cc.o"
  "CMakeFiles/bbsmine_core.dir/bbs_index.cc.o.d"
  "CMakeFiles/bbsmine_core.dir/bloom_hash.cc.o"
  "CMakeFiles/bbsmine_core.dir/bloom_hash.cc.o.d"
  "CMakeFiles/bbsmine_core.dir/constraint_index.cc.o"
  "CMakeFiles/bbsmine_core.dir/constraint_index.cc.o.d"
  "CMakeFiles/bbsmine_core.dir/dual_filter.cc.o"
  "CMakeFiles/bbsmine_core.dir/dual_filter.cc.o.d"
  "CMakeFiles/bbsmine_core.dir/filter_engine.cc.o"
  "CMakeFiles/bbsmine_core.dir/filter_engine.cc.o.d"
  "CMakeFiles/bbsmine_core.dir/miner.cc.o"
  "CMakeFiles/bbsmine_core.dir/miner.cc.o.d"
  "CMakeFiles/bbsmine_core.dir/mining_types.cc.o"
  "CMakeFiles/bbsmine_core.dir/mining_types.cc.o.d"
  "CMakeFiles/bbsmine_core.dir/pattern_sets.cc.o"
  "CMakeFiles/bbsmine_core.dir/pattern_sets.cc.o.d"
  "CMakeFiles/bbsmine_core.dir/refine.cc.o"
  "CMakeFiles/bbsmine_core.dir/refine.cc.o.d"
  "CMakeFiles/bbsmine_core.dir/rules.cc.o"
  "CMakeFiles/bbsmine_core.dir/rules.cc.o.d"
  "CMakeFiles/bbsmine_core.dir/segmented_bbs.cc.o"
  "CMakeFiles/bbsmine_core.dir/segmented_bbs.cc.o.d"
  "CMakeFiles/bbsmine_core.dir/single_filter.cc.o"
  "CMakeFiles/bbsmine_core.dir/single_filter.cc.o.d"
  "CMakeFiles/bbsmine_core.dir/tidset.cc.o"
  "CMakeFiles/bbsmine_core.dir/tidset.cc.o.d"
  "libbbsmine_core.a"
  "libbbsmine_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bbsmine_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
