
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/adhoc.cc" "src/core/CMakeFiles/bbsmine_core.dir/adhoc.cc.o" "gcc" "src/core/CMakeFiles/bbsmine_core.dir/adhoc.cc.o.d"
  "/root/repo/src/core/approximate.cc" "src/core/CMakeFiles/bbsmine_core.dir/approximate.cc.o" "gcc" "src/core/CMakeFiles/bbsmine_core.dir/approximate.cc.o.d"
  "/root/repo/src/core/bbs_index.cc" "src/core/CMakeFiles/bbsmine_core.dir/bbs_index.cc.o" "gcc" "src/core/CMakeFiles/bbsmine_core.dir/bbs_index.cc.o.d"
  "/root/repo/src/core/bloom_hash.cc" "src/core/CMakeFiles/bbsmine_core.dir/bloom_hash.cc.o" "gcc" "src/core/CMakeFiles/bbsmine_core.dir/bloom_hash.cc.o.d"
  "/root/repo/src/core/constraint_index.cc" "src/core/CMakeFiles/bbsmine_core.dir/constraint_index.cc.o" "gcc" "src/core/CMakeFiles/bbsmine_core.dir/constraint_index.cc.o.d"
  "/root/repo/src/core/dual_filter.cc" "src/core/CMakeFiles/bbsmine_core.dir/dual_filter.cc.o" "gcc" "src/core/CMakeFiles/bbsmine_core.dir/dual_filter.cc.o.d"
  "/root/repo/src/core/filter_engine.cc" "src/core/CMakeFiles/bbsmine_core.dir/filter_engine.cc.o" "gcc" "src/core/CMakeFiles/bbsmine_core.dir/filter_engine.cc.o.d"
  "/root/repo/src/core/miner.cc" "src/core/CMakeFiles/bbsmine_core.dir/miner.cc.o" "gcc" "src/core/CMakeFiles/bbsmine_core.dir/miner.cc.o.d"
  "/root/repo/src/core/mining_types.cc" "src/core/CMakeFiles/bbsmine_core.dir/mining_types.cc.o" "gcc" "src/core/CMakeFiles/bbsmine_core.dir/mining_types.cc.o.d"
  "/root/repo/src/core/pattern_sets.cc" "src/core/CMakeFiles/bbsmine_core.dir/pattern_sets.cc.o" "gcc" "src/core/CMakeFiles/bbsmine_core.dir/pattern_sets.cc.o.d"
  "/root/repo/src/core/refine.cc" "src/core/CMakeFiles/bbsmine_core.dir/refine.cc.o" "gcc" "src/core/CMakeFiles/bbsmine_core.dir/refine.cc.o.d"
  "/root/repo/src/core/rules.cc" "src/core/CMakeFiles/bbsmine_core.dir/rules.cc.o" "gcc" "src/core/CMakeFiles/bbsmine_core.dir/rules.cc.o.d"
  "/root/repo/src/core/segmented_bbs.cc" "src/core/CMakeFiles/bbsmine_core.dir/segmented_bbs.cc.o" "gcc" "src/core/CMakeFiles/bbsmine_core.dir/segmented_bbs.cc.o.d"
  "/root/repo/src/core/single_filter.cc" "src/core/CMakeFiles/bbsmine_core.dir/single_filter.cc.o" "gcc" "src/core/CMakeFiles/bbsmine_core.dir/single_filter.cc.o.d"
  "/root/repo/src/core/tidset.cc" "src/core/CMakeFiles/bbsmine_core.dir/tidset.cc.o" "gcc" "src/core/CMakeFiles/bbsmine_core.dir/tidset.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/storage/CMakeFiles/bbsmine_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/bbsmine_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
