# Empty compiler generated dependencies file for weblog_dynamic.
# This may be replaced when dependencies are built.
