file(REMOVE_RECURSE
  "CMakeFiles/weblog_dynamic.dir/weblog_dynamic.cpp.o"
  "CMakeFiles/weblog_dynamic.dir/weblog_dynamic.cpp.o.d"
  "weblog_dynamic"
  "weblog_dynamic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/weblog_dynamic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
