# Empty dependencies file for approximate_mining.
# This may be replaced when dependencies are built.
