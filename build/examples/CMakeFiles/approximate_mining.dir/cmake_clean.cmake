file(REMOVE_RECURSE
  "CMakeFiles/approximate_mining.dir/approximate_mining.cpp.o"
  "CMakeFiles/approximate_mining.dir/approximate_mining.cpp.o.d"
  "approximate_mining"
  "approximate_mining.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/approximate_mining.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
