# Empty compiler generated dependencies file for adhoc_constraints.
# This may be replaced when dependencies are built.
