file(REMOVE_RECURSE
  "CMakeFiles/adhoc_constraints.dir/adhoc_constraints.cpp.o"
  "CMakeFiles/adhoc_constraints.dir/adhoc_constraints.cpp.o.d"
  "adhoc_constraints"
  "adhoc_constraints.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adhoc_constraints.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
