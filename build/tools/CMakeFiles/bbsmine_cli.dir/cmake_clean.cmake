file(REMOVE_RECURSE
  "CMakeFiles/bbsmine_cli.dir/bbsmine_cli.cpp.o"
  "CMakeFiles/bbsmine_cli.dir/bbsmine_cli.cpp.o.d"
  "bbsmine"
  "bbsmine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bbsmine_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
