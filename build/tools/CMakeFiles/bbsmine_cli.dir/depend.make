# Empty dependencies file for bbsmine_cli.
# This may be replaced when dependencies are built.
