file(REMOVE_RECURSE
  "CMakeFiles/fig13_adhoc.dir/fig13_adhoc.cpp.o"
  "CMakeFiles/fig13_adhoc.dir/fig13_adhoc.cpp.o.d"
  "fig13_adhoc"
  "fig13_adhoc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_adhoc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
