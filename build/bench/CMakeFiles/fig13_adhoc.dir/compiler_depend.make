# Empty compiler generated dependencies file for fig13_adhoc.
# This may be replaced when dependencies are built.
