# Empty dependencies file for fig12_dynamic.
# This may be replaced when dependencies are built.
