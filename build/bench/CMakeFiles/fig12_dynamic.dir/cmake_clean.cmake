file(REMOVE_RECURSE
  "CMakeFiles/fig12_dynamic.dir/fig12_dynamic.cpp.o"
  "CMakeFiles/fig12_dynamic.dir/fig12_dynamic.cpp.o.d"
  "fig12_dynamic"
  "fig12_dynamic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_dynamic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
