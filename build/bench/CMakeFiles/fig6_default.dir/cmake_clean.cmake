file(REMOVE_RECURSE
  "CMakeFiles/fig6_default.dir/fig6_default.cpp.o"
  "CMakeFiles/fig6_default.dir/fig6_default.cpp.o.d"
  "fig6_default"
  "fig6_default.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_default.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
