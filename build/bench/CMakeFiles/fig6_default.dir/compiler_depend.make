# Empty compiler generated dependencies file for fig6_default.
# This may be replaced when dependencies are built.
