file(REMOVE_RECURSE
  "CMakeFiles/bbsmine_bench_util.dir/bench_util.cc.o"
  "CMakeFiles/bbsmine_bench_util.dir/bench_util.cc.o.d"
  "libbbsmine_bench_util.a"
  "libbbsmine_bench_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bbsmine_bench_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
