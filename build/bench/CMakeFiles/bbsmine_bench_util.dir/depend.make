# Empty dependencies file for bbsmine_bench_util.
# This may be replaced when dependencies are built.
