file(REMOVE_RECURSE
  "libbbsmine_bench_util.a"
)
