# Empty compiler generated dependencies file for fig10_txn_length.
# This may be replaced when dependencies are built.
