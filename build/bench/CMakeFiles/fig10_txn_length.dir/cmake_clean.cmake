file(REMOVE_RECURSE
  "CMakeFiles/fig10_txn_length.dir/fig10_txn_length.cpp.o"
  "CMakeFiles/fig10_txn_length.dir/fig10_txn_length.cpp.o.d"
  "fig10_txn_length"
  "fig10_txn_length.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_txn_length.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
