file(REMOVE_RECURSE
  "CMakeFiles/fig8_transactions.dir/fig8_transactions.cpp.o"
  "CMakeFiles/fig8_transactions.dir/fig8_transactions.cpp.o.d"
  "fig8_transactions"
  "fig8_transactions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_transactions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
