file(REMOVE_RECURSE
  "CMakeFiles/fig7_minsupport.dir/fig7_minsupport.cpp.o"
  "CMakeFiles/fig7_minsupport.dir/fig7_minsupport.cpp.o.d"
  "fig7_minsupport"
  "fig7_minsupport.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_minsupport.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
