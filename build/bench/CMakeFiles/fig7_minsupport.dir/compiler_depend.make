# Empty compiler generated dependencies file for fig7_minsupport.
# This may be replaced when dependencies are built.
