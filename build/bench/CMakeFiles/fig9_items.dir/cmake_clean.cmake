file(REMOVE_RECURSE
  "CMakeFiles/fig9_items.dir/fig9_items.cpp.o"
  "CMakeFiles/fig9_items.dir/fig9_items.cpp.o.d"
  "fig9_items"
  "fig9_items.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_items.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
