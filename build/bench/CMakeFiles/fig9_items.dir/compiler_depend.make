# Empty compiler generated dependencies file for fig9_items.
# This may be replaced when dependencies are built.
