file(REMOVE_RECURSE
  "CMakeFiles/micro_bbs.dir/micro_bbs.cpp.o"
  "CMakeFiles/micro_bbs.dir/micro_bbs.cpp.o.d"
  "micro_bbs"
  "micro_bbs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_bbs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
