# Empty compiler generated dependencies file for micro_bbs.
# This may be replaced when dependencies are built.
