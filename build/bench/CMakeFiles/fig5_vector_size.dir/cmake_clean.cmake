file(REMOVE_RECURSE
  "CMakeFiles/fig5_vector_size.dir/fig5_vector_size.cpp.o"
  "CMakeFiles/fig5_vector_size.dir/fig5_vector_size.cpp.o.d"
  "fig5_vector_size"
  "fig5_vector_size.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_vector_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
