#include "core/constraint_index.h"

#include <gtest/gtest.h>

#include "core/adhoc.h"
#include "core/bbs_index.h"
#include "testing/reference.h"

namespace bbsmine {
namespace {

Transaction Txn(Tid tid, Itemset items) { return Transaction{tid, items}; }

TEST(ConstraintIndexTest, RegisterThenInsertMaintainsSlices) {
  ConstraintIndex constraints;
  ASSERT_TRUE(constraints
                  .Register("even-tid",
                            [](const Transaction& t) { return t.tid % 2 == 0; })
                  .ok());
  ASSERT_TRUE(constraints
                  .Register("long",
                            [](const Transaction& t) {
                              return t.items.size() >= 3;
                            })
                  .ok());

  constraints.OnInsert(Txn(0, {1, 2, 3}));
  constraints.OnInsert(Txn(1, {1}));
  constraints.OnInsert(Txn(2, {4}));
  EXPECT_EQ(constraints.num_transactions(), 3u);

  auto even = constraints.Slice("even-tid");
  ASSERT_TRUE(even.ok());
  EXPECT_TRUE((*even)->Get(0));
  EXPECT_FALSE((*even)->Get(1));
  EXPECT_TRUE((*even)->Get(2));

  auto lng = constraints.Slice("long");
  ASSERT_TRUE(lng.ok());
  EXPECT_EQ((*lng)->Count(), 1u);
}

TEST(ConstraintIndexTest, DuplicateNameRejected) {
  ConstraintIndex constraints;
  auto yes = [](const Transaction&) { return true; };
  ASSERT_TRUE(constraints.Register("a", yes).ok());
  Status dup = constraints.Register("a", yes);
  EXPECT_FALSE(dup.ok());
  EXPECT_EQ(dup.code(), StatusCode::kInvalidArgument);
}

TEST(ConstraintIndexTest, LateRegistrationNeedsBackfill) {
  ConstraintIndex constraints;
  constraints.OnInsert(Txn(0, {1}));
  constraints.OnInsert(Txn(7, {2}));

  // Without backfill: rejected.
  Status missing = constraints.Register(
      "odd", [](const Transaction& t) { return t.tid % 2 == 1; });
  EXPECT_FALSE(missing.ok());

  // With backfill: the slice covers history.
  std::vector<Transaction> history = {Txn(0, {1}), Txn(7, {2})};
  ASSERT_TRUE(constraints
                  .Register("odd",
                            [](const Transaction& t) { return t.tid % 2 == 1; },
                            history)
                  .ok());
  auto slice = constraints.Slice("odd");
  ASSERT_TRUE(slice.ok());
  EXPECT_FALSE((*slice)->Get(0));
  EXPECT_TRUE((*slice)->Get(1));
}

TEST(ConstraintIndexTest, UnknownNameIsNotFound) {
  ConstraintIndex constraints;
  EXPECT_FALSE(constraints.Slice("nope").ok());
  EXPECT_EQ(constraints.Slice("nope").status().code(), StatusCode::kNotFound);
  EXPECT_FALSE(constraints.And({"nope"}).ok());
  EXPECT_FALSE(constraints.Or({"nope"}).ok());
  EXPECT_FALSE(constraints.Not("nope").ok());
}

TEST(ConstraintIndexTest, BooleanComposition) {
  ConstraintIndex constraints;
  ASSERT_TRUE(constraints
                  .Register("even",
                            [](const Transaction& t) { return t.tid % 2 == 0; })
                  .ok());
  ASSERT_TRUE(constraints
                  .Register("small-tid",
                            [](const Transaction& t) { return t.tid < 4; })
                  .ok());
  for (Tid tid = 0; tid < 8; ++tid) constraints.OnInsert(Txn(tid, {1}));

  auto both = constraints.And({"even", "small-tid"});
  ASSERT_TRUE(both.ok());
  EXPECT_EQ(both->SetBits(), (std::vector<uint32_t>{0, 2}));

  auto either = constraints.Or({"even", "small-tid"});
  ASSERT_TRUE(either.ok());
  EXPECT_EQ(either->Count(), 6u);  // {0,1,2,3} U {0,2,4,6}

  auto odd = constraints.Not("even");
  ASSERT_TRUE(odd.ok());
  EXPECT_EQ(odd->SetBits(), (std::vector<uint32_t>{1, 3, 5, 7}));
}

TEST(ConstraintIndexTest, DrivesConstrainedCountsEndToEnd) {
  // The maintained slice must agree with a slice built by scanning.
  TransactionDatabase db = testing::RandomDb(9, 200, 30, 5.0);
  BbsConfig config;
  config.num_bits = 128;
  config.num_hashes = 3;
  auto bbs = BbsIndex::Create(config);
  ASSERT_TRUE(bbs.ok());

  ConstraintIndex constraints;
  ASSERT_TRUE(constraints
                  .Register("div3",
                            [](const Transaction& t) { return t.tid % 3 == 0; })
                  .ok());
  for (size_t t = 0; t < db.size(); ++t) {
    bbs->Insert(db.At(t).items);
    constraints.OnInsert(db.At(t));
  }

  BitVector scanned = MakeConstraintSlice(
      db, [](const Transaction& t) { return t.tid % 3 == 0; });
  auto maintained = constraints.Slice("div3");
  ASSERT_TRUE(maintained.ok());
  EXPECT_EQ(**maintained, scanned);

  AdhocQueryResult via_maintained =
      CountPatternExact(db, *bbs, {1, 2}, *maintained);
  AdhocQueryResult via_scanned = CountPatternExact(db, *bbs, {1, 2}, &scanned);
  EXPECT_EQ(via_maintained.exact, via_scanned.exact);
}

}  // namespace
}  // namespace bbsmine
