#include "core/tidset.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace bbsmine {
namespace {

BitVector RandomVector(size_t bits, double density, uint64_t seed) {
  Rng rng(seed);
  BitVector v(bits);
  for (size_t i = 0; i < bits; ++i) {
    if (rng.Bernoulli(density)) v.Set(i);
  }
  return v;
}

TEST(TidSetTest, AllOfIsDenseAndFull) {
  TidSet all = TidSet::AllOf(100);
  EXPECT_FALSE(all.sparse());
  EXPECT_EQ(all.count(), 100u);
  EXPECT_EQ(all.dense().Count(), 100u);
}

TEST(TidSetTest, FromDenseStaysDenseAboveThreshold) {
  BitVector v(200, true);
  TidSet set = TidSet::FromDense(v, /*sparse_threshold=*/50);
  EXPECT_FALSE(set.sparse());
  EXPECT_EQ(set.count(), 200u);
}

TEST(TidSetTest, FromDenseConvertsBelowThreshold) {
  BitVector v(200);
  v.Set(3);
  v.Set(150);
  TidSet set = TidSet::FromDense(v, 50);
  EXPECT_TRUE(set.sparse());
  EXPECT_EQ(set.count(), 2u);
  EXPECT_EQ(set.tids(), (std::vector<uint32_t>{3, 150}));
}

TEST(TidSetTest, DenseIntersectionMatchesBitVector) {
  BitVector a = RandomVector(500, 0.4, 1);
  BitVector b = RandomVector(500, 0.4, 2);
  TidSet parent = TidSet::FromDense(a, 0);  // stays dense
  TidSet out;
  size_t count = out.AssignIntersection(parent, b, /*sparse_threshold=*/0);
  BitVector expected = a;
  expected.AndWith(b);
  EXPECT_EQ(count, expected.Count());
  EXPECT_FALSE(out.sparse());
  EXPECT_EQ(out.dense(), expected);
}

TEST(TidSetTest, DenseIntersectionConvertsToSparse) {
  BitVector a = RandomVector(500, 0.1, 3);
  BitVector b = RandomVector(500, 0.1, 4);
  TidSet parent = TidSet::FromDense(a, 0);
  TidSet out;
  size_t count = out.AssignIntersection(parent, b, /*sparse_threshold=*/500);
  EXPECT_TRUE(out.sparse());
  BitVector expected = a;
  expected.AndWith(b);
  EXPECT_EQ(count, expected.Count());
  EXPECT_EQ(out.tids(), expected.SetBits());
}

TEST(TidSetTest, SparseIntersectionMatchesDense) {
  BitVector a = RandomVector(500, 0.05, 5);
  BitVector b = RandomVector(500, 0.5, 6);
  TidSet parent = TidSet::FromDense(a, 500);  // sparse
  ASSERT_TRUE(parent.sparse());
  TidSet out;
  size_t count = out.AssignIntersection(parent, b, 500);
  BitVector expected = a;
  expected.AndWith(b);
  EXPECT_EQ(count, expected.Count());
  EXPECT_EQ(out.tids(), expected.SetBits());
}

TEST(TidSetTest, EarlyAbortReturnsBelowMinCount) {
  // Parent has 10 positions, none in `with`: with min_count 5 the loop may
  // abort early, but the returned count must stay below min_count.
  BitVector with(100);
  TidSet parent;
  parent.AssignSparse({1, 2, 3, 4, 5, 6, 7, 8, 9, 10});
  TidSet out;
  size_t count = out.AssignIntersection(parent, with, 100, /*min_count=*/5);
  EXPECT_LT(count, 5u);
}

TEST(TidSetTest, EarlyAbortNeverDropsReachableCounts) {
  // Whenever the true intersection count reaches min_count, the early abort
  // must not fire and the exact count must be returned.
  Rng rng(9);
  for (int trial = 0; trial < 50; ++trial) {
    BitVector a = RandomVector(300, 0.3, 100 + trial);
    BitVector b = RandomVector(300, 0.3, 200 + trial);
    BitVector expected = a;
    expected.AndWith(b);
    size_t true_count = expected.Count();

    TidSet parent = TidSet::FromDense(a, 300);  // sparse
    TidSet out;
    uint64_t min_count = 1 + rng.Uniform(30);
    size_t count = out.AssignIntersection(parent, b, 300, min_count);
    if (true_count >= min_count) {
      EXPECT_EQ(count, true_count);
      EXPECT_EQ(out.tids(), expected.SetBits());
    } else {
      EXPECT_LT(count, min_count);
    }
  }
}

TEST(TidSetTest, AppendPositionsBothRepresentations) {
  BitVector v(128);
  v.Set(0);
  v.Set(64);
  v.Set(127);
  TidSet dense = TidSet::FromDense(v, 0);
  TidSet sparse = TidSet::FromDense(v, 128);
  std::vector<uint32_t> from_dense;
  std::vector<uint32_t> from_sparse;
  dense.AppendPositions(&from_dense);
  sparse.AppendPositions(&from_sparse);
  EXPECT_EQ(from_dense, (std::vector<uint32_t>{0, 64, 127}));
  EXPECT_EQ(from_dense, from_sparse);
}

TEST(TidSetTest, AssignSparseReplacesContents) {
  TidSet set = TidSet::AllOf(50);
  set.AssignSparse({7, 9});
  EXPECT_TRUE(set.sparse());
  EXPECT_EQ(set.count(), 2u);
  EXPECT_EQ(set.tids(), (std::vector<uint32_t>{7, 9}));
}

}  // namespace
}  // namespace bbsmine
