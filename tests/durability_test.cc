// Tests for checkpoint + WAL orchestration: recovery equals the offline
// oracle, every crash window of the checkpoint protocol is absorbed, and
// impossible on-disk states fail with Corruption instead of guessing.

#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "core/segmented_bbs.h"
#include "service/durability.h"
#include "service/snapshot.h"
#include "service/wal.h"
#include "storage/transaction_db.h"
#include "util/status.h"

namespace bbsmine::service {
namespace {

BbsConfig SmallConfig() {
  BbsConfig config;
  config.num_bits = 256;
  config.num_hashes = 3;
  return config;
}

constexpr uint64_t kCapacity = 4;

/// A fresh empty durable directory under the system temp dir.
std::string TempDir(const std::string& name) {
  std::string dir = (std::filesystem::temp_directory_path() /
                     (std::to_string(::getpid()) + "_" + name))
                        .string();
  std::filesystem::remove_all(dir);
  return dir;
}

SegmentedBbs EmptyIndex() {
  return SegmentedBbs::Create(SmallConfig(), kCapacity).value();
}

std::vector<std::vector<Itemset>> SampleBatches() {
  return {
      {{1, 2, 3}},
      {{2, 3}, {4, 5}},
      {{1}, {2}, {3, 4, 5, 6}},
      {{7, 8}},
  };
}

/// The offline oracle: a SegmentedBbs built directly from the batches.
SegmentedBbs Oracle(const std::vector<std::vector<Itemset>>& batches) {
  SegmentedBbs index = EmptyIndex();
  for (const auto& batch : batches) {
    for (const Itemset& items : batch) {
      EXPECT_TRUE(index.Insert(items).ok());
    }
  }
  return index;
}

/// Recovered counts must be bit-identical to the oracle's for every probe.
void ExpectCountParity(const SegmentedBbs& recovered,
                       const SegmentedBbs& oracle) {
  ASSERT_EQ(recovered.num_transactions(), oracle.num_transactions());
  for (ItemId a = 0; a < 10; ++a) {
    Itemset one = {a};
    EXPECT_EQ(recovered.CountItemSet(one), oracle.CountItemSet(one))
        << "item " << a;
    Itemset two = {a, static_cast<ItemId>((a + 2) % 10)};
    Canonicalize(&two);
    EXPECT_EQ(recovered.CountItemSet(two), oracle.CountItemSet(two));
  }
}

TEST(DurabilityTest, FirstStartCreatesWalAndRecoversFromReplayAlone) {
  std::string dir = TempDir("dur_first");
  auto batches = SampleBatches();
  {
    auto mgr = DurabilityManager::Open(DurabilityOptions{dir, WalOptions(), 0},
                                       EmptyIndex(), nullptr);
    ASSERT_TRUE(mgr.ok());
    EXPECT_FALSE((*mgr)->recovery().checkpoint_loaded);
    SegmentedBbs live = (*mgr)->TakeRecoveredIndex();
    for (const auto& batch : batches) {
      ASSERT_TRUE((*mgr)->LogInsert(batch).ok());
      for (const Itemset& items : batch) ASSERT_TRUE(live.Insert(items).ok());
    }
    // No checkpoint, no graceful anything: the manager just goes away, as
    // in a kill -9.
  }
  auto mgr = DurabilityManager::Open(DurabilityOptions{dir, WalOptions(), 0},
                                     EmptyIndex(), nullptr);
  ASSERT_TRUE(mgr.ok());
  const auto& recovery = (*mgr)->recovery();
  EXPECT_FALSE(recovery.checkpoint_loaded);
  EXPECT_EQ(recovery.wal_records_scanned, batches.size());
  EXPECT_EQ(recovery.recovered_records, 7u);
  ExpectCountParity((*mgr)->TakeRecoveredIndex(), Oracle(batches));
}

TEST(DurabilityTest, CheckpointTruncatesWalAndReopenLoadsIt) {
  std::string dir = TempDir("dur_ckpt");
  auto batches = SampleBatches();
  {
    auto opened = DurabilityManager::Open(
        DurabilityOptions{dir, WalOptions(), 0}, EmptyIndex(), nullptr);
    ASSERT_TRUE(opened.ok());
    auto mgr = std::move(*opened);
    auto manager =
        SnapshotManager::FromIndex(mgr->TakeRecoveredIndex()).value();
    for (const auto& batch : batches) {
      ASSERT_TRUE(mgr->LogInsert(batch).ok());
      for (const Itemset& items : batch) {
        ASSERT_TRUE(manager.Insert(items).ok());
      }
    }
    ASSERT_TRUE(mgr->Checkpoint(manager.Acquire(), nullptr).ok());
    EXPECT_EQ(mgr->checkpoints(), 1u);
    EXPECT_EQ(mgr->txns_since_checkpoint(), 0u);
  }
  // The WAL must be back to a bare header covering everything.
  auto base = WriteAheadLog::ReadBaseTxnCount(dir + "/wal");
  ASSERT_TRUE(base.ok());
  EXPECT_EQ(*base, 7u);

  auto mgr = DurabilityManager::Open(DurabilityOptions{dir, WalOptions(), 0},
                                     EmptyIndex(), nullptr);
  ASSERT_TRUE(mgr.ok());
  const auto& recovery = (*mgr)->recovery();
  EXPECT_TRUE(recovery.checkpoint_loaded);
  EXPECT_EQ(recovery.checkpoint_transactions, 7u);
  EXPECT_EQ(recovery.recovered_records, 0u);
  ExpectCountParity((*mgr)->TakeRecoveredIndex(), Oracle(batches));
}

TEST(DurabilityTest, CheckpointPlusWalSuffixMatchesOracle) {
  std::string dir = TempDir("dur_suffix");
  auto batches = SampleBatches();
  {
    auto opened = DurabilityManager::Open(
        DurabilityOptions{dir, WalOptions(), 0}, EmptyIndex(), nullptr);
    ASSERT_TRUE(opened.ok());
    auto mgr = std::move(*opened);
    auto manager =
        SnapshotManager::FromIndex(mgr->TakeRecoveredIndex()).value();
    for (size_t b = 0; b < batches.size(); ++b) {
      ASSERT_TRUE(mgr->LogInsert(batches[b]).ok());
      for (const Itemset& items : batches[b]) {
        ASSERT_TRUE(manager.Insert(items).ok());
      }
      if (b == 1) {
        // Checkpoint mid-stream: recovery must splice checkpoint + suffix.
        ASSERT_TRUE(mgr->Checkpoint(manager.Acquire(), nullptr).ok());
      }
    }
  }
  auto mgr = DurabilityManager::Open(DurabilityOptions{dir, WalOptions(), 0},
                                     EmptyIndex(), nullptr);
  ASSERT_TRUE(mgr.ok());
  const auto& recovery = (*mgr)->recovery();
  EXPECT_TRUE(recovery.checkpoint_loaded);
  EXPECT_EQ(recovery.checkpoint_transactions, 3u);
  EXPECT_EQ(recovery.recovered_records, 4u);
  ExpectCountParity((*mgr)->TakeRecoveredIndex(), Oracle(batches));
}

TEST(DurabilityTest, DatabaseIsRecoveredAlongsideTheIndex) {
  std::string dir = TempDir("dur_db");
  auto batches = SampleBatches();
  {
    TransactionDatabase db;
    auto opened = DurabilityManager::Open(
        DurabilityOptions{dir, WalOptions(), 0}, EmptyIndex(), &db);
    ASSERT_TRUE(opened.ok());
    auto mgr = std::move(*opened);
    auto manager =
        SnapshotManager::FromIndex(mgr->TakeRecoveredIndex()).value();
    for (size_t b = 0; b < batches.size(); ++b) {
      ASSERT_TRUE(mgr->LogInsert(batches[b]).ok());
      for (const Itemset& items : batches[b]) {
        ASSERT_TRUE(manager.Insert(items).ok());
        db.Append(items);
      }
      if (b == 2) ASSERT_TRUE(mgr->Checkpoint(manager.Acquire(), &db).ok());
    }
  }
  TransactionDatabase db;
  auto mgr = DurabilityManager::Open(DurabilityOptions{dir, WalOptions(), 0},
                                     EmptyIndex(), &db);
  ASSERT_TRUE(mgr.ok());
  EXPECT_EQ(db.size(), 7u);
  // Every transaction restored, in insert order.
  size_t t = 0;
  for (const auto& batch : batches) {
    for (const Itemset& items : batch) {
      EXPECT_EQ(db.At(t++).items, items);
    }
  }
}

// -- Crash windows of the checkpoint protocol -------------------------------

TEST(DurabilityTest, CrashBetweenManifestRenameAndWalTruncateIsAbsorbed) {
  std::string dir = TempDir("dur_window");
  auto batches = SampleBatches();
  {
    auto opened = DurabilityManager::Open(
        DurabilityOptions{dir, WalOptions(), 0}, EmptyIndex(), nullptr);
    ASSERT_TRUE(opened.ok());
    auto mgr = std::move(*opened);
    auto manager =
        SnapshotManager::FromIndex(mgr->TakeRecoveredIndex()).value();
    for (const auto& batch : batches) {
      ASSERT_TRUE(mgr->LogInsert(batch).ok());
      for (const Itemset& items : batch) {
        ASSERT_TRUE(manager.Insert(items).ok());
      }
    }
    ASSERT_TRUE(mgr->Checkpoint(manager.Acquire(), nullptr).ok());
  }
  // Simulate the crash window: the checkpoint landed (manifest renamed)
  // but the WAL truncation never happened — rebuild the full pre-truncate
  // WAL covering everything from base 0.
  {
    auto wal = WriteAheadLog::Create(dir + "/wal", 0, WalOptions());
    ASSERT_TRUE(wal.ok());
    for (const auto& batch : batches) ASSERT_TRUE(wal->Append(batch).ok());
  }
  auto mgr = DurabilityManager::Open(DurabilityOptions{dir, WalOptions(), 0},
                                     EmptyIndex(), nullptr);
  ASSERT_TRUE(mgr.ok());
  const auto& recovery = (*mgr)->recovery();
  EXPECT_TRUE(recovery.checkpoint_loaded);
  // Every WAL record was scanned but none re-applied: the checkpoint
  // already covers them.
  EXPECT_EQ(recovery.wal_records_scanned, batches.size());
  EXPECT_EQ(recovery.recovered_records, 0u);
  ExpectCountParity((*mgr)->TakeRecoveredIndex(), Oracle(batches));
}

TEST(DurabilityTest, WalBaseAheadOfCheckpointIsCorruption) {
  std::string dir = TempDir("dur_stale");
  ASSERT_TRUE(std::filesystem::create_directories(dir));
  // A WAL claiming 10 transactions already durable, but no checkpoint at
  // all: someone deleted the checkpoint files. Refuse rather than silently
  // dropping 10 acknowledged transactions.
  {
    auto wal = WriteAheadLog::Create(dir + "/wal", 10, WalOptions());
    ASSERT_TRUE(wal.ok());
  }
  auto mgr = DurabilityManager::Open(DurabilityOptions{dir, WalOptions(), 0},
                                     EmptyIndex(), nullptr);
  EXPECT_EQ(mgr.status().code(), StatusCode::kCorruption);
}

TEST(DurabilityTest, CheckpointBoundaryInsideRecordIsCorruption) {
  std::string dir = TempDir("dur_straddle");
  ASSERT_TRUE(std::filesystem::create_directories(dir));
  // Checkpoint covering 2 transactions, WAL based at 0 whose first record
  // holds 3: the protocol always truncates the WAL on record boundaries,
  // so this state is impossible and must not be "repaired".
  {
    SegmentedBbs index = EmptyIndex();
    ASSERT_TRUE(index.Insert({1}).ok());
    ASSERT_TRUE(index.Insert({2}).ok());
    ASSERT_TRUE(index.Save(dir + "/checkpoint").ok());
    auto wal = WriteAheadLog::Create(dir + "/wal", 0, WalOptions());
    ASSERT_TRUE(wal.ok());
    ASSERT_TRUE(wal->Append({{1}, {2}, {3}}).ok());
  }
  auto mgr = DurabilityManager::Open(DurabilityOptions{dir, WalOptions(), 0},
                                     EmptyIndex(), nullptr);
  EXPECT_EQ(mgr.status().code(), StatusCode::kCorruption);
}

TEST(DurabilityTest, WalShortOfCheckpointIsCorruption) {
  std::string dir = TempDir("dur_short");
  ASSERT_TRUE(std::filesystem::create_directories(dir));
  // Checkpoint covers 4 transactions but the whole WAL (base 0) only
  // reaches 2: acknowledged records are missing from the log.
  {
    SegmentedBbs index = EmptyIndex();
    for (ItemId i = 1; i <= 4; ++i) {
      ASSERT_TRUE(index.Insert({i}).ok());
    }
    ASSERT_TRUE(index.Save(dir + "/checkpoint").ok());
    auto wal = WriteAheadLog::Create(dir + "/wal", 0, WalOptions());
    ASSERT_TRUE(wal.ok());
    ASSERT_TRUE(wal->Append({{1}, {2}}).ok());
  }
  auto mgr = DurabilityManager::Open(DurabilityOptions{dir, WalOptions(), 0},
                                     EmptyIndex(), nullptr);
  EXPECT_EQ(mgr.status().code(), StatusCode::kCorruption);
}

TEST(DurabilityTest, TornWalTailIsReportedAndRecoverySucceeds) {
  std::string dir = TempDir("dur_torn");
  auto batches = SampleBatches();
  {
    auto mgr = DurabilityManager::Open(DurabilityOptions{dir, WalOptions(), 0},
                                       EmptyIndex(), nullptr);
    ASSERT_TRUE(mgr.ok());
    for (const auto& batch : batches) {
      ASSERT_TRUE((*mgr)->LogInsert(batch).ok());
    }
  }
  // A torn frame header after the last complete record.
  {
    std::ofstream out(dir + "/wal",
                      std::ios::binary | std::ios::app);
    out << "\x11\x22\x33";
  }
  auto mgr = DurabilityManager::Open(DurabilityOptions{dir, WalOptions(), 0},
                                     EmptyIndex(), nullptr);
  ASSERT_TRUE(mgr.ok());
  const auto& recovery = (*mgr)->recovery();
  EXPECT_EQ(recovery.torn_tail_bytes, 3u);
  EXPECT_TRUE(recovery.wal_tail_truncated);
  ExpectCountParity((*mgr)->TakeRecoveredIndex(), Oracle(batches));
}

TEST(DurabilityTest, AutoCheckpointThresholdIsHonored) {
  std::string dir = TempDir("dur_every");
  auto opened = DurabilityManager::Open(
      DurabilityOptions{dir, WalOptions(), /*checkpoint_every=*/3},
      EmptyIndex(), nullptr);
  ASSERT_TRUE(opened.ok());
  auto mgr = std::move(*opened);
  EXPECT_FALSE(mgr->ShouldCheckpoint());
  ASSERT_TRUE(mgr->LogInsert({{1}, {2}}).ok());
  EXPECT_FALSE(mgr->ShouldCheckpoint());
  ASSERT_TRUE(mgr->LogInsert({{3}}).ok());
  EXPECT_TRUE(mgr->ShouldCheckpoint());
}

}  // namespace
}  // namespace bbsmine::service
