// Randomized property sweep over the DualFilter certification semantics
// (paper Figure 3 / Lemma 5 / Corollary 1), checked against ground truth on
// many (database, vector-width, hash-count) combinations:
//
//   P1  flag-1 candidates carry the *exact* support;
//   P2  flag-2 candidates are truly frequent (their count may overestimate);
//   P3  every truly frequent itemset appears among the candidates;
//   P4  SingleFilter's candidate set contains DualFilter's (DualFilter only
//       removes subtrees of exactly-known-infrequent singletons);
//   P5  certified + uncertain counts agree with the stats counters.

#include <gtest/gtest.h>

#include <set>
#include <tuple>

#include "core/bbs_index.h"
#include "core/dual_filter.h"
#include "core/filter_engine.h"
#include "core/single_filter.h"
#include "testing/reference.h"

namespace bbsmine {
namespace {

using Param = std::tuple<uint64_t /*seed*/, uint32_t /*bits*/, uint32_t /*k*/>;

class CertificationPropertyTest : public ::testing::TestWithParam<Param> {
 protected:
  void SetUp() override {
    auto [seed, bits, hashes] = GetParam();
    db_ = testing::RandomDb(seed, 350, 45, 6.0);
    BbsConfig config;
    config.num_bits = bits;
    config.num_hashes = hashes;
    auto index = BbsIndex::Create(config);
    ASSERT_TRUE(index.ok());
    index->InsertAll(db_);
    bbs_.emplace(std::move(index).value());
    tau_ = 9;

    universe_.resize(db_.item_universe());
    for (ItemId i = 0; i < db_.item_universe(); ++i) universe_[i] = i;
  }

  TransactionDatabase db_;
  std::optional<BbsIndex> bbs_;
  uint64_t tau_ = 0;
  Itemset universe_;
};

TEST_P(CertificationPropertyTest, FlagSemanticsAndCoverage) {
  FilterEngine engine(*bbs_, tau_);
  MineStats stats;
  engine.Prepare(universe_, &stats);
  DualFilterOutput out = RunDualFilter(engine, &stats);

  // P1 + P2.
  for (const DualCandidate& c : out.certain) {
    uint64_t actual = testing::BruteForceSupport(db_, c.items);
    ASSERT_GE(actual, tau_) << "certified but infrequent: "
                            << ItemsetToString(c.items) << " flag " << c.flag;
    if (c.flag == 1) {
      ASSERT_EQ(c.count, actual) << ItemsetToString(c.items);
    } else {
      ASSERT_EQ(c.flag, 2);
      ASSERT_GE(c.count, actual) << ItemsetToString(c.items);
    }
  }

  // P3.
  std::set<Itemset> candidate_sets;
  for (const DualCandidate& c : out.certain) candidate_sets.insert(c.items);
  for (const DualCandidate& c : out.uncertain) candidate_sets.insert(c.items);
  for (const Pattern& truth : testing::BruteForceMine(db_, tau_)) {
    ASSERT_TRUE(candidate_sets.contains(truth.items))
        << ItemsetToString(truth.items) << " missing from DualFilter output";
  }

  // P5.
  EXPECT_EQ(stats.certified, out.certain.size());
  EXPECT_EQ(stats.candidates, out.certain.size() + out.uncertain.size());
}

TEST_P(CertificationPropertyTest, DualCandidatesSubsetOfSingleCandidates) {
  FilterEngine engine(*bbs_, tau_);
  MineStats single_stats;
  engine.Prepare(universe_, &single_stats);
  std::vector<Candidate> single = RunSingleFilter(engine, &single_stats);

  MineStats dual_stats;
  DualFilterOutput dual = RunDualFilter(engine, &dual_stats);

  std::set<Itemset> single_sets;
  for (const Candidate& c : single) single_sets.insert(c.items);
  for (const DualCandidate& c : dual.certain) {
    ASSERT_TRUE(single_sets.contains(c.items)) << ItemsetToString(c.items);
  }
  for (const DualCandidate& c : dual.uncertain) {
    ASSERT_TRUE(single_sets.contains(c.items)) << ItemsetToString(c.items);
  }
  EXPECT_LE(dual_stats.candidates, single_stats.candidates);

  // Every SingleFilter candidate missing from DualFilter's output contains
  // at least one exactly-known-infrequent item (the flag -1 prune).
  std::set<Itemset> dual_sets;
  for (const DualCandidate& c : dual.certain) dual_sets.insert(c.items);
  for (const DualCandidate& c : dual.uncertain) dual_sets.insert(c.items);
  for (const Candidate& c : single) {
    if (dual_sets.contains(c.items)) continue;
    bool has_infrequent_item = false;
    for (ItemId item : c.items) {
      if (bbs_->ExactItemCount(item) < tau_) {
        has_infrequent_item = true;
        break;
      }
    }
    ASSERT_TRUE(has_infrequent_item)
        << ItemsetToString(c.items)
        << " dropped by DualFilter without an exactly-infrequent item";
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, CertificationPropertyTest,
    ::testing::Combine(::testing::Values(1u, 2u, 3u, 4u),
                       ::testing::Values(48u, 160u, 640u),
                       ::testing::Values(2u, 4u)));

}  // namespace
}  // namespace bbsmine
