#include "storage/fimi_io.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <sstream>

#include "testing/reference.h"

namespace bbsmine {
namespace {

std::string TempPath(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

TEST(FimiIoTest, ParsesBasicFile) {
  std::istringstream in("1 2 3\n4 5\n\n# a comment\n6\n");
  auto db = ReadFimiStream(in);
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  ASSERT_EQ(db->size(), 3u);
  EXPECT_EQ(db->At(0).items, (Itemset{1, 2, 3}));
  EXPECT_EQ(db->At(1).items, (Itemset{4, 5}));
  EXPECT_EQ(db->At(2).items, (Itemset{6}));
}

TEST(FimiIoTest, HandlesExtraWhitespaceAndCr) {
  std::istringstream in("  1\t2  3 \r\n 7 \r\n");
  auto db = ReadFimiStream(in);
  ASSERT_TRUE(db.ok());
  ASSERT_EQ(db->size(), 2u);
  EXPECT_EQ(db->At(0).items, (Itemset{1, 2, 3}));
  EXPECT_EQ(db->At(1).items, (Itemset{7}));
}

TEST(FimiIoTest, CanonicalizesItems) {
  std::istringstream in("5 3 5 1\n");
  auto db = ReadFimiStream(in);
  ASSERT_TRUE(db.ok());
  EXPECT_EQ(db->At(0).items, (Itemset{1, 3, 5}));
}

TEST(FimiIoTest, RejectsNonNumericTokens) {
  std::istringstream in("1 2\n3 oops 4\n");
  auto db = ReadFimiStream(in, "test-input");
  ASSERT_FALSE(db.ok());
  EXPECT_EQ(db.status().code(), StatusCode::kCorruption);
  EXPECT_NE(db.status().message().find("line 2"), std::string::npos);
}

TEST(FimiIoTest, RejectsOutOfRangeItem) {
  std::istringstream in("99999999999999\n");
  auto db = ReadFimiStream(in);
  ASSERT_FALSE(db.ok());
  EXPECT_EQ(db.status().code(), StatusCode::kCorruption);
}

TEST(FimiIoTest, EmptyInputYieldsEmptyDb) {
  std::istringstream in("");
  auto db = ReadFimiStream(in);
  ASSERT_TRUE(db.ok());
  EXPECT_EQ(db->size(), 0u);
}

TEST(FimiIoTest, RoundTripThroughFile) {
  TransactionDatabase original = testing::RandomDb(21, 120, 50, 6.0);
  std::string path = TempPath("bbsmine_fimi_roundtrip.dat");
  ASSERT_TRUE(WriteFimi(original, path).ok());
  auto loaded = ReadFimi(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_EQ(loaded->size(), original.size());
  for (size_t t = 0; t < original.size(); ++t) {
    EXPECT_EQ(loaded->At(t).items, original.At(t).items) << "txn " << t;
  }
  std::remove(path.c_str());
}

TEST(FimiIoTest, ReadMissingFileFails) {
  auto db = ReadFimi(TempPath("bbsmine_fimi_does_not_exist.dat"));
  ASSERT_FALSE(db.ok());
  EXPECT_EQ(db.status().code(), StatusCode::kIoError);
}

TEST(FimiIoTest, WriteStreamFormat) {
  TransactionDatabase db = testing::MakeDb({{1, 2}, {3}});
  std::ostringstream out;
  ASSERT_TRUE(WriteFimiStream(db, out).ok());
  EXPECT_EQ(out.str(), "1 2\n3\n");
}

}  // namespace
}  // namespace bbsmine
