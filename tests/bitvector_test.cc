#include "util/bitvector.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace bbsmine {
namespace {

TEST(BitVectorTest, DefaultIsEmpty) {
  BitVector v;
  EXPECT_EQ(v.size(), 0u);
  EXPECT_TRUE(v.empty());
  EXPECT_EQ(v.Count(), 0u);
  EXPECT_TRUE(v.None());
}

TEST(BitVectorTest, SizedConstructionZeroed) {
  BitVector v(130);
  EXPECT_EQ(v.size(), 130u);
  EXPECT_EQ(v.num_words(), 3u);
  for (size_t i = 0; i < 130; ++i) EXPECT_FALSE(v.Get(i)) << i;
}

TEST(BitVectorTest, SizedConstructionAllOnes) {
  BitVector v(70, true);
  EXPECT_EQ(v.Count(), 70u);
  for (size_t i = 0; i < 70; ++i) EXPECT_TRUE(v.Get(i)) << i;
  // Tail bits beyond the size must be masked off.
  EXPECT_EQ(v.words()[1] >> (70 - 64), 0u);
}

TEST(BitVectorTest, SetAndGet) {
  BitVector v(100);
  v.Set(0);
  v.Set(63);
  v.Set(64);
  v.Set(99);
  EXPECT_TRUE(v.Get(0));
  EXPECT_TRUE(v.Get(63));
  EXPECT_TRUE(v.Get(64));
  EXPECT_TRUE(v.Get(99));
  EXPECT_FALSE(v.Get(1));
  EXPECT_EQ(v.Count(), 4u);

  v.Set(63, false);
  EXPECT_FALSE(v.Get(63));
  EXPECT_EQ(v.Count(), 3u);
}

TEST(BitVectorTest, PushBackGrowsAcrossWords) {
  BitVector v;
  for (size_t i = 0; i < 200; ++i) v.PushBack(i % 3 == 0);
  EXPECT_EQ(v.size(), 200u);
  for (size_t i = 0; i < 200; ++i) EXPECT_EQ(v.Get(i), i % 3 == 0) << i;
}

TEST(BitVectorTest, ResizeGrowZeroFills) {
  BitVector v(10, true);
  v.Resize(80);
  EXPECT_EQ(v.size(), 80u);
  EXPECT_EQ(v.Count(), 10u);
  for (size_t i = 10; i < 80; ++i) EXPECT_FALSE(v.Get(i));
}

TEST(BitVectorTest, ResizeShrinkMasksTail) {
  BitVector v(80, true);
  v.Resize(10);
  EXPECT_EQ(v.size(), 10u);
  EXPECT_EQ(v.Count(), 10u);
  v.Resize(80);
  EXPECT_EQ(v.Count(), 10u) << "bits beyond the old size must not reappear";
}

TEST(BitVectorTest, ClearAndSetAll) {
  BitVector v(75);
  v.SetAll();
  EXPECT_EQ(v.Count(), 75u);
  v.Clear();
  EXPECT_EQ(v.Count(), 0u);
  EXPECT_EQ(v.size(), 75u);
}

TEST(BitVectorTest, CountPrefix) {
  BitVector v(130);
  v.Set(0);
  v.Set(64);
  v.Set(129);
  EXPECT_EQ(v.CountPrefix(0), 0u);
  EXPECT_EQ(v.CountPrefix(1), 1u);
  EXPECT_EQ(v.CountPrefix(64), 1u);
  EXPECT_EQ(v.CountPrefix(65), 2u);
  EXPECT_EQ(v.CountPrefix(130), 3u);
}

TEST(BitVectorTest, AndWith) {
  BitVector a(100);
  BitVector b(100);
  a.Set(1);
  a.Set(50);
  a.Set(99);
  b.Set(50);
  b.Set(99);
  b.Set(3);
  a.AndWith(b);
  EXPECT_EQ(a.Count(), 2u);
  EXPECT_TRUE(a.Get(50));
  EXPECT_TRUE(a.Get(99));
}

TEST(BitVectorTest, AndWithCountMatchesSeparateOps) {
  Rng rng(1);
  BitVector a(500);
  BitVector b(500);
  for (size_t i = 0; i < 500; ++i) {
    if (rng.Bernoulli(0.4)) a.Set(i);
    if (rng.Bernoulli(0.4)) b.Set(i);
  }
  BitVector expected = a;
  expected.AndWith(b);
  size_t count = a.AndWithCount(b);
  EXPECT_EQ(a, expected);
  EXPECT_EQ(count, expected.Count());
}

TEST(BitVectorTest, OrWith) {
  BitVector a(100);
  BitVector b(100);
  a.Set(1);
  b.Set(70);
  a.OrWith(b);
  EXPECT_TRUE(a.Get(1));
  EXPECT_TRUE(a.Get(70));
  EXPECT_EQ(a.Count(), 2u);
}

TEST(BitVectorTest, AndNotWith) {
  BitVector a(100, true);
  BitVector b(100);
  b.Set(5);
  b.Set(64);
  a.AndNotWith(b);
  EXPECT_EQ(a.Count(), 98u);
  EXPECT_FALSE(a.Get(5));
  EXPECT_FALSE(a.Get(64));
}

TEST(BitVectorTest, FlipAllKeepsTailZero) {
  BitVector v(70);
  v.Set(0);
  v.FlipAll();
  EXPECT_FALSE(v.Get(0));
  EXPECT_EQ(v.Count(), 69u);
  v.FlipAll();
  EXPECT_EQ(v.Count(), 1u);
  EXPECT_TRUE(v.Get(0));
}

TEST(BitVectorTest, Intersects) {
  BitVector a(100);
  BitVector b(100);
  a.Set(42);
  b.Set(43);
  EXPECT_FALSE(a.Intersects(b));
  b.Set(42);
  EXPECT_TRUE(a.Intersects(b));
}

TEST(BitVectorTest, IsSubsetOf) {
  BitVector a(100);
  BitVector b(100);
  a.Set(10);
  b.Set(10);
  b.Set(20);
  EXPECT_TRUE(a.IsSubsetOf(b));
  EXPECT_FALSE(b.IsSubsetOf(a));
  a.Set(30);
  EXPECT_FALSE(a.IsSubsetOf(b));
}

TEST(BitVectorTest, FindNextWalksSetBits) {
  BitVector v(200);
  v.Set(3);
  v.Set(64);
  v.Set(199);
  EXPECT_EQ(v.FindNext(0), 3u);
  EXPECT_EQ(v.FindNext(3), 3u);
  EXPECT_EQ(v.FindNext(4), 64u);
  EXPECT_EQ(v.FindNext(65), 199u);
  EXPECT_EQ(v.FindNext(200), BitVector::npos);

  BitVector empty(100);
  EXPECT_EQ(empty.FindNext(0), BitVector::npos);
}

TEST(BitVectorTest, SetBitsListsAllIndices) {
  BitVector v(150);
  std::vector<uint32_t> expected = {0, 1, 63, 64, 65, 127, 128, 149};
  for (uint32_t i : expected) v.Set(i);
  EXPECT_EQ(v.SetBits(), expected);
}

TEST(BitVectorTest, EqualityIncludesSize) {
  BitVector a(10);
  BitVector b(11);
  EXPECT_FALSE(a == b);
  BitVector c(10);
  EXPECT_TRUE(a == c);
  c.Set(2);
  EXPECT_FALSE(a == c);
}

// Property: FindNext enumeration matches SetBits on random vectors.
class BitVectorRandomTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(BitVectorRandomTest, FindNextMatchesSetBits) {
  Rng rng(GetParam());
  size_t size = 1 + rng.Uniform(700);
  BitVector v(size);
  for (size_t i = 0; i < size; ++i) {
    if (rng.Bernoulli(0.3)) v.Set(i);
  }
  std::vector<uint32_t> via_find;
  for (size_t p = v.FindNext(0); p != BitVector::npos;
       p = v.FindNext(p + 1)) {
    via_find.push_back(static_cast<uint32_t>(p));
  }
  EXPECT_EQ(via_find, v.SetBits());
  EXPECT_EQ(via_find.size(), v.Count());
}

TEST_P(BitVectorRandomTest, DeMorgan) {
  Rng rng(GetParam() * 977 + 1);
  size_t size = 1 + rng.Uniform(300);
  BitVector a(size);
  BitVector b(size);
  for (size_t i = 0; i < size; ++i) {
    if (rng.Bernoulli(0.5)) a.Set(i);
    if (rng.Bernoulli(0.5)) b.Set(i);
  }
  // ~(a | b) == ~a & ~b
  BitVector lhs = a;
  lhs.OrWith(b);
  lhs.FlipAll();
  BitVector rhs = a;
  rhs.FlipAll();
  BitVector not_b = b;
  not_b.FlipAll();
  rhs.AndWith(not_b);
  EXPECT_EQ(lhs, rhs);
}

INSTANTIATE_TEST_SUITE_P(Seeds, BitVectorRandomTest,
                         ::testing::Range<uint64_t>(0, 20));

}  // namespace
}  // namespace bbsmine
