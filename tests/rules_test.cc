#include "core/rules.h"

#include <gtest/gtest.h>

#include "baseline/fp_tree.h"
#include "testing/reference.h"

namespace bbsmine {
namespace {

MiningResult MineExact(const TransactionDatabase& db, double min_support) {
  FpGrowthConfig config;
  config.min_support = min_support;
  MiningResult result = MineFpGrowth(db, config);
  result.SortPatterns();
  return result;
}

const AssociationRule* FindRule(const std::vector<AssociationRule>& rules,
                                const Itemset& antecedent,
                                const Itemset& consequent) {
  for (const AssociationRule& r : rules) {
    if (r.antecedent == antecedent && r.consequent == consequent) return &r;
  }
  return nullptr;
}

TEST(RulesTest, BasicConfidenceAndLift) {
  // {1} appears 4x, {1,2} 3x, {2} 3x over 5 transactions.
  TransactionDatabase db = testing::MakeDb({
      {1, 2}, {1, 2}, {1, 2}, {1}, {3},
  });
  MiningResult mined = MineExact(db, 0.2);  // tau = 1
  RuleConfig config;
  config.min_confidence = 0.7;
  std::vector<AssociationRule> rules = GenerateRules(mined, db.size(), config);

  // 1 => 2: confidence 3/4 = 0.75, lift 0.75 / (3/5) = 1.25.
  const AssociationRule* r = FindRule(rules, {1}, {2});
  ASSERT_NE(r, nullptr);
  EXPECT_DOUBLE_EQ(r->confidence, 0.75);
  EXPECT_NEAR(r->lift, 1.25, 1e-12);
  EXPECT_EQ(r->support, 3u);

  // 2 => 1: confidence 3/3 = 1.0.
  r = FindRule(rules, {2}, {1});
  ASSERT_NE(r, nullptr);
  EXPECT_DOUBLE_EQ(r->confidence, 1.0);
}

TEST(RulesTest, ConfidenceThresholdFilters) {
  TransactionDatabase db = testing::MakeDb({
      {1, 2}, {1, 2}, {1}, {1}, {1},
  });
  MiningResult mined = MineExact(db, 0.2);
  RuleConfig strict;
  strict.min_confidence = 0.9;
  // 1 => 2 has confidence 2/5 = 0.4: must be filtered.
  std::vector<AssociationRule> rules = GenerateRules(mined, db.size(), strict);
  EXPECT_EQ(FindRule(rules, {1}, {2}), nullptr);
  // 2 => 1 has confidence 1.0: must survive.
  EXPECT_NE(FindRule(rules, {2}, {1}), nullptr);
}

TEST(RulesTest, MultiItemConsequents) {
  // {1,2,3} in every transaction: all rules have confidence 1, including
  // the 2-item consequents 1 => {2,3}.
  TransactionDatabase db = testing::MakeDb({
      {1, 2, 3}, {1, 2, 3}, {1, 2, 3},
  });
  MiningResult mined = MineExact(db, 0.5);
  RuleConfig config;
  config.min_confidence = 0.99;
  std::vector<AssociationRule> rules = GenerateRules(mined, db.size(), config);
  EXPECT_NE(FindRule(rules, {1}, {2, 3}), nullptr);
  EXPECT_NE(FindRule(rules, {2, 3}, {1}), nullptr);
  // From itemset {1,2,3}: 6 rules; from {1,2},{1,3},{2,3}: 2 each.
  EXPECT_EQ(rules.size(), 12u);
}

TEST(RulesTest, RulePartsAreDisjointAndNonEmpty) {
  TransactionDatabase db = testing::RandomDb(3, 300, 25, 6.0);
  MiningResult mined = MineExact(db, 0.03);
  RuleConfig config;
  config.min_confidence = 0.3;
  for (const AssociationRule& r : GenerateRules(mined, db.size(), config)) {
    EXPECT_FALSE(r.antecedent.empty());
    EXPECT_FALSE(r.consequent.empty());
    Itemset overlap;
    std::set_intersection(r.antecedent.begin(), r.antecedent.end(),
                          r.consequent.begin(), r.consequent.end(),
                          std::back_inserter(overlap));
    EXPECT_TRUE(overlap.empty());
    EXPECT_GE(r.confidence, 0.3);
    EXPECT_LE(r.confidence, 1.0 + 1e-12);
    // confidence = support(union) / support(antecedent), verified exactly.
    uint64_t ant = testing::BruteForceSupport(db, r.antecedent);
    uint64_t both = testing::BruteForceSupport(
        db, UnionOf(r.antecedent, r.consequent));
    EXPECT_EQ(r.support, both);
    EXPECT_DOUBLE_EQ(r.confidence, static_cast<double>(both) /
                                       static_cast<double>(ant));
  }
}

TEST(RulesTest, SortedByConfidenceAndCapped) {
  TransactionDatabase db = testing::RandomDb(7, 300, 25, 6.0);
  MiningResult mined = MineExact(db, 0.03);
  RuleConfig config;
  config.min_confidence = 0.2;
  std::vector<AssociationRule> all = GenerateRules(mined, db.size(), config);
  for (size_t i = 1; i < all.size(); ++i) {
    EXPECT_GE(all[i - 1].confidence, all[i].confidence);
  }
  if (all.size() > 3) {
    config.max_rules = 3;
    std::vector<AssociationRule> capped =
        GenerateRules(mined, db.size(), config);
    ASSERT_EQ(capped.size(), 3u);
    for (size_t i = 0; i < 3; ++i) EXPECT_TRUE(capped[i] == all[i]);
  }
}

TEST(RulesTest, EmptyInputs) {
  MiningResult empty;
  EXPECT_TRUE(GenerateRules(empty, 100, RuleConfig{}).empty());

  // Only singletons: no rules possible.
  TransactionDatabase db = testing::MakeDb({{1}, {2}});
  MiningResult mined = MineExact(db, 0.4);
  EXPECT_TRUE(GenerateRules(mined, db.size(), RuleConfig{}).empty());
}

}  // namespace
}  // namespace bbsmine
