#include "core/approximate.h"

#include <gtest/gtest.h>

#include <set>

#include "testing/reference.h"

namespace bbsmine {
namespace {

BbsIndex MakeBbs(const TransactionDatabase& db, uint32_t bits,
                 uint32_t hashes) {
  BbsConfig config;
  config.num_bits = bits;
  config.num_hashes = hashes;
  auto index = BbsIndex::Create(config);
  EXPECT_TRUE(index.ok());
  index->InsertAll(db);
  return std::move(index).value();
}

Itemset UniverseOf(const TransactionDatabase& db) {
  Itemset universe(db.item_universe());
  for (ItemId i = 0; i < db.item_universe(); ++i) universe[i] = i;
  return universe;
}

TEST(PoissonCdfTest, KnownValues) {
  // P[Poisson(0) <= k] = 1 for all k.
  EXPECT_DOUBLE_EQ(PoissonCdf(0.0, 0), 1.0);
  // P[Poisson(1) <= 0] = e^-1.
  EXPECT_NEAR(PoissonCdf(1.0, 0), std::exp(-1.0), 1e-12);
  // P[Poisson(2) <= 2] = e^-2 (1 + 2 + 2) = 5 e^-2.
  EXPECT_NEAR(PoissonCdf(2.0, 2), 5.0 * std::exp(-2.0), 1e-12);
}

TEST(PoissonCdfTest, MonotoneInK) {
  double prev = 0;
  for (uint64_t k = 0; k < 30; ++k) {
    double cdf = PoissonCdf(8.0, k);
    EXPECT_GE(cdf, prev);
    EXPECT_LE(cdf, 1.0 + 1e-12);
    prev = cdf;
  }
  EXPECT_NEAR(PoissonCdf(8.0, 29), 1.0, 1e-6);
}

TEST(PoissonCdfTest, LargeLambdaNormalApproximation) {
  // Median of Poisson(1000) is ~1000: CDF there should be ~0.5.
  EXPECT_NEAR(PoissonCdf(1000.0, 1000), 0.5, 0.02);
  EXPECT_NEAR(PoissonCdf(1000.0, 1200), 1.0, 1e-6);
  EXPECT_NEAR(PoissonCdf(1000.0, 800), 0.0, 1e-6);
}

TEST(ApproximateMineTest, RecallIsOne) {
  // Every truly frequent pattern must appear (Lemma 4: estimates never
  // underestimate), even with a narrow, collision-heavy vector.
  TransactionDatabase db = testing::RandomDb(3, 400, 40, 6.0);
  BbsIndex bbs = MakeBbs(db, 64, 2);
  ApproxMineConfig config;
  config.min_support = 0.02;
  std::vector<ApproxPattern> approx =
      MineApproximate(bbs, config, UniverseOf(db));

  std::set<Itemset> found;
  for (const ApproxPattern& p : approx) found.insert(p.items);
  uint64_t tau = AbsoluteThreshold(config.min_support, db.size());
  for (const Pattern& truth : testing::BruteForceMine(db, tau)) {
    EXPECT_TRUE(found.contains(truth.items))
        << ItemsetToString(truth.items) << " missing";
  }
}

TEST(ApproximateMineTest, CertifiedPatternsAreTrulyFrequent) {
  TransactionDatabase db = testing::RandomDb(7, 400, 40, 6.0);
  BbsIndex bbs = MakeBbs(db, 256, 3);
  ApproxMineConfig config;
  config.min_support = 0.02;
  uint64_t tau = AbsoluteThreshold(config.min_support, db.size());
  for (const ApproxPattern& p :
       MineApproximate(bbs, config, UniverseOf(db))) {
    EXPECT_GE(p.confidence, 0.0);
    EXPECT_LE(p.confidence, 1.0);
    if (p.certified) {
      EXPECT_DOUBLE_EQ(p.confidence, 1.0);
      EXPECT_GE(testing::BruteForceSupport(db, p.items), tau)
          << ItemsetToString(p.items);
    }
    EXPECT_GE(p.est, tau);
  }
}

TEST(ApproximateMineTest, ConfidenceSeparatesTrueFromFalse) {
  // On a narrow vector, the mean confidence of true positives should
  // exceed the mean confidence of false positives.
  TransactionDatabase db = testing::RandomDb(11, 600, 50, 6.0);
  BbsIndex bbs = MakeBbs(db, 48, 2);
  ApproxMineConfig config;
  config.min_support = 0.015;
  uint64_t tau = AbsoluteThreshold(config.min_support, db.size());

  double true_sum = 0;
  double false_sum = 0;
  size_t true_n = 0;
  size_t false_n = 0;
  for (const ApproxPattern& p :
       MineApproximate(bbs, config, UniverseOf(db))) {
    if (testing::BruteForceSupport(db, p.items) >= tau) {
      true_sum += p.confidence;
      ++true_n;
    } else {
      false_sum += p.confidence;
      ++false_n;
    }
  }
  ASSERT_GT(true_n, 0u);
  if (false_n > 0) {
    EXPECT_GT(true_sum / static_cast<double>(true_n),
              false_sum / static_cast<double>(false_n));
  }
}

TEST(ApproximateMineTest, MinConfidenceFiltersOutput) {
  TransactionDatabase db = testing::RandomDb(13, 500, 50, 6.0);
  BbsIndex bbs = MakeBbs(db, 48, 2);
  ApproxMineConfig loose;
  loose.min_support = 0.015;
  loose.min_confidence = 0.0;
  ApproxMineConfig strict = loose;
  strict.min_confidence = 0.95;

  size_t loose_count = MineApproximate(bbs, loose, UniverseOf(db)).size();
  size_t strict_count = MineApproximate(bbs, strict, UniverseOf(db)).size();
  EXPECT_LE(strict_count, loose_count);
  // Certified patterns (confidence 1) always survive.
  EXPECT_GT(strict_count, 0u);
}

TEST(ApproximateMineTest, WideVectorGivesHighConfidenceEverywhere) {
  TransactionDatabase db = testing::RandomDb(17, 300, 30, 5.0);
  BbsIndex bbs = MakeBbs(db, 2048, 4);
  ApproxMineConfig config;
  config.min_support = 0.02;
  for (const ApproxPattern& p :
       MineApproximate(bbs, config, UniverseOf(db))) {
    EXPECT_GT(p.confidence, 0.5) << ItemsetToString(p.items);
  }
}

TEST(ApproximateMineTest, SignatureBitsMaintained) {
  TransactionDatabase db = testing::MakeDb({{1, 2}, {3}, {}});
  BbsIndex bbs = MakeBbs(db, 128, 3);
  // Each transaction's signature popcount equals its MakeSignature count.
  for (size_t t = 0; t < db.size(); ++t) {
    EXPECT_EQ(bbs.SignatureBits(t),
              bbs.MakeSignature(db.At(t).items).Count())
        << "txn " << t;
  }
}

}  // namespace
}  // namespace bbsmine
