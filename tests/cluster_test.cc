// Tests for the sharded cluster layer: shard maps, hex signature codec,
// the Bloofi routing tree, deterministic merging, the daemon's SHARDINFO /
// MINE-candidates verbs, the persistent ClientSession, and the router
// itself against live in-process shard servers.
//
// The load-bearing property throughout is *bit-identity*: every COUNT and
// MINE the router answers must match, bit for bit, a single-node oracle
// holding the concatenation of the shard databases — at any shard count,
// with pruning on or off, and (for the surviving subset) even when shards
// are slow or dead.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "baseline/eclat.h"
#include "cluster/bloofi_tree.h"
#include "cluster/merge.h"
#include "cluster/router.h"
#include "cluster/shard_map.h"
#include "core/bbs_index.h"
#include "core/miner.h"
#include "core/mining_types.h"
#include "core/segmented_bbs.h"
#include "service/client.h"
#include "service/server.h"
#include "service/snapshot.h"
#include "service/wire.h"
#include "storage/transaction_db.h"
#include "testing/reference.h"
#include "util/bitvector.h"
#include "util/socket.h"

namespace bbsmine::cluster {
namespace {

using obs::JsonValue;

BbsConfig ClusterConfig() {
  BbsConfig config;
  config.num_bits = 512;
  config.num_hashes = 3;
  return config;
}

JsonValue MakeRequest(const std::string& verb) {
  JsonValue request = JsonValue::Object();
  request.Set("verb", JsonValue::String(verb));
  return request;
}

JsonValue CountRequest(const Itemset& items) {
  JsonValue request = MakeRequest("COUNT");
  request.Set("items", service::ItemsToJson(items));
  return request;
}

JsonValue MineRequest(double minsup, uint64_t top) {
  JsonValue request = MakeRequest("MINE");
  request.Set("minsup", JsonValue::Double(minsup));
  request.Set("top", JsonValue::Uint(top));
  return request;
}

/// One in-process bbsmined shard: database, segmented index, service, and
/// a real TCP server on an ephemeral loopback port.
struct MiniShard {
  TransactionDatabase db;
  std::optional<service::SnapshotManager> manager;
  std::unique_ptr<service::BbsService> service;
  std::unique_ptr<service::SocketServer> server;
};

/// A fleet of in-process shards over a contiguous range partition of
/// `full`, plus the single-node oracle over `full` itself.
class Fleet {
 public:
  Fleet(const TransactionDatabase& full, size_t num_shards,
        uint64_t segment_capacity = 64) {
    const size_t base = full.size() / num_shards;
    const size_t extra = full.size() % num_shards;
    size_t next = 0;
    for (size_t s = 0; s < num_shards; ++s) {
      auto shard = std::make_unique<MiniShard>();
      const size_t take = base + (s < extra ? 1 : 0);
      for (size_t t = 0; t < take; ++t) {
        shard->db.Append(full.At(next++).items);
      }
      auto index = SegmentedBbs::Create(ClusterConfig(), segment_capacity);
      EXPECT_TRUE(index.ok());
      EXPECT_TRUE(index->InsertAll(shard->db).ok());
      auto manager = service::SnapshotManager::FromIndex(*index);
      EXPECT_TRUE(manager.ok());
      shard->manager.emplace(std::move(*manager));
      shard->service = std::make_unique<service::BbsService>(
          &*shard->manager, &shard->db, service::ServiceOptions{});
      shard->server = std::make_unique<service::SocketServer>(
          shard->service.get(), service::SocketServerOptions{});
      EXPECT_TRUE(shard->server->Start().ok());
      shards_.push_back(std::move(shard));
    }

    oracle_db_ = full;
    auto oracle_index = SegmentedBbs::Create(ClusterConfig(), segment_capacity);
    EXPECT_TRUE(oracle_index.ok());
    EXPECT_TRUE(oracle_index->InsertAll(oracle_db_).ok());
    auto oracle_manager = service::SnapshotManager::FromIndex(*oracle_index);
    EXPECT_TRUE(oracle_manager.ok());
    oracle_manager_.emplace(std::move(*oracle_manager));
    oracle_ = std::make_unique<service::BbsService>(
        &*oracle_manager_, &oracle_db_, service::ServiceOptions{});
  }

  ~Fleet() {
    for (auto& shard : shards_) shard->server->Stop();
  }

  ShardMap map() const {
    ShardMap map;
    for (const auto& shard : shards_) {
      ShardEntry entry;
      entry.primary = ShardEndpoint{"127.0.0.1", shard->server->port()};
      map.shards.push_back(std::move(entry));
    }
    return map;
  }

  static RouterOptions FastOptions() {
    RouterOptions options;
    options.connect_retries = 5;
    options.connect_backoff_ms = 50;
    options.fanout_deadline_ms = 10'000;
    // Keep the deterministic tests deterministic: no background prober
    // racing explicit up/down choreography (failover tests opt back in).
    options.probe_interval_ms = 0;
    return options;
  }

  service::BbsService& oracle() { return *oracle_; }
  MiniShard& shard(size_t i) { return *shards_[i]; }
  size_t size() const { return shards_.size(); }

 private:
  std::vector<std::unique_ptr<MiniShard>> shards_;
  TransactionDatabase oracle_db_;
  std::optional<service::SnapshotManager> oracle_manager_;
  std::unique_ptr<service::BbsService> oracle_;
};

std::vector<Itemset> QueryMix(ItemId universe) {
  std::vector<Itemset> queries;
  for (ItemId a = 0; a < universe; ++a) {
    queries.push_back({a});
    queries.push_back({a, static_cast<ItemId>((a + 5) % universe)});
    queries.push_back({a, static_cast<ItemId>((a + 1) % universe),
                       static_cast<ItemId>((a + 9) % universe)});
  }
  // Items past the universe: zero counts, and prime pruning candidates.
  queries.push_back({static_cast<ItemId>(universe + 100)});
  queries.push_back({3, static_cast<ItemId>(universe + 101)});
  for (Itemset& q : queries) Canonicalize(&q);
  return queries;
}

// ---------------------------------------------------------------------------
// Hex signature codec (service/wire.h).

TEST(SignatureHexTest, RoundTripsArbitraryWidths) {
  for (size_t bits : {1u, 7u, 8u, 9u, 63u, 64u, 65u, 512u}) {
    BitVector v(bits);
    for (size_t i = 0; i < bits; i += 3) v.Set(i);
    std::string hex = service::BitsToHex(v);
    EXPECT_EQ(hex.size(), ((bits + 7) / 8) * 2);
    auto back = service::BitsFromHex(hex, bits);
    ASSERT_TRUE(back.ok()) << bits;
    ASSERT_EQ(back->size(), bits);
    for (size_t i = 0; i < bits; ++i) {
      EXPECT_EQ(back->Get(i), v.Get(i)) << "bit " << i << " of " << bits;
    }
  }
}

TEST(SignatureHexTest, RejectsMalformedInput) {
  EXPECT_FALSE(service::BitsFromHex("zz", 8).ok());       // not hex
  EXPECT_FALSE(service::BitsFromHex("ab", 16).ok());      // too short
  EXPECT_FALSE(service::BitsFromHex("abcd", 8).ok());     // too long
  // A set bit beyond num_bits means the widths disagree.
  BitVector v(8);
  v.Set(7);
  EXPECT_FALSE(service::BitsFromHex(service::BitsToHex(v), 7).ok());
}

// ---------------------------------------------------------------------------
// Shard maps.

TEST(ShardMapTest, ParsesSpecAndRejectsGarbage) {
  auto map = ParseShardSpec("127.0.0.1:7071,10.0.0.2:7072");
  ASSERT_TRUE(map.ok());
  ASSERT_EQ(map->size(), 2u);
  EXPECT_EQ(map->shards[0].primary.host, "127.0.0.1");
  EXPECT_EQ(map->shards[0].primary.port, 7071);
  EXPECT_FALSE(map->shards[0].has_replica);
  EXPECT_EQ(map->shards[1].ToString(), "10.0.0.2:7072");

  EXPECT_FALSE(ParseShardSpec("").ok());
  EXPECT_FALSE(ParseShardSpec("nocolon").ok());
  EXPECT_FALSE(ParseShardSpec("host:0").ok());
  EXPECT_FALSE(ParseShardSpec("host:99999").ok());
  // Empty entries are skipped, not errors — a trailing comma is harmless
  // and cannot shift shard indices.
  auto trailing = ParseShardSpec("host:7071,");
  ASSERT_TRUE(trailing.ok());
  EXPECT_EQ(trailing->size(), 1u);
}

TEST(ShardMapTest, ParsesReplicaSuffix) {
  auto map = ParseShardSpec("127.0.0.1:7071/127.0.0.1:8071,10.0.0.2:7072");
  ASSERT_TRUE(map.ok());
  ASSERT_EQ(map->size(), 2u);
  EXPECT_TRUE(map->shards[0].has_replica);
  EXPECT_EQ(map->shards[0].primary.ToString(), "127.0.0.1:7071");
  EXPECT_EQ(map->shards[0].replica.ToString(), "127.0.0.1:8071");
  EXPECT_EQ(map->shards[0].ToString(), "127.0.0.1:7071/127.0.0.1:8071");
  EXPECT_FALSE(map->shards[1].has_replica);

  // A malformed half fails the whole entry, never silently drops it.
  EXPECT_FALSE(ParseShardSpec("host:7071/").ok());
  EXPECT_FALSE(ParseShardSpec("/host:7071").ok());
  EXPECT_FALSE(ParseShardSpec("host:7071/nocolon").ok());
}

TEST(ShardMapTest, LoadsFileWithCommentsPreservingOrder) {
  std::string path = ::testing::TempDir() + "/cluster_test_shards.txt";
  std::FILE* f = std::fopen(path.c_str(), "w");
  ASSERT_NE(f, nullptr);
  std::fputs("# fleet, tail shard last\n"
             "127.0.0.1:7071\n"
             "\n"
             "127.0.0.1:7072/127.0.0.1:8072  # trailing comment\n",
             f);
  std::fclose(f);
  auto map = LoadShardMapFile(path);
  ASSERT_TRUE(map.ok()) << map.status().ToString();
  ASSERT_EQ(map->size(), 2u);
  EXPECT_EQ(map->shards[0].primary.port, 7071);
  EXPECT_EQ(map->shards[1].primary.port, 7072);
  ASSERT_TRUE(map->shards[1].has_replica);
  EXPECT_EQ(map->shards[1].replica.port, 8072);
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Bloofi routing tree.

BitVector LeafWithBits(size_t width, std::initializer_list<uint32_t> bits) {
  BitVector v(width);
  for (uint32_t b : bits) v.Set(b);
  return v;
}

TEST(BloofiTreeTest, QueryMatchesExactlyTheCoveringLeaves) {
  std::vector<BitVector> leaves;
  leaves.push_back(LeafWithBits(32, {1, 2, 3}));
  leaves.push_back(LeafWithBits(32, {2, 3, 4}));
  leaves.push_back(LeafWithBits(32, {10, 11}));
  leaves.push_back(LeafWithBits(32, {3, 11}));
  BloofiTree tree = BloofiTree::Build(std::move(leaves), /*branching=*/2);
  EXPECT_EQ(tree.num_leaves(), 4u);

  BloofiTree::QueryStats stats;
  EXPECT_EQ(tree.Query({2, 3}, &stats), (std::vector<size_t>{0, 1}));
  EXPECT_GT(stats.nodes_visited, 0u);
  EXPECT_GT(stats.leaves_pruned, 0u);
  EXPECT_EQ(tree.Query({11}), (std::vector<size_t>{2, 3}));
  EXPECT_EQ(tree.Query({1, 11}), (std::vector<size_t>{}));
  // An empty query constrains nothing.
  EXPECT_EQ(tree.Query({}), (std::vector<size_t>{0, 1, 2, 3}));
  // The root is the OR of everything.
  EXPECT_TRUE(tree.root_signature().Get(1));
  EXPECT_TRUE(tree.root_signature().Get(11));
  EXPECT_FALSE(tree.root_signature().Get(20));

  // A whole-subtree prune: positions covered by no leaf must cut at the
  // root, visiting exactly one node.
  BloofiTree::QueryStats miss;
  EXPECT_EQ(tree.Query({20}, &miss), (std::vector<size_t>{}));
  EXPECT_EQ(miss.nodes_visited, 1u);
  EXPECT_EQ(miss.leaves_pruned, 4u);
}

TEST(BloofiTreeTest, OrIntoLeafPropagatesToRoot) {
  std::vector<BitVector> leaves(4, BitVector(16));
  BloofiTree tree = BloofiTree::Build(std::move(leaves), 2);
  EXPECT_EQ(tree.Query({5}), (std::vector<size_t>{}));
  tree.OrIntoLeaf(2, {5});
  EXPECT_EQ(tree.Query({5}), (std::vector<size_t>{2}));
  EXPECT_TRUE(tree.root_signature().Get(5));
}

TEST(BloofiTreeTest, SetLeafRecomputesAncestorsAfterClearing) {
  std::vector<BitVector> leaves;
  leaves.push_back(LeafWithBits(16, {1}));
  leaves.push_back(LeafWithBits(16, {2}));
  leaves.push_back(LeafWithBits(16, {3}));
  BloofiTree tree = BloofiTree::Build(std::move(leaves), 2);
  ASSERT_EQ(tree.Query({1}), (std::vector<size_t>{0}));
  // Replace leaf 0 with a signature that no longer has bit 1: the ancestor
  // OR must actually lose the bit (an OR-in-place would keep it).
  tree.SetLeaf(0, LeafWithBits(16, {7}));
  EXPECT_EQ(tree.Query({1}), (std::vector<size_t>{}));
  EXPECT_FALSE(tree.root_signature().Get(1));
  EXPECT_EQ(tree.Query({7}), (std::vector<size_t>{0}));
  // Siblings are untouched.
  EXPECT_EQ(tree.Query({2}), (std::vector<size_t>{1}));
  EXPECT_EQ(tree.Query({3}), (std::vector<size_t>{2}));
}

TEST(BloofiTreeTest, OrSignatureIntoLeafAddsWithoutClearing) {
  std::vector<BitVector> leaves;
  leaves.push_back(LeafWithBits(16, {1}));
  leaves.push_back(LeafWithBits(16, {2}));
  BloofiTree tree = BloofiTree::Build(std::move(leaves), 2);
  // A racing INSERT adds bit 5 to leaf 0; a snapshot captured before that
  // insert is then applied additively (the RefreshShard fallback): the
  // insert's bit must survive, the snapshot's bits must land, and nothing
  // is cleared — contrast SetLeaf above, which may clear.
  tree.OrIntoLeaf(0, {5});
  tree.OrSignatureIntoLeaf(0, LeafWithBits(16, {1, 9}));
  EXPECT_EQ(tree.Query({5}), (std::vector<size_t>{0}));
  EXPECT_EQ(tree.Query({9}), (std::vector<size_t>{0}));
  EXPECT_EQ(tree.Query({1}), (std::vector<size_t>{0}));
  EXPECT_TRUE(tree.root_signature().Get(5));
  EXPECT_TRUE(tree.root_signature().Get(9));
  // The sibling is untouched.
  EXPECT_EQ(tree.Query({2}), (std::vector<size_t>{1}));
}

TEST(BloofiTreeTest, SingleLeafAndWideBranchingDegenerate) {
  {
    std::vector<BitVector> one;
    one.push_back(LeafWithBits(8, {0}));
    BloofiTree tree = BloofiTree::Build(std::move(one), 4);
    EXPECT_EQ(tree.Query({0}), (std::vector<size_t>{0}));
    EXPECT_EQ(tree.num_nodes(), 1u);
  }
  {
    // Branching wider than the leaf count: a root directly over leaves.
    std::vector<BitVector> leaves(3, BitVector(8, true));
    BloofiTree tree = BloofiTree::Build(std::move(leaves), 16);
    EXPECT_EQ(tree.num_nodes(), 4u);
    EXPECT_EQ(tree.Query({7}), (std::vector<size_t>{0, 1, 2}));
  }
}

// ---------------------------------------------------------------------------
// Deterministic merge.

TEST(MergeTest, TwoRoundMergeMatchesConcatenatedOracle) {
  // Build two shard databases, mine each locally at the same relative
  // minsup, merge through the helpers, and require exactly the Eclat
  // answer over the concatenation.
  TransactionDatabase full = bbsmine::testing::RandomDb(7, 240, 20, 6.0);
  const double minsup = 0.05;

  std::vector<TransactionDatabase> parts(2);
  for (size_t t = 0; t < full.size(); ++t) {
    parts[t < full.size() / 2 ? 0 : 1].Append(full.At(t).items);
  }

  std::vector<ShardMineResult> round1(2);
  for (size_t s = 0; s < 2; ++s) {
    EclatConfig config;
    config.min_support = minsup;
    MiningResult local = MineEclat(parts[s], config);
    round1[s].reachable = true;
    round1[s].transactions = parts[s].size();
    for (const Pattern& p : local.patterns) {
      round1[s].supports[p.items] = p.support;
    }
  }
  const uint64_t tau = AbsoluteThreshold(minsup, full.size());
  std::vector<Itemset> candidates = UnionCandidates(round1);

  std::vector<std::map<Itemset, uint64_t>> round2(2);
  for (size_t s = 0; s < 2; ++s) {
    for (const Itemset& candidate : MissingCandidates(round1[s], candidates)) {
      uint64_t support = 0;
      for (size_t t = 0; t < parts[s].size(); ++t) {
        const Itemset& txn = parts[s].At(t).items;
        if (std::includes(txn.begin(), txn.end(), candidate.begin(),
                          candidate.end())) {
          ++support;
        }
      }
      round2[s][candidate] = support;
    }
  }
  std::vector<Pattern> merged =
      MergeGlobalPatterns(round1, round2, candidates, tau);

  EclatConfig oracle_config;
  oracle_config.min_support = minsup;
  MiningResult oracle = MineEclat(full, oracle_config);
  std::vector<Pattern> expected = oracle.patterns;
  std::sort(expected.begin(), expected.end(),
            [](const Pattern& a, const Pattern& b) {
              if (a.support != b.support) return a.support > b.support;
              return a.items < b.items;
            });

  ASSERT_EQ(merged.size(), expected.size());
  for (size_t i = 0; i < merged.size(); ++i) {
    EXPECT_EQ(merged[i].items, expected[i].items) << "pattern " << i;
    EXPECT_EQ(merged[i].support, expected[i].support) << "pattern " << i;
  }
}

TEST(MergeTest, UnreachableShardsContributeNothing) {
  std::vector<ShardMineResult> round1(2);
  round1[0].reachable = true;
  round1[0].transactions = 10;
  round1[0].supports[{1}] = 6;
  round1[1].reachable = false;  // dark shard: no candidates, no supports
  round1[1].supports[{2}] = 9;  // must be ignored
  std::vector<Itemset> candidates = UnionCandidates(round1);
  ASSERT_EQ(candidates.size(), 1u);
  EXPECT_EQ(candidates[0], (Itemset{1}));
  std::vector<Pattern> merged = MergeGlobalPatterns(
      round1, std::vector<std::map<Itemset, uint64_t>>(2), candidates, 5);
  ASSERT_EQ(merged.size(), 1u);
  EXPECT_EQ(merged[0].support, 6u);
}

// ---------------------------------------------------------------------------
// Daemon-side cluster verbs: SHARDINFO and MINE candidates mode.

TEST(ShardInfoVerbTest, ReportsConfigAndCoveringSignature) {
  TransactionDatabase db = bbsmine::testing::RandomDb(11, 96, 24, 5.0);
  auto index = SegmentedBbs::Create(ClusterConfig(), 32);
  ASSERT_TRUE(index.ok());
  ASSERT_TRUE(index->InsertAll(db).ok());
  auto manager = service::SnapshotManager::FromIndex(*index);
  ASSERT_TRUE(manager.ok());
  service::BbsService daemon(&*manager, &db, service::ServiceOptions{});

  JsonValue response = daemon.Handle(MakeRequest("SHARDINFO"));
  ASSERT_TRUE(response.at("ok").AsBool()) << response.Serialize();
  EXPECT_EQ(response.at("transactions").AsUint(), db.size());
  EXPECT_TRUE(response.at("mine_enabled").AsBool());
  const JsonValue& config = response.at("config");
  EXPECT_EQ(config.at("bits").AsUint(), ClusterConfig().num_bits);
  EXPECT_EQ(config.at("hashes").AsUint(), ClusterConfig().num_hashes);

  auto signature = service::BitsFromHex(
      response.at("signature").AsString(),
      response.at("signature_bits").AsUint());
  ASSERT_TRUE(signature.ok());
  // Every position any present item hashes to must be set: the signature
  // is exactly the "slice non-empty" column map, so a query over present
  // items can never be wrongly pruned.
  auto hash = BloomHashFamily::Create(ClusterConfig().num_bits,
                                      ClusterConfig().num_hashes,
                                      ClusterConfig().hash_kind,
                                      ClusterConfig().seed);
  ASSERT_TRUE(hash.ok());
  for (ItemId item : db.DistinctItems()) {
    for (uint32_t pos : hash->Positions(item)) {
      EXPECT_TRUE(signature->Get(pos)) << "item " << item;
    }
  }
}

TEST(MineCandidatesVerbTest, ReturnsExactSupportsAlignedWithInput) {
  TransactionDatabase db = bbsmine::testing::RandomDb(13, 120, 16, 5.0);
  auto index = SegmentedBbs::Create(ClusterConfig(), 64);
  ASSERT_TRUE(index.ok());
  ASSERT_TRUE(index->InsertAll(db).ok());
  auto manager = service::SnapshotManager::FromIndex(*index);
  ASSERT_TRUE(manager.ok());
  service::BbsService daemon(&*manager, &db, service::ServiceOptions{});

  std::vector<Itemset> candidates = {{1}, {2, 3}, {0, 4, 9}, {15}};
  JsonValue request = MakeRequest("MINE");
  JsonValue list = JsonValue::Array();
  for (const Itemset& candidate : candidates) {
    list.Append(service::ItemsToJson(candidate));
  }
  request.Set("candidates", std::move(list));
  JsonValue response = daemon.Handle(request);
  ASSERT_TRUE(response.at("ok").AsBool()) << response.Serialize();
  const JsonValue& supports = response.at("supports");
  ASSERT_EQ(supports.size(), candidates.size());
  for (size_t c = 0; c < candidates.size(); ++c) {
    uint64_t expected = 0;
    for (size_t t = 0; t < db.size(); ++t) {
      const Itemset& txn = db.At(t).items;
      if (std::includes(txn.begin(), txn.end(), candidates[c].begin(),
                        candidates[c].end())) {
        ++expected;
      }
    }
    EXPECT_EQ(supports.at(c).AsUint(), expected) << "candidate " << c;
  }

  JsonValue bad = MakeRequest("MINE");
  bad.Set("candidates", JsonValue::String("nope"));
  EXPECT_FALSE(daemon.Handle(bad).at("ok").AsBool());
}

// ---------------------------------------------------------------------------
// Persistent client sessions.

TEST(ClientSessionTest, ReusesOneConnectionAcrossCalls) {
  TransactionDatabase db = bbsmine::testing::RandomDb(17, 40, 12, 4.0);
  auto index = SegmentedBbs::Create(ClusterConfig(), 32);
  ASSERT_TRUE(index.ok());
  ASSERT_TRUE(index->InsertAll(db).ok());
  auto manager = service::SnapshotManager::FromIndex(*index);
  ASSERT_TRUE(manager.ok());
  service::BbsService daemon(&*manager, &db, service::ServiceOptions{});
  service::SocketServer server(&daemon, service::SocketServerOptions{});
  Status started = server.Start();
  if (!started.ok()) {
    GTEST_SKIP() << "cannot bind a loopback socket here: "
                 << started.ToString();
  }

  auto session = service::ClientSession::Connect("127.0.0.1", server.port());
  ASSERT_TRUE(session.ok()) << session.status().ToString();
  EXPECT_TRUE(session->connected());
  for (int i = 0; i < 5; ++i) {
    auto response = session->Call(MakeRequest("PING"), 2000);
    ASSERT_TRUE(response.ok()) << response.status().ToString();
    EXPECT_TRUE(response->at("ok").AsBool());
    EXPECT_TRUE(session->connected()) << "call " << i << " dropped the link";
  }
  // The lazy constructor reconnects on demand, including after Close.
  service::ClientSession lazy("127.0.0.1", server.port());
  EXPECT_FALSE(lazy.connected());
  ASSERT_TRUE(lazy.Call(MakeRequest("PING"), 2000).ok());
  EXPECT_TRUE(lazy.connected());
  lazy.Close();
  EXPECT_FALSE(lazy.connected());
  ASSERT_TRUE(lazy.Call(MakeRequest("PING"), 2000).ok());
  server.Stop();
}

// ---------------------------------------------------------------------------
// Router vs oracle: bit-identity at shard counts {1, 2, 4}.

TEST(RouterParityTest, CountsAreBitIdenticalAcrossShardCounts) {
  TransactionDatabase full = bbsmine::testing::RandomDb(21, 200, 24, 5.0);
  const std::vector<Itemset> queries = QueryMix(24);
  for (size_t num_shards : {1u, 2u, 4u}) {
    Fleet fleet(full, num_shards);
    RouterService router(fleet.map(), Fleet::FastOptions());
    ASSERT_TRUE(router.Init().ok()) << num_shards << " shards";
    for (const Itemset& query : queries) {
      JsonValue request = CountRequest(query);
      JsonValue got = router.Handle(request);
      JsonValue want = fleet.oracle().Handle(request);
      ASSERT_TRUE(got.at("ok").AsBool()) << got.Serialize();
      ASSERT_TRUE(want.at("ok").AsBool());
      EXPECT_EQ(got.at("count").AsUint(), want.at("count").AsUint())
          << num_shards << " shards, query " << ItemsetToString(query);
      EXPECT_EQ(got.at("visible_transactions").AsUint(), full.size());
      EXPECT_FALSE(got.at("degraded").AsBool());
    }
  }
}

TEST(RouterParityTest, MinePatternsAreBitIdenticalAcrossShardCounts) {
  TransactionDatabase full = bbsmine::testing::RandomDb(23, 180, 18, 6.0);
  for (size_t num_shards : {1u, 2u, 4u}) {
    Fleet fleet(full, num_shards);
    RouterService router(fleet.map(), Fleet::FastOptions());
    ASSERT_TRUE(router.Init().ok());
    for (double minsup : {0.05, 0.15}) {
      for (uint64_t top : {5u, 1000u}) {
        JsonValue request = MineRequest(minsup, top);
        JsonValue got = router.Handle(request);
        JsonValue want = fleet.oracle().Handle(request);
        ASSERT_TRUE(got.at("ok").AsBool()) << got.Serialize();
        ASSERT_TRUE(want.at("ok").AsBool());
        // The full answer — every pattern, every support, the order, the
        // truncation, and the totals — must match byte for byte.
        EXPECT_EQ(got.at("patterns").Serialize(0),
                  want.at("patterns").Serialize(0))
            << num_shards << " shards, minsup " << minsup << ", top " << top;
        EXPECT_EQ(got.at("total_frequent").AsUint(),
                  want.at("total_frequent").AsUint());
        EXPECT_EQ(got.at("transactions").AsUint(),
                  want.at("transactions").AsUint());
      }
    }
  }
}

TEST(RouterParityTest, MineAgreesWithAllFourSchemes) {
  // The router's merged pattern set must equal the frequent set every one
  // of the paper's four filter-and-refine schemes finds on the
  // concatenated database (they all produce the exact frequent set).
  TransactionDatabase full = bbsmine::testing::RandomDb(29, 150, 16, 5.0);
  const double minsup = 0.08;
  Fleet fleet(full, 3);
  RouterService router(fleet.map(), Fleet::FastOptions());
  ASSERT_TRUE(router.Init().ok());
  JsonValue got = router.Handle(MineRequest(minsup, 100000));
  ASSERT_TRUE(got.at("ok").AsBool()) << got.Serialize();
  std::map<Itemset, uint64_t> router_supports;
  const JsonValue& patterns = got.at("patterns");
  for (size_t i = 0; i < patterns.size(); ++i) {
    auto items = service::ItemsFromJson(patterns.at(i).at("items"));
    ASSERT_TRUE(items.ok());
    router_supports[*items] = patterns.at(i).at("support").AsUint();
  }

  BbsConfig config = ClusterConfig();
  auto bbs = BbsIndex::Create(config);
  ASSERT_TRUE(bbs.ok());
  bbs->InsertAll(full);
  for (Algorithm algorithm : {Algorithm::kSFS, Algorithm::kSFP,
                              Algorithm::kDFS, Algorithm::kDFP}) {
    MineConfig mine_config;
    mine_config.min_support = minsup;
    mine_config.algorithm = algorithm;
    MiningResult result = MineFrequentPatterns(full, *bbs, mine_config);
    std::set<Itemset> scheme_set;
    for (const Pattern& p : result.patterns) scheme_set.insert(p.items);
    std::set<Itemset> router_set;
    for (const auto& [items, support] : router_supports) {
      router_set.insert(items);
    }
    EXPECT_EQ(scheme_set, router_set)
        << "scheme " << AlgorithmName(algorithm);
    for (const Pattern& p : result.patterns) {
      if (p.kind != SupportKind::kExact) continue;
      auto it = router_supports.find(p.items);
      ASSERT_NE(it, router_supports.end());
      EXPECT_EQ(it->second, p.support)
          << AlgorithmName(algorithm) << " " << ItemsetToString(p.items);
    }
  }
}

// ---------------------------------------------------------------------------
// Bloofi pruning: skipped shards never change answers, counters fire.

TEST(RouterPruningTest, PrunedShardsNeverChangeAnswersAndCountersFire) {
  // Two shards over disjoint item ranges: shard 0 holds items 0..49,
  // shard 1 holds items 1000..1049. Queries over one range must prune the
  // other shard (modulo hash collisions) and the answers must equal the
  // pruning-off router's bit for bit either way.
  TransactionDatabase full;
  for (size_t t = 0; t < 120; ++t) {
    Itemset items;
    const ItemId base = t < 60 ? 0 : 1000;
    for (size_t k = 0; k < 5; ++k) {
      items.push_back(static_cast<ItemId>(base + (t * 7 + k * 11) % 50));
    }
    Canonicalize(&items);
    full.Append(std::move(items));
  }
  Fleet fleet(full, 2);

  RouterService pruning(fleet.map(), Fleet::FastOptions());
  ASSERT_TRUE(pruning.Init().ok());
  RouterOptions no_prune_options = Fleet::FastOptions();
  no_prune_options.prune = false;
  RouterService no_prune(fleet.map(), no_prune_options);
  ASSERT_TRUE(no_prune.Init().ok());

  std::vector<Itemset> queries;
  for (ItemId a = 0; a < 50; a += 7) {
    queries.push_back({a});
    queries.push_back({static_cast<ItemId>(1000 + a)});
    queries.push_back({a, static_cast<ItemId>(a + 1)});
  }
  for (const Itemset& query : queries) {
    JsonValue request = CountRequest(query);
    JsonValue got = pruning.Handle(request);
    JsonValue want = no_prune.Handle(request);
    ASSERT_TRUE(got.at("ok").AsBool());
    ASSERT_TRUE(want.at("ok").AsBool());
    EXPECT_EQ(got.at("count").AsUint(), want.at("count").AsUint())
        << ItemsetToString(query);
    // Pruned shards still contribute their transaction totals.
    EXPECT_EQ(got.at("visible_transactions").AsUint(),
              want.at("visible_transactions").AsUint());
  }
  // Disjoint ranges make cross-range collisions rare: over dozens of
  // selective queries at 512 bits, at least one must have pruned a shard.
  EXPECT_GT(pruning.metrics().counter(pruning.metrics().pruned_shard_queries),
            0u);
  EXPECT_EQ(no_prune.metrics().counter(
                no_prune.metrics().pruned_shard_queries),
            0u);
}

// ---------------------------------------------------------------------------
// Degraded mode: a dead shard yields flagged partial answers, not failures.

TEST(RouterDegradedTest, DeadShardYieldsDegradedAnswers) {
  TransactionDatabase full = bbsmine::testing::RandomDb(31, 150, 20, 5.0);
  Fleet fleet(full, 3);
  RouterOptions options = Fleet::FastOptions();
  options.fanout_deadline_ms = 2000;
  RouterService router(fleet.map(), options);
  ASSERT_TRUE(router.Init().ok());

  // Healthy first: a baseline count over all three shards.
  JsonValue healthy = router.Handle(CountRequest({1}));
  ASSERT_TRUE(healthy.at("ok").AsBool());
  ASSERT_FALSE(healthy.at("degraded").AsBool());

  fleet.shard(1).server->Stop();

  JsonValue degraded = router.Handle(CountRequest({1}));
  ASSERT_TRUE(degraded.at("ok").AsBool()) << degraded.Serialize();
  EXPECT_TRUE(degraded.at("degraded").AsBool());
  ASSERT_EQ(degraded.at("missing_shards").size(), 1u);
  EXPECT_EQ(degraded.at("missing_shards").at(0).AsUint(), 1u);
  // The partial count covers exactly the surviving shards.
  uint64_t survivors = 0;
  for (size_t s : {0u, 2u}) {
    JsonValue local = fleet.shard(s).service->Handle(CountRequest({1}));
    survivors += local.at("count").AsUint();
  }
  EXPECT_EQ(degraded.at("count").AsUint(), survivors);
  EXPECT_GT(router.metrics().counter(router.metrics().degraded_responses),
            0u);
  EXPECT_GT(router.metrics().counter(router.metrics().shard_errors), 0u);
  // A transport failure is real downtime: the dead shard is marked down.
  EXPECT_EQ(router.shards_up(), 2u);

  // MINE degrades the same way: answers from the survivors, flagged.
  JsonValue mine = router.Handle(MineRequest(0.05, 20));
  ASSERT_TRUE(mine.at("ok").AsBool()) << mine.Serialize();
  EXPECT_TRUE(mine.at("degraded").AsBool());
}

TEST(RouterDegradedTest, RequireAllTurnsMissingShardsIntoErrors) {
  TransactionDatabase full = bbsmine::testing::RandomDb(37, 90, 16, 5.0);
  Fleet fleet(full, 2);
  RouterOptions options = Fleet::FastOptions();
  options.allow_degraded = false;
  options.fanout_deadline_ms = 2000;
  RouterService router(fleet.map(), options);
  ASSERT_TRUE(router.Init().ok());
  fleet.shard(0).server->Stop();
  JsonValue response = router.Handle(CountRequest({1}));
  ASSERT_FALSE(response.at("ok").AsBool());
  EXPECT_EQ(response.at("error").at("code").AsString(), "Unavailable");
}

// ---------------------------------------------------------------------------
// INSERT routing and routing-tree freshness.

TEST(RouterInsertTest, RoutesToTailAndKeepsPruningTruthful) {
  TransactionDatabase full = bbsmine::testing::RandomDb(41, 100, 20, 5.0);
  Fleet fleet(full, 2);
  RouterService router(fleet.map(), Fleet::FastOptions());
  ASSERT_TRUE(router.Init().ok());

  // An item far outside the fleet's universe: currently prunable.
  const ItemId fresh = 5000;
  JsonValue before = router.Handle(CountRequest({fresh}));
  ASSERT_TRUE(before.at("ok").AsBool());
  EXPECT_EQ(before.at("count").AsUint(), 0u);

  JsonValue insert = MakeRequest("INSERT");
  insert.Set("items", service::ItemsToJson({fresh, 1, 2}));
  JsonValue inserted = router.Handle(insert);
  ASSERT_TRUE(inserted.at("ok").AsBool()) << inserted.Serialize();
  EXPECT_EQ(inserted.at("shard").AsUint(), 1u);  // the tail shard
  EXPECT_EQ(inserted.at("transactions").AsUint(), full.size() + 1);

  // The new item is countable immediately — the tail's Bloofi leaf was
  // updated before the INSERT was acknowledged, so pruning cannot hide it.
  JsonValue after = router.Handle(CountRequest({fresh}));
  ASSERT_TRUE(after.at("ok").AsBool());
  EXPECT_EQ(after.at("count").AsUint(), 1u);
  EXPECT_EQ(after.at("visible_transactions").AsUint(), full.size() + 1);
}

// ---------------------------------------------------------------------------
// Slow shards: hedged reads and the fan-out deadline.

/// A relay that answers every request through a real BbsService but stalls
/// before responding — the downstream behavior hedging exists for. Each
/// accepted connection is served by its own thread and kept alive across
/// requests, so the router's pooled sessions behave as they would against
/// a real (but slow) daemon.
class SlowRelay {
 public:
  SlowRelay(service::BbsService* service, int delay_ms)
      : service_(service), delay_ms_(delay_ms) {}

  Status Start() {
    auto listener = ListenTcp("127.0.0.1", 0);
    if (!listener.ok()) return listener.status();
    auto port = BoundPort(listener->get());
    if (!port.ok()) return port.status();
    listener_ = std::move(*listener);
    port_ = *port;
    accept_thread_ = std::thread([this] { AcceptLoop(); });
    return Status::Ok();
  }

  void Stop() {
    stop_.store(true);
    if (accept_thread_.joinable()) accept_thread_.join();
    for (std::thread& worker : workers_) {
      if (worker.joinable()) worker.join();
    }
  }

  uint16_t port() const { return port_; }

 private:
  void AcceptLoop() {
    while (!stop_.load()) {
      auto conn = AcceptWithTimeout(listener_.get(), 20);
      if (!conn.ok() || !conn->valid()) continue;
      workers_.emplace_back(
          [this, fd = std::move(*conn)] { Serve(fd.get()); });
    }
  }

  void Serve(int fd) {
    while (!stop_.load()) {
      auto request = service::ReadFrame(fd, 200);
      if (!request.ok()) {
        // Header timeout just means the connection is idle; keep it open.
        if (request.status().code() == StatusCode::kUnavailable) continue;
        return;
      }
      JsonValue response = service_->Handle(*request);
      std::this_thread::sleep_for(std::chrono::milliseconds(delay_ms_));
      if (!service::WriteFrame(fd, response).ok()) return;
    }
  }

  service::BbsService* service_;
  int delay_ms_;
  OwnedFd listener_;
  uint16_t port_ = 0;
  std::thread accept_thread_;
  std::vector<std::thread> workers_;
  std::atomic<bool> stop_{false};
};

TEST(RouterHedgeTest, SlowShardIsHedgedAndStillAnswers) {
  TransactionDatabase full = bbsmine::testing::RandomDb(43, 80, 16, 5.0);
  Fleet fleet(full, 2);
  SlowRelay relay(fleet.shard(0).service.get(), /*delay_ms=*/250);
  Status started = relay.Start();
  if (!started.ok()) {
    GTEST_SKIP() << "cannot bind a loopback socket here: "
                 << started.ToString();
  }
  ShardMap map = fleet.map();
  map.shards[0].primary.port = relay.port();  // shard 0 now answers slowly

  RouterOptions options = Fleet::FastOptions();
  options.hedge_ms = 100;
  options.fanout_deadline_ms = 10'000;
  RouterService router(map, options);
  ASSERT_TRUE(router.Init().ok());

  JsonValue response = router.Handle(CountRequest({1}));
  ASSERT_TRUE(response.at("ok").AsBool()) << response.Serialize();
  EXPECT_FALSE(response.at("degraded").AsBool());
  // The slow leg fired the hedge at least once but the answer is whole.
  EXPECT_GT(router.metrics().counter(router.metrics().hedged_requests), 0u);
  JsonValue oracle = fleet.oracle().Handle(CountRequest({1}));
  EXPECT_EQ(response.at("count").AsUint(), oracle.at("count").AsUint());
  relay.Stop();
}

TEST(RouterHedgeTest, DeadlineExhaustionDegradesInsteadOfHanging) {
  TransactionDatabase full = bbsmine::testing::RandomDb(47, 80, 16, 5.0);
  Fleet fleet(full, 2);
  SlowRelay relay(fleet.shard(0).service.get(), /*delay_ms=*/2000);
  Status started = relay.Start();
  if (!started.ok()) {
    GTEST_SKIP() << "cannot bind a loopback socket here: "
                 << started.ToString();
  }
  ShardMap map = fleet.map();
  map.shards[0].primary.port = relay.port();  // shard 0 now stalls past the deadline

  // The deadline, not the slow shard, bounds the fan-out: shard 0 never
  // answers within it, so the router degrades instead of waiting 2s.
  RouterOptions options = Fleet::FastOptions();
  options.fanout_deadline_ms = 300;
  options.connect_retries = 1;
  RouterService router(map, options);
  ASSERT_TRUE(router.Init().ok());
  const auto begin = std::chrono::steady_clock::now();
  JsonValue response = router.Handle(CountRequest({1}));
  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
                           std::chrono::steady_clock::now() - begin)
                           .count();
  ASSERT_TRUE(response.at("ok").AsBool()) << response.Serialize();
  EXPECT_TRUE(response.at("degraded").AsBool());
  ASSERT_EQ(response.at("missing_shards").size(), 1u);
  EXPECT_EQ(response.at("missing_shards").at(0).AsUint(), 0u);
  EXPECT_LT(elapsed, 5000) << "fan-out must be bounded by the deadline";
  relay.Stop();
}

// ---------------------------------------------------------------------------
// Backpressure: a shard shedding load is alive, not down.

/// A relay that answers COUNT with backpressure (Unavailable) while
/// passing every other verb through to a real BbsService — the downstream
/// shape of a shard that is alive but refusing work.
class BackpressureRelay {
 public:
  explicit BackpressureRelay(service::BbsService* service)
      : service_(service) {}

  Status Start() {
    auto listener = ListenTcp("127.0.0.1", 0);
    if (!listener.ok()) return listener.status();
    auto port = BoundPort(listener->get());
    if (!port.ok()) return port.status();
    listener_ = std::move(*listener);
    port_ = *port;
    accept_thread_ = std::thread([this] { AcceptLoop(); });
    return Status::Ok();
  }

  void Stop() {
    stop_.store(true);
    if (accept_thread_.joinable()) accept_thread_.join();
    for (std::thread& worker : workers_) {
      if (worker.joinable()) worker.join();
    }
  }

  uint16_t port() const { return port_; }

 private:
  void AcceptLoop() {
    while (!stop_.load()) {
      auto conn = AcceptWithTimeout(listener_.get(), 20);
      if (!conn.ok() || !conn->valid()) continue;
      workers_.emplace_back(
          [this, fd = std::move(*conn)] { Serve(fd.get()); });
    }
  }

  void Serve(int fd) {
    while (!stop_.load()) {
      auto request = service::ReadFrame(fd, 200);
      if (!request.ok()) {
        if (request.status().code() == StatusCode::kUnavailable) continue;
        return;
      }
      JsonValue response =
          request->at("verb").AsString() == "COUNT"
              ? service::ErrorResponse(
                    "COUNT", Status::Unavailable("shedding load"))
              : service_->Handle(*request);
      if (!service::WriteFrame(fd, response).ok()) return;
    }
  }

  service::BbsService* service_;
  OwnedFd listener_;
  uint16_t port_ = 0;
  std::thread accept_thread_;
  std::vector<std::thread> workers_;
  std::atomic<bool> stop_{false};
};

TEST(RouterBackpressureTest, SheddingShardStaysUpThroughDeadline) {
  TransactionDatabase full = bbsmine::testing::RandomDb(61, 80, 16, 5.0);
  Fleet fleet(full, 2);
  BackpressureRelay relay(fleet.shard(0).service.get());
  Status started = relay.Start();
  if (!started.ok()) {
    GTEST_SKIP() << "cannot bind a loopback socket here: "
                 << started.ToString();
  }
  ShardMap map = fleet.map();
  map.shards[0].primary.port = relay.port();  // shard 0 now sheds all COUNTs

  // A retry budget far beyond the deadline: the leg ends by deadline
  // exhaustion with backpressure as the latest evidence — the shard
  // answered every probe, so it must NOT be marked down.
  RouterOptions options = Fleet::FastOptions();
  options.fanout_deadline_ms = 400;
  options.retry.retries = 1000;
  options.retry.backoff_ms = 25;
  options.retry.max_backoff_ms = 50;
  RouterService router(map, options);
  ASSERT_TRUE(router.Init().ok());
  ASSERT_EQ(router.shards_up(), 2u);

  JsonValue response = router.Handle(CountRequest({1}));
  ASSERT_TRUE(response.at("ok").AsBool()) << response.Serialize();
  EXPECT_TRUE(response.at("degraded").AsBool());
  ASSERT_EQ(response.at("missing_shards").size(), 1u);
  EXPECT_EQ(response.at("missing_shards").at(0).AsUint(), 0u);
  EXPECT_EQ(router.shards_up(), 2u)
      << "backpressure must not read as downtime";
  relay.Stop();
}

// ---------------------------------------------------------------------------
// MINE snapshot consistency: INSERTs landing between the two rounds.

/// A relay that appends one transaction to the backing shard right after
/// answering the first round-1 MINE — the wire-visible shape of a client
/// INSERT landing between the exchange's two rounds.
class GrowBetweenRoundsRelay {
 public:
  GrowBetweenRoundsRelay(service::BbsService* service, Itemset grow_items)
      : service_(service), grow_items_(std::move(grow_items)) {}

  Status Start() {
    auto listener = ListenTcp("127.0.0.1", 0);
    if (!listener.ok()) return listener.status();
    auto port = BoundPort(listener->get());
    if (!port.ok()) return port.status();
    listener_ = std::move(*listener);
    port_ = *port;
    accept_thread_ = std::thread([this] { AcceptLoop(); });
    return Status::Ok();
  }

  void Stop() {
    stop_.store(true);
    if (accept_thread_.joinable()) accept_thread_.join();
    for (std::thread& worker : workers_) {
      if (worker.joinable()) worker.join();
    }
  }

  uint16_t port() const { return port_; }
  bool grew() const { return grown_.load(); }

 private:
  void AcceptLoop() {
    while (!stop_.load()) {
      auto conn = AcceptWithTimeout(listener_.get(), 20);
      if (!conn.ok() || !conn->valid()) continue;
      workers_.emplace_back(
          [this, fd = std::move(*conn)] { Serve(fd.get()); });
    }
  }

  void Serve(int fd) {
    while (!stop_.load()) {
      auto request = service::ReadFrame(fd, 200);
      if (!request.ok()) {
        if (request.status().code() == StatusCode::kUnavailable) continue;
        return;
      }
      // The round-1 answer reflects the pre-growth database; the INSERT
      // lands before the router can issue round 2.
      JsonValue response = service_->Handle(*request);
      if (request->at("verb").AsString() == "MINE" &&
          !request->Has("candidates") && !grown_.exchange(true)) {
        JsonValue insert = MakeRequest("INSERT");
        insert.Set("items", service::ItemsToJson(grow_items_));
        JsonValue acked = service_->Handle(insert);
        EXPECT_TRUE(acked.at("ok").AsBool()) << acked.Serialize();
      }
      if (!service::WriteFrame(fd, response).ok()) return;
    }
  }

  service::BbsService* service_;
  Itemset grow_items_;
  OwnedFd listener_;
  uint16_t port_ = 0;
  std::thread accept_thread_;
  std::vector<std::thread> workers_;
  std::atomic<bool> stop_{false};
  std::atomic<bool> grown_{false};
};

TEST(RouterMineSnapshotTest, InsertBetweenRoundsIsDetectedAndRetried) {
  // Crafted so shard 1 is guaranteed a round-2 leg: every shard-0
  // transaction carries item 7, while shard 1 sees it exactly once —
  // locally infrequent there, so {7} is always a missing candidate shard 1
  // must exact-count in round 2.
  TransactionDatabase full;
  for (size_t t = 0; t < 50; ++t) {
    Itemset items{7, static_cast<ItemId>(t % 10),
                  static_cast<ItemId>(10 + t % 7)};
    Canonicalize(&items);
    full.Append(std::move(items));
  }
  for (size_t t = 0; t < 50; ++t) {
    Itemset items{static_cast<ItemId>(t % 6),
                  static_cast<ItemId>(20 + t % 5)};
    if (t == 0) items.push_back(7);
    Canonicalize(&items);
    full.Append(std::move(items));
  }
  const double minsup = 0.05;
  const Itemset extra{30};

  Fleet fleet(full, 2);
  GrowBetweenRoundsRelay relay(fleet.shard(1).service.get(), extra);
  Status started = relay.Start();
  if (!started.ok()) {
    GTEST_SKIP() << "cannot bind a loopback socket here: "
                 << started.ToString();
  }
  ShardMap map = fleet.map();
  map.shards[1].primary.port = relay.port();  // the tail grows mid-exchange

  RouterService router(map, Fleet::FastOptions());
  ASSERT_TRUE(router.Init().ok());
  JsonValue got = router.Handle(MineRequest(minsup, 100000));
  ASSERT_TRUE(got.at("ok").AsBool()) << got.Serialize();
  EXPECT_TRUE(relay.grew());

  // The first pass mixed snapshots (round-2 scanned 51 transactions where
  // round 1 reported 50); the router must have detected it, re-run the
  // exchange, and landed consistent.
  const JsonValue& exchange = got.at("exchange");
  EXPECT_TRUE(exchange.at("snapshot_consistent").AsBool())
      << got.Serialize();
  EXPECT_EQ(exchange.at("snapshot_retries").AsUint(), 1u);
  EXPECT_EQ(got.at("transactions").AsUint(), full.size() + 1);
  EXPECT_FALSE(got.at("degraded").AsBool());

  // And the retried answer is the oracle answer over the GROWN data.
  TransactionDatabase grown = full;
  Itemset extra_txn = extra;
  grown.Append(std::move(extra_txn));
  EclatConfig oracle_config;
  oracle_config.min_support = minsup;
  MiningResult oracle = MineEclat(grown, oracle_config);
  std::sort(oracle.patterns.begin(), oracle.patterns.end(),
            [](const Pattern& a, const Pattern& b) {
              if (a.support != b.support) return a.support > b.support;
              return a.items < b.items;
            });
  const JsonValue& patterns = got.at("patterns");
  ASSERT_EQ(patterns.size(), oracle.patterns.size());
  for (size_t i = 0; i < oracle.patterns.size(); ++i) {
    auto items = service::ItemsFromJson(patterns.at(i).at("items"));
    ASSERT_TRUE(items.ok());
    EXPECT_EQ(*items, oracle.patterns[i].items) << "pattern " << i;
    EXPECT_EQ(patterns.at(i).at("support").AsUint(),
              oracle.patterns[i].support)
        << "pattern " << i;
  }
  relay.Stop();
}

// ---------------------------------------------------------------------------
// Router STATS and SHARDINFO.

TEST(RouterStatsTest, ReportsClusterSectionWithPerShardDetail) {
  TransactionDatabase full = bbsmine::testing::RandomDb(53, 90, 16, 5.0);
  Fleet fleet(full, 3);
  RouterService router(fleet.map(), Fleet::FastOptions());
  ASSERT_TRUE(router.Init().ok());
  (void)router.Handle(CountRequest({1}));
  (void)router.Handle(CountRequest({2, 3}));

  JsonValue response = router.Handle(MakeRequest("STATS"));
  ASSERT_TRUE(response.at("ok").AsBool());
  const JsonValue& report = response.at("report");
  EXPECT_EQ(report.at("kind").AsString(), "bbsrouter_service");
  const JsonValue& cluster = report.at("cluster");
  EXPECT_EQ(cluster.at("role").AsString(), "router");
  EXPECT_EQ(cluster.at("shards_total").AsUint(), 3u);
  EXPECT_EQ(cluster.at("shards_up").AsUint(), 3u);
  const JsonValue& shards = cluster.at("shards");
  ASSERT_EQ(shards.size(), 3u);
  uint64_t requests = 0;
  for (size_t s = 0; s < shards.size(); ++s) {
    EXPECT_TRUE(shards.at(s).at("up").AsBool());
    EXPECT_TRUE(shards.at(s).Has("latency_us"));
    requests += shards.at(s).at("requests").AsUint();
  }
  EXPECT_GT(requests, 0u);
  // The daemon's own report carries the standalone cluster identity.
  JsonValue shard_stats = fleet.shard(0).service->Handle(MakeRequest("STATS"));
  const JsonValue& shard_cluster = shard_stats.at("report").at("cluster");
  EXPECT_EQ(shard_cluster.at("role").AsString(), "shard");
  EXPECT_EQ(shard_cluster.at("shards_total").AsUint(), 1u);
}

TEST(RouterStatsTest, RouterShardInfoExposesRootSignature) {
  // A router answers SHARDINFO with the fleet's OR signature, so routers
  // stack: the parent prunes exactly as if the child were one big shard.
  TransactionDatabase full = bbsmine::testing::RandomDb(59, 60, 12, 4.0);
  Fleet fleet(full, 2);
  RouterService router(fleet.map(), Fleet::FastOptions());
  ASSERT_TRUE(router.Init().ok());
  JsonValue info = router.Handle(MakeRequest("SHARDINFO"));
  ASSERT_TRUE(info.at("ok").AsBool());
  EXPECT_EQ(info.at("transactions").AsUint(), full.size());
  EXPECT_EQ(info.at("shards").AsUint(), 2u);
  auto signature = service::BitsFromHex(info.at("signature").AsString(),
                                        info.at("signature_bits").AsUint());
  ASSERT_TRUE(signature.ok());
  // The root signature covers both shard signatures.
  JsonValue s0 = fleet.shard(0).service->Handle(MakeRequest("SHARDINFO"));
  auto leaf = service::BitsFromHex(s0.at("signature").AsString(),
                                   s0.at("signature_bits").AsUint());
  ASSERT_TRUE(leaf.ok());
  for (size_t b = 0; b < leaf->size(); ++b) {
    if (leaf->Get(b)) {
      EXPECT_TRUE(signature->Get(b)) << "bit " << b;
    }
  }
}

// ---------------------------------------------------------------------------
// Failover: replica promotion, fencing, and prober-driven rejoin.

/// Polls `pred` until it holds or `timeout_ms` elapses.
bool WaitUntil(const std::function<bool()>& pred, int timeout_ms = 15'000) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  while (std::chrono::steady_clock::now() < deadline) {
    if (pred()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  return pred();
}

/// A warm replica of `primary`: same transactions, own index and server —
/// what a bbsmined --follow that has fully caught up looks like.
std::unique_ptr<MiniShard> MakeReplicaOf(const MiniShard& primary,
                                         uint64_t segment_capacity = 64) {
  auto replica = std::make_unique<MiniShard>();
  replica->db = primary.db;
  auto index = SegmentedBbs::Create(ClusterConfig(), segment_capacity);
  EXPECT_TRUE(index.ok());
  EXPECT_TRUE(index->InsertAll(replica->db).ok());
  auto manager = service::SnapshotManager::FromIndex(*index);
  EXPECT_TRUE(manager.ok());
  replica->manager.emplace(std::move(*manager));
  replica->service = std::make_unique<service::BbsService>(
      &*replica->manager, &replica->db, service::ServiceOptions{});
  replica->server = std::make_unique<service::SocketServer>(
      replica->service.get(), service::SocketServerOptions{});
  EXPECT_TRUE(replica->server->Start().ok());
  return replica;
}

TEST(RouterFailoverTest, DeadPrimaryFailsOverToReplicaWithBitIdenticalAnswers) {
  TransactionDatabase full = bbsmine::testing::RandomDb(61, 120, 20, 5.0);
  Fleet fleet(full, 2);
  auto replica = MakeReplicaOf(fleet.shard(1));

  ShardMap map = fleet.map();
  map.shards[1].has_replica = true;
  map.shards[1].replica = ShardEndpoint{"127.0.0.1", replica->server->port()};
  RouterOptions options = Fleet::FastOptions();
  options.fanout_deadline_ms = 2'000;
  RouterService router(std::move(map), options);
  ASSERT_TRUE(router.Init().ok());

  // Healthy baseline, then kill the primary out from under the router.
  JsonValue healthy = router.Handle(CountRequest({1}));
  ASSERT_TRUE(healthy.at("ok").AsBool());
  EXPECT_FALSE(healthy.at("degraded").AsBool());
  fleet.shard(1).server->Stop();

  // The very request that discovers the death retries onto the promoted
  // replica: no degraded answer, no operator in the loop.
  JsonValue count = router.Handle(CountRequest({1}));
  ASSERT_TRUE(count.at("ok").AsBool()) << count.Serialize();
  EXPECT_FALSE(count.at("degraded").AsBool());
  EXPECT_EQ(router.failovers(), 1u);
  EXPECT_EQ(router.shards_up(), 2u);
  EXPECT_EQ(router.active_endpoint(1).port, replica->server->port());

  // The replica really was promoted, at a term above the old primary's.
  JsonValue info = replica->service->Handle(MakeRequest("SHARDINFO"));
  ASSERT_TRUE(info.at("ok").AsBool());
  EXPECT_EQ(info.at("role").AsString(), "primary");
  EXPECT_EQ(info.at("term").AsUint(), 2u);

  // Post-failover COUNT and MINE stay bit-identical to the oracle.
  for (const Itemset& probe : QueryMix(20)) {
    JsonValue routed = router.Handle(CountRequest(probe));
    ASSERT_TRUE(routed.at("ok").AsBool());
    EXPECT_FALSE(routed.at("degraded").AsBool());
    JsonValue oracle = fleet.oracle().Handle(CountRequest(probe));
    EXPECT_EQ(routed.at("count").AsUint(), oracle.at("count").AsUint());
  }
  JsonValue mined = router.Handle(MineRequest(0.05, 20));
  ASSERT_TRUE(mined.at("ok").AsBool()) << mined.Serialize();
  EXPECT_FALSE(mined.at("degraded").AsBool());
  JsonValue oracle_mined = fleet.oracle().Handle(MineRequest(0.05, 20));
  EXPECT_EQ(mined.at("patterns").Serialize(),
            oracle_mined.at("patterns").Serialize());

  // INSERTs reroute to the promoted tail; the routing tree follows.
  JsonValue insert = MakeRequest("INSERT");
  insert.Set("items", service::ItemsToJson({777}));
  JsonValue inserted = router.Handle(insert);
  ASSERT_TRUE(inserted.at("ok").AsBool()) << inserted.Serialize();
  JsonValue sentinel = router.Handle(CountRequest({777}));
  EXPECT_EQ(sentinel.at("count").AsUint(), 1u);
  JsonValue local = replica->service->Handle(CountRequest({777}));
  EXPECT_EQ(local.at("count").AsUint(), 1u);

  // The report tells the story: which endpoint serves, at what term.
  JsonValue report = router.BuildStatsReport();
  const JsonValue& cluster = report.at("cluster");
  EXPECT_EQ(cluster.at("failovers").AsUint(), 1u);
  const JsonValue& entry = cluster.at("shards").at(1);
  EXPECT_TRUE(entry.at("failed_over").AsBool());
  EXPECT_EQ(entry.at("active").AsString(), "replica");
  EXPECT_EQ(entry.at("term").AsUint(), 2u);
  EXPECT_TRUE(entry.Has("replica"));
  const JsonValue& repl = report.at("replication");
  EXPECT_TRUE(repl.at("enabled").AsBool());
  EXPECT_EQ(repl.at("failovers").AsUint(), 1u);
}

TEST(RouterFailoverTest, ProberPromotesAndFencesWithoutClientTraffic) {
  TransactionDatabase full = bbsmine::testing::RandomDb(67, 100, 18, 5.0);
  Fleet fleet(full, 2);
  auto replica = MakeReplicaOf(fleet.shard(1));

  ShardMap map = fleet.map();
  const uint16_t old_primary_port = fleet.shard(1).server->port();
  map.shards[1].has_replica = true;
  map.shards[1].replica = ShardEndpoint{"127.0.0.1", replica->server->port()};
  RouterOptions options = Fleet::FastOptions();
  options.probe_interval_ms = 50;
  options.probe_timeout_ms = 500;
  options.fanout_deadline_ms = 2'000;
  RouterService router(std::move(map), options);
  ASSERT_TRUE(router.Init().ok());

  // Kill the primary and wait: the background prober must discover the
  // death and promote the replica with zero client requests in flight.
  fleet.shard(1).server->Stop();
  ASSERT_TRUE(WaitUntil([&] { return router.failovers() == 1; }));
  ASSERT_TRUE(WaitUntil([&] { return router.shards_up() == 2; }));

  // The old primary restarts on its old port, stale at term 1. The router
  // must keep serving from the promoted replica — never the zombie.
  fleet.shard(1).server = std::make_unique<service::SocketServer>(
      fleet.shard(1).service.get(), [&] {
        service::SocketServerOptions server_options;
        server_options.port = old_primary_port;
        return server_options;
      }());
  ASSERT_TRUE(fleet.shard(1).server->Start().ok());

  // A sentinel write lands on the replica; the zombie never sees it. If
  // any read consulted the zombie, the count would come back 0.
  JsonValue insert = MakeRequest("INSERT");
  insert.Set("items", service::ItemsToJson({888}));
  ASSERT_TRUE(router.Handle(insert).at("ok").AsBool());
  for (int i = 0; i < 5; ++i) {
    JsonValue count = router.Handle(CountRequest({888}));
    ASSERT_TRUE(count.at("ok").AsBool());
    EXPECT_FALSE(count.at("degraded").AsBool());
    EXPECT_EQ(count.at("count").AsUint(), 1u);
  }
  EXPECT_EQ(router.active_endpoint(1).port, replica->server->port());
  JsonValue zombie = fleet.shard(1).service->Handle(CountRequest({888}));
  EXPECT_EQ(zombie.at("count").AsUint(), 0u);
}

/// A relay that misbehaves ONLY on COUNT — stalling past the caller's
/// deadline, or closing the connection outright — while serving every
/// other verb (SHARDINFO probes included) promptly from the backing
/// service: the wire shape of a primary that is alive but degraded.
class CountFaultRelay {
 public:
  enum class Fault {
    kStall,            ///< COUNT answers, but only after stall_ms
    kCloseConnection,  ///< COUNT tears the connection down (reset blip)
  };

  CountFaultRelay(service::BbsService* service, Fault fault, int stall_ms = 0)
      : service_(service), fault_(fault), stall_ms_(stall_ms) {}

  Status Start() {
    auto listener = ListenTcp("127.0.0.1", 0);
    if (!listener.ok()) return listener.status();
    auto port = BoundPort(listener->get());
    if (!port.ok()) return port.status();
    listener_ = std::move(*listener);
    port_ = *port;
    accept_thread_ = std::thread([this] { AcceptLoop(); });
    return Status::Ok();
  }

  void Stop() {
    stop_.store(true);
    if (accept_thread_.joinable()) accept_thread_.join();
    for (std::thread& worker : workers_) {
      if (worker.joinable()) worker.join();
    }
  }

  uint16_t port() const { return port_; }

 private:
  void AcceptLoop() {
    while (!stop_.load()) {
      auto conn = AcceptWithTimeout(listener_.get(), 20);
      if (!conn.ok() || !conn->valid()) continue;
      workers_.emplace_back(
          [this, fd = std::move(*conn)] { Serve(fd.get()); });
    }
  }

  void Serve(int fd) {
    while (!stop_.load()) {
      auto request = service::ReadFrame(fd, 200);
      if (!request.ok()) {
        if (request.status().code() == StatusCode::kUnavailable) continue;
        return;
      }
      if (request->at("verb").AsString() == "COUNT") {
        if (fault_ == Fault::kCloseConnection) return;  // peer-closed blip
        // Stall past the caller's deadline; the eventual answer lands on
        // a socket the router abandoned long ago.
        std::this_thread::sleep_for(std::chrono::milliseconds(stall_ms_));
      }
      JsonValue response = service_->Handle(*request);
      if (!service::WriteFrame(fd, response).ok()) return;
    }
  }

  service::BbsService* service_;
  Fault fault_;
  int stall_ms_;
  OwnedFd listener_;
  uint16_t port_ = 0;
  std::thread accept_thread_;
  std::vector<std::thread> workers_;
  std::atomic<bool> stop_{false};
};

TEST(RouterFailoverTest, SlowShardIsNeverPromotedAwayFrom) {
  TransactionDatabase full = bbsmine::testing::RandomDb(73, 100, 18, 5.0);
  Fleet fleet(full, 2);
  auto replica = MakeReplicaOf(fleet.shard(1));
  CountFaultRelay relay(fleet.shard(1).service.get(),
                        CountFaultRelay::Fault::kStall, /*stall_ms=*/2000);
  Status started = relay.Start();
  if (!started.ok()) {
    GTEST_SKIP() << "cannot bind a loopback socket here: "
                 << started.ToString();
  }
  ShardMap map = fleet.map();
  map.shards[1].primary.port = relay.port();  // COUNTs now stall 2s
  map.shards[1].has_replica = true;
  map.shards[1].replica = ShardEndpoint{"127.0.0.1", replica->server->port()};
  RouterOptions options = Fleet::FastOptions();
  options.fanout_deadline_ms = 300;  // the stall outlives every COUNT leg
  RouterService router(std::move(map), options);
  ASSERT_TRUE(router.Init().ok());
  ASSERT_EQ(router.shards_up(), 2u);

  // The COUNT leg times out — pure silence. Promotion would permanently
  // fence a primary that is merely slow (and in async replication drop
  // its acked-but-unshipped WAL records), so silence must only degrade
  // the answer: no failover, no down-marking.
  JsonValue response = router.Handle(CountRequest({1}));
  ASSERT_TRUE(response.at("ok").AsBool()) << response.Serialize();
  EXPECT_TRUE(response.at("degraded").AsBool());
  EXPECT_EQ(router.failovers(), 0u);
  EXPECT_EQ(router.shards_up(), 2u)
      << "a timed-out leg must not read as shard death";
  EXPECT_EQ(router.active_endpoint(1).port, relay.port());
  relay.Stop();
}

TEST(RouterFailoverTest, ResetBlipAgainstAnsweringPrimaryAborts) {
  TransactionDatabase full = bbsmine::testing::RandomDb(79, 100, 18, 5.0);
  Fleet fleet(full, 2);
  auto replica = MakeReplicaOf(fleet.shard(1));
  CountFaultRelay relay(fleet.shard(1).service.get(),
                        CountFaultRelay::Fault::kCloseConnection);
  Status started = relay.Start();
  if (!started.ok()) {
    GTEST_SKIP() << "cannot bind a loopback socket here: "
                 << started.ToString();
  }
  ShardMap map = fleet.map();
  map.shards[1].primary.port = relay.port();  // COUNT connections now reset
  map.shards[1].has_replica = true;
  map.shards[1].replica = ShardEndpoint{"127.0.0.1", replica->server->port()};
  RouterOptions options = Fleet::FastOptions();
  options.fanout_deadline_ms = 2'000;
  options.probe_timeout_ms = 1'000;
  RouterService router(std::move(map), options);
  ASSERT_TRUE(router.Init().ok());

  // The torn COUNT connection is transport-level evidence, so the leg
  // reaches TryFailover — but the confirm probe finds the primary
  // answering SHARDINFO at a current term and aborts the promotion,
  // marking the shard back up. One reset blip must never fence a
  // serving primary.
  JsonValue response = router.Handle(CountRequest({1}));
  ASSERT_TRUE(response.at("ok").AsBool()) << response.Serialize();
  EXPECT_TRUE(response.at("degraded").AsBool());
  EXPECT_EQ(router.failovers(), 0u);
  EXPECT_EQ(router.shards_up(), 2u)
      << "the confirm probe must mark the answering primary back up";
  EXPECT_EQ(router.active_endpoint(1).port, relay.port());
  relay.Stop();
}

TEST(RouterFailoverTest, SustainedSilenceFailsOverViaProbeThreshold) {
  TransactionDatabase full = bbsmine::testing::RandomDb(83, 100, 18, 5.0);
  Fleet fleet(full, 2);
  auto replica = MakeReplicaOf(fleet.shard(1));
  // Every verb — probes included — stalls past the probe budget: the
  // shape of a wedged (but not dead) primary that will never recover.
  SlowRelay relay(fleet.shard(1).service.get(), /*delay_ms=*/2000);
  Status started = relay.Start();
  if (!started.ok()) {
    GTEST_SKIP() << "cannot bind a loopback socket here: "
                 << started.ToString();
  }
  ShardMap map = fleet.map();
  map.shards[1].primary.port = relay.port();
  map.shards[1].has_replica = true;
  map.shards[1].replica = ShardEndpoint{"127.0.0.1", replica->server->port()};
  RouterOptions options = Fleet::FastOptions();
  options.fanout_deadline_ms = 10'000;  // Init's handshake rides the stall out
  options.probe_interval_ms = 50;
  options.probe_timeout_ms = 200;
  options.failover_probe_failures = 3;
  RouterService router(std::move(map), options);
  ASSERT_TRUE(router.Init().ok());

  // No single timeout promotes, but a primary that stays silent must not
  // strand the shard forever: after failover_probe_failures consecutive
  // silent probes (and a failed confirm probe) the prober promotes the
  // replica — with zero client traffic in flight.
  ASSERT_TRUE(WaitUntil([&] { return router.failovers() == 1; }));
  ASSERT_TRUE(WaitUntil([&] { return router.shards_up() == 2; }));
  EXPECT_EQ(router.active_endpoint(1).port, replica->server->port());
  relay.Stop();
}

TEST(RouterProberTest, ReplicalessDeadShardIsMarkedDownByProberAlone) {
  TransactionDatabase full = bbsmine::testing::RandomDb(89, 80, 16, 5.0);
  Fleet fleet(full, 2);
  RouterOptions options = Fleet::FastOptions();
  options.probe_interval_ms = 50;
  options.probe_timeout_ms = 500;
  RouterService router(fleet.map(), options);
  ASSERT_TRUE(router.Init().ok());
  ASSERT_EQ(router.shards_up(), 2u);

  // No replica, no client traffic: the prober alone must notice the
  // death and flip the shard down in STATS/shards_up — a dead shard
  // must not report healthy until a real request trips over it.
  fleet.shard(0).server->Stop();
  EXPECT_TRUE(WaitUntil([&] { return router.shards_up() == 1; }));
  EXPECT_EQ(router.failovers(), 0u);
}

TEST(RouterProberTest, RecoveredShardRejoinsWithoutClientTraffic) {
  TransactionDatabase full = bbsmine::testing::RandomDb(71, 80, 16, 5.0);
  Fleet fleet(full, 2);
  RouterOptions options = Fleet::FastOptions();
  options.probe_interval_ms = 50;
  options.probe_timeout_ms = 500;
  options.fanout_deadline_ms = 2'000;
  RouterService router(fleet.map(), options);
  ASSERT_TRUE(router.Init().ok());

  // No replica here: the shard dies, one request notices (and degrades),
  // and the shard stays down.
  const uint16_t port = fleet.shard(0).server->port();
  fleet.shard(0).server->Stop();
  JsonValue degraded = router.Handle(CountRequest({1}));
  ASSERT_TRUE(degraded.at("ok").AsBool());
  EXPECT_TRUE(degraded.at("degraded").AsBool());
  EXPECT_EQ(router.shards_up(), 1u);

  // The shard comes back on the same port. The prober alone — no client
  // traffic — must mark it up and refresh its routing leaf.
  fleet.shard(0).server = std::make_unique<service::SocketServer>(
      fleet.shard(0).service.get(), [&] {
        service::SocketServerOptions server_options;
        server_options.port = port;
        return server_options;
      }());
  ASSERT_TRUE(fleet.shard(0).server->Start().ok());
  ASSERT_TRUE(WaitUntil([&] { return router.shards_up() == 2; }));

  for (const Itemset& probe : QueryMix(16)) {
    JsonValue routed = router.Handle(CountRequest(probe));
    ASSERT_TRUE(routed.at("ok").AsBool());
    EXPECT_FALSE(routed.at("degraded").AsBool());
    JsonValue oracle = fleet.oracle().Handle(CountRequest(probe));
    EXPECT_EQ(routed.at("count").AsUint(), oracle.at("count").AsUint());
  }
}

}  // namespace
}  // namespace bbsmine::cluster
