#include "core/segmented_bbs.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "testing/reference.h"

namespace bbsmine {
namespace {

std::string TempPrefix(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

void RemoveSegments(const std::string& prefix, size_t count) {
  std::remove((prefix + ".manifest").c_str());
  for (size_t i = 0; i < count; ++i) {
    std::remove((prefix + ".seg" + std::to_string(i)).c_str());
  }
}

BbsConfig SmallConfig() {
  BbsConfig config;
  config.num_bits = 96;
  config.num_hashes = 3;
  return config;
}

TEST(SegmentedBbsTest, CreateValidates) {
  EXPECT_FALSE(SegmentedBbs::Create(SmallConfig(), 0).ok());
  BbsConfig bad;
  bad.num_bits = 0;
  EXPECT_FALSE(SegmentedBbs::Create(bad, 100).ok());
  EXPECT_TRUE(SegmentedBbs::Create(SmallConfig(), 100).ok());
}

TEST(SegmentedBbsTest, SegmentsRollOverAtCapacity) {
  auto bbs = SegmentedBbs::Create(SmallConfig(), 10);
  ASSERT_TRUE(bbs.ok());
  for (int i = 0; i < 25; ++i) {
    ASSERT_TRUE(bbs->Insert({static_cast<ItemId>(i % 7)}).ok());
  }
  EXPECT_EQ(bbs->num_transactions(), 25u);
  EXPECT_EQ(bbs->num_segments(), 3u);
  EXPECT_EQ(bbs->segment(0).num_transactions(), 10u);
  EXPECT_EQ(bbs->segment(1).num_transactions(), 10u);
  EXPECT_EQ(bbs->segment(2).num_transactions(), 5u);
}

TEST(SegmentedBbsTest, CountsMatchMonolithicIndex) {
  TransactionDatabase db = testing::RandomDb(5, 300, 40, 6.0);
  auto segmented = SegmentedBbs::Create(SmallConfig(), 64);
  auto monolithic = BbsIndex::Create(SmallConfig());
  ASSERT_TRUE(segmented.ok() && monolithic.ok());
  ASSERT_TRUE(segmented->InsertAll(db).ok());
  monolithic->InsertAll(db);

  for (Itemset items : std::vector<Itemset>{{1}, {2, 5}, {3, 9, 12}, {}}) {
    EXPECT_EQ(segmented->CountItemSet(items),
              monolithic->CountItemSet(items))
        << ItemsetToString(items);
  }
}

TEST(SegmentedBbsTest, NeverUnderestimates) {
  TransactionDatabase db = testing::RandomDb(9, 400, 30, 5.0);
  auto bbs = SegmentedBbs::Create(SmallConfig(), 50);
  ASSERT_TRUE(bbs.ok());
  ASSERT_TRUE(bbs->InsertAll(db).ok());
  for (Itemset items : std::vector<Itemset>{{1}, {2, 3}, {4, 5, 6}}) {
    EXPECT_GE(bbs->CountItemSet(items), testing::BruteForceSupport(db, items));
  }
}

TEST(SegmentedBbsTest, PerSegmentCountsSumToTotal) {
  TransactionDatabase db = testing::RandomDb(13, 200, 20, 5.0);
  auto bbs = SegmentedBbs::Create(SmallConfig(), 30);
  ASSERT_TRUE(bbs.ok());
  ASSERT_TRUE(bbs->InsertAll(db).ok());

  Itemset items = {1, 2};
  std::vector<size_t> per_segment = bbs->CountPerSegment(items);
  EXPECT_EQ(per_segment.size(), bbs->num_segments());
  size_t sum = 0;
  for (size_t c : per_segment) sum += c;
  EXPECT_EQ(sum, bbs->CountItemSet(items));
}

TEST(SegmentedBbsTest, ExactItemCountsAccumulate) {
  auto bbs = SegmentedBbs::Create(SmallConfig(), 3);
  ASSERT_TRUE(bbs.ok());
  for (int i = 0; i < 10; ++i) ASSERT_TRUE(bbs->Insert({7}).ok());
  EXPECT_EQ(bbs->ExactItemCount(7), 10u);
  EXPECT_EQ(bbs->ExactItemCount(8), 0u);
}

TEST(SegmentedBbsTest, SaveLoadRoundTrip) {
  TransactionDatabase db = testing::RandomDb(17, 120, 30, 5.0);
  auto bbs = SegmentedBbs::Create(SmallConfig(), 40);
  ASSERT_TRUE(bbs.ok());
  ASSERT_TRUE(bbs->InsertAll(db).ok());

  std::string prefix = TempPrefix("bbsmine_segmented_roundtrip");
  ASSERT_TRUE(bbs->Save(prefix).ok());
  auto loaded = SegmentedBbs::Load(prefix);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_TRUE(*loaded == *bbs);
  EXPECT_EQ(loaded->CountItemSet({1, 2}), bbs->CountItemSet({1, 2}));
  RemoveSegments(prefix, bbs->num_segments());
}

TEST(SegmentedBbsTest, LoadDetectsMissingSegment) {
  auto bbs = SegmentedBbs::Create(SmallConfig(), 5);
  ASSERT_TRUE(bbs.ok());
  for (int i = 0; i < 12; ++i) {
    ASSERT_TRUE(bbs->Insert({static_cast<ItemId>(i)}).ok());
  }
  std::string prefix = TempPrefix("bbsmine_segmented_missing");
  ASSERT_TRUE(bbs->Save(prefix).ok());
  std::remove((prefix + ".seg1").c_str());
  auto loaded = SegmentedBbs::Load(prefix);
  EXPECT_FALSE(loaded.ok());
  RemoveSegments(prefix, bbs->num_segments());
}

TEST(SegmentedBbsTest, SaveToUnwritablePathReportsError) {
  auto bbs = SegmentedBbs::Create(SmallConfig(), 4);
  ASSERT_TRUE(bbs.ok());
  for (int i = 0; i < 6; ++i) ASSERT_TRUE(bbs->Insert({1, 2}).ok());
  EXPECT_FALSE(bbs->Save(TempPrefix("no_such_dir") + "/segmented").ok());
}

TEST(SegmentedBbsTest, AppendAfterLoadKeepsCounting) {
  auto bbs = SegmentedBbs::Create(SmallConfig(), 4);
  ASSERT_TRUE(bbs.ok());
  for (int i = 0; i < 6; ++i) ASSERT_TRUE(bbs->Insert({1, 2}).ok());
  std::string prefix = TempPrefix("bbsmine_segmented_append");
  ASSERT_TRUE(bbs->Save(prefix).ok());

  auto loaded = SegmentedBbs::Load(prefix);
  ASSERT_TRUE(loaded.ok());
  ASSERT_TRUE(loaded->Insert({1, 2}).ok());
  EXPECT_EQ(loaded->num_transactions(), 7u);
  EXPECT_GE(loaded->CountItemSet({1, 2}), 7u);
  EXPECT_EQ(loaded->ExactItemCount(1), 7u);
  RemoveSegments(prefix, loaded->num_segments());
}

TEST(SegmentedBbsTest, LoadRejectsMixedGenerationSegmentSet) {
  // Two saves of the same index, with inserts in between, share their
  // sealed segment files but differ in the tail. Splicing the newer
  // generation's tail under the older manifest simulates a save that was
  // interrupted after rewriting segments but before the manifest rename —
  // the manifest's per-segment CRC must refuse the stale mixture even
  // though the spliced file is a perfectly valid BbsIndex on its own.
  auto bbs = SegmentedBbs::Create(SmallConfig(), 5);
  ASSERT_TRUE(bbs.ok());
  for (int i = 0; i < 7; ++i) {
    ASSERT_TRUE(bbs->Insert({static_cast<ItemId>(i)}).ok());
  }
  std::string old_gen = TempPrefix("bbsmine_segmented_gen1");
  ASSERT_TRUE(bbs->Save(old_gen).ok());
  size_t tail = bbs->num_segments() - 1;

  for (int i = 7; i < 10; ++i) {
    ASSERT_TRUE(bbs->Insert({static_cast<ItemId>(i)}).ok());
  }
  std::string new_gen = TempPrefix("bbsmine_segmented_gen2");
  ASSERT_TRUE(bbs->Save(new_gen).ok());
  ASSERT_EQ(bbs->num_segments() - 1, tail) << "tail must not roll over";

  std::filesystem::copy_file(
      new_gen + ".seg" + std::to_string(tail),
      old_gen + ".seg" + std::to_string(tail),
      std::filesystem::copy_options::overwrite_existing);

  auto loaded = SegmentedBbs::Load(old_gen);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kCorruption)
      << loaded.status().ToString();
  EXPECT_NE(loaded.status().ToString().find("mixed-generation"),
            std::string::npos)
      << loaded.status().ToString();

  RemoveSegments(old_gen, bbs->num_segments());
  RemoveSegments(new_gen, bbs->num_segments());
}

}  // namespace
}  // namespace bbsmine
