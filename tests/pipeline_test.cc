// End-to-end pipeline test: generate -> export FIMI -> re-import -> persist
// the database, catalog and index -> reload everything -> mine with every
// algorithm -> ad-hoc queries -> incremental growth. Exercises the whole
// public API surface the way the CLI and examples do.

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "baseline/apriori.h"
#include "baseline/eclat.h"
#include "baseline/fp_tree.h"
#include "core/adhoc.h"
#include "core/approximate.h"
#include "core/bbs_index.h"
#include "core/miner.h"
#include "core/segmented_bbs.h"
#include "datagen/quest_gen.h"
#include "storage/fimi_io.h"
#include "storage/item_catalog.h"
#include "testing/reference.h"

namespace bbsmine {
namespace {

std::string TempPath(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

TEST(PipelineTest, FullWorkflow) {
  // --- Generate --------------------------------------------------------------
  QuestConfig quest;
  quest.num_transactions = 1'500;
  quest.num_items = 400;
  quest.avg_transaction_size = 8;
  quest.avg_pattern_size = 3;
  quest.num_patterns = 80;
  auto generated = GenerateQuest(quest);
  ASSERT_TRUE(generated.ok());

  // --- FIMI round trip ---------------------------------------------------------
  std::string fimi_path = TempPath("bbsmine_pipeline.fimi");
  ASSERT_TRUE(WriteFimi(*generated, fimi_path).ok());
  auto db = ReadFimi(fimi_path);
  ASSERT_TRUE(db.ok());
  ASSERT_EQ(db->size(), generated->size());

  // --- Catalog (named items) ----------------------------------------------------
  ItemCatalog catalog;
  for (ItemId i = 0; i < db->item_universe(); ++i) {
    ASSERT_EQ(catalog.Intern("sku-" + std::to_string(i)), i);
  }
  std::string catalog_path = TempPath("bbsmine_pipeline.catalog");
  ASSERT_TRUE(catalog.Save(catalog_path).ok());

  // --- Persist db + index -------------------------------------------------------
  std::string db_path = TempPath("bbsmine_pipeline.db");
  std::string idx_path = TempPath("bbsmine_pipeline.bbs");
  ASSERT_TRUE(db->Save(db_path).ok());

  BbsConfig config;
  config.num_bits = 256;
  config.num_hashes = 3;
  auto built = BbsIndex::Create(config);
  ASSERT_TRUE(built.ok());
  built->InsertAll(*db);
  ASSERT_TRUE(built->Save(idx_path).ok());

  // --- Reload ---------------------------------------------------------------------
  auto loaded_db = TransactionDatabase::Load(db_path);
  auto bbs = BbsIndex::Load(idx_path);
  auto loaded_catalog = ItemCatalog::Load(catalog_path);
  ASSERT_TRUE(loaded_db.ok() && bbs.ok() && loaded_catalog.ok());
  EXPECT_EQ(loaded_catalog->NameOf(3), "sku-3");

  // --- All six exact algorithms agree ----------------------------------------------
  double min_support = 0.01;
  uint64_t tau = AbsoluteThreshold(min_support, loaded_db->size());
  std::vector<Itemset> reference =
      testing::ItemsetsOf(testing::BruteForceMine(*loaded_db, tau));
  ASSERT_FALSE(reference.empty());

  for (Algorithm algorithm : {Algorithm::kSFS, Algorithm::kSFP,
                              Algorithm::kDFS, Algorithm::kDFP}) {
    MineConfig mine;
    mine.algorithm = algorithm;
    mine.min_support = min_support;
    MiningResult result = MineFrequentPatterns(*loaded_db, *bbs, mine);
    result.SortPatterns();
    EXPECT_EQ(testing::ItemsetsOf(result.patterns), reference)
        << AlgorithmName(algorithm);
  }
  {
    AprioriConfig aps;
    aps.min_support = min_support;
    MiningResult result = MineApriori(*loaded_db, aps);
    result.SortPatterns();
    EXPECT_EQ(testing::ItemsetsOf(result.patterns), reference);
  }
  {
    FpGrowthConfig fps;
    fps.min_support = min_support;
    MiningResult result = MineFpGrowth(*loaded_db, fps);
    result.SortPatterns();
    EXPECT_EQ(testing::ItemsetsOf(result.patterns), reference);
  }
  {
    EclatConfig eclat;
    eclat.min_support = min_support;
    MiningResult result = MineEclat(*loaded_db, eclat);
    result.SortPatterns();
    EXPECT_EQ(testing::ItemsetsOf(result.patterns), reference);
  }

  // --- Approximate mining covers the reference ---------------------------------------
  {
    Itemset universe(loaded_db->item_universe());
    for (ItemId i = 0; i < loaded_db->item_universe(); ++i) universe[i] = i;
    ApproxMineConfig approx;
    approx.min_support = min_support;
    std::vector<ApproxPattern> patterns =
        MineApproximate(*bbs, approx, universe);
    std::set<Itemset> found;
    for (const ApproxPattern& p : patterns) found.insert(p.items);
    for (const Itemset& items : reference) {
      EXPECT_TRUE(found.contains(items)) << ItemsetToString(items);
    }
  }

  // --- Segmented index agrees with the monolithic one ---------------------------------
  {
    auto segmented = SegmentedBbs::Create(config, 400);
    ASSERT_TRUE(segmented.ok());
    for (size_t t = 0; t < loaded_db->size(); ++t) {
      ASSERT_TRUE(segmented->Insert(loaded_db->At(t).items).ok());
    }
    EXPECT_EQ(segmented->num_segments(), 4u);
    for (const Itemset& items : reference) {
      EXPECT_GE(segmented->CountItemSet(items),
                testing::BruteForceSupport(*loaded_db, items));
    }
  }

  // --- Ad-hoc constrained query ---------------------------------------------------------
  {
    BitVector evens = MakeConstraintSlice(
        *loaded_db, [](const Transaction& txn) { return txn.tid % 2 == 0; });
    Itemset target = reference.front();
    AdhocQueryResult q = CountPatternExact(*loaded_db, *bbs, target, &evens);
    uint64_t expected = 0;
    for (size_t t = 0; t < loaded_db->size(); ++t) {
      if (loaded_db->At(t).tid % 2 == 0 &&
          IsSubsetOf(target, loaded_db->At(t).items)) {
        ++expected;
      }
    }
    EXPECT_EQ(q.exact, expected);
  }

  // --- Incremental growth: index mirrors the database without rebuild ----------------
  {
    quest.seed = 777;
    quest.num_transactions = 300;
    auto more = GenerateQuest(quest);
    ASSERT_TRUE(more.ok());
    for (size_t t = 0; t < more->size(); ++t) {
      loaded_db->Append(more->At(t).items);
      bbs->Insert(more->At(t).items);
    }
    MineConfig mine;
    mine.algorithm = Algorithm::kDFP;
    mine.min_support = min_support;
    MiningResult incremental = MineFrequentPatterns(*loaded_db, *bbs, mine);
    incremental.SortPatterns();
    uint64_t new_tau = AbsoluteThreshold(min_support, loaded_db->size());
    EXPECT_EQ(testing::ItemsetsOf(incremental.patterns),
              testing::ItemsetsOf(
                  testing::BruteForceMine(*loaded_db, new_tau)));
  }

  std::remove(fimi_path.c_str());
  std::remove(db_path.c_str());
  std::remove(idx_path.c_str());
  std::remove(catalog_path.c_str());
}

}  // namespace
}  // namespace bbsmine
