// Tests for the deterministic fault-injection harness and the failure
// branches it exists to reach: atomic file replacement under ENOSPC and
// short writes, WAL append repair, checkpoint failures, and crash-points.
//
// These tests mutate process-global fault state (FaultInjector::Arm), so
// they live in their own binary, labeled `faults` in ctest.

#include <gtest/gtest.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "core/segmented_bbs.h"
#include "service/durability.h"
#include "service/snapshot.h"
#include "service/wal.h"
#include "util/fault_injector.h"
#include "util/file_io.h"
#include "util/status.h"

namespace bbsmine {
namespace {

std::string TempPath(const std::string& name) {
  return (std::filesystem::temp_directory_path() /
          (std::to_string(::getpid()) + "_" + name))
      .string();
}

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

/// Disarms around every test so a failing expectation cannot leak an armed
/// registry into the next test.
class FaultInjectionTest : public ::testing::Test {
 protected:
  void SetUp() override { FaultInjector::Disarm(); }
  void TearDown() override { FaultInjector::Disarm(); }
};

TEST_F(FaultInjectionTest, DisarmedHitsAreFreeAndOk) {
  EXPECT_FALSE(FaultInjector::Armed());
  EXPECT_TRUE(FaultInjector::Hit("anything.at.all").ok());
  size_t allowed = 0;
  EXPECT_TRUE(FaultInjector::HitWrite("any.write", 100, &allowed).ok());
  EXPECT_EQ(allowed, 100u);
}

TEST_F(FaultInjectionTest, ArmRejectsMalformedSpecs) {
  EXPECT_EQ(FaultInjector::Arm("no-colon").code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(FaultInjector::Arm("p:unknown_action=1").code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(FaultInjector::Arm("p:fail_after=notanumber").code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(FaultInjector::Arm("p:err=ENOTREAL").code(),
            StatusCode::kInvalidArgument);
  EXPECT_FALSE(FaultInjector::Armed());
}

TEST_F(FaultInjectionTest, FailAfterLetsEarlyHitsThrough) {
  ASSERT_TRUE(FaultInjector::Arm("p:fail_after=2").ok());
  EXPECT_TRUE(FaultInjector::Hit("p").ok());
  EXPECT_TRUE(FaultInjector::Hit("p").ok());
  EXPECT_EQ(FaultInjector::Hit("p").code(), StatusCode::kIoError);
  EXPECT_EQ(FaultInjector::Hit("p").code(), StatusCode::kIoError);
  EXPECT_EQ(FaultInjector::HitCount("p"), 4u);
  // Unrelated points are untouched.
  EXPECT_TRUE(FaultInjector::Hit("q").ok());
}

TEST_F(FaultInjectionTest, ErrnoNameControlsTheReportedError) {
  ASSERT_TRUE(FaultInjector::Arm("p:err=ENOSPC").ok());
  Status status = FaultInjector::Hit("p");
  EXPECT_EQ(status.code(), StatusCode::kIoError);
  EXPECT_NE(status.message().find("errno 28"), std::string::npos)
      << status.ToString();
}

TEST_F(FaultInjectionTest, SemicolonSeparatedSpecsArmMultiplePoints) {
  ASSERT_TRUE(FaultInjector::Arm("a:fail_after=1;b:err=EACCES").ok());
  EXPECT_TRUE(FaultInjector::Hit("a").ok());
  EXPECT_EQ(FaultInjector::Hit("a").code(), StatusCode::kIoError);
  EXPECT_NE(FaultInjector::Hit("b").message().find("errno 13"),
            std::string::npos);
}

// -- WriteBinaryFile: the atomic-replace contract under injected faults ----

TEST_F(FaultInjectionTest, WriteFileOpenFailureCreatesNothing) {
  std::string path = TempPath("fi_open");
  ASSERT_TRUE(FaultInjector::Arm("file.open:err=EACCES").ok());
  EXPECT_EQ(WriteBinaryFile(path, "payload").code(), StatusCode::kIoError);
  EXPECT_FALSE(std::filesystem::exists(path));
  EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));
}

TEST_F(FaultInjectionTest, WriteFailureLeavesPreviousContentIntact) {
  std::string path = TempPath("fi_write");
  ASSERT_TRUE(WriteBinaryFile(path, "generation-1").ok());
  ASSERT_TRUE(FaultInjector::Arm("file.write:err=ENOSPC").ok());
  Status status = WriteBinaryFile(path, "generation-2");
  EXPECT_EQ(status.code(), StatusCode::kIoError);
  EXPECT_NE(status.message().find("errno 28"), std::string::npos);
  FaultInjector::Disarm();
  EXPECT_EQ(ReadFile(path), "generation-1")
      << "a failed replace must not touch the destination";
  EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));
}

TEST_F(FaultInjectionTest, ShortWritePersistsPrefixOnlyInTheTempFile) {
  // The ENOSPC short-write regression: the tmp file may hold a torn
  // prefix, but the destination must still be the previous generation.
  std::string path = TempPath("fi_short");
  ASSERT_TRUE(WriteBinaryFile(path, "old").ok());
  ASSERT_TRUE(
      FaultInjector::Arm("file.write:err=ENOSPC,short_write=4").ok());
  EXPECT_EQ(WriteBinaryFile(path, "new-content-that-is-longer").code(),
            StatusCode::kIoError);
  FaultInjector::Disarm();
  EXPECT_EQ(ReadFile(path), "old");
}

TEST_F(FaultInjectionTest, RenameFailureLeavesPreviousContentIntact) {
  std::string path = TempPath("fi_rename");
  ASSERT_TRUE(WriteBinaryFile(path, "generation-1").ok());
  ASSERT_TRUE(FaultInjector::Arm("file.rename:err=EIO").ok());
  EXPECT_EQ(WriteBinaryFile(path, "generation-2").code(),
            StatusCode::kIoError);
  FaultInjector::Disarm();
  EXPECT_EQ(ReadFile(path), "generation-1");
  EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));
}

TEST_F(FaultInjectionTest, FsyncFailureIsSurfacedToTheCaller) {
  std::string path = TempPath("fi_fsync");
  ASSERT_TRUE(FaultInjector::Arm("file.fsync:err=EIO").ok());
  EXPECT_EQ(WriteBinaryFile(path, "data").code(), StatusCode::kIoError);
  FaultInjector::Disarm();
  EXPECT_FALSE(std::filesystem::exists(path));
}

// -- WAL fault points -------------------------------------------------------

TEST_F(FaultInjectionTest, WalAppendFailureRepairsTheLog) {
  std::string path = TempPath("fi_wal_append");
  auto wal = service::WriteAheadLog::Create(path, 0, service::WalOptions());
  ASSERT_TRUE(wal.ok());
  ASSERT_TRUE(wal->Append({{1, 2}}).ok());

  ASSERT_TRUE(
      FaultInjector::Arm("wal.append:err=ENOSPC,short_write=6").ok());
  EXPECT_EQ(wal->Append({{3, 4}}).code(), StatusCode::kIoError);
  FaultInjector::Disarm();

  // The reported failure truncated the partial frame away; the log accepts
  // appends again and replay sees exactly the acknowledged records.
  ASSERT_TRUE(wal->Append({{5, 6}}).ok());
  std::vector<std::vector<Itemset>> replayed;
  auto stats = service::WriteAheadLog::Replay(
      path, [&](const std::vector<Itemset>& batch) {
        replayed.push_back(batch);
        return Status::Ok();
      });
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->torn_tail_bytes, 0u);
  ASSERT_EQ(replayed.size(), 2u);
  EXPECT_EQ(replayed[0], (std::vector<Itemset>{{1, 2}}));
  EXPECT_EQ(replayed[1], (std::vector<Itemset>{{5, 6}}));
}

TEST_F(FaultInjectionTest, WalSyncFaultFailsAppendUnderAlwaysPolicy) {
  std::string path = TempPath("fi_wal_sync");
  auto wal = service::WriteAheadLog::Create(path, 0, service::WalOptions());
  ASSERT_TRUE(wal.ok());
  ASSERT_TRUE(FaultInjector::Arm("wal.sync:err=EIO").ok());
  EXPECT_EQ(wal->Append({{1}}).code(), StatusCode::kIoError);
}

TEST_F(FaultInjectionTest, WalTruncateFaultIsSurfaced) {
  std::string path = TempPath("fi_wal_trunc");
  auto wal = service::WriteAheadLog::Create(path, 0, service::WalOptions());
  ASSERT_TRUE(wal.ok());
  ASSERT_TRUE(FaultInjector::Arm("wal.truncate:err=EIO").ok());
  EXPECT_EQ(wal->Truncate(5).code(), StatusCode::kIoError);
  FaultInjector::Disarm();
  // The failed truncate left the original log in place.
  auto base = service::WriteAheadLog::ReadBaseTxnCount(path);
  ASSERT_TRUE(base.ok());
  EXPECT_EQ(*base, 0u);
}

// -- Checkpoint fault points ------------------------------------------------

/// Builds a durable state with a few inserts, returning the directory.
std::string SeedDurableDir(const std::string& name) {
  BbsConfig config;
  config.num_bits = 256;
  config.num_hashes = 3;
  std::string dir = TempPath(name);
  std::filesystem::remove_all(dir);
  auto opened = service::DurabilityManager::Open(
      service::DurabilityOptions{dir, service::WalOptions(), 0},
      SegmentedBbs::Create(config, 4).value(), nullptr);
  EXPECT_TRUE(opened.ok());
  auto manager =
      service::SnapshotManager::FromIndex((*opened)->TakeRecoveredIndex())
          .value();
  for (ItemId i = 1; i <= 5; ++i) {
    EXPECT_TRUE((*opened)->LogInsert({{i, static_cast<ItemId>(i + 1)}}).ok());
    EXPECT_TRUE(manager.Insert({i, static_cast<ItemId>(i + 1)}).ok());
  }
  // Try a checkpoint with the currently-armed faults (callers arm first).
  Status checkpointed = (*opened)->Checkpoint(manager.Acquire(), nullptr);
  EXPECT_EQ(checkpointed.ok(), !FaultInjector::Armed())
      << checkpointed.ToString();
  return dir;
}

TEST_F(FaultInjectionTest, CheckpointRenameFaultLosesNothing) {
  ASSERT_TRUE(FaultInjector::Arm("checkpoint.rename:err=EIO").ok());
  std::string dir = SeedDurableDir("fi_ckpt_rename");
  FaultInjector::Disarm();
  // The checkpoint failed before its manifest landed, so recovery comes
  // entirely from the WAL — and must still see all five inserts.
  BbsConfig config;
  config.num_bits = 256;
  config.num_hashes = 3;
  auto reopened = service::DurabilityManager::Open(
      service::DurabilityOptions{dir, service::WalOptions(), 0},
      SegmentedBbs::Create(config, 4).value(), nullptr);
  ASSERT_TRUE(reopened.ok());
  EXPECT_FALSE((*reopened)->recovery().checkpoint_loaded);
  EXPECT_EQ((*reopened)->TakeRecoveredIndex().num_transactions(), 5u);
}

TEST_F(FaultInjectionTest, CheckpointSaveFaultLosesNothing) {
  ASSERT_TRUE(FaultInjector::Arm("checkpoint.save:err=EIO").ok());
  std::string dir = SeedDurableDir("fi_ckpt_save");
  FaultInjector::Disarm();
  BbsConfig config;
  config.num_bits = 256;
  config.num_hashes = 3;
  auto reopened = service::DurabilityManager::Open(
      service::DurabilityOptions{dir, service::WalOptions(), 0},
      SegmentedBbs::Create(config, 4).value(), nullptr);
  ASSERT_TRUE(reopened.ok());
  EXPECT_EQ((*reopened)->TakeRecoveredIndex().num_transactions(), 5u);
}

// -- Crash points -----------------------------------------------------------

TEST_F(FaultInjectionTest, CrashAfterTerminatesTheProcessAtTheBoundary) {
  pid_t pid = fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    // Child: arm a crash-point two hits out, then walk into it.
    if (!FaultInjector::Arm("boom:crash_after=2").ok()) ::_exit(99);
    if (!FaultInjector::Hit("boom").ok()) ::_exit(98);
    if (!FaultInjector::Hit("boom").ok()) ::_exit(97);
    (void)FaultInjector::Hit("boom");  // does not return
    ::_exit(96);
  }
  int wstatus = 0;
  ASSERT_EQ(::waitpid(pid, &wstatus, 0), pid);
  ASSERT_TRUE(WIFEXITED(wstatus));
  EXPECT_EQ(WEXITSTATUS(wstatus), 137);
}

TEST_F(FaultInjectionTest, CrashDuringWalAppendLeavesRecoverableLog) {
  std::string path = TempPath("fi_crash_wal");
  {
    auto wal = service::WriteAheadLog::Create(path, 0, service::WalOptions());
    ASSERT_TRUE(wal.ok());
    ASSERT_TRUE(wal->Append({{1, 2}}).ok());
  }
  pid_t pid = fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    // Child: the second append dies at the fault boundary, exactly like a
    // kill -9 between write() and acknowledgment.
    if (!FaultInjector::Arm("wal.append:crash_after=0").ok()) ::_exit(99);
    auto wal =
        service::WriteAheadLog::OpenForAppend(path, service::WalOptions());
    if (!wal.ok()) ::_exit(98);
    (void)wal->Append({{3, 4}});  // does not return
    ::_exit(97);
  }
  int wstatus = 0;
  ASSERT_EQ(::waitpid(pid, &wstatus, 0), pid);
  ASSERT_TRUE(WIFEXITED(wstatus));
  ASSERT_EQ(WEXITSTATUS(wstatus), 137);

  // Parent: the log must replay cleanly — first record intact.
  std::vector<std::vector<Itemset>> replayed;
  auto stats = service::WriteAheadLog::Replay(
      path, [&](const std::vector<Itemset>& batch) {
        replayed.push_back(batch);
        return Status::Ok();
      });
  ASSERT_TRUE(stats.ok());
  ASSERT_GE(replayed.size(), 1u);
  EXPECT_EQ(replayed[0], (std::vector<Itemset>{{1, 2}}));
}

}  // namespace
}  // namespace bbsmine
