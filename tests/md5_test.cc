#include "util/md5.h"

#include <gtest/gtest.h>

#include <string>

namespace bbsmine {
namespace {

std::string HexOf(std::string_view s) { return Md5::ToHex(Md5::Hash(s)); }

// The full RFC 1321 appendix A.5 test suite.
TEST(Md5Test, Rfc1321TestVectors) {
  EXPECT_EQ(HexOf(""), "d41d8cd98f00b204e9800998ecf8427e");
  EXPECT_EQ(HexOf("a"), "0cc175b9c0f1b6a831c399e269772661");
  EXPECT_EQ(HexOf("abc"), "900150983cd24fb0d6963f7d28e17f72");
  EXPECT_EQ(HexOf("message digest"), "f96b697d7cb7938d525a2f31aaf161d0");
  EXPECT_EQ(HexOf("abcdefghijklmnopqrstuvwxyz"),
            "c3fcd3d76192e4007dfb496cca67e13b");
  EXPECT_EQ(
      HexOf("ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789"),
      "d174ab98d277d9f5a5611c2c9f419d9f");
  EXPECT_EQ(HexOf("1234567890123456789012345678901234567890123456789012345678"
                  "9012345678901234567890"),
            "57edf4a22be3c955ac49da2e2107b67a");
}

TEST(Md5Test, IncrementalMatchesOneShot) {
  std::string message =
      "the quick brown fox jumps over the lazy dog, repeatedly, to cross "
      "block boundaries in the incremental interface";
  Md5Digest oneshot = Md5::Hash(message);

  // Feed in uneven chunks that straddle the 64-byte block boundary.
  for (size_t chunk : {1, 3, 7, 63, 64, 65}) {
    Md5 md5;
    for (size_t pos = 0; pos < message.size(); pos += chunk) {
      md5.Update(message.substr(pos, chunk));
    }
    EXPECT_EQ(md5.Finish(), oneshot) << "chunk size " << chunk;
  }
}

TEST(Md5Test, ExactBlockSizedInputs) {
  // 55/56/57 bytes cross the padding split; 64/128 are exact blocks.
  for (size_t len : {55u, 56u, 57u, 63u, 64u, 65u, 127u, 128u}) {
    std::string message(len, 'x');
    Md5 incremental;
    incremental.Update(message);
    EXPECT_EQ(incremental.Finish(), Md5::Hash(message)) << "length " << len;
  }
}

TEST(Md5Test, KnownDigestOfLongInput) {
  // One million 'a' characters (classic extended vector).
  std::string chunk(1000, 'a');
  Md5 md5;
  for (int i = 0; i < 1000; ++i) md5.Update(chunk);
  EXPECT_EQ(Md5::ToHex(md5.Finish()), "7707d6ae4e027c70eea2a935c2296f21");
}

TEST(Md5Test, DistinctInputsDistinctDigests) {
  EXPECT_NE(Md5::Hash("item-1"), Md5::Hash("item-2"));
  EXPECT_NE(Md5::Hash("0"), Md5::Hash("00"));
}

TEST(Md5Test, ToHexFormatsAllBytes) {
  Md5Digest digest{};
  digest[0] = 0xab;
  digest[15] = 0x01;
  std::string hex = Md5::ToHex(digest);
  ASSERT_EQ(hex.size(), 32u);
  EXPECT_EQ(hex.substr(0, 2), "ab");
  EXPECT_EQ(hex.substr(30, 2), "01");
}

}  // namespace
}  // namespace bbsmine
