#include "storage/page_cache.h"

#include <gtest/gtest.h>

namespace bbsmine {
namespace {

TEST(PageCacheTest, MissThenHit) {
  PageCache cache(4);
  IoStats io;
  EXPECT_FALSE(cache.Access(1, /*sequential=*/false, &io));
  EXPECT_EQ(io.random_reads, 1u);
  EXPECT_TRUE(cache.Access(1, false, &io));
  EXPECT_EQ(io.random_reads, 1u) << "hits must not charge I/O";
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 1u);
}

TEST(PageCacheTest, SequentialFlagRoutesCharge) {
  PageCache cache(4);
  IoStats io;
  cache.Access(9, /*sequential=*/true, &io);
  EXPECT_EQ(io.sequential_reads, 1u);
  EXPECT_EQ(io.random_reads, 0u);
}

TEST(PageCacheTest, EvictsLeastRecentlyUsed) {
  PageCache cache(2);
  IoStats io;
  cache.Access(1, false, &io);
  cache.Access(2, false, &io);
  cache.Access(1, false, &io);  // 1 now MRU, 2 is LRU
  cache.Access(3, false, &io);  // evicts 2
  EXPECT_TRUE(cache.Access(1, false, &io));
  EXPECT_FALSE(cache.Access(2, false, &io)) << "2 must have been evicted";
  EXPECT_EQ(cache.resident_blocks(), 2u);
}

TEST(PageCacheTest, ZeroCapacityAlwaysMisses) {
  PageCache cache(0);
  IoStats io;
  EXPECT_FALSE(cache.Access(5, false, &io));
  EXPECT_FALSE(cache.Access(5, false, &io));
  EXPECT_EQ(io.random_reads, 2u);
  EXPECT_EQ(cache.resident_blocks(), 0u);
}

TEST(PageCacheTest, NullIoStatsIsAllowed) {
  PageCache cache(2);
  EXPECT_FALSE(cache.Access(1, false, nullptr));
  EXPECT_TRUE(cache.Access(1, false, nullptr));
}

TEST(PageCacheTest, ClearDropsResidency) {
  PageCache cache(4);
  IoStats io;
  cache.Access(1, false, &io);
  cache.Clear();
  EXPECT_EQ(cache.resident_blocks(), 0u);
  EXPECT_FALSE(cache.Access(1, false, &io));
}

}  // namespace
}  // namespace bbsmine
