#include "storage/page_cache.h"

#include <gtest/gtest.h>

namespace bbsmine {
namespace {

TEST(PageCacheTest, MissThenHit) {
  PageCache cache(4);
  IoStats io;
  EXPECT_FALSE(cache.Access(1, /*sequential=*/false, &io));
  EXPECT_EQ(io.random_reads, 1u);
  EXPECT_TRUE(cache.Access(1, false, &io));
  EXPECT_EQ(io.random_reads, 1u) << "hits must not charge I/O";
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 1u);
}

TEST(PageCacheTest, SequentialFlagRoutesCharge) {
  PageCache cache(4);
  IoStats io;
  cache.Access(9, /*sequential=*/true, &io);
  EXPECT_EQ(io.sequential_reads, 1u);
  EXPECT_EQ(io.random_reads, 0u);
}

TEST(PageCacheTest, EvictsLeastRecentlyUsed) {
  PageCache cache(2);
  IoStats io;
  cache.Access(1, false, &io);
  cache.Access(2, false, &io);
  cache.Access(1, false, &io);  // 1 now MRU, 2 is LRU
  cache.Access(3, false, &io);  // evicts 2
  EXPECT_TRUE(cache.Access(1, false, &io));
  EXPECT_FALSE(cache.Access(2, false, &io)) << "2 must have been evicted";
  EXPECT_EQ(cache.resident_blocks(), 2u);
}

TEST(PageCacheTest, ZeroCapacityAlwaysMisses) {
  PageCache cache(0);
  IoStats io;
  EXPECT_FALSE(cache.Access(5, false, &io));
  EXPECT_FALSE(cache.Access(5, false, &io));
  EXPECT_EQ(io.random_reads, 2u);
  EXPECT_EQ(cache.resident_blocks(), 0u);
}

TEST(PageCacheTest, NullIoStatsIsAllowed) {
  PageCache cache(2);
  EXPECT_FALSE(cache.Access(1, false, nullptr));
  EXPECT_TRUE(cache.Access(1, false, nullptr));
}

TEST(PageCacheTest, CountersPinScriptedAccessPattern) {
  // Scripted access pattern against a 2-block pool; every access below is
  // annotated with the expected outcome. Pins both the per-access results
  // and the cumulative Counters snapshot.
  PageCache cache(2);
  IoStats io;
  EXPECT_FALSE(cache.Access(1, false, &io));  // miss: cold
  EXPECT_FALSE(cache.Access(2, false, &io));  // miss: cold
  EXPECT_TRUE(cache.Access(1, false, &io));   // hit (1 now MRU)
  EXPECT_FALSE(cache.Access(3, false, &io));  // miss: evicts LRU block 2
  EXPECT_TRUE(cache.Access(1, false, &io));   // hit
  EXPECT_TRUE(cache.Access(3, false, &io));   // hit
  EXPECT_FALSE(cache.Access(2, false, &io));  // miss: 2 was evicted
  EXPECT_TRUE(cache.Access(2, false, &io));   // hit

  PageCache::Counters counters = cache.counters();
  EXPECT_EQ(counters.hits, 4u);
  EXPECT_EQ(counters.misses, 4u);
  EXPECT_EQ(counters.accesses(), 8u);
  EXPECT_DOUBLE_EQ(counters.hit_rate(), 0.5);
  EXPECT_EQ(counters.hits, cache.hits());
  EXPECT_EQ(counters.misses, cache.misses());
  EXPECT_EQ(io.random_reads, 4u) << "only misses charge I/O";
}

TEST(PageCacheTest, CountersEmptyCacheHasZeroHitRate) {
  PageCache cache(2);
  PageCache::Counters counters = cache.counters();
  EXPECT_EQ(counters.accesses(), 0u);
  EXPECT_EQ(counters.hit_rate(), 0.0);
}

TEST(PageCacheTest, ClearDropsResidency) {
  PageCache cache(4);
  IoStats io;
  cache.Access(1, false, &io);
  cache.Clear();
  EXPECT_EQ(cache.resident_blocks(), 0u);
  EXPECT_FALSE(cache.Access(1, false, &io));
}

}  // namespace
}  // namespace bbsmine
