// Integration: mining the dynamic web-log workload — all algorithms agree
// day after day while the BBS absorbs each batch incrementally, and rules /
// condensed patterns behave downstream.

#include <gtest/gtest.h>

#include "baseline/apriori.h"
#include "baseline/fp_tree.h"
#include "core/miner.h"
#include "core/pattern_sets.h"
#include "core/rules.h"
#include "datagen/weblog_gen.h"
#include "testing/reference.h"

namespace bbsmine {
namespace {

TEST(WebLogMiningTest, AllAlgorithmsAgreeAcrossDays) {
  WebLogConfig weblog;
  weblog.num_files = 500;
  weblog.transactions_per_day = 800;
  weblog.num_bundles = 40;
  auto gen = WebLogGenerator::Create(weblog);
  ASSERT_TRUE(gen.ok());

  BbsConfig config;
  config.num_bits = 200;
  config.num_hashes = 3;
  auto bbs = BbsIndex::Create(config);
  ASSERT_TRUE(bbs.ok());

  TransactionDatabase db;
  double min_support = 0.02;

  for (int day = 1; day <= 3; ++day) {
    size_t before = db.size();
    gen->GenerateDay(&db);
    for (size_t t = before; t < db.size(); ++t) bbs->Insert(db.At(t).items);

    AprioriConfig aps;
    aps.min_support = min_support;
    MiningResult apriori = MineApriori(db, aps);
    apriori.SortPatterns();
    std::vector<Itemset> reference = testing::ItemsetsOf(apriori.patterns);
    ASSERT_FALSE(reference.empty()) << "day " << day;

    FpGrowthConfig fps;
    fps.min_support = min_support;
    MiningResult fp = MineFpGrowth(db, fps);
    fp.SortPatterns();
    EXPECT_EQ(testing::ItemsetsOf(fp.patterns), reference) << "day " << day;

    MineConfig mine;
    mine.algorithm = Algorithm::kDFP;
    mine.min_support = min_support;
    MiningResult dfp = MineFrequentPatterns(db, *bbs, mine);
    dfp.SortPatterns();
    EXPECT_EQ(testing::ItemsetsOf(dfp.patterns), reference) << "day " << day;
  }
}

TEST(WebLogMiningTest, BundlesProduceMultiItemPatternsAndRules) {
  WebLogConfig weblog;
  weblog.num_files = 400;
  weblog.transactions_per_day = 2'000;
  weblog.num_bundles = 30;
  weblog.bundle_prob = 0.6;
  auto gen = WebLogGenerator::Create(weblog);
  ASSERT_TRUE(gen.ok());
  TransactionDatabase db;
  gen->GenerateDay(&db);

  FpGrowthConfig fps;
  fps.min_support = 0.02;
  MiningResult mined = MineFpGrowth(db, fps);
  mined.SortPatterns();

  size_t multi = 0;
  for (const Pattern& p : mined.patterns) multi += p.items.size() >= 2;
  EXPECT_GT(multi, 10u) << "bundles must create co-access patterns";

  // Rules over bundle members should reach high confidence.
  RuleConfig rules_config;
  rules_config.min_confidence = 0.6;
  std::vector<AssociationRule> rules =
      GenerateRules(mined, db.size(), rules_config);
  EXPECT_FALSE(rules.empty());

  // The condensations shrink the collection.
  std::vector<Pattern> closed = ClosedPatterns(mined.patterns);
  std::vector<Pattern> maximal = MaximalPatterns(mined.patterns);
  EXPECT_LE(maximal.size(), closed.size());
  EXPECT_LE(closed.size(), mined.patterns.size());
  EXPECT_LT(maximal.size(), mined.patterns.size());
}

TEST(WebLogMiningTest, ChurnShiftsFrequentSingletons) {
  WebLogConfig weblog;
  weblog.num_files = 300;
  weblog.transactions_per_day = 1'500;
  weblog.daily_churn = 0.5;  // aggressive churn for the test
  weblog.num_bundles = 0;    // isolate the singleton story
  auto gen = WebLogGenerator::Create(weblog);
  ASSERT_TRUE(gen.ok());

  TransactionDatabase day1;
  gen->GenerateDay(&day1);
  TransactionDatabase day2;
  // A few extra days of churn between snapshots.
  gen->GenerateDay(&day2);
  day2 = TransactionDatabase();
  gen->GenerateDay(&day2);

  auto frequent_items = [](const TransactionDatabase& db) {
    FpGrowthConfig config;
    config.min_support = 0.02;
    std::set<ItemId> items;
    for (const Pattern& p : MineFpGrowth(db, config).patterns) {
      if (p.items.size() == 1) items.insert(p.items[0]);
    }
    return items;
  };
  std::set<ItemId> f1 = frequent_items(day1);
  std::set<ItemId> f2 = frequent_items(day2);
  ASSERT_FALSE(f1.empty());
  ASSERT_FALSE(f2.empty());
  std::vector<ItemId> stayed;
  std::set_intersection(f1.begin(), f1.end(), f2.begin(), f2.end(),
                        std::back_inserter(stayed));
  // With 50% churn twice, a substantial share of hot files must rotate.
  EXPECT_LT(stayed.size(), f1.size());
}

}  // namespace
}  // namespace bbsmine
