#include "baseline/apriori.h"

#include <gtest/gtest.h>

#include "testing/reference.h"

namespace bbsmine {
namespace {

TEST(AprioriCandidateGenTest, JoinsSharedPrefixes) {
  std::vector<Itemset> frequent = {{1, 2}, {1, 3}, {1, 4}, {2, 3}};
  std::vector<Itemset> candidates = AprioriGenerateCandidates(frequent);
  // Joins: {1,2}+{1,3} -> {1,2,3} (pruned? needs {2,3}: present -> kept),
  //        {1,2}+{1,4} -> {1,2,4} (needs {2,4}: absent -> pruned),
  //        {1,3}+{1,4} -> {1,3,4} (needs {3,4}: absent -> pruned).
  EXPECT_EQ(candidates, (std::vector<Itemset>{{1, 2, 3}}));
}

TEST(AprioriCandidateGenTest, OneItemsetsJoinFreely) {
  std::vector<Itemset> frequent = {{1}, {2}, {3}};
  std::vector<Itemset> candidates = AprioriGenerateCandidates(frequent);
  EXPECT_EQ(candidates,
            (std::vector<Itemset>{{1, 2}, {1, 3}, {2, 3}}));
}

TEST(AprioriCandidateGenTest, EmptyInput) {
  EXPECT_TRUE(AprioriGenerateCandidates({}).empty());
}

TEST(AprioriTest, MatchesBruteForceOnRandomData) {
  for (uint64_t seed : {1u, 2u, 3u}) {
    TransactionDatabase db = testing::RandomDb(seed, 300, 40, 6.0);
    AprioriConfig config;
    config.min_support = 0.02;
    MiningResult result = MineApriori(db, config);
    result.SortPatterns();
    std::vector<Pattern> truth = testing::BruteForceMine(
        db, AbsoluteThreshold(config.min_support, db.size()));
    ASSERT_EQ(testing::ItemsetsOf(result.patterns),
              testing::ItemsetsOf(truth));
    for (size_t i = 0; i < truth.size(); ++i) {
      EXPECT_EQ(result.patterns[i].support, truth[i].support);
    }
  }
}

TEST(AprioriTest, OneScanPerLevelWhenMemoryUnlimited) {
  TransactionDatabase db = testing::RandomDb(7, 200, 20, 5.0);
  AprioriConfig config;
  config.min_support = 0.03;
  MiningResult result = MineApriori(db, config);
  // Longest frequent pattern length bounds the level count.
  size_t max_len = 0;
  for (const Pattern& p : result.patterns) {
    max_len = std::max(max_len, p.items.size());
  }
  // One scan for L1, one per candidate level (which may extend one past the
  // last non-empty level).
  EXPECT_GE(result.stats.db_scans, max_len);
  EXPECT_LE(result.stats.db_scans, max_len + 2);
}

TEST(AprioriTest, MemoryBudgetForcesExtraScansSameAnswer) {
  TransactionDatabase db = testing::RandomDb(11, 300, 25, 6.0);
  AprioriConfig unlimited;
  unlimited.min_support = 0.02;
  MiningResult full = MineApriori(db, unlimited);

  AprioriConfig tight = unlimited;
  tight.memory_budget_bytes = 200;  // a handful of candidates per batch
  MiningResult batched = MineApriori(db, tight);

  EXPECT_GT(batched.stats.db_scans, full.stats.db_scans);
  full.SortPatterns();
  batched.SortPatterns();
  ASSERT_EQ(testing::ItemsetsOf(full.patterns),
            testing::ItemsetsOf(batched.patterns));
}

TEST(AprioriTest, EmptyDatabase) {
  TransactionDatabase db;
  MiningResult result = MineApriori(db, AprioriConfig{});
  EXPECT_TRUE(result.patterns.empty());
}

TEST(AprioriTest, ThresholdAboveEverything) {
  TransactionDatabase db = testing::MakeDb({{1, 2}, {3}});
  AprioriConfig config;
  config.min_support = 0.99;  // tau = 2; no item appears twice
  MiningResult result = MineApriori(db, config);
  EXPECT_TRUE(result.patterns.empty());
}

}  // namespace
}  // namespace bbsmine
