// Tests for the small utility modules: Status/Result, CRC-32, Rng,
// the I/O cost model and the result-table printer.

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "util/crc32.h"
#include "util/iomodel.h"
#include "util/rng.h"
#include "util/status.h"
#include "util/table.h"

namespace bbsmine {
namespace {

// --- Status / Result ---------------------------------------------------------

TEST(StatusTest, DefaultIsOk) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kOk);
  EXPECT_EQ(st.ToString(), "OK");
}

TEST(StatusTest, FactoriesCarryCodeAndMessage) {
  Status st = Status::IoError("disk on fire");
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kIoError);
  EXPECT_EQ(st.message(), "disk on fire");
  EXPECT_EQ(st.ToString(), "IoError: disk on fire");
}

TEST(StatusTest, AllCodesHaveNames) {
  for (StatusCode code :
       {StatusCode::kOk, StatusCode::kInvalidArgument, StatusCode::kNotFound,
        StatusCode::kIoError, StatusCode::kCorruption, StatusCode::kOutOfRange,
        StatusCode::kUnimplemented, StatusCode::kInternal}) {
    EXPECT_STRNE(StatusCodeName(code), "Unknown");
  }
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("nope"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

Status FailThrough() {
  BBSMINE_RETURN_IF_ERROR(Status::Corruption("inner"));
  return Status::Ok();
}

TEST(ResultTest, ReturnIfErrorPropagates) {
  Status st = FailThrough();
  EXPECT_EQ(st.code(), StatusCode::kCorruption);
}

// --- CRC-32 -------------------------------------------------------------------

TEST(Crc32Test, KnownVectors) {
  // Standard IEEE CRC-32 check value.
  EXPECT_EQ(Crc32("123456789"), 0xcbf43926u);
  EXPECT_EQ(Crc32(""), 0u);
  EXPECT_EQ(Crc32("a"), 0xe8b7be43u);
}

TEST(Crc32Test, IncrementalMatchesOneShot) {
  std::string message = "hello crc world, split across calls";
  uint32_t oneshot = Crc32(message);
  uint32_t crc = 0;
  crc = Crc32(message.substr(0, 10), crc);
  crc = Crc32(message.substr(10), crc);
  EXPECT_EQ(crc, oneshot);
}

TEST(Crc32Test, DetectsBitFlip) {
  std::string a = "payload-data-0000";
  std::string b = a;
  b[5] ^= 0x01;
  EXPECT_NE(Crc32(a), Crc32(b));
}

// --- Rng ----------------------------------------------------------------------

TEST(RngTest, Deterministic) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, UniformStaysInBounds) {
  Rng rng(7);
  for (int i = 0; i < 10'000; ++i) {
    EXPECT_LT(rng.Uniform(17), 17u);
  }
  for (int i = 0; i < 1'000; ++i) {
    EXPECT_EQ(rng.Uniform(1), 0u);
  }
}

TEST(RngTest, UniformCoversRangeRoughly) {
  Rng rng(11);
  std::vector<int> hits(10, 0);
  constexpr int kDraws = 100'000;
  for (int i = 0; i < kDraws; ++i) ++hits[rng.Uniform(10)];
  for (int bucket : hits) {
    EXPECT_GT(bucket, kDraws / 10 - kDraws / 50);
    EXPECT_LT(bucket, kDraws / 10 + kDraws / 50);
  }
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(3);
  for (int i = 0; i < 10'000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, PoissonMeanIsClose) {
  Rng rng(5);
  double sum = 0;
  constexpr int kDraws = 50'000;
  for (int i = 0; i < kDraws; ++i) sum += static_cast<double>(rng.Poisson(10.0));
  double mean = sum / kDraws;
  EXPECT_NEAR(mean, 10.0, 0.2);
}

TEST(RngTest, ExponentialMeanIsClose) {
  Rng rng(9);
  double sum = 0;
  constexpr int kDraws = 50'000;
  for (int i = 0; i < kDraws; ++i) sum += rng.Exponential(2.0);
  EXPECT_NEAR(sum / kDraws, 2.0, 0.1);
}

TEST(RngTest, UniformInRangeInclusive) {
  Rng rng(13);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 10'000; ++i) {
    int64_t v = rng.UniformInRange(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= v == -3;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

// --- I/O cost model -----------------------------------------------------------

TEST(IoModelTest, BlocksForRoundsUp) {
  EXPECT_EQ(BlocksFor(0, 4096), 0u);
  EXPECT_EQ(BlocksFor(1, 4096), 1u);
  EXPECT_EQ(BlocksFor(4096, 4096), 1u);
  EXPECT_EQ(BlocksFor(4097, 4096), 2u);
}

TEST(IoModelTest, SimulatedSecondsWeighsRandomReadsMore) {
  IoCostParams params = IoCostParams::PaperEraDisk();
  IoStats seq;
  seq.sequential_reads = 100;
  IoStats rand;
  rand.random_reads = 100;
  EXPECT_LT(SimulatedIoSeconds(seq, params), SimulatedIoSeconds(rand, params));
}

TEST(IoModelTest, AccumulateAndReset) {
  IoStats a;
  a.sequential_reads = 1;
  a.random_reads = 2;
  a.writes = 3;
  IoStats b;
  b.sequential_reads = 10;
  b += a;
  EXPECT_EQ(b.sequential_reads, 11u);
  EXPECT_EQ(b.random_reads, 2u);
  EXPECT_EQ(b.writes, 3u);
  EXPECT_EQ(b.TotalReads(), 13u);
  b.Reset();
  EXPECT_EQ(b.TotalReads(), 0u);
  EXPECT_NE(a.ToString().find("seq_reads=1"), std::string::npos);
}

// --- ResultTable ----------------------------------------------------------------

TEST(ResultTableTest, PrintsAlignedRows) {
  ResultTable table("demo");
  table.SetHeader({"name", "value"});
  table.AddRow({"alpha", "1"});
  table.AddRow({"b", "22222"});
  std::ostringstream out;
  table.Print(out);
  std::string text = out.str();
  EXPECT_NE(text.find("demo"), std::string::npos);
  EXPECT_NE(text.find("alpha"), std::string::npos);
  EXPECT_NE(text.find("22222"), std::string::npos);
  EXPECT_EQ(table.num_rows(), 2u);
}

TEST(ResultTableTest, CsvOutput) {
  ResultTable table("csv");
  table.SetHeader({"x", "y"});
  table.AddRow({"1", "2"});
  std::ostringstream out;
  table.PrintCsv(out);
  EXPECT_NE(out.str().find("x,y\n1,2\n"), std::string::npos);
}

TEST(ResultTableTest, NumberFormatting) {
  EXPECT_EQ(ResultTable::Num(1.23456, 2), "1.23");
  EXPECT_EQ(ResultTable::Num(2.0, 0), "2");
  EXPECT_EQ(ResultTable::Int(-42), "-42");
}

}  // namespace
}  // namespace bbsmine
