// Tests for the transaction model and the transaction database (including
// on-disk round-trips, the TID index and I/O accounting).

#include "storage/transaction_db.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "storage/transaction.h"
#include "testing/reference.h"

namespace bbsmine {
namespace {

std::string TempPath(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

// --- Itemset helpers -----------------------------------------------------------

TEST(ItemsetTest, CanonicalizeSortsAndDedups) {
  Itemset items = {5, 1, 3, 1, 5};
  Canonicalize(&items);
  EXPECT_EQ(items, (Itemset{1, 3, 5}));
}

TEST(ItemsetTest, SubsetChecks) {
  Itemset small = {1, 3};
  Itemset big = {1, 2, 3, 4};
  EXPECT_TRUE(IsSubsetOf(small, big));
  EXPECT_FALSE(IsSubsetOf(big, small));
  EXPECT_TRUE(IsSubsetOf({}, small));
  EXPECT_TRUE(Contains(big, 4));
  EXPECT_FALSE(Contains(big, 5));
}

TEST(ItemsetTest, UnionOf) {
  EXPECT_EQ(UnionOf({1, 3}, {2, 3, 9}), (Itemset{1, 2, 3, 9}));
  EXPECT_EQ(UnionOf({}, {7}), (Itemset{7}));
}

TEST(ItemsetTest, ToString) {
  EXPECT_EQ(ItemsetToString({1, 2, 3}), "{1, 2, 3}");
  EXPECT_EQ(ItemsetToString({}), "{}");
}

// --- TidIndex -------------------------------------------------------------------

TEST(TidIndexTest, OffsetsAndSizes) {
  TidIndex index;
  index.Append(100);
  index.Append(50);
  index.Append(8);
  EXPECT_EQ(index.size(), 3u);
  EXPECT_EQ(index.OffsetOf(0), 0u);
  EXPECT_EQ(index.OffsetOf(1), 100u);
  EXPECT_EQ(index.OffsetOf(2), 150u);
  EXPECT_EQ(index.SizeOf(0), 100u);
  EXPECT_EQ(index.SizeOf(1), 50u);
  EXPECT_EQ(index.SizeOf(2), 8u);
  EXPECT_EQ(index.total_bytes(), 158u);
}

TEST(TidIndexTest, BlockMath) {
  TidIndex index;
  index.Append(100);   // record 0: bytes [0, 100)
  index.Append(4000);  // record 1: bytes [100, 4100) -> blocks 0..1
  index.Append(10);    // record 2: bytes [4100, 4110) -> block 1
  EXPECT_EQ(index.BlockOf(0, 4096), 0u);
  EXPECT_EQ(index.BlockSpan(0, 4096), 1u);
  EXPECT_EQ(index.BlockOf(1, 4096), 0u);
  EXPECT_EQ(index.BlockSpan(1, 4096), 2u);
  EXPECT_EQ(index.BlockOf(2, 4096), 1u);
  EXPECT_EQ(index.BlockSpan(2, 4096), 1u);
}

// --- TransactionDatabase ---------------------------------------------------------

TEST(TransactionDbTest, AppendAssignsSequentialTids) {
  TransactionDatabase db;
  EXPECT_EQ(db.Append({3, 1}), 0u);
  EXPECT_EQ(db.Append({2}), 1u);
  EXPECT_EQ(db.size(), 2u);
  EXPECT_EQ(db.At(0).items, (Itemset{1, 3})) << "items must be canonical";
}

TEST(TransactionDbTest, ExplicitTidsPreserved) {
  TransactionDatabase db = testing::PaperExampleDb();
  EXPECT_EQ(db.At(0).tid, 100u);
  EXPECT_EQ(db.At(4).tid, 500u);
  EXPECT_EQ(db.item_universe(), 16u);
}

TEST(TransactionDbTest, DistinctItems) {
  TransactionDatabase db = testing::MakeDb({{1, 5}, {5, 9}, {1}});
  EXPECT_EQ(db.DistinctItems(), (Itemset{1, 5, 9}));
}

TEST(TransactionDbTest, ForEachVisitsInOrderAndChargesOneScan) {
  TransactionDatabase db = testing::PaperExampleDb();
  IoStats io;
  std::vector<Tid> seen;
  db.ForEach(&io, [&](const Transaction& txn) { seen.push_back(txn.tid); });
  EXPECT_EQ(seen, (std::vector<Tid>{100, 200, 300, 400, 500}));
  EXPECT_EQ(io.sequential_reads,
            BlocksFor(db.SerializedBytes(), db.block_size()));
  EXPECT_EQ(io.random_reads, 0u);
}

TEST(TransactionDbTest, ProbeChargesRandomReads) {
  TransactionDatabase db = testing::PaperExampleDb();
  IoStats io;
  const Transaction& txn = db.Probe(2, &io);
  EXPECT_EQ(txn.tid, 300u);
  EXPECT_EQ(io.random_reads, 1u);
  EXPECT_EQ(io.sequential_reads, 0u);
}

TEST(TransactionDbTest, SerializedBytesMatchesRecordLayout) {
  TransactionDatabase db;
  db.Append({1, 2, 3});  // 8 + 4 + 12 = 24
  db.Append({});         // 8 + 4 = 12
  EXPECT_EQ(db.SerializedBytes(), 36u);
}

TEST(TransactionDbTest, SaveLoadRoundTrip) {
  TransactionDatabase db = testing::PaperExampleDb();
  std::string path = TempPath("bbsmine_db_roundtrip.bin");
  ASSERT_TRUE(db.Save(path).ok());

  Result<TransactionDatabase> loaded = TransactionDatabase::Load(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_TRUE(*loaded == db);
  EXPECT_EQ(loaded->item_universe(), db.item_universe());
  std::remove(path.c_str());
}

TEST(TransactionDbTest, SaveLoadEmptyDatabase) {
  TransactionDatabase db;
  std::string path = TempPath("bbsmine_db_empty.bin");
  ASSERT_TRUE(db.Save(path).ok());
  Result<TransactionDatabase> loaded = TransactionDatabase::Load(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->size(), 0u);
  std::remove(path.c_str());
}

TEST(TransactionDbTest, LoadMissingFileFails) {
  Result<TransactionDatabase> loaded =
      TransactionDatabase::Load(TempPath("bbsmine_db_does_not_exist.bin"));
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kIoError);
}

TEST(TransactionDbTest, LoadRejectsBadMagic) {
  std::string path = TempPath("bbsmine_db_badmagic.bin");
  {
    std::ofstream out(path, std::ios::binary);
    out << "NOTADB!!garbagegarbage";
  }
  Result<TransactionDatabase> loaded = TransactionDatabase::Load(path);
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kCorruption);
  std::remove(path.c_str());
}

TEST(TransactionDbTest, LoadRejectsCorruptedPayload) {
  TransactionDatabase db = testing::PaperExampleDb();
  std::string path = TempPath("bbsmine_db_corrupt.bin");
  ASSERT_TRUE(db.Save(path).ok());
  {
    // Flip a byte in the payload region (past the 16-byte header).
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(30);
    char byte;
    f.seekg(30);
    f.get(byte);
    f.seekp(30);
    f.put(static_cast<char>(byte ^ 0x7f));
  }
  Result<TransactionDatabase> loaded = TransactionDatabase::Load(path);
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kCorruption);
  std::remove(path.c_str());
}

TEST(TransactionDbTest, LoadRejectsTruncatedFile) {
  TransactionDatabase db = testing::PaperExampleDb();
  std::string path = TempPath("bbsmine_db_truncated.bin");
  ASSERT_TRUE(db.Save(path).ok());
  std::filesystem::resize_file(path, 20);
  Result<TransactionDatabase> loaded = TransactionDatabase::Load(path);
  EXPECT_FALSE(loaded.ok());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace bbsmine
