// Thread-safety and parallel-equivalence tests.
//
//  * The BbsIndex const query path must be callable from many threads at
//    once (no shared mutable scratch) — checked by hammering one shared
//    index and comparing against golden single-threaded answers. Run under
//    -DBBSMINE_SANITIZE=thread to make data races hard errors.
//  * SegmentedBbs counting and the full mining engine must produce results
//    identical to their serial runs at any thread count (the determinism
//    guarantee documented in MineConfig::num_threads).

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <tuple>
#include <vector>

#include "core/adhoc.h"
#include "core/bbs_index.h"
#include "core/miner.h"
#include "core/segmented_bbs.h"
#include "testing/reference.h"
#include "util/thread_pool.h"

namespace bbsmine {
namespace {

BbsIndex MakeBbs(const TransactionDatabase& db, uint32_t bits,
                 uint32_t hashes) {
  BbsConfig config;
  config.num_bits = bits;
  config.num_hashes = hashes;
  auto index = BbsIndex::Create(config);
  EXPECT_TRUE(index.ok());
  index->InsertAll(db);
  return std::move(index).value();
}

/// A deterministic spread of query itemsets over the database's universe.
std::vector<Itemset> QueryMix(ItemId universe) {
  std::vector<Itemset> queries;
  for (ItemId a = 0; a < universe; ++a) {
    queries.push_back({a});
    queries.push_back({a, static_cast<ItemId>((a + 3) % universe)});
    queries.push_back({a, static_cast<ItemId>((a + 1) % universe),
                       static_cast<ItemId>((a + 7) % universe)});
  }
  for (Itemset& q : queries) Canonicalize(&q);
  return queries;
}

TEST(ConcurrencyTest, SharedIndexQueriesMatchGoldenAnswers) {
  TransactionDatabase db = testing::RandomDb(3, 500, 32, 6.0);
  BbsIndex bbs = MakeBbs(db, 256, 3);
  std::vector<Itemset> queries = QueryMix(db.item_universe());

  // Golden answers, computed single-threaded.
  std::vector<size_t> golden_count(queries.size());
  std::vector<size_t> golden_at_least(queries.size());
  for (size_t q = 0; q < queries.size(); ++q) {
    golden_count[q] = bbs.CountItemSet(queries[q]);
    golden_at_least[q] = bbs.CountItemSetAtLeast(queries[q], /*tau=*/10);
  }

  constexpr int kThreads = 8;
  constexpr int kRounds = 5;
  std::atomic<int> mismatches{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      // Offset start positions so threads collide on different queries.
      for (int round = 0; round < kRounds; ++round) {
        for (size_t i = 0; i < queries.size(); ++i) {
          size_t q = (i + static_cast<size_t>(t) * 37) % queries.size();
          BitVector result;
          if (bbs.CountItemSet(queries[q], &result) != golden_count[q] ||
              result.Count() != golden_count[q]) {
            ++mismatches;
          }
          size_t at_least = bbs.CountItemSetAtLeast(queries[q], 10);
          bool reaches = golden_at_least[q] >= 10;
          if (reaches ? at_least != golden_at_least[q] : at_least >= 10) {
            ++mismatches;
          }
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(mismatches.load(), 0);
}

TEST(ConcurrencyTest, ConstrainedCountAndSliceAndAreThreadSafe) {
  TransactionDatabase db = testing::RandomDb(11, 400, 24, 5.0);
  BbsIndex bbs = MakeBbs(db, 192, 2);
  BitVector constraint = MakeConstraintSlice(
      db, [](const Transaction& txn) { return txn.tid % 2 == 0; });
  std::vector<Itemset> queries = QueryMix(db.item_universe());

  std::vector<size_t> golden(queries.size());
  std::vector<size_t> golden_and(queries.size());
  for (size_t q = 0; q < queries.size(); ++q) {
    golden[q] = bbs.CountItemSetConstrained(queries[q], constraint);
    BitVector acc = constraint;
    golden_and[q] = bbs.AndItemSlices(queries[q].front(), &acc);
  }

  constexpr int kThreads = 8;
  std::atomic<int> mismatches{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (size_t i = 0; i < queries.size(); ++i) {
        size_t q = (i + static_cast<size_t>(t) * 53) % queries.size();
        if (bbs.CountItemSetConstrained(queries[q], constraint) != golden[q]) {
          ++mismatches;
        }
        BitVector acc = constraint;
        if (bbs.AndItemSlices(queries[q].front(), &acc) != golden_and[q]) {
          ++mismatches;
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(mismatches.load(), 0);
}

TEST(ConcurrencyTest, SegmentedCountsMatchSerialAtAnyThreadCount) {
  TransactionDatabase db = testing::RandomDb(5, 600, 40, 6.0);
  BbsConfig config;
  config.num_bits = 96;
  config.num_hashes = 3;
  auto bbs = SegmentedBbs::Create(config, 64);
  ASSERT_TRUE(bbs.ok());
  for (size_t t = 0; t < db.size(); ++t) {
    ASSERT_TRUE(bbs->Insert(db.At(t).items).ok());
  }
  ASSERT_GT(bbs->num_segments(), 4u);

  for (const Itemset& items : QueryMix(db.item_universe())) {
    IoStats serial_io;
    size_t serial = bbs->CountItemSet(items, &serial_io);
    std::vector<size_t> serial_per = bbs->CountPerSegment(items);
    for (size_t threads : {2u, 4u, 8u}) {
      IoStats parallel_io;
      EXPECT_EQ(bbs->CountItemSet(items, &parallel_io, threads), serial);
      // The I/O charge is merged per segment, so it is thread-invariant.
      EXPECT_EQ(parallel_io.sequential_reads, serial_io.sequential_reads);
      EXPECT_EQ(parallel_io.random_reads, serial_io.random_reads);
      EXPECT_EQ(bbs->CountPerSegment(items, threads), serial_per);
    }
  }
}

using MineParam = std::tuple<Algorithm, uint64_t /*memory budget*/>;

class ParallelMiningTest : public ::testing::TestWithParam<MineParam> {};

// The acceptance contract of MineConfig::num_threads: the same patterns, in
// the same order, with the same supports, as the single-threaded run.
TEST_P(ParallelMiningTest, MultiThreadedRunIsBitIdenticalToSerial) {
  auto [algorithm, budget] = GetParam();
  TransactionDatabase db = testing::RandomDb(23, 500, 40, 6.0);
  BbsIndex bbs = MakeBbs(db, 512, 3);

  MineConfig config;
  config.algorithm = algorithm;
  config.min_support = 0.02;
  config.memory_budget_bytes = budget;

  config.num_threads = 1;
  MiningResult serial = MineFrequentPatterns(db, bbs, config);

  for (uint32_t threads : {2u, 4u}) {
    config.num_threads = threads;
    MiningResult parallel = MineFrequentPatterns(db, bbs, config);
    ASSERT_EQ(parallel.patterns.size(), serial.patterns.size());
    for (size_t i = 0; i < serial.patterns.size(); ++i) {
      EXPECT_EQ(parallel.patterns[i].items, serial.patterns[i].items);
      EXPECT_EQ(parallel.patterns[i].support, serial.patterns[i].support);
      EXPECT_EQ(parallel.patterns[i].kind, serial.patterns[i].kind);
    }
    EXPECT_EQ(parallel.stats.candidates, serial.stats.candidates);
    EXPECT_EQ(parallel.stats.false_drops, serial.stats.false_drops);
    EXPECT_EQ(parallel.stats.certified, serial.stats.certified);
  }

  // And the answers are still the true frequent patterns.
  uint64_t tau = AbsoluteThreshold(config.min_support, db.size());
  std::vector<Pattern> truth = testing::BruteForceMine(db, tau);
  serial.SortPatterns();
  EXPECT_EQ(testing::ItemsetsOf(serial.patterns), testing::ItemsetsOf(truth));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ParallelMiningTest,
    ::testing::Combine(::testing::Values(Algorithm::kSFS, Algorithm::kSFP,
                                         Algorithm::kDFS, Algorithm::kDFP),
                       // 0 = memory-resident; 20000 bytes forces the folded
                       // MemBBS + adaptive three-phase variant.
                       ::testing::Values(0ull, 20'000ull)));

TEST(ParallelMiningTest, AutoThreadCountAlsoMatchesSerial) {
  TransactionDatabase db = testing::RandomDb(29, 300, 30, 5.0);
  BbsIndex bbs = MakeBbs(db, 256, 2);
  MineConfig config;
  config.algorithm = Algorithm::kDFP;
  config.min_support = 0.02;
  config.num_threads = 1;
  MiningResult serial = MineFrequentPatterns(db, bbs, config);
  config.num_threads = 0;  // one thread per hardware thread
  MiningResult parallel = MineFrequentPatterns(db, bbs, config);
  EXPECT_EQ(parallel.patterns, serial.patterns);
}

}  // namespace
}  // namespace bbsmine
