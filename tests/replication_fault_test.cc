// Fault-injection tests for the replication stream (ctest label: faults).
//
// The follower's safety contract under a hostile or broken wire: a chunk
// that fails CRC or structural validation is NEVER applied — the
// connection drops and the reconnect re-fetches clean bytes from the
// durable watermark. Crash points on both handshake ends prove a kill -9
// at the protocol boundary leaves nothing half-armed.
//
// These tests run in their own binary: fault points are process-global,
// and the crash legs fork children that _Exit(137) at the armed boundary.

#include <gtest/gtest.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <filesystem>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/segmented_bbs.h"
#include "obs/json.h"
#include "service/durability.h"
#include "service/replication.h"
#include "service/wal.h"
#include "service/wire.h"
#include "util/fault_injector.h"
#include "util/socket.h"
#include "util/status.h"

namespace bbsmine::service {
namespace {

BbsConfig SmallConfig() {
  BbsConfig config;
  config.num_bits = 256;
  config.num_hashes = 3;
  return config;
}

std::string TempDir(const std::string& name) {
  std::string dir = (std::filesystem::temp_directory_path() /
                     (std::to_string(::getpid()) + "_" + name))
                        .string();
  std::filesystem::remove_all(dir);
  return dir;
}

SegmentedBbs EmptyIndex() {
  return SegmentedBbs::Create(SmallConfig(), 4).value();
}

bool WaitUntil(const std::function<bool()>& pred, int timeout_ms = 15'000) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  while (std::chrono::steady_clock::now() < deadline) {
    if (pred()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  return pred();
}

/// Real WAL record bytes for `batches`, produced by the real writer so
/// the corruption below is the only lie in the stream.
std::string RecordBytes(const std::string& name,
                        const std::vector<std::vector<Itemset>>& batches) {
  std::string dir = TempDir(name);
  std::filesystem::create_directories(dir);
  auto wal = WriteAheadLog::Create(dir + "/wal", 0, WalOptions());
  EXPECT_TRUE(wal.ok());
  for (const auto& batch : batches) EXPECT_TRUE(wal->Append(batch).ok());
  auto chunk = WriteAheadLog::ReadRecordsFrom(dir + "/wal", 0, 1 << 20);
  EXPECT_TRUE(chunk.ok());
  return chunk->data;
}

/// A scripted primary: accepts WALSTREAM handshakes in a loop and answers
/// every one with the same poisoned records frame. Each follower attempt
/// sees identical bytes, so a reject-then-reconnect follower keeps
/// rejecting rather than accidentally succeeding on retry.
class PoisonedPrimary {
 public:
  explicit PoisonedPrimary(std::string poisoned_hex)
      : poisoned_hex_(std::move(poisoned_hex)) {
    auto listener = ListenTcp("127.0.0.1", 0, 4);
    EXPECT_TRUE(listener.ok());
    port_ = BoundPort(listener->get()).value();
    thread_ = std::thread([this, fd = std::move(*listener)]() mutable {
      Serve(fd.get());
    });
  }

  ~PoisonedPrimary() {
    stop_.store(true, std::memory_order_release);
    if (thread_.joinable()) thread_.join();
  }

  uint16_t port() const { return port_; }
  uint64_t handshakes() const {
    return handshakes_.load(std::memory_order_relaxed);
  }

 private:
  void Serve(int listen_fd) {
    while (!stop_.load(std::memory_order_acquire)) {
      Result<OwnedFd> conn = AcceptWithTimeout(listen_fd, 100);
      if (!conn.ok()) continue;
      Result<obs::JsonValue> handshake = ReadFrame(conn->get(), 2'000);
      if (!handshake.ok() || !handshake->Has("watermark")) continue;
      handshakes_.fetch_add(1, std::memory_order_relaxed);

      obs::JsonValue accepted = OkResponse("WALSTREAM");
      accepted.Set("watermark", handshake->at("watermark"));
      accepted.Set("end_txn", obs::JsonValue::Uint(2));
      if (!WriteFrame(conn->get(), accepted).ok()) continue;

      obs::JsonValue frame = OkResponse("WALSTREAM");
      frame.Set("kind", obs::JsonValue::String("records"));
      frame.Set("start_txn", obs::JsonValue::Uint(0));
      frame.Set("transactions", obs::JsonValue::Uint(2));
      frame.Set("records", obs::JsonValue::Uint(2));
      frame.Set("data", obs::JsonValue::String(poisoned_hex_));
      if (!WriteFrame(conn->get(), frame).ok()) continue;
      // An honest follower acks; a rejecting one just closes. Either way
      // we linger briefly so the follower reads the frame before EOF.
      (void)ReadFrame(conn->get(), 200);
    }
  }

  std::string poisoned_hex_;
  uint16_t port_ = 0;
  std::atomic<bool> stop_{false};
  std::atomic<uint64_t> handshakes_{0};
  std::thread thread_;
};

/// A follower wired to record what it applies instead of a real service.
struct RecordingFollower {
  std::mutex mu;
  std::vector<std::vector<Itemset>> applied;  // guarded by mu
  std::unique_ptr<ReplicationFollower> follower;

  explicit RecordingFollower(uint16_t port) {
    ReplicationFollowerOptions options;
    options.host = "127.0.0.1";
    options.port = port;
    options.reconnect_backoff_ms = 20;
    follower = std::make_unique<ReplicationFollower>(
        options,
        [this] {
          std::lock_guard<std::mutex> lock(mu);
          uint64_t txns = 0;
          for (const auto& batch : applied) txns += batch.size();
          return txns;
        },
        [this](const std::vector<std::vector<Itemset>>& batches) {
          std::lock_guard<std::mutex> lock(mu);
          for (const auto& batch : batches) applied.push_back(batch);
          return Status::Ok();
        });
  }

  size_t applied_batches() {
    std::lock_guard<std::mutex> lock(mu);
    return applied.size();
  }
};

class ReplicationFaultTest : public ::testing::Test {
 protected:
  void SetUp() override { FaultInjector::Disarm(); }
  void TearDown() override { FaultInjector::Disarm(); }
};

TEST_F(ReplicationFaultTest, CrcCorruptedChunkIsRejectedAndNeverApplied) {
  std::string data = RecordBytes("rf_crc", {{{1, 2}}, {{3, 4}}});
  data[data.size() / 2] ^= 0x20;  // flip one payload bit; CRC now lies
  PoisonedPrimary primary(HexEncode(data));

  RecordingFollower recorder(primary.port());
  recorder.follower->Start();
  // The follower must keep rejecting across reconnects: two handshakes
  // prove a full reject → drop → re-fetch → reject cycle, not a one-off.
  EXPECT_TRUE(WaitUntil([&] {
    return recorder.follower->stats().crc_rejects >= 2 &&
           primary.handshakes() >= 2;
  }));
  recorder.follower->Stop();

  EXPECT_EQ(recorder.applied_batches(), 0u);
  const ReplicationFollower::Stats stats = recorder.follower->stats();
  EXPECT_EQ(stats.records_applied, 0u);
  EXPECT_GE(stats.crc_rejects, 2u);
  EXPECT_GE(stats.reconnects, 2u);
}

TEST_F(ReplicationFaultTest, TornRecordChunkIsRejectedAndNeverApplied) {
  std::string data = RecordBytes("rf_torn", {{{1, 2}}, {{3, 4}}});
  // Ship a chunk whose final record is cut mid-payload — the shape a
  // crashing primary could produce if it streamed unvalidated bytes.
  PoisonedPrimary primary(HexEncode(data.substr(0, data.size() - 3)));

  RecordingFollower recorder(primary.port());
  recorder.follower->Start();
  EXPECT_TRUE(WaitUntil(
      [&] { return recorder.follower->stats().crc_rejects >= 2; }));
  recorder.follower->Stop();

  EXPECT_EQ(recorder.applied_batches(), 0u);
  EXPECT_EQ(recorder.follower->stats().records_applied, 0u);
}

TEST_F(ReplicationFaultTest, HandshakeFailureOnFollowerSideTriggersBackoff) {
  // A listener that never accepts still completes the TCP handshake (the
  // SYN backlog), so the follower reaches its own handshake fault point.
  auto listener = ListenTcp("127.0.0.1", 0, 4);
  ASSERT_TRUE(listener.ok());
  const uint16_t port = BoundPort(listener->get()).value();
  ASSERT_TRUE(
      FaultInjector::Arm("repl.handshake.follower:fail_after=0,err=EIO")
          .ok());

  RecordingFollower recorder(port);
  recorder.follower->Start();
  EXPECT_TRUE(
      WaitUntil([&] { return recorder.follower->stats().reconnects >= 3; }));
  recorder.follower->Stop();
  EXPECT_EQ(recorder.applied_batches(), 0u);
  EXPECT_FALSE(recorder.follower->stats().connected);
}

TEST_F(ReplicationFaultTest, PrimaryCrashAtHandshakeBoundaryExitsAt137) {
  const std::string dir = TempDir("rf_crash_p");
  pid_t pid = fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    // Child: arm the crash point, then walk straight into it via Serve.
    if (!FaultInjector::Arm("repl.handshake.primary:crash_after=0").ok()) {
      ::_exit(99);
    }
    auto mgr = DurabilityManager::Open(
        DurabilityOptions{dir, WalOptions(), 0}, EmptyIndex(), nullptr);
    if (!mgr.ok()) ::_exit(98);
    ReplicationSource source(mgr->get(), [] { return uint64_t{0}; },
                             ReplicationSourceOptions{});
    int fds[2];
    if (::socketpair(AF_UNIX, SOCK_STREAM, 0, fds) != 0) ::_exit(97);
    obs::JsonValue handshake = obs::JsonValue::Object();
    handshake.Set("verb", obs::JsonValue::String("WALSTREAM"));
    handshake.Set("watermark", obs::JsonValue::Uint(0));
    std::atomic<bool> stop{false};
    source.Serve(handshake, fds[0], stop);  // _Exit(137) inside
    ::_exit(96);                            // crash point did not fire
  }
  int wstatus = 0;
  ASSERT_EQ(::waitpid(pid, &wstatus, 0), pid);
  ASSERT_TRUE(WIFEXITED(wstatus));
  EXPECT_EQ(WEXITSTATUS(wstatus), 137);
}

TEST_F(ReplicationFaultTest, FollowerCrashAtHandshakeBoundaryExitsAt137) {
  pid_t pid = fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    if (!FaultInjector::Arm("repl.handshake.follower:crash_after=0").ok()) {
      ::_exit(99);
    }
    auto listener = ListenTcp("127.0.0.1", 0, 4);
    if (!listener.ok()) ::_exit(98);
    auto port = BoundPort(listener->get());
    if (!port.ok()) ::_exit(97);
    ReplicationFollowerOptions options;
    options.host = "127.0.0.1";
    options.port = *port;
    ReplicationFollower follower(
        options, [] { return uint64_t{0}; },
        [](const std::vector<std::vector<Itemset>>&) {
          return Status::Ok();
        });
    follower.Start();  // connects, then hits the crash point
    std::this_thread::sleep_for(std::chrono::seconds(10));
    ::_exit(96);
  }
  int wstatus = 0;
  ASSERT_EQ(::waitpid(pid, &wstatus, 0), pid);
  ASSERT_TRUE(WIFEXITED(wstatus));
  EXPECT_EQ(WEXITSTATUS(wstatus), 137);
}

}  // namespace
}  // namespace bbsmine::service
