// Tests for the query service: wire framing, snapshot isolation, the
// batched count scheduler, the verb handler, and a socket round trip.
//
// The load-bearing property throughout is *parity*: any count produced by
// the service — through a Snapshot, the scheduler, BbsService::Handle, or
// a real TCP connection — must be bit-identical to a direct
// SegmentedBbs::CountItemSet over the same insert prefix.

#include <gtest/gtest.h>

#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "core/segmented_bbs.h"
#include "service/client.h"
#include "service/metrics.h"
#include "service/scheduler.h"
#include "service/server.h"
#include "service/snapshot.h"
#include "service/wire.h"
#include "testing/reference.h"
#include "util/socket.h"
#include "util/status.h"

namespace bbsmine::service {
namespace {

BbsConfig SmallConfig() {
  BbsConfig config;
  config.num_bits = 256;
  config.num_hashes = 3;
  return config;
}

/// A loaded segmented index and the database it was built from.
struct Fixture {
  TransactionDatabase db;
  SegmentedBbs index;
};

Fixture MakeFixture(uint64_t seed, size_t transactions,
                    uint64_t segment_capacity) {
  Fixture out{bbsmine::testing::RandomDb(seed, transactions, 24, 5.0),
              SegmentedBbs::Create(SmallConfig(), segment_capacity).value()};
  EXPECT_TRUE(out.index.InsertAll(out.db).ok());
  return out;
}

std::vector<Itemset> QueryMix() {
  std::vector<Itemset> queries;
  for (ItemId a = 0; a < 24; ++a) {
    queries.push_back({a});
    queries.push_back({a, static_cast<ItemId>((a + 5) % 24)});
    queries.push_back({a, static_cast<ItemId>((a + 1) % 24),
                       static_cast<ItemId>((a + 9) % 24)});
  }
  for (Itemset& q : queries) Canonicalize(&q);
  return queries;
}

// ---------------------------------------------------------------------------
// util satellites: errno-derived statuses.

TEST(StatusFromErrnoTest, CarriesContextAndErrnoText) {
  Status status = StatusFromErrno(ENOENT, "open /nope");
  EXPECT_EQ(status.code(), StatusCode::kIoError);
  EXPECT_NE(status.message().find("open /nope"), std::string::npos);
  EXPECT_NE(status.message().find("errno 2"), std::string::npos);
}

TEST(StatusFromErrnoTest, ReadsCurrentErrno) {
  errno = EACCES;
  Status status = StatusFromErrno("probe");
  EXPECT_EQ(status.code(), StatusCode::kIoError);
  EXPECT_NE(status.message().find("errno 13"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Wire protocol.

TEST(WireTest, FrameRoundTripOverSocketpair) {
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  OwnedFd a(fds[0]), b(fds[1]);

  obs::JsonValue request = obs::JsonValue::Object();
  request.Set("verb", obs::JsonValue::String("COUNT"));
  request.Set("items", ItemsToJson({3, 1, 2}));
  ASSERT_TRUE(WriteFrame(a.get(), request).ok());

  auto echoed = ReadFrame(b.get(), /*timeout_ms=*/1000);
  ASSERT_TRUE(echoed.ok()) << echoed.status().ToString();
  EXPECT_EQ(echoed->at("verb").AsString(), "COUNT");
  EXPECT_EQ(echoed->at("items").size(), 3u);
}

TEST(WireTest, CleanCloseReadsAsNotFound) {
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  OwnedFd a(fds[0]), b(fds[1]);
  a.Reset();  // close the writer before any frame
  auto result = ReadFrame(b.get(), /*timeout_ms=*/1000);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
}

TEST(WireTest, OversizedLengthPrefixIsCorruption) {
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  OwnedFd a(fds[0]), b(fds[1]);
  // 0xFFFFFFFF little-endian: far beyond any accepted frame.
  ASSERT_TRUE(SendAll(a.get(), std::string(4, '\xff')).ok());
  auto result = ReadFrame(b.get(), /*timeout_ms=*/1000);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kCorruption);
}

TEST(WireTest, IdleTimeoutIsUnavailable) {
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  OwnedFd a(fds[0]), b(fds[1]);
  auto result = ReadFrame(b.get(), /*timeout_ms=*/10);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kUnavailable);
}

TEST(WireTest, ItemsFromJsonValidates) {
  obs::JsonValue bad = obs::JsonValue::Array();
  bad.Append(obs::JsonValue::String("seven"));
  EXPECT_EQ(ItemsFromJson(bad).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(ItemsFromJson(obs::JsonValue::Null()).status().code(),
            StatusCode::kInvalidArgument);

  obs::JsonValue dup = obs::JsonValue::Array();
  dup.Append(obs::JsonValue::Uint(9));
  dup.Append(obs::JsonValue::Uint(2));
  dup.Append(obs::JsonValue::Uint(9));
  auto items = ItemsFromJson(dup);
  ASSERT_TRUE(items.ok());
  EXPECT_EQ(*items, (Itemset{2, 9}));  // canonicalized
}

// ---------------------------------------------------------------------------
// Snapshot manager.

TEST(SnapshotManagerTest, CountsMatchDirectIndex) {
  Fixture fx = MakeFixture(11, 300, 64);
  auto manager = SnapshotManager::FromIndex(fx.index);
  ASSERT_TRUE(manager.ok());
  Snapshot snap = manager->Acquire();
  EXPECT_EQ(snap.num_transactions(), fx.db.size());
  for (const Itemset& query : QueryMix()) {
    EXPECT_EQ(snap.CountItemSet(query), fx.index.CountItemSet(query))
        << ItemsetToString(query);
  }
}

TEST(SnapshotManagerTest, WrapsMonolithicIndexAsOneSealedSegment) {
  Fixture fx = MakeFixture(12, 150, 1000);  // one segment
  auto manager =
      SnapshotManager::FromIndex(fx.index.segment(0), /*segment_capacity=*/32);
  ASSERT_TRUE(manager.ok());
  Snapshot snap = manager->Acquire();
  EXPECT_EQ(snap.num_segments(), 1u);
  for (const Itemset& query : QueryMix()) {
    EXPECT_EQ(snap.CountItemSet(query), fx.index.CountItemSet(query));
  }
  // New inserts land in a fresh tail without disturbing the sealed wrap.
  ASSERT_TRUE(manager->Insert({1, 2, 3}).ok());
  EXPECT_EQ(manager->Acquire().num_segments(), 2u);
  EXPECT_EQ(manager->num_transactions(), fx.db.size() + 1);
}

TEST(SnapshotManagerTest, OldSnapshotsAreImmutableUnderInserts) {
  auto manager = SnapshotManager::Create(SmallConfig(), 8);
  ASSERT_TRUE(manager.ok());
  TransactionDatabase db = bbsmine::testing::RandomDb(13, 40, 16, 4.0);

  std::vector<Snapshot> history;
  std::vector<std::vector<size_t>> answers;
  std::vector<Itemset> queries = {{0}, {1, 2}, {3, 4, 5}};
  for (size_t t = 0; t < db.size(); ++t) {
    ASSERT_TRUE(manager->Insert(db.At(t).items).ok());
    Snapshot snap = manager->Acquire();
    EXPECT_EQ(snap.num_transactions(), t + 1);
    std::vector<size_t> at_prefix;
    for (const Itemset& q : queries) at_prefix.push_back(snap.CountItemSet(q));
    history.push_back(snap);
    answers.push_back(std::move(at_prefix));
  }
  // Every retained snapshot still answers exactly as it did when acquired,
  // and matches a SegmentedBbs rebuilt from the same prefix.
  auto rebuilt = SegmentedBbs::Create(SmallConfig(), 8);
  ASSERT_TRUE(rebuilt.ok());
  for (size_t t = 0; t < db.size(); ++t) {
    ASSERT_TRUE(rebuilt->Insert(db.At(t).items).ok());
    for (size_t q = 0; q < queries.size(); ++q) {
      EXPECT_EQ(history[t].CountItemSet(queries[q]), answers[t][q]);
      EXPECT_EQ(answers[t][q], rebuilt->CountItemSet(queries[q]));
    }
  }
}

TEST(SnapshotManagerTest, EpochsAreMonotoneAndSealsTracked) {
  auto manager = SnapshotManager::Create(SmallConfig(), 4);
  ASSERT_TRUE(manager.ok());
  uint64_t last_epoch = manager->epoch();
  for (int t = 0; t < 10; ++t) {
    ASSERT_TRUE(manager->Insert({static_cast<ItemId>(t)}).ok());
    uint64_t epoch = manager->epoch();
    EXPECT_GT(epoch, last_epoch);
    last_epoch = epoch;
  }
  EXPECT_EQ(manager->seals(), 2u);  // 10 transactions / capacity 4
  EXPECT_GE(manager->publications(), 11u);
}

TEST(SnapshotManagerTest, BatchInsertPublishesOnce) {
  auto manager = SnapshotManager::Create(SmallConfig(), 64);
  ASSERT_TRUE(manager.ok());
  TransactionDatabase db = bbsmine::testing::RandomDb(14, 50, 16, 4.0);
  uint64_t before = manager->publications();
  ASSERT_TRUE(manager->InsertAll(db).ok());
  EXPECT_EQ(manager->publications(), before + 1);
  EXPECT_EQ(manager->num_transactions(), db.size());
  EXPECT_EQ(manager->InsertAll(db, db.size(), 1).code(),
            StatusCode::kOutOfRange);
}

// ---------------------------------------------------------------------------
// SegmentedBbs::InsertAll satellite.

TEST(SegmentedInsertAllTest, MatchesPerTransactionInserts) {
  TransactionDatabase db = bbsmine::testing::RandomDb(15, 120, 20, 5.0);
  auto bulk = SegmentedBbs::Create(SmallConfig(), 32);
  auto serial = SegmentedBbs::Create(SmallConfig(), 32);
  ASSERT_TRUE(bulk.ok());
  ASSERT_TRUE(serial.ok());
  ASSERT_TRUE(bulk->InsertAll(db).ok());
  for (size_t t = 0; t < db.size(); ++t) {
    ASSERT_TRUE(serial->Insert(db.At(t).items).ok());
  }
  EXPECT_TRUE(*bulk == *serial);
  // Range variant appends a suffix.
  auto half = SegmentedBbs::Create(SmallConfig(), 32);
  ASSERT_TRUE(half.ok());
  ASSERT_TRUE(half->InsertAll(db, 0, 60).ok());
  ASSERT_TRUE(half->InsertAll(db, 60, db.size() - 60).ok());
  EXPECT_TRUE(*half == *bulk);
  EXPECT_EQ(half->InsertAll(db, db.size(), 1).code(),
            StatusCode::kOutOfRange);
}

// ---------------------------------------------------------------------------
// Count scheduler.

TEST(CountSchedulerTest, AnswersMatchDirectCounts) {
  Fixture fx = MakeFixture(16, 400, 64);
  auto manager = SnapshotManager::FromIndex(fx.index);
  ASSERT_TRUE(manager.ok());
  ServiceMetrics metrics;
  SchedulerOptions options;
  options.num_threads = 2;
  CountScheduler scheduler(&*manager, options, &metrics);

  // Concurrent submitters maximize batching; every answer must still be
  // bit-identical to the direct index count.
  std::vector<Itemset> queries = QueryMix();
  std::vector<CountResult> results(queries.size());
  std::vector<Status> statuses(queries.size());
  {
    std::vector<std::thread> clients;
    for (size_t i = 0; i < queries.size(); ++i) {
      clients.emplace_back([&, i] {
        statuses[i] = scheduler.Count(queries[i], &results[i]);
      });
    }
    for (std::thread& t : clients) t.join();
  }
  for (size_t i = 0; i < queries.size(); ++i) {
    ASSERT_TRUE(statuses[i].ok()) << statuses[i].ToString();
    EXPECT_EQ(results[i].count, fx.index.CountItemSet(queries[i]))
        << ItemsetToString(queries[i]);
    EXPECT_EQ(results[i].visible_transactions, fx.db.size());
    EXPECT_GE(results[i].batch_size, 1u);
  }
  EXPECT_GE(metrics.counter(metrics.batches), 1u);
}

TEST(CountSchedulerTest, RejectsWhenQueueFull) {
  Fixture fx = MakeFixture(17, 50, 32);
  auto manager = SnapshotManager::FromIndex(fx.index);
  ASSERT_TRUE(manager.ok());
  ServiceMetrics metrics;
  SchedulerOptions options;
  options.max_pending = 0;  // every admission bounces
  CountScheduler scheduler(&*manager, options, &metrics);
  CountResult result;
  Status status = scheduler.Count({1}, &result);
  EXPECT_EQ(status.code(), StatusCode::kUnavailable);
  EXPECT_EQ(metrics.counter(metrics.rejected_backpressure), 1u);
}

TEST(CountSchedulerTest, RejectsEmptyAndAfterShutdown) {
  Fixture fx = MakeFixture(18, 50, 32);
  auto manager = SnapshotManager::FromIndex(fx.index);
  ASSERT_TRUE(manager.ok());
  CountScheduler scheduler(&*manager, SchedulerOptions{}, nullptr);
  CountResult result;
  EXPECT_EQ(scheduler.Count({}, &result).code(),
            StatusCode::kInvalidArgument);
  ASSERT_TRUE(scheduler.Count({1}, &result).ok());
  scheduler.Shutdown();
  EXPECT_EQ(scheduler.Count({1}, &result).code(),
            StatusCode::kUnavailable);
}

// ---------------------------------------------------------------------------
// Verb handler.

obs::JsonValue CountRequest(const Itemset& items) {
  obs::JsonValue request = obs::JsonValue::Object();
  request.Set("verb", obs::JsonValue::String("COUNT"));
  request.Set("items", ItemsToJson(items));
  return request;
}

TEST(BbsServiceTest, HandlesEveryVerb) {
  Fixture fx = MakeFixture(19, 200, 64);
  auto manager = SnapshotManager::FromIndex(fx.index);
  ASSERT_TRUE(manager.ok());
  BbsService service(&*manager, &fx.db, ServiceOptions{});

  // PING.
  obs::JsonValue ping = obs::JsonValue::Object();
  ping.Set("verb", obs::JsonValue::String("PING"));
  obs::JsonValue pong = service.Handle(ping);
  EXPECT_TRUE(pong.at("ok").AsBool());

  // COUNT parity against the index the daemon would have loaded.
  for (const Itemset& query : QueryMix()) {
    obs::JsonValue response = service.Handle(CountRequest(query));
    ASSERT_TRUE(response.at("ok").AsBool()) << response.Serialize(0);
    EXPECT_EQ(response.at("count").AsUint(), fx.index.CountItemSet(query));
  }

  // INSERT one transaction; counts shift accordingly.
  size_t before = fx.index.CountItemSet({2, 3});
  obs::JsonValue insert = obs::JsonValue::Object();
  insert.Set("verb", obs::JsonValue::String("INSERT"));
  insert.Set("items", ItemsToJson({2, 3}));
  obs::JsonValue inserted = service.Handle(insert);
  ASSERT_TRUE(inserted.at("ok").AsBool()) << inserted.Serialize(0);
  EXPECT_EQ(inserted.at("inserted").AsUint(), 1u);
  obs::JsonValue recount = service.Handle(CountRequest({2, 3}));
  EXPECT_EQ(recount.at("count").AsUint(), before + 1);
  EXPECT_EQ(fx.db.size(), 201u);  // database moved with the index

  // MINE delegates to exact Eclat over the database.
  obs::JsonValue mine = obs::JsonValue::Object();
  mine.Set("verb", obs::JsonValue::String("MINE"));
  mine.Set("minsup", obs::JsonValue::Double(0.05));
  mine.Set("top", obs::JsonValue::Uint(5));
  obs::JsonValue mined = service.Handle(mine);
  ASSERT_TRUE(mined.at("ok").AsBool()) << mined.Serialize(0);
  EXPECT_LE(mined.at("patterns").size(), 5u);
  EXPECT_GE(mined.at("total_frequent").AsUint(),
            mined.at("patterns").size());

  // STATS carries the schema-versioned service report.
  obs::JsonValue stats = obs::JsonValue::Object();
  stats.Set("verb", obs::JsonValue::String("STATS"));
  obs::JsonValue report = service.Handle(stats);
  ASSERT_TRUE(report.at("ok").AsBool());
  const obs::JsonValue& doc = report.at("report");
  EXPECT_EQ(doc.at("schema_version").AsInt(), kServiceReportSchemaVersion);
  EXPECT_EQ(doc.at("kind").AsString(), "bbsmined_service");
  EXPECT_TRUE(doc.at("service").at("mine_enabled").AsBool());
  // The latency histograms rendered with the run-report histogram shape.
  const obs::JsonValue& latency = doc.at("metrics").at("latency_us");
  for (const char* verb : {"ping", "count", "insert", "mine", "stats"}) {
    ASSERT_TRUE(latency.Has(verb)) << verb;
    EXPECT_TRUE(latency.at(verb).Has("by_depth"));
    EXPECT_TRUE(latency.at(verb).Has("total"));
  }
  EXPECT_GE(latency.at("count").at("total").AsUint(), QueryMix().size());

  // Unknown and malformed verbs answer ok=false, not a dropped connection.
  obs::JsonValue junk = obs::JsonValue::Object();
  junk.Set("verb", obs::JsonValue::String("EXPLODE"));
  EXPECT_FALSE(service.Handle(junk).at("ok").AsBool());
  EXPECT_FALSE(service.Handle(obs::JsonValue::Null()).at("ok").AsBool());
  EXPECT_EQ(service.Handle(obs::JsonValue::Null()).at("error")
                .at("code").AsString(),
            "InvalidArgument");
}

TEST(BbsServiceTest, MineWithoutDatabaseFails) {
  Fixture fx = MakeFixture(20, 60, 32);
  auto manager = SnapshotManager::FromIndex(fx.index);
  ASSERT_TRUE(manager.ok());
  BbsService service(&*manager, nullptr, ServiceOptions{});
  obs::JsonValue mine = obs::JsonValue::Object();
  mine.Set("verb", obs::JsonValue::String("MINE"));
  obs::JsonValue response = service.Handle(mine);
  EXPECT_FALSE(response.at("ok").AsBool());
  obs::JsonValue report = service.BuildStatsReport();
  EXPECT_FALSE(report.at("service").at("mine_enabled").AsBool());
}

TEST(BbsServiceTest, DrainRefusesNewWork) {
  Fixture fx = MakeFixture(21, 60, 32);
  auto manager = SnapshotManager::FromIndex(fx.index);
  ASSERT_TRUE(manager.ok());
  BbsService service(&*manager, &fx.db, ServiceOptions{});
  service.Drain();
  obs::JsonValue count = service.Handle(CountRequest({1}));
  EXPECT_FALSE(count.at("ok").AsBool());
  EXPECT_EQ(count.at("error").at("code").AsString(), "Unavailable");
  obs::JsonValue insert = obs::JsonValue::Object();
  insert.Set("verb", obs::JsonValue::String("INSERT"));
  insert.Set("items", ItemsToJson({1}));
  EXPECT_FALSE(service.Handle(insert).at("ok").AsBool());
  // PING still answers so a supervisor can watch the drain.
  obs::JsonValue ping = obs::JsonValue::Object();
  ping.Set("verb", obs::JsonValue::String("PING"));
  EXPECT_TRUE(service.Handle(ping).at("ok").AsBool());
}

// ---------------------------------------------------------------------------
// Socket server end to end.

TEST(SocketServerTest, ServesConcurrentClientsBitIdentically) {
  Fixture fx = MakeFixture(22, 300, 64);
  auto manager = SnapshotManager::FromIndex(fx.index);
  ASSERT_TRUE(manager.ok());
  BbsService service(&*manager, &fx.db, ServiceOptions{});
  SocketServerOptions options;
  options.poll_interval_ms = 50;
  SocketServer server(&service, options);
  Status started = server.Start();
  if (!started.ok()) {
    GTEST_SKIP() << "cannot bind a loopback socket here: "
                 << started.ToString();
  }

  std::vector<Itemset> queries = QueryMix();
  std::vector<uint64_t> answers(queries.size(), 0);
  std::vector<std::string> failures;
  std::mutex failures_mu;
  std::vector<std::thread> clients;
  for (size_t c = 0; c < 4; ++c) {
    clients.emplace_back([&, c] {
      auto fd = ConnectTcp("127.0.0.1", server.port());
      if (!fd.ok()) {
        std::lock_guard<std::mutex> lock(failures_mu);
        failures.push_back(fd.status().ToString());
        return;
      }
      // Each client owns a stride of the query mix, several per connection.
      for (size_t i = c; i < queries.size(); i += 4) {
        if (!WriteFrame(fd->get(), CountRequest(queries[i])).ok()) return;
        auto response = ReadFrame(fd->get(), /*timeout_ms=*/10'000);
        if (!response.ok() || !response->at("ok").AsBool()) {
          std::lock_guard<std::mutex> lock(failures_mu);
          failures.push_back("query " + std::to_string(i) + " failed");
          return;
        }
        answers[i] = response->at("count").AsUint();
      }
    });
  }
  for (std::thread& t : clients) t.join();
  server.Stop();
  ASSERT_TRUE(failures.empty()) << failures.front();
  for (size_t i = 0; i < queries.size(); ++i) {
    EXPECT_EQ(answers[i], fx.index.CountItemSet(queries[i]))
        << ItemsetToString(queries[i]);
  }
}

// ---------------------------------------------------------------------------
// Client retry: behavior against a saturated scheduler, a healthy daemon,
// and a dead endpoint. Backoffs are shrunk to keep the test fast; jitter is
// seeded, so the schedule is deterministic.

RetryOptions FastRetry(uint32_t retries) {
  RetryOptions retry;
  retry.retries = retries;
  retry.backoff_ms = 1;
  retry.max_backoff_ms = 4;
  retry.timeout_ms = 5'000;
  return retry;
}

TEST(ClientRetryTest, SaturatedSchedulerExhaustsRetriesDistinctly) {
  Fixture fx = MakeFixture(23, 100, 64);
  auto manager = SnapshotManager::FromIndex(fx.index);
  ASSERT_TRUE(manager.ok());
  ServiceOptions options;
  options.scheduler.max_pending = 0;  // every COUNT admission bounces
  BbsService service(&*manager, &fx.db, options);
  SocketServer server(&service, SocketServerOptions{});
  Status started = server.Start();
  if (!started.ok()) {
    GTEST_SKIP() << "cannot bind a loopback socket here: "
                 << started.ToString();
  }

  auto outcome =
      CallWithRetry("127.0.0.1", server.port(), CountRequest({1}),
                    FastRetry(/*retries=*/3));
  server.Stop();

  // Backpressure that outlives the retry budget is NOT a transport error:
  // the call "succeeds" in obtaining a definitive final response, and the
  // exhaustion is flagged so the CLI can exit with its dedicated code.
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  EXPECT_EQ(outcome->attempts, 4u);  // 1 initial + 3 retries
  EXPECT_TRUE(outcome->backpressure_exhausted);
  EXPECT_FALSE(outcome->response.at("ok").AsBool());
  EXPECT_EQ(outcome->response.at("error").at("code").AsString(),
            StatusCodeName(StatusCode::kUnavailable));
}

TEST(ClientRetryTest, HealthyServiceAnswersOnTheFirstAttempt) {
  Fixture fx = MakeFixture(24, 150, 64);
  auto manager = SnapshotManager::FromIndex(fx.index);
  ASSERT_TRUE(manager.ok());
  BbsService service(&*manager, &fx.db, ServiceOptions{});
  SocketServer server(&service, SocketServerOptions{});
  Status started = server.Start();
  if (!started.ok()) {
    GTEST_SKIP() << "cannot bind a loopback socket here: "
                 << started.ToString();
  }

  Itemset query{1, 4};
  auto outcome = CallWithRetry("127.0.0.1", server.port(),
                               CountRequest(query), FastRetry(3));
  server.Stop();
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  EXPECT_EQ(outcome->attempts, 1u);
  EXPECT_FALSE(outcome->backpressure_exhausted);
  ASSERT_TRUE(outcome->response.at("ok").AsBool());
  EXPECT_EQ(outcome->response.at("count").AsUint(),
            fx.index.CountItemSet(query));
}

TEST(ClientRetryTest, IdempotentVerbClassification) {
  EXPECT_TRUE(IsIdempotentVerb("PING"));
  EXPECT_TRUE(IsIdempotentVerb("COUNT"));
  EXPECT_TRUE(IsIdempotentVerb("STATS"));
  EXPECT_TRUE(IsIdempotentVerb("MINE"));
  // INSERT mutates; CHECKPOINT and unknown verbs default to at-most-once.
  EXPECT_FALSE(IsIdempotentVerb("INSERT"));
  EXPECT_FALSE(IsIdempotentVerb("CHECKPOINT"));
  EXPECT_FALSE(IsIdempotentVerb("FROB"));
  EXPECT_FALSE(IsIdempotentVerb(""));
}

TEST(ClientRetryTest, BackoffNeverExceedsConfiguredMaximum) {
  // Regression: jitter used to be added after the clamp, so late attempts
  // could sleep up to ~2x max_backoff_ms. Sweep deep attempt counts and
  // several jitter seeds; no backoff may ever exceed the cap.
  RetryOptions options;
  options.backoff_ms = 100;
  options.max_backoff_ms = 750;
  for (uint64_t seed = 1; seed <= 5; ++seed) {
    uint64_t jitter_state = seed;
    for (uint32_t attempt = 1; attempt <= 30; ++attempt) {
      uint64_t backoff = RetryBackoffMs(options, attempt, &jitter_state);
      EXPECT_LE(backoff, options.max_backoff_ms)
          << "attempt " << attempt << " seed " << seed;
      // The exponential base (pre-jitter) is a floor: backoff dips below
      // it only if jitter could be negative, which it cannot.
      uint64_t base = std::min<uint64_t>(
          static_cast<uint64_t>(options.backoff_ms)
              << std::min<uint32_t>(attempt - 1, 20),
          options.max_backoff_ms);
      EXPECT_GE(backoff, base);
    }
  }
}

// ---------------------------------------------------------------------------
// The at-most-once contract: a response timeout on INSERT must NOT trigger
// a blind re-send. The relay below wraps a real BbsService: it applies
// every request it receives, then answers too slowly for the client's
// timeout — exactly the failure mode where the old retry loop would
// double-apply.

class SlowRelay {
 public:
  SlowRelay(BbsService* service, int delay_ms)
      : service_(service), delay_ms_(delay_ms) {}

  Status Start() {
    Result<OwnedFd> listener = ListenTcp("127.0.0.1", 0);
    if (!listener.ok()) return listener.status();
    Result<uint16_t> port = BoundPort(listener->get());
    if (!port.ok()) return port.status();
    listener_ = std::move(*listener);
    port_ = *port;
    thread_ = std::thread([this] { Loop(); });
    return Status::Ok();
  }

  void Stop() {
    stop_.store(true);
    if (thread_.joinable()) thread_.join();
  }

  uint16_t port() const { return port_; }
  int handled() const { return handled_.load(); }

  /// Blocks until the relay has applied `n` requests (bounded wait).
  bool WaitForHandled(int n) {
    for (int i = 0; i < 400; ++i) {
      if (handled_.load() >= n) return true;
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    return false;
  }

 private:
  void Loop() {
    while (!stop_.load()) {
      Result<OwnedFd> conn = AcceptWithTimeout(listener_.get(), 20);
      if (!conn.ok() || !conn->valid()) continue;
      Result<obs::JsonValue> request = ReadFrame(conn->get(), 1000);
      if (!request.ok()) continue;
      obs::JsonValue response = service_->Handle(*request);
      handled_.fetch_add(1);  // the request IS applied at this point
      std::this_thread::sleep_for(std::chrono::milliseconds(delay_ms_));
      (void)WriteFrame(conn->get(), response);  // client is likely gone
    }
  }

  BbsService* service_;
  int delay_ms_;
  OwnedFd listener_;
  uint16_t port_ = 0;
  std::thread thread_;
  std::atomic<bool> stop_{false};
  std::atomic<int> handled_{0};
};

TEST(ClientRetryTest, TimedOutInsertIsIndeterminateAndAppliedExactlyOnce) {
  Fixture fx = MakeFixture(26, 80, 64);
  auto manager = SnapshotManager::FromIndex(fx.index);
  ASSERT_TRUE(manager.ok());
  BbsService service(&*manager, &fx.db, ServiceOptions{});
  SlowRelay relay(&service, /*delay_ms=*/250);
  Status started = relay.Start();
  if (!started.ok()) {
    GTEST_SKIP() << "cannot bind a loopback socket here: "
                 << started.ToString();
  }
  size_t before = manager->num_transactions();

  obs::JsonValue insert = obs::JsonValue::Object();
  insert.Set("verb", obs::JsonValue::String("INSERT"));
  insert.Set("items", ItemsToJson({1, 2, 3}));
  RetryOptions options = FastRetry(/*retries=*/3);
  options.timeout_ms = 100;  // well under the relay's 250 ms stall
  auto outcome = CallWithRetry("127.0.0.1", relay.port(), insert, options);

  // The client must report the unknown outcome, not retry: with the old
  // timeout-retry loop this re-sends the INSERT and the relay applies it
  // again (handled > 1, transactions = before + 2+).
  ASSERT_FALSE(outcome.ok());
  EXPECT_EQ(outcome.status().code(), StatusCode::kIndeterminate)
      << outcome.status().ToString();
  ASSERT_TRUE(relay.WaitForHandled(1));
  relay.Stop();
  EXPECT_EQ(relay.handled(), 1);
  EXPECT_EQ(manager->num_transactions(), before + 1);
}

TEST(ClientRetryTest, TimedOutCountIsStillRetried) {
  Fixture fx = MakeFixture(27, 80, 64);
  auto manager = SnapshotManager::FromIndex(fx.index);
  ASSERT_TRUE(manager.ok());
  BbsService service(&*manager, &fx.db, ServiceOptions{});
  SlowRelay relay(&service, /*delay_ms=*/200);
  Status started = relay.Start();
  if (!started.ok()) {
    GTEST_SKIP() << "cannot bind a loopback socket here: "
                 << started.ToString();
  }

  RetryOptions options = FastRetry(/*retries=*/2);
  options.timeout_ms = 50;
  auto outcome =
      CallWithRetry("127.0.0.1", relay.port(), CountRequest({1}), options);

  // COUNT is idempotent: every attempt may be re-sent, and when they all
  // time out the final status is the retryable kUnavailable — never
  // kIndeterminate.
  ASSERT_FALSE(outcome.ok());
  EXPECT_EQ(outcome.status().code(), StatusCode::kUnavailable)
      << outcome.status().ToString();
  ASSERT_TRUE(relay.WaitForHandled(3));  // 1 initial + 2 retries
  relay.Stop();
  EXPECT_EQ(relay.handled(), 3);
}

TEST(ClientRetryTest, TransportErrorsAreNotRetried) {
  // Grab a port that briefly had a listener, then kill it: the connect is
  // refused, which must surface as an immediate transport error (distinct
  // from kUnavailable) rather than burn the retry budget.
  Fixture fx = MakeFixture(25, 50, 64);
  auto manager = SnapshotManager::FromIndex(fx.index);
  ASSERT_TRUE(manager.ok());
  BbsService service(&*manager, &fx.db, ServiceOptions{});
  SocketServer server(&service, SocketServerOptions{});
  Status started = server.Start();
  if (!started.ok()) {
    GTEST_SKIP() << "cannot bind a loopback socket here: "
                 << started.ToString();
  }
  uint16_t dead_port = server.port();
  server.Stop();

  auto outcome = CallWithRetry("127.0.0.1", dead_port, CountRequest({1}),
                               FastRetry(5));
  ASSERT_FALSE(outcome.ok());
  EXPECT_NE(outcome.status().code(), StatusCode::kUnavailable)
      << outcome.status().ToString();
}

}  // namespace
}  // namespace bbsmine::service
