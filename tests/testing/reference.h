// Test-support helpers: a brute-force reference miner and database builders
// used across the test suite to validate every mining algorithm against
// ground truth.

#ifndef BBSMINE_TESTS_TESTING_REFERENCE_H_
#define BBSMINE_TESTS_TESTING_REFERENCE_H_

#include <cstdint>
#include <initializer_list>
#include <vector>

#include "core/mining_types.h"
#include "storage/transaction_db.h"
#include "util/rng.h"

namespace bbsmine::testing {

/// Exact frequent-pattern mining by tidset intersection (Eclat-style DFS).
/// Intended for small/medium databases; the result is sorted
/// lexicographically by itemset.
std::vector<Pattern> BruteForceMine(const TransactionDatabase& db,
                                    uint64_t tau);

/// Exact support of one itemset by full scan.
uint64_t BruteForceSupport(const TransactionDatabase& db,
                           const Itemset& items);

/// Builds a database from literal itemsets (TIDs auto-assigned 0, 1, ...).
TransactionDatabase MakeDb(std::initializer_list<Itemset> transactions);

/// The paper's running example (Table 1): five transactions over items
/// 0..15, TIDs 100..500.
TransactionDatabase PaperExampleDb();

/// A random database: `num_transactions` transactions of ~`avg_len` items
/// drawn uniformly from [0, universe).
TransactionDatabase RandomDb(uint64_t seed, size_t num_transactions,
                             ItemId universe, double avg_len);

/// Extracts the sorted itemsets of a pattern list (drops supports).
std::vector<Itemset> ItemsetsOf(const std::vector<Pattern>& patterns);

}  // namespace bbsmine::testing

#endif  // BBSMINE_TESTS_TESTING_REFERENCE_H_
