#include "testing/reference.h"

#include <algorithm>
#include <map>

namespace bbsmine::testing {

namespace {

struct TidList {
  ItemId item;
  std::vector<uint32_t> tids;
};

void EclatRecurse(const std::vector<TidList>& lists, size_t first,
                  uint64_t tau, Itemset* current,
                  std::vector<Pattern>* out) {
  for (size_t i = first; i < lists.size(); ++i) {
    if (lists[i].tids.size() < tau) continue;
    current->push_back(lists[i].item);
    out->push_back(Pattern{*current, lists[i].tids.size()});

    // Intersect every later list with this one.
    std::vector<TidList> next;
    for (size_t j = i + 1; j < lists.size(); ++j) {
      TidList merged{lists[j].item, {}};
      std::set_intersection(lists[i].tids.begin(), lists[i].tids.end(),
                            lists[j].tids.begin(), lists[j].tids.end(),
                            std::back_inserter(merged.tids));
      if (merged.tids.size() >= tau) next.push_back(std::move(merged));
    }
    EclatRecurse(next, 0, tau, current, out);
    current->pop_back();
  }
}

}  // namespace

std::vector<Pattern> BruteForceMine(const TransactionDatabase& db,
                                    uint64_t tau) {
  std::map<ItemId, std::vector<uint32_t>> by_item;
  for (size_t t = 0; t < db.size(); ++t) {
    for (ItemId item : db.At(t).items) {
      by_item[item].push_back(static_cast<uint32_t>(t));
    }
  }
  std::vector<TidList> lists;
  for (auto& [item, tids] : by_item) {
    lists.push_back(TidList{item, std::move(tids)});
  }

  std::vector<Pattern> out;
  Itemset current;
  EclatRecurse(lists, 0, tau, &current, &out);
  std::sort(out.begin(), out.end(),
            [](const Pattern& a, const Pattern& b) { return a.items < b.items; });
  return out;
}

uint64_t BruteForceSupport(const TransactionDatabase& db,
                           const Itemset& items) {
  uint64_t count = 0;
  for (size_t t = 0; t < db.size(); ++t) {
    if (IsSubsetOf(items, db.At(t).items)) ++count;
  }
  return count;
}

TransactionDatabase MakeDb(std::initializer_list<Itemset> transactions) {
  TransactionDatabase db;
  for (const Itemset& items : transactions) db.Append(items);
  return db;
}

TransactionDatabase PaperExampleDb() {
  TransactionDatabase db;
  db.AppendTransaction(Transaction{100, {0, 1, 2, 3, 4, 5, 14, 15}});
  db.AppendTransaction(Transaction{200, {1, 2, 3, 5, 6, 7}});
  db.AppendTransaction(Transaction{300, {1, 5, 14, 15}});
  db.AppendTransaction(Transaction{400, {0, 1, 2, 7}});
  db.AppendTransaction(Transaction{500, {1, 2, 5, 6, 11, 15}});
  return db;
}

TransactionDatabase RandomDb(uint64_t seed, size_t num_transactions,
                             ItemId universe, double avg_len) {
  Rng rng(seed);
  TransactionDatabase db;
  Itemset items;
  for (size_t t = 0; t < num_transactions; ++t) {
    size_t len = std::max<uint64_t>(1, rng.Poisson(avg_len));
    items.clear();
    for (size_t i = 0; i < len; ++i) {
      items.push_back(static_cast<ItemId>(rng.Uniform(universe)));
    }
    db.Append(items);
  }
  return db;
}

std::vector<Itemset> ItemsetsOf(const std::vector<Pattern>& patterns) {
  std::vector<Itemset> out;
  out.reserve(patterns.size());
  for (const Pattern& p : patterns) out.push_back(p.items);
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace bbsmine::testing
