// Tests for per-shard WAL replication: the WALSTREAM read path over the
// log, the checkpoint-truncate replication floor, a live primary→follower
// tail over real sockets, semi-sync acknowledgement, watermark resume
// after a follower restart, and fenced promotion.
//
// The load-bearing property is the acked-prefix contract: every
// transaction a primary acknowledged is bit-identically countable on the
// follower once the stream catches up, and nothing the follower applies
// can diverge from the primary's WAL order.

#include <gtest/gtest.h>
#include <unistd.h>

#include <chrono>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "core/segmented_bbs.h"
#include "obs/json.h"
#include "service/durability.h"
#include "service/replication.h"
#include "service/server.h"
#include "service/snapshot.h"
#include "service/wal.h"
#include "service/wire.h"
#include "storage/transaction_db.h"
#include "util/socket.h"
#include "util/status.h"

namespace bbsmine::service {
namespace {

BbsConfig SmallConfig() {
  BbsConfig config;
  config.num_bits = 256;
  config.num_hashes = 3;
  return config;
}

constexpr uint64_t kCapacity = 4;

/// A fresh empty directory under the system temp dir.
std::string TempDir(const std::string& name) {
  std::string dir = (std::filesystem::temp_directory_path() /
                     (std::to_string(::getpid()) + "_" + name))
                        .string();
  std::filesystem::remove_all(dir);
  return dir;
}

SegmentedBbs EmptyIndex() {
  return SegmentedBbs::Create(SmallConfig(), kCapacity).value();
}

std::vector<std::vector<Itemset>> SampleBatches() {
  return {
      {{1, 2, 3}},
      {{2, 3}, {4, 5}},
      {{1}, {2}, {3, 4, 5, 6}},
      {{7, 8}},
  };
}

uint64_t TotalTxns(const std::vector<std::vector<Itemset>>& batches) {
  uint64_t total = 0;
  for (const auto& batch : batches) total += batch.size();
  return total;
}

obs::JsonValue InsertRequest(const std::vector<Itemset>& batch) {
  obs::JsonValue request = obs::JsonValue::Object();
  request.Set("verb", obs::JsonValue::String("INSERT"));
  obs::JsonValue txns = obs::JsonValue::Array();
  for (const Itemset& items : batch) txns.Append(ItemsToJson(items));
  request.Set("transactions", std::move(txns));
  return request;
}

obs::JsonValue CountRequest(const Itemset& items) {
  obs::JsonValue request = obs::JsonValue::Object();
  request.Set("verb", obs::JsonValue::String("COUNT"));
  request.Set("items", ItemsToJson(items));
  return request;
}

obs::JsonValue PromoteRequest(uint64_t term) {
  obs::JsonValue request = obs::JsonValue::Object();
  request.Set("verb", obs::JsonValue::String("PROMOTE"));
  request.Set("term", obs::JsonValue::Uint(term));
  return request;
}

/// Polls `pred` until it holds or `timeout_ms` elapses.
bool WaitUntil(const std::function<bool()>& pred, int timeout_ms = 15'000) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  while (std::chrono::steady_clock::now() < deadline) {
    if (pred()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  return pred();
}

/// One in-process bbsmined node wired exactly as tools/bbsmined_main.cpp
/// wires it: durable directory, snapshot manager, replication source
/// (always — a primary streams whenever a follower asks), optional
/// follower tailing another node, service, and a real TCP server.
struct Node {
  std::string dir;
  TransactionDatabase db;
  std::unique_ptr<DurabilityManager> durability;
  std::optional<SnapshotManager> manager;
  std::unique_ptr<ReplicationSource> source;
  std::unique_ptr<ReplicationFollower> follower;
  std::unique_ptr<BbsService> service;
  std::unique_ptr<SocketServer> server;
  /// The follower's apply target; set once `service` exists (the follower
  /// object is built first because ServiceOptions carries its pointer).
  BbsService* apply_target = nullptr;

  ~Node() {
    // The follower thread applies into `service`; stop it before any of
    // that machinery is torn down.
    if (follower != nullptr) follower->Stop();
    if (server != nullptr) server->Stop();
  }

  uint16_t port() const { return server->port(); }
  uint64_t applied() const { return manager->num_transactions(); }
  obs::JsonValue Call(const obs::JsonValue& request) {
    return service->Handle(request);
  }
  uint64_t Count(const Itemset& items) {
    obs::JsonValue response = Call(CountRequest(items));
    EXPECT_TRUE(response.at("ok").AsBool()) << response.Serialize(0);
    return response.at("count").AsUint();
  }
  obs::JsonValue ReplicationStats() {
    obs::JsonValue stats = obs::JsonValue::Object();
    stats.Set("verb", obs::JsonValue::String("STATS"));
    obs::JsonValue response = Call(stats);
    EXPECT_TRUE(response.at("ok").AsBool()) << response.Serialize(0);
    return response.at("report").at("replication");
  }
};

struct NodeOptions {
  uint16_t follow_port = 0;  ///< 0 = primary; else tail this endpoint
  bool repl_ack = false;
  int repl_ack_timeout_ms = 5'000;
};

std::unique_ptr<Node> MakeNode(const std::string& name,
                               const NodeOptions& node_options) {
  auto node = std::make_unique<Node>();
  node->dir = TempDir(name);
  auto opened = DurabilityManager::Open(
      DurabilityOptions{node->dir, WalOptions(), 0}, EmptyIndex(), &node->db);
  EXPECT_TRUE(opened.ok()) << opened.status().ToString();
  if (!opened.ok()) return nullptr;
  node->durability = std::move(*opened);
  auto manager = SnapshotManager::FromIndex(node->durability->TakeRecoveredIndex());
  EXPECT_TRUE(manager.ok());
  if (!manager.ok()) return nullptr;
  node->manager.emplace(std::move(*manager));

  SnapshotManager* index = &*node->manager;
  node->source = std::make_unique<ReplicationSource>(
      node->durability.get(),
      [index] { return static_cast<uint64_t>(index->num_transactions()); },
      ReplicationSourceOptions{});

  if (node_options.follow_port != 0) {
    ReplicationFollowerOptions follow;
    follow.host = "127.0.0.1";
    follow.port = node_options.follow_port;
    follow.reconnect_backoff_ms = 50;
    Node* raw = node.get();
    node->follower = std::make_unique<ReplicationFollower>(
        follow,
        [index] { return static_cast<uint64_t>(index->num_transactions()); },
        [raw](const std::vector<std::vector<Itemset>>& batches) {
          return raw->apply_target->ApplyReplicated(batches);
        });
  }

  ServiceOptions options;
  options.durability = node->durability.get();
  options.replication = node->source.get();
  options.follower = node->follower.get();
  options.repl_ack = node_options.repl_ack;
  options.repl_ack_timeout_ms = node_options.repl_ack_timeout_ms;
  options.term_file = node->dir + "/term";
  options.term = 1;
  options.role = node->follower != nullptr ? ServiceRole::kFollower
                                           : ServiceRole::kPrimary;
  ReplicationFollower* follower_raw = node->follower.get();
  options.on_promote = [follower_raw] {
    if (follower_raw != nullptr) follower_raw->Stop();
  };
  node->service =
      std::make_unique<BbsService>(&*node->manager, &node->db, options);
  node->apply_target = node->service.get();

  node->server = std::make_unique<SocketServer>(node->service.get(),
                                                SocketServerOptions{});
  Status started = node->server->Start();
  EXPECT_TRUE(started.ok()) << started.ToString();
  if (!started.ok()) return nullptr;
  if (node->follower != nullptr) node->follower->Start();
  return node;
}

// ---------------------------------------------------------------------------
// Hex codec.

TEST(ReplicationCodecTest, HexRoundTripAndRejects) {
  EXPECT_EQ(HexEncode(""), "");
  const std::string bytes = std::string("\x00\x7f\xff\x10", 4);
  const std::string hex = HexEncode(bytes);
  EXPECT_EQ(hex, "007fff10");
  auto decoded = HexDecode(hex);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(*decoded, bytes);
  // Upper-case digits decode too (be liberal in what you accept).
  EXPECT_EQ(HexDecode("007FFF10").value(), bytes);
  EXPECT_EQ(HexDecode("abc").status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(HexDecode("zz").status().code(), StatusCode::kInvalidArgument);
}

// ---------------------------------------------------------------------------
// The WALSTREAM read path over the log file.

/// A WAL at `dir`/wal holding SampleBatches-shaped records.
std::string MakeWal(const std::string& name,
                    const std::vector<std::vector<Itemset>>& batches) {
  std::string dir = TempDir(name);
  std::filesystem::create_directories(dir);
  std::string path = dir + "/wal";
  auto wal = WriteAheadLog::Create(path, 0, WalOptions());
  EXPECT_TRUE(wal.ok());
  for (const auto& batch : batches) {
    EXPECT_TRUE(wal->Append(batch).ok());
  }
  return path;
}

TEST(WalStreamTest, ReadsWholeRecordsFromAnyAlignedWatermark) {
  // Batches of 1, 2, and 1 transactions: records start at txns 0, 1, 3.
  std::vector<std::vector<Itemset>> batches = {
      {{1, 2, 3}}, {{2, 3}, {4, 5}}, {{6}}};
  std::string path = MakeWal("repl_stream", batches);

  auto all = WriteAheadLog::ReadRecordsFrom(path, 0, 1 << 20);
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(all->start_txn, 0u);
  EXPECT_EQ(all->records, 3u);
  EXPECT_EQ(all->transactions, 4u);
  EXPECT_EQ(all->log_end_txn, 4u);
  EXPECT_EQ(all->bytes_remaining, all->data.size());
  std::vector<std::vector<Itemset>> decoded;
  ASSERT_TRUE(WriteAheadLog::DecodeRecords(all->data, &decoded).ok());
  EXPECT_EQ(decoded, batches);

  // Resume mid-log at a record boundary: only the suffix ships.
  auto tail = WriteAheadLog::ReadRecordsFrom(path, 1, 1 << 20);
  ASSERT_TRUE(tail.ok());
  EXPECT_EQ(tail->start_txn, 1u);
  EXPECT_EQ(tail->records, 2u);
  EXPECT_EQ(tail->transactions, 3u);
  decoded.clear();
  ASSERT_TRUE(WriteAheadLog::DecodeRecords(tail->data, &decoded).ok());
  EXPECT_EQ(decoded,
            std::vector<std::vector<Itemset>>({{{2, 3}, {4, 5}}, {{6}}}));

  // Caught up: an empty chunk that still reports where the log ends.
  auto end = WriteAheadLog::ReadRecordsFrom(path, 4, 1 << 20);
  ASSERT_TRUE(end.ok());
  EXPECT_EQ(end->records, 0u);
  EXPECT_EQ(end->log_end_txn, 4u);
  EXPECT_TRUE(end->data.empty());

  // A watermark past the log or inside a record is never valid: batches
  // are the atomic unit, so no correct follower can produce either.
  EXPECT_EQ(WriteAheadLog::ReadRecordsFrom(path, 5, 1 << 20).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(WriteAheadLog::ReadRecordsFrom(path, 2, 1 << 20).status().code(),
            StatusCode::kCorruption);
}

TEST(WalStreamTest, WatermarkBeforeLogBaseDemandsBootstrap) {
  std::string path = MakeWal("repl_base", {{{1, 2}}, {{3}}});
  auto wal = WriteAheadLog::OpenForAppend(path, WalOptions());
  ASSERT_TRUE(wal.ok());
  ASSERT_TRUE(wal->Truncate(2).ok());  // checkpoint covered both records
  Status below = WriteAheadLog::ReadRecordsFrom(path, 1, 1 << 20).status();
  EXPECT_EQ(below.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(below.message().find("bootstrap"), std::string::npos);
}

TEST(WalStreamTest, MaxBytesCapsChunksWithoutLosingRecords) {
  std::vector<std::vector<Itemset>> batches = {
      {{1, 2, 3}}, {{2, 3}, {4, 5}}, {{1}, {2}}, {{7, 8}}};
  std::string path = MakeWal("repl_chunk", batches);

  // max_bytes=1 still ships one whole record (progress is guaranteed) and
  // reports the bytes it had to hold back as lag.
  auto first = WriteAheadLog::ReadRecordsFrom(path, 0, 1);
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(first->records, 1u);
  EXPECT_GT(first->bytes_remaining, first->data.size());

  // Walking the log one starved chunk at a time reassembles every batch.
  std::vector<std::vector<Itemset>> streamed;
  uint64_t cursor = 0;
  while (true) {
    auto chunk = WriteAheadLog::ReadRecordsFrom(path, cursor, 1);
    ASSERT_TRUE(chunk.ok());
    if (chunk->records == 0) break;
    std::vector<std::vector<Itemset>> decoded;
    ASSERT_TRUE(WriteAheadLog::DecodeRecords(chunk->data, &decoded).ok());
    for (auto& batch : decoded) streamed.push_back(std::move(batch));
    cursor += chunk->transactions;
  }
  EXPECT_EQ(streamed, batches);
}

TEST(WalStreamTest, NeverShipsATornTail) {
  std::vector<std::vector<Itemset>> batches = {{{1, 2}}, {{3, 4}}};
  std::string path = MakeWal("repl_torn", batches);
  {
    // A kill -9 mid-append: a frame header promising 64 bytes, then EOF.
    std::ofstream out(path, std::ios::binary | std::ios::app);
    const char torn[4] = {0x40, 0x00, 0x00, 0x00};
    out.write(torn, sizeof torn);
  }
  auto chunk = WriteAheadLog::ReadRecordsFrom(path, 0, 1 << 20);
  ASSERT_TRUE(chunk.ok());
  EXPECT_EQ(chunk->records, 2u);
  EXPECT_EQ(chunk->log_end_txn, 2u);
  // The torn bytes are neither shipped nor counted as lag.
  EXPECT_EQ(chunk->bytes_remaining, chunk->data.size());
  std::vector<std::vector<Itemset>> decoded;
  ASSERT_TRUE(WriteAheadLog::DecodeRecords(chunk->data, &decoded).ok());
  EXPECT_EQ(decoded, batches);
}

TEST(WalStreamTest, CursorResumesWithoutRescanningTheStreamedPrefix) {
  std::vector<std::vector<Itemset>> batches = {{{1, 2, 3}}, {{2, 3}, {4, 5}}};
  std::string path = MakeWal("repl_cursor", batches);

  WriteAheadLog::StreamCursor cursor;
  auto first = WriteAheadLog::ReadRecordsFrom(path, 0, 1 << 20, &cursor);
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(first->records, 2u);
  EXPECT_EQ(cursor.txn, 3u);

  // More records land; a cursor'd poll ships exactly the new ones.
  auto wal = WriteAheadLog::OpenForAppend(path, WalOptions());
  ASSERT_TRUE(wal.ok());
  ASSERT_TRUE(wal->Append({{7}}).ok());
  auto second = WriteAheadLog::ReadRecordsFrom(path, 3, 1 << 20, &cursor);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second->records, 1u);
  std::vector<std::vector<Itemset>> decoded;
  ASSERT_TRUE(WriteAheadLog::DecodeRecords(second->data, &decoded).ok());
  const std::vector<std::vector<Itemset>> appended = {{{7}}};
  EXPECT_EQ(decoded, appended);
  EXPECT_EQ(cursor.txn, 4u);

  // Proof the streamed prefix is genuinely skipped, not just re-parsed:
  // flip a byte inside the FIRST record on disk. The cursor'd poll seeks
  // past it and succeeds; a cursor-less scan of the same watermark must
  // walk the file from its base and trips over the damage.
  {
    std::fstream f(path, std::ios::binary | std::ios::in | std::ios::out);
    f.seekg(24 + 8);  // header, then the first record's 8-byte frame
    char byte = 0;
    f.read(&byte, 1);
    byte = static_cast<char>(byte ^ 0x01);
    f.seekp(24 + 8);
    f.write(&byte, 1);
  }
  auto cached = WriteAheadLog::ReadRecordsFrom(path, 4, 1 << 20, &cursor);
  ASSERT_TRUE(cached.ok()) << cached.status().ToString();
  EXPECT_EQ(cached->records, 0u);
  EXPECT_EQ(WriteAheadLog::ReadRecordsFrom(path, 4, 1 << 20).status().code(),
            StatusCode::kCorruption);

  // A checkpoint truncation atomically replaces the file with a new
  // base: the stale cursor must be detected and the scan fall back to a
  // fresh walk of the (now empty) log rather than trust a dead offset.
  ASSERT_TRUE(wal->Truncate(4).ok());
  auto after = WriteAheadLog::ReadRecordsFrom(path, 4, 1 << 20, &cursor);
  ASSERT_TRUE(after.ok()) << after.status().ToString();
  EXPECT_EQ(after->records, 0u);
  EXPECT_EQ(cursor.base_txn, 4u);
  EXPECT_EQ(cursor.txn, 4u);
  EXPECT_EQ(cursor.offset, 24u);  // right after the fresh header
}

TEST(WalStreamTest, DecodeRejectsCorruptOrTruncatedChunks) {
  std::string path = MakeWal("repl_decode", {{{1, 2, 3}}, {{4, 5}}});
  auto chunk = WriteAheadLog::ReadRecordsFrom(path, 0, 1 << 20);
  ASSERT_TRUE(chunk.ok());

  std::vector<std::vector<Itemset>> decoded;
  std::string flipped = chunk->data;
  flipped[flipped.size() / 2] ^= 0x01;
  EXPECT_EQ(WriteAheadLog::DecodeRecords(flipped, &decoded).code(),
            StatusCode::kCorruption);

  std::string truncated = chunk->data.substr(0, chunk->data.size() - 3);
  EXPECT_EQ(WriteAheadLog::DecodeRecords(truncated, &decoded).code(),
            StatusCode::kCorruption);
}

// ---------------------------------------------------------------------------
// Checkpoint-truncate replication floor.

TEST(DurabilityReplicationTest, CheckpointDefersTruncationUntilFollowerAck) {
  std::string dir = TempDir("repl_floor");
  auto batches = SampleBatches();
  const uint64_t total = TotalTxns(batches);
  {
    auto opened = DurabilityManager::Open(
        DurabilityOptions{dir, WalOptions(), 0}, EmptyIndex(), nullptr);
    ASSERT_TRUE(opened.ok());
    auto mgr = std::move(*opened);
    auto manager =
        SnapshotManager::FromIndex(mgr->TakeRecoveredIndex()).value();
    for (const auto& batch : batches) {
      ASSERT_TRUE(mgr->LogInsert(batch).ok());
      for (const Itemset& items : batch) {
        ASSERT_TRUE(manager.Insert(items).ok());
      }
    }
    // A follower attached but has acked nothing: the checkpoint itself
    // commits, yet the WAL keeps every record the follower still needs.
    mgr->EnableReplicationRetention();
    ASSERT_TRUE(mgr->Checkpoint(manager.Acquire(), nullptr).ok());
    EXPECT_EQ(mgr->wal_truncations_deferred(), 1u);
    EXPECT_EQ(WriteAheadLog::ReadBaseTxnCount(dir + "/wal").value(), 0u);
    // The records are still fetchable from the follower's watermark.
    EXPECT_TRUE(
        WriteAheadLog::ReadRecordsFrom(dir + "/wal", 0, 1 << 20).ok());
  }

  // Recovery must tolerate the deferred state: a WAL based before the
  // checkpoint's coverage is exactly what the floor produces.
  auto reopened = DurabilityManager::Open(
      DurabilityOptions{dir, WalOptions(), 0}, EmptyIndex(), nullptr);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  auto mgr = std::move(*reopened);
  EXPECT_TRUE(mgr->recovery().checkpoint_loaded);
  auto manager = SnapshotManager::FromIndex(mgr->TakeRecoveredIndex()).value();
  EXPECT_EQ(manager.num_transactions(), total);

  // A partial ack still blocks truncation; acking through the checkpoint
  // boundary releases it on the next checkpoint.
  mgr->EnableReplicationRetention();
  mgr->NoteReplicationAck(3);
  ASSERT_TRUE(mgr->Checkpoint(manager.Acquire(), nullptr).ok());
  EXPECT_EQ(mgr->wal_truncations_deferred(), 1u);
  EXPECT_EQ(WriteAheadLog::ReadBaseTxnCount(dir + "/wal").value(), 0u);
  mgr->NoteReplicationAck(total);
  ASSERT_TRUE(mgr->Checkpoint(manager.Acquire(), nullptr).ok());
  EXPECT_EQ(WriteAheadLog::ReadBaseTxnCount(dir + "/wal").value(), total);
}

// ---------------------------------------------------------------------------
// End-to-end: a follower tails a primary over real sockets.

TEST(ReplicationE2ETest, FollowerTailsPrimaryAndMatchesEveryCount) {
  auto primary = MakeNode("repl_e2e_p", NodeOptions{});
  ASSERT_NE(primary, nullptr);
  auto batches = SampleBatches();
  for (const auto& batch : batches) {
    obs::JsonValue response = primary->Call(InsertRequest(batch));
    ASSERT_TRUE(response.at("ok").AsBool()) << response.Serialize(0);
  }
  const uint64_t total = TotalTxns(batches);

  NodeOptions follow;
  follow.follow_port = primary->port();
  auto follower = MakeNode("repl_e2e_f", follow);
  ASSERT_NE(follower, nullptr);

  // Backlog catch-up: everything inserted before the follower existed.
  ASSERT_TRUE(WaitUntil([&] { return follower->applied() == total; }));

  // Live tail: an insert after attach reaches the follower too.
  obs::JsonValue live = primary->Call(InsertRequest({{2, 3}, {9}}));
  ASSERT_TRUE(live.at("ok").AsBool());
  ASSERT_TRUE(WaitUntil([&] { return follower->applied() == total + 2; }));

  for (const Itemset& probe : std::vector<Itemset>{
           {1}, {2}, {2, 3}, {4, 5}, {3, 4, 5}, {7, 8}, {9}}) {
    EXPECT_EQ(follower->Count(probe), primary->Count(probe))
        << "probe diverged after replication";
  }

  // Both roles surface the stream in STATS.
  ASSERT_TRUE(WaitUntil([&] {
    return primary->source->stats().last_acked_txn == total + 2;
  }));
  obs::JsonValue primary_repl = primary->ReplicationStats();
  EXPECT_EQ(primary_repl.at("role").AsString(), "primary");
  EXPECT_EQ(primary_repl.at("followers").AsUint(), 1u);
  EXPECT_EQ(primary_repl.at("last_acked_txn").AsUint(), total + 2);
  EXPECT_EQ(primary_repl.at("lag_records").AsUint(), 0u);

  obs::JsonValue follower_repl = follower->ReplicationStats();
  EXPECT_EQ(follower_repl.at("role").AsString(), "follower");
  EXPECT_TRUE(follower_repl.at("connected").AsBool());
  EXPECT_EQ(follower_repl.at("last_applied_txn").AsUint(), total + 2);
  EXPECT_GE(follower_repl.at("records_applied").AsUint(), batches.size());

  // A follower is read-only: client INSERTs would fork its history.
  obs::JsonValue rejected = follower->Call(InsertRequest({{1}}));
  EXPECT_FALSE(rejected.at("ok").AsBool());
  EXPECT_NE(rejected.at("error").at("message").AsString().find(
                "read-only follower"),
            std::string::npos);
}

TEST(ReplicationE2ETest, SecondConcurrentFollowerIsRejected) {
  auto primary = MakeNode("repl_two_p", NodeOptions{});
  ASSERT_NE(primary, nullptr);
  NodeOptions follow;
  follow.follow_port = primary->port();
  auto follower = MakeNode("repl_two_f", follow);
  ASSERT_NE(follower, nullptr);
  ASSERT_TRUE(
      WaitUntil([&] { return primary->source->stats().followers == 1; }));

  // A second WALSTREAM handshake must be refused outright: the
  // replication floor and the semi-sync ack are one watermark, so a
  // second stream would let the faster follower's acks truncate WAL
  // records the slower one still needs — with no bootstrap path left.
  Result<OwnedFd> fd = ConnectTcp("127.0.0.1", primary->port(), 2'000);
  ASSERT_TRUE(fd.ok()) << fd.status().ToString();
  obs::JsonValue handshake = obs::JsonValue::Object();
  handshake.Set("verb", obs::JsonValue::String("WALSTREAM"));
  handshake.Set("watermark", obs::JsonValue::Uint(0));
  ASSERT_TRUE(WriteFrame(fd->get(), handshake).ok());
  Result<obs::JsonValue> reply = ReadFrame(fd->get(), 5'000);
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  EXPECT_FALSE(reply->at("ok").AsBool()) << reply->Serialize(0);
  EXPECT_NE(reply->at("error").at("message").AsString().find(
                "already attached"),
            std::string::npos);

  // The attached follower is untroubled and still streams.
  EXPECT_EQ(primary->source->stats().followers, 1u);
  obs::JsonValue inserted = primary->Call(InsertRequest({{11, 12}}));
  ASSERT_TRUE(inserted.at("ok").AsBool());
  ASSERT_TRUE(WaitUntil([&] { return follower->applied() == 1; }));
  EXPECT_EQ(follower->Count({11, 12}), 1u);
}

TEST(ReplicationE2ETest, SemiSyncAcksOnlyAfterFollowerIsDurable) {
  NodeOptions semi;
  semi.repl_ack = true;
  auto primary = MakeNode("repl_semi_p", semi);
  ASSERT_NE(primary, nullptr);
  NodeOptions follow;
  follow.follow_port = primary->port();
  auto follower = MakeNode("repl_semi_f", follow);
  ASSERT_NE(follower, nullptr);
  ASSERT_TRUE(
      WaitUntil([&] { return follower->follower->stats().connected; }));

  obs::JsonValue response = primary->Call(InsertRequest({{1, 2}, {3}}));
  ASSERT_TRUE(response.at("ok").AsBool()) << response.Serialize(0);
  ASSERT_TRUE(response.Has("replicated"));
  EXPECT_TRUE(response.at("replicated").AsBool());
  // The ack implies the follower already has the batch durably.
  EXPECT_EQ(follower->applied(), 2u);
}

TEST(ReplicationE2ETest, SemiSyncDegradesToUnreplicatedWithoutAFollower) {
  NodeOptions semi;
  semi.repl_ack = true;
  semi.repl_ack_timeout_ms = 50;
  auto primary = MakeNode("repl_semi_alone", semi);
  ASSERT_NE(primary, nullptr);

  obs::JsonValue response = primary->Call(InsertRequest({{1, 2}}));
  // MySQL-style degrade: the write is acked (it is durable locally) but
  // flagged so the operator can see the replication debt.
  ASSERT_TRUE(response.at("ok").AsBool()) << response.Serialize(0);
  ASSERT_TRUE(response.Has("replicated"));
  EXPECT_FALSE(response.at("replicated").AsBool());
  EXPECT_EQ(primary->source->stats().ack_timeouts, 1u);
  obs::JsonValue repl = primary->ReplicationStats();
  EXPECT_TRUE(repl.at("semi_sync").AsBool());
  EXPECT_EQ(repl.at("ack_timeouts").AsUint(), 1u);
}

TEST(ReplicationE2ETest, FollowerRestartResumesFromItsWatermark) {
  auto primary = MakeNode("repl_resume_p", NodeOptions{});
  ASSERT_NE(primary, nullptr);
  ASSERT_TRUE(primary->Call(InsertRequest({{1, 2}})).at("ok").AsBool());
  ASSERT_TRUE(primary->Call(InsertRequest({{3}, {4}})).at("ok").AsBool());

  NodeOptions follow;
  follow.follow_port = primary->port();
  auto follower = MakeNode("repl_resume_f", follow);
  ASSERT_NE(follower, nullptr);
  ASSERT_TRUE(WaitUntil([&] { return follower->applied() == 3; }));
  follower->follower->Stop();

  ASSERT_TRUE(primary->Call(InsertRequest({{5, 6}})).at("ok").AsBool());
  ASSERT_TRUE(primary->Call(InsertRequest({{7}})).at("ok").AsBool());

  // A fresh follower instance (same durable state) hands the primary its
  // applied watermark and receives only the two new records.
  SnapshotManager* index = &*follower->manager;
  BbsService* target = follower->service.get();
  ReplicationFollowerOptions options;
  options.host = "127.0.0.1";
  options.port = primary->port();
  options.reconnect_backoff_ms = 50;
  auto restarted = std::make_unique<ReplicationFollower>(
      options,
      [index] { return static_cast<uint64_t>(index->num_transactions()); },
      [target](const std::vector<std::vector<Itemset>>& batches) {
        return target->ApplyReplicated(batches);
      });
  restarted->Start();
  EXPECT_TRUE(WaitUntil([&] { return follower->applied() == 5; }));
  restarted->Stop();

  // Four records shipped in total across both sessions — a resume from
  // zero would have re-shipped the first two and made this six.
  EXPECT_EQ(primary->source->stats().records_shipped, 4u);
  EXPECT_EQ(follower->Count({1, 2}), 1u);
  EXPECT_EQ(follower->Count({5, 6}), 1u);
  EXPECT_EQ(follower->Count({7}), 1u);
}

// ---------------------------------------------------------------------------
// Promotion: term persistence, fencing, idempotency.

TEST(PromoteTest, PromotionPersistsTermStopsTheTailAndOpensWrites) {
  auto primary = MakeNode("repl_promo_p", NodeOptions{});
  ASSERT_NE(primary, nullptr);
  ASSERT_TRUE(primary->Call(InsertRequest({{1, 2}, {3}})).at("ok").AsBool());

  NodeOptions follow;
  follow.follow_port = primary->port();
  auto node = MakeNode("repl_promo_f", follow);
  ASSERT_NE(node, nullptr);
  ASSERT_TRUE(WaitUntil([&] { return node->applied() == 2; }));

  obs::JsonValue missing = obs::JsonValue::Object();
  missing.Set("verb", obs::JsonValue::String("PROMOTE"));
  EXPECT_FALSE(node->Call(missing).at("ok").AsBool());

  obs::JsonValue promoted = node->Call(PromoteRequest(5));
  ASSERT_TRUE(promoted.at("ok").AsBool()) << promoted.Serialize(0);
  EXPECT_TRUE(promoted.at("promoted").AsBool());
  EXPECT_EQ(promoted.at("role").AsString(), "primary");
  EXPECT_EQ(promoted.at("term").AsUint(), 5u);
  EXPECT_EQ(promoted.at("transactions").AsUint(), 2u);

  // The term survives a restart (read back the fencing token file) and
  // the promotion hook stopped the replication tail.
  std::ifstream term_file(node->dir + "/term");
  uint64_t persisted = 0;
  term_file >> persisted;
  EXPECT_EQ(persisted, 5u);
  EXPECT_TRUE(WaitUntil([&] { return !node->follower->stats().running; }));

  // Writes open up exactly at promotion.
  obs::JsonValue insert = node->Call(InsertRequest({{9}}));
  EXPECT_TRUE(insert.at("ok").AsBool()) << insert.Serialize(0);

  // Fencing: a staler router cannot move the node backwards; a retried
  // PROMOTE at the same term is idempotent, not an error.
  obs::JsonValue stale = node->Call(PromoteRequest(3));
  EXPECT_FALSE(stale.at("ok").AsBool());
  EXPECT_NE(stale.at("error").at("message").AsString().find("stale term"),
            std::string::npos);
  obs::JsonValue retried = node->Call(PromoteRequest(5));
  ASSERT_TRUE(retried.at("ok").AsBool());
  EXPECT_FALSE(retried.at("promoted").AsBool());

  obs::JsonValue repl = node->ReplicationStats();
  EXPECT_EQ(repl.at("role").AsString(), "primary");
  EXPECT_EQ(repl.at("term").AsUint(), 5u);
  EXPECT_EQ(repl.at("promotions").AsUint(), 1u);
}

// ---------------------------------------------------------------------------
// util satellite: connect timeouts must be honored, not inherited from
// the kernel's minutes-long SYN retry schedule.

TEST(SocketTest, ConnectTcpHonorsTimeoutWhenTheSynIsDropped) {
  // A local blackhole that needs no network assumptions: a listener whose
  // accept queue is full drops further SYNs, so the next connect hangs in
  // retransmission exactly like a connect to a dead host.
  auto listener = ListenTcp("127.0.0.1", 0, /*backlog=*/1);
  ASSERT_TRUE(listener.ok());
  const uint16_t port = BoundPort(listener->get()).value();

  std::vector<OwnedFd> queued;
  bool timed_out = false;
  for (int i = 0; i < 32; ++i) {
    const auto start = std::chrono::steady_clock::now();
    Result<OwnedFd> fd = ConnectTcp("127.0.0.1", port, 250);
    const auto elapsed =
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::steady_clock::now() - start)
            .count();
    if (fd.ok()) {
      queued.push_back(std::move(*fd));
      continue;
    }
    // The old blocking connect() ignored the caller's budget and hung for
    // the kernel's minutes-long SYN retry schedule; the poll-based path
    // must come back in roughly the 250 ms it was given.
    EXPECT_EQ(fd.status().code(), StatusCode::kUnavailable)
        << fd.status().ToString();
    EXPECT_GE(elapsed, 200);
    EXPECT_LT(elapsed, 5'000);
    timed_out = true;
    break;
  }
  EXPECT_TRUE(timed_out) << "accept queue never filled; no SYN was dropped";
}

}  // namespace
}  // namespace bbsmine::service
