// Tests for the open-loop traffic generator behind bbsbench.
//
// The property the whole harness leans on is *naming*: a (spec, seed)
// pair names one exact request stream, so a benchmark run can be
// reproduced bit-for-bit from its recorded config. The rest checks the
// statistical shape: mean rate, verb mix, Zipf skew, burst structure.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <map>
#include <vector>

#include "datagen/traffic_gen.h"

namespace bbsmine {
namespace {

bool SameStream(const std::vector<TrafficRequest>& a,
                const std::vector<TrafficRequest>& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].scheduled_us != b[i].scheduled_us || a[i].verb != b[i].verb ||
        a[i].items != b[i].items) {
      return false;
    }
  }
  return true;
}

TrafficSpec BaseSpec() {
  TrafficSpec spec;
  spec.seed = 7;
  spec.rate_rps = 2000;
  spec.duration_s = 5;
  spec.item_universe = 500;
  return spec;
}

TEST(TrafficGenTest, SameSeedNamesTheSameStream) {
  TrafficSpec spec = BaseSpec();
  auto a = GenerateTraffic(spec);
  auto b = GenerateTraffic(spec);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_FALSE(a->empty());
  EXPECT_TRUE(SameStream(*a, *b));

  spec.seed = 8;
  auto c = GenerateTraffic(spec);
  ASSERT_TRUE(c.ok());
  EXPECT_FALSE(SameStream(*a, *c));
}

TEST(TrafficGenTest, StreamIsSortedWithinDurationAtTheMeanRate) {
  TrafficSpec spec = BaseSpec();
  auto stream = GenerateTraffic(spec);
  ASSERT_TRUE(stream.ok());
  const uint64_t duration_us =
      static_cast<uint64_t>(spec.duration_s * 1e6);
  uint64_t prev = 0;
  for (const TrafficRequest& r : *stream) {
    EXPECT_GE(r.scheduled_us, prev);
    EXPECT_LT(r.scheduled_us, duration_us);
    prev = r.scheduled_us;
  }
  // Poisson count concentrates tightly around rate * duration; 10% slack
  // is many standard deviations at 10k expected arrivals.
  double expected = spec.rate_rps * spec.duration_s;
  EXPECT_NEAR(static_cast<double>(stream->size()), expected,
              0.1 * expected);
}

TEST(TrafficGenTest, VerbMixAndPayloadsFollowTheSpec) {
  TrafficSpec spec = BaseSpec();
  spec.mix.ping = 10;
  spec.mix.count = 40;
  spec.mix.insert = 30;
  spec.mix.mine = 10;
  spec.mix.stats = 10;
  spec.query_len = 3;
  auto stream = GenerateTraffic(spec);
  ASSERT_TRUE(stream.ok());

  std::map<TrafficVerb, size_t> by_verb;
  for (const TrafficRequest& r : *stream) {
    ++by_verb[r.verb];
    switch (r.verb) {
      case TrafficVerb::kCount:
        // COUNT queries are exactly query_len distinct sorted items.
        ASSERT_EQ(r.items.size(), spec.query_len);
        EXPECT_TRUE(std::is_sorted(r.items.begin(), r.items.end()));
        EXPECT_EQ(std::adjacent_find(r.items.begin(), r.items.end()),
                  r.items.end());
        EXPECT_LT(r.items.back(), spec.item_universe);
        break;
      case TrafficVerb::kInsert:
        ASSERT_GE(r.items.size(), 1u);
        EXPECT_TRUE(std::is_sorted(r.items.begin(), r.items.end()));
        break;
      default:
        EXPECT_TRUE(r.items.empty());
    }
  }
  double total = static_cast<double>(stream->size());
  EXPECT_NEAR(by_verb[TrafficVerb::kPing] / total, 0.10, 0.02);
  EXPECT_NEAR(by_verb[TrafficVerb::kCount] / total, 0.40, 0.02);
  EXPECT_NEAR(by_verb[TrafficVerb::kInsert] / total, 0.30, 0.02);
  EXPECT_NEAR(by_verb[TrafficVerb::kMine] / total, 0.10, 0.02);
  EXPECT_NEAR(by_verb[TrafficVerb::kStats] / total, 0.10, 0.02);
}

TEST(TrafficGenTest, ZipfSkewConcentratesOnLowRanks) {
  // With s ~ 1, rank 0 should dominate; with s = 0 sampling is uniform.
  Rng rng(3);
  ZipfSampler skewed(1000, 1.0);
  std::vector<uint64_t> hits(1000, 0);
  for (int i = 0; i < 100'000; ++i) ++hits[skewed.Sample(rng)];
  // Under Zipf(1.0, n=1000) rank 0 carries ~13% of the mass; uniform
  // would give 0.1%.
  EXPECT_GT(hits[0], hits[500] * 20);
  EXPECT_NEAR(static_cast<double>(hits[0]) / 100'000, 0.133, 0.02);

  ZipfSampler uniform(1000, 0.0);
  std::fill(hits.begin(), hits.end(), 0);
  for (int i = 0; i < 100'000; ++i) ++hits[uniform.Sample(rng)];
  EXPECT_NEAR(static_cast<double>(hits[0]) / 100'000, 0.001, 0.001);
}

TEST(TrafficGenTest, BurstyArrivalsLandOnlyInOnWindowsAtTheSameMeanRate) {
  TrafficSpec spec = BaseSpec();
  spec.arrival = ArrivalProcess::kBursty;
  spec.burst_on_ms = 100;
  spec.burst_off_ms = 400;
  auto stream = GenerateTraffic(spec);
  ASSERT_TRUE(stream.ok());

  const uint64_t cycle_us = 500'000;
  const uint64_t on_us = 100'000;
  for (const TrafficRequest& r : *stream) {
    EXPECT_LT(r.scheduled_us % cycle_us, on_us)
        << "arrival at " << r.scheduled_us << " falls in an off-window";
  }
  // Compressing arrivals into 20% of the time must preserve the mean.
  double expected = spec.rate_rps * spec.duration_s;
  EXPECT_NEAR(static_cast<double>(stream->size()), expected,
              0.1 * expected);
}

TEST(TrafficGenTest, RejectsDegenerateSpecs) {
  TrafficSpec spec = BaseSpec();
  spec.rate_rps = 0;
  EXPECT_FALSE(GenerateTraffic(spec).ok());

  spec = BaseSpec();
  spec.item_universe = 0;
  EXPECT_FALSE(GenerateTraffic(spec).ok());

  spec = BaseSpec();
  spec.query_len = 0;
  EXPECT_FALSE(GenerateTraffic(spec).ok());

  spec = BaseSpec();
  spec.mix = TrafficMix{0, 0, 0, 0, 0};
  EXPECT_FALSE(GenerateTraffic(spec).ok());

  spec = BaseSpec();
  spec.arrival = ArrivalProcess::kBursty;
  spec.burst_on_ms = 0;
  EXPECT_FALSE(GenerateTraffic(spec).ok());
}

TEST(TrafficGenTest, QueryLengthIsClampedToTheUniverse) {
  // Asking for more distinct items than exist must terminate (clamped),
  // not spin in the rejection loop.
  TrafficSpec spec = BaseSpec();
  spec.item_universe = 3;
  spec.query_len = 10;
  spec.duration_s = 0.2;
  spec.mix = TrafficMix{0, 1, 0, 0, 0};  // COUNT only
  auto stream = GenerateTraffic(spec);
  ASSERT_TRUE(stream.ok());
  ASSERT_FALSE(stream->empty());
  for (const TrafficRequest& r : *stream) {
    EXPECT_EQ(r.items.size(), 3u);
    EXPECT_EQ(r.items, (Itemset{0, 1, 2}));
  }
}

}  // namespace
}  // namespace bbsmine
