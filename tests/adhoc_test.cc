// Tests for ad-hoc queries with constraints (paper Sections 3.4 / 4.9).

#include "core/adhoc.h"

#include <gtest/gtest.h>

#include "testing/reference.h"

namespace bbsmine {
namespace {

BbsIndex MakeBbs(const TransactionDatabase& db, uint32_t bits,
                 uint32_t hashes) {
  BbsConfig config;
  config.num_bits = bits;
  config.num_hashes = hashes;
  auto index = BbsIndex::Create(config);
  EXPECT_TRUE(index.ok());
  index->InsertAll(db);
  return std::move(index).value();
}

TEST(AdhocTest, NonFrequentPatternExactCount) {
  // Paper Query 1: "What is the count of a particular non-frequent-pattern?"
  TransactionDatabase db = testing::RandomDb(5, 300, 40, 6.0);
  BbsIndex bbs = MakeBbs(db, 96, 2);
  Itemset rare = {7, 13};
  AdhocQueryResult result = CountPatternExact(db, bbs, rare);
  EXPECT_EQ(result.exact, testing::BruteForceSupport(db, rare));
  EXPECT_GE(result.estimate, result.exact);
  EXPECT_EQ(result.probed_transactions, result.estimate)
      << "probes exactly the transactions the filter selected";
}

TEST(AdhocTest, ConstraintSliceSelectsPredicate) {
  TransactionDatabase db = testing::PaperExampleDb();
  // Paper Query 2 uses TID % 7 == 0; here: TID divisible by 200.
  BitVector slice = MakeConstraintSlice(
      db, [](const Transaction& txn) { return txn.tid % 200 == 0; });
  EXPECT_EQ(slice.Count(), 2u);  // TIDs 200 and 400
  EXPECT_TRUE(slice.Get(1));
  EXPECT_TRUE(slice.Get(3));
}

TEST(AdhocTest, ConstrainedCountMatchesBruteForce) {
  TransactionDatabase db = testing::RandomDb(9, 400, 30, 5.0);
  BbsIndex bbs = MakeBbs(db, 128, 2);
  BitVector constraint = MakeConstraintSlice(
      db, [](const Transaction& txn) { return txn.tid % 7 == 0; });

  for (Itemset items : std::vector<Itemset>{{1}, {2, 5}, {3, 9, 12}}) {
    AdhocQueryResult result = CountPatternExact(db, bbs, items, &constraint);
    // Ground truth: containing transactions whose TID % 7 == 0.
    uint64_t expected = 0;
    for (size_t t = 0; t < db.size(); ++t) {
      if (db.At(t).tid % 7 == 0 && IsSubsetOf(items, db.At(t).items)) {
        ++expected;
      }
    }
    EXPECT_EQ(result.exact, expected) << ItemsetToString(items);
    EXPECT_GE(result.estimate, result.exact);
  }
}

TEST(AdhocTest, ConstraintReducesProbes) {
  TransactionDatabase db = testing::RandomDb(11, 500, 20, 6.0);
  BbsIndex bbs = MakeBbs(db, 64, 2);
  Itemset items = {1, 2};
  AdhocQueryResult unconstrained = CountPatternExact(db, bbs, items);
  BitVector constraint = MakeConstraintSlice(
      db, [](const Transaction& txn) { return txn.tid % 10 == 0; });
  AdhocQueryResult constrained =
      CountPatternExact(db, bbs, items, &constraint);
  EXPECT_LE(constrained.probed_transactions,
            unconstrained.probed_transactions);
  EXPECT_LE(constrained.exact, unconstrained.exact);
}

TEST(AdhocTest, EmptyConstraintYieldsZero) {
  TransactionDatabase db = testing::RandomDb(13, 100, 20, 5.0);
  BbsIndex bbs = MakeBbs(db, 64, 2);
  BitVector none(db.size());
  AdhocQueryResult result = CountPatternExact(db, bbs, {1}, &none);
  EXPECT_EQ(result.estimate, 0u);
  EXPECT_EQ(result.exact, 0u);
  EXPECT_EQ(result.probed_transactions, 0u);
}

TEST(AdhocTest, ChargesIo) {
  TransactionDatabase db = testing::RandomDb(17, 200, 20, 5.0);
  BbsIndex bbs = MakeBbs(db, 64, 2);
  AdhocQueryResult result = CountPatternExact(db, bbs, {1});
  EXPECT_GT(result.io.sequential_reads, 0u) << "slice reads";
  if (result.exact > 0) {
    EXPECT_GT(result.io.random_reads, 0u) << "probe reads";
  }
}

}  // namespace
}  // namespace bbsmine
