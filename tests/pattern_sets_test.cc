#include "core/pattern_sets.h"

#include <gtest/gtest.h>

#include <set>

#include "baseline/fp_tree.h"
#include "testing/reference.h"

namespace bbsmine {
namespace {

std::vector<Pattern> MineAll(const TransactionDatabase& db,
                             double min_support) {
  FpGrowthConfig config;
  config.min_support = min_support;
  MiningResult result = MineFpGrowth(db, config);
  result.SortPatterns();
  return result.patterns;
}

TEST(PatternSetsTest, HandComputedClosedAndMaximal) {
  // D: {1,2,3} x2, {1,2} x1, {3} x1.
  // Frequent at tau=1:  {1}:3 {2}:3 {3}:3 {1,2}:3 {1,3}:2 {2,3}:2 {1,2,3}:2.
  TransactionDatabase db = testing::MakeDb({
      {1, 2, 3}, {1, 2, 3}, {1, 2}, {3},
  });
  std::vector<Pattern> all = MineAll(db, 0.2);
  ASSERT_EQ(all.size(), 7u);

  // Closed: {1,2}:3 (supersets drop to 2), {3}:3, {1,2,3}:2.
  // {1}:3 not closed (= {1,2}); {2}:3 not closed; {1,3}/{2,3}:2 not closed
  // (= {1,2,3}).
  std::vector<Pattern> closed = ClosedPatterns(all);
  std::set<Itemset> closed_sets;
  for (const Pattern& p : closed) closed_sets.insert(p.items);
  EXPECT_EQ(closed_sets,
            (std::set<Itemset>{{3}, {1, 2}, {1, 2, 3}}));

  // Maximal: just {1,2,3}.
  std::vector<Pattern> maximal = MaximalPatterns(all);
  ASSERT_EQ(maximal.size(), 1u);
  EXPECT_EQ(maximal[0].items, (Itemset{1, 2, 3}));
}

TEST(PatternSetsTest, DefinitionsHoldOnRandomData) {
  TransactionDatabase db = testing::RandomDb(5, 300, 25, 6.0);
  std::vector<Pattern> all = MineAll(db, 0.03);
  std::vector<Pattern> closed = ClosedPatterns(all);
  std::vector<Pattern> maximal = MaximalPatterns(all);

  // maximal subset-of closed subset-of all.
  EXPECT_LE(maximal.size(), closed.size());
  EXPECT_LE(closed.size(), all.size());

  std::set<Itemset> all_sets;
  for (const Pattern& p : all) all_sets.insert(p.items);

  // Closed: no frequent proper superset with equal support.
  for (const Pattern& p : closed) {
    for (const Pattern& q : all) {
      if (q.items.size() > p.items.size() && q.support == p.support) {
        EXPECT_FALSE(IsSubsetOf(p.items, q.items))
            << ItemsetToString(p.items) << " not closed under "
            << ItemsetToString(q.items);
      }
    }
  }
  // Non-closed: some frequent superset with equal support exists.
  std::set<Itemset> closed_sets;
  for (const Pattern& p : closed) closed_sets.insert(p.items);
  for (const Pattern& p : all) {
    if (closed_sets.contains(p.items)) continue;
    bool found = false;
    for (const Pattern& q : all) {
      if (q.items.size() > p.items.size() && q.support == p.support &&
          IsSubsetOf(p.items, q.items)) {
        found = true;
        break;
      }
    }
    EXPECT_TRUE(found) << ItemsetToString(p.items)
                       << " excluded but has no equal-support superset";
  }

  // Maximal: no frequent proper superset at all; every maximal is closed.
  for (const Pattern& p : maximal) {
    EXPECT_TRUE(closed_sets.contains(p.items));
    for (const Pattern& q : all) {
      if (q.items.size() > p.items.size()) {
        EXPECT_FALSE(IsSubsetOf(p.items, q.items));
      }
    }
  }
}

TEST(PatternSetsTest, ClosedCollectionIsLossless) {
  TransactionDatabase db = testing::RandomDb(9, 250, 20, 5.0);
  std::vector<Pattern> all = MineAll(db, 0.04);
  std::vector<Pattern> closed = ClosedPatterns(all);
  // Every frequent pattern's support is recoverable from the closed set.
  for (const Pattern& p : all) {
    EXPECT_EQ(SupportFromClosed(closed, p.items), p.support)
        << ItemsetToString(p.items);
  }
  // Infrequent itemsets recover 0.
  EXPECT_EQ(SupportFromClosed(closed, {9999}), 0u);
}

TEST(PatternSetsTest, EmptyInput) {
  EXPECT_TRUE(ClosedPatterns({}).empty());
  EXPECT_TRUE(MaximalPatterns({}).empty());
  EXPECT_EQ(SupportFromClosed({}, {1}), 0u);
}

TEST(PatternSetsTest, SingletonsOnly) {
  // With no 2-itemsets, every singleton is both closed and maximal.
  TransactionDatabase db = testing::MakeDb({{1}, {2}, {1}, {2}});
  std::vector<Pattern> all = MineAll(db, 0.4);
  EXPECT_EQ(ClosedPatterns(all).size(), all.size());
  EXPECT_EQ(MaximalPatterns(all).size(), all.size());
}

}  // namespace
}  // namespace bbsmine
