#include "storage/item_catalog.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

namespace bbsmine {
namespace {

std::string TempPath(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

TEST(ItemCatalogTest, InternAssignsDenseIdsInOrder) {
  ItemCatalog catalog;
  EXPECT_EQ(catalog.Intern("milk"), 0u);
  EXPECT_EQ(catalog.Intern("bread"), 1u);
  EXPECT_EQ(catalog.Intern("milk"), 0u) << "re-intern returns the same id";
  EXPECT_EQ(catalog.size(), 2u);
  EXPECT_EQ(catalog.NameOf(0), "milk");
  EXPECT_EQ(catalog.NameOf(1), "bread");
}

TEST(ItemCatalogTest, FindWithoutInserting) {
  ItemCatalog catalog;
  catalog.Intern("eggs");
  EXPECT_EQ(catalog.Find("eggs"), 0u);
  EXPECT_EQ(catalog.Find("spam"), ItemCatalog::kNotFound);
  EXPECT_EQ(catalog.size(), 1u) << "Find must not register new names";
}

TEST(ItemCatalogTest, InternAllCanonicalizes) {
  ItemCatalog catalog;
  Itemset items = catalog.InternAll({"c", "a", "b", "a"});
  EXPECT_EQ(items.size(), 3u);
  EXPECT_TRUE(std::is_sorted(items.begin(), items.end()));
  EXPECT_EQ(catalog.size(), 3u);
}

TEST(ItemCatalogTest, RenderUsesNames) {
  ItemCatalog catalog;
  ItemId milk = catalog.Intern("milk");
  ItemId bread = catalog.Intern("bread");
  EXPECT_EQ(catalog.Render({milk, bread}), "{milk, bread}");
  EXPECT_EQ(catalog.Render({milk, 99}), "{milk, #99}");
  EXPECT_EQ(catalog.Render({}), "{}");
}

TEST(ItemCatalogTest, SaveLoadRoundTrip) {
  ItemCatalog catalog;
  catalog.Intern("milk");
  catalog.Intern("bread");
  catalog.Intern("a name with spaces and \xc3\xa9 accents");
  std::string path = TempPath("bbsmine_catalog_roundtrip.bin");
  ASSERT_TRUE(catalog.Save(path).ok());
  auto loaded = ItemCatalog::Load(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_TRUE(*loaded == catalog);
  EXPECT_EQ(loaded->Find("bread"), 1u);
  std::remove(path.c_str());
}

TEST(ItemCatalogTest, LoadRejectsCorruption) {
  ItemCatalog catalog;
  catalog.Intern("x");
  std::string path = TempPath("bbsmine_catalog_corrupt.bin");
  ASSERT_TRUE(catalog.Save(path).ok());
  {
    std::FILE* f = std::fopen(path.c_str(), "r+b");
    ASSERT_NE(f, nullptr);
    std::fseek(f, 18, SEEK_SET);
    int c = std::fgetc(f);
    std::fseek(f, 18, SEEK_SET);
    std::fputc(c ^ 0x1, f);
    std::fclose(f);
  }
  auto loaded = ItemCatalog::Load(path);
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kCorruption);
  std::remove(path.c_str());
}

TEST(ItemCatalogTest, EmptyCatalogRoundTrip) {
  ItemCatalog catalog;
  std::string path = TempPath("bbsmine_catalog_empty.bin");
  ASSERT_TRUE(catalog.Save(path).ok());
  auto loaded = ItemCatalog::Load(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_TRUE(loaded->empty());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace bbsmine
