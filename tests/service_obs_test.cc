// Tests for the service observability plane: windowed metrics rotation,
// the relaxed-atomics metrics hot path under concurrency (TSan-covered),
// the flight recorder's seqlock ring, the slow-query log's torn-tail
// healing, and trace-span propagation through the scheduler and Handle().
//
// Windowed-metrics tests drive rotation synthetically: MaybeRotateWindows
// and WindowSectionJson take explicit service-relative timestamps, so a
// test can "age" the daemon by minutes without sleeping.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/segmented_bbs.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "service/flight_recorder.h"
#include "service/metrics.h"
#include "service/scheduler.h"
#include "service/server.h"
#include "service/slow_log.h"
#include "service/snapshot.h"
#include "service/wire.h"
#include "testing/reference.h"
#include "util/status.h"

namespace bbsmine::service {
namespace {

constexpr uint64_t kSecond = 1'000'000;  // µs

BbsConfig SmallConfig() {
  BbsConfig config;
  config.num_bits = 256;
  config.num_hashes = 3;
  return config;
}

struct Fixture {
  TransactionDatabase db;
  SegmentedBbs index;
};

Fixture MakeFixture(uint64_t seed, size_t transactions,
                    uint64_t segment_capacity) {
  Fixture out{bbsmine::testing::RandomDb(seed, transactions, 24, 5.0),
              SegmentedBbs::Create(SmallConfig(), segment_capacity).value()};
  EXPECT_TRUE(out.index.InsertAll(out.db).ok());
  return out;
}

std::string TempPath(const std::string& name) {
  std::string path = (std::filesystem::temp_directory_path() /
                      ("bbsmine_obs_" + name + "_" +
                       std::to_string(::getpid())))
                         .string();
  std::filesystem::remove(path);
  return path;
}

std::vector<std::string> ReadLines(const std::string& path) {
  std::ifstream in(path);
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  return lines;
}

obs::JsonValue CountRequest(const Itemset& items,
                            const std::string& trace_id = "") {
  obs::JsonValue request = obs::JsonValue::Object();
  request.Set("verb", obs::JsonValue::String("COUNT"));
  request.Set("items", ItemsToJson(items));
  if (!trace_id.empty()) {
    request.Set("trace_id", obs::JsonValue::String(trace_id));
  }
  return request;
}

// ---------------------------------------------------------------------------
// Windowed metrics: rotation, lookback, wraparound, empty windows.

TEST(ServiceMetricsWindowTest, EmptyWindowRendersZeroDeltas) {
  ServiceMetrics metrics;
  obs::JsonValue window = metrics.WindowSectionJson(0);
  EXPECT_DOUBLE_EQ(window.at("interval_seconds").AsDouble(), 10.0);
  EXPECT_EQ(window.at("slots").AsUint(), 12u);
  EXPECT_DOUBLE_EQ(window.at("lookback_seconds").AsDouble(), 60.0);
  const obs::JsonValue& last = window.at("last_60s");
  EXPECT_EQ(last.at("counters").at("requests_total").AsUint(), 0u);
  const obs::JsonValue& count_hist = last.at("latency_us").at("count");
  EXPECT_EQ(count_hist.at("total").AsUint(), 0u);
  EXPECT_DOUBLE_EQ(count_hist.at("p50").AsDouble(), 0.0);
  // Watermark gauges are lifetime-only: deltas of a high-water mark are
  // meaningless, so the window must not render a gauges section.
  EXPECT_FALSE(last.Has("gauges"));
}

TEST(ServiceMetricsWindowTest, YoungServiceWindowCoversSinceStart) {
  ServiceMetrics metrics;
  metrics.Inc(metrics.requests_count, 7);
  metrics.ObserveLog2(metrics.latency_count, 100);
  // 5 s old — younger than the lookback; baseline is service start.
  obs::JsonValue window = metrics.WindowSectionJson(5 * kSecond);
  EXPECT_DOUBLE_EQ(window.at("covered_seconds").AsDouble(), 5.0);
  const obs::JsonValue& last = window.at("last_60s");
  EXPECT_EQ(last.at("counters").at("requests_count").AsUint(), 7u);
  EXPECT_EQ(last.at("latency_us").at("count").at("total").AsUint(), 1u);
}

TEST(ServiceMetricsWindowTest, RotationIsolatesRecentWorkFromOldWork) {
  ServiceMetrics metrics;
  // Minute one: 5 counts, slow (~1 ms) latencies.
  metrics.Inc(metrics.requests_count, 5);
  for (int i = 0; i < 5; ++i) metrics.ObserveLog2(metrics.latency_count, 1000);
  // Rotate through 70 s of service time at the default 10 s interval.
  for (uint64_t t = 10; t <= 70; t += 10) {
    metrics.MaybeRotateWindows(t * kSecond);
  }
  // Minute two: 3 more counts, fast (~64 µs) latencies.
  metrics.Inc(metrics.requests_count, 3);
  for (int i = 0; i < 3; ++i) metrics.ObserveLog2(metrics.latency_count, 64);

  obs::JsonValue window = metrics.WindowSectionJson(75 * kSecond);
  const obs::JsonValue& last = window.at("last_60s");
  // Baseline is the snapshot at t=10s (newest one >= 60 s old), which
  // already contains all of minute one — only minute two's work remains.
  EXPECT_EQ(last.at("counters").at("requests_count").AsUint(), 3u);
  const obs::JsonValue& hist = last.at("latency_us").at("count");
  EXPECT_EQ(hist.at("total").AsUint(), 3u);
  // Recent p50 reflects the fast requests: inside [32, 128), nowhere near
  // the 1 ms bucket of minute one.
  EXPECT_GE(hist.at("p50").AsDouble(), 32.0);
  EXPECT_LT(hist.at("p50").AsDouble(), 128.0);
  // Lifetime view still has all 8.
  uint64_t lifetime = metrics.counter(metrics.requests_count);
  EXPECT_EQ(lifetime, 8u);
}

TEST(ServiceMetricsWindowTest, LongIdleGapFastForwardsInsteadOfSpinning) {
  ServiceMetrics::WindowOptions options;
  options.interval_us = 1000;  // 1 ms intervals, 4 slots
  options.slots = 4;
  ServiceMetrics metrics(options);
  metrics.Inc(metrics.requests_total, 1);
  // A gap worth ~10^9 intervals must not write 10^9 snapshots; the
  // catch-up clamps to one ring-full. (A spin here would hang the test.)
  metrics.MaybeRotateWindows(1'000'000'000'000ull);
  metrics.Inc(metrics.requests_total, 2);
  obs::JsonValue window =
      metrics.WindowSectionJson(1'000'000'000'000ull + 1000);
  // A 4 x 1 ms ring can never hold a snapshot 60 s old, so the baseline
  // falls back to service start and the window reports all 3 increments
  // — over-covering, never dropping. (The default 12 x 10 s shape does
  // span the lookback.)
  EXPECT_EQ(window.at("last_60s").at("counters").at("requests_total")
                .AsUint(),
            3u);
}

TEST(ServiceMetricsWindowTest, RingWraparoundKeepsNewestSnapshots) {
  ServiceMetrics::WindowOptions options;
  options.interval_us = 10 * kSecond;
  options.slots = 12;
  ServiceMetrics metrics(options);
  // Rotate far past one full ring, bumping a counter every interval.
  for (uint64_t t = 10; t <= 400; t += 10) {
    metrics.Inc(metrics.requests_total, 1);
    metrics.MaybeRotateWindows(t * kSecond);
  }
  obs::JsonValue window = metrics.WindowSectionJson(400 * kSecond);
  // Baseline is the t=340s snapshot (34 increments taken); six intervals
  // of one increment each happened since.
  EXPECT_DOUBLE_EQ(window.at("covered_seconds").AsDouble(), 60.0);
  EXPECT_EQ(window.at("last_60s").at("counters").at("requests_total")
                .AsUint(),
            6u);
}

// ---------------------------------------------------------------------------
// Metrics hot path under concurrency. Run under TSan (CI wires this binary
// into the thread-sanitizer job): Inc/ObserveLog2/GaugeMax from many
// threads racing Snapshot/rotation/rendering must be clean and lose no
// increments.

TEST(ServiceMetricsConcurrencyTest, ParallelWritersLoseNothing) {
  ServiceMetrics::WindowOptions options;
  options.interval_us = 100;  // rotate constantly under the readers
  options.slots = 4;
  ServiceMetrics metrics(options);

  constexpr int kWriters = 4;
  constexpr uint64_t kPerWriter = 20'000;
  std::atomic<bool> stop{false};
  std::thread reader([&] {
    uint64_t now = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      now += 150;
      metrics.MaybeRotateWindows(now);
      std::vector<obs::MetricSample> samples = metrics.Snapshot();
      for (const obs::MetricSample& sample : samples) {
        if (sample.kind != obs::MetricKind::kHistogram) continue;
        // The snapshot invariant: total is derived from the buckets, so
        // it can never disagree with them, even mid-race.
        uint64_t sum = 0;
        for (uint64_t b : sample.buckets) sum += b;
        ASSERT_EQ(sum, sample.value) << sample.name;
      }
      obs::JsonValue window = metrics.WindowSectionJson(now);
      ASSERT_TRUE(window.Has("last_60s"));
    }
  });

  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&, w] {
      for (uint64_t i = 0; i < kPerWriter; ++i) {
        metrics.Inc(metrics.requests_count);
        metrics.ObserveLog2(metrics.latency_count, (i % 1024) + 1);
        metrics.GaugeMax(metrics.queue_depth,
                         static_cast<uint64_t>(w) * kPerWriter + i);
      }
    });
  }
  for (std::thread& t : writers) t.join();
  stop.store(true, std::memory_order_relaxed);
  reader.join();

  EXPECT_EQ(metrics.counter(metrics.requests_count), kWriters * kPerWriter);
  EXPECT_EQ(metrics.counter(metrics.queue_depth),
            static_cast<uint64_t>(kWriters - 1) * kPerWriter + kPerWriter - 1);
  for (const obs::MetricSample& sample : metrics.Snapshot()) {
    if (sample.name == "latency_us.count") {
      EXPECT_EQ(sample.value, kWriters * kPerWriter);
    }
  }
}

// ---------------------------------------------------------------------------
// Flight recorder.

FlightEvent MakeEvent(uint64_t seq) {
  FlightEvent event;
  event.seq = seq;
  event.start_rel_us = seq * 10;
  event.latency_us = seq * 2;  // the cross-field invariant readers check
  event.verb = RecordedVerb::kCount;
  event.ok = true;
  std::snprintf(event.trace_id, sizeof(event.trace_id), "t%llu",
                static_cast<unsigned long long>(seq));
  return event;
}

TEST(FlightRingTest, RetainsNewestEventsOldestFirst) {
  FlightRing ring(4);
  for (uint64_t seq = 0; seq < 6; ++seq) ring.Record(MakeEvent(seq));
  EXPECT_EQ(ring.recorded(), 6u);
  std::vector<FlightEvent> events = ring.Read();
  ASSERT_EQ(events.size(), 4u);
  for (size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].seq, i + 2);  // 0 and 1 were overwritten
    EXPECT_EQ(std::string(events[i].trace_id),
              "t" + std::to_string(i + 2));
  }
  ring.Reset();
  EXPECT_EQ(ring.recorded(), 0u);
  EXPECT_TRUE(ring.Read().empty());
}

TEST(FlightRingTest, ConcurrentReadersNeverSeeTornEvents) {
  FlightRing ring(8);
  std::atomic<bool> stop{false};
  std::thread writer([&] {
    uint64_t seq = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      ring.Record(MakeEvent(seq++));
    }
  });
  std::vector<std::thread> readers;
  for (int r = 0; r < 3; ++r) {
    readers.emplace_back([&] {
      for (int iter = 0; iter < 2000; ++iter) {
        for (const FlightEvent& event : ring.Read()) {
          // Torn reads would break the seq <-> field correlations the
          // writer maintains; the seqlock must filter them out.
          ASSERT_EQ(event.latency_us, event.seq * 2);
          ASSERT_EQ(event.start_rel_us, event.seq * 10);
          ASSERT_EQ(event.verb, RecordedVerb::kCount);
          ASSERT_EQ(std::string(event.trace_id),
                    "t" + std::to_string(event.seq));
        }
      }
    });
  }
  for (std::thread& t : readers) t.join();
  stop.store(true, std::memory_order_relaxed);
  writer.join();
}

TEST(FlightRecorderTest, DumpCoversActiveAndReleasedRings) {
  FlightRecorder recorder(/*ring_capacity=*/4, /*max_rings=*/8);
  FlightRing* a = recorder.AcquireRing(1);
  FlightRing* b = recorder.AcquireRing(2);
  a->Record(MakeEvent(0));
  b->Record(MakeEvent(1));
  recorder.ReleaseRing(a);  // released rings stay dumpable

  obs::JsonValue dump = recorder.DumpJson(/*now_rel_us=*/12345);
  EXPECT_EQ(dump.at("schema_version").AsInt(), 1);
  EXPECT_EQ(dump.at("kind").AsString(), "bbsmined_flight_recorder");
  EXPECT_EQ(dump.at("ring_capacity").AsUint(), 4u);
  EXPECT_EQ(dump.at("dumped_at_us").AsUint(), 12345u);
  const obs::JsonValue& connections = dump.at("connections");
  ASSERT_EQ(connections.size(), 2u);
  EXPECT_EQ(connections.at(0).at("connection").AsUint(), 1u);
  EXPECT_FALSE(connections.at(0).at("active").AsBool());
  EXPECT_TRUE(connections.at(1).at("active").AsBool());
  const obs::JsonValue& events = connections.at(0).at("events");
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events.at(0).at("trace_id").AsString(), "t0");
  EXPECT_EQ(events.at(0).at("verb").AsString(), "COUNT");
  EXPECT_TRUE(events.at(0).at("ok").AsBool());
}

TEST(FlightRecorderTest, RecyclesOldestReleasedRingUnderPressure) {
  FlightRecorder recorder(/*ring_capacity=*/4, /*max_rings=*/2);
  FlightRing* a = recorder.AcquireRing(1);
  a->Record(MakeEvent(0));
  recorder.ReleaseRing(a);
  FlightRing* b = recorder.AcquireRing(2);
  // At the ring bound, the third connection recycles a's ring — same
  // storage, history wiped.
  FlightRing* c = recorder.AcquireRing(3);
  EXPECT_EQ(c, a);
  EXPECT_EQ(c->recorded(), 0u);
  EXPECT_NE(c, b);
  obs::JsonValue dump = recorder.DumpJson(0);
  ASSERT_EQ(dump.at("connections").size(), 2u);
}

TEST(FlightRecorderTest, CrashDumpIsWellFormedWithoutContention) {
  FlightRecorder recorder(4);
  recorder.AcquireRing(7)->Record(MakeEvent(3));
  obs::JsonValue dump = recorder.DumpJsonForCrash(99);
  EXPECT_EQ(dump.at("kind").AsString(), "bbsmined_flight_recorder");
  ASSERT_EQ(dump.at("connections").size(), 1u);
  EXPECT_EQ(dump.at("connections").at(0).at("events").size(), 1u);
}

// ---------------------------------------------------------------------------
// Slow-query log.

TEST(SlowQueryLogTest, AppendsOneParseableJsonLinePerRecord) {
  std::string path = TempPath("slowlog");
  auto log = SlowQueryLog::Open(path);
  ASSERT_TRUE(log.ok()) << log.status().ToString();

  SlowQueryRecord record;
  record.at_rel_us = 1234;
  record.trace_id = "tr-9";
  record.verb = "COUNT";
  record.latency_us = 15000;
  record.queue_wait_us = 200;
  record.batch_size = 3;
  record.items = 2;
  record.epoch = 5;
  record.slice_words = 64;
  record.backend = "resident";
  record.ok = true;
  (*log)->Append(record);
  record.ok = false;
  record.trace_id = "tr-10";
  (*log)->Append(record);
  EXPECT_EQ((*log)->appended(), 2u);
  log->reset();  // close

  std::vector<std::string> lines = ReadLines(path);
  ASSERT_EQ(lines.size(), 2u);
  Result<obs::JsonValue> first = obs::JsonValue::Parse(lines[0]);
  ASSERT_TRUE(first.ok()) << lines[0];
  EXPECT_EQ(first->at("trace_id").AsString(), "tr-9");
  EXPECT_EQ(first->at("verb").AsString(), "COUNT");
  EXPECT_EQ(first->at("at_us").AsUint(), 1234u);
  EXPECT_EQ(first->at("latency_us").AsUint(), 15000u);
  EXPECT_EQ(first->at("queue_wait_us").AsUint(), 200u);
  EXPECT_EQ(first->at("batch_size").AsUint(), 3u);
  EXPECT_EQ(first->at("items").AsUint(), 2u);
  EXPECT_EQ(first->at("epoch").AsUint(), 5u);
  EXPECT_EQ(first->at("slice_words").AsUint(), 64u);
  EXPECT_EQ(first->at("backend").AsString(), "resident");
  EXPECT_EQ(first->at("outcome").AsString(), "ok");
  Result<obs::JsonValue> second = obs::JsonValue::Parse(lines[1]);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second->at("outcome").AsString(), "error");
  std::filesystem::remove(path);
}

TEST(SlowQueryLogTest, ReopenHealsTornFinalLine) {
  std::string path = TempPath("slowlog_torn");
  {
    std::ofstream out(path);
    out << "{\"at_us\":1,\"trace_id\":\"whole\"}\n";
    out << "{\"at_us\":2,\"trace_";  // torn mid-key, no newline
  }
  auto log = SlowQueryLog::Open(path);
  ASSERT_TRUE(log.ok()) << log.status().ToString();
  SlowQueryRecord record;
  record.trace_id = "after-tear";
  record.verb = "PING";
  (*log)->Append(record);
  log->reset();

  std::vector<std::string> lines = ReadLines(path);
  ASSERT_EQ(lines.size(), 3u);
  // The torn line is quarantined on its own line; the record appended
  // after reopen parses cleanly.
  EXPECT_TRUE(obs::JsonValue::Parse(lines[0]).ok());
  EXPECT_FALSE(obs::JsonValue::Parse(lines[1]).ok());
  Result<obs::JsonValue> healed = obs::JsonValue::Parse(lines[2]);
  ASSERT_TRUE(healed.ok()) << lines[2];
  EXPECT_EQ(healed->at("trace_id").AsString(), "after-tear");
  std::filesystem::remove(path);
}

// ---------------------------------------------------------------------------
// Trace propagation: scheduler spans and the request span from Handle().

TEST(SchedulerTraceTest, SampledCountEmitsCorrelatedSpans) {
  Fixture fx = MakeFixture(31, 200, 64);
  auto manager = SnapshotManager::FromIndex(fx.index);
  ASSERT_TRUE(manager.ok());
  ServiceMetrics metrics;
  obs::Tracer tracer(obs::kTraceService);
  CountScheduler scheduler(&*manager, SchedulerOptions{}, &metrics, &tracer);

  CountObs count_obs;
  count_obs.trace_id = "tr-sched";
  count_obs.sampled = true;
  CountResult result;
  ASSERT_TRUE(scheduler.Count({1, 2}, count_obs, &result).ok());
  EXPECT_EQ(result.count, fx.index.CountItemSet({1, 2}));
  EXPECT_GE(result.batch_id, 1u);
  EXPECT_GT(result.slice_words, 0u);

  ASSERT_GT(tracer.event_count(), 0u);
  std::string trace = tracer.ToJsonString();
  EXPECT_NE(trace.find("count.queue_wait"), std::string::npos);
  EXPECT_NE(trace.find("count.batch"), std::string::npos);
  EXPECT_NE(trace.find("count.segment"), std::string::npos);
  EXPECT_NE(trace.find("tr-sched"), std::string::npos);
}

TEST(SchedulerTraceTest, UnsampledCountEmitsNothing) {
  Fixture fx = MakeFixture(32, 100, 64);
  auto manager = SnapshotManager::FromIndex(fx.index);
  ASSERT_TRUE(manager.ok());
  obs::Tracer tracer(obs::kTraceService);
  CountScheduler scheduler(&*manager, SchedulerOptions{}, nullptr, &tracer);
  CountResult result;
  ASSERT_TRUE(scheduler.Count({1}, CountObs{}, &result).ok());
  EXPECT_EQ(tracer.event_count(), 0u);
  // Request attribution is still populated — it feeds the flight
  // recorder and the slow log even when tracing is off.
  EXPECT_GE(result.batch_id, 1u);
  EXPECT_GT(result.slice_words, 0u);
}

// ---------------------------------------------------------------------------
// The plane end to end through BbsService::Handle.

TEST(ServicePlaneTest, HandleWiresTraceSlowLogAndFlightTogether) {
  Fixture fx = MakeFixture(33, 150, 64);
  auto manager = SnapshotManager::FromIndex(fx.index);
  ASSERT_TRUE(manager.ok());

  std::string slow_path = TempPath("slow_e2e");
  auto slow_log = SlowQueryLog::Open(slow_path);
  ASSERT_TRUE(slow_log.ok());
  obs::Tracer tracer(obs::kTraceService);
  FlightRecorder recorder(8);

  ServiceOptions options;
  options.tracer = &tracer;
  options.trace_sample = 1;
  options.slow_log = slow_log->get();
  options.slow_query_us = 0;  // every request is "slow"
  options.flight_recorder = &recorder;
  BbsService service(&*manager, &fx.db, options);

  RequestContext ctx;
  ctx.connection_id = 1;
  ctx.flight = recorder.AcquireRing(1);
  obs::JsonValue response =
      service.Handle(CountRequest({1, 2}, "tr-e2e"), ctx);
  ASSERT_TRUE(response.at("ok").AsBool()) << response.Serialize();
  EXPECT_EQ(response.at("count").AsUint(), fx.index.CountItemSet({1, 2}));
  EXPECT_TRUE(response.Has("queue_wait_us"));

  // Trace: a request span carrying the client's trace_id.
  std::string trace = tracer.ToJsonString();
  EXPECT_NE(trace.find("\"request\""), std::string::npos);
  EXPECT_NE(trace.find("tr-e2e"), std::string::npos);

  // Slow log: one record, same trace_id, full attribution.
  EXPECT_EQ((*slow_log)->appended(), 1u);
  std::vector<std::string> lines = ReadLines(slow_path);
  ASSERT_EQ(lines.size(), 1u);
  Result<obs::JsonValue> record = obs::JsonValue::Parse(lines[0]);
  ASSERT_TRUE(record.ok()) << lines[0];
  EXPECT_EQ(record->at("trace_id").AsString(), "tr-e2e");
  EXPECT_EQ(record->at("verb").AsString(), "COUNT");
  EXPECT_EQ(record->at("items").AsUint(), 2u);
  EXPECT_GT(record->at("slice_words").AsUint(), 0u);
  EXPECT_EQ(record->at("outcome").AsString(), "ok");

  // Flight ring: the same request, recorded.
  std::vector<FlightEvent> events = ctx.flight->Read();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(std::string(events[0].trace_id), "tr-e2e");
  EXPECT_EQ(events[0].verb, RecordedVerb::kCount);
  EXPECT_TRUE(events[0].ok);

  // Metrics: the plane's own counters moved.
  obs::JsonValue report = service.BuildStatsReport();
  const obs::JsonValue& counters = report.at("metrics").at("counters");
  EXPECT_EQ(counters.at("slow_queries").AsUint(), 1u);
  EXPECT_EQ(counters.at("traced_requests").AsUint(), 1u);
  std::filesystem::remove(slow_path);
}

TEST(ServicePlaneTest, DumpVerbReturnsRecordedFlightEvents) {
  Fixture fx = MakeFixture(34, 100, 64);
  auto manager = SnapshotManager::FromIndex(fx.index);
  ASSERT_TRUE(manager.ok());
  FlightRecorder recorder(8);
  ServiceOptions options;
  options.flight_recorder = &recorder;
  BbsService service(&*manager, &fx.db, options);

  RequestContext ctx;
  ctx.connection_id = 42;
  ctx.flight = recorder.AcquireRing(42);
  ASSERT_TRUE(service.Handle(CountRequest({3}, "tr-dump"), ctx)
                  .at("ok")
                  .AsBool());

  obs::JsonValue dump_request = obs::JsonValue::Object();
  dump_request.Set("verb", obs::JsonValue::String("DUMP"));
  obs::JsonValue response = service.Handle(dump_request, ctx);
  ASSERT_TRUE(response.at("ok").AsBool()) << response.Serialize();
  const obs::JsonValue& flight = response.at("flight");
  EXPECT_EQ(flight.at("kind").AsString(), "bbsmined_flight_recorder");
  ASSERT_GE(flight.at("connections").size(), 1u);
  EXPECT_NE(flight.Serialize().find("tr-dump"), std::string::npos);
}

TEST(ServicePlaneTest, DumpVerbFailsWithoutFlightRecorder) {
  Fixture fx = MakeFixture(35, 60, 64);
  auto manager = SnapshotManager::FromIndex(fx.index);
  ASSERT_TRUE(manager.ok());
  BbsService service(&*manager, &fx.db, ServiceOptions{});
  obs::JsonValue dump_request = obs::JsonValue::Object();
  dump_request.Set("verb", obs::JsonValue::String("DUMP"));
  obs::JsonValue response = service.Handle(dump_request);
  EXPECT_FALSE(response.at("ok").AsBool());
}

TEST(ServicePlaneTest, StatsReportHasWindowAndLiveGauges) {
  Fixture fx = MakeFixture(36, 80, 64);
  auto manager = SnapshotManager::FromIndex(fx.index);
  ASSERT_TRUE(manager.ok());
  BbsService service(&*manager, &fx.db, ServiceOptions{});
  ASSERT_TRUE(service.Handle(CountRequest({1})).at("ok").AsBool());

  obs::JsonValue report = service.BuildStatsReport();
  ASSERT_TRUE(report.Has("window")) << report.Serialize();
  const obs::JsonValue& window = report.at("window");
  EXPECT_TRUE(window.Has("last_60s"));
  // Younger than the lookback: the recent window equals lifetime.
  EXPECT_EQ(window.at("last_60s").at("counters").at("requests_count")
                .AsUint(),
            1u);
  const obs::JsonValue& gauges = report.at("metrics").at("gauges");
  // Live values sit next to the watermark gauges under distinct names.
  EXPECT_TRUE(gauges.Has("queue_depth"));
  EXPECT_EQ(gauges.at("queue_depth_now").AsUint(), 0u);
  EXPECT_EQ(gauges.at("active_connections_now").AsUint(), 0u);
}

}  // namespace
}  // namespace bbsmine::service
