#include "storage/record_store.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "testing/reference.h"

namespace bbsmine {
namespace {

std::string TempPath(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

TEST(RecordStoreTest, WriteOpenReadAll) {
  TransactionDatabase db = testing::RandomDb(3, 200, 50, 6.0);
  std::string path = TempPath("bbsmine_recstore_basic.bin");
  ASSERT_TRUE(RecordStore::Write(db, path).ok());

  auto store = RecordStore::Open(path);
  ASSERT_TRUE(store.ok()) << store.status().ToString();
  ASSERT_EQ(store->size(), db.size());
  for (size_t t = 0; t < db.size(); ++t) {
    Result<Transaction> txn = store->Read(t);
    ASSERT_TRUE(txn.ok()) << "record " << t;
    EXPECT_EQ(txn->tid, db.At(t).tid);
    EXPECT_EQ(txn->items, db.At(t).items);
  }
  std::remove(path.c_str());
}

TEST(RecordStoreTest, ScanVisitsInOrderWithSequentialCharges) {
  TransactionDatabase db = testing::RandomDb(7, 500, 40, 8.0);
  std::string path = TempPath("bbsmine_recstore_scan.bin");
  ASSERT_TRUE(RecordStore::Write(db, path).ok());
  auto store = RecordStore::Open(path, /*cache_pages=*/4);
  ASSERT_TRUE(store.ok());

  IoStats io;
  size_t position = 0;
  ASSERT_TRUE(store
                  ->Scan(&io,
                         [&](const Transaction& txn) {
                           EXPECT_EQ(txn.items, db.At(position).items);
                           ++position;
                         })
                  .ok());
  EXPECT_EQ(position, db.size());
  EXPECT_EQ(io.sequential_reads,
            BlocksFor(store->record_bytes(), RecordStore::kPageSize));
  EXPECT_EQ(io.random_reads, 0u);
  std::remove(path.c_str());
}

TEST(RecordStoreTest, RandomReadsChargeMissesOnly) {
  TransactionDatabase db = testing::RandomDb(11, 300, 30, 6.0);
  std::string path = TempPath("bbsmine_recstore_probe.bin");
  ASSERT_TRUE(RecordStore::Write(db, path).ok());
  auto store = RecordStore::Open(path, /*cache_pages=*/64);
  ASSERT_TRUE(store.ok());

  IoStats io;
  // Read the same record repeatedly: one page miss, then hits.
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(store->Read(10, &io).ok());
  }
  EXPECT_GE(io.random_reads, 1u);
  EXPECT_LE(io.random_reads, 2u) << "record spans at most two pages";
  EXPECT_GE(store->cache_hits(), 4u);
  std::remove(path.c_str());
}

TEST(RecordStoreTest, TinyCacheEvicts) {
  TransactionDatabase db = testing::RandomDb(13, 2000, 100, 10.0);
  std::string path = TempPath("bbsmine_recstore_evict.bin");
  ASSERT_TRUE(RecordStore::Write(db, path).ok());
  auto store = RecordStore::Open(path, /*cache_pages=*/1);
  ASSERT_TRUE(store.ok());
  ASSERT_GT(BlocksFor(store->record_bytes(), RecordStore::kPageSize), 4u);

  IoStats io;
  // Ping-pong between the first and the last record: every read misses.
  ASSERT_TRUE(store->Read(0, &io).ok());
  ASSERT_TRUE(store->Read(db.size() - 1, &io).ok());
  ASSERT_TRUE(store->Read(0, &io).ok());
  ASSERT_TRUE(store->Read(db.size() - 1, &io).ok());
  EXPECT_GE(io.random_reads, 4u);
  std::remove(path.c_str());
}

TEST(RecordStoreTest, OutOfRangeRead) {
  TransactionDatabase db = testing::MakeDb({{1}});
  std::string path = TempPath("bbsmine_recstore_range.bin");
  ASSERT_TRUE(RecordStore::Write(db, path).ok());
  auto store = RecordStore::Open(path);
  ASSERT_TRUE(store.ok());
  Result<Transaction> txn = store->Read(1);
  EXPECT_FALSE(txn.ok());
  EXPECT_EQ(txn.status().code(), StatusCode::kOutOfRange);
  std::remove(path.c_str());
}

TEST(RecordStoreTest, EmptyDatabase) {
  TransactionDatabase db;
  std::string path = TempPath("bbsmine_recstore_empty.bin");
  ASSERT_TRUE(RecordStore::Write(db, path).ok());
  auto store = RecordStore::Open(path);
  ASSERT_TRUE(store.ok());
  EXPECT_EQ(store->size(), 0u);
  IoStats io;
  EXPECT_TRUE(store->Scan(&io, [](const Transaction&) {}).ok());
  EXPECT_EQ(io.TotalReads(), 0u);
  std::remove(path.c_str());
}

TEST(RecordStoreTest, CorruptFooterRejected) {
  TransactionDatabase db = testing::RandomDb(17, 50, 20, 4.0);
  std::string path = TempPath("bbsmine_recstore_corrupt.bin");
  ASSERT_TRUE(RecordStore::Write(db, path).ok());
  {
    // Flip a byte near the end (inside the footer).
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    f.seekg(0, std::ios::end);
    auto end = f.tellg();
    f.seekg(static_cast<std::streamoff>(end) - 5);
    char c;
    f.get(c);
    f.seekp(static_cast<std::streamoff>(end) - 5);
    f.put(static_cast<char>(c ^ 0x40));
  }
  auto store = RecordStore::Open(path);
  EXPECT_FALSE(store.ok());
  EXPECT_EQ(store.status().code(), StatusCode::kCorruption);
  std::remove(path.c_str());
}

TEST(RecordStoreTest, GarbageFileRejected) {
  std::string path = TempPath("bbsmine_recstore_garbage.bin");
  {
    std::ofstream out(path, std::ios::binary);
    out << "garbage";
  }
  EXPECT_FALSE(RecordStore::Open(path).ok());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace bbsmine
