#include "core/bloom_hash.h"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace bbsmine {
namespace {

TEST(BloomHashTest, CreateValidatesArguments) {
  EXPECT_FALSE(BloomHashFamily::Create(0, 4, HashKind::kMd5).ok());
  EXPECT_FALSE(BloomHashFamily::Create(100, 0, HashKind::kMd5).ok());
  EXPECT_TRUE(BloomHashFamily::Create(100, 4, HashKind::kMd5).ok());
}

TEST(BloomHashTest, PositionsInRangeAndStable) {
  for (HashKind kind :
       {HashKind::kMd5, HashKind::kMultiplyShift, HashKind::kModulo}) {
    auto family = BloomHashFamily::Create(1600, 4, kind);
    ASSERT_TRUE(family.ok());
    for (ItemId item : {0u, 1u, 17u, 9999u, 123456u}) {
      std::vector<uint32_t> first = family->Positions(item);
      ASSERT_EQ(first.size(), 4u);
      for (uint32_t p : first) EXPECT_LT(p, 1600u);
      // Memoized: the second call returns identical positions.
      EXPECT_EQ(family->Positions(item), first);
    }
  }
}

TEST(BloomHashTest, ModuloMatchesPaperRunningExample) {
  // Section 2.1: one hash function h(x) = x mod 8.
  auto family = BloomHashFamily::Create(8, 1, HashKind::kModulo);
  ASSERT_TRUE(family.ok());
  EXPECT_EQ(family->Positions(0), std::vector<uint32_t>{0});
  EXPECT_EQ(family->Positions(14), std::vector<uint32_t>{6});
  EXPECT_EQ(family->Positions(15), std::vector<uint32_t>{7});
  EXPECT_EQ(family->Positions(11), std::vector<uint32_t>{3});
}

TEST(BloomHashTest, Md5NeedsMoreThanFourGroups) {
  // k > 4 exercises the "concatenate the name with itself" extension.
  auto family = BloomHashFamily::Create(1 << 20, 9, HashKind::kMd5);
  ASSERT_TRUE(family.ok());
  std::vector<uint32_t> positions = family->Positions(42);
  ASSERT_EQ(positions.size(), 9u);
  // The extended groups must not simply repeat the first four.
  std::set<uint32_t> distinct(positions.begin(), positions.end());
  EXPECT_GT(distinct.size(), 4u);
}

TEST(BloomHashTest, SeedChangesMd5Positions) {
  auto a = BloomHashFamily::Create(1600, 4, HashKind::kMd5, 0);
  auto b = BloomHashFamily::Create(1600, 4, HashKind::kMd5, 1);
  ASSERT_TRUE(a.ok() && b.ok());
  int differing = 0;
  for (ItemId item = 0; item < 50; ++item) {
    if (a->Positions(item) != b->Positions(item)) ++differing;
  }
  EXPECT_GT(differing, 40);
}

TEST(BloomHashTest, SeedChangesMultiplyShiftPositions) {
  auto a = BloomHashFamily::Create(1600, 4, HashKind::kMultiplyShift, 0);
  auto b = BloomHashFamily::Create(1600, 4, HashKind::kMultiplyShift, 99);
  ASSERT_TRUE(a.ok() && b.ok());
  int differing = 0;
  for (ItemId item = 0; item < 50; ++item) {
    if (a->Positions(item) != b->Positions(item)) ++differing;
  }
  EXPECT_GT(differing, 40);
}

// Distribution sanity: with m=1600 and many items, the positions should
// spread out — no bit position should receive a wildly disproportionate
// share. (A weak chi-square-style bound, just to catch broken mixing.)
class BloomHashDistributionTest : public ::testing::TestWithParam<HashKind> {};

TEST_P(BloomHashDistributionTest, SpreadsAcrossBits) {
  constexpr uint32_t kBits = 256;
  constexpr uint32_t kHashes = 4;
  constexpr ItemId kItems = 10'000;
  auto family = BloomHashFamily::Create(kBits, kHashes, GetParam());
  ASSERT_TRUE(family.ok());
  std::vector<uint32_t> load(kBits, 0);
  for (ItemId item = 0; item < kItems; ++item) {
    for (uint32_t p : family->Positions(item)) ++load[p];
  }
  double expected = static_cast<double>(kItems) * kHashes / kBits;  // ~156
  for (uint32_t p = 0; p < kBits; ++p) {
    EXPECT_GT(load[p], expected * 0.5) << "bit " << p << " underloaded";
    EXPECT_LT(load[p], expected * 1.6) << "bit " << p << " overloaded";
  }
}

INSTANTIATE_TEST_SUITE_P(Kinds, BloomHashDistributionTest,
                         ::testing::Values(HashKind::kMd5,
                                           HashKind::kMultiplyShift));

TEST(BloomHashTest, CacheGrowsLazily) {
  auto family = BloomHashFamily::Create(100, 2, HashKind::kMultiplyShift);
  ASSERT_TRUE(family.ok());
  EXPECT_EQ(family->cached_items(), 0u);
  family->Positions(7);
  EXPECT_EQ(family->cached_items(), 1u);
  family->Positions(7);
  EXPECT_EQ(family->cached_items(), 1u);
  family->Positions(100000);
  EXPECT_EQ(family->cached_items(), 2u);
}

}  // namespace
}  // namespace bbsmine
