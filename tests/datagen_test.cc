// Tests for the Quest synthetic generator and the dynamic web-log generator.

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "datagen/quest_gen.h"
#include "datagen/weblog_gen.h"

namespace bbsmine {
namespace {

// --- Quest ----------------------------------------------------------------------

TEST(QuestGenTest, ValidatesConfig) {
  QuestConfig config;
  config.num_transactions = 0;
  EXPECT_FALSE(GenerateQuest(config).ok());
  config = QuestConfig{};
  config.num_items = 0;
  EXPECT_FALSE(GenerateQuest(config).ok());
  config = QuestConfig{};
  config.num_patterns = 0;
  EXPECT_FALSE(GenerateQuest(config).ok());
  config = QuestConfig{};
  config.avg_transaction_size = 0.5;
  EXPECT_FALSE(GenerateQuest(config).ok());
}

TEST(QuestGenTest, ProducesRequestedShape) {
  QuestConfig config;
  config.num_transactions = 2000;
  config.num_items = 500;
  config.avg_transaction_size = 10;
  config.avg_pattern_size = 4;
  config.num_patterns = 50;
  auto db = GenerateQuest(config);
  ASSERT_TRUE(db.ok());
  EXPECT_EQ(db->size(), 2000u);
  EXPECT_LE(db->item_universe(), 500u);

  double total_items = 0;
  for (size_t t = 0; t < db->size(); ++t) {
    EXPECT_FALSE(db->At(t).items.empty());
    for (ItemId item : db->At(t).items) EXPECT_LT(item, 500u);
    total_items += static_cast<double>(db->At(t).items.size());
  }
  // Canonicalization dedups, so the realized mean sits a bit under T, but
  // must be in the right ballpark.
  double mean = total_items / static_cast<double>(db->size());
  EXPECT_GT(mean, 5.0);
  EXPECT_LT(mean, 15.0);
}

TEST(QuestGenTest, DeterministicForSameSeed) {
  QuestConfig config;
  config.num_transactions = 300;
  config.num_items = 200;
  config.num_patterns = 30;
  auto a = GenerateQuest(config);
  auto b = GenerateQuest(config);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_TRUE(*a == *b);
}

TEST(QuestGenTest, SeedChangesData) {
  QuestConfig config;
  config.num_transactions = 300;
  config.num_items = 200;
  config.num_patterns = 30;
  auto a = GenerateQuest(config);
  config.seed = config.seed + 1;
  auto b = GenerateQuest(config);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_FALSE(*a == *b);
}

TEST(QuestGenTest, DataIsSkewedByPatterns) {
  // Pattern-based generation concentrates mass: some 2-itemsets must occur
  // far above the independence baseline.
  QuestConfig config;
  config.num_transactions = 3000;
  config.num_items = 1000;
  config.avg_transaction_size = 10;
  config.avg_pattern_size = 4;
  config.num_patterns = 100;
  auto db = GenerateQuest(config);
  ASSERT_TRUE(db.ok());

  // Count pair frequencies within a sample of transactions.
  std::map<std::pair<ItemId, ItemId>, int> pairs;
  for (size_t t = 0; t < db->size(); ++t) {
    const Itemset& items = db->At(t).items;
    for (size_t i = 0; i < items.size(); ++i) {
      for (size_t j = i + 1; j < items.size(); ++j) {
        ++pairs[{items[i], items[j]}];
      }
    }
  }
  int max_pair = 0;
  for (const auto& [pair, count] : pairs) max_pair = std::max(max_pair, count);
  // Independent uniform items would give pair counts ~ 3000 * (10*9/2) /
  // (1000*999/2) < 1; correlated patterns push some pairs into the dozens.
  EXPECT_GT(max_pair, 20);
}

// --- WebLog ----------------------------------------------------------------------

TEST(WebLogGenTest, ValidatesConfig) {
  WebLogConfig config;
  config.num_files = 0;
  EXPECT_FALSE(WebLogGenerator::Create(config).ok());
  config = WebLogConfig{};
  config.hot_fraction = 0;
  EXPECT_FALSE(WebLogGenerator::Create(config).ok());
  config = WebLogConfig{};
  config.num_files = 5;
  config.hot_fraction = 0.01;  // hot set rounds to zero
  EXPECT_FALSE(WebLogGenerator::Create(config).ok());
}

TEST(WebLogGenTest, GeneratesDailyBatches) {
  WebLogConfig config;
  config.num_files = 200;
  config.transactions_per_day = 500;
  auto gen = WebLogGenerator::Create(config);
  ASSERT_TRUE(gen.ok());
  TransactionDatabase db;
  gen->GenerateDay(&db);
  EXPECT_EQ(db.size(), 500u);
  EXPECT_EQ(gen->day(), 1u);
  gen->GenerateDay(&db);
  EXPECT_EQ(db.size(), 1000u);
  for (size_t t = 0; t < db.size(); ++t) {
    for (ItemId item : db.At(t).items) EXPECT_LT(item, 200u);
  }
}

TEST(WebLogGenTest, HotSetChurnsDaily) {
  WebLogConfig config;
  config.num_files = 1000;
  config.hot_fraction = 0.1;    // 100 hot files
  config.daily_churn = 0.1;     // 10 replaced per day
  config.transactions_per_day = 10;
  auto gen = WebLogGenerator::Create(config);
  ASSERT_TRUE(gen.ok());
  Itemset before = gen->hot_files();
  EXPECT_EQ(before.size(), 100u);
  TransactionDatabase db;
  gen->GenerateDay(&db);
  Itemset after = gen->hot_files();
  EXPECT_EQ(after.size(), 100u);

  Itemset stayed;
  std::set_intersection(before.begin(), before.end(), after.begin(),
                        after.end(), std::back_inserter(stayed));
  // Exactly 10 swaps are attempted; a swap can rarely pick an already-
  // swapped slot, so at least 85 stay and at most 99.
  EXPECT_GE(stayed.size(), 85u);
  EXPECT_LT(stayed.size(), 100u);
}

TEST(WebLogGenTest, AccessesConcentrateOnHotFiles) {
  WebLogConfig config;
  config.num_files = 1000;
  config.hot_fraction = 0.1;
  config.hot_access_mass = 0.9;
  config.transactions_per_day = 2000;
  auto gen = WebLogGenerator::Create(config);
  ASSERT_TRUE(gen.ok());
  Itemset hot = gen->hot_files();
  TransactionDatabase db;
  gen->GenerateDay(&db);

  uint64_t hot_hits = 0;
  uint64_t total = 0;
  for (size_t t = 0; t < db.size(); ++t) {
    for (ItemId item : db.At(t).items) {
      ++total;
      if (Contains(hot, item)) ++hot_hits;
    }
  }
  double share = static_cast<double>(hot_hits) / static_cast<double>(total);
  EXPECT_GT(share, 0.8);
}

TEST(WebLogGenTest, DeterministicForSameSeed) {
  WebLogConfig config;
  config.num_files = 300;
  config.transactions_per_day = 200;
  auto a = WebLogGenerator::Create(config);
  auto b = WebLogGenerator::Create(config);
  ASSERT_TRUE(a.ok() && b.ok());
  TransactionDatabase da;
  TransactionDatabase dbb;
  a->GenerateDay(&da);
  b->GenerateDay(&dbb);
  EXPECT_TRUE(da == dbb);
}

}  // namespace
}  // namespace bbsmine
