// Behavioral tests of the memory regimes in MineFrequentPatterns: which
// path runs (resident integrated walk vs adaptive three-phase), how I/O is
// charged, and that the cost-based refinement choice engages.

#include <gtest/gtest.h>

#include "core/miner.h"
#include "testing/reference.h"

namespace bbsmine {
namespace {

BbsIndex MakeBbs(const TransactionDatabase& db, uint32_t bits,
                 uint32_t hashes) {
  BbsConfig config;
  config.num_bits = bits;
  config.num_hashes = hashes;
  auto index = BbsIndex::Create(config);
  EXPECT_TRUE(index.ok());
  index->InsertAll(db);
  return std::move(index).value();
}

TEST(AdaptiveMinerTest, ResidentProbePathUsesNoScans) {
  TransactionDatabase db = testing::RandomDb(3, 400, 40, 6.0);
  BbsIndex bbs = MakeBbs(db, 256, 3);
  MineConfig config;
  config.algorithm = Algorithm::kDFP;
  config.min_support = 0.02;
  MiningResult result = MineFrequentPatterns(db, bbs, config);
  EXPECT_EQ(result.stats.db_scans, 0u)
      << "resident DFP refines by probing, never by scanning";
  // First-touch probe misses are sequential in the resident regime.
  EXPECT_EQ(result.stats.io.random_reads, 0u);
}

TEST(AdaptiveMinerTest, ConstrainedBudgetTriggersThreePhase) {
  TransactionDatabase db = testing::RandomDb(7, 400, 40, 6.0);
  BbsIndex bbs = MakeBbs(db, 1024, 3);
  uint64_t bbs_bytes = bbs.SerializedBytes();
  ASSERT_GT(bbs_bytes, 20'000u);

  MineConfig config;
  config.algorithm = Algorithm::kDFP;
  config.min_support = 0.02;
  config.memory_budget_bytes = bbs_bytes / 4;  // forces a fold

  MiningResult adaptive = MineFrequentPatterns(db, bbs, config);
  MineConfig unlimited = config;
  unlimited.memory_budget_bytes = 0;
  MiningResult resident = MineFrequentPatterns(db, bbs, unlimited);

  // Same answer either way.
  adaptive.SortPatterns();
  resident.SortPatterns();
  EXPECT_EQ(testing::ItemsetsOf(adaptive.patterns),
            testing::ItemsetsOf(resident.patterns));

  // The adaptive run pays more modeled I/O (fold build + postprocess
  // stream + constrained refinement).
  EXPECT_GT(adaptive.stats.io.TotalReads(), resident.stats.io.TotalReads());
}

TEST(AdaptiveMinerTest, BudgetBetweenBbsAndTotalAvoidsFoldButNotPhases) {
  TransactionDatabase db = testing::RandomDb(11, 500, 40, 6.0);
  BbsIndex bbs = MakeBbs(db, 512, 3);
  uint64_t bbs_bytes = bbs.SerializedBytes();
  uint64_t total = bbs_bytes + db.SerializedBytes();

  // Budget holds the BBS but not BBS + DB: two-phase without folding.
  MineConfig config;
  config.algorithm = Algorithm::kSFP;
  config.min_support = 0.02;
  config.memory_budget_bytes = bbs_bytes + (total - bbs_bytes) / 2;
  MiningResult result = MineFrequentPatterns(db, bbs, config);
  result.SortPatterns();
  EXPECT_EQ(testing::ItemsetsOf(result.patterns),
            testing::ItemsetsOf(testing::BruteForceMine(
                db, AbsoluteThreshold(config.min_support, db.size()))));
}

TEST(AdaptiveMinerTest, ScanRefinementChosenWhenProbesWouldSeekTooMuch) {
  // A heavily folded BBS (tiny budget) leaves many uncertain candidates,
  // and the tiny buffer pool makes per-candidate probing dearer than a few
  // verification scans: the cost-based choice must go to scans.
  TransactionDatabase db = testing::RandomDb(13, 2'000, 60, 8.0);
  BbsIndex bbs = MakeBbs(db, 2048, 4);
  MineConfig config;
  config.algorithm = Algorithm::kDFP;
  config.min_support = 0.01;
  config.memory_budget_bytes = 24'000;  // ~18 KB MemBBS + 6 KB pool
  MiningResult result = MineFrequentPatterns(db, bbs, config);
  EXPECT_GT(result.stats.db_scans, 0u)
      << "expected the cost model to pick sequential-scan refinement";
  result.SortPatterns();
  EXPECT_EQ(testing::ItemsetsOf(result.patterns),
            testing::ItemsetsOf(testing::BruteForceMine(
                db, AbsoluteThreshold(config.min_support, db.size()))));
}

TEST(AdaptiveMinerTest, AllSchemesAgreeUnderEveryRegime) {
  TransactionDatabase db = testing::RandomDb(17, 600, 50, 6.0);
  BbsIndex bbs = MakeBbs(db, 768, 3);
  uint64_t tau_support = 0;
  std::vector<Itemset> reference;
  for (uint64_t budget :
       {uint64_t{0}, bbs.SerializedBytes() + db.SerializedBytes() + 1024,
        bbs.SerializedBytes() / 2, uint64_t{16'000}}) {
    for (Algorithm algorithm : {Algorithm::kSFS, Algorithm::kSFP,
                                Algorithm::kDFS, Algorithm::kDFP}) {
      MineConfig config;
      config.algorithm = algorithm;
      config.min_support = 0.02;
      config.memory_budget_bytes = budget;
      MiningResult result = MineFrequentPatterns(db, bbs, config);
      result.SortPatterns();
      if (reference.empty()) {
        tau_support = AbsoluteThreshold(config.min_support, db.size());
        reference = testing::ItemsetsOf(
            testing::BruteForceMine(db, tau_support));
      }
      ASSERT_EQ(testing::ItemsetsOf(result.patterns), reference)
          << AlgorithmName(algorithm) << " at budget " << budget;
    }
  }
}

}  // namespace
}  // namespace bbsmine
