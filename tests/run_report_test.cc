// Acceptance tests for the run-report exporter and the observability
// instrumentation of the mining engine:
//
//  * stats-json round-trip: for all four schemes at 1 and 4 threads, the
//    report written to disk parses back into a MineStats that compares
//    operator== to the in-memory one;
//  * tracing is passive: mining with a tracer attached (all categories,
//    kernel spans included) yields bit-identical patterns and counters;
//  * counters are schedule-independent: 1-thread and 4-thread runs agree
//    on every counter, histogram, and I/O charge;
//  * per-depth histograms are consistent with their scalar counters;
//  * exact pinned counter values for SFS/SFP/DFS/DFP on a fixed seeded
//    dataset (any drift is an intentional algorithm change).

#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/bbs_index.h"
#include "core/miner.h"
#include "datagen/quest_gen.h"
#include "obs/json.h"
#include "obs/report.h"
#include "obs/trace.h"

namespace bbsmine {
namespace {

constexpr double kMinSupport = 0.01;

std::string TempPath(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

const Algorithm kSchemes[] = {Algorithm::kSFS, Algorithm::kSFP,
                              Algorithm::kDFS, Algorithm::kDFP};

class RunReportTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    QuestConfig quest;
    quest.num_transactions = 2'000;
    quest.num_items = 200;
    quest.avg_transaction_size = 8;
    quest.avg_pattern_size = 4;
    quest.num_patterns = 50;
    quest.seed = 7;
    db_ = new TransactionDatabase(std::move(GenerateQuest(quest)).value());

    BbsConfig config;
    // Narrow signature (400 bits for ~200 items) so estimates collide and
    // the refinement path sees real false drops.
    config.num_bits = 400;
    config.num_hashes = 3;
    bbs_ = new BbsIndex(std::move(BbsIndex::Create(config)).value());
    bbs_->InsertAll(*db_);
  }

  static void TearDownTestSuite() {
    delete bbs_;
    delete db_;
    bbs_ = nullptr;
    db_ = nullptr;
  }

  static MiningResult Mine(Algorithm algorithm, uint32_t threads,
                           obs::Tracer* tracer = nullptr) {
    MineConfig config;
    config.algorithm = algorithm;
    config.min_support = kMinSupport;
    config.num_threads = threads;
    config.tracer = tracer;
    return MineFrequentPatterns(*db_, *bbs_, config);
  }

  static TransactionDatabase* db_;
  static BbsIndex* bbs_;
};

TransactionDatabase* RunReportTest::db_ = nullptr;
BbsIndex* RunReportTest::bbs_ = nullptr;

TEST_F(RunReportTest, StatsJsonRoundTripsExactly) {
  for (Algorithm algorithm : kSchemes) {
    for (uint32_t threads : {1u, 4u}) {
      MineConfig config;
      config.algorithm = algorithm;
      config.min_support = kMinSupport;
      config.num_threads = threads;
      MiningResult result = MineFrequentPatterns(*db_, *bbs_, config);

      obs::RunReportContext ctx;
      ctx.scheme = AlgorithmName(algorithm);
      ctx.config = &config;
      ctx.num_transactions = db_->size();
      ctx.item_universe = db_->item_universe();
      ctx.tau = AbsoluteThreshold(kMinSupport, db_->size());
      ctx.resolved_threads = threads;
      ctx.kernel = "test";
      ctx.index_bits = bbs_->num_bits();
      ctx.index_hashes = bbs_->config().num_hashes;
      obs::JsonValue report = obs::BuildRunReport(ctx, result);

      std::string path = TempPath("bbsmine_run_report.json");
      ASSERT_TRUE(obs::WriteJsonFile(report, path).ok());
      auto loaded = obs::ReadJsonFile(path);
      ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
      std::remove(path.c_str());

      EXPECT_EQ(loaded->at("schema_version").AsInt(),
                obs::kRunReportSchemaVersion);
      EXPECT_EQ(loaded->at("scheme").AsString(), AlgorithmName(algorithm));
      EXPECT_EQ(loaded->at("patterns").AsUint(), result.patterns.size());
      EXPECT_EQ(loaded->at("workload").at("tau").AsUint(), ctx.tau);
      EXPECT_EQ(loaded->at("engine").at("resolved_threads").AsUint(), threads);

      auto stats = obs::StatsFromReport(*loaded);
      ASSERT_TRUE(stats.ok()) << stats.status().ToString();
      EXPECT_TRUE(*stats == result.stats)
          << AlgorithmName(algorithm) << " at " << threads
          << " threads: report does not round-trip the stats";
    }
  }
}

TEST_F(RunReportTest, StatsFromReportRejectsForeignDocuments) {
  obs::JsonValue not_a_report = obs::JsonValue::Object();
  not_a_report.Set("hello", obs::JsonValue::Int(1));
  EXPECT_FALSE(obs::StatsFromReport(not_a_report).ok());

  obs::JsonValue wrong_version = obs::JsonValue::Object();
  wrong_version.Set("schema_version", obs::JsonValue::Int(999));
  wrong_version.Set("metrics", obs::JsonValue::Object());
  EXPECT_FALSE(obs::StatsFromReport(wrong_version).ok());
}

TEST_F(RunReportTest, TracingIsPassive) {
  for (Algorithm algorithm : kSchemes) {
    MiningResult plain = Mine(algorithm, 4);
    obs::Tracer tracer(obs::kTraceAll);
    MiningResult traced = Mine(algorithm, 4, &tracer);
    EXPECT_EQ(plain.patterns, traced.patterns)
        << AlgorithmName(algorithm) << ": tracing changed the pattern set";
    EXPECT_TRUE(plain.stats.CountersEqual(traced.stats))
        << AlgorithmName(algorithm) << ": tracing changed the counters";
    EXPECT_GT(tracer.event_count(), 0u);
    // The trace document itself must be well-formed JSON.
    auto doc = obs::JsonValue::Parse(tracer.ToJsonString());
    ASSERT_TRUE(doc.ok()) << doc.status().ToString();
    EXPECT_EQ(doc->at("traceEvents").size(), tracer.event_count());
  }
}

TEST_F(RunReportTest, CountersAreThreadScheduleIndependent) {
  for (Algorithm algorithm : kSchemes) {
    MiningResult serial = Mine(algorithm, 1);
    MiningResult parallel = Mine(algorithm, 4);
    EXPECT_EQ(serial.patterns, parallel.patterns) << AlgorithmName(algorithm);
    EXPECT_TRUE(serial.stats.CountersEqual(parallel.stats))
        << AlgorithmName(algorithm)
        << ": counters differ between 1 and 4 threads";
  }
}

TEST_F(RunReportTest, DepthHistogramsMatchScalarCounters) {
  for (Algorithm algorithm : kSchemes) {
    MiningResult result = Mine(algorithm, 1);
    EXPECT_EQ(result.stats.candidates_by_depth.total(),
              result.stats.candidates)
        << AlgorithmName(algorithm);
    EXPECT_EQ(result.stats.false_drops_by_depth.total(),
              result.stats.false_drops)
        << AlgorithmName(algorithm);
  }
}

// Golden counter values on the fixed seed-7 workload above. These pin the
// exact candidate / false-drop / certification / probe behavior of each
// scheme; update them only for an intentional algorithm change.
TEST_F(RunReportTest, PinnedCounterValues) {
  struct Golden {
    Algorithm algorithm;
    uint64_t candidates;
    uint64_t false_drops;
    uint64_t certified;
    uint64_t probed_transactions;
  };
  const Golden kGolden[] = {
      {Algorithm::kSFS, 3324, 215, 0, 0},
      {Algorithm::kSFP, 3137, 28, 0, 148138},
      {Algorithm::kDFS, 3144, 35, 2521, 0},
      {Algorithm::kDFP, 3136, 27, 2772, 14616},
  };
  for (const Golden& g : kGolden) {
    MiningResult result = Mine(g.algorithm, 1);
    EXPECT_EQ(result.stats.candidates, g.candidates)
        << AlgorithmName(g.algorithm);
    EXPECT_EQ(result.stats.false_drops, g.false_drops)
        << AlgorithmName(g.algorithm);
    EXPECT_EQ(result.stats.certified, g.certified)
        << AlgorithmName(g.algorithm);
    EXPECT_EQ(result.stats.probed_transactions, g.probed_transactions)
        << AlgorithmName(g.algorithm);
  }
}

}  // namespace
}  // namespace bbsmine
