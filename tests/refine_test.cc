// Tests for the refinement phase: SequentialScan and ProbeCount.

#include "core/refine.h"

#include <gtest/gtest.h>

#include "core/bbs_index.h"
#include "testing/reference.h"

namespace bbsmine {
namespace {

TEST(RefineSequentialScanTest, PrunesFalseDropsAndCountsExactly) {
  TransactionDatabase db = testing::MakeDb({
      {1, 2, 3}, {1, 2}, {1, 2, 4}, {2, 3}, {5},
  });
  std::vector<Candidate> candidates = {
      {{1, 2}, 4},     // true support 3
      {{2, 3}, 4},     // true support 2
      {{1, 5}, 3},     // true support 0 -> false drop
      {{5}, 2},        // true support 1 -> false drop at tau 2
  };
  MineStats stats;
  std::vector<Pattern> out =
      RefineSequentialScan(db, candidates, /*tau=*/2, /*budget=*/0, &stats);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].items, (Itemset{1, 2}));
  EXPECT_EQ(out[0].support, 3u);
  EXPECT_EQ(out[1].items, (Itemset{2, 3}));
  EXPECT_EQ(out[1].support, 2u);
  EXPECT_EQ(stats.false_drops, 2u);
  EXPECT_EQ(stats.db_scans, 1u);
}

TEST(RefineSequentialScanTest, MemoryBudgetForcesMultipleScans) {
  TransactionDatabase db = testing::RandomDb(3, 100, 20, 5.0);
  std::vector<Candidate> candidates;
  for (ItemId i = 0; i < 20; ++i) candidates.push_back({{i}, 100});

  MineStats unbounded;
  std::vector<Pattern> all =
      RefineSequentialScan(db, candidates, 1, 0, &unbounded);
  EXPECT_EQ(unbounded.db_scans, 1u);

  MineStats bounded;
  // ~36 bytes per 1-item candidate; 80 bytes holds two candidates per batch.
  std::vector<Pattern> batched =
      RefineSequentialScan(db, candidates, 1, 80, &bounded);
  EXPECT_GT(bounded.db_scans, 5u);
  EXPECT_EQ(batched.size(), all.size())
      << "batching must not change the result";
  for (size_t i = 0; i < all.size(); ++i) {
    EXPECT_EQ(batched[i].items, all[i].items);
    EXPECT_EQ(batched[i].support, all[i].support);
  }
}

TEST(RefineSequentialScanTest, EmptyCandidateListScansNothing) {
  TransactionDatabase db = testing::MakeDb({{1}});
  MineStats stats;
  EXPECT_TRUE(RefineSequentialScan(db, {}, 1, 0, &stats).empty());
  EXPECT_EQ(stats.db_scans, 0u);
}

TEST(ProbeCountTest, CountsOnlyMatchingTransactions) {
  TransactionDatabase db = testing::MakeDb({
      {1, 2, 3}, {1, 2}, {2, 3}, {1, 2, 3, 4},
  });
  // Pretend the filter flagged transactions 0, 2, 3 as potential matches.
  BitVector result(4);
  result.Set(0);
  result.Set(2);
  result.Set(3);
  MineStats stats;
  uint64_t count = ProbeCount(db, {1, 2}, result, nullptr, &stats);
  EXPECT_EQ(count, 2u);  // transactions 0 and 3 (2 is not probed-positive)
  EXPECT_EQ(stats.probed_transactions, 3u);
  EXPECT_GT(stats.io.random_reads, 0u);
}

TEST(ProbeCountTest, MatchingVectorMarksTrueContainers) {
  TransactionDatabase db = testing::MakeDb({
      {1, 2}, {2}, {1, 2}, {1},
  });
  BitVector result(4, true);
  BitVector matching;
  MineStats stats;
  uint64_t count = ProbeCount(db, {1, 2}, result, nullptr, &stats, &matching);
  EXPECT_EQ(count, 2u);
  EXPECT_TRUE(matching.Get(0));
  EXPECT_FALSE(matching.Get(1));
  EXPECT_TRUE(matching.Get(2));
  EXPECT_FALSE(matching.Get(3));
}

TEST(ProbeCountTest, PageCacheSuppressesRepeatCharges) {
  TransactionDatabase db = testing::MakeDb({
      {1, 2}, {1, 2}, {1, 2}, {1, 2},
  });
  // All four tiny records share one 4096-byte block.
  BitVector result(4, true);
  PageCache cache(8);
  MineStats stats;
  ProbeCount(db, {1}, result, &cache, &stats);
  // The pool covers the whole (one-block) file, so the single first-touch
  // miss is charged as a sequential load; the other probes hit.
  EXPECT_EQ(stats.io.sequential_reads, 1u)
      << "one block miss, three hits expected";
  EXPECT_EQ(stats.io.random_reads, 0u);
  EXPECT_EQ(stats.probed_transactions, 4u);
}

TEST(ProbeCountTest, SmallPoolChargesRandomReads) {
  // 2100 distinct items spread records across several blocks; a pool of one
  // page cannot cover the file, so misses are genuine seeks.
  TransactionDatabase db;
  for (ItemId i = 0; i < 2100; ++i) db.Append({i});
  ASSERT_GT(BlocksFor(db.SerializedBytes(), db.block_size()), 2u);
  BitVector result(db.size());
  result.Set(0);
  result.Set(db.size() - 1);
  PageCache cache(1);
  MineStats stats;
  ProbeCount(db, {0}, result, &cache, &stats);
  EXPECT_EQ(stats.io.random_reads, 2u);
  EXPECT_EQ(stats.io.sequential_reads, 0u);
}

TEST(ProbeCountTest, EmptyResultVectorProbesNothing) {
  TransactionDatabase db = testing::MakeDb({{1}, {2}});
  BitVector result(2);
  MineStats stats;
  EXPECT_EQ(ProbeCount(db, {1}, result, nullptr, &stats), 0u);
  EXPECT_EQ(stats.probed_transactions, 0u);
  EXPECT_EQ(stats.io.random_reads, 0u);
}

}  // namespace
}  // namespace bbsmine
