// Property tests for the paper's formal guarantees (Section 2.2):
//
//   Lemma 3/4:   CountItemSet never misses a containing transaction and
//                never underestimates the true support.
//   Lemma 1/2:   every transaction whose signature lacks a queried bit is
//                absent from the result vector.
//   Lemma 5:     est(I1 u I2) >= act(I1 u I2) >= est(I1 u I2)
//                - (est(I2) - act(I2)), whenever act(I1) == est(I1).
//   Corollary 1: both sides tight => the union estimate is exact.
//
// Randomized over databases, hash kinds, vector widths and itemsets.

#include <gtest/gtest.h>

#include <tuple>

#include "core/bbs_index.h"
#include "testing/reference.h"
#include "util/rng.h"

namespace bbsmine {
namespace {

using Param = std::tuple<HashKind, uint32_t /*num_bits*/, uint32_t /*k*/,
                         uint64_t /*seed*/>;

class BbsLemmasTest : public ::testing::TestWithParam<Param> {
 protected:
  void SetUp() override {
    auto [kind, bits, hashes, seed] = GetParam();
    db_ = testing::RandomDb(seed, 250, 60, 6.0);
    BbsConfig config;
    config.num_bits = bits;
    config.num_hashes = hashes;
    config.hash_kind = kind;
    config.seed = seed;
    auto index = BbsIndex::Create(config);
    ASSERT_TRUE(index.ok());
    index->InsertAll(db_);
    bbs_.emplace(std::move(index).value());
    rng_.emplace(seed * 131 + 7);
  }

  Itemset RandomItemset(size_t max_len) {
    size_t len = 1 + rng_->Uniform(max_len);
    Itemset items;
    for (size_t i = 0; i < len; ++i) {
      items.push_back(static_cast<ItemId>(rng_->Uniform(60)));
    }
    Canonicalize(&items);
    return items;
  }

  TransactionDatabase db_;
  std::optional<BbsIndex> bbs_;
  std::optional<Rng> rng_;
};

TEST_P(BbsLemmasTest, Lemma4NeverUnderestimates) {
  for (int trial = 0; trial < 60; ++trial) {
    Itemset items = RandomItemset(4);
    EXPECT_GE(bbs_->CountItemSet(items), testing::BruteForceSupport(db_, items))
        << ItemsetToString(items);
  }
}

TEST_P(BbsLemmasTest, Lemma3NoFalseMisses) {
  for (int trial = 0; trial < 40; ++trial) {
    Itemset items = RandomItemset(3);
    BitVector result;
    bbs_->CountItemSet(items, &result);
    for (size_t t = 0; t < db_.size(); ++t) {
      if (IsSubsetOf(items, db_.At(t).items)) {
        EXPECT_TRUE(result.Get(t))
            << "transaction " << t << " contains " << ItemsetToString(items)
            << " but is missing from the result vector";
      }
    }
  }
}

TEST_P(BbsLemmasTest, Lemma2SignatureMismatchExcluded) {
  for (int trial = 0; trial < 40; ++trial) {
    Itemset items = RandomItemset(3);
    BitVector query = bbs_->MakeSignature(items);
    BitVector result;
    bbs_->CountItemSet(items, &result);
    for (size_t t = 0; t < db_.size(); ++t) {
      BitVector txn_sig = bbs_->MakeSignature(db_.At(t).items);
      if (!query.IsSubsetOf(txn_sig)) {
        // Some queried bit is absent from the transaction's signature.
        EXPECT_FALSE(result.Get(t));
        EXPECT_FALSE(IsSubsetOf(items, db_.At(t).items));
      } else {
        // All queried bits present => the transaction must be counted.
        EXPECT_TRUE(result.Get(t));
      }
    }
  }
}

TEST_P(BbsLemmasTest, Lemma5BoundsHold) {
  for (int trial = 0; trial < 60; ++trial) {
    Itemset i1 = RandomItemset(2);
    Itemset i2 = RandomItemset(3);
    uint64_t act1 = testing::BruteForceSupport(db_, i1);
    uint64_t est1 = bbs_->CountItemSet(i1);
    if (act1 != est1) continue;  // the lemma's precondition

    Itemset u = UnionOf(i1, i2);
    uint64_t act2 = testing::BruteForceSupport(db_, i2);
    uint64_t est2 = bbs_->CountItemSet(i2);
    uint64_t act_u = testing::BruteForceSupport(db_, u);
    uint64_t est_u = bbs_->CountItemSet(u);

    EXPECT_GE(est_u, act_u);
    // act(I1 u I2) >= est(I1 u I2) - (est(I2) - act(I2)), written additively.
    EXPECT_GE(act_u + (est2 - act2), est_u)
        << "I1=" << ItemsetToString(i1) << " I2=" << ItemsetToString(i2);
  }
}

TEST_P(BbsLemmasTest, Corollary1ExactUnions) {
  int applied = 0;
  for (int trial = 0; trial < 120 && applied < 20; ++trial) {
    Itemset i1 = RandomItemset(2);
    Itemset i2 = RandomItemset(2);
    if (testing::BruteForceSupport(db_, i1) != bbs_->CountItemSet(i1)) continue;
    if (testing::BruteForceSupport(db_, i2) != bbs_->CountItemSet(i2)) continue;
    ++applied;
    Itemset u = UnionOf(i1, i2);
    EXPECT_EQ(bbs_->CountItemSet(u), testing::BruteForceSupport(db_, u))
        << "I1=" << ItemsetToString(i1) << " I2=" << ItemsetToString(i2);
  }
}

TEST_P(BbsLemmasTest, EstimatesAreAntiMonotone) {
  // est(superset) <= est(subset): the superset's query vector selects a
  // superset of slices. This property licenses restricting the filter walk
  // to estimated-frequent singletons.
  for (int trial = 0; trial < 40; ++trial) {
    Itemset items = RandomItemset(4);
    if (items.size() < 2) continue;
    Itemset subset(items.begin(), items.end() - 1);
    EXPECT_LE(bbs_->CountItemSet(items), bbs_->CountItemSet(subset));
  }
}

TEST_P(BbsLemmasTest, ExactItemCountsMatchBruteForce) {
  for (ItemId item = 0; item < 60; ++item) {
    EXPECT_EQ(bbs_->ExactItemCount(item),
              testing::BruteForceSupport(db_, {item}))
        << "item " << item;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, BbsLemmasTest,
    ::testing::Combine(
        ::testing::Values(HashKind::kMd5, HashKind::kMultiplyShift,
                          HashKind::kModulo),
        ::testing::Values(16u, 64u, 256u),
        ::testing::Values(1u, 3u),
        ::testing::Values(1u, 2u)));

}  // namespace
}  // namespace bbsmine
