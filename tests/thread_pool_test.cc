#include "util/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <vector>

namespace bbsmine {
namespace {

TEST(ThreadPoolTest, SubmitRunsEveryTask) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&counter] { ++counter; });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, WaitOnIdlePoolReturns) {
  ThreadPool pool(2);
  pool.Wait();  // nothing queued: must not hang
  std::atomic<int> counter{0};
  pool.Submit([&counter] { ++counter; });
  pool.Wait();
  EXPECT_EQ(counter.load(), 1);
}

TEST(ThreadPoolTest, PoolIsReusableAfterWait) {
  ThreadPool pool(3);
  std::atomic<int> counter{0};
  for (int round = 0; round < 5; ++round) {
    for (int i = 0; i < 20; ++i) {
      pool.Submit([&counter] { ++counter; });
    }
    pool.Wait();
  }
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, ClampsZeroThreadsToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 1u);
}

TEST(ThreadPoolTest, MemberParallelForCoversEveryIndexOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(257);
  pool.ParallelFor(hits.size(), [&hits](size_t i) { ++hits[i]; });
  for (size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPoolTest, MemberParallelForEmptyRange) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  pool.ParallelFor(0, [&counter](size_t) { ++counter; });
  EXPECT_EQ(counter.load(), 0);
}

TEST(FreeParallelForTest, InlineWhenSingleThreaded) {
  // threads <= 1 must run on the calling thread, in index order.
  std::vector<size_t> order;
  ParallelFor(1, 10, [&order](size_t i) { order.push_back(i); });
  ASSERT_EQ(order.size(), 10u);
  for (size_t i = 0; i < order.size(); ++i) EXPECT_EQ(order[i], i);
}

TEST(FreeParallelForTest, CoversEveryIndexOnceMultiThreaded) {
  std::vector<std::atomic<int>> hits(1000);
  ParallelFor(4, hits.size(), [&hits](size_t i) { ++hits[i]; });
  for (size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(FreeParallelForTest, MoreThreadsThanWork) {
  std::vector<std::atomic<int>> hits(3);
  ParallelFor(16, hits.size(), [&hits](size_t i) { ++hits[i]; });
  for (size_t i = 0; i < hits.size(); ++i) EXPECT_EQ(hits[i].load(), 1);
}

TEST(FreeParallelForTest, SumMatchesSerial) {
  std::atomic<uint64_t> sum{0};
  ParallelFor(8, 10'000, [&sum](size_t i) { sum += i; });
  EXPECT_EQ(sum.load(), 10'000ull * 9'999ull / 2);
}

TEST(ResolveThreadsTest, ZeroMeansHardware) {
  EXPECT_EQ(ResolveThreads(0), ThreadPool::DefaultThreads());
  EXPECT_GE(ResolveThreads(0), 1u);
  EXPECT_EQ(ResolveThreads(1), 1u);
  EXPECT_EQ(ResolveThreads(7), 7u);
}

}  // namespace
}  // namespace bbsmine
