#include "baseline/eclat.h"

#include <gtest/gtest.h>

#include "baseline/fp_tree.h"
#include "testing/reference.h"

namespace bbsmine {
namespace {

TEST(EclatTest, MatchesBruteForce) {
  for (uint64_t seed : {2u, 6u, 10u}) {
    TransactionDatabase db = testing::RandomDb(seed, 300, 40, 6.0);
    EclatConfig config;
    config.min_support = 0.02;
    MiningResult result = MineEclat(db, config);
    result.SortPatterns();
    std::vector<Pattern> truth = testing::BruteForceMine(
        db, AbsoluteThreshold(config.min_support, db.size()));
    ASSERT_EQ(testing::ItemsetsOf(result.patterns),
              testing::ItemsetsOf(truth))
        << "seed " << seed;
    for (size_t i = 0; i < truth.size(); ++i) {
      EXPECT_EQ(result.patterns[i].support, truth[i].support);
    }
  }
}

TEST(EclatTest, MatchesFpGrowth) {
  TransactionDatabase db = testing::RandomDb(4, 500, 50, 7.0);
  EclatConfig eclat_config;
  eclat_config.min_support = 0.015;
  FpGrowthConfig fp_config;
  fp_config.min_support = 0.015;
  MiningResult eclat = MineEclat(db, eclat_config);
  MiningResult fp = MineFpGrowth(db, fp_config);
  eclat.SortPatterns();
  fp.SortPatterns();
  EXPECT_EQ(testing::ItemsetsOf(eclat.patterns),
            testing::ItemsetsOf(fp.patterns));
}

TEST(EclatTest, SingleScan) {
  TransactionDatabase db = testing::RandomDb(8, 200, 20, 5.0);
  MiningResult result = MineEclat(db, EclatConfig{});
  EXPECT_EQ(result.stats.db_scans, 1u);
}

TEST(EclatTest, EmptyDatabase) {
  TransactionDatabase db;
  MiningResult result = MineEclat(db, EclatConfig{});
  EXPECT_TRUE(result.patterns.empty());
}

TEST(EclatTest, AllPatternsExact) {
  TransactionDatabase db = testing::RandomDb(12, 200, 20, 6.0);
  EclatConfig config;
  config.min_support = 0.03;
  for (const Pattern& p : MineEclat(db, config).patterns) {
    EXPECT_EQ(p.kind, SupportKind::kExact);
    EXPECT_EQ(p.support, testing::BruteForceSupport(db, p.items));
  }
}

}  // namespace
}  // namespace bbsmine
