// Additional BBS index edge cases: fold-of-fold, threshold-aware counting,
// signature popcounts across fold/load, and degenerate shapes.

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "core/bbs_index.h"
#include "testing/reference.h"

namespace bbsmine {
namespace {

std::string TempPath(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

BbsIndex MakeBbs(const TransactionDatabase& db, uint32_t bits,
                 uint32_t hashes) {
  BbsConfig config;
  config.num_bits = bits;
  config.num_hashes = hashes;
  auto index = BbsIndex::Create(config);
  EXPECT_TRUE(index.ok());
  index->InsertAll(db);
  return std::move(index).value();
}

TEST(BbsIndexEdgeTest, FoldOfFoldStaysAnUpperBound) {
  TransactionDatabase db = testing::RandomDb(3, 200, 60, 6.0);
  BbsIndex bbs = MakeBbs(db, 512, 4);
  BbsIndex once = bbs.Fold(64);
  BbsIndex twice = once.Fold(16);
  for (Itemset items : std::vector<Itemset>{{1}, {5, 9}, {2, 4, 8}}) {
    uint64_t actual = testing::BruteForceSupport(db, items);
    size_t est2 = twice.CountItemSet(items);
    size_t est1 = once.CountItemSet(items);
    EXPECT_GE(est1, bbs.CountItemSet(items));
    EXPECT_GE(est2, actual);
    EXPECT_EQ(twice.num_bits(), 16u);
  }
}

TEST(BbsIndexEdgeTest, CountAtLeastAgreesAboveThreshold) {
  TransactionDatabase db = testing::RandomDb(7, 300, 40, 6.0);
  BbsIndex bbs = MakeBbs(db, 128, 3);
  Rng rng(5);
  for (int trial = 0; trial < 100; ++trial) {
    Itemset items;
    size_t len = 1 + rng.Uniform(3);
    for (size_t i = 0; i < len; ++i) {
      items.push_back(static_cast<ItemId>(rng.Uniform(40)));
    }
    Canonicalize(&items);
    uint64_t tau = 1 + rng.Uniform(20);
    size_t exact = bbs.CountItemSet(items);
    size_t fast = bbs.CountItemSetAtLeast(items, tau);
    if (exact >= tau) {
      EXPECT_EQ(fast, exact) << ItemsetToString(items) << " tau=" << tau;
    } else {
      EXPECT_LT(fast, tau) << ItemsetToString(items) << " tau=" << tau;
    }
  }
}

TEST(BbsIndexEdgeTest, SignatureBitsSurviveFoldAndLoad) {
  TransactionDatabase db = testing::RandomDb(11, 100, 30, 5.0);
  BbsIndex bbs = MakeBbs(db, 128, 3);

  // Folded: the per-transaction popcount must match the folded signature.
  BbsIndex folded = bbs.Fold(32);
  for (size_t t = 0; t < db.size(); ++t) {
    EXPECT_EQ(folded.SignatureBits(t),
              folded.MakeSignature(db.At(t).items).Count())
        << "txn " << t;
  }

  // Loaded: rebuilt from slices.
  std::string path = TempPath("bbsmine_idx_sigbits.bin");
  ASSERT_TRUE(bbs.Save(path).ok());
  auto loaded = BbsIndex::Load(path);
  ASSERT_TRUE(loaded.ok());
  for (size_t t = 0; t < db.size(); ++t) {
    EXPECT_EQ(loaded->SignatureBits(t), bbs.SignatureBits(t)) << "txn " << t;
  }
  std::remove(path.c_str());
}

TEST(BbsIndexEdgeTest, EmptyTransactionsAreCountedByEmptyQueryOnly) {
  BbsConfig config;
  config.num_bits = 32;
  config.num_hashes = 2;
  auto bbs = BbsIndex::Create(config);
  ASSERT_TRUE(bbs.ok());
  bbs->Insert({});
  bbs->Insert({1});
  EXPECT_EQ(bbs->num_transactions(), 2u);
  EXPECT_EQ(bbs->CountItemSet({}), 2u);
  EXPECT_EQ(bbs->SignatureBits(0), 0u);
  // The empty transaction can never match a non-empty query.
  BitVector result;
  bbs->CountItemSet({1}, &result);
  EXPECT_FALSE(result.Get(0));
  EXPECT_TRUE(result.Get(1));
}

TEST(BbsIndexEdgeTest, SingleBitVector) {
  // m = 1 is the degenerate extreme the paper calls out: "one extreme case
  // of BBS returning the cardinality of the database as the answer for all
  // item sets".
  BbsConfig config;
  config.num_bits = 1;
  config.num_hashes = 1;
  auto bbs = BbsIndex::Create(config);
  ASSERT_TRUE(bbs.ok());
  bbs->Insert({1, 2});
  bbs->Insert({3});
  bbs->Insert({});  // sets no bits
  EXPECT_EQ(bbs->CountItemSet({1}), 2u);
  EXPECT_EQ(bbs->CountItemSet({99}), 2u) << "every non-empty set aliases";
}

TEST(BbsIndexEdgeTest, WideVectorWithModuloIsLossless) {
  // m >= universe with one modulo hash = one bit per item: counts exact.
  TransactionDatabase db = testing::RandomDb(13, 200, 50, 5.0);
  BbsConfig config;
  config.num_bits = 50;
  config.num_hashes = 1;
  config.hash_kind = HashKind::kModulo;
  auto bbs = BbsIndex::Create(config);
  ASSERT_TRUE(bbs.ok());
  bbs->InsertAll(db);
  Rng rng(17);
  for (int trial = 0; trial < 60; ++trial) {
    Itemset items;
    size_t len = 1 + rng.Uniform(4);
    for (size_t i = 0; i < len; ++i) {
      items.push_back(static_cast<ItemId>(rng.Uniform(50)));
    }
    Canonicalize(&items);
    EXPECT_EQ(bbs->CountItemSet(items),
              testing::BruteForceSupport(db, items))
        << ItemsetToString(items);
  }
}

TEST(BbsIndexEdgeTest, ConstraintSliceComposition) {
  TransactionDatabase db = testing::RandomDb(19, 150, 30, 5.0);
  BbsIndex bbs = MakeBbs(db, 512, 3);  // wide enough to be near-exact
  BitVector first_half(db.size());
  for (size_t t = 0; t < db.size() / 2; ++t) first_half.Set(t);
  BitVector none(db.size());

  Itemset items = {1};
  size_t unconstrained = bbs.CountItemSet(items);
  size_t constrained = bbs.CountItemSetConstrained(items, first_half);
  EXPECT_LE(constrained, unconstrained);
  EXPECT_EQ(bbs.CountItemSetConstrained(items, none), 0u);

  // Complement halves partition the count.
  BitVector second_half = first_half;
  second_half.FlipAll();
  EXPECT_EQ(constrained + bbs.CountItemSetConstrained(items, second_half),
            unconstrained);
}

TEST(BbsIndexEdgeTest, SaveToUnwritablePathReportsError) {
  TransactionDatabase db = testing::RandomDb(21, 50, 20, 4.0);
  BbsIndex bbs = MakeBbs(db, 96, 2);

  // A directory that does not exist: fopen fails.
  Status status = bbs.Save(TempPath("no_such_dir") + "/index.bbs");
  EXPECT_FALSE(status.ok());

  // A device that accepts opens but fails writes at flush/close time
  // (catches errors that only surface when the stdio buffer drains).
  if (std::filesystem::exists("/dev/full")) {
    EXPECT_FALSE(bbs.Save("/dev/full").ok());
  }
}

}  // namespace
}  // namespace bbsmine
