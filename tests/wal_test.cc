// Tests for the write-ahead log: framing, replay, torn-tail semantics,
// fsync policies, and the append/truncate lifecycle.
//
// The crash model throughout: a kill -9 leaves the WAL an exact prefix of
// the bytes appended, so at most the final record is incomplete. Replay
// must deliver every complete record, physically truncate a torn tail, and
// refuse (Corruption) any damage that a torn append cannot produce.

#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "service/wal.h"
#include "storage/transaction.h"
#include "util/crc32.h"
#include "util/status.h"

namespace bbsmine::service {
namespace {

std::string TempPath(const std::string& name) {
  return (std::filesystem::temp_directory_path() /
          (std::to_string(::getpid()) + "_" + name))
      .string();
}

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

void WriteFile(const std::string& path, const std::string& contents) {
  std::ofstream out(path, std::ios::binary);
  out << contents;
}

uint64_t FileSize(const std::string& path) {
  return static_cast<uint64_t>(std::filesystem::file_size(path));
}

/// Replays `path` collecting every delivered batch.
Result<WriteAheadLog::ReplayStats> ReplayAll(
    const std::string& path, std::vector<std::vector<Itemset>>* batches) {
  return WriteAheadLog::Replay(path, [&](const std::vector<Itemset>& batch) {
    batches->push_back(batch);
    return Status::Ok();
  });
}

TEST(FsyncSpecTest, ParsesAllPolicies) {
  WalOptions options;
  ASSERT_TRUE(ParseFsyncSpec("always", &options).ok());
  EXPECT_EQ(options.policy, FsyncPolicy::kAlways);
  EXPECT_EQ(FsyncPolicyName(options), "always");

  ASSERT_TRUE(ParseFsyncSpec("none", &options).ok());
  EXPECT_EQ(options.policy, FsyncPolicy::kNone);
  EXPECT_EQ(FsyncPolicyName(options), "none");

  ASSERT_TRUE(ParseFsyncSpec("every=16", &options).ok());
  EXPECT_EQ(options.policy, FsyncPolicy::kEveryN);
  EXPECT_EQ(options.sync_every, 16u);
  EXPECT_EQ(FsyncPolicyName(options), "every:16");
}

TEST(FsyncSpecTest, RejectsMalformedSpecs) {
  WalOptions options;
  EXPECT_EQ(ParseFsyncSpec("sometimes", &options).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(ParseFsyncSpec("every=0", &options).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(ParseFsyncSpec("every=abc", &options).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(ParseFsyncSpec("", &options).code(),
            StatusCode::kInvalidArgument);
}

TEST(WalTest, AppendReplayRoundTrip) {
  std::string path = TempPath("wal_roundtrip");
  auto wal = WriteAheadLog::Create(path, /*base_txn_count=*/0, WalOptions());
  ASSERT_TRUE(wal.ok());

  std::vector<std::vector<Itemset>> written = {
      {{1, 2, 3}},
      {{4}, {5, 6}},
      {{}, {7, 8, 9, 10}},
  };
  for (const auto& batch : written) ASSERT_TRUE(wal->Append(batch).ok());
  EXPECT_EQ(wal->appended_records(), 3u);

  std::vector<std::vector<Itemset>> replayed;
  auto stats = ReplayAll(path, &replayed);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->base_txn_count, 0u);
  EXPECT_EQ(stats->records, 3u);
  EXPECT_EQ(stats->transactions, 5u);
  EXPECT_EQ(stats->torn_tail_bytes, 0u);
  EXPECT_FALSE(stats->tail_truncated);
  EXPECT_EQ(replayed, written);
}

TEST(WalTest, BaseTxnCountSurvivesCreateAndRead) {
  std::string path = TempPath("wal_base");
  auto wal = WriteAheadLog::Create(path, /*base_txn_count=*/1234,
                                   WalOptions());
  ASSERT_TRUE(wal.ok());
  EXPECT_EQ(wal->base_txn_count(), 1234u);

  auto base = WriteAheadLog::ReadBaseTxnCount(path);
  ASSERT_TRUE(base.ok());
  EXPECT_EQ(*base, 1234u);
}

TEST(WalTest, ReadBaseTxnCountIsNotFoundForMissingFile) {
  EXPECT_EQ(WriteAheadLog::ReadBaseTxnCount(TempPath("wal_nope")).status()
                .code(),
            StatusCode::kNotFound);
  std::vector<std::vector<Itemset>> replayed;
  EXPECT_EQ(ReplayAll(TempPath("wal_nope"), &replayed).status().code(),
            StatusCode::kNotFound);
}

TEST(WalTest, OpenForAppendContinuesTheLog) {
  std::string path = TempPath("wal_reopen");
  {
    auto wal = WriteAheadLog::Create(path, 0, WalOptions());
    ASSERT_TRUE(wal.ok());
    ASSERT_TRUE(wal->Append({{1, 2}}).ok());
  }
  {
    auto wal = WriteAheadLog::OpenForAppend(path, WalOptions());
    ASSERT_TRUE(wal.ok());
    ASSERT_TRUE(wal->Append({{3, 4}}).ok());
  }
  std::vector<std::vector<Itemset>> replayed;
  auto stats = ReplayAll(path, &replayed);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->records, 2u);
  ASSERT_EQ(replayed.size(), 2u);
  EXPECT_EQ(replayed[1], (std::vector<Itemset>{{3, 4}}));
}

TEST(WalTest, TruncateRestartsAtNewBase) {
  std::string path = TempPath("wal_truncate");
  auto wal = WriteAheadLog::Create(path, 0, WalOptions());
  ASSERT_TRUE(wal.ok());
  ASSERT_TRUE(wal->Append({{1}, {2}, {3}}).ok());
  ASSERT_TRUE(wal->Truncate(/*base_txn_count=*/3).ok());
  EXPECT_EQ(wal->base_txn_count(), 3u);
  ASSERT_TRUE(wal->Append({{4}}).ok());

  std::vector<std::vector<Itemset>> replayed;
  auto stats = ReplayAll(path, &replayed);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->base_txn_count, 3u);
  EXPECT_EQ(stats->records, 1u);
  EXPECT_EQ(replayed[0], (std::vector<Itemset>{{4}}));
}

// -- Torn-tail semantics ----------------------------------------------------

TEST(WalTest, TornFrameHeaderIsTruncated) {
  std::string path = TempPath("wal_torn_header");
  {
    auto wal = WriteAheadLog::Create(path, 0, WalOptions());
    ASSERT_TRUE(wal.ok());
    ASSERT_TRUE(wal->Append({{1, 2}}).ok());
  }
  uint64_t good = FileSize(path);
  // A crash mid-append can leave fewer than 8 frame-header bytes.
  std::string file = ReadFile(path);
  WriteFile(path, file + std::string(5, '\x7f'));

  std::vector<std::vector<Itemset>> replayed;
  auto stats = ReplayAll(path, &replayed);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->records, 1u);
  EXPECT_EQ(stats->torn_tail_bytes, 5u);
  EXPECT_TRUE(stats->tail_truncated);
  EXPECT_EQ(FileSize(path), good) << "torn tail must be physically removed";
}

TEST(WalTest, TornRecordBodyIsTruncated) {
  std::string path = TempPath("wal_torn_body");
  std::string full;
  {
    auto wal = WriteAheadLog::Create(path, 0, WalOptions());
    ASSERT_TRUE(wal.ok());
    ASSERT_TRUE(wal->Append({{1, 2}}).ok());
    full = ReadFile(path);
    ASSERT_TRUE(wal->Append({{3, 4, 5}}).ok());
  }
  // Keep the second record's frame header plus part of its payload: the
  // exact shape of an interrupted append.
  std::string torn = ReadFile(path).substr(0, full.size() + 10);
  WriteFile(path, torn);

  std::vector<std::vector<Itemset>> replayed;
  auto stats = ReplayAll(path, &replayed);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->records, 1u);
  EXPECT_EQ(stats->torn_tail_bytes, 10u);
  EXPECT_EQ(FileSize(path), full.size());
  EXPECT_EQ(replayed[0], (std::vector<Itemset>{{1, 2}}));
}

TEST(WalTest, CorruptFinalRecordAtExactEofIsTruncated) {
  std::string path = TempPath("wal_bad_final");
  std::string one_record;
  {
    auto wal = WriteAheadLog::Create(path, 0, WalOptions());
    ASSERT_TRUE(wal.ok());
    ASSERT_TRUE(wal->Append({{1, 2}}).ok());
    one_record = ReadFile(path);
    ASSERT_TRUE(wal->Append({{3, 4}}).ok());
  }
  // Flip a payload byte of the final record: CRC mismatch ending exactly
  // at EOF is indistinguishable from a torn append and must be dropped.
  std::string file = ReadFile(path);
  file.back() = static_cast<char>(file.back() ^ 0x40);
  WriteFile(path, file);

  std::vector<std::vector<Itemset>> replayed;
  auto stats = ReplayAll(path, &replayed);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->records, 1u);
  EXPECT_TRUE(stats->tail_truncated);
  EXPECT_EQ(FileSize(path), one_record.size());
}

TEST(WalTest, CorruptRecordBeforeTailIsCorruption) {
  std::string path = TempPath("wal_bad_middle");
  std::string one_record;
  {
    auto wal = WriteAheadLog::Create(path, 0, WalOptions());
    ASSERT_TRUE(wal.ok());
    ASSERT_TRUE(wal->Append({{1, 2}}).ok());
    one_record = ReadFile(path);
    ASSERT_TRUE(wal->Append({{3, 4}}).ok());
  }
  // Flip a byte inside the FIRST record: there is a valid record after it,
  // so this cannot be a torn append — truncating would drop acknowledged
  // data.
  std::string file = ReadFile(path);
  file[one_record.size() - 2] =
      static_cast<char>(file[one_record.size() - 2] ^ 0x01);
  WriteFile(path, file);

  std::vector<std::vector<Itemset>> replayed;
  EXPECT_EQ(ReplayAll(path, &replayed).status().code(),
            StatusCode::kCorruption);
}

TEST(WalTest, AbsurdRecordLengthIsCorruption) {
  std::string path = TempPath("wal_absurd_len");
  {
    auto wal = WriteAheadLog::Create(path, 0, WalOptions());
    ASSERT_TRUE(wal.ok());
  }
  std::string file = ReadFile(path);
  // Frame claiming a 1GiB record.
  file += std::string("\x00\x00\x00\x40", 4);  // len = 0x40000000
  file += std::string("\x00\x00\x00\x00", 4);  // crc
  WriteFile(path, file);

  std::vector<std::vector<Itemset>> replayed;
  EXPECT_EQ(ReplayAll(path, &replayed).status().code(),
            StatusCode::kCorruption);
}

TEST(WalTest, HeaderCorruptionIsCorruption) {
  std::string path = TempPath("wal_bad_header");
  {
    auto wal = WriteAheadLog::Create(path, 7, WalOptions());
    ASSERT_TRUE(wal.ok());
  }
  std::string file = ReadFile(path);
  for (size_t pos : {size_t{0}, size_t{8}, size_t{12}, size_t{16}}) {
    std::string mutated = file;
    mutated[pos] = static_cast<char>(mutated[pos] ^ 0x10);
    WriteFile(path, mutated);
    std::vector<std::vector<Itemset>> replayed;
    Status status = ReplayAll(path, &replayed).status();
    EXPECT_EQ(status.code(), StatusCode::kCorruption)
        << "byte " << pos << ": " << status.ToString();
  }
}

TEST(WalTest, CrcValidButMalformedPayloadIsCorruption) {
  std::string path = TempPath("wal_malformed");
  {
    auto wal = WriteAheadLog::Create(path, 0, WalOptions());
    ASSERT_TRUE(wal.ok());
    ASSERT_TRUE(wal->Append({{1, 2}}).ok());
    ASSERT_TRUE(wal->Append({{9}}).ok());
  }
  // Rewrite the second record as a CRC-valid frame whose payload claims
  // more transactions than it holds. A writer never produces this, and a
  // valid CRC rules out a torn append.
  std::vector<std::vector<Itemset>> probe;
  auto stats = ReplayAll(path, &probe);
  ASSERT_TRUE(stats.ok());
  ASSERT_EQ(stats->records, 2u);

  // Payload: u32 txn_count = 2 but only one (empty) transaction follows.
  std::string payload("\x02\x00\x00\x00\x00\x00\x00\x00", 8);
  uint32_t crc = Crc32(payload);
  std::string frame(8, '\0');
  frame[0] = 8;  // len
  frame[4] = static_cast<char>(crc & 0xff);
  frame[5] = static_cast<char>((crc >> 8) & 0xff);
  frame[6] = static_cast<char>((crc >> 16) & 0xff);
  frame[7] = static_cast<char>((crc >> 24) & 0xff);
  // Keep the header + first record, replace the rest. (Header is 24
  // bytes; the first record is 8 + 4 + 4 + 2*4 = 24 bytes.)
  std::string file = ReadFile(path);
  file.resize(48);
  WriteFile(path, file + frame + payload);

  std::vector<std::vector<Itemset>> replayed;
  EXPECT_EQ(ReplayAll(path, &replayed).status().code(),
            StatusCode::kCorruption);
}

}  // namespace
}  // namespace bbsmine::service
