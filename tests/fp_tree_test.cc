#include "baseline/fp_tree.h"

#include <gtest/gtest.h>

#include "testing/reference.h"

namespace bbsmine {
namespace {

TEST(FpTreeTest, InsertSharesPrefixes) {
  FpTree tree;
  tree.InsertPath({1, 2, 3}, 1);
  tree.InsertPath({1, 2, 4}, 1);
  tree.InsertPath({1, 2, 3}, 2);
  // Root + 1 + 2 + 3 + 4 = 5 nodes.
  EXPECT_EQ(tree.num_nodes(), 5u);
  tree.BuildHeader({1, 2, 3, 4});
  // Item totals via the header.
  EXPECT_EQ(tree.header()[0].total, 4u);  // item 1
  EXPECT_EQ(tree.header()[1].total, 4u);  // item 2
  EXPECT_EQ(tree.header()[2].total, 3u);  // item 3
  EXPECT_EQ(tree.header()[3].total, 1u);  // item 4
}

TEST(FpTreeTest, SinglePathDetection) {
  FpTree tree;
  tree.InsertPath({1, 2, 3}, 1);
  EXPECT_TRUE(tree.IsSinglePath());
  tree.InsertPath({1, 5}, 1);
  EXPECT_FALSE(tree.IsSinglePath());

  FpTree empty;
  EXPECT_TRUE(empty.IsSinglePath());
}

TEST(FpTreeTest, HeaderChainsLinkAllNodes) {
  FpTree tree;
  tree.InsertPath({1, 2}, 1);
  tree.InsertPath({2}, 1);
  tree.InsertPath({1, 3, 2}, 1);
  tree.BuildHeader({1, 2, 3});
  // Item 2 appears in three distinct nodes.
  const auto& entry = tree.header()[1];
  EXPECT_EQ(entry.item, 2u);
  int chain_length = 0;
  uint64_t total = 0;
  for (int32_t n = entry.head; n >= 0; n = tree.node(n).next_same_item) {
    ++chain_length;
    total += tree.node(n).count;
  }
  EXPECT_EQ(chain_length, 3);
  EXPECT_EQ(total, entry.total);
  EXPECT_EQ(total, 3u);
}

TEST(FpGrowthTest, MatchesBruteForceOnRandomData) {
  for (uint64_t seed : {1u, 5u, 9u}) {
    TransactionDatabase db = testing::RandomDb(seed, 300, 40, 6.0);
    FpGrowthConfig config;
    config.min_support = 0.02;
    MiningResult result = MineFpGrowth(db, config);
    result.SortPatterns();
    std::vector<Pattern> truth = testing::BruteForceMine(
        db, AbsoluteThreshold(config.min_support, db.size()));
    ASSERT_EQ(testing::ItemsetsOf(result.patterns),
              testing::ItemsetsOf(truth))
        << "seed " << seed;
    for (size_t i = 0; i < truth.size(); ++i) {
      EXPECT_EQ(result.patterns[i].support, truth[i].support)
          << ItemsetToString(truth[i].items);
    }
  }
}

TEST(FpGrowthTest, SinglePathDataExercisesShortcut) {
  // All transactions are prefixes of one chain: the tree is a single path.
  TransactionDatabase db = testing::MakeDb({
      {1}, {1, 2}, {1, 2, 3}, {1, 2, 3}, {1, 2, 3, 4},
  });
  FpGrowthConfig config;
  config.min_support = 0.4;  // tau = 2
  MiningResult result = MineFpGrowth(db, config);
  result.SortPatterns();
  std::vector<Pattern> truth = testing::BruteForceMine(db, 2);
  ASSERT_EQ(testing::ItemsetsOf(result.patterns), testing::ItemsetsOf(truth));
  for (size_t i = 0; i < truth.size(); ++i) {
    EXPECT_EQ(result.patterns[i].support, truth[i].support);
  }
}

TEST(FpGrowthTest, ChargesTwoScans) {
  TransactionDatabase db = testing::RandomDb(3, 200, 20, 5.0);
  FpGrowthConfig config;
  config.min_support = 0.03;
  MiningResult result = MineFpGrowth(db, config);
  EXPECT_EQ(result.stats.db_scans, 2u);
}

TEST(FpGrowthTest, SmallMemoryChargesExtraScans) {
  TransactionDatabase db = testing::RandomDb(3, 500, 20, 8.0);
  FpGrowthConfig config;
  config.min_support = 0.01;
  config.memory_budget_bytes = 1024;  // far smaller than the tree
  MiningResult result = MineFpGrowth(db, config);
  EXPECT_GT(result.stats.db_scans, 2u);

  // The answer must be identical either way.
  FpGrowthConfig unlimited;
  unlimited.min_support = 0.01;
  MiningResult full = MineFpGrowth(db, unlimited);
  result.SortPatterns();
  full.SortPatterns();
  EXPECT_EQ(testing::ItemsetsOf(result.patterns),
            testing::ItemsetsOf(full.patterns));
}

TEST(FpGrowthTest, EmptyDatabase) {
  TransactionDatabase db;
  MiningResult result = MineFpGrowth(db, FpGrowthConfig{});
  EXPECT_TRUE(result.patterns.empty());
}

TEST(FpGrowthTest, DuplicateHeavyData) {
  // Identical transactions compress into one path with high counts.
  TransactionDatabase db;
  for (int i = 0; i < 50; ++i) db.Append({2, 4, 6});
  FpGrowthConfig config;
  config.min_support = 0.5;
  MiningResult result = MineFpGrowth(db, config);
  EXPECT_EQ(result.patterns.size(), 7u);
  for (const Pattern& p : result.patterns) EXPECT_EQ(p.support, 50u);
}

}  // namespace
}  // namespace bbsmine
