// Tests for the filtering phase: FilterEngine, SingleFilter, DualFilter and
// the CheckCount classification routine.

#include <gtest/gtest.h>

#include <set>

#include "core/bbs_index.h"
#include "core/dual_filter.h"
#include "core/filter_engine.h"
#include "core/single_filter.h"
#include "testing/reference.h"

namespace bbsmine {
namespace {

BbsIndex MakeBbs(const TransactionDatabase& db, uint32_t bits, uint32_t hashes,
                 HashKind kind = HashKind::kMd5) {
  BbsConfig config;
  config.num_bits = bits;
  config.num_hashes = hashes;
  config.hash_kind = kind;
  auto index = BbsIndex::Create(config);
  EXPECT_TRUE(index.ok());
  index->InsertAll(db);
  return std::move(index).value();
}

Itemset UniverseOf(const TransactionDatabase& db) {
  Itemset universe(db.item_universe());
  for (ItemId i = 0; i < db.item_universe(); ++i) universe[i] = i;
  return universe;
}

// --- FilterEngine ----------------------------------------------------------------

TEST(FilterEngineTest, KeepsOnlyEstimatedFrequentSingletons) {
  TransactionDatabase db = testing::MakeDb({
      {1, 2}, {1, 2}, {1, 3}, {1}, {4},
  });
  // Wide vector, several hashes: estimates are exact here.
  BbsIndex bbs = MakeBbs(db, 512, 3);
  FilterEngine engine(bbs, /*tau=*/2);
  MineStats stats;
  engine.Prepare(UniverseOf(db), &stats);

  std::set<ItemId> kept;
  for (const auto& s : engine.singletons()) kept.insert(s.item);
  EXPECT_TRUE(kept.contains(1));
  EXPECT_TRUE(kept.contains(2));
  EXPECT_FALSE(kept.contains(4)) << "support 1 < tau";
  EXPECT_EQ(stats.extension_tests, db.item_universe());
}

TEST(FilterEngineTest, SingletonVectorsAndCounts) {
  TransactionDatabase db = testing::MakeDb({{1, 2}, {2}, {1, 2}});
  BbsIndex bbs = MakeBbs(db, 256, 3);
  FilterEngine engine(bbs, 2);
  MineStats stats;
  engine.Prepare(UniverseOf(db), &stats);
  for (const auto& s : engine.singletons()) {
    EXPECT_EQ(s.est, bbs.CountItemSet({s.item}));
    EXPECT_EQ(s.exact, testing::BruteForceSupport(db, {s.item}));
    EXPECT_EQ(s.vector.Count(), s.est);
  }
}

TEST(FilterEngineTest, ExtendMatchesCountItemSet) {
  TransactionDatabase db = testing::RandomDb(5, 150, 30, 5.0);
  BbsIndex bbs = MakeBbs(db, 64, 2);
  FilterEngine engine(bbs, 1);
  MineStats stats;
  engine.Prepare(UniverseOf(db), &stats);
  ASSERT_GE(engine.singletons().size(), 2u);

  const auto& s0 = engine.singletons()[0];
  const auto& s1 = engine.singletons()[1];
  BitVector out;
  size_t est = engine.Extend(1, s0.vector, &out);
  EXPECT_EQ(est, bbs.CountItemSet(UnionOf({s0.item}, {s1.item})));
}

// --- SingleFilter ------------------------------------------------------------------

TEST(SingleFilterTest, CandidatesAreSupersetOfFrequentPatterns) {
  TransactionDatabase db = testing::RandomDb(9, 300, 40, 6.0);
  BbsIndex bbs = MakeBbs(db, 96, 2);  // narrow: provoke false drops
  uint64_t tau = 8;
  FilterEngine engine(bbs, tau);
  MineStats stats;
  engine.Prepare(UniverseOf(db), &stats);
  std::vector<Candidate> candidates = RunSingleFilter(engine, &stats);

  std::set<Itemset> candidate_sets;
  for (const Candidate& c : candidates) candidate_sets.insert(c.items);

  for (const Pattern& p : testing::BruteForceMine(db, tau)) {
    EXPECT_TRUE(candidate_sets.contains(p.items))
        << "frequent pattern " << ItemsetToString(p.items)
        << " missing from the candidate set";
  }
  EXPECT_EQ(stats.candidates, candidates.size());
}

TEST(SingleFilterTest, EstimatesMeetThresholdAndMatchCountItemSet) {
  TransactionDatabase db = testing::RandomDb(13, 200, 25, 5.0);
  BbsIndex bbs = MakeBbs(db, 128, 2);
  uint64_t tau = 6;
  FilterEngine engine(bbs, tau);
  MineStats stats;
  engine.Prepare(UniverseOf(db), &stats);
  for (const Candidate& c : RunSingleFilter(engine, &stats)) {
    EXPECT_GE(c.est, tau);
    EXPECT_EQ(c.est, bbs.CountItemSet(c.items)) << ItemsetToString(c.items);
  }
}

TEST(SingleFilterTest, ExactIndexYieldsExactlyTheFrequentPatterns) {
  // With modulo hashing, one item per bit and m >= universe, the BBS is a
  // lossless vertical representation: zero false drops.
  TransactionDatabase db = testing::RandomDb(21, 200, 30, 5.0);
  BbsIndex bbs = MakeBbs(db, 30, 1, HashKind::kModulo);
  uint64_t tau = 5;
  FilterEngine engine(bbs, tau);
  MineStats stats;
  engine.Prepare(UniverseOf(db), &stats);
  std::vector<Candidate> candidates = RunSingleFilter(engine, &stats);

  std::vector<Itemset> got;
  for (const Candidate& c : candidates) got.push_back(c.items);
  std::sort(got.begin(), got.end());
  EXPECT_EQ(got, testing::ItemsetsOf(testing::BruteForceMine(db, tau)));
}

TEST(SingleFilterTest, EmptyDatabaseYieldsNothing) {
  TransactionDatabase db;
  BbsIndex bbs = MakeBbs(db, 64, 2);
  FilterEngine engine(bbs, 1);
  MineStats stats;
  engine.Prepare({1, 2, 3}, &stats);
  EXPECT_TRUE(RunSingleFilter(engine, &stats).empty());
}

// --- CheckCount --------------------------------------------------------------------

TEST(CheckCountTest, SingletonExactClassification) {
  ParentState root;  // empty parent
  // Frequent singleton: flag 1 with the exact count.
  CheckCountResult r = CheckCount(/*item_exact=*/10, /*item_est=*/12, root,
                                  /*union_est=*/12, /*tau=*/5);
  EXPECT_EQ(r.flag, 1);
  EXPECT_EQ(r.count, 10u);
  // Infrequent singleton: flag -1 even when the estimate passes the filter.
  r = CheckCount(3, 12, root, 12, 5);
  EXPECT_EQ(r.flag, -1);
  EXPECT_EQ(r.count, 3u);
}

TEST(CheckCountTest, Corollary1GivesFlagOne) {
  ParentState parent{/*flag=*/1, /*count=*/20, /*est=*/20, /*empty=*/false};
  // Item tight (est == exact) and parent tight: union estimate is exact.
  CheckCountResult r = CheckCount(15, 15, parent, 9, 5);
  EXPECT_EQ(r.flag, 1);
  EXPECT_EQ(r.count, 9u);
}

TEST(CheckCountTest, Lemma5LowerBoundGivesFlagTwo) {
  // Parent slack 3 (est 23, act 20); item tight; union est 9, tau 5:
  // lower bound 9 - 3 = 6 >= 5 -> guaranteed frequent, estimated count.
  ParentState parent{1, 20, 23, false};
  CheckCountResult r = CheckCount(15, 15, parent, 9, 5);
  EXPECT_EQ(r.flag, 2);
  EXPECT_EQ(r.count, 9u);
}

TEST(CheckCountTest, Lemma5SwappedRolesGivesFlagTwo) {
  // Parent tight; item slack 2 (est 17, act 15); union est 8, tau 5:
  // 8 - 2 = 6 >= 5.
  ParentState parent{1, 20, 20, false};
  CheckCountResult r = CheckCount(15, 17, parent, 8, 5);
  EXPECT_EQ(r.flag, 2);
  EXPECT_EQ(r.count, 8u);
}

TEST(CheckCountTest, LooseBoundsGiveFlagZero) {
  // Parent slack 10 and item slack 2: no bound reaches tau.
  ParentState parent{1, 20, 30, false};
  CheckCountResult r = CheckCount(15, 17, parent, 9, 5);
  EXPECT_EQ(r.flag, 0);
  EXPECT_EQ(r.count, 9u);
}

TEST(CheckCountTest, UncertainParentPropagatesUncertainty) {
  // flag 0 and flag 2 parents cannot certify anything (Figure 3 gates the
  // bounds on flag == 1).
  for (int parent_flag : {0, 2}) {
    ParentState parent{parent_flag, 20, 20, false};
    CheckCountResult r = CheckCount(15, 15, parent, 9, 5);
    EXPECT_EQ(r.flag, 0) << "parent flag " << parent_flag;
  }
}

TEST(CheckCountTest, UnderflowSafeWhenSlackExceedsEstimate) {
  // Parent slack (40) far exceeds union estimate (6): the subtraction in
  // the paper's formulation would underflow an unsigned value.
  ParentState parent{1, 10, 50, false};
  CheckCountResult r = CheckCount(15, 15, parent, 6, 5);
  EXPECT_EQ(r.flag, 0);
}

// --- DualFilter ---------------------------------------------------------------------

TEST(DualFilterTest, PartitionsCandidatesAndCertifiesCorrectly) {
  TransactionDatabase db = testing::RandomDb(31, 300, 40, 6.0);
  BbsIndex bbs = MakeBbs(db, 128, 2);
  uint64_t tau = 8;
  FilterEngine engine(bbs, tau);
  MineStats stats;
  engine.Prepare(UniverseOf(db), &stats);
  DualFilterOutput out = RunDualFilter(engine, &stats);

  // Every certified pattern must truly be frequent; flag-1 counts exact.
  for (const DualCandidate& c : out.certain) {
    uint64_t actual = testing::BruteForceSupport(db, c.items);
    EXPECT_GE(actual, tau) << ItemsetToString(c.items) << " flag " << c.flag;
    if (c.flag == 1) {
      EXPECT_EQ(c.count, actual) << ItemsetToString(c.items);
    } else {
      EXPECT_EQ(c.flag, 2);
      EXPECT_GE(c.count, actual) << "flag-2 counts are upper estimates";
    }
  }
  EXPECT_EQ(stats.certified, out.certain.size());
  EXPECT_EQ(stats.candidates, out.certain.size() + out.uncertain.size());
}

TEST(DualFilterTest, UnionCoversAllFrequentPatterns) {
  TransactionDatabase db = testing::RandomDb(37, 250, 30, 5.0);
  BbsIndex bbs = MakeBbs(db, 96, 2);
  uint64_t tau = 7;
  FilterEngine engine(bbs, tau);
  MineStats stats;
  engine.Prepare(UniverseOf(db), &stats);
  DualFilterOutput out = RunDualFilter(engine, &stats);

  std::set<Itemset> all;
  for (const DualCandidate& c : out.certain) all.insert(c.items);
  for (const DualCandidate& c : out.uncertain) all.insert(c.items);
  for (const Pattern& p : testing::BruteForceMine(db, tau)) {
    EXPECT_TRUE(all.contains(p.items)) << ItemsetToString(p.items);
  }
}

TEST(DualFilterTest, InfrequentSingletonsPrunedExactlyAtTopLevel) {
  // CheckCount's flag -1 (Figure 3 lines 1-3) applies when the parent is the
  // empty itemset: exactly-known infrequent items never appear as singleton
  // candidates, even if their BBS estimate passes the filter. (Deeper
  // extensions by such items can still surface as *uncertain* candidates —
  // the paper's pseudocode only consults exact counts at the top level.)
  TransactionDatabase db = testing::MakeDb({
      {1, 2, 3}, {1, 2, 3}, {1, 2}, {4, 5}, {6},
  });
  BbsIndex bbs = MakeBbs(db, 8, 1);  // tiny vector: heavy collisions
  uint64_t tau = 2;
  FilterEngine engine(bbs, tau);
  MineStats stats;
  engine.Prepare(UniverseOf(db), &stats);
  DualFilterOutput out = RunDualFilter(engine, &stats);
  auto check_singletons = [&](const std::vector<DualCandidate>& list) {
    for (const DualCandidate& c : list) {
      if (c.items.size() == 1) {
        EXPECT_GE(testing::BruteForceSupport(db, c.items), tau)
            << ItemsetToString(c.items);
      }
    }
  };
  check_singletons(out.certain);
  check_singletons(out.uncertain);
  // And every certified pattern of any length is truly frequent.
  for (const DualCandidate& c : out.certain) {
    EXPECT_GE(testing::BruteForceSupport(db, c.items), tau)
        << ItemsetToString(c.items);
  }
}

TEST(DualFilterTest, MostPatternsCertifiedOnWideVectors) {
  // With a wide vector the estimates are tight, so DualFilter should
  // certify the vast majority of candidates (the paper reports 80-90%).
  TransactionDatabase db = testing::RandomDb(41, 400, 30, 5.0);
  BbsIndex bbs = MakeBbs(db, 2048, 4);
  uint64_t tau = 10;
  FilterEngine engine(bbs, tau);
  MineStats stats;
  engine.Prepare(UniverseOf(db), &stats);
  DualFilterOutput out = RunDualFilter(engine, &stats);
  ASSERT_GT(out.certain.size() + out.uncertain.size(), 0u);
  double certified_share =
      static_cast<double>(out.certain.size()) /
      static_cast<double>(out.certain.size() + out.uncertain.size());
  EXPECT_GT(certified_share, 0.8);
}

}  // namespace
}  // namespace bbsmine
