// End-to-end tests of the four mining algorithms: every scheme must produce
// exactly the true frequent patterns (the filter-and-refine contract), with
// correct support classification, across hash widths, thresholds and memory
// budgets.

#include "core/miner.h"

#include <gtest/gtest.h>

#include <tuple>

#include "testing/reference.h"

namespace bbsmine {
namespace {

BbsIndex MakeBbs(const TransactionDatabase& db, uint32_t bits, uint32_t hashes,
                 HashKind kind = HashKind::kMd5) {
  BbsConfig config;
  config.num_bits = bits;
  config.num_hashes = hashes;
  config.hash_kind = kind;
  auto index = BbsIndex::Create(config);
  EXPECT_TRUE(index.ok());
  index->InsertAll(db);
  return std::move(index).value();
}

void ExpectMatchesGroundTruth(const TransactionDatabase& db,
                              MiningResult result, uint64_t tau) {
  std::vector<Pattern> truth = testing::BruteForceMine(db, tau);
  result.SortPatterns();
  ASSERT_EQ(testing::ItemsetsOf(result.patterns), testing::ItemsetsOf(truth));
  for (size_t i = 0; i < truth.size(); ++i) {
    const Pattern& got = result.patterns[i];
    const Pattern& want = truth[i];
    if (got.kind == SupportKind::kExact) {
      EXPECT_EQ(got.support, want.support) << ItemsetToString(got.items);
    } else {
      // Guaranteed-frequent estimates may only overestimate.
      EXPECT_GE(got.support, want.support) << ItemsetToString(got.items);
      EXPECT_GE(want.support, tau);
    }
  }
}

using Param =
    std::tuple<Algorithm, uint32_t /*num_bits*/, uint64_t /*db seed*/>;

class MinerEquivalenceTest : public ::testing::TestWithParam<Param> {};

TEST_P(MinerEquivalenceTest, MatchesBruteForce) {
  auto [algorithm, bits, seed] = GetParam();
  TransactionDatabase db = testing::RandomDb(seed, 300, 40, 6.0);
  BbsIndex bbs = MakeBbs(db, bits, 2);

  MineConfig config;
  config.algorithm = algorithm;
  config.min_support = 0.025;  // tau = 8 on 300 transactions
  MiningResult result = MineFrequentPatterns(db, bbs, config);
  ExpectMatchesGroundTruth(db, std::move(result),
                           AbsoluteThreshold(config.min_support, db.size()));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, MinerEquivalenceTest,
    ::testing::Combine(::testing::Values(Algorithm::kSFS, Algorithm::kSFP,
                                         Algorithm::kDFS, Algorithm::kDFP),
                       ::testing::Values(48u, 128u, 512u),
                       ::testing::Values(1u, 2u, 3u)));

class MinerThresholdTest
    : public ::testing::TestWithParam<std::tuple<Algorithm, double>> {};

TEST_P(MinerThresholdTest, MatchesBruteForceAcrossThresholds) {
  auto [algorithm, min_support] = GetParam();
  TransactionDatabase db = testing::RandomDb(7, 400, 30, 5.0);
  BbsIndex bbs = MakeBbs(db, 128, 2);
  MineConfig config;
  config.algorithm = algorithm;
  config.min_support = min_support;
  MiningResult result = MineFrequentPatterns(db, bbs, config);
  ExpectMatchesGroundTruth(db, std::move(result),
                           AbsoluteThreshold(min_support, db.size()));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, MinerThresholdTest,
    ::testing::Combine(::testing::Values(Algorithm::kSFS, Algorithm::kSFP,
                                         Algorithm::kDFS, Algorithm::kDFP),
                       ::testing::Values(0.01, 0.03, 0.08)));

class MinerMemoryBudgetTest
    : public ::testing::TestWithParam<std::tuple<Algorithm, uint64_t>> {};

TEST_P(MinerMemoryBudgetTest, AdaptiveVariantStaysCorrect) {
  auto [algorithm, budget] = GetParam();
  TransactionDatabase db = testing::RandomDb(19, 400, 40, 6.0);
  BbsIndex bbs = MakeBbs(db, 1024, 3);
  // 1024 slices x 50 bytes = 51200 bytes of BBS; small budgets force folds.
  MineConfig config;
  config.algorithm = algorithm;
  config.min_support = 0.02;
  config.memory_budget_bytes = budget;
  MiningResult result = MineFrequentPatterns(db, bbs, config);
  ExpectMatchesGroundTruth(db, std::move(result),
                           AbsoluteThreshold(config.min_support, db.size()));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, MinerMemoryBudgetTest,
    ::testing::Combine(::testing::Values(Algorithm::kSFS, Algorithm::kSFP,
                                         Algorithm::kDFS, Algorithm::kDFP),
                       ::testing::Values(4'000u, 16'000u, 1'000'000u)));

TEST(MinerTest, TightenAfterProbeAblationStaysCorrect) {
  TransactionDatabase db = testing::RandomDb(23, 300, 30, 5.0);
  BbsIndex bbs = MakeBbs(db, 64, 2);  // narrow: many false drops
  for (Algorithm algorithm : {Algorithm::kSFP, Algorithm::kDFP}) {
    MineConfig config;
    config.algorithm = algorithm;
    config.min_support = 0.02;
    config.tighten_after_probe = true;
    MiningResult result = MineFrequentPatterns(db, bbs, config);
    ExpectMatchesGroundTruth(db, std::move(result),
                             AbsoluteThreshold(config.min_support, db.size()));
  }
}

TEST(MinerTest, ProbeSchemesHaveFewerFalseDropsThanScanSchemes) {
  // The integrated probe cuts false-drop chains (paper Section 3.3): SFP's
  // false drops must not exceed SFS's, and DFP's must not exceed DFS's.
  TransactionDatabase db = testing::RandomDb(29, 500, 40, 6.0);
  BbsIndex bbs = MakeBbs(db, 96, 2);
  MineConfig config;
  config.min_support = 0.015;

  auto run = [&](Algorithm algorithm) {
    MineConfig c = config;
    c.algorithm = algorithm;
    return MineFrequentPatterns(db, bbs, c);
  };
  MiningResult sfs = run(Algorithm::kSFS);
  MiningResult sfp = run(Algorithm::kSFP);
  MiningResult dfs = run(Algorithm::kDFS);
  MiningResult dfp = run(Algorithm::kDFP);

  EXPECT_LE(sfp.stats.false_drops, sfs.stats.false_drops);
  EXPECT_LE(dfp.stats.false_drops, dfs.stats.false_drops);
  // The paper states SFS and DFS see the same false drops; in fact DFS can
  // see slightly fewer because the exact 1-itemset counts prune subtrees of
  // exactly-known-infrequent singletons that SingleFilter still explores.
  EXPECT_LE(dfs.stats.false_drops, sfs.stats.false_drops);
}

TEST(MinerTest, DualFilterCertifiesPatterns) {
  TransactionDatabase db = testing::RandomDb(31, 400, 30, 5.0);
  BbsIndex bbs = MakeBbs(db, 1024, 4);  // wide: tight estimates
  MineConfig config;
  config.algorithm = Algorithm::kDFP;
  config.min_support = 0.02;
  MiningResult result = MineFrequentPatterns(db, bbs, config);
  ASSERT_GT(result.patterns.size(), 0u);
  EXPECT_GT(result.stats.certified, 0u);
  // Certified patterns never probe: probes only happen for the rest.
  EXPECT_LE(result.stats.certified, result.stats.candidates);
}

TEST(MinerTest, StatsAreCoherent) {
  TransactionDatabase db = testing::RandomDb(37, 300, 30, 5.0);
  BbsIndex bbs = MakeBbs(db, 128, 2);
  MineConfig config;
  config.algorithm = Algorithm::kSFS;
  config.min_support = 0.02;
  MiningResult result = MineFrequentPatterns(db, bbs, config);
  // candidates = surviving patterns + false drops for the scan schemes.
  EXPECT_EQ(result.stats.candidates,
            result.patterns.size() + result.stats.false_drops);
  EXPECT_GE(result.stats.extension_tests, result.stats.candidates);
  EXPECT_GT(result.stats.total_seconds, 0.0);
  EXPECT_GT(result.stats.io.TotalReads(), 0u);
  EXPECT_GE(result.FalseDropRatio(), 0.0);
}

TEST(MinerTest, EmptyDatabase) {
  TransactionDatabase db;
  BbsIndex bbs = MakeBbs(db, 64, 2);
  MineConfig config;
  config.algorithm = Algorithm::kDFP;
  MiningResult result = MineFrequentPatterns(db, bbs, config);
  EXPECT_TRUE(result.patterns.empty());
}

TEST(MinerTest, SingleTransactionDatabase) {
  TransactionDatabase db = testing::MakeDb({{1, 2, 3}});
  BbsIndex bbs = MakeBbs(db, 64, 2);
  MineConfig config;
  config.algorithm = Algorithm::kDFP;
  config.min_support = 1.0;  // tau = 1
  MiningResult result = MineFrequentPatterns(db, bbs, config);
  result.SortPatterns();
  // All 7 non-empty subsets of {1,2,3} are frequent.
  EXPECT_EQ(result.patterns.size(), 7u);
}

TEST(MinerTest, ExplicitUniverseRestrictsSearch) {
  TransactionDatabase db = testing::MakeDb({{1, 2}, {1, 2}, {3, 4}, {3, 4}});
  BbsIndex bbs = MakeBbs(db, 256, 3);
  MineConfig config;
  config.algorithm = Algorithm::kSFP;
  config.min_support = 0.5;  // tau = 2
  MiningResult result = MineFrequentPatterns(db, bbs, config, {1, 2});
  result.SortPatterns();
  EXPECT_EQ(testing::ItemsetsOf(result.patterns),
            (std::vector<Itemset>{{1}, {1, 2}, {2}}));
}

TEST(MinerTest, FindLocatesPatterns) {
  TransactionDatabase db = testing::MakeDb({{1, 2}, {1, 2}, {1}});
  BbsIndex bbs = MakeBbs(db, 256, 3);
  MineConfig config;
  config.algorithm = Algorithm::kDFP;
  config.min_support = 0.5;
  MiningResult result = MineFrequentPatterns(db, bbs, config);
  result.SortPatterns();
  const Pattern* p = result.Find({1, 2});
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(p->support, 2u);
  EXPECT_EQ(result.Find({9}), nullptr);
}

TEST(MinerTest, AbsoluteThresholdRounding) {
  EXPECT_EQ(AbsoluteThreshold(0.003, 10'000), 30u);
  EXPECT_EQ(AbsoluteThreshold(0.0031, 10'000), 31u);
  EXPECT_EQ(AbsoluteThreshold(0.00301, 10'000), 31u);
  EXPECT_EQ(AbsoluteThreshold(0.0, 10'000), 1u) << "never below 1";
  EXPECT_EQ(AbsoluteThreshold(0.5, 3), 2u);
}

}  // namespace
}  // namespace bbsmine
