// Writer-vs-readers stress over the snapshot manager, built to run clean
// under ThreadSanitizer (the CI thread-sanitizer job includes it).
//
// The trick that makes the assertions exact rather than statistical: every
// inserted transaction contains a designated sentinel item. BBS signatures
// of supersets always set every bit the sentinel's slices select, so
// CountItemSet({sentinel}) over any snapshot equals *exactly* the number of
// visible transactions — no false-positive slack. A reader can therefore
// check, with equality, that every observed count is consistent with some
// prefix of the insert sequence and that successive observations are
// monotone (no torn reads, no going back in time).

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "core/segmented_bbs.h"
#include "service/scheduler.h"
#include "service/snapshot.h"
#include "testing/reference.h"

namespace bbsmine::service {
namespace {

constexpr ItemId kSentinel = 7;

BbsConfig StressConfig() {
  BbsConfig config;
  config.num_bits = 128;
  config.num_hashes = 2;
  return config;
}

/// Deterministic transaction t: the sentinel plus a couple of rotating
/// items, so slices other than the sentinel's churn too.
Itemset StressTransaction(size_t t) {
  Itemset items = {kSentinel, static_cast<ItemId>(t % 16),
                   static_cast<ItemId>((3 * t + 1) % 16)};
  Canonicalize(&items);
  return items;
}

TEST(SnapshotStressTest, ReadersSeeMonotonePrefixesWhileWriterInserts) {
  constexpr size_t kInserts = 400;
  constexpr size_t kReaders = 3;

  auto manager = SnapshotManager::Create(StressConfig(), 32);
  ASSERT_TRUE(manager.ok());

  std::atomic<bool> done{false};
  std::atomic<uint64_t> violations{0};

  std::vector<std::thread> readers;
  for (size_t r = 0; r < kReaders; ++r) {
    readers.emplace_back([&] {
      size_t last_count = 0;
      uint64_t last_epoch = 0;
      while (!done.load(std::memory_order_acquire)) {
        Snapshot snap = manager->Acquire();
        size_t visible = snap.num_transactions();
        size_t count = snap.CountItemSet({kSentinel});
        // Exact prefix consistency: the sentinel count IS the prefix
        // length of this snapshot.
        if (count != visible) violations.fetch_add(1);
        if (count > kInserts) violations.fetch_add(1);
        // Monotone snapshots: epochs and counts never regress.
        if (count < last_count || snap.epoch() < last_epoch) {
          violations.fetch_add(1);
        }
        last_count = count;
        last_epoch = snap.epoch();
      }
    });
  }

  for (size_t t = 0; t < kInserts; ++t) {
    ASSERT_TRUE(manager->Insert(StressTransaction(t)).ok());
  }
  done.store(true, std::memory_order_release);
  for (std::thread& t : readers) t.join();

  EXPECT_EQ(violations.load(), 0u);
  Snapshot final_snap = manager->Acquire();
  EXPECT_EQ(final_snap.num_transactions(), kInserts);
  EXPECT_EQ(final_snap.CountItemSet({kSentinel}), kInserts);
}

TEST(SnapshotStressTest, SchedulerAnswersStayPrefixConsistentUnderInserts) {
  constexpr size_t kInserts = 200;

  auto manager = SnapshotManager::Create(StressConfig(), 32);
  ASSERT_TRUE(manager.ok());
  SchedulerOptions options;
  options.num_threads = 2;
  CountScheduler scheduler(&*manager, options, nullptr);

  std::atomic<bool> done{false};
  std::atomic<uint64_t> violations{0};
  std::atomic<uint64_t> queries{0};

  std::vector<std::thread> clients;
  for (size_t c = 0; c < 2; ++c) {
    clients.emplace_back([&] {
      uint64_t last_count = 0;
      uint64_t last_epoch = 0;
      while (!done.load(std::memory_order_acquire)) {
        CountResult result;
        Status status = scheduler.Count({kSentinel}, &result);
        if (!status.ok()) break;  // drained at shutdown
        queries.fetch_add(1);
        // Every scheduled answer is an exact prefix length, stamped with
        // the epoch it was answered at.
        if (result.count != result.visible_transactions ||
            result.count > kInserts) {
          violations.fetch_add(1);
        }
        if (result.count < last_count || result.epoch < last_epoch) {
          violations.fetch_add(1);
        }
        last_count = result.count;
        last_epoch = result.epoch;
      }
    });
  }

  // Wait until the clients are actually querying before the writer starts:
  // on a loaded machine the 200 inserts can finish before the client
  // threads are even scheduled, which would make the overlap (and the
  // queries > 0 assertion below) vacuous.
  while (queries.load(std::memory_order_acquire) == 0) {
    std::this_thread::yield();
  }

  for (size_t t = 0; t < kInserts; ++t) {
    ASSERT_TRUE(manager->Insert(StressTransaction(t)).ok());
  }
  done.store(true, std::memory_order_release);
  for (std::thread& t : clients) t.join();
  scheduler.Shutdown();

  EXPECT_EQ(violations.load(), 0u);
  EXPECT_GT(queries.load(), 0u);
  CountResult final_result;
  // The scheduler is shut down; verify the final state directly.
  EXPECT_EQ(manager->Acquire().CountItemSet({kSentinel}), kInserts);
  (void)final_result;
}

TEST(SnapshotStressTest, ConcurrentBatchInsertsKeepPrefixExact) {
  auto manager = SnapshotManager::Create(StressConfig(), 16);
  ASSERT_TRUE(manager.ok());

  // Two writers race InsertAll batches; writers serialize internally, so
  // the result must be exactly the union and every intermediate snapshot a
  // prefix-consistent state.
  TransactionDatabase batch_a;
  TransactionDatabase batch_b;
  for (size_t t = 0; t < 60; ++t) batch_a.Append(StressTransaction(t));
  for (size_t t = 60; t < 130; ++t) batch_b.Append(StressTransaction(t));

  std::atomic<bool> done{false};
  std::atomic<uint64_t> violations{0};
  std::thread reader([&] {
    while (!done.load(std::memory_order_acquire)) {
      Snapshot snap = manager->Acquire();
      if (snap.CountItemSet({kSentinel}) != snap.num_transactions()) {
        violations.fetch_add(1);
      }
    }
  });
  std::thread writer_a([&] { ASSERT_TRUE(manager->InsertAll(batch_a).ok()); });
  std::thread writer_b([&] { ASSERT_TRUE(manager->InsertAll(batch_b).ok()); });
  writer_a.join();
  writer_b.join();
  done.store(true, std::memory_order_release);
  reader.join();

  EXPECT_EQ(violations.load(), 0u);
  EXPECT_EQ(manager->num_transactions(), batch_a.size() + batch_b.size());
  EXPECT_EQ(manager->Acquire().CountItemSet({kSentinel}),
            batch_a.size() + batch_b.size());
}

}  // namespace
}  // namespace bbsmine::service
