// Failure-injection tests: randomly corrupted or truncated persisted files
// must load as clean errors — never crash, hang, or yield silently wrong
// data.

#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <functional>

#include "core/bbs_index.h"
#include "core/segmented_bbs.h"
#include "service/wal.h"
#include "storage/item_catalog.h"
#include "storage/record_store.h"
#include "storage/transaction_db.h"
#include "testing/reference.h"
#include "util/rng.h"

namespace bbsmine {
namespace {

// Unique per process: ctest runs the parameterized instances as parallel
// processes, and a shared fixed name lets one instance's Save rename a
// fresh valid file over another's just-corrupted bytes mid-trial.
std::string TempPath(const std::string& name) {
  return (std::filesystem::temp_directory_path() /
          (std::to_string(::getpid()) + "_" + name))
      .string();
}

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

void WriteFile(const std::string& path, const std::string& contents) {
  std::ofstream out(path, std::ios::binary);
  out << contents;
}

class CorruptionFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CorruptionFuzzTest, DatabaseLoaderNeverAcceptsCorruptedBytes) {
  Rng rng(GetParam());
  TransactionDatabase db = testing::RandomDb(GetParam(), 60, 30, 5.0);
  std::string path = TempPath("bbsmine_fuzz_db.bin");
  ASSERT_TRUE(db.Save(path).ok());
  std::string original = ReadFile(path);

  for (int trial = 0; trial < 25; ++trial) {
    std::string mutated = original;
    // Flip 1-3 random bytes.
    int flips = 1 + static_cast<int>(rng.Uniform(3));
    for (int f = 0; f < flips; ++f) {
      size_t pos = rng.Uniform(mutated.size());
      mutated[pos] = static_cast<char>(mutated[pos] ^
                                       (1 + rng.Uniform(255)));
    }
    if (mutated == original) continue;
    WriteFile(path, mutated);
    Result<TransactionDatabase> loaded = TransactionDatabase::Load(path);
    // Either rejected, or (if the flip missed all meaningful bytes — not
    // possible here since everything is covered by the CRC) identical.
    EXPECT_FALSE(loaded.ok())
        << "corrupted database accepted (trial " << trial << ")";
  }
  std::remove(path.c_str());
}

TEST_P(CorruptionFuzzTest, DatabaseLoaderNeverAcceptsTruncation) {
  Rng rng(GetParam() * 31 + 5);
  TransactionDatabase db = testing::RandomDb(GetParam(), 40, 20, 4.0);
  std::string path = TempPath("bbsmine_fuzz_db_trunc.bin");
  ASSERT_TRUE(db.Save(path).ok());
  std::string original = ReadFile(path);

  for (int trial = 0; trial < 15; ++trial) {
    size_t keep = rng.Uniform(original.size());
    WriteFile(path, original.substr(0, keep));
    Result<TransactionDatabase> loaded = TransactionDatabase::Load(path);
    EXPECT_FALSE(loaded.ok()) << "truncated to " << keep << " bytes";
  }
  std::remove(path.c_str());
}

TEST_P(CorruptionFuzzTest, IndexLoaderNeverAcceptsCorruptedBytes) {
  Rng rng(GetParam() * 77 + 3);
  TransactionDatabase db = testing::RandomDb(GetParam(), 50, 20, 4.0);
  BbsConfig config;
  config.num_bits = 64;
  config.num_hashes = 2;
  auto bbs = BbsIndex::Create(config);
  ASSERT_TRUE(bbs.ok());
  bbs->InsertAll(db);
  std::string path = TempPath("bbsmine_fuzz_idx.bin");
  ASSERT_TRUE(bbs->Save(path).ok());
  std::string original = ReadFile(path);

  for (int trial = 0; trial < 25; ++trial) {
    std::string mutated = original;
    size_t pos = rng.Uniform(mutated.size());
    mutated[pos] = static_cast<char>(mutated[pos] ^ (1 + rng.Uniform(255)));
    if (mutated == original) continue;
    WriteFile(path, mutated);
    Result<BbsIndex> loaded = BbsIndex::Load(path);
    EXPECT_FALSE(loaded.ok()) << "corrupted index accepted";
  }
  std::remove(path.c_str());
}

TEST_P(CorruptionFuzzTest, CatalogLoaderNeverAcceptsCorruptedBytes) {
  Rng rng(GetParam() * 13 + 1);
  ItemCatalog catalog;
  for (int i = 0; i < 20; ++i) {
    catalog.Intern("item-" + std::to_string(i));
  }
  std::string path = TempPath("bbsmine_fuzz_cat.bin");
  ASSERT_TRUE(catalog.Save(path).ok());
  std::string original = ReadFile(path);

  for (int trial = 0; trial < 25; ++trial) {
    std::string mutated = original;
    size_t pos = rng.Uniform(mutated.size());
    mutated[pos] = static_cast<char>(mutated[pos] ^ (1 + rng.Uniform(255)));
    if (mutated == original) continue;
    WriteFile(path, mutated);
    Result<ItemCatalog> loaded = ItemCatalog::Load(path);
    EXPECT_FALSE(loaded.ok()) << "corrupted catalog accepted";
  }
  std::remove(path.c_str());
}

INSTANTIATE_TEST_SUITE_P(Seeds, CorruptionFuzzTest,
                         ::testing::Range<uint64_t>(1, 6));

// ---------------------------------------------------------------------------
// Corruption matrix: targeted (not random) bit flips in each structural
// region of every on-disk format documented in docs/FORMATS.md — magic,
// version, CRC, payload, footer — must be rejected with kCorruption. The
// fuzz suite above samples the byte space; this pins down every region by
// name so a loader that stops checking one of them fails loudly.
// ---------------------------------------------------------------------------

struct Region {
  const char* name;
  size_t begin;
  size_t end;  // exclusive
};

// Flips one bit per byte of `region` (stepping so large regions stay cheap)
// and asserts `load` reports kCorruption for every mutant.
void ExpectRegionFlipsRejected(const std::string& original,
                               const std::string& path, const Region& region,
                               const std::function<Status()>& load) {
  ASSERT_LE(region.end, original.size()) << region.name;
  size_t span = region.end - region.begin;
  size_t step = span <= 64 ? 1 : span / 32;
  for (size_t pos = region.begin; pos < region.end; pos += step) {
    std::string mutated = original;
    mutated[pos] = static_cast<char>(mutated[pos] ^ (1u << (pos % 8)));
    if (mutated == original) mutated[pos] = static_cast<char>(mutated[pos] ^ 1);
    WriteFile(path, mutated);
    Status status = load();
    EXPECT_FALSE(status.ok())
        << region.name << ": flip at byte " << pos << " accepted";
    EXPECT_EQ(status.code(), StatusCode::kCorruption)
        << region.name << ": flip at byte " << pos << " reported "
        << status.ToString();
  }
  WriteFile(path, original);  // leave the file valid for the next region
}

TEST(CorruptionMatrixTest, TransactionDatabaseRegions) {
  TransactionDatabase db = testing::RandomDb(7, 40, 24, 4.0);
  std::string path = TempPath("bbsmine_matrix_db.bin");
  ASSERT_TRUE(db.Save(path).ok());
  std::string original = ReadFile(path);
  auto load = [&] { return TransactionDatabase::Load(path).status(); };
  // Header: magic[0,8) version[8,12) crc[12,16), then the CRC-covered body.
  for (Region region : {Region{"magic", 0, 8}, Region{"version", 8, 12},
                        Region{"crc", 12, 16},
                        Region{"payload", 16, original.size()}}) {
    ExpectRegionFlipsRejected(original, path, region, load);
  }
  std::remove(path.c_str());
}

TEST(CorruptionMatrixTest, BbsIndexRegions) {
  TransactionDatabase db = testing::RandomDb(8, 40, 24, 4.0);
  BbsConfig config;
  config.num_bits = 64;
  config.num_hashes = 2;
  auto bbs = BbsIndex::Create(config);
  ASSERT_TRUE(bbs.ok());
  bbs->InsertAll(db);
  std::string path = TempPath("bbsmine_matrix_idx.bin");
  ASSERT_TRUE(bbs->Save(path).ok());
  std::string original = ReadFile(path);
  // v2 layout (docs/FORMATS.md): magic[0,8) version[8,12) header_crc[12,16)
  // fixed metadata + arrays + padding [16, slice_data_offset) covered by the
  // header CRC, then 64-byte-aligned slice data covered by data_crc. The
  // slice_data_offset field sits at bytes [68,76).
  uint64_t data_offset = 0;
  std::memcpy(&data_offset, original.data() + 68, 8);
  ASSERT_GT(data_offset, 88u);
  ASSERT_LT(data_offset, original.size());
  auto load = [&] { return BbsIndex::Load(path).status(); };
  for (Region region :
       {Region{"magic", 0, 8}, Region{"version", 8, 12},
        Region{"header crc", 12, 16},
        Region{"metadata", 16, static_cast<size_t>(data_offset)},
        Region{"slice data", static_cast<size_t>(data_offset),
               original.size()}}) {
    ExpectRegionFlipsRejected(original, path, region, load);
  }
  // The mmap open verifies the header CRC and structural bounds but skips
  // the slice-data checksum (lazy serving); header-region flips must still
  // be rejected through it.
  auto open_mmap = [&] { return BbsIndex::OpenMmap(path).status(); };
  for (Region region :
       {Region{"magic (mmap)", 0, 8}, Region{"version (mmap)", 8, 12},
        Region{"header crc (mmap)", 12, 16},
        Region{"metadata (mmap)", 16, static_cast<size_t>(data_offset)}}) {
    ExpectRegionFlipsRejected(original, path, region, open_mmap);
  }
  std::remove(path.c_str());
}

TEST(CorruptionMatrixTest, ItemCatalogRegions) {
  ItemCatalog catalog;
  for (int i = 0; i < 12; ++i) catalog.Intern("item-" + std::to_string(i));
  std::string path = TempPath("bbsmine_matrix_cat.bin");
  ASSERT_TRUE(catalog.Save(path).ok());
  std::string original = ReadFile(path);
  auto load = [&] { return ItemCatalog::Load(path).status(); };
  for (Region region : {Region{"magic", 0, 8}, Region{"version", 8, 12},
                        Region{"crc", 12, 16},
                        Region{"payload", 16, original.size()}}) {
    ExpectRegionFlipsRejected(original, path, region, load);
  }
  std::remove(path.c_str());
}

TEST(CorruptionMatrixTest, SegmentedManifestAndSegmentRegions) {
  TransactionDatabase db = testing::RandomDb(9, 30, 20, 4.0);
  BbsConfig config;
  config.num_bits = 64;
  config.num_hashes = 2;
  auto seg = SegmentedBbs::Create(config, 8);
  ASSERT_TRUE(seg.ok());
  ASSERT_TRUE(seg->InsertAll(db).ok());
  std::string prefix = TempPath("bbsmine_matrix_seg");
  ASSERT_TRUE(seg->Save(prefix).ok());

  // The v2 manifest has no separate version field: magic "BBSSEG02"
  // carries it, then crc[8,12) and the CRC-covered payload (capacity,
  // segment count, transactions, epoch, per-segment {txns, crc}).
  std::string manifest_path = prefix + ".manifest";
  std::string manifest = ReadFile(manifest_path);
  auto load = [&] {
    uint64_t epoch = 0;
    return SegmentedBbs::Load(prefix, &epoch).status();
  };
  for (Region region : {Region{"magic", 0, 8}, Region{"crc", 8, 12},
                        Region{"payload", 12, manifest.size()}}) {
    ExpectRegionFlipsRejected(manifest, manifest_path, region, load);
  }

  // A flipped bit anywhere inside a sealed segment file must be caught —
  // either by the segment's own format checks or by the manifest's
  // per-segment CRC (which is what detects a stale-but-well-formed file).
  std::string seg0_path = prefix + ".seg0";
  std::string seg0 = ReadFile(seg0_path);
  ExpectRegionFlipsRejected(seg0, seg0_path,
                            Region{"segment file", 0, seg0.size()}, load);

  for (size_t i = 0; i < seg->num_segments(); ++i) {
    std::remove((prefix + ".seg" + std::to_string(i)).c_str());
  }
  std::remove(manifest_path.c_str());
}

TEST(CorruptionMatrixTest, RecordStoreRegions) {
  TransactionDatabase db = testing::RandomDb(10, 30, 20, 4.0);
  std::string path = TempPath("bbsmine_matrix_rec.bin");
  ASSERT_TRUE(RecordStore::Write(db, path).ok());
  std::string original = ReadFile(path);
  // Header: magic[0,8) version[8,12) count[12,20) index_offset[20,28)
  // footer_crc[28,32) records_crc[32,36); records to index_offset; footer
  // to EOF. The count/index_offset fields are not CRC-covered, so the
  // loader must catch flips there via its file-size cross-checks.
  constexpr size_t kHeader = 36;
  size_t index_offset = 0;
  std::memcpy(&index_offset, original.data() + 20, 8);
  ASSERT_GT(index_offset, kHeader);
  ASSERT_LT(index_offset, original.size());
  auto load = [&] { return RecordStore::Open(path, 4).status(); };
  for (Region region :
       {Region{"magic", 0, 8}, Region{"version", 8, 12},
        Region{"count", 12, 20}, Region{"index offset", 20, 28},
        Region{"footer crc", 28, 32}, Region{"records crc", 32, 36},
        Region{"records payload", kHeader, index_offset},
        Region{"footer", index_offset, original.size()}}) {
    ExpectRegionFlipsRejected(original, path, region, load);
  }
  std::remove(path.c_str());
}

TEST(CorruptionMatrixTest, WalHeaderAndSealedRecordRegions) {
  std::string path = TempPath("bbsmine_matrix_wal.bin");
  service::WalOptions options;
  options.policy = service::FsyncPolicy::kNone;
  auto wal = service::WriteAheadLog::Create(path, 0, options);
  ASSERT_TRUE(wal.ok());
  ASSERT_TRUE(wal->Append({{1, 2, 3}, {4, 5}}).ok());
  ASSERT_TRUE(wal->Append({{6, 7}}).ok());
  std::string original = ReadFile(path);

  auto load = [&] {
    return service::WriteAheadLog::Replay(
               path, [](const std::vector<Itemset>&) { return Status::Ok(); })
        .status();
  };
  // Header: magic[0,8) version[8,12) crc[12,16) base_txn_count[16,24).
  for (Region region : {Region{"magic", 0, 8}, Region{"version", 8, 12},
                        Region{"header crc", 12, 16},
                        Region{"base txn count", 16, 24}}) {
    ExpectRegionFlipsRejected(original, path, region, load);
  }

  // A flipped bit in a sealed record's CRC or payload cannot be a torn
  // append (the record still ends before EOF, with data after it), so
  // Replay must refuse with Corruption rather than truncate away
  // acknowledged records. The first record spans [24, 24 + 8 + len0); its
  // CRC+payload start at byte 28.
  uint32_t len0 = 0;
  std::memcpy(&len0, original.data() + 24, 4);
  size_t first_record_end = 24 + 8 + len0;
  ASSERT_LT(first_record_end, original.size());
  ExpectRegionFlipsRejected(
      original, path, Region{"sealed record crc+payload", 28, first_record_end},
      load);

  // The length prefix itself is the one ambiguous spot: a flip that
  // inflates it past EOF looks exactly like a torn append of a large
  // record (the same ambiguity exists in LevelDB-style logs). The contract
  // is therefore weaker but never silent: Corruption, or a *reported*
  // truncation that visibly drops records — never a clean replay of both.
  for (size_t pos = 24; pos < 28; ++pos) {
    std::string mutated = original;
    mutated[pos] = static_cast<char>(mutated[pos] ^ (1u << (pos % 8)));
    WriteFile(path, mutated);
    auto replayed = service::WriteAheadLog::Replay(
        path, [](const std::vector<Itemset>&) { return Status::Ok(); });
    if (replayed.ok()) {
      EXPECT_TRUE(replayed->tail_truncated) << "len flip at byte " << pos;
      EXPECT_LT(replayed->records, 2u) << "len flip at byte " << pos;
    } else {
      EXPECT_EQ(replayed.status().code(), StatusCode::kCorruption)
          << "len flip at byte " << pos;
    }
  }
  std::remove(path.c_str());
}

TEST(CorruptionMatrixTest, WalTailFlipsNeverCrashAndNeverLoadSilently) {
  // Flips in the FINAL record are indistinguishable from a torn append in
  // some positions (the frame length, the tail CRC), so the contract is
  // weaker but still strict: Replay either truncates the tail (reporting
  // the discarded bytes) or refuses with Corruption — it never crashes and
  // never delivers the damaged record as valid data.
  std::string path = TempPath("bbsmine_matrix_wal_tail.bin");
  service::WalOptions options;
  options.policy = service::FsyncPolicy::kNone;
  auto wal = service::WriteAheadLog::Create(path, 0, options);
  ASSERT_TRUE(wal.ok());
  ASSERT_TRUE(wal->Append({{1, 2, 3}}).ok());
  ASSERT_TRUE(wal->Append({{9, 10, 11}, {12}}).ok());
  std::string original = ReadFile(path);
  uint32_t len0 = 0;
  std::memcpy(&len0, original.data() + 24, 4);
  size_t tail_begin = 24 + 8 + len0;

  for (size_t pos = tail_begin; pos < original.size(); ++pos) {
    std::string mutated = original;
    mutated[pos] = static_cast<char>(mutated[pos] ^ (1u << (pos % 8)));
    WriteFile(path, mutated);
    uint64_t tail_transactions = 0;
    auto replayed = service::WriteAheadLog::Replay(
        path, [&](const std::vector<Itemset>& batch) {
          tail_transactions += batch.size();
          return Status::Ok();
        });
    if (replayed.ok()) {
      EXPECT_TRUE(replayed->tail_truncated)
          << "flip at byte " << pos << " replayed as if intact";
      EXPECT_GT(replayed->torn_tail_bytes, 0u) << "flip at byte " << pos;
      EXPECT_EQ(replayed->records, 1u) << "flip at byte " << pos;
    } else {
      EXPECT_EQ(replayed.status().code(), StatusCode::kCorruption)
          << "flip at byte " << pos << ": " << replayed.status().ToString();
    }
  }
  std::remove(path.c_str());
}

TEST(RobustnessTest, GarbageFilesRejectedEverywhere) {
  std::string path = TempPath("bbsmine_garbage.bin");
  WriteFile(path, "this is not a bbsmine file at all, not even close");
  EXPECT_FALSE(TransactionDatabase::Load(path).ok());
  EXPECT_FALSE(BbsIndex::Load(path).ok());
  EXPECT_FALSE(ItemCatalog::Load(path).ok());
  std::remove(path.c_str());
}

TEST(RobustnessTest, EmptyFilesRejectedEverywhere) {
  std::string path = TempPath("bbsmine_emptyfile.bin");
  WriteFile(path, "");
  EXPECT_FALSE(TransactionDatabase::Load(path).ok());
  EXPECT_FALSE(BbsIndex::Load(path).ok());
  EXPECT_FALSE(ItemCatalog::Load(path).ok());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace bbsmine
