// Failure-injection tests: randomly corrupted or truncated persisted files
// must load as clean errors — never crash, hang, or yield silently wrong
// data.

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "core/bbs_index.h"
#include "storage/item_catalog.h"
#include "storage/transaction_db.h"
#include "testing/reference.h"
#include "util/rng.h"

namespace bbsmine {
namespace {

std::string TempPath(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

void WriteFile(const std::string& path, const std::string& contents) {
  std::ofstream out(path, std::ios::binary);
  out << contents;
}

class CorruptionFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CorruptionFuzzTest, DatabaseLoaderNeverAcceptsCorruptedBytes) {
  Rng rng(GetParam());
  TransactionDatabase db = testing::RandomDb(GetParam(), 60, 30, 5.0);
  std::string path = TempPath("bbsmine_fuzz_db.bin");
  ASSERT_TRUE(db.Save(path).ok());
  std::string original = ReadFile(path);

  for (int trial = 0; trial < 25; ++trial) {
    std::string mutated = original;
    // Flip 1-3 random bytes.
    int flips = 1 + static_cast<int>(rng.Uniform(3));
    for (int f = 0; f < flips; ++f) {
      size_t pos = rng.Uniform(mutated.size());
      mutated[pos] = static_cast<char>(mutated[pos] ^
                                       (1 + rng.Uniform(255)));
    }
    if (mutated == original) continue;
    WriteFile(path, mutated);
    Result<TransactionDatabase> loaded = TransactionDatabase::Load(path);
    // Either rejected, or (if the flip missed all meaningful bytes — not
    // possible here since everything is covered by the CRC) identical.
    EXPECT_FALSE(loaded.ok())
        << "corrupted database accepted (trial " << trial << ")";
  }
  std::remove(path.c_str());
}

TEST_P(CorruptionFuzzTest, DatabaseLoaderNeverAcceptsTruncation) {
  Rng rng(GetParam() * 31 + 5);
  TransactionDatabase db = testing::RandomDb(GetParam(), 40, 20, 4.0);
  std::string path = TempPath("bbsmine_fuzz_db_trunc.bin");
  ASSERT_TRUE(db.Save(path).ok());
  std::string original = ReadFile(path);

  for (int trial = 0; trial < 15; ++trial) {
    size_t keep = rng.Uniform(original.size());
    WriteFile(path, original.substr(0, keep));
    Result<TransactionDatabase> loaded = TransactionDatabase::Load(path);
    EXPECT_FALSE(loaded.ok()) << "truncated to " << keep << " bytes";
  }
  std::remove(path.c_str());
}

TEST_P(CorruptionFuzzTest, IndexLoaderNeverAcceptsCorruptedBytes) {
  Rng rng(GetParam() * 77 + 3);
  TransactionDatabase db = testing::RandomDb(GetParam(), 50, 20, 4.0);
  BbsConfig config;
  config.num_bits = 64;
  config.num_hashes = 2;
  auto bbs = BbsIndex::Create(config);
  ASSERT_TRUE(bbs.ok());
  bbs->InsertAll(db);
  std::string path = TempPath("bbsmine_fuzz_idx.bin");
  ASSERT_TRUE(bbs->Save(path).ok());
  std::string original = ReadFile(path);

  for (int trial = 0; trial < 25; ++trial) {
    std::string mutated = original;
    size_t pos = rng.Uniform(mutated.size());
    mutated[pos] = static_cast<char>(mutated[pos] ^ (1 + rng.Uniform(255)));
    if (mutated == original) continue;
    WriteFile(path, mutated);
    Result<BbsIndex> loaded = BbsIndex::Load(path);
    EXPECT_FALSE(loaded.ok()) << "corrupted index accepted";
  }
  std::remove(path.c_str());
}

TEST_P(CorruptionFuzzTest, CatalogLoaderNeverAcceptsCorruptedBytes) {
  Rng rng(GetParam() * 13 + 1);
  ItemCatalog catalog;
  for (int i = 0; i < 20; ++i) {
    catalog.Intern("item-" + std::to_string(i));
  }
  std::string path = TempPath("bbsmine_fuzz_cat.bin");
  ASSERT_TRUE(catalog.Save(path).ok());
  std::string original = ReadFile(path);

  for (int trial = 0; trial < 25; ++trial) {
    std::string mutated = original;
    size_t pos = rng.Uniform(mutated.size());
    mutated[pos] = static_cast<char>(mutated[pos] ^ (1 + rng.Uniform(255)));
    if (mutated == original) continue;
    WriteFile(path, mutated);
    Result<ItemCatalog> loaded = ItemCatalog::Load(path);
    EXPECT_FALSE(loaded.ok()) << "corrupted catalog accepted";
  }
  std::remove(path.c_str());
}

INSTANTIATE_TEST_SUITE_P(Seeds, CorruptionFuzzTest,
                         ::testing::Range<uint64_t>(1, 6));

TEST(RobustnessTest, GarbageFilesRejectedEverywhere) {
  std::string path = TempPath("bbsmine_garbage.bin");
  WriteFile(path, "this is not a bbsmine file at all, not even close");
  EXPECT_FALSE(TransactionDatabase::Load(path).ok());
  EXPECT_FALSE(BbsIndex::Load(path).ok());
  EXPECT_FALSE(ItemCatalog::Load(path).ok());
  std::remove(path.c_str());
}

TEST(RobustnessTest, EmptyFilesRejectedEverywhere) {
  std::string path = TempPath("bbsmine_emptyfile.bin");
  WriteFile(path, "");
  EXPECT_FALSE(TransactionDatabase::Load(path).ok());
  EXPECT_FALSE(BbsIndex::Load(path).ok());
  EXPECT_FALSE(ItemCatalog::Load(path).ok());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace bbsmine
