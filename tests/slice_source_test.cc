// Tests for the SliceSource read-path backends: mmap/resident parity on
// every query primitive and mining scheme (across every available SIMD
// kernel), the v2 aligned format's corruption handling, fold compaction
// semantics (upper bounds, Save/Load round-trips), synthetic-I/O gating,
// and the SnapshotManager cold-segment compaction hook.

#include "core/slice_source.h"

#include <gtest/gtest.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "core/bbs_index.h"
#include "core/miner.h"
#include "core/segmented_bbs.h"
#include "service/snapshot.h"
#include "testing/reference.h"
#include "util/bitvector_kernels.h"
#include "util/crc32.h"

namespace bbsmine {
namespace {

// Pid-qualified: ctest -j runs each test case of a fixture as its own
// process, so a fixed name would let concurrent cases clobber each
// other's files.
std::string TempPath(const std::string& name) {
  return (std::filesystem::temp_directory_path() /
          (std::to_string(::getpid()) + "_" + name))
      .string();
}

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

void WriteFile(const std::string& path, const std::string& contents) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(contents.data(),
            static_cast<std::streamsize>(contents.size()));
}

BbsConfig SmallConfig(uint32_t bits = 128) {
  BbsConfig config;
  config.num_bits = bits;
  config.num_hashes = 3;
  return config;
}

/// Exact support by database scan (canonical itemsets are sorted).
uint64_t ExactCount(const TransactionDatabase& db, const Itemset& query) {
  uint64_t count = 0;
  for (size_t t = 0; t < db.size(); ++t) {
    const Itemset& txn = db.At(t).items;
    if (std::includes(txn.begin(), txn.end(), query.begin(), query.end())) {
      ++count;
    }
  }
  return count;
}

std::vector<Itemset> QuerySet() {
  return {{0}, {3}, {7, 11}, {1, 4, 9}, {2, 5, 8, 13}, {19}, {6, 17}};
}

/// Restores the process-global kernel selection on scope exit.
struct KernelGuard {
  std::string saved = kernels::ActiveName();
  ~KernelGuard() { kernels::SetActive(saved.c_str()); }
};

TEST(SliceSourceTest, ParseIndexBackend) {
  auto resident = ParseIndexBackend("resident");
  ASSERT_TRUE(resident.ok());
  EXPECT_EQ(*resident, IndexBackend::kResident);
  auto mmap = ParseIndexBackend("mmap");
  ASSERT_TRUE(mmap.ok());
  EXPECT_EQ(*mmap, IndexBackend::kMmap);
  EXPECT_EQ(ParseIndexBackend("disk").status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_STREQ(IndexBackendName(IndexBackend::kResident), "resident");
  EXPECT_STREQ(IndexBackendName(IndexBackend::kMmap), "mmap");
}

// Every counting primitive must answer bit-identically from the mmap
// backend, under every SIMD kernel the host can run.
TEST(SliceSourceTest, MmapCountParityAcrossKernels) {
  TransactionDatabase db = testing::RandomDb(21, 400, 24, 5.0);
  auto built = BbsIndex::Create(SmallConfig());
  ASSERT_TRUE(built.ok());
  built->InsertAll(db);
  std::string path = TempPath("bbsmine_slicesrc_parity.bbs");
  ASSERT_TRUE(built->Save(path).ok());

  auto resident = BbsIndex::Load(path);
  auto mapped = BbsIndex::OpenMmap(path);
  ASSERT_TRUE(resident.ok());
  ASSERT_TRUE(mapped.ok());
  EXPECT_TRUE(resident->resident());
  EXPECT_FALSE(mapped->resident());
  EXPECT_STREQ(resident->backend_name(), "resident");
  EXPECT_STREQ(mapped->backend_name(), "mmap");

  BitVector constraint(db.size());
  for (size_t t = 0; t < db.size(); t += 3) constraint.Set(t);

  KernelGuard guard;
  for (const char* kernel : kernels::AvailableNames()) {
    ASSERT_TRUE(kernels::SetActive(kernel)) << kernel;
    for (const Itemset& query : QuerySet()) {
      SCOPED_TRACE(std::string(kernel) + " / " + ItemsetToString(query));
      BitVector matches_resident;
      BitVector matches_mapped;
      EXPECT_EQ(resident->CountItemSet(query, &matches_resident),
                mapped->CountItemSet(query, &matches_mapped));
      EXPECT_EQ(matches_resident, matches_mapped);
      EXPECT_EQ(resident->CountItemSetAtLeast(query, 5),
                mapped->CountItemSetAtLeast(query, 5));
      EXPECT_EQ(resident->CountItemSetConstrained(query, constraint),
                mapped->CountItemSetConstrained(query, constraint));
    }
    BitVector and_resident(db.size());
    BitVector and_mapped(db.size());
    and_resident.SetAll();
    and_mapped.SetAll();
    EXPECT_EQ(resident->AndItemSlices(7, &and_resident),
              mapped->AndItemSlices(7, &and_mapped));
    EXPECT_EQ(and_resident, and_mapped);
  }
  std::remove(path.c_str());
}

// All four filter-and-refine schemes must mine the identical pattern set
// from the mmap backend (the miner's decisions must not depend on the
// backend's I/O accounting).
TEST(SliceSourceTest, MmapMineParityAllSchemes) {
  TransactionDatabase db = testing::RandomDb(22, 500, 20, 6.0);
  auto built = BbsIndex::Create(SmallConfig());
  ASSERT_TRUE(built.ok());
  built->InsertAll(db);
  std::string path = TempPath("bbsmine_slicesrc_mine.bbs");
  ASSERT_TRUE(built->Save(path).ok());
  auto resident = BbsIndex::Load(path);
  auto mapped = BbsIndex::OpenMmap(path);
  ASSERT_TRUE(resident.ok());
  ASSERT_TRUE(mapped.ok());

  for (Algorithm algorithm : {Algorithm::kSFS, Algorithm::kSFP,
                              Algorithm::kDFS, Algorithm::kDFP}) {
    SCOPED_TRACE(AlgorithmName(algorithm));
    MineConfig config;
    config.algorithm = algorithm;
    config.min_support = 0.02;
    MiningResult from_resident = MineFrequentPatterns(db, *resident, config);
    MiningResult from_mapped = MineFrequentPatterns(db, *mapped, config);
    from_resident.SortPatterns();
    from_mapped.SortPatterns();
    ASSERT_EQ(from_resident.patterns.size(), from_mapped.patterns.size());
    for (size_t i = 0; i < from_resident.patterns.size(); ++i) {
      EXPECT_EQ(from_resident.patterns[i].items,
                from_mapped.patterns[i].items);
      EXPECT_EQ(from_resident.patterns[i].support,
                from_mapped.patterns[i].support);
    }
  }
  std::remove(path.c_str());
}

// The mmap backend opts out of the paper's synthetic I/O charging (its
// slices are really faulted in by the kernel) while the backend-agnostic
// slice_words_touched instrumentation stays identical.
TEST(SliceSourceTest, MmapSkipsSyntheticIoCharges) {
  TransactionDatabase db = testing::RandomDb(23, 200, 16, 4.0);
  auto built = BbsIndex::Create(SmallConfig());
  ASSERT_TRUE(built.ok());
  built->InsertAll(db);
  std::string path = TempPath("bbsmine_slicesrc_io.bbs");
  ASSERT_TRUE(built->Save(path).ok());
  auto resident = BbsIndex::Load(path);
  auto mapped = BbsIndex::OpenMmap(path);
  ASSERT_TRUE(resident.ok());
  ASSERT_TRUE(mapped.ok());

  IoStats resident_io;
  IoStats mapped_io;
  const Itemset query = {1, 5};
  EXPECT_EQ(resident->CountItemSet(query, nullptr, &resident_io),
            mapped->CountItemSet(query, nullptr, &mapped_io));
  EXPECT_GT(resident_io.sequential_reads, 0u);
  EXPECT_EQ(mapped_io.sequential_reads, 0u);
  EXPECT_GT(mapped_io.slice_words_touched, 0u);
  EXPECT_EQ(resident_io.slice_words_touched, mapped_io.slice_words_touched);

  IoStats scan_io;
  mapped->ChargeFullScan(&scan_io);
  EXPECT_EQ(scan_io.sequential_reads, 0u);
  std::remove(path.c_str());
}

// Resident bytes: heap-backed slices dominate; mmap pins none of them.
TEST(SliceSourceTest, ApproxResidentBytes) {
  TransactionDatabase db = testing::RandomDb(24, 300, 16, 4.0);
  auto built = BbsIndex::Create(SmallConfig());
  ASSERT_TRUE(built.ok());
  built->InsertAll(db);
  std::string path = TempPath("bbsmine_slicesrc_bytes.bbs");
  ASSERT_TRUE(built->Save(path).ok());
  auto resident = BbsIndex::Load(path);
  auto mapped = BbsIndex::OpenMmap(path);
  ASSERT_TRUE(resident.ok());
  ASSERT_TRUE(mapped.ok());
  EXPECT_GT(resident->ApproxResidentBytes(),
            static_cast<size_t>(SmallConfig().num_bits) * db.size() / 8 / 2);
  EXPECT_EQ(mapped->ApproxResidentBytes(), 0u);
  std::remove(path.c_str());
}

// Materialize copies an mmap'd index to heap slices, bit-identical; the
// copy constructor of an mmap-backed index shares the mapping instead.
TEST(SliceSourceTest, MaterializeAndCopySemantics) {
  TransactionDatabase db = testing::RandomDb(25, 250, 16, 4.0);
  auto built = BbsIndex::Create(SmallConfig());
  ASSERT_TRUE(built.ok());
  built->InsertAll(db);
  std::string path = TempPath("bbsmine_slicesrc_mat.bbs");
  ASSERT_TRUE(built->Save(path).ok());
  auto resident = BbsIndex::Load(path);
  auto mapped = BbsIndex::OpenMmap(path);
  ASSERT_TRUE(resident.ok());
  ASSERT_TRUE(mapped.ok());

  BbsIndex materialized = mapped->Materialize();
  EXPECT_TRUE(materialized.resident());
  EXPECT_TRUE(materialized == *resident);
  for (size_t pos = 0; pos < db.size(); ++pos) {
    ASSERT_EQ(materialized.SignatureBits(pos), resident->SignatureBits(pos));
  }

  BbsIndex shared_copy(*mapped);  // clone shares the mapping
  EXPECT_FALSE(shared_copy.resident());
  EXPECT_EQ(shared_copy.ApproxResidentBytes(), 0u);
  EXPECT_EQ(shared_copy.CountItemSet({3, 7}),
            resident->CountItemSet({3, 7}));
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Fold compaction semantics (satellite a).
// ---------------------------------------------------------------------------

// Folded counts stay upper bounds on exact supports (the MemBBS guarantee).
TEST(FoldTest, FoldedCountsAreUpperBounds) {
  TransactionDatabase db = testing::RandomDb(26, 400, 24, 5.0);
  auto built = BbsIndex::Create(SmallConfig(256));
  ASSERT_TRUE(built.ok());
  built->InsertAll(db);
  BbsIndex folded = built->Fold(64);
  EXPECT_TRUE(folded.is_folded());
  EXPECT_EQ(folded.num_bits(), 64u);
  for (const Itemset& query : QuerySet()) {
    SCOPED_TRACE(ItemsetToString(query));
    const uint64_t exact = ExactCount(db, query);
    EXPECT_GE(folded.CountItemSet(query), exact);
    // Folding can only coarsen: the folded estimate dominates the
    // full-width one, which dominates the truth.
    EXPECT_GE(folded.CountItemSet(query), built->CountItemSet(query));
  }
}

// Folding commutes with persistence: fold-then-save-then-load produces the
// same estimates as folding the loaded index, and is_folded round-trips.
TEST(FoldTest, FoldCommutesWithSaveLoad) {
  TransactionDatabase db = testing::RandomDb(27, 300, 20, 4.0);
  auto built = BbsIndex::Create(SmallConfig(256));
  ASSERT_TRUE(built.ok());
  built->InsertAll(db);

  std::string full_path = TempPath("bbsmine_fold_full.bbs");
  std::string folded_path = TempPath("bbsmine_fold_folded.bbs");
  ASSERT_TRUE(built->Save(full_path).ok());
  BbsIndex folded_first = built->Fold(64);
  ASSERT_TRUE(folded_first.Save(folded_path).ok());

  auto loaded_folded = BbsIndex::Load(folded_path);     // fold, then save
  auto loaded_full = BbsIndex::Load(full_path);         // save, then fold
  ASSERT_TRUE(loaded_folded.ok());
  ASSERT_TRUE(loaded_full.ok());
  EXPECT_TRUE(loaded_folded->is_folded());
  EXPECT_EQ(loaded_folded->num_bits(), 64u);
  BbsIndex folded_after_load = loaded_full->Fold(64);

  EXPECT_TRUE(*loaded_folded == folded_first);
  EXPECT_TRUE(folded_after_load == folded_first);
  for (const Itemset& query : QuerySet()) {
    EXPECT_EQ(loaded_folded->CountItemSet(query),
              folded_after_load.CountItemSet(query));
  }
  // The mmap backend serves the folded file identically too.
  auto mapped_folded = BbsIndex::OpenMmap(folded_path);
  ASSERT_TRUE(mapped_folded.ok());
  EXPECT_TRUE(mapped_folded->is_folded());
  for (const Itemset& query : QuerySet()) {
    EXPECT_EQ(mapped_folded->CountItemSet(query),
              folded_first.CountItemSet(query));
  }
  std::remove(full_path.c_str());
  std::remove(folded_path.c_str());
}

// Signature popcounts are recomputed consistently by fold and verified by
// load: a folded slice set ORs colliding positions, so each transaction's
// signature popcount equals the column sum over the folded slices.
TEST(FoldTest, SignatureBitsConsistentAfterFoldAndLoad) {
  TransactionDatabase db = testing::RandomDb(28, 200, 16, 4.0);
  auto built = BbsIndex::Create(SmallConfig(256));
  ASSERT_TRUE(built.ok());
  built->InsertAll(db);
  BbsIndex folded = built->Fold(64);
  for (size_t pos = 0; pos < db.size(); ++pos) {
    uint32_t column_sum = 0;
    for (uint32_t s = 0; s < folded.num_bits(); ++s) {
      column_sum += folded.Slice(s).Get(pos) ? 1 : 0;
    }
    ASSERT_EQ(folded.SignatureBits(pos), column_sum) << "txn " << pos;
  }
}

// ---------------------------------------------------------------------------
// v2 aligned-format corruption handling (mmap-specific cases; the flip
// matrix for every named region lives in robustness_test.cc).
// ---------------------------------------------------------------------------

class V2CorruptionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    TransactionDatabase db = testing::RandomDb(29, 100, 16, 4.0);
    auto built = BbsIndex::Create(SmallConfig(64));
    ASSERT_TRUE(built.ok());
    built->InsertAll(db);
    path_ = TempPath("bbsmine_v2_corrupt.bbs");
    ASSERT_TRUE(built->Save(path_).ok());
    original_ = ReadFile(path_);
  }

  void TearDown() override { std::remove(path_.c_str()); }

  std::string path_;
  std::string original_;
};

TEST_F(V2CorruptionTest, TruncationIsCleanCorruption) {
  // Truncation anywhere — inside the magic, the header, the metadata
  // arrays, the padding, or the slice data — must be a clean Corruption
  // from both loaders (the mmap path must bound-check before mapping
  // access so a short file cannot SIGBUS).
  uint64_t data_offset = 0;
  std::memcpy(&data_offset, original_.data() + 68, 8);
  for (size_t len : std::vector<size_t>{0, 4, 8, 12, 16, 40, 87, 88,
                                        static_cast<size_t>(data_offset) - 1,
                                        static_cast<size_t>(data_offset),
                                        original_.size() - 64,
                                        original_.size() - 1}) {
    SCOPED_TRACE(len);
    WriteFile(path_, original_.substr(0, len));
    Status loaded = BbsIndex::Load(path_).status();
    EXPECT_EQ(loaded.code(), StatusCode::kCorruption) << loaded.ToString();
    Status mapped = BbsIndex::OpenMmap(path_).status();
    EXPECT_EQ(mapped.code(), StatusCode::kCorruption) << mapped.ToString();
  }
}

TEST_F(V2CorruptionTest, MisalignedSliceOffsetRejected) {
  // Hand-craft a header whose slice_data_offset is valid-range but not
  // 64-byte aligned, with the header CRC recomputed so the parser reaches
  // the alignment check itself.
  std::string mutated = original_;
  uint64_t data_offset = 0;
  std::memcpy(&data_offset, mutated.data() + 68, 8);
  uint64_t crooked = data_offset + 8;
  std::memcpy(mutated.data() + 68, &crooked, 8);
  uint32_t crc = Crc32(std::string_view(mutated.data() + 16,
                                        static_cast<size_t>(crooked) - 16));
  std::memcpy(mutated.data() + 12, &crc, 4);
  WriteFile(path_, mutated);
  Status loaded = BbsIndex::Load(path_).status();
  EXPECT_EQ(loaded.code(), StatusCode::kCorruption) << loaded.ToString();
  Status mapped = BbsIndex::OpenMmap(path_).status();
  EXPECT_EQ(mapped.code(), StatusCode::kCorruption) << mapped.ToString();
}

TEST_F(V2CorruptionTest, TrailingBytesRejected) {
  WriteFile(path_, original_ + std::string(64, '\0'));
  EXPECT_EQ(BbsIndex::Load(path_).status().code(), StatusCode::kCorruption);
  EXPECT_EQ(BbsIndex::OpenMmap(path_).status().code(),
            StatusCode::kCorruption);
}

TEST_F(V2CorruptionTest, SliceDataFlipCaughtByResidentOnly) {
  // The documented trade-off: the resident loader verifies the slice-data
  // checksum; the mmap open (lazy serving) does not.
  std::string mutated = original_;
  mutated[mutated.size() - 1] =
      static_cast<char>(mutated[mutated.size() - 1] ^ 0x40);
  WriteFile(path_, mutated);
  EXPECT_EQ(BbsIndex::Load(path_).status().code(), StatusCode::kCorruption);
  EXPECT_TRUE(BbsIndex::OpenMmap(path_).ok());
}

// ---------------------------------------------------------------------------
// SegmentedBbs: mmap loading and segment-level fold compaction.
// ---------------------------------------------------------------------------

TEST(SegmentedSliceSourceTest, MmapLoadParity) {
  TransactionDatabase db = testing::RandomDb(30, 300, 20, 5.0);
  auto seg = SegmentedBbs::Create(SmallConfig(), 64);
  ASSERT_TRUE(seg.ok());
  ASSERT_TRUE(seg->InsertAll(db).ok());
  std::string prefix = TempPath("bbsmine_seg_mmap");
  ASSERT_TRUE(seg->Save(prefix).ok());

  auto resident = SegmentedBbs::Load(prefix);
  auto mapped = SegmentedBbs::Load(prefix, nullptr, IndexBackend::kMmap);
  ASSERT_TRUE(resident.ok());
  ASSERT_TRUE(mapped.ok());
  EXPECT_EQ(mapped->num_segments(), resident->num_segments());
  for (size_t idx = 0; idx < mapped->num_segments(); ++idx) {
    EXPECT_FALSE(mapped->segment(idx).resident());
  }
  for (const Itemset& query : QuerySet()) {
    EXPECT_EQ(mapped->CountItemSet(query), resident->CountItemSet(query));
  }

  // Inserting into an mmap-loaded index materializes only the tail.
  ASSERT_TRUE(mapped->Insert({1, 2, 3}).ok());
  EXPECT_TRUE(mapped->segment(mapped->num_segments() - 1).resident());
  EXPECT_FALSE(mapped->segment(0).resident());

  for (size_t i = 0; i < seg->num_segments(); ++i) {
    std::remove((prefix + ".seg" + std::to_string(i)).c_str());
  }
  std::remove((prefix + ".manifest").c_str());
}

TEST(SegmentedSliceSourceTest, FoldSegmentValidatesAndShrinks) {
  TransactionDatabase db = testing::RandomDb(31, 200, 20, 5.0);
  auto seg = SegmentedBbs::Create(SmallConfig(), 64);
  ASSERT_TRUE(seg.ok());
  ASSERT_TRUE(seg->InsertAll(db).ok());
  ASSERT_GE(seg->num_segments(), 2u);

  EXPECT_EQ(seg->FoldSegment(seg->num_segments(), 32).code(),
            StatusCode::kOutOfRange);
  EXPECT_EQ(seg->FoldSegment(seg->num_segments() - 1, 32).code(),
            StatusCode::kInvalidArgument);  // open tail
  EXPECT_EQ(seg->FoldSegment(0, 0).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(seg->FoldSegment(0, 1000).code(), StatusCode::kInvalidArgument);

  const uint64_t bytes_before = seg->segment(0).SerializedBytes();
  ASSERT_TRUE(seg->FoldSegment(0, 32).ok());
  EXPECT_TRUE(seg->segment(0).is_folded());
  EXPECT_LT(seg->segment(0).SerializedBytes(), bytes_before / 2);
  EXPECT_EQ(seg->FoldSegment(0, 64).code(), StatusCode::kInvalidArgument);

  // Counts across the mixed-width segment list stay upper bounds.
  for (const Itemset& query : QuerySet()) {
    EXPECT_GE(seg->CountItemSet(query), ExactCount(db, query));
  }
}

// ---------------------------------------------------------------------------
// SnapshotManager cold-segment compaction.
// ---------------------------------------------------------------------------

TEST(SnapshotCompactionTest, ColdSealedSegmentsFold) {
  TransactionDatabase db = testing::RandomDb(32, 200, 16, 4.0);
  auto manager = service::SnapshotManager::Create(SmallConfig(256), 32);
  ASSERT_TRUE(manager.ok());
  ASSERT_TRUE(manager->InsertAll(db).ok());
  ASSERT_GT(manager->seals(), 0u);

  service::CompactionPolicy disabled;
  EXPECT_EQ(manager->CompactColdSegments(disabled), 0u);

  service::CompactionPolicy policy;
  policy.cold_epochs = 1;
  policy.fold_bits = 64;
  // Everything sealed so far became cold at least one publication ago
  // (InsertAll published after the last seal).
  const uint64_t epoch_before = manager->Acquire().epoch();
  const size_t compacted = manager->CompactColdSegments(policy);
  EXPECT_EQ(compacted, manager->seals());
  EXPECT_EQ(manager->compactions(), compacted);
  // Idempotent: already-folded segments are skipped.
  EXPECT_EQ(manager->CompactColdSegments(policy), 0u);

  service::Snapshot snap = manager->Acquire();
  EXPECT_GT(snap.epoch(), epoch_before);  // compaction republished
  size_t folded_segments = 0;
  for (size_t idx = 0; idx < snap.num_segments(); ++idx) {
    if (snap.segment(idx).is_folded()) {
      ++folded_segments;
      EXPECT_EQ(snap.segment(idx).num_bits(), 64u);
    }
  }
  EXPECT_EQ(folded_segments, compacted);

  // Counts from the compacted snapshot remain upper bounds.
  for (const Itemset& query : QuerySet()) {
    EXPECT_GE(snap.CountItemSet(query), ExactCount(db, query));
  }
}

TEST(SnapshotCompactionTest, FreshSealsAreNotCold) {
  auto manager = service::SnapshotManager::Create(SmallConfig(256), 4);
  ASSERT_TRUE(manager.ok());
  // Fill exactly one segment; the seal happens lazily on the next insert,
  // so push one more to seal segment 0 at the current epoch.
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(manager->Insert({static_cast<ItemId>(i)}).ok());
  }
  ASSERT_EQ(manager->seals(), 1u);
  service::CompactionPolicy policy;
  policy.cold_epochs = 1'000'000;  // nothing is that cold
  policy.fold_bits = 64;
  EXPECT_EQ(manager->CompactColdSegments(policy), 0u);
}

// Snapshot::ApproxResidentBytes distinguishes heap-backed from mmap'd
// segments end to end through the manager.
TEST(SnapshotCompactionTest, ResidentBytesThroughSnapshots) {
  TransactionDatabase db = testing::RandomDb(33, 150, 16, 4.0);
  auto seg = SegmentedBbs::Create(SmallConfig(), 32);
  ASSERT_TRUE(seg.ok());
  ASSERT_TRUE(seg->InsertAll(db).ok());
  std::string prefix = TempPath("bbsmine_snap_bytes");
  ASSERT_TRUE(seg->Save(prefix).ok());

  auto mapped = SegmentedBbs::Load(prefix, nullptr, IndexBackend::kMmap);
  ASSERT_TRUE(mapped.ok());
  auto from_mmap = service::SnapshotManager::FromIndex(*mapped);
  ASSERT_TRUE(from_mmap.ok());
  auto from_resident = service::SnapshotManager::FromIndex(*seg);
  ASSERT_TRUE(from_resident.ok());

  // The mmap-backed manager pins only its materialized tail; the resident
  // manager pins every sealed segment too.
  EXPECT_LT(from_mmap->Acquire().ApproxResidentBytes(),
            from_resident->Acquire().ApproxResidentBytes());

  // Parity of answers through snapshots.
  for (const Itemset& query : QuerySet()) {
    EXPECT_EQ(from_mmap->Acquire().CountItemSet(query),
              from_resident->Acquire().CountItemSet(query));
  }

  for (size_t i = 0; i < seg->num_segments(); ++i) {
    std::remove((prefix + ".seg" + std::to_string(i)).c_str());
  }
  std::remove((prefix + ".manifest").c_str());
}

}  // namespace
}  // namespace bbsmine
