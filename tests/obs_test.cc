// Unit tests for the observability primitives: the JSON document model
// (exact number round-trips), the metrics registry (deterministic shard
// merge), the depth histogram, and the Chrome trace-event tracer.

#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace bbsmine::obs {
namespace {

std::string TempPath(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

// ---------------------------------------------------------------- JSON --

TEST(JsonTest, SerializeParseRoundTripScalars) {
  JsonValue doc = JsonValue::Object();
  doc.Set("null", JsonValue::Null());
  doc.Set("yes", JsonValue::Bool(true));
  doc.Set("no", JsonValue::Bool(false));
  doc.Set("int", JsonValue::Int(-42));
  doc.Set("big", JsonValue::Uint(18446744073709551615ull));  // > INT64_MAX
  doc.Set("pi", JsonValue::Double(3.141592653589793));
  doc.Set("whole", JsonValue::Double(2.0));  // must stay a double
  doc.Set("s", JsonValue::String("a \"quoted\" line\nwith\tcontrol"));

  auto parsed = JsonValue::Parse(doc.Serialize());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->at("null").kind(), JsonValue::Kind::kNull);
  EXPECT_TRUE(parsed->at("yes").AsBool());
  EXPECT_FALSE(parsed->at("no").AsBool());
  EXPECT_EQ(parsed->at("int").AsInt(), -42);
  EXPECT_EQ(parsed->at("big").kind(), JsonValue::Kind::kUint);
  EXPECT_EQ(parsed->at("big").AsUint(), 18446744073709551615ull);
  EXPECT_EQ(parsed->at("pi").kind(), JsonValue::Kind::kDouble);
  EXPECT_EQ(parsed->at("pi").AsDouble(), 3.141592653589793);
  EXPECT_EQ(parsed->at("whole").kind(), JsonValue::Kind::kDouble)
      << "a whole-valued double must not collapse to an integer";
  EXPECT_EQ(parsed->at("whole").AsDouble(), 2.0);
  EXPECT_EQ(parsed->at("s").AsString(), "a \"quoted\" line\nwith\tcontrol");
}

TEST(JsonTest, DoublesRoundTripBitExactly) {
  // Values chosen to stress the %.17g path (non-terminating binary
  // fractions, subnormal-adjacent magnitudes).
  for (double v : {0.1, 1.0 / 3.0, 6.02214076e23, 5e-324, -0.0042}) {
    JsonValue doc = JsonValue::Array();
    doc.Append(JsonValue::Double(v));
    auto parsed = JsonValue::Parse(doc.Serialize());
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(parsed->at(size_t{0}).AsDouble(), v);
  }
}

TEST(JsonTest, ObjectPreservesInsertionOrder) {
  JsonValue doc = JsonValue::Object();
  doc.Set("zebra", JsonValue::Int(1));
  doc.Set("apple", JsonValue::Int(2));
  doc.Set("mango", JsonValue::Int(3));
  auto parsed = JsonValue::Parse(doc.Serialize());
  ASSERT_TRUE(parsed.ok());
  ASSERT_EQ(parsed->keys().size(), 3u);
  EXPECT_EQ(parsed->keys()[0], "zebra");
  EXPECT_EQ(parsed->keys()[1], "apple");
  EXPECT_EQ(parsed->keys()[2], "mango");
}

TEST(JsonTest, MutableAtFindsAndMisses) {
  JsonValue doc = JsonValue::Object();
  doc.Set("inner", JsonValue::Object());
  ASSERT_NE(doc.MutableAt("inner"), nullptr);
  doc.MutableAt("inner")->Set("x", JsonValue::Int(7));
  EXPECT_EQ(doc.at("inner").at("x").AsInt(), 7);
  EXPECT_EQ(doc.MutableAt("absent"), nullptr);
}

TEST(JsonTest, ParseRejectsMalformedDocuments) {
  for (const char* bad : {"", "{", "[1,]", "{\"a\":}", "{\"a\" 1}", "nul",
                          "{\"a\":1} trailing", "\"unterminated"}) {
    EXPECT_FALSE(JsonValue::Parse(bad).ok()) << "should reject: " << bad;
  }
}

TEST(JsonTest, FileRoundTrip) {
  std::string path = TempPath("bbsmine_obs_json_roundtrip.json");
  JsonValue doc = JsonValue::Object();
  doc.Set("k", JsonValue::Uint(123456789012345ull));
  ASSERT_TRUE(WriteJsonFile(doc, path).ok());
  auto loaded = ReadJsonFile(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->at("k").AsUint(), 123456789012345ull);
  std::remove(path.c_str());
}

// ----------------------------------------------------- DepthHistogram --

TEST(DepthHistogramTest, BucketsOverflowAndTotal) {
  DepthHistogram h;
  h.Add(0);  // ignored
  h.Add(1, 5);
  h.Add(DepthHistogram::kMaxTrackedDepth, 2);
  h.Add(DepthHistogram::kMaxTrackedDepth + 10, 3);  // overflow
  EXPECT_EQ(h.at(1), 5u);
  EXPECT_EQ(h.at(DepthHistogram::kMaxTrackedDepth), 2u);
  EXPECT_EQ(h.overflow(), 3u);
  EXPECT_EQ(h.total(), 10u);
  EXPECT_EQ(h.MaxNonZeroDepth(), DepthHistogram::kMaxTrackedDepth);

  DepthHistogram other;
  other.Add(2, 4);
  h += other;
  EXPECT_EQ(h.at(2), 4u);
  EXPECT_EQ(h.total(), 14u);
  EXPECT_FALSE(h == other);
}

// ---------------------------------------------------- MetricsRegistry --

TEST(MetricsRegistryTest, ShardMergeIsDeterministicAndComplete) {
  MetricsRegistry registry;
  size_t ops = registry.AddCounter("ops");
  size_t depth_gauge = registry.AddGauge("queue_depth");
  size_t hist = registry.AddHistogram("by_depth");

  MetricsShard* a = registry.CreateShard();
  MetricsShard* b = registry.CreateShard();
  a->Inc(ops, 3);
  b->Inc(ops, 4);
  a->GaugeMax(depth_gauge, 9);
  b->GaugeMax(depth_gauge, 5);
  a->Observe(hist, 2, 10);
  b->Observe(hist, 2, 1);
  b->Observe(hist, 40, 2);  // overflow bucket

  registry.MergeShards();
  EXPECT_EQ(registry.counter(ops), 7u);
  EXPECT_EQ(registry.counter(depth_gauge), 9u) << "gauge merge keeps the max";
  EXPECT_EQ(registry.histogram(hist).at(2), 11u);
  EXPECT_EQ(registry.histogram(hist).overflow(), 2u);

  // Merge resets the shards: merging again must not double-count.
  registry.MergeShards();
  EXPECT_EQ(registry.counter(ops), 7u);

  std::vector<MetricSample> samples = registry.Snapshot();
  ASSERT_EQ(samples.size(), 3u);
  EXPECT_EQ(samples[0].name, "ops");
  EXPECT_EQ(samples[0].value, 7u);
  EXPECT_EQ(samples[1].kind, MetricKind::kGauge);
  EXPECT_EQ(samples[2].kind, MetricKind::kHistogram);
  EXPECT_EQ(samples[2].value, 13u) << "histogram sample value is its total";
}

// ------------------------------------------------------------- Tracer --

TEST(Log2BucketTest, BoundaryMapping) {
  // The documented contract: bucket 1 holds [0, 2) — zero shares the
  // lowest bucket — and bucket d >= 2 holds [2^(d-1), 2^d).
  EXPECT_EQ(Log2Bucket(0), 1u);
  EXPECT_EQ(Log2Bucket(1), 1u);
  EXPECT_EQ(Log2Bucket(2), 2u);
  EXPECT_EQ(Log2Bucket(3), 2u);
  EXPECT_EQ(Log2Bucket(4), 3u);
  EXPECT_EQ(Log2Bucket(7), 3u);
  EXPECT_EQ(Log2Bucket(8), 4u);
  // Bounds are the same contract, inverted.
  EXPECT_EQ(Log2BucketLowerBound(1), 0u);
  EXPECT_EQ(Log2BucketUpperBound(1), 2u);
  for (size_t d = 2; d <= DepthHistogram::kMaxTrackedDepth; ++d) {
    EXPECT_EQ(Log2Bucket(Log2BucketLowerBound(d)), d);
    EXPECT_EQ(Log2Bucket(Log2BucketUpperBound(d) - 1), d);
    EXPECT_EQ(Log2Bucket(Log2BucketUpperBound(d)), d + 1);
  }
}

// Bucket layout used by the estimator tests: MetricSample order, [0] =
// overflow, [d] = log2 bucket d.
std::vector<uint64_t> EmptyBuckets() {
  return std::vector<uint64_t>(DepthHistogram::kMaxTrackedDepth + 1, 0);
}

TEST(PercentileFromLog2BucketsTest, AgreesWithOracleAtBucketBoundaries) {
  // One observation per bucket, each idealized at its bucket's lower
  // bound: the estimator must reproduce the sorted-sample oracle exactly
  // (numpy-style rank q*(N-1) interpolation over the lower bounds).
  std::vector<uint64_t> buckets = EmptyBuckets();
  std::vector<double> oracle;
  for (size_t d = 1; d <= 8; ++d) {
    buckets[d] = 1;
    oracle.push_back(static_cast<double>(Log2BucketLowerBound(d)));
  }
  for (size_t k = 0; k < oracle.size(); ++k) {
    double q = static_cast<double>(k) / (oracle.size() - 1);
    EXPECT_DOUBLE_EQ(PercentileFromLog2Buckets(buckets, q), oracle[k])
        << "rank " << k;
  }
  // Between integer ranks the estimate is the linear interpolation of the
  // neighboring oracle values.
  double q = 1.5 / (oracle.size() - 1);
  EXPECT_DOUBLE_EQ(PercentileFromLog2Buckets(buckets, q),
                   (oracle[1] + oracle[2]) / 2);
}

TEST(PercentileFromLog2BucketsTest, ErrorBoundedByBucketWidth) {
  // 1000 observations of the value 700 all land in bucket 10 = [512,
  // 1024). The estimator cannot know where inside the bucket they sat,
  // but every quantile it reports must stay inside that bucket.
  std::vector<uint64_t> buckets = EmptyBuckets();
  buckets[Log2Bucket(700)] = 1000;
  for (double q : {0.0, 0.5, 0.95, 0.99, 1.0}) {
    double estimate = PercentileFromLog2Buckets(buckets, q);
    EXPECT_GE(estimate, 512.0) << "q=" << q;
    EXPECT_LT(estimate, 1024.0) << "q=" << q;
  }
  // And the estimate is within a factor of the bucket width of the truth.
  EXPECT_NEAR(PercentileFromLog2Buckets(buckets, 0.5), 700.0, 512.0);
}

TEST(PercentileFromLog2BucketsTest, OverflowBucketIsDegenerate) {
  std::vector<uint64_t> buckets = EmptyBuckets();
  buckets[0] = 10;  // all observations beyond 2^32
  double expected =
      static_cast<double>(uint64_t{1} << DepthHistogram::kMaxTrackedDepth);
  EXPECT_DOUBLE_EQ(PercentileFromLog2Buckets(buckets, 0.5), expected);
  EXPECT_DOUBLE_EQ(PercentileFromLog2Buckets(buckets, 1.0), expected);
  // Mixed: the median sits in the tracked range, the tail in overflow.
  buckets[5] = 30;
  EXPECT_LT(PercentileFromLog2Buckets(buckets, 0.5), 32.0);
  EXPECT_DOUBLE_EQ(PercentileFromLog2Buckets(buckets, 1.0), expected);
}

TEST(PercentileFromLog2BucketsTest, EmptyAndClampedInputs) {
  EXPECT_DOUBLE_EQ(PercentileFromLog2Buckets(EmptyBuckets(), 0.5), 0.0);
  std::vector<uint64_t> buckets = EmptyBuckets();
  buckets[3] = 4;
  // q outside [0, 1] clamps instead of reading out of range.
  EXPECT_DOUBLE_EQ(PercentileFromLog2Buckets(buckets, -1.0),
                   PercentileFromLog2Buckets(buckets, 0.0));
  EXPECT_DOUBLE_EQ(PercentileFromLog2Buckets(buckets, 2.0),
                   PercentileFromLog2Buckets(buckets, 1.0));
}

TEST(LatencyReservoirTest, ExactUnderCapacity) {
  LatencyReservoir reservoir(100, /*seed=*/7);
  for (uint64_t v = 1; v <= 11; ++v) reservoir.Add(v * 10);
  EXPECT_EQ(reservoir.count(), 11u);
  EXPECT_EQ(reservoir.max(), 110u);
  // With all samples retained the quantiles are exact: rank q*(n-1).
  EXPECT_DOUBLE_EQ(reservoir.Quantile(0.0), 10.0);
  EXPECT_DOUBLE_EQ(reservoir.Quantile(0.5), 60.0);
  EXPECT_DOUBLE_EQ(reservoir.Quantile(1.0), 110.0);
  EXPECT_DOUBLE_EQ(reservoir.Quantile(0.25), 35.0);  // interpolated
}

TEST(LatencyReservoirTest, SamplesUniformlyOverCapacity) {
  // 10k observations uniform in [0, 1000) through a 512-slot reservoir:
  // the sampled median must land near the true median, and max() stays
  // exact because it is tracked outside the sample.
  LatencyReservoir reservoir(512, /*seed=*/3);
  Rng rng(99);
  for (int i = 0; i < 10'000; ++i) reservoir.Add(rng.Uniform(1000));
  reservoir.Add(5000);  // a single outlier the sample may well drop
  EXPECT_EQ(reservoir.count(), 10'001u);
  EXPECT_EQ(reservoir.max(), 5000u);
  EXPECT_NEAR(reservoir.Quantile(0.5), 500.0, 100.0);
}

TEST(LatencyReservoirTest, DeterministicForSeedAndStream) {
  LatencyReservoir a(64, 11), b(64, 11), c(64, 12);
  Rng ra(5), rb(5), rc(5);
  for (int i = 0; i < 5'000; ++i) {
    a.Add(ra.Uniform(100'000));
    b.Add(rb.Uniform(100'000));
    c.Add(rc.Uniform(100'000));
  }
  EXPECT_DOUBLE_EQ(a.Quantile(0.99), b.Quantile(0.99));
  EXPECT_EQ(a.max(), b.max());
  // A different replacement seed keeps a different subset.
  EXPECT_NE(a.Quantile(0.37), c.Quantile(0.37));
}

TEST(TraceTest, EmitsValidChromeTraceJson) {
  Tracer tracer(kTraceDefault);
  {
    TraceSpan span(&tracer, kTracePhase, "mine");
    span.AddArg("algorithm", "DFP");
    TraceSpan inner(&tracer, kTraceFilter, "filter.subtree");
    inner.AddArg("root", uint64_t{3});
  }
  EXPECT_EQ(tracer.event_count(), 2u);

  auto doc = JsonValue::Parse(tracer.ToJsonString());
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  const JsonValue& events = doc->at("traceEvents");
  ASSERT_EQ(events.size(), 2u);
  for (size_t i = 0; i < events.size(); ++i) {
    const JsonValue& e = events.at(i);
    EXPECT_EQ(e.at("ph").AsString(), "X");
    EXPECT_TRUE(e.at("ts").is_number());
    EXPECT_TRUE(e.at("dur").is_number());
    EXPECT_TRUE(e.Has("pid"));
    EXPECT_TRUE(e.Has("tid"));
  }
  // Spans close inner-first, so the inner span is recorded first.
  EXPECT_EQ(events.at(size_t{0}).at("name").AsString(), "filter.subtree");
  EXPECT_EQ(events.at(size_t{0}).at("args").at("root").AsUint(), 3u);
  EXPECT_EQ(events.at(size_t{1}).at("name").AsString(), "mine");
  EXPECT_EQ(events.at(size_t{1}).at("args").at("algorithm").AsString(),
            "DFP");
}

TEST(TraceTest, DisabledCategoryAndNullTracerAreInert) {
  Tracer tracer(kTraceDefault);  // kernel category off by default
  {
    TraceSpan kernel_span(&tracer, kTraceKernel, "bbs.count");
    kernel_span.AddArg("items", uint64_t{2});
    EXPECT_FALSE(kernel_span.armed());
    TraceSpan null_span(nullptr, kTracePhase, "mine");
    EXPECT_FALSE(null_span.armed());
  }
  EXPECT_EQ(tracer.event_count(), 0u);

  Tracer all(kTraceAll);
  { TraceSpan kernel_span(&all, kTraceKernel, "bbs.count"); }
  EXPECT_EQ(all.event_count(), 1u);
}

TEST(TraceTest, WriteJsonProducesLoadableFile) {
  std::string path = TempPath("bbsmine_obs_trace.json");
  Tracer tracer;
  { TraceSpan span(&tracer, kTracePhase, "mine"); }
  ASSERT_TRUE(tracer.WriteJson(path).ok());
  auto doc = ReadJsonFile(path);
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  EXPECT_EQ(doc->at("traceEvents").size(), 1u);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace bbsmine::obs
