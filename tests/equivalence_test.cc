// Integration test: on realistic Quest-generated workloads, all six
// algorithms (SFS, SFP, DFS, DFP, Apriori, FP-growth) must find exactly the
// same frequent itemsets.

#include <gtest/gtest.h>

#include "baseline/apriori.h"
#include "baseline/fp_tree.h"
#include "core/miner.h"
#include "datagen/quest_gen.h"
#include "testing/reference.h"

namespace bbsmine {
namespace {

struct Workload {
  const char* name;
  QuestConfig quest;
  double min_support;
  uint32_t num_bits;
};

Workload MakeWorkload(const char* name, uint32_t txns, uint32_t items,
                      double t, double i, double min_support,
                      uint32_t num_bits) {
  Workload w;
  w.name = name;
  w.quest.num_transactions = txns;
  w.quest.num_items = items;
  w.quest.avg_transaction_size = t;
  w.quest.avg_pattern_size = i;
  w.quest.num_patterns = 100;
  w.min_support = min_support;
  w.num_bits = num_bits;
  return w;
}

class AllAlgorithmsEquivalenceTest : public ::testing::TestWithParam<int> {};

TEST_P(AllAlgorithmsEquivalenceTest, SameFrequentItemsets) {
  static const Workload kWorkloads[] = {
      MakeWorkload("small-dense", 1000, 200, 8, 3, 0.02, 256),
      MakeWorkload("narrow-bbs", 1500, 400, 10, 4, 0.015, 96),
      MakeWorkload("sparse", 2000, 1000, 6, 3, 0.01, 512),
  };
  const Workload& w = kWorkloads[GetParam()];

  auto db = GenerateQuest(w.quest);
  ASSERT_TRUE(db.ok());

  BbsConfig bbs_config;
  bbs_config.num_bits = w.num_bits;
  bbs_config.num_hashes = 4;
  auto bbs = BbsIndex::Create(bbs_config);
  ASSERT_TRUE(bbs.ok());
  bbs->InsertAll(*db);

  AprioriConfig apriori_config;
  apriori_config.min_support = w.min_support;
  MiningResult apriori = MineApriori(*db, apriori_config);
  apriori.SortPatterns();
  std::vector<Itemset> reference = testing::ItemsetsOf(apriori.patterns);
  ASSERT_FALSE(reference.empty()) << w.name << ": degenerate workload";

  FpGrowthConfig fp_config;
  fp_config.min_support = w.min_support;
  MiningResult fp = MineFpGrowth(*db, fp_config);
  fp.SortPatterns();
  EXPECT_EQ(testing::ItemsetsOf(fp.patterns), reference)
      << w.name << ": FP-growth disagrees with Apriori";
  for (size_t i = 0; i < fp.patterns.size(); ++i) {
    EXPECT_EQ(fp.patterns[i].support, apriori.patterns[i].support);
  }

  for (Algorithm algorithm : {Algorithm::kSFS, Algorithm::kSFP,
                              Algorithm::kDFS, Algorithm::kDFP}) {
    MineConfig config;
    config.algorithm = algorithm;
    config.min_support = w.min_support;
    MiningResult result = MineFrequentPatterns(*db, *bbs, config);
    result.SortPatterns();
    EXPECT_EQ(testing::ItemsetsOf(result.patterns), reference)
        << w.name << ": " << AlgorithmName(algorithm)
        << " disagrees with Apriori";
  }
}

INSTANTIATE_TEST_SUITE_P(Workloads, AllAlgorithmsEquivalenceTest,
                         ::testing::Range(0, 3));

TEST(DynamicEquivalenceTest, IncrementalInsertMatchesRebuild) {
  // The BBS built incrementally day by day must behave identically to one
  // built from scratch over the final database (the paper's dynamic-
  // database argument, Section 3.4).
  QuestConfig quest;
  quest.num_transactions = 800;
  quest.num_items = 300;
  quest.avg_transaction_size = 8;
  quest.avg_pattern_size = 3;
  quest.num_patterns = 60;
  auto db = GenerateQuest(quest);
  ASSERT_TRUE(db.ok());

  BbsConfig config;
  config.num_bits = 128;
  config.num_hashes = 3;

  auto incremental = BbsIndex::Create(config);
  auto rebuilt = BbsIndex::Create(config);
  ASSERT_TRUE(incremental.ok() && rebuilt.ok());

  // Incremental: insert in three "daily" chunks.
  for (size_t t = 0; t < db->size(); ++t) {
    incremental->Insert(db->At(t).items);
  }
  rebuilt->InsertAll(*db);
  EXPECT_TRUE(*incremental == *rebuilt);

  MineConfig mine;
  mine.algorithm = Algorithm::kDFP;
  mine.min_support = 0.02;
  MiningResult a = MineFrequentPatterns(*db, *incremental, mine);
  MiningResult b = MineFrequentPatterns(*db, *rebuilt, mine);
  a.SortPatterns();
  b.SortPatterns();
  EXPECT_EQ(testing::ItemsetsOf(a.patterns), testing::ItemsetsOf(b.patterns));
}

}  // namespace
}  // namespace bbsmine
