// Tests for the BBS index: the paper's running example (Tables 1-2,
// Example 2), insertion, counting, constraints, folding and persistence.

#include "core/bbs_index.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "storage/transaction_db.h"
#include "testing/reference.h"

namespace bbsmine {
namespace {

std::string TempPath(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

/// The paper's BBS: m = 8, one hash h(x) = x mod 8 over PaperExampleDb().
BbsIndex PaperExampleBbs() {
  BbsConfig config;
  config.num_bits = 8;
  config.num_hashes = 1;
  config.hash_kind = HashKind::kModulo;
  auto index = BbsIndex::Create(config);
  EXPECT_TRUE(index.ok());
  TransactionDatabase db = testing::PaperExampleDb();
  index->InsertAll(db);
  return std::move(index).value();
}

TEST(BbsIndexTest, CreateValidatesConfig) {
  BbsConfig bad;
  bad.num_bits = 0;
  EXPECT_FALSE(BbsIndex::Create(bad).ok());
  bad = BbsConfig{};
  bad.num_hashes = 0;
  EXPECT_FALSE(BbsIndex::Create(bad).ok());
}

TEST(BbsIndexTest, PaperTable1Signatures) {
  BbsIndex bbs = PaperExampleBbs();
  TransactionDatabase db = testing::PaperExampleDb();

  // Table 1 gives each transaction's bit vector; the paper writes bit 0
  // (hash value 0) leftmost, so "11111111" = all bits set, "01110111" =
  // bits {1,2,3,5,6,7}.
  struct Expected {
    size_t txn;
    Itemset bits;
  };
  const Expected expected[] = {
      {0, {0, 1, 2, 3, 4, 5, 6, 7}},  // TID 100: 11111111
      {1, {1, 2, 3, 5, 6, 7}},        // TID 200: 01110111
      {2, {1, 5, 6, 7}},              // TID 300: 01000111
      {3, {0, 1, 2, 7}},              // TID 400: 11100001
      {4, {1, 2, 3, 5, 6, 7}},        // TID 500: 01101111
  };
  for (const Expected& e : expected) {
    BitVector signature = bbs.MakeSignature(db.At(e.txn).items);
    for (uint32_t bit = 0; bit < 8; ++bit) {
      EXPECT_EQ(signature.Get(bit), Contains(e.bits, bit))
          << "txn " << e.txn << " bit " << bit;
    }
  }
}

TEST(BbsIndexTest, PaperTable2Slices) {
  // Table 2: the transposed slices. Slice j holds one bit per transaction.
  BbsIndex bbs = PaperExampleBbs();
  const char* expected[8] = {
      "10010",  // slice 0: txns 100,400
      "11111",  // slice 1
      "11011",  // slice 2
      "11001",  // slice 3
      "10000",  // slice 4
      "11101",  // slice 5
      "11101",  // slice 6
      "11111",  // slice 7
  };
  for (uint32_t s = 0; s < 8; ++s) {
    for (size_t t = 0; t < 5; ++t) {
      EXPECT_EQ(bbs.Slice(s).Get(t), expected[s][t] == '1')
          << "slice " << s << " txn " << t;
    }
    EXPECT_EQ(bbs.SlicePopcount(s), bbs.Slice(s).Count());
  }
}

TEST(BbsIndexTest, PaperExample2Counts) {
  BbsIndex bbs = PaperExampleBbs();
  // "the number of transactions containing item set I = {0,1} ... the
  // resultant bit vector of 10010 which indicates that there are two
  // transactions containing I. Here, the answer obtained is accurate."
  BitVector result;
  EXPECT_EQ(bbs.CountItemSet({0, 1}, &result), 2u);
  EXPECT_TRUE(result.Get(0));
  EXPECT_TRUE(result.Get(3));
  EXPECT_EQ(result.Count(), 2u);

  // "if we were to determine the number of transactions containing
  // I = {1,3}, we will obtain a value of 3 ... larger than the actual
  // count of 2."
  EXPECT_EQ(bbs.CountItemSet({1, 3}), 3u);
  TransactionDatabase db = testing::PaperExampleDb();
  EXPECT_EQ(testing::BruteForceSupport(db, {1, 3}), 2u);
}

TEST(BbsIndexTest, EmptyItemsetCountsAllTransactions) {
  BbsIndex bbs = PaperExampleBbs();
  EXPECT_EQ(bbs.CountItemSet({}), 5u);
}

TEST(BbsIndexTest, ExactItemCountsMaintained) {
  BbsIndex bbs = PaperExampleBbs();
  ASSERT_TRUE(bbs.tracks_item_counts());
  EXPECT_EQ(bbs.ExactItemCount(1), 5u);
  EXPECT_EQ(bbs.ExactItemCount(0), 2u);
  EXPECT_EQ(bbs.ExactItemCount(11), 1u);
  EXPECT_EQ(bbs.ExactItemCount(12), 0u);
  EXPECT_EQ(bbs.ExactItemCount(99), 0u) << "unseen item";
}

TEST(BbsIndexTest, InsertIsIncremental) {
  BbsConfig config;
  config.num_bits = 64;
  config.num_hashes = 2;
  auto bbs = BbsIndex::Create(config);
  ASSERT_TRUE(bbs.ok());
  EXPECT_EQ(bbs->num_transactions(), 0u);
  bbs->Insert({1, 2});
  EXPECT_EQ(bbs->num_transactions(), 1u);
  EXPECT_EQ(bbs->CountItemSet({1, 2}), 1u);
  bbs->Insert({2, 3});
  EXPECT_EQ(bbs->num_transactions(), 2u);
  EXPECT_GE(bbs->CountItemSet({2}), 2u);
}

TEST(BbsIndexTest, AndItemSlicesMatchesCountItemSet) {
  TransactionDatabase db = testing::RandomDb(3, 200, 50, 6.0);
  BbsConfig config;
  config.num_bits = 128;
  config.num_hashes = 3;
  auto bbs = BbsIndex::Create(config);
  ASSERT_TRUE(bbs.ok());
  bbs->InsertAll(db);

  // Incremental extension {5} then {5, 9} must equal direct CountItemSet.
  BitVector acc(db.size());
  acc.SetAll();
  size_t c5 = bbs->AndItemSlices(5, &acc);
  EXPECT_EQ(c5, bbs->CountItemSet({5}));
  size_t c59 = bbs->AndItemSlices(9, &acc);
  EXPECT_EQ(c59, bbs->CountItemSet({5, 9}));
}

TEST(BbsIndexTest, ConstrainedCountRestricts) {
  BbsIndex bbs = PaperExampleBbs();
  // Constraint: only the first two transactions.
  BitVector constraint(5);
  constraint.Set(0);
  constraint.Set(1);
  EXPECT_EQ(bbs.CountItemSetConstrained({1}, constraint), 2u);
  EXPECT_EQ(bbs.CountItemSetConstrained({0, 1}, constraint), 1u);
  // Empty itemset under a constraint = constraint cardinality.
  EXPECT_EQ(bbs.CountItemSetConstrained({}, constraint), 2u);
}

TEST(BbsIndexTest, CountChargesSliceReadsWhenAccounted) {
  BbsIndex bbs = PaperExampleBbs();
  IoStats io;
  bbs.CountItemSet({0, 1}, nullptr, &io);
  // Items 0 and 1 select two distinct slices; each slice is under one block.
  EXPECT_EQ(io.sequential_reads, 2u);
}

TEST(BbsIndexTest, FoldPreservesUpperBoundProperty) {
  TransactionDatabase db = testing::RandomDb(11, 300, 100, 8.0);
  BbsConfig config;
  config.num_bits = 256;
  config.num_hashes = 4;
  auto bbs = BbsIndex::Create(config);
  ASSERT_TRUE(bbs.ok());
  bbs->InsertAll(db);

  BbsIndex folded = bbs->Fold(32);
  EXPECT_TRUE(folded.is_folded());
  EXPECT_EQ(folded.num_bits(), 32u);
  EXPECT_EQ(folded.num_transactions(), db.size());

  for (Itemset items : std::vector<Itemset>{{1}, {2, 3}, {10, 20, 30}}) {
    size_t est_full = bbs->CountItemSet(items);
    size_t est_folded = folded.CountItemSet(items);
    uint64_t actual = testing::BruteForceSupport(db, items);
    EXPECT_GE(est_folded, est_full) << ItemsetToString(items);
    EXPECT_GE(est_full, actual) << ItemsetToString(items);
  }
  // Exact 1-itemset counts survive folding.
  EXPECT_EQ(folded.ExactItemCount(1), bbs->ExactItemCount(1));
}

TEST(BbsIndexTest, FoldedInsertStaysConsistent) {
  BbsConfig config;
  config.num_bits = 64;
  config.num_hashes = 2;
  auto bbs = BbsIndex::Create(config);
  ASSERT_TRUE(bbs.ok());
  bbs->Insert({1, 2, 3});
  BbsIndex folded = bbs->Fold(8);
  folded.Insert({4, 5});
  EXPECT_EQ(folded.num_transactions(), 2u);
  EXPECT_GE(folded.CountItemSet({4, 5}), 1u);
  EXPECT_GE(folded.CountItemSet({1, 2, 3}), 1u);
}

TEST(BbsIndexTest, SaveLoadRoundTrip) {
  TransactionDatabase db = testing::RandomDb(17, 150, 80, 5.0);
  BbsConfig config;
  config.num_bits = 100;
  config.num_hashes = 3;
  config.seed = 5;
  auto bbs = BbsIndex::Create(config);
  ASSERT_TRUE(bbs.ok());
  bbs->InsertAll(db);

  std::string path = TempPath("bbsmine_idx_roundtrip.bin");
  ASSERT_TRUE(bbs->Save(path).ok());
  Result<BbsIndex> loaded = BbsIndex::Load(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_TRUE(*loaded == *bbs);
  // Behavioral equivalence, not just structural.
  EXPECT_EQ(loaded->CountItemSet({1, 2}), bbs->CountItemSet({1, 2}));
  EXPECT_EQ(loaded->ExactItemCount(3), bbs->ExactItemCount(3));
  std::remove(path.c_str());
}

TEST(BbsIndexTest, LoadRejectsCorruption) {
  BbsIndex bbs = PaperExampleBbs();
  std::string path = TempPath("bbsmine_idx_corrupt.bin");
  ASSERT_TRUE(bbs.Save(path).ok());
  {
    std::FILE* f = std::fopen(path.c_str(), "r+b");
    ASSERT_NE(f, nullptr);
    std::fseek(f, 25, SEEK_SET);
    int c = std::fgetc(f);
    std::fseek(f, 25, SEEK_SET);
    std::fputc(c ^ 0x55, f);
    std::fclose(f);
  }
  Result<BbsIndex> loaded = BbsIndex::Load(path);
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kCorruption);
  std::remove(path.c_str());
}

TEST(BbsIndexTest, SerializedBytesAndMemoryUsage) {
  BbsIndex bbs = PaperExampleBbs();
  // 8 slices x ceil(5/8) = 8 bytes.
  EXPECT_EQ(bbs.SliceBytes(), 1u);
  EXPECT_EQ(bbs.SerializedBytes(), 8u);
  EXPECT_GT(bbs.MemoryUsage(), 0u);

  IoStats io;
  bbs.ChargeFullScan(&io);
  EXPECT_EQ(io.sequential_reads, 1u);
}

}  // namespace
}  // namespace bbsmine
