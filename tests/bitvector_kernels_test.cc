// Differential tests of the SIMD kernel layer: every BitVector bulk op is
// checked against a naive per-bit reference, at adversarial sizes, under
// every kernel available on this machine (scalar always; AVX2/AVX-512/NEON
// when the CPU has them). Also covers the blocked early-abort in
// BbsIndex::CountWithSeed and cross-kernel bit-identical mining.

#include "util/bitvector_kernels.h"

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "core/bbs_index.h"
#include "core/miner.h"
#include "datagen/quest_gen.h"
#include "util/bitvector.h"
#include "util/rng.h"

namespace bbsmine {
namespace {

/// Restores the startup kernel when a test that switches kernels exits.
class KernelGuard {
 public:
  KernelGuard() : original_(kernels::ActiveName()) {}
  ~KernelGuard() { kernels::SetActive(original_); }

 private:
  const char* original_;
};

// Adversarial bit counts: empty, sub-word, word boundaries, multi-word
// boundaries, non-word-multiples, and sizes spanning several SIMD vectors
// plus a ragged tail.
const size_t kSizes[] = {0,   1,   63,   64,   65,   127,  128,
                         129, 191, 1000, 4096, 4103, 70003};

BitVector RandomVector(size_t size, Rng* rng, double density = 0.5) {
  BitVector v(size);
  for (size_t i = 0; i < size; ++i) {
    if (rng->NextDouble() < density) v.Set(i);
  }
  return v;
}

size_t NaiveCount(const BitVector& v) {
  size_t total = 0;
  for (size_t i = 0; i < v.size(); ++i) total += v.Get(i) ? 1 : 0;
  return total;
}

class KernelParityTest : public ::testing::TestWithParam<std::string> {
 protected:
  void SetUp() override {
    ASSERT_TRUE(kernels::SetActive(GetParam().c_str()))
        << "kernel " << GetParam() << " unavailable";
  }
  void TearDown() override { guard_ = KernelGuard(); }

 private:
  KernelGuard guard_;
};

TEST_P(KernelParityTest, BulkOpsMatchPerBitReference) {
  Rng rng(0xb17c0de + std::hash<std::string>{}(GetParam()));
  for (size_t size : kSizes) {
    for (int round = 0; round < 3; ++round) {
      double density = round == 0 ? 0.5 : (round == 1 ? 0.05 : 0.95);
      BitVector a = RandomVector(size, &rng, density);
      BitVector b = RandomVector(size, &rng, density);
      SCOPED_TRACE(GetParam() + " size=" + std::to_string(size) +
                   " round=" + std::to_string(round));

      EXPECT_EQ(a.Count(), NaiveCount(a));
      EXPECT_EQ(a.CountPrefix(size / 2), [&] {
        size_t total = 0;
        for (size_t i = 0; i < size / 2; ++i) total += a.Get(i) ? 1 : 0;
        return total;
      }());

      // AndWith / AndWithCount.
      BitVector and_ref(size);
      for (size_t i = 0; i < size; ++i) {
        and_ref.Set(i, a.Get(i) && b.Get(i));
      }
      BitVector x = a;
      x.AndWith(b);
      EXPECT_TRUE(x == and_ref);
      x = a;
      EXPECT_EQ(x.AndWithCount(b), NaiveCount(and_ref));
      EXPECT_TRUE(x == and_ref);

      // Three-operand fused AssignAndCount, including aliased operands.
      BitVector y;
      EXPECT_EQ(y.AssignAndCount(a, b), NaiveCount(and_ref));
      EXPECT_TRUE(y == and_ref);
      y = a;
      EXPECT_EQ(y.AssignAndCount(y, b), NaiveCount(and_ref));
      EXPECT_TRUE(y == and_ref);

      // OrWith.
      BitVector or_ref(size);
      for (size_t i = 0; i < size; ++i) {
        or_ref.Set(i, a.Get(i) || b.Get(i));
      }
      x = a;
      x.OrWith(b);
      EXPECT_TRUE(x == or_ref);

      // AndNotWith.
      BitVector andnot_ref(size);
      for (size_t i = 0; i < size; ++i) {
        andnot_ref.Set(i, a.Get(i) && !b.Get(i));
      }
      x = a;
      x.AndNotWith(b);
      EXPECT_TRUE(x == andnot_ref);

      // Intersects / IsSubsetOf, including the degenerate true cases.
      EXPECT_EQ(a.Intersects(b), NaiveCount(and_ref) > 0);
      EXPECT_EQ(a.IsSubsetOf(b), NaiveCount(andnot_ref) == 0);
      EXPECT_TRUE(and_ref.IsSubsetOf(a));
      EXPECT_TRUE(a.IsSubsetOf(or_ref));
    }
  }
}

TEST_P(KernelParityTest, AndManyCountMatchesPairwiseReference) {
  Rng rng(0xfeed + std::hash<std::string>{}(GetParam()));
  for (size_t size : {size_t{0}, size_t{65}, size_t{4103}, size_t{70003}}) {
    for (size_t k : {size_t{1}, size_t{2}, size_t{3}, size_t{7}}) {
      SCOPED_TRACE(GetParam() + " size=" + std::to_string(size) +
                   " k=" + std::to_string(k));
      std::vector<BitVector> operands;
      std::vector<const kernels::Word*> srcs;
      for (size_t i = 0; i < k; ++i) {
        // Dense operands so the k-way AND keeps nonzero blocks.
        operands.push_back(RandomVector(size, &rng, 0.9));
      }
      for (const BitVector& v : operands) srcs.push_back(v.words().data());

      BitVector expected = operands[0];
      for (size_t i = 1; i < k; ++i) expected.AndWith(operands[i]);

      BitVector dst(size);
      uint64_t count = kernels::AndManyCount(dst.MutableWords(), srcs.data(),
                                             k, dst.num_words());
      EXPECT_EQ(count, NaiveCount(expected));
      EXPECT_TRUE(dst == expected);
    }
  }
}

std::vector<std::string> AvailableKernelNames() {
  std::vector<std::string> names;
  for (const char* name : kernels::AvailableNames()) names.push_back(name);
  return names;
}

INSTANTIATE_TEST_SUITE_P(AllKernels, KernelParityTest,
                         ::testing::ValuesIn(AvailableKernelNames()),
                         [](const auto& info) { return info.param; });

TEST(KernelRegistryTest, ScalarAlwaysAvailable) {
  std::vector<std::string> names = AvailableKernelNames();
  EXPECT_NE(std::find(names.begin(), names.end(), "scalar"), names.end());
}

TEST(KernelRegistryTest, UnknownKernelRejectedWithoutSwitching) {
  KernelGuard guard;
  const char* before = kernels::ActiveName();
  EXPECT_FALSE(kernels::SetActive("not-a-kernel"));
  EXPECT_STREQ(kernels::ActiveName(), before);
  EXPECT_TRUE(kernels::SetActive("scalar"));
  EXPECT_STREQ(kernels::ActiveName(), "scalar");
}

TEST(KernelRegistryTest, WordStorageIsCacheLineAligned) {
  BitVector v(70003);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(v.words().data()) %
                BitVector::kWordAlignment,
            0u);
}

/// Builds an index where items 0 and 1 are individually dense but nearly
/// disjoint, so a two-item query passes the sparsest-slice pre-check yet
/// provably cannot reach tau once most of the vector has been ANDed.
BbsIndex MakeEarlyAbortIndex(size_t n, double overlap) {
  BbsConfig config;
  config.num_bits = 64;
  config.num_hashes = 2;
  auto bbs = BbsIndex::Create(config);
  EXPECT_TRUE(bbs.ok());
  const size_t lo = static_cast<size_t>(n * (0.5 - overlap / 2));
  const size_t hi = static_cast<size_t>(n * (0.5 + overlap / 2));
  for (size_t t = 0; t < n; ++t) {
    Itemset items;
    if (t < hi) items.push_back(0);
    if (t >= lo) items.push_back(1);
    bbs->Insert(items);
  }
  return std::move(bbs).value();
}

TEST(BlockedEarlyAbortTest, StopsBeforeTouchingAllWords) {
  // Three 1024-word blocks of transactions.
  const size_t kN = 3 * 1024 * 64;
  BbsIndex bbs = MakeEarlyAbortIndex(kN, /*overlap=*/0.1);

  // Full count of {0,1} for reference: roughly the 10% overlap (plus Bloom
  // false positives), far below tau = N/2.
  IoStats full_io;
  size_t full = bbs.CountItemSet({0, 1}, nullptr, &full_io);
  ASSERT_LT(full, kN / 2);
  ASSERT_GT(full_io.slice_words_touched, 0u);

  // The thresholded count must abort: once count_so_far + remaining bits
  // cannot reach tau, whole trailing blocks stay untouched.
  IoStats abort_io;
  size_t est = bbs.CountItemSetAtLeast({0, 1}, /*tau=*/kN / 2, nullptr,
                                       &abort_io);
  EXPECT_LT(est, kN / 2);
  EXPECT_LT(abort_io.slice_words_touched, full_io.slice_words_touched)
      << "early-abort did not reduce the words streamed";
  // And it must charge strictly less simulated I/O than the full pass.
  EXPECT_LT(abort_io.sequential_reads, full_io.sequential_reads);
}

TEST(BlockedEarlyAbortTest, FullCountStillExactUnderEveryKernel) {
  const size_t kN = 3 * 1024 * 64;
  BbsIndex bbs = MakeEarlyAbortIndex(kN, 0.1);
  KernelGuard guard;
  ASSERT_TRUE(kernels::SetActive("scalar"));
  BitVector scalar_result;
  size_t scalar_count = bbs.CountItemSet({0, 1}, &scalar_result);
  for (const std::string& name : AvailableKernelNames()) {
    ASSERT_TRUE(kernels::SetActive(name.c_str()));
    BitVector result;
    EXPECT_EQ(bbs.CountItemSet({0, 1}, &result), scalar_count) << name;
    EXPECT_TRUE(result == scalar_result) << name;
  }
}

TEST(CrossKernelMiningTest, AllSchemesBitIdenticalAcrossKernels) {
  QuestConfig quest;
  quest.num_transactions = 1200;
  quest.num_items = 250;
  quest.avg_transaction_size = 8;
  quest.avg_pattern_size = 3;
  quest.num_patterns = 80;
  auto db = GenerateQuest(quest);
  ASSERT_TRUE(db.ok());

  BbsConfig bbs_config;
  bbs_config.num_bits = 192;
  bbs_config.num_hashes = 4;
  auto bbs = BbsIndex::Create(bbs_config);
  ASSERT_TRUE(bbs.ok());
  bbs->InsertAll(*db);

  KernelGuard guard;
  for (Algorithm algorithm : {Algorithm::kSFS, Algorithm::kSFP,
                              Algorithm::kDFS, Algorithm::kDFP}) {
    for (uint32_t threads : {1u, 4u}) {
      MineConfig config;
      config.algorithm = algorithm;
      config.min_support = 0.02;
      config.num_threads = threads;

      ASSERT_TRUE(kernels::SetActive("scalar"));
      MiningResult reference = MineFrequentPatterns(*db, *bbs, config);
      for (const std::string& name : AvailableKernelNames()) {
        ASSERT_TRUE(kernels::SetActive(name.c_str()));
        MiningResult result = MineFrequentPatterns(*db, *bbs, config);
        // Bit-identical: same patterns, same supports, same order.
        ASSERT_EQ(result.patterns.size(), reference.patterns.size())
            << AlgorithmName(algorithm) << " kernel=" << name;
        for (size_t i = 0; i < result.patterns.size(); ++i) {
          EXPECT_EQ(result.patterns[i].items, reference.patterns[i].items)
              << AlgorithmName(algorithm) << " kernel=" << name << " i=" << i;
          EXPECT_EQ(result.patterns[i].support,
                    reference.patterns[i].support)
              << AlgorithmName(algorithm) << " kernel=" << name << " i=" << i;
        }
      }
    }
  }
}

}  // namespace
}  // namespace bbsmine
