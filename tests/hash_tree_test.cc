#include "baseline/hash_tree.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "testing/reference.h"
#include "util/rng.h"

namespace bbsmine {
namespace {

TEST(HashTreeTest, CountsContainedCandidates) {
  std::vector<Itemset> candidates = {{1, 2}, {1, 3}, {2, 3}, {4, 5}};
  CandidateHashTree tree(2);
  for (size_t i = 0; i < candidates.size(); ++i) {
    tree.Insert(static_cast<uint32_t>(i), &candidates[i]);
  }
  EXPECT_EQ(tree.size(), 4u);

  std::vector<uint64_t> counts(candidates.size(), 0);
  tree.CountSubsets({1, 2, 3}, &counts);
  EXPECT_EQ(counts, (std::vector<uint64_t>{1, 1, 1, 0}));

  tree.CountSubsets({1, 2}, &counts);
  EXPECT_EQ(counts, (std::vector<uint64_t>{2, 1, 1, 0}));
}

TEST(HashTreeTest, ShortTransactionsSkipCheapLy) {
  std::vector<Itemset> candidates = {{1, 2, 3}};
  CandidateHashTree tree(3);
  tree.Insert(0, &candidates[0]);
  std::vector<uint64_t> counts(1, 0);
  tree.CountSubsets({1, 2}, &counts);  // too short to contain a 3-itemset
  EXPECT_EQ(counts[0], 0u);
}

TEST(HashTreeTest, NoDoubleCountingThroughMultiplePaths) {
  // Items 1 and 33 collide modulo the default fanout 32, so a transaction
  // containing both descends into the same child twice.
  std::vector<Itemset> candidates = {{33, 65}};  // 33 % 32 == 1, 65 % 32 == 1
  CandidateHashTree tree(2);
  tree.Insert(0, &candidates[0]);
  std::vector<uint64_t> counts(1, 0);
  tree.CountSubsets({1, 33, 65, 97}, &counts);
  EXPECT_EQ(counts[0], 1u) << "candidate must be counted exactly once";
}

TEST(HashTreeTest, SplitsKeepCountsCorrect) {
  // More candidates than one leaf holds forces interior splits.
  Rng rng(3);
  std::vector<Itemset> candidates;
  for (int i = 0; i < 300; ++i) {
    Itemset c = {static_cast<ItemId>(rng.Uniform(40)),
                 static_cast<ItemId>(rng.Uniform(40)),
                 static_cast<ItemId>(rng.Uniform(40))};
    Canonicalize(&c);
    if (c.size() == 3) candidates.push_back(c);
  }
  std::sort(candidates.begin(), candidates.end());
  candidates.erase(std::unique(candidates.begin(), candidates.end()),
                   candidates.end());

  CandidateHashTree tree(3, /*fanout=*/8, /*leaf_capacity=*/4);
  for (size_t i = 0; i < candidates.size(); ++i) {
    tree.Insert(static_cast<uint32_t>(i), &candidates[i]);
  }

  // Compare tree counting against naive subset checks over random txns.
  for (int trial = 0; trial < 50; ++trial) {
    Itemset txn;
    size_t len = 3 + rng.Uniform(10);
    for (size_t j = 0; j < len; ++j) {
      txn.push_back(static_cast<ItemId>(rng.Uniform(40)));
    }
    Canonicalize(&txn);

    std::vector<uint64_t> counts(candidates.size(), 0);
    tree.CountSubsets(txn, &counts);
    for (size_t c = 0; c < candidates.size(); ++c) {
      uint64_t expected = IsSubsetOf(candidates[c], txn) ? 1 : 0;
      ASSERT_EQ(counts[c], expected)
          << "candidate " << ItemsetToString(candidates[c]) << " vs txn "
          << ItemsetToString(txn);
    }
  }
}

TEST(HashTreeTest, DuplicatePrefixCandidatesChainSplit) {
  // Candidates sharing all hashable prefixes force splits down to the
  // maximum depth, where leaves grow unbounded.
  std::vector<Itemset> candidates;
  for (ItemId last = 100; last < 140; ++last) {
    candidates.push_back({1, 2, last});
  }
  CandidateHashTree tree(3, 4, 2);
  for (size_t i = 0; i < candidates.size(); ++i) {
    tree.Insert(static_cast<uint32_t>(i), &candidates[i]);
  }
  std::vector<uint64_t> counts(candidates.size(), 0);
  tree.CountSubsets({1, 2, 105}, &counts);
  for (size_t c = 0; c < candidates.size(); ++c) {
    EXPECT_EQ(counts[c], candidates[c][2] == 105 ? 1u : 0u);
  }
}

TEST(HashTreeTest, AccumulatesAcrossTransactions) {
  std::vector<Itemset> candidates = {{1, 2}};
  CandidateHashTree tree(2);
  tree.Insert(0, &candidates[0]);
  std::vector<uint64_t> counts(1, 0);
  tree.CountSubsets({1, 2, 3}, &counts);
  tree.CountSubsets({1, 2}, &counts);
  tree.CountSubsets({2, 3}, &counts);
  EXPECT_EQ(counts[0], 2u);
}

}  // namespace
}  // namespace bbsmine
