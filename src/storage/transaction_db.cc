#include "storage/transaction_db.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <memory>

#include "util/crc32.h"
#include "util/file_io.h"

namespace bbsmine {

namespace {

constexpr char kMagic[8] = {'B', 'B', 'S', 'T', 'X', 'D', 'B', '1'};
constexpr uint32_t kFormatVersion = 1;

void AppendU32(std::string* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) out->push_back(static_cast<char>(v >> (8 * i)));
}

void AppendU64(std::string* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) out->push_back(static_cast<char>(v >> (8 * i)));
}

bool ReadU32(const std::string& in, size_t* pos, uint32_t* v) {
  if (*pos + 4 > in.size()) return false;
  uint32_t out = 0;
  for (int i = 0; i < 4; ++i) {
    out |= static_cast<uint32_t>(static_cast<uint8_t>(in[*pos + i])) << (8 * i);
  }
  *pos += 4;
  *v = out;
  return true;
}

bool ReadU64(const std::string& in, size_t* pos, uint64_t* v) {
  if (*pos + 8 > in.size()) return false;
  uint64_t out = 0;
  for (int i = 0; i < 8; ++i) {
    out |= static_cast<uint64_t>(static_cast<uint8_t>(in[*pos + i])) << (8 * i);
  }
  *pos += 8;
  *v = out;
  return true;
}

}  // namespace

void TidIndex::Append(uint64_t record_bytes) {
  offsets_.push_back(total_bytes_);
  total_bytes_ += record_bytes;
}

uint64_t TidIndex::BlockSpan(size_t position, uint32_t block_size) const {
  uint64_t first = offsets_[position] / block_size;
  uint64_t last_byte = offsets_[position] + SizeOf(position) - 1;
  return last_byte / block_size - first + 1;
}

Tid TransactionDatabase::Append(Itemset items) {
  Tid tid = transactions_.empty() ? 0 : transactions_.back().tid + 1;
  AppendTransaction(Transaction{tid, std::move(items)});
  return tid;
}

void TransactionDatabase::AppendTransaction(Transaction txn) {
  Canonicalize(&txn.items);
  if (!txn.items.empty()) {
    item_universe_ = std::max(item_universe_, txn.items.back() + 1);
  }
  tid_index_.Append(RecordBytes(txn));
  transactions_.push_back(std::move(txn));
}

Itemset TransactionDatabase::DistinctItems() const {
  Itemset all;
  for (const Transaction& txn : transactions_) {
    all.insert(all.end(), txn.items.begin(), txn.items.end());
  }
  Canonicalize(&all);
  return all;
}

void TransactionDatabase::ForEach(
    IoStats* io, const std::function<void(const Transaction&)>& fn) const {
  ChargeFullScan(io);
  for (const Transaction& txn : transactions_) fn(txn);
}

const Transaction& TransactionDatabase::Probe(size_t position,
                                              IoStats* io) const {
  if (io != nullptr) {
    io->random_reads += tid_index_.BlockSpan(position, block_size_);
  }
  return transactions_[position];
}

void TransactionDatabase::ChargeFullScan(IoStats* io) const {
  if (io != nullptr) {
    io->sequential_reads += BlocksFor(SerializedBytes(), block_size_);
  }
}

Status TransactionDatabase::Save(const std::string& path) const {
  std::string payload;
  payload.reserve(SerializedBytes() + 64);
  AppendU64(&payload, transactions_.size());
  AppendU32(&payload, item_universe_);
  AppendU32(&payload, block_size_);
  for (const Transaction& txn : transactions_) {
    AppendU64(&payload, txn.tid);
    AppendU32(&payload, static_cast<uint32_t>(txn.items.size()));
    for (ItemId item : txn.items) AppendU32(&payload, item);
  }

  std::string file;
  file.append(kMagic, sizeof(kMagic));
  AppendU32(&file, kFormatVersion);
  AppendU32(&file, Crc32(payload));
  file += payload;

  return WriteBinaryFile(path, file);
}

Result<TransactionDatabase> TransactionDatabase::Load(
    const std::string& path) {
  std::unique_ptr<std::FILE, int (*)(std::FILE*)> fp(
      std::fopen(path.c_str(), "rb"), &std::fclose);
  if (fp == nullptr) {
    return StatusFromErrno("cannot open for reading: " + path);
  }
  std::string file;
  char buf[1 << 16];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), fp.get())) > 0) {
    file.append(buf, n);
  }
  if (std::ferror(fp.get())) {
    return Status::IoError("read error: " + path);
  }

  if (file.size() < sizeof(kMagic) + 8 ||
      std::memcmp(file.data(), kMagic, sizeof(kMagic)) != 0) {
    return Status::Corruption("bad magic in " + path);
  }
  size_t pos = sizeof(kMagic);
  uint32_t version = 0;
  uint32_t expected_crc = 0;
  if (!ReadU32(file, &pos, &version) || !ReadU32(file, &pos, &expected_crc)) {
    return Status::Corruption("truncated header in " + path);
  }
  if (version != kFormatVersion) {
    return Status::Corruption("unsupported format version " +
                              std::to_string(version));
  }
  std::string_view payload(file.data() + pos, file.size() - pos);
  if (Crc32(payload) != expected_crc) {
    return Status::Corruption("checksum mismatch in " + path);
  }

  TransactionDatabase db;
  uint64_t count = 0;
  uint32_t universe = 0;
  uint32_t block_size = 0;
  if (!ReadU64(file, &pos, &count) || !ReadU32(file, &pos, &universe) ||
      !ReadU32(file, &pos, &block_size)) {
    return Status::Corruption("truncated payload in " + path);
  }
  if (block_size == 0) {
    return Status::Corruption("zero block size in " + path);
  }
  db.block_size_ = block_size;
  for (uint64_t i = 0; i < count; ++i) {
    Transaction txn;
    uint64_t tid = 0;
    uint32_t num_items = 0;
    if (!ReadU64(file, &pos, &tid) || !ReadU32(file, &pos, &num_items)) {
      return Status::Corruption("truncated record in " + path);
    }
    txn.tid = tid;
    txn.items.reserve(num_items);
    for (uint32_t j = 0; j < num_items; ++j) {
      uint32_t item = 0;
      if (!ReadU32(file, &pos, &item)) {
        return Status::Corruption("truncated record items in " + path);
      }
      txn.items.push_back(item);
    }
    db.AppendTransaction(std::move(txn));
  }
  if (db.item_universe_ < universe) db.item_universe_ = universe;
  return db;
}

}  // namespace bbsmine
