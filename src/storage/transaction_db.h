// The transaction database: an append-only collection of transactions with a
// binary on-disk format and position-based record addressing.
//
// The database plays two roles in the paper's architecture:
//   * it is the ground truth that refinement (SequentialScan / Probe) checks
//     candidate patterns against, and
//   * it is the unit of I/O cost — Apriori re-scans it once per pass, the
//     Probe refinement fetches individual records through the TID-position
//     index ("the key of the index is the relative position of the
//     transaction from the beginning of the file", Section 3.2).
//
// For reproducibility on modern hardware the database is held in memory and
// every access that *would* hit disk on the paper's machine charges blocks to
// an IoStats (see util/iomodel.h). The on-disk format (Save/Load) is real,
// with a checksummed header, so databases can be persisted between runs.

#ifndef BBSMINE_STORAGE_TRANSACTION_DB_H_
#define BBSMINE_STORAGE_TRANSACTION_DB_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "storage/transaction.h"
#include "util/iomodel.h"
#include "util/status.h"

namespace bbsmine {

/// Maps a record's ordinal position to its byte offset in the serialized
/// file, and byte offsets to block numbers. This is the paper's probe index.
class TidIndex {
 public:
  /// Records that the transaction at the next position occupies
  /// `record_bytes` bytes.
  void Append(uint64_t record_bytes);

  size_t size() const { return offsets_.size(); }

  /// Byte offset of record `position` in the data region.
  uint64_t OffsetOf(size_t position) const { return offsets_[position]; }

  /// Serialized size of record `position`, in bytes.
  uint64_t SizeOf(size_t position) const {
    return (position + 1 < offsets_.size() ? offsets_[position + 1]
                                           : total_bytes_) -
           offsets_[position];
  }

  /// First block (of `block_size` bytes) touched by record `position`.
  uint64_t BlockOf(size_t position, uint32_t block_size) const {
    return offsets_[position] / block_size;
  }

  /// Number of blocks spanned by record `position`.
  uint64_t BlockSpan(size_t position, uint32_t block_size) const;

  /// Total bytes of all records appended so far.
  uint64_t total_bytes() const { return total_bytes_; }

 private:
  std::vector<uint64_t> offsets_;
  uint64_t total_bytes_ = 0;
};

/// Append-only transaction store.
class TransactionDatabase {
 public:
  TransactionDatabase() = default;

  /// Appends a transaction with an auto-assigned TID (previous max + 1, or
  /// `tid_base` for the first record). Items are canonicalized.
  /// Returns the assigned TID.
  Tid Append(Itemset items);

  /// Appends a transaction with an explicit TID. Items are canonicalized.
  void AppendTransaction(Transaction txn);

  /// Number of transactions.
  size_t size() const { return transactions_.size(); }
  bool empty() const { return transactions_.empty(); }

  /// Direct record access by position, without I/O accounting. Use this for
  /// building indexes and in tests; mining code should use Probe/ForEach.
  const Transaction& At(size_t position) const {
    return transactions_[position];
  }

  /// The number of distinct item ids that *may* appear: max item id + 1.
  /// Zero for an empty database.
  ItemId item_universe() const { return item_universe_; }

  /// The set of distinct items actually present, in ascending order.
  /// O(total items) — computed on demand.
  Itemset DistinctItems() const;

  /// Full sequential scan: calls `fn` for every transaction in order and
  /// charges one sequential pass over the file to `io` (if non-null).
  void ForEach(IoStats* io,
               const std::function<void(const Transaction&)>& fn) const;

  /// Random access by position through the TID index. Charges the record's
  /// block span as random reads to `io` (if non-null).
  const Transaction& Probe(size_t position, IoStats* io) const;

  /// Charges one full sequential pass over the file to `io` without visiting
  /// records; used by algorithms that stream the file in external phases.
  void ChargeFullScan(IoStats* io) const;

  /// The probe index (position -> offset/blocks).
  const TidIndex& tid_index() const { return tid_index_; }

  /// Serialized size of the data region, in bytes.
  uint64_t SerializedBytes() const { return tid_index_.total_bytes(); }

  /// Block size used for I/O accounting (and Save framing).
  uint32_t block_size() const { return block_size_; }
  void set_block_size(uint32_t block_size) { block_size_ = block_size; }

  /// Writes the database to `path` (header + records + CRC).
  Status Save(const std::string& path) const;

  /// Reads a database previously written by Save.
  static Result<TransactionDatabase> Load(const std::string& path);

  bool operator==(const TransactionDatabase& other) const {
    return transactions_ == other.transactions_;
  }

 private:
  /// Serialized size of one record: tid (8) + count (4) + items (4 each).
  static uint64_t RecordBytes(const Transaction& txn) {
    return 8 + 4 + 4 * static_cast<uint64_t>(txn.items.size());
  }

  std::vector<Transaction> transactions_;
  TidIndex tid_index_;
  ItemId item_universe_ = 0;
  uint32_t block_size_ = 4096;
};

}  // namespace bbsmine

#endif  // BBSMINE_STORAGE_TRANSACTION_DB_H_
