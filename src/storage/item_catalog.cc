#include "storage/item_catalog.h"

#include <cstdio>
#include <cstring>
#include <memory>

#include "util/crc32.h"

namespace bbsmine {

namespace {

constexpr char kMagic[8] = {'B', 'B', 'S', 'C', 'A', 'T', '0', '1'};
constexpr uint32_t kFormatVersion = 1;

void AppendU32(std::string* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) out->push_back(static_cast<char>(v >> (8 * i)));
}

bool ReadU32(const std::string& in, size_t* pos, uint32_t* v) {
  if (*pos + 4 > in.size()) return false;
  uint32_t out = 0;
  for (int i = 0; i < 4; ++i) {
    out |= static_cast<uint32_t>(static_cast<uint8_t>(in[*pos + i])) << (8 * i);
  }
  *pos += 4;
  *v = out;
  return true;
}

}  // namespace

ItemId ItemCatalog::Intern(std::string_view name) {
  auto it = ids_.find(std::string(name));
  if (it != ids_.end()) return it->second;
  ItemId id = static_cast<ItemId>(names_.size());
  names_.emplace_back(name);
  ids_.emplace(names_.back(), id);
  return id;
}

ItemId ItemCatalog::Find(std::string_view name) const {
  auto it = ids_.find(std::string(name));
  return it == ids_.end() ? kNotFound : it->second;
}

Itemset ItemCatalog::InternAll(const std::vector<std::string>& names) {
  Itemset items;
  items.reserve(names.size());
  for (const std::string& name : names) items.push_back(Intern(name));
  Canonicalize(&items);
  return items;
}

std::string ItemCatalog::Render(const Itemset& items) const {
  std::string out = "{";
  for (size_t i = 0; i < items.size(); ++i) {
    if (i > 0) out += ", ";
    if (items[i] < names_.size()) {
      out += names_[items[i]];
    } else {
      out += "#" + std::to_string(items[i]);
    }
  }
  out += "}";
  return out;
}

Status ItemCatalog::Save(const std::string& path) const {
  std::string payload;
  AppendU32(&payload, static_cast<uint32_t>(names_.size()));
  for (const std::string& name : names_) {
    AppendU32(&payload, static_cast<uint32_t>(name.size()));
    payload += name;
  }

  std::string file;
  file.append(kMagic, sizeof(kMagic));
  AppendU32(&file, kFormatVersion);
  AppendU32(&file, Crc32(payload));
  file += payload;

  std::unique_ptr<std::FILE, int (*)(std::FILE*)> fp(
      std::fopen(path.c_str(), "wb"), &std::fclose);
  if (fp == nullptr) {
    return StatusFromErrno("cannot open for writing: " + path);
  }
  if (std::fwrite(file.data(), 1, file.size(), fp.get()) != file.size()) {
    return Status::IoError("short write: " + path);
  }
  return Status::Ok();
}

Result<ItemCatalog> ItemCatalog::Load(const std::string& path) {
  std::unique_ptr<std::FILE, int (*)(std::FILE*)> fp(
      std::fopen(path.c_str(), "rb"), &std::fclose);
  if (fp == nullptr) {
    return StatusFromErrno("cannot open for reading: " + path);
  }
  std::string file;
  char buf[1 << 16];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), fp.get())) > 0) {
    file.append(buf, n);
  }
  if (std::ferror(fp.get())) {
    return Status::IoError("read error: " + path);
  }
  if (file.size() < sizeof(kMagic) + 8 ||
      std::memcmp(file.data(), kMagic, sizeof(kMagic)) != 0) {
    return Status::Corruption("bad magic in " + path);
  }
  size_t pos = sizeof(kMagic);
  uint32_t version = 0;
  uint32_t expected_crc = 0;
  if (!ReadU32(file, &pos, &version) || !ReadU32(file, &pos, &expected_crc)) {
    return Status::Corruption("truncated header in " + path);
  }
  if (version != kFormatVersion) {
    return Status::Corruption("unsupported catalog version " +
                              std::to_string(version));
  }
  if (Crc32(std::string_view(file.data() + pos, file.size() - pos)) !=
      expected_crc) {
    return Status::Corruption("checksum mismatch in " + path);
  }

  ItemCatalog catalog;
  uint32_t count = 0;
  if (!ReadU32(file, &pos, &count)) {
    return Status::Corruption("truncated payload in " + path);
  }
  for (uint32_t i = 0; i < count; ++i) {
    uint32_t len = 0;
    if (!ReadU32(file, &pos, &len) || pos + len > file.size()) {
      return Status::Corruption("truncated name in " + path);
    }
    catalog.Intern(std::string_view(file.data() + pos, len));
    pos += len;
  }
  if (catalog.size() != count) {
    return Status::Corruption("duplicate names in " + path);
  }
  return catalog;
}

}  // namespace bbsmine
