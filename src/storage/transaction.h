// Core value types of the transaction model: items, itemsets, transactions.
//
// Following the paper (Section 2): I = {i_1, ..., i_N} is a set of distinct
// literals called items; the database D is a set of variable-length
// transactions over I, each with a unique TID.

#ifndef BBSMINE_STORAGE_TRANSACTION_H_
#define BBSMINE_STORAGE_TRANSACTION_H_

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

namespace bbsmine {

/// Dense integer identifier of an item.
using ItemId = uint32_t;

/// Unique identifier of a transaction.
using Tid = uint64_t;

/// A set of items, stored as a sorted, duplicate-free vector.
///
/// All functions in the library that accept an Itemset require canonical form
/// (sorted ascending, no duplicates); use Canonicalize() on untrusted input.
using Itemset = std::vector<ItemId>;

/// Sorts and deduplicates `items` in place, making it a canonical Itemset.
inline void Canonicalize(Itemset* items) {
  std::sort(items->begin(), items->end());
  items->erase(std::unique(items->begin(), items->end()), items->end());
}

/// True iff canonical itemset `a` is a subset of canonical itemset `b`.
inline bool IsSubsetOf(const Itemset& a, const Itemset& b) {
  return std::includes(b.begin(), b.end(), a.begin(), a.end());
}

/// True iff canonical itemset `a` contains item `x`.
inline bool Contains(const Itemset& a, ItemId x) {
  return std::binary_search(a.begin(), a.end(), x);
}

/// Returns the union of two canonical itemsets (canonical).
Itemset UnionOf(const Itemset& a, const Itemset& b);

/// Renders an itemset as "{1, 2, 3}".
std::string ItemsetToString(const Itemset& items);

/// A database record: a transaction identifier plus its itemset.
struct Transaction {
  Tid tid = 0;
  Itemset items;  // canonical

  bool operator==(const Transaction& other) const {
    return tid == other.tid && items == other.items;
  }
};

}  // namespace bbsmine

#endif  // BBSMINE_STORAGE_TRANSACTION_H_
