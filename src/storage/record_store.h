// A disk-backed transaction record store with page-granular physical reads.
//
// TransactionDatabase keeps records in memory and *models* I/O; RecordStore
// is the real thing for databases that should not be resident: records live
// in a file, Read() fetches exactly the 4 KiB pages spanning the requested
// record (through an LRU page buffer), and Scan() streams the file front to
// back. This is the storage layout the paper's Probe refinement assumes —
// "the key of the index is the relative position of the transaction from
// the beginning of the file" — with the offset index persisted as a footer
// so opening the store reads only the header and footer.
//
// File layout:
//   [header]  magic, version, record count, index offset, index crc
//   [records] tid u64 | item count u32 | items u32...   (little endian)
//   [footer]  record offsets u64 x count
//
// Pages are cached with LRU residency; hits cost no I/O, misses issue a
// real read and charge IoStats (random for Read, sequential for Scan).

#ifndef BBSMINE_STORAGE_RECORD_STORE_H_
#define BBSMINE_STORAGE_RECORD_STORE_H_

#include <cstdint>
#include <cstdio>
#include <functional>
#include <list>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "storage/transaction.h"
#include "storage/transaction_db.h"
#include "util/iomodel.h"
#include "util/status.h"

namespace bbsmine {

/// Read-only, file-backed record store.
class RecordStore {
 public:
  static constexpr uint32_t kPageSize = 4096;

  /// Serializes `db` into a record-store file at `path`.
  static Status Write(const TransactionDatabase& db, const std::string& path);

  /// Opens a store written by Write. `cache_pages` bounds the page buffer
  /// (minimum 1).
  static Result<RecordStore> Open(const std::string& path,
                                  uint32_t cache_pages = 64);

  RecordStore(RecordStore&&) = default;
  RecordStore& operator=(RecordStore&&) = default;

  /// Number of records.
  size_t size() const { return offsets_.size(); }

  /// Reads record `position` from disk through the page buffer. Cache
  /// misses are charged to `io` as random reads.
  Result<Transaction> Read(size_t position, IoStats* io = nullptr);

  /// Streams every record in file order; page misses are charged as
  /// sequential reads.
  Status Scan(IoStats* io, const std::function<void(const Transaction&)>& fn);

  /// Page-buffer statistics.
  uint64_t cache_hits() const { return hits_; }
  uint64_t cache_misses() const { return misses_; }

  /// Total bytes of the record region.
  uint64_t record_bytes() const { return record_bytes_; }

 private:
  RecordStore() = default;

  /// Returns a pointer to the cached page `page_idx`, reading it on a miss
  /// (charged to `io` per `sequential`).
  Result<const std::vector<uint8_t>*> Page(uint64_t page_idx, bool sequential,
                                           IoStats* io);

  /// Copies `len` bytes starting at file offset `offset` (within the record
  /// region) into `out`, touching pages through the cache.
  Status CopyRange(uint64_t offset, uint64_t len, bool sequential,
                   IoStats* io, std::vector<uint8_t>* out);

  /// Parses one record from a raw byte range.
  static Status ParseRecord(const std::vector<uint8_t>& bytes,
                            Transaction* out);

  std::unique_ptr<std::FILE, int (*)(std::FILE*)> file_{nullptr, &std::fclose};
  std::string path_;
  uint64_t records_begin_ = 0;  // file offset of the record region
  uint64_t record_bytes_ = 0;
  std::vector<uint64_t> offsets_;  // per-record offsets within the region

  // LRU page buffer (front = most recent).
  uint32_t cache_pages_ = 0;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
  std::list<std::pair<uint64_t, std::vector<uint8_t>>> pages_;
  std::unordered_map<uint64_t, decltype(pages_)::iterator> page_index_;
};

}  // namespace bbsmine

#endif  // BBSMINE_STORAGE_RECORD_STORE_H_
