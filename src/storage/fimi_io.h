// Text import/export in the FIMI workshop format, the de-facto interchange
// format of the frequent-itemset-mining community: one transaction per
// line, items as whitespace-separated non-negative integers. This is the
// format of the classic public datasets (retail, kosarak, T10I4D100K, ...),
// so databases produced by other tools drop straight into bbsmine.

#ifndef BBSMINE_STORAGE_FIMI_IO_H_
#define BBSMINE_STORAGE_FIMI_IO_H_

#include <iosfwd>
#include <string>

#include "storage/transaction_db.h"
#include "util/status.h"

namespace bbsmine {

/// Reads a FIMI-format text file into a database. TIDs are assigned
/// sequentially from 0. Blank lines are skipped; '#'-prefixed lines are
/// treated as comments. Fails with kCorruption on non-numeric tokens or
/// items exceeding the ItemId range.
Result<TransactionDatabase> ReadFimi(const std::string& path);

/// Parses FIMI-format text from a stream (same rules as ReadFimi).
Result<TransactionDatabase> ReadFimiStream(std::istream& in,
                                           const std::string& origin = "<stream>");

/// Writes `db` in FIMI format (items space-separated, one transaction per
/// line; TIDs are not preserved by the format).
Status WriteFimi(const TransactionDatabase& db, const std::string& path);

/// Writes FIMI-format text to a stream.
Status WriteFimiStream(const TransactionDatabase& db, std::ostream& out);

}  // namespace bbsmine

#endif  // BBSMINE_STORAGE_FIMI_IO_H_
