// An LRU page cache used to model buffered block access.
//
// The paper's Probe refinement fetches individual transactions through the
// position index; on a real machine, probes to the same disk block within a
// short window are served from the buffer pool. PageCache models exactly
// that: Access() charges a block read to an IoStats only when the block is
// not resident, and evicts least-recently-used blocks once the configured
// memory budget (in blocks) is exceeded. It stores no data — only residency —
// because the reproduction keeps all data in memory and models the I/O cost.
//
// Access() is thread-safe (a real buffer pool is shared by all workers, and
// the parallel miner probes from several threads at once). The LRU state
// then depends on the probe interleaving, so miss counts may vary between
// multi-threaded runs — exactly as on real hardware — while probe *results*
// are unaffected.
//
// Scope: this cache is the *paper's cost model only* — it charges synthetic
// IoStats reads for a 2002-era buffered-disk setup; it never stores or
// fetches data. Runs on the mmap slice backend skip the analogous synthetic
// slice-read charging (SliceSource::charges_synthetic_io() is false there):
// a slice the kernel actually faulted in must not also be billed by the
// model, so IoStats never double-counts. Real paging behavior for mmap runs
// is observed through getrusage page-fault deltas (util/rusage.h) instead.

#ifndef BBSMINE_STORAGE_PAGE_CACHE_H_
#define BBSMINE_STORAGE_PAGE_CACHE_H_

#include <cstdint>
#include <list>
#include <mutex>
#include <unordered_map>

#include "util/iomodel.h"

namespace bbsmine {

/// Tracks which blocks of a single file are resident, with LRU eviction.
class PageCache {
 public:
  /// Creates a cache holding at most `capacity_blocks` blocks.
  /// A capacity of zero disables caching (every access misses).
  explicit PageCache(uint64_t capacity_blocks)
      : capacity_(capacity_blocks) {}

  /// Touches `block`. On a miss, charges one read to `io` (random or
  /// sequential according to `sequential`) and admits the block, evicting the
  /// LRU block if the cache is full. On a hit, only recency is updated.
  /// Returns true on a hit.
  bool Access(uint64_t block, bool sequential, IoStats* io);

  /// Drops all resident blocks.
  void Clear();

  uint64_t capacity() const { return capacity_; }
  uint64_t resident_blocks() const {
    std::lock_guard<std::mutex> lock(mu_);
    return lru_.size();
  }
  uint64_t hits() const {
    std::lock_guard<std::mutex> lock(mu_);
    return hits_;
  }
  uint64_t misses() const {
    std::lock_guard<std::mutex> lock(mu_);
    return misses_;
  }

  /// Hit/miss counters read together under one lock, so the pair is a
  /// consistent snapshot even while other threads keep probing.
  struct Counters {
    uint64_t hits = 0;
    uint64_t misses = 0;

    uint64_t accesses() const { return hits + misses; }
    /// Fraction of accesses served from the pool (0 when never accessed).
    double hit_rate() const {
      return accesses() == 0
                 ? 0.0
                 : static_cast<double>(hits) / static_cast<double>(accesses());
    }
  };
  Counters counters() const {
    std::lock_guard<std::mutex> lock(mu_);
    return Counters{hits_, misses_};
  }

 private:
  uint64_t capacity_;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
  // Front = most recently used.
  std::list<uint64_t> lru_;
  std::unordered_map<uint64_t, std::list<uint64_t>::iterator> index_;
  mutable std::mutex mu_;  // guards all of the above
};

}  // namespace bbsmine

#endif  // BBSMINE_STORAGE_PAGE_CACHE_H_
