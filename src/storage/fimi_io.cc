#include "storage/fimi_io.h"

#include <fstream>
#include <limits>
#include <sstream>

namespace bbsmine {

namespace {

/// Parses one line of whitespace-separated item ids into `items`.
/// Returns false (with *error set) on malformed tokens.
bool ParseLine(const std::string& line, size_t line_number, Itemset* items,
               std::string* error) {
  items->clear();
  size_t pos = 0;
  while (pos < line.size()) {
    // Skip whitespace.
    while (pos < line.size() &&
           (line[pos] == ' ' || line[pos] == '\t' || line[pos] == '\r')) {
      ++pos;
    }
    if (pos >= line.size()) break;

    uint64_t value = 0;
    size_t start = pos;
    while (pos < line.size() && line[pos] >= '0' && line[pos] <= '9') {
      value = value * 10 + static_cast<uint64_t>(line[pos] - '0');
      if (value > std::numeric_limits<ItemId>::max()) {
        *error = "item id out of range at line " + std::to_string(line_number);
        return false;
      }
      ++pos;
    }
    if (pos == start ||
        (pos < line.size() && line[pos] != ' ' && line[pos] != '\t' &&
         line[pos] != '\r')) {
      *error = "malformed token at line " + std::to_string(line_number);
      return false;
    }
    items->push_back(static_cast<ItemId>(value));
  }
  return true;
}

}  // namespace

Result<TransactionDatabase> ReadFimiStream(std::istream& in,
                                           const std::string& origin) {
  TransactionDatabase db;
  std::string line;
  Itemset items;
  size_t line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    if (line.empty() || line[0] == '#') continue;
    std::string error;
    if (!ParseLine(line, line_number, &items, &error)) {
      return Status::Corruption(origin + ": " + error);
    }
    if (items.empty()) continue;  // whitespace-only line
    db.Append(items);
  }
  if (in.bad()) {
    return Status::IoError("read error in " + origin);
  }
  return db;
}

Result<TransactionDatabase> ReadFimi(const std::string& path) {
  std::ifstream in(path);
  if (!in.is_open()) {
    return StatusFromErrno("cannot open for reading: " + path);
  }
  return ReadFimiStream(in, path);
}

Status WriteFimiStream(const TransactionDatabase& db, std::ostream& out) {
  for (size_t t = 0; t < db.size(); ++t) {
    const Itemset& items = db.At(t).items;
    for (size_t i = 0; i < items.size(); ++i) {
      if (i > 0) out << ' ';
      out << items[i];
    }
    out << '\n';
  }
  out.flush();
  if (!out.good()) return Status::IoError("write error");
  return Status::Ok();
}

Status WriteFimi(const TransactionDatabase& db, const std::string& path) {
  std::ofstream out(path);
  if (!out.is_open()) {
    return StatusFromErrno("cannot open for writing: " + path);
  }
  Status status = WriteFimiStream(db, out);
  if (!status.ok()) return Status::IoError(status.message() + ": " + path);
  return Status::Ok();
}

}  // namespace bbsmine
