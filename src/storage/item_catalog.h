// Bidirectional mapping between item names and dense ItemIds.
//
// The paper hashes *item names* ("we take the four disjoint groups of bits
// from the 128-bit MD5 signature of the item name"); the mining engine works
// on dense integer ids. ItemCatalog bridges the two: applications register
// names (SKU strings, file paths, ...) and mine over the ids, translating
// results back for presentation. The catalog persists alongside the
// database and, like the BBS, is append-only — ids are stable forever.

#ifndef BBSMINE_STORAGE_ITEM_CATALOG_H_
#define BBSMINE_STORAGE_ITEM_CATALOG_H_

#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "storage/transaction.h"
#include "util/status.h"

namespace bbsmine {

/// Append-only name <-> id catalog.
class ItemCatalog {
 public:
  ItemCatalog() = default;

  /// Returns the id of `name`, registering it if new. Ids are assigned
  /// densely in registration order.
  ItemId Intern(std::string_view name);

  /// Returns the id of `name` if registered, or ItemId(-1) otherwise.
  static constexpr ItemId kNotFound = static_cast<ItemId>(-1);
  ItemId Find(std::string_view name) const;

  /// The name of `id`. Precondition: id < size().
  const std::string& NameOf(ItemId id) const { return names_[id]; }

  /// Number of registered items.
  size_t size() const { return names_.size(); }
  bool empty() const { return names_.empty(); }

  /// Interns every name and returns the canonical itemset.
  Itemset InternAll(const std::vector<std::string>& names);

  /// Renders an itemset as "{name1, name2}" using catalog names.
  /// Ids outside the catalog render as "#<id>".
  std::string Render(const Itemset& items) const;

  /// Writes the catalog to `path` (length-prefixed strings, checksummed).
  Status Save(const std::string& path) const;

  /// Reads a catalog previously written by Save.
  static Result<ItemCatalog> Load(const std::string& path);

  bool operator==(const ItemCatalog& other) const {
    return names_ == other.names_;
  }

 private:
  std::vector<std::string> names_;
  std::unordered_map<std::string, ItemId> ids_;
};

}  // namespace bbsmine

#endif  // BBSMINE_STORAGE_ITEM_CATALOG_H_
