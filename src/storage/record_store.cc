#include "storage/record_store.h"

#include <algorithm>
#include <cstring>

#include "util/crc32.h"
#include "util/file_io.h"

namespace bbsmine {

namespace {

constexpr char kMagic[8] = {'B', 'B', 'S', 'R', 'E', 'C', '0', '1'};
// v2 adds a CRC over the records region (checked once at Open), so a bit
// flip inside a record is caught up front instead of silently loading a
// wrong transaction later.
constexpr uint32_t kFormatVersion = 2;
// magic + version u32 + count u64 + index offset u64 + index crc u32 +
// records crc u32.
constexpr uint64_t kHeaderBytes = 8 + 4 + 8 + 8 + 4 + 4;

void AppendU32(std::string* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) out->push_back(static_cast<char>(v >> (8 * i)));
}

void AppendU64(std::string* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) out->push_back(static_cast<char>(v >> (8 * i)));
}

uint32_t LoadU32(const uint8_t* p) {
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<uint32_t>(p[i]) << (8 * i);
  return v;
}

uint64_t LoadU64(const uint8_t* p) {
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<uint64_t>(p[i]) << (8 * i);
  return v;
}

}  // namespace

Status RecordStore::Write(const TransactionDatabase& db,
                          const std::string& path) {
  std::string records;
  std::string footer;
  records.reserve(db.SerializedBytes());
  for (size_t t = 0; t < db.size(); ++t) {
    const Transaction& txn = db.At(t);
    AppendU64(&footer, records.size());
    AppendU64(&records, txn.tid);
    AppendU32(&records, static_cast<uint32_t>(txn.items.size()));
    for (ItemId item : txn.items) AppendU32(&records, item);
  }

  std::string file;
  file.append(kMagic, sizeof(kMagic));
  AppendU32(&file, kFormatVersion);
  AppendU64(&file, db.size());
  AppendU64(&file, kHeaderBytes + records.size());  // index offset
  AppendU32(&file, Crc32(footer));
  AppendU32(&file, Crc32(records));
  file += records;
  file += footer;

  return WriteBinaryFile(path, file);
}

Result<RecordStore> RecordStore::Open(const std::string& path,
                                      uint32_t cache_pages) {
  RecordStore store;
  store.path_ = path;
  store.cache_pages_ = cache_pages == 0 ? 1 : cache_pages;
  store.file_.reset(std::fopen(path.c_str(), "rb"));
  if (store.file_ == nullptr) {
    return StatusFromErrno("cannot open for reading: " + path);
  }

  uint8_t header[kHeaderBytes];
  if (std::fread(header, 1, sizeof(header), store.file_.get()) !=
      sizeof(header)) {
    return Status::Corruption("truncated header in " + path);
  }
  if (std::memcmp(header, kMagic, sizeof(kMagic)) != 0) {
    return Status::Corruption("bad magic in " + path);
  }
  uint32_t version = LoadU32(header + 8);
  if (version != kFormatVersion) {
    return Status::Corruption("unsupported record-store version " +
                              std::to_string(version));
  }
  uint64_t count = LoadU64(header + 12);
  uint64_t index_offset = LoadU64(header + 20);
  uint32_t index_crc = LoadU32(header + 28);
  uint32_t records_crc = LoadU32(header + 32);
  if (index_offset < kHeaderBytes) {
    return Status::Corruption("bad index offset in " + path);
  }
  // The header fields are not CRC-covered, so cross-check them against the
  // file size before trusting them: the footer must be exactly count
  // offsets long and end at EOF. This keeps a flipped `count` bit from
  // turning into a multi-gigabyte footer allocation below.
  if (std::fseek(store.file_.get(), 0, SEEK_END) != 0) {
    return Status::IoError("seek failed in " + path);
  }
  long end = std::ftell(store.file_.get());
  if (end < 0) {
    return Status::IoError("ftell failed in " + path);
  }
  uint64_t file_size = static_cast<uint64_t>(end);
  if (index_offset > file_size ||
      file_size - index_offset != count * uint64_t{8} ||
      count > (file_size - kHeaderBytes) / 8) {
    return Status::Corruption("header inconsistent with file size in " + path);
  }
  if (std::fseek(store.file_.get(), static_cast<long>(kHeaderBytes),
                 SEEK_SET) != 0) {
    return Status::IoError("seek failed in " + path);
  }
  store.records_begin_ = kHeaderBytes;
  store.record_bytes_ = index_offset - kHeaderBytes;

  // One streaming pass over the records region up front: page reads later
  // serve from verified bytes. (The page cache still earns its keep for
  // random Read/Probe traffic after Open.)
  {
    uint32_t crc = 0;
    uint64_t remaining = store.record_bytes_;
    char buf[1 << 16];
    while (remaining > 0) {
      size_t want = static_cast<size_t>(
          std::min<uint64_t>(remaining, sizeof(buf)));
      if (std::fread(buf, 1, want, store.file_.get()) != want) {
        return Status::Corruption("truncated records region in " + path);
      }
      crc = Crc32(buf, want, crc);
      remaining -= want;
    }
    if (crc != records_crc) {
      return Status::Corruption("records checksum mismatch in " + path);
    }
  }

  // Read the footer.
  if (std::fseek(store.file_.get(), static_cast<long>(index_offset),
                 SEEK_SET) != 0) {
    return Status::IoError("seek failed in " + path);
  }
  std::vector<uint8_t> footer(count * 8);
  if (count > 0 && std::fread(footer.data(), 1, footer.size(),
                              store.file_.get()) != footer.size()) {
    return Status::Corruption("truncated footer in " + path);
  }
  if (Crc32(footer.data(), footer.size()) != index_crc) {
    return Status::Corruption("footer checksum mismatch in " + path);
  }
  store.offsets_.resize(count);
  for (uint64_t i = 0; i < count; ++i) {
    store.offsets_[i] = LoadU64(footer.data() + 8 * i);
    if (store.offsets_[i] > store.record_bytes_ ||
        (i > 0 && store.offsets_[i] < store.offsets_[i - 1])) {
      return Status::Corruption("non-monotone record offsets in " + path);
    }
  }
  return store;
}

Result<const std::vector<uint8_t>*> RecordStore::Page(uint64_t page_idx,
                                                      bool sequential,
                                                      IoStats* io) {
  auto it = page_index_.find(page_idx);
  if (it != page_index_.end()) {
    ++hits_;
    pages_.splice(pages_.begin(), pages_, it->second);
    return &pages_.front().second;
  }

  ++misses_;
  if (io != nullptr) {
    if (sequential) {
      ++io->sequential_reads;
    } else {
      ++io->random_reads;
    }
  }

  std::vector<uint8_t> page(kPageSize);
  uint64_t file_offset = records_begin_ + page_idx * kPageSize;
  if (std::fseek(file_.get(), static_cast<long>(file_offset), SEEK_SET) != 0) {
    return Status::IoError("seek failed in " + path_);
  }
  size_t want = static_cast<size_t>(
      std::min<uint64_t>(kPageSize, record_bytes_ - page_idx * kPageSize));
  size_t got = std::fread(page.data(), 1, want, file_.get());
  if (got != want) {
    return Status::IoError("short page read in " + path_);
  }

  if (pages_.size() >= cache_pages_) {
    page_index_.erase(pages_.back().first);
    pages_.pop_back();
  }
  pages_.emplace_front(page_idx, std::move(page));
  page_index_[page_idx] = pages_.begin();
  return &pages_.front().second;
}

Status RecordStore::CopyRange(uint64_t offset, uint64_t len, bool sequential,
                              IoStats* io, std::vector<uint8_t>* out) {
  if (offset + len > record_bytes_) {
    return Status::Corruption("record range out of bounds in " + path_);
  }
  out->clear();
  out->reserve(len);
  uint64_t pos = offset;
  while (pos < offset + len) {
    uint64_t page_idx = pos / kPageSize;
    uint64_t in_page = pos % kPageSize;
    Result<const std::vector<uint8_t>*> page = Page(page_idx, sequential, io);
    if (!page.ok()) return page.status();
    uint64_t take =
        std::min<uint64_t>(kPageSize - in_page, offset + len - pos);
    out->insert(out->end(), (*page)->begin() + static_cast<ptrdiff_t>(in_page),
                (*page)->begin() + static_cast<ptrdiff_t>(in_page + take));
    pos += take;
  }
  return Status::Ok();
}

Status RecordStore::ParseRecord(const std::vector<uint8_t>& bytes,
                                Transaction* out) {
  if (bytes.size() < 12) return Status::Corruption("record too short");
  out->tid = LoadU64(bytes.data());
  uint32_t count = LoadU32(bytes.data() + 8);
  if (bytes.size() != 12 + 4ull * count) {
    return Status::Corruption("record length mismatch");
  }
  out->items.resize(count);
  for (uint32_t i = 0; i < count; ++i) {
    out->items[i] = LoadU32(bytes.data() + 12 + 4ull * i);
  }
  return Status::Ok();
}

Result<Transaction> RecordStore::Read(size_t position, IoStats* io) {
  if (position >= offsets_.size()) {
    return Status::OutOfRange("record " + std::to_string(position) +
                              " of " + std::to_string(offsets_.size()));
  }
  uint64_t begin = offsets_[position];
  uint64_t end = position + 1 < offsets_.size() ? offsets_[position + 1]
                                                : record_bytes_;
  std::vector<uint8_t> bytes;
  BBSMINE_RETURN_IF_ERROR(
      CopyRange(begin, end - begin, /*sequential=*/false, io, &bytes));
  Transaction txn;
  BBSMINE_RETURN_IF_ERROR(ParseRecord(bytes, &txn));
  return txn;
}

Status RecordStore::Scan(IoStats* io,
                         const std::function<void(const Transaction&)>& fn) {
  std::vector<uint8_t> bytes;
  for (size_t position = 0; position < offsets_.size(); ++position) {
    uint64_t begin = offsets_[position];
    uint64_t end = position + 1 < offsets_.size() ? offsets_[position + 1]
                                                  : record_bytes_;
    BBSMINE_RETURN_IF_ERROR(
        CopyRange(begin, end - begin, /*sequential=*/true, io, &bytes));
    Transaction txn;
    BBSMINE_RETURN_IF_ERROR(ParseRecord(bytes, &txn));
    fn(txn);
  }
  return Status::Ok();
}

}  // namespace bbsmine
