#include "storage/transaction.h"

#include <sstream>

namespace bbsmine {

Itemset UnionOf(const Itemset& a, const Itemset& b) {
  Itemset out;
  out.reserve(a.size() + b.size());
  std::set_union(a.begin(), a.end(), b.begin(), b.end(),
                 std::back_inserter(out));
  return out;
}

std::string ItemsetToString(const Itemset& items) {
  std::ostringstream out;
  out << "{";
  for (size_t i = 0; i < items.size(); ++i) {
    if (i > 0) out << ", ";
    out << items[i];
  }
  out << "}";
  return out.str();
}

}  // namespace bbsmine
