#include "storage/page_cache.h"

namespace bbsmine {

bool PageCache::Access(uint64_t block, bool sequential, IoStats* io) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(block);
  if (it != index_.end()) {
    ++hits_;
    lru_.splice(lru_.begin(), lru_, it->second);
    return true;
  }

  ++misses_;
  if (io != nullptr) {
    if (sequential) {
      ++io->sequential_reads;
    } else {
      ++io->random_reads;
    }
  }
  if (capacity_ == 0) return false;

  if (lru_.size() >= capacity_) {
    uint64_t victim = lru_.back();
    lru_.pop_back();
    index_.erase(victim);
  }
  lru_.push_front(block);
  index_[block] = lru_.begin();
  return false;
}

void PageCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  lru_.clear();
  index_.clear();
}

}  // namespace bbsmine
