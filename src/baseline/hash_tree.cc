#include "baseline/hash_tree.h"

#include <cassert>

namespace bbsmine {

CandidateHashTree::CandidateHashTree(size_t itemset_length, size_t fanout,
                                     size_t leaf_capacity)
    : itemset_length_(itemset_length),
      fanout_(fanout),
      leaf_capacity_(leaf_capacity) {
  assert(itemset_length_ > 0 && fanout_ > 1 && leaf_capacity_ > 0);
  NewNode();  // root (index 0)
}

int32_t CandidateHashTree::NewNode() {
  nodes_.emplace_back();
  return static_cast<int32_t>(nodes_.size() - 1);
}

void CandidateHashTree::Insert(uint32_t id, const Itemset* items) {
  assert(items->size() == itemset_length_);
  if (id >= candidate_items_.size()) candidate_items_.resize(id + 1, nullptr);
  candidate_items_[id] = items;
  ++num_candidates_;
  InsertAt(0, 0, id);
}

void CandidateHashTree::InsertAt(int32_t node_idx, size_t depth, uint32_t id) {
  while (!nodes_[node_idx].is_leaf) {
    const Itemset& items = *candidate_items_[id];
    size_t h = HashItem(items[depth]);
    int32_t child = nodes_[node_idx].children[h];
    if (child < 0) {
      child = NewNode();
      nodes_[node_idx].children[h] = child;
    }
    node_idx = child;
    ++depth;
  }
  nodes_[node_idx].bucket.push_back(id);
  // Split once over capacity, unless every hashable position is exhausted
  // (then the leaf simply grows).
  if (nodes_[node_idx].bucket.size() > leaf_capacity_ &&
      depth < itemset_length_) {
    SplitLeaf(node_idx, depth);
  }
}

void CandidateHashTree::SplitLeaf(int32_t node_idx, size_t depth) {
  std::vector<uint32_t> bucket = std::move(nodes_[node_idx].bucket);
  nodes_[node_idx].bucket.clear();
  nodes_[node_idx].is_leaf = false;
  nodes_[node_idx].children.assign(fanout_, -1);
  for (uint32_t id : bucket) {
    // Re-insert below this node. InsertAt handles chained splits.
    size_t h = HashItem((*candidate_items_[id])[depth]);
    int32_t child = nodes_[node_idx].children[h];
    if (child < 0) {
      child = NewNode();
      nodes_[node_idx].children[h] = child;
    }
    InsertAt(child, depth + 1, id);
  }
}

void CandidateHashTree::CountSubsets(const Itemset& txn,
                                     std::vector<uint64_t>* counts) const {
  if (txn.size() < itemset_length_ || num_candidates_ == 0) return;
  if (mark_.size() < candidate_items_.size()) {
    mark_.resize(candidate_items_.size(), 0);
  }
  ++epoch_;
  CountAt(0, 0, txn, 0, counts);
}

void CandidateHashTree::CountAt(int32_t node_idx, size_t depth,
                                const Itemset& txn, size_t start,
                                std::vector<uint64_t>* counts) const {
  const Node& node = nodes_[node_idx];
  if (node.is_leaf) {
    for (uint32_t id : node.bucket) {
      if (mark_[id] == epoch_) continue;  // already counted this transaction
      if (IsSubsetOf(*candidate_items_[id], txn)) {
        mark_[id] = epoch_;
        ++(*counts)[id];
      }
    }
    return;
  }
  // At depth d the candidate's d-th item is hashed; it can be any remaining
  // transaction item that still leaves enough items to finish the candidate.
  size_t remaining_needed = itemset_length_ - depth - 1;
  size_t limit = txn.size() - remaining_needed;
  for (size_t p = start; p < limit; ++p) {
    int32_t child = node.children[HashItem(txn[p])];
    if (child >= 0) CountAt(child, depth + 1, txn, p + 1, counts);
  }
}

}  // namespace bbsmine
