// The candidate hash tree of the Apriori algorithm (Agrawal & Srikant,
// VLDB'94, Section 2.1.2): stores all length-k candidate itemsets and, for a
// given transaction, finds every stored candidate contained in it without
// enumerating the transaction's subsets.
//
// Interior nodes hash on one item; leaves hold candidate ids and split into
// interior nodes once they overflow (while items remain to hash on).

#ifndef BBSMINE_BASELINE_HASH_TREE_H_
#define BBSMINE_BASELINE_HASH_TREE_H_

#include <cstdint>
#include <vector>

#include "storage/transaction.h"

namespace bbsmine {

/// A hash tree over equal-length candidate itemsets.
class CandidateHashTree {
 public:
  /// `itemset_length` is k (all inserted candidates must have k items);
  /// `fanout` is the hash width of interior nodes; `leaf_capacity` is the
  /// split threshold.
  explicit CandidateHashTree(size_t itemset_length, size_t fanout = 32,
                             size_t leaf_capacity = 16);

  /// Inserts candidate `id` with the given (canonical) itemset. The itemset
  /// storage is borrowed: `items` must outlive the tree.
  void Insert(uint32_t id, const Itemset* items);

  /// For a canonical transaction, increments counts[id] for every stored
  /// candidate contained in the transaction.
  void CountSubsets(const Itemset& txn, std::vector<uint64_t>* counts) const;

  size_t size() const { return num_candidates_; }

 private:
  struct Node {
    bool is_leaf = true;
    // Leaf payload: candidate ids (indices into candidates_).
    std::vector<uint32_t> bucket;
    // Interior payload: child node index per hash value, -1 = absent.
    std::vector<int32_t> children;
  };

  size_t HashItem(ItemId item) const { return item % fanout_; }

  int32_t NewNode();
  void InsertAt(int32_t node_idx, size_t depth, uint32_t id);
  void SplitLeaf(int32_t node_idx, size_t depth);
  void CountAt(int32_t node_idx, size_t depth, const Itemset& txn,
               size_t start, std::vector<uint64_t>* counts) const;

  size_t itemset_length_;
  size_t fanout_;
  size_t leaf_capacity_;
  size_t num_candidates_ = 0;
  std::vector<Node> nodes_;
  std::vector<const Itemset*> candidate_items_;  // indexed by candidate id

  // Per-transaction dedup: a transaction can reach the same leaf through
  // several hash paths; a candidate is counted once per epoch. Mutable
  // because CountSubsets is logically const. Not thread-safe.
  mutable std::vector<uint64_t> mark_;
  mutable uint64_t epoch_ = 0;
};

}  // namespace bbsmine

#endif  // BBSMINE_BASELINE_HASH_TREE_H_
