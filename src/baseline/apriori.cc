#include "baseline/apriori.h"

#include <algorithm>
#include <set>
#include <unordered_map>

#include "baseline/hash_tree.h"
#include "util/stopwatch.h"

namespace bbsmine {

namespace {

/// Lexicographic order used for the join step.
bool LexLess(const Itemset& a, const Itemset& b) { return a < b; }

/// True iff every (k-1)-subset of `candidate` appears in the sorted
/// `frequent` list (the Apriori prune).
bool AllSubsetsFrequent(const Itemset& candidate,
                        const std::vector<Itemset>& frequent) {
  Itemset subset;
  subset.reserve(candidate.size() - 1);
  for (size_t skip = 0; skip < candidate.size(); ++skip) {
    subset.clear();
    for (size_t i = 0; i < candidate.size(); ++i) {
      if (i != skip) subset.push_back(candidate[i]);
    }
    if (!std::binary_search(frequent.begin(), frequent.end(), subset,
                            LexLess)) {
      return false;
    }
  }
  return true;
}

/// Approximate resident bytes of one candidate during counting (itemset,
/// counter, hash-tree overhead).
uint64_t CandidateBytes(const Itemset& items) {
  return 48 + 4 * static_cast<uint64_t>(items.size());
}

}  // namespace

std::vector<Itemset> AprioriGenerateCandidates(
    const std::vector<Itemset>& frequent) {
  std::vector<Itemset> candidates;
  if (frequent.empty()) return candidates;
  size_t k = frequent[0].size();

  // Join: pairs sharing the first k-1 items, in lexicographic order. Within
  // a shared-prefix block, every ordered pair (i, j), i < j, joins.
  for (size_t block_start = 0; block_start < frequent.size();) {
    size_t block_end = block_start + 1;
    while (block_end < frequent.size() &&
           std::equal(frequent[block_start].begin(),
                      frequent[block_start].end() - (k > 0 ? 1 : 0),
                      frequent[block_end].begin(),
                      frequent[block_end].end() - (k > 0 ? 1 : 0))) {
      ++block_end;
    }
    for (size_t i = block_start; i < block_end; ++i) {
      for (size_t j = i + 1; j < block_end; ++j) {
        Itemset candidate = frequent[i];
        candidate.push_back(frequent[j].back());
        if (AllSubsetsFrequent(candidate, frequent)) {
          candidates.push_back(std::move(candidate));
        }
      }
    }
    block_start = block_end;
  }
  return candidates;
}

MiningResult MineApriori(const TransactionDatabase& db,
                         const AprioriConfig& config) {
  Stopwatch total_timer;
  MiningResult result;
  MineStats& stats = result.stats;
  uint64_t tau = AbsoluteThreshold(config.min_support, db.size());

  // --- Pass 1: frequent 1-itemsets ----------------------------------------
  std::unordered_map<ItemId, uint64_t> item_counts;
  ++stats.db_scans;
  db.ForEach(&stats.io, [&](const Transaction& txn) {
    for (ItemId item : txn.items) ++item_counts[item];
  });

  std::vector<Itemset> level;  // L_k, lexicographically sorted
  for (const auto& [item, count] : item_counts) {
    if (count >= tau) {
      level.push_back(Itemset{item});
      result.patterns.push_back(Pattern{Itemset{item}, count});
    }
  }
  std::sort(level.begin(), level.end(), LexLess);
  stats.candidates += item_counts.size();

  // --- Pass 2 fast path: triangular pair-count array ------------------------
  // C2 is the full cross product of L1; materializing it in a hash tree is
  // the classic Apriori bottleneck. When the count matrix fits in memory we
  // count all pairs directly in one scan (Agrawal & Srikant's second-pass
  // optimization). Otherwise the generic batched hash-tree path below
  // handles level 2 like any other level.
  size_t n1 = level.size();
  uint64_t tri_cells = n1 * (n1 - 1) / 2;
  uint64_t tri_bytes = tri_cells * sizeof(uint32_t);
  bool pair_fast_path =
      config.use_pair_count_matrix && n1 >= 2 && tri_bytes <= (1ull << 28) &&
      (config.memory_budget_bytes == 0 ||
       tri_bytes <= config.memory_budget_bytes);
  if (pair_fast_path) {
    std::unordered_map<ItemId, uint32_t> rank;
    std::vector<ItemId> f1(n1);
    for (size_t i = 0; i < n1; ++i) {
      f1[i] = level[i][0];
      rank.emplace(f1[i], static_cast<uint32_t>(i));
    }
    std::vector<uint32_t> tri(tri_cells, 0);
    auto cell = [n1](size_t i, size_t j) {
      return i * (2 * n1 - i - 1) / 2 + (j - i - 1);
    };
    stats.candidates += tri_cells;
    ++stats.db_scans;
    std::vector<uint32_t> ranks;
    db.ForEach(&stats.io, [&](const Transaction& txn) {
      ranks.clear();
      for (ItemId item : txn.items) {
        auto it = rank.find(item);
        if (it != rank.end()) ranks.push_back(it->second);
      }
      for (size_t a = 0; a < ranks.size(); ++a) {
        for (size_t b = a + 1; b < ranks.size(); ++b) {
          ++tri[cell(ranks[a], ranks[b])];
        }
      }
    });

    std::vector<Itemset> l2;
    for (size_t i = 0; i < n1; ++i) {
      for (size_t j = i + 1; j < n1; ++j) {
        uint32_t count = tri[cell(i, j)];
        if (count >= tau) {
          Itemset pair = {f1[i], f1[j]};
          l2.push_back(pair);
          result.patterns.push_back(Pattern{std::move(pair), count});
        }
      }
    }
    std::sort(l2.begin(), l2.end(), LexLess);
    level = std::move(l2);
  }

  // --- Passes 2..k (generic hash-tree counting) -----------------------------
  while (!level.empty()) {
    std::vector<Itemset> candidates = AprioriGenerateCandidates(level);
    if (candidates.empty()) break;
    stats.candidates += candidates.size();
    size_t k = candidates[0].size();

    std::vector<Itemset> next_level;
    size_t begin = 0;
    while (begin < candidates.size()) {
      // One memory batch; one database scan per batch.
      size_t end = begin;
      uint64_t used = 0;
      while (end < candidates.size()) {
        uint64_t bytes = CandidateBytes(candidates[end]);
        if (config.memory_budget_bytes != 0 && end > begin &&
            used + bytes > config.memory_budget_bytes) {
          break;
        }
        used += bytes;
        ++end;
      }

      // Size the interior fanout to the batch so leaves stay shallow: with
      // fanout ~ sqrt(|batch|), two interior levels spread the candidates
      // thin. A fixed small fanout would degenerate into long leaf scans
      // for the (huge) C2 level.
      size_t fanout = 32;
      while (fanout * fanout < end - begin && fanout < 8192) fanout *= 2;
      CandidateHashTree tree(k, fanout);
      for (size_t c = begin; c < end; ++c) {
        tree.Insert(static_cast<uint32_t>(c - begin), &candidates[c]);
      }
      std::vector<uint64_t> counts(end - begin, 0);
      ++stats.db_scans;
      db.ForEach(&stats.io, [&](const Transaction& txn) {
        tree.CountSubsets(txn.items, &counts);
      });

      for (size_t c = begin; c < end; ++c) {
        if (counts[c - begin] >= tau) {
          next_level.push_back(candidates[c]);
          result.patterns.push_back(
              Pattern{std::move(candidates[c]), counts[c - begin]});
        }
      }
      begin = end;
    }

    std::sort(next_level.begin(), next_level.end(), LexLess);
    level = std::move(next_level);
  }

  stats.total_seconds = total_timer.ElapsedSeconds();
  return result;
}

}  // namespace bbsmine
