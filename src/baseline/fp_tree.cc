#include "baseline/fp_tree.h"

#include <algorithm>
#include <cassert>
#include <unordered_map>

#include "util/stopwatch.h"

namespace bbsmine {

void FpTree::InsertPath(const std::vector<ItemId>& path, uint64_t count) {
  int32_t current = 0;  // root
  for (ItemId item : path) {
    auto& children = nodes_[current].children;
    auto it = std::lower_bound(
        children.begin(), children.end(), item,
        [](const std::pair<ItemId, int32_t>& child, ItemId key) {
          return child.first < key;
        });
    if (it != children.end() && it->first == item) {
      current = it->second;
    } else {
      int32_t fresh = static_cast<int32_t>(nodes_.size());
      // Note: taking `it` before emplace_back is safe because `children`
      // belongs to nodes_[current], which emplace_back may reallocate —
      // so re-acquire after the mutation.
      size_t child_pos = static_cast<size_t>(it - children.begin());
      nodes_.emplace_back();
      nodes_[fresh].item = item;
      nodes_[fresh].parent = current;
      auto& children_after = nodes_[current].children;
      children_after.insert(children_after.begin() + child_pos,
                            {item, fresh});
      current = fresh;
    }
    nodes_[current].count += count;
  }
}

void FpTree::BuildHeader(const std::vector<ItemId>& order) {
  header_.clear();
  header_.reserve(order.size());
  std::unordered_map<ItemId, size_t> slot;
  for (ItemId item : order) {
    slot.emplace(item, header_.size());
    header_.push_back(HeaderEntry{item, 0, -1});
  }
  // Chain nodes in arena order; arena order is irrelevant to correctness
  // because conditional pattern bases read whole chains.
  for (size_t idx = nodes_.size(); idx-- > 1;) {
    Node& node = nodes_[idx];
    auto it = slot.find(node.item);
    assert(it != slot.end());
    HeaderEntry& entry = header_[it->second];
    node.next_same_item = entry.head;
    entry.head = static_cast<int32_t>(idx);
    entry.total += node.count;
  }
}

bool FpTree::IsSinglePath() const {
  int32_t current = 0;
  while (true) {
    const Node& node = nodes_[current];
    if (node.children.empty()) return true;
    if (node.children.size() > 1) return false;
    current = node.children[0].second;
  }
}

uint64_t FpTree::MemoryBytes() const {
  // item + count + parent + next + children vector header/entries.
  uint64_t bytes = 0;
  for (const Node& node : nodes_) {
    bytes += sizeof(Node) + node.children.capacity() * sizeof(std::pair<ItemId, int32_t>);
  }
  return bytes;
}

namespace {

/// Recursive FP-growth.
class FpGrowthMiner {
 public:
  FpGrowthMiner(uint64_t tau, std::vector<Pattern>* out)
      : tau_(tau), out_(out) {}

  void Mine(const FpTree& tree, Itemset* suffix) {
    if (tree.IsSinglePath()) {
      MineSinglePath(tree, suffix);
      return;
    }
    // Process header items from least frequent to most frequent.
    const auto& header = tree.header();
    for (size_t h = header.size(); h-- > 0;) {
      const FpTree::HeaderEntry& entry = header[h];
      if (entry.total < tau_) continue;

      suffix->push_back(entry.item);
      Emit(*suffix, entry.total);

      // Conditional pattern base: prefix paths of every node of this item.
      std::unordered_map<ItemId, uint64_t> conditional_counts;
      for (int32_t n = entry.head; n >= 0; n = tree.node(n).next_same_item) {
        uint64_t count = tree.node(n).count;
        for (int32_t p = tree.node(n).parent; p > 0;
             p = tree.node(p).parent) {
          conditional_counts[tree.node(p).item] += count;
        }
      }
      // Conditional frequent items, ordered by descending conditional count
      // (ties by item id for determinism).
      std::vector<std::pair<uint64_t, ItemId>> ranked;
      for (const auto& [item, count] : conditional_counts) {
        if (count >= tau_) ranked.push_back({count, item});
      }
      if (!ranked.empty()) {
        std::sort(ranked.begin(), ranked.end(),
                  [](const auto& a, const auto& b) {
                    if (a.first != b.first) return a.first > b.first;
                    return a.second < b.second;
                  });
        std::unordered_map<ItemId, size_t> rank;
        std::vector<ItemId> order;
        order.reserve(ranked.size());
        for (const auto& [count, item] : ranked) {
          rank.emplace(item, order.size());
          order.push_back(item);
        }

        FpTree conditional;
        std::vector<ItemId> path;
        for (int32_t n = entry.head; n >= 0;
             n = tree.node(n).next_same_item) {
          uint64_t count = tree.node(n).count;
          path.clear();
          for (int32_t p = tree.node(n).parent; p > 0;
               p = tree.node(p).parent) {
            if (rank.contains(tree.node(p).item)) {
              path.push_back(tree.node(p).item);
            }
          }
          if (path.empty()) continue;
          // The walk collected the path leaf-to-root; tree order is rank
          // order (most frequent first).
          std::sort(path.begin(), path.end(), [&](ItemId a, ItemId b) {
            return rank.at(a) < rank.at(b);
          });
          conditional.InsertPath(path, count);
        }
        conditional.BuildHeader(order);
        Mine(conditional, suffix);
      }
      suffix->pop_back();
    }
  }

 private:
  /// Single-path shortcut: every combination of the path's nodes, joined
  /// with the suffix, is frequent; its support is the count of its deepest
  /// node.
  void MineSinglePath(const FpTree& tree, Itemset* suffix) {
    std::vector<std::pair<ItemId, uint64_t>> path;
    int32_t current = 0;
    while (!tree.node(current).children.empty()) {
      current = tree.node(current).children[0].second;
      const FpTree::Node& node = tree.node(current);
      if (node.count >= tau_) path.push_back({node.item, node.count});
    }
    EnumeratePath(path, 0, 0, suffix);
  }

  void EnumeratePath(const std::vector<std::pair<ItemId, uint64_t>>& path,
                     size_t idx, uint64_t support, Itemset* suffix) {
    if (idx == path.size()) return;
    // Either skip path[idx]...
    EnumeratePath(path, idx + 1, support, suffix);
    // ...or take it: the deepest taken node bounds the support.
    suffix->push_back(path[idx].first);
    Emit(*suffix, path[idx].second);
    EnumeratePath(path, idx + 1, path[idx].second, suffix);
    suffix->pop_back();
  }

  void Emit(const Itemset& items, uint64_t support) {
    Pattern pattern;
    pattern.items = items;
    Canonicalize(&pattern.items);
    pattern.support = support;
    out_->push_back(std::move(pattern));
  }

  uint64_t tau_;
  std::vector<Pattern>* out_;
};

}  // namespace

MiningResult MineFpGrowth(const TransactionDatabase& db,
                          const FpGrowthConfig& config) {
  Stopwatch total_timer;
  MiningResult result;
  MineStats& stats = result.stats;
  uint64_t tau = AbsoluteThreshold(config.min_support, db.size());

  // --- Scan 1: global item counts ------------------------------------------
  std::unordered_map<ItemId, uint64_t> item_counts;
  ++stats.db_scans;
  db.ForEach(&stats.io, [&](const Transaction& txn) {
    for (ItemId item : txn.items) ++item_counts[item];
  });

  // F-list: frequent items by descending count (ties by ascending id).
  std::vector<std::pair<uint64_t, ItemId>> ranked;
  for (const auto& [item, count] : item_counts) {
    if (count >= tau) ranked.push_back({count, item});
  }
  std::sort(ranked.begin(), ranked.end(), [](const auto& a, const auto& b) {
    if (a.first != b.first) return a.first > b.first;
    return a.second < b.second;
  });
  std::unordered_map<ItemId, size_t> rank;
  std::vector<ItemId> order;
  order.reserve(ranked.size());
  for (const auto& [count, item] : ranked) {
    rank.emplace(item, order.size());
    order.push_back(item);
  }

  // --- Scan 2: build the FP-tree -------------------------------------------
  FpTree tree;
  std::vector<ItemId> path;
  ++stats.db_scans;
  db.ForEach(&stats.io, [&](const Transaction& txn) {
    path.clear();
    for (ItemId item : txn.items) {
      if (rank.contains(item)) path.push_back(item);
    }
    std::sort(path.begin(), path.end(),
              [&](ItemId a, ItemId b) { return rank.at(a) < rank.at(b); });
    tree.InsertPath(path, 1);
  });
  tree.BuildHeader(order);

  // Memory model: an FP-tree larger than the budget forces partitioned
  // construction — charged as additional full scans of the database.
  if (config.memory_budget_bytes != 0) {
    uint64_t tree_bytes = tree.MemoryBytes();
    if (tree_bytes > config.memory_budget_bytes) {
      uint64_t extra =
          (tree_bytes + config.memory_budget_bytes - 1) /
              config.memory_budget_bytes -
          1;
      for (uint64_t i = 0; i < extra; ++i) {
        ++stats.db_scans;
        db.ChargeFullScan(&stats.io);
        // Partitioned construction projects the database to disk and reads
        // the projections back: charge the projection writes too.
        stats.io.writes += BlocksFor(db.SerializedBytes(), 4096);
      }
    }
  }

  // --- FP-growth ------------------------------------------------------------
  Itemset suffix;
  FpGrowthMiner miner(tau, &result.patterns);
  miner.Mine(tree, &suffix);

  stats.candidates = result.patterns.size();
  stats.total_seconds = total_timer.ElapsedSeconds();
  return result;
}

}  // namespace bbsmine
