#include "baseline/eclat.h"

#include <algorithm>
#include <unordered_map>

#include "util/stopwatch.h"

namespace bbsmine {

namespace {

struct TidList {
  ItemId item = 0;
  std::vector<uint32_t> tids;  // ascending transaction positions
};

/// Depth-first extension with narrowed sibling lists: each node carries the
/// tid-lists of the extensions that stayed frequent at its parent.
class EclatWalk {
 public:
  EclatWalk(uint64_t tau, MineStats* stats, std::vector<Pattern>* out)
      : tau_(tau), stats_(stats), out_(out) {}

  void Recurse(std::vector<TidList>* siblings) {
    for (size_t i = 0; i < siblings->size(); ++i) {
      TidList& node = (*siblings)[i];
      current_.push_back(node.item);
      Itemset canonical = current_;
      Canonicalize(&canonical);
      out_->push_back(
          Pattern{std::move(canonical), node.tids.size(), SupportKind::kExact});
      ++stats_->candidates;

      std::vector<TidList> children;
      for (size_t j = i + 1; j < siblings->size(); ++j) {
        ++stats_->extension_tests;
        TidList child;
        child.item = (*siblings)[j].item;
        std::set_intersection((*siblings)[j].tids.begin(),
                              (*siblings)[j].tids.end(), node.tids.begin(),
                              node.tids.end(),
                              std::back_inserter(child.tids));
        if (child.tids.size() >= tau_) children.push_back(std::move(child));
      }
      if (!children.empty()) Recurse(&children);
      current_.pop_back();
    }
  }

 private:
  uint64_t tau_;
  MineStats* stats_;
  std::vector<Pattern>* out_;
  Itemset current_;
};

}  // namespace

MiningResult MineEclat(const TransactionDatabase& db,
                       const EclatConfig& config) {
  Stopwatch total_timer;
  MiningResult result;
  MineStats& stats = result.stats;
  uint64_t tau = AbsoluteThreshold(config.min_support, db.size());

  // One scan builds the vertical representation.
  std::unordered_map<ItemId, std::vector<uint32_t>> vertical;
  ++stats.db_scans;
  uint32_t position = 0;
  db.ForEach(&stats.io, [&](const Transaction& txn) {
    for (ItemId item : txn.items) vertical[item].push_back(position);
    ++position;
  });

  // Frequent singletons, ordered by ascending support (narrow-tree order).
  std::vector<TidList> roots;
  for (auto& [item, tids] : vertical) {
    stats.extension_tests++;
    if (tids.size() >= tau) roots.push_back(TidList{item, std::move(tids)});
  }
  std::sort(roots.begin(), roots.end(), [](const TidList& a, const TidList& b) {
    if (a.tids.size() != b.tids.size()) return a.tids.size() < b.tids.size();
    return a.item < b.item;
  });

  EclatWalk(tau, &stats, &result.patterns).Recurse(&roots);
  stats.total_seconds = total_timer.ElapsedSeconds();
  return result;
}

}  // namespace bbsmine
