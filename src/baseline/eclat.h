// Eclat (Zaki, 1997/2000): exact vertical frequent-itemset mining by
// tid-list intersection.
//
// Not one of the paper's baselines, but the natural exact counterpart of
// the BBS filter walk — BBS bit-slices are a lossy, fixed-width compression
// of exactly the vertical representation Eclat materializes in full. The
// ablation benches compare the two to quantify what the lossy encoding buys
// (memory) and costs (refinement).

#ifndef BBSMINE_BASELINE_ECLAT_H_
#define BBSMINE_BASELINE_ECLAT_H_

#include "core/mining_types.h"
#include "storage/transaction_db.h"

namespace bbsmine {

/// Tuning knobs for an Eclat run.
struct EclatConfig {
  /// Minimum support as a fraction of the number of transactions.
  double min_support = 0.003;
};

/// Mines all frequent patterns of `db` with Eclat. Supports are exact; one
/// database scan builds the vertical representation.
MiningResult MineEclat(const TransactionDatabase& db,
                       const EclatConfig& config);

}  // namespace bbsmine

#endif  // BBSMINE_BASELINE_ECLAT_H_
