// The FP-tree and FP-growth algorithm (Han, Pei & Yin, SIGMOD'00) — the
// paper's second baseline, denoted FPS in Section 4.
//
// The FP-tree is a prefix tree of transactions restricted to frequent items,
// with items ordered by descending global frequency; a header table links
// together all nodes of the same item. FP-growth mines the complete set of
// frequent patterns by recursively building conditional FP-trees from the
// prefix paths of each item, with the single-path shortcut.
//
// As the paper emphasizes, the FP-tree is *not* dynamic: it must be rebuilt
// from scratch whenever the database changes, and its construction (two full
// database scans) is charged as part of every mining run.

#ifndef BBSMINE_BASELINE_FP_TREE_H_
#define BBSMINE_BASELINE_FP_TREE_H_

#include <cstdint>
#include <vector>

#include "core/mining_types.h"
#include "storage/transaction_db.h"

namespace bbsmine {

/// An in-memory FP-tree. Nodes live in an arena indexed by int32.
class FpTree {
 public:
  struct Node {
    ItemId item = 0;
    uint64_t count = 0;
    int32_t parent = -1;
    int32_t next_same_item = -1;  // header-table chain
    // Children sorted by item for binary search.
    std::vector<std::pair<ItemId, int32_t>> children;
  };

  /// One header-table row: an item, its total count in the tree, and the
  /// head of its node chain.
  struct HeaderEntry {
    ItemId item = 0;
    uint64_t total = 0;
    int32_t head = -1;
  };

  FpTree() { nodes_.emplace_back(); /* root */ }

  /// Inserts a path of items (already filtered to frequent items and sorted
  /// in tree order) with the given count.
  void InsertPath(const std::vector<ItemId>& path, uint64_t count);

  /// Finalizes the header table. `order` lists the tree's items in the
  /// insertion order used by InsertPath (most frequent first); entries are
  /// produced in that order. Call once after all InsertPath calls.
  void BuildHeader(const std::vector<ItemId>& order);

  const std::vector<HeaderEntry>& header() const { return header_; }
  const Node& node(int32_t idx) const { return nodes_[idx]; }
  size_t num_nodes() const { return nodes_.size(); }

  /// True if the tree consists of a single path from the root.
  bool IsSinglePath() const;

  /// Approximate resident bytes of the tree (memory-model input).
  uint64_t MemoryBytes() const;

 private:
  std::vector<Node> nodes_;
  std::vector<HeaderEntry> header_;
};

/// Tuning knobs for an FP-growth run.
struct FpGrowthConfig {
  /// Minimum support as a fraction of the number of transactions.
  double min_support = 0.003;

  /// Memory budget in bytes; 0 = unlimited. When the FP-tree exceeds the
  /// budget the run charges extra database scans, modeling the partitioned
  /// construction the FP-tree paper prescribes for small memories (and which
  /// this paper's Section 4.7 exercises).
  uint64_t memory_budget_bytes = 0;
};

/// Mines all frequent patterns of `db` with FP-growth. Supports are exact.
MiningResult MineFpGrowth(const TransactionDatabase& db,
                          const FpGrowthConfig& config);

}  // namespace bbsmine

#endif  // BBSMINE_BASELINE_FP_TREE_H_
