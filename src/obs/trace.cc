#include "obs/trace.h"

#include <cinttypes>
#include <cstdio>

#include "obs/json.h"
#include "util/file_io.h"

namespace bbsmine::obs {

const char* TraceCategoryName(TraceCategory category) {
  switch (category) {
    case kTracePhase:
      return "phase";
    case kTraceFilter:
      return "filter";
    case kTraceRefine:
      return "refine";
    case kTraceProbe:
      return "probe";
    case kTraceKernel:
      return "kernel";
    case kTraceRequest:
      return "request";
    case kTraceQueue:
      return "queue";
    case kTraceBatch:
      return "batch";
    case kTraceSegment:
      return "segment";
    default:
      return "other";
  }
}

uint32_t Tracer::TidOfCurrentThread() {
  auto [it, inserted] =
      tids_.emplace(std::this_thread::get_id(),
                    static_cast<uint32_t>(tids_.size() + 1));
  (void)inserted;
  return it->second;
}

void Tracer::AddComplete(TraceCategory category, const char* name,
                         double ts_us, double dur_us, std::string args_json) {
  std::lock_guard<std::mutex> lock(mu_);
  events_.push_back(Event{name, category, ts_us, dur_us,
                          TidOfCurrentThread(), std::move(args_json)});
}

size_t Tracer::event_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_.size();
}

std::string Tracer::ToJsonString() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  out.reserve(events_.size() * 120 + 256);
  out += "{\n\"traceEvents\": [\n";
  char buf[160];
  for (size_t i = 0; i < events_.size(); ++i) {
    const Event& e = events_[i];
    out += "{\"name\": \"";
    out += JsonEscape(e.name);
    out += "\", \"cat\": \"";
    out += TraceCategoryName(e.category);
    std::snprintf(buf, sizeof(buf),
                  "\", \"ph\": \"X\", \"ts\": %.3f, \"dur\": %.3f, "
                  "\"pid\": 1, \"tid\": %" PRIu32,
                  e.ts_us, e.dur_us, e.tid);
    out += buf;
    if (!e.args_json.empty()) {
      out += ", \"args\": {";
      out += e.args_json;
      out += "}";
    }
    out += "}";
    if (i + 1 < events_.size()) out += ",";
    out += "\n";
  }
  out += "],\n\"displayTimeUnit\": \"ms\"\n}\n";
  return out;
}

Status Tracer::WriteJson(const std::string& path) const {
  return WriteBinaryFile(path, ToJsonString());
}

void TraceSpan::AddArg(const char* key, uint64_t value) {
  if (tracer_ == nullptr) return;
  char buf[64];
  std::snprintf(buf, sizeof(buf), "\"%s\": %" PRIu64, key, value);
  if (!args_json_.empty()) args_json_ += ", ";
  args_json_ += buf;
}

void TraceSpan::AddArg(const char* key, const char* value) {
  if (tracer_ == nullptr) return;
  if (!args_json_.empty()) args_json_ += ", ";
  args_json_ += '"';
  args_json_ += key;
  args_json_ += "\": \"";
  args_json_ += JsonEscape(value);
  args_json_ += '"';
}

}  // namespace bbsmine::obs
