// Phase/span tracing for the mining engine, in Chrome trace-event format.
//
// A Tracer collects "complete" events (name, category, start timestamp,
// duration, thread id, optional args) and writes them as a Chrome
// trace-event JSON document — load the file at chrome://tracing or
// https://ui.perfetto.dev to see where wall time goes inside the parallel
// engine: which root subtrees dominate the filter walk, how refinement
// batches interleave, how probe fetches cluster per worker.
//
// Tracing is strictly passive: spans read the clock and append to a buffer;
// they never touch mining state, so the mined patterns and every counter
// are bit-identical with tracing on or off (pinned by miner tests).
//
// Cost model: a null Tracer* costs one branch per would-be span. An enabled
// tracer costs one steady_clock read at span open and a mutex-guarded
// append at span close. The per-kernel-call category (kTraceKernel) is too
// hot for the default and must be opted into.
//
// Thread safety: AddComplete may be called from any thread; thread ids are
// registered on first use and numbered in registration order.

#ifndef BBSMINE_OBS_TRACE_H_
#define BBSMINE_OBS_TRACE_H_

#include <chrono>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "util/status.h"

namespace bbsmine::obs {

/// Span categories, used both to filter recording (Tracer category mask)
/// and as the "cat" field of the emitted events.
enum TraceCategory : uint32_t {
  kTracePhase = 1u << 0,   // top-level phases: prepare, filter, refine
  kTraceFilter = 1u << 1,  // per-root filter-walk subtrees
  kTraceRefine = 1u << 2,  // refinement batches / postprocessing
  kTraceProbe = 1u << 3,   // per-candidate probe fetches
  kTraceKernel = 1u << 4,  // per-CountItemSet kernel calls (hot; opt-in)

  // Service (bbsmined) categories: one span per sampled request, its
  // admission-to-batch queue wait, the scheduler batch that answered it,
  // and the per-(query, segment) fan-out cells of that batch. Correlated
  // by "trace_id" / "batch" args rather than nesting, since the spans land
  // on different threads (connection, dispatcher, pool workers).
  kTraceRequest = 1u << 5,  // whole-request spans in Server::Handle
  kTraceQueue = 1u << 6,    // scheduler admission queue wait
  kTraceBatch = 1u << 7,    // scheduler batch execution
  kTraceSegment = 1u << 8,  // per-(query, segment) count cells

  kTraceDefault = kTracePhase | kTraceFilter | kTraceRefine | kTraceProbe,
  kTraceService = kTraceRequest | kTraceQueue | kTraceBatch | kTraceSegment,
  kTraceAll = 0xffffffffu,
};

const char* TraceCategoryName(TraceCategory category);

/// Collects trace events and serializes them as Chrome trace-event JSON.
class Tracer {
 public:
  explicit Tracer(uint32_t categories = kTraceDefault)
      : categories_(categories), epoch_(Clock::now()) {}

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  bool enabled(TraceCategory category) const {
    return (categories_ & category) != 0;
  }

  /// Microseconds since tracer construction (the trace time base).
  double NowMicros() const {
    return std::chrono::duration<double, std::micro>(Clock::now() - epoch_)
        .count();
  }

  /// Records one complete ("ph":"X") event on the calling thread.
  /// `args_json` is either empty or the inner text of a JSON object,
  /// e.g. "\"root\": 3, \"candidates\": 17".
  void AddComplete(TraceCategory category, const char* name, double ts_us,
                   double dur_us, std::string args_json = std::string());

  size_t event_count() const;

  /// The full trace document: {"traceEvents": [...], ...}.
  std::string ToJsonString() const;

  /// Writes ToJsonString() to `path`.
  Status WriteJson(const std::string& path) const;

 private:
  using Clock = std::chrono::steady_clock;

  struct Event {
    const char* name;  // static strings only
    TraceCategory category;
    double ts_us;
    double dur_us;
    uint32_t tid;
    std::string args_json;
  };

  uint32_t TidOfCurrentThread();  // requires mu_ held

  const uint32_t categories_;
  const Clock::time_point epoch_;
  mutable std::mutex mu_;
  std::vector<Event> events_;
  std::map<std::thread::id, uint32_t> tids_;
};

/// RAII span: opens at construction, records at destruction. With a null
/// tracer or a disabled category the span is fully inert.
class TraceSpan {
 public:
  TraceSpan(Tracer* tracer, TraceCategory category, const char* name)
      : tracer_(tracer != nullptr && tracer->enabled(category) ? tracer
                                                               : nullptr),
        category_(category),
        name_(name),
        start_us_(tracer_ != nullptr ? tracer_->NowMicros() : 0) {}

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  /// Attaches a numeric argument to the event (shown in the trace viewer).
  void AddArg(const char* key, uint64_t value);
  void AddArg(const char* key, const char* value);

  bool armed() const { return tracer_ != nullptr; }

  ~TraceSpan() {
    if (tracer_ != nullptr) {
      tracer_->AddComplete(category_, name_, start_us_,
                           tracer_->NowMicros() - start_us_,
                           std::move(args_json_));
    }
  }

 private:
  Tracer* tracer_;
  TraceCategory category_;
  const char* name_;
  double start_us_;
  std::string args_json_;
};

}  // namespace bbsmine::obs

#endif  // BBSMINE_OBS_TRACE_H_
