// Machine-readable run reports for mining runs.
//
// A run report is the schema-versioned JSON document behind
// `bbsmine_cli --stats-json=out.json`: one object that captures everything
// needed to interpret (and regression-check) a mining run — the scheme and
// configuration, the workload shape, the selected SIMD kernel and thread
// count, every MineStats / IoStats counter, the buffer-pool hit rate, the
// per-depth candidate / prune / false-drop histograms, and the paper's
// false-drop ratio. The bench harness reuses the same serializer so CLI
// output and bench output never drift apart.
//
// The metric catalog lives in exactly one place: report.cc registers every
// exported MineStats/IoStats field in a MetricsRegistry and renders both
// the JSON "metrics" section and the human table from that one snapshot.
//
// Counters round-trip exactly: integers serialize as integers, doubles
// with %.17g, and StatsFromReport() reconstructs a MineStats that compares
// == to the in-memory one (pinned by run_report_test).

#ifndef BBSMINE_OBS_REPORT_H_
#define BBSMINE_OBS_REPORT_H_

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "core/mining_types.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "util/status.h"

namespace bbsmine::obs {

/// Version of the run-report JSON schema. Bump on any breaking change to
/// field names or nesting; docs/OBSERVABILITY.md documents each version.
inline constexpr int64_t kRunReportSchemaVersion = 1;

/// Run-level facts that live outside MiningResult.
struct RunReportContext {
  /// Scheme name ("SFS", "SFP", "DFS", "DFP", or a bench label).
  std::string scheme;
  /// The configuration the run used. Not owned; must outlive the call.
  const MineConfig* config = nullptr;
  uint64_t num_transactions = 0;
  uint32_t item_universe = 0;
  /// Absolute support threshold tau derived from min_support.
  uint64_t tau = 0;
  /// Worker threads actually used (num_threads == 0 resolves to hardware).
  uint32_t resolved_threads = 1;
  /// Selected SIMD kernel (kernels::ActiveName()).
  std::string kernel;
  /// BBS geometry: signature width in bits and hash count.
  uint32_t index_bits = 0;
  uint32_t index_hashes = 0;
  /// SliceSource backend serving the index ("resident" or "mmap").
  std::string index_backend = "resident";
  /// Heap bytes pinned by the index's slice data (0 for mmap).
  uint64_t resident_slice_bytes = 0;
  /// Page faults incurred during the run (getrusage deltas): the
  /// real-memory signal for mmap-backed runs that heap accounting misses.
  uint64_t minor_faults = 0;
  uint64_t major_faults = 0;
};

/// Builds the schema-versioned run report for one finished mining run.
JsonValue BuildRunReport(const RunReportContext& ctx,
                         const MiningResult& result);

/// Reconstructs the MineStats embedded in a run report. Inverse of
/// BuildRunReport for the "metrics" section: the returned stats compare
/// equal (operator==) to the stats the report was built from.
/// Fails with kCorruption when the document is not a run report or has an
/// unsupported schema_version.
Result<MineStats> StatsFromReport(const JsonValue& report);

/// Renders the report as an aligned human-readable table (util/table).
void PrintRunReportTable(const JsonValue& report, std::ostream& out);

/// Renders a metric snapshot as the sectioned "metrics" object of a run
/// report: a sample named "section.field" lands at metrics.section.field
/// (sections created in first-use order), histograms render as
/// {by_depth, overflow, total}, real-valued samples as doubles. Shared by
/// BuildRunReport and the service-layer report so the two documents never
/// drift in shape.
JsonValue MetricsSectionJson(const std::vector<MetricSample>& samples);

}  // namespace bbsmine::obs

#endif  // BBSMINE_OBS_REPORT_H_
