// Metrics primitives for the mining engine's observability layer.
//
// The paper's whole evaluation is a story told through counters (false
// drops, certified candidates, probe fetches, simulated I/O), so counters
// are first-class here:
//
//  * DepthHistogram — a fixed-bucket histogram keyed by itemset size
//    (depth), used for the per-depth candidate / prune / false-drop
//    breakdowns the run report exposes. Plain data, merged with +=, so it
//    composes with the engine's deterministic per-root shard merge.
//
//  * MetricsRegistry — a named catalog of counters, gauges, and
//    fixed-bucket histograms. Hot paths never look anything up by name:
//    registration returns a dense slot id, and per-thread MetricsShards
//    update plain arrays with no synchronization. Shards are merged into
//    the registry at explicit merge points, in shard-creation order, so the
//    aggregate is deterministic whenever the per-shard values are —
//    matching the bit-identical guarantee of the parallel mining engine.
//
// The mining engine itself keeps its counters in MineStats/IoStats (those
// structs *are* its per-worker shards: one per root subtree, merged in root
// order). The registry is the naming and export layer above them: the run
// report (obs/report.h) registers every MineStats/IoStats field as a named
// view and renders the snapshot as JSON and as a table, so the metric
// catalog exists in exactly one place. Components without an engine-managed
// stats struct (thread pool queue depth, page cache residency) feed native
// registry metrics instead.

#ifndef BBSMINE_OBS_METRICS_H_
#define BBSMINE_OBS_METRICS_H_

#include <array>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "util/rng.h"

namespace bbsmine::obs {

/// Histogram over itemset sizes ("depth" of the enumeration walk).
/// Depths 1..kMaxTrackedDepth get one bucket each; anything deeper lands in
/// the shared overflow bucket. Fixed buckets keep merging trivial and the
/// JSON schema stable.
class DepthHistogram {
 public:
  static constexpr size_t kMaxTrackedDepth = 32;

  /// Records `n` observations at `depth` (>= 1; deeper than
  /// kMaxTrackedDepth goes to the overflow bucket, depth 0 is ignored).
  void Add(size_t depth, uint64_t n = 1) {
    if (depth == 0) return;
    if (depth > kMaxTrackedDepth) {
      counts_[0] += n;
    } else {
      counts_[depth] += n;
    }
  }

  /// Observations recorded at exactly `depth` (1-based).
  uint64_t at(size_t depth) const {
    return depth >= 1 && depth <= kMaxTrackedDepth ? counts_[depth] : 0;
  }

  uint64_t overflow() const { return counts_[0]; }

  uint64_t total() const {
    uint64_t sum = 0;
    for (uint64_t c : counts_) sum += c;
    return sum;
  }

  /// Largest depth with a non-zero bucket (0 when empty; the overflow
  /// bucket does not count).
  size_t MaxNonZeroDepth() const {
    for (size_t d = kMaxTrackedDepth; d >= 1; --d) {
      if (counts_[d] != 0) return d;
    }
    return 0;
  }

  DepthHistogram& operator+=(const DepthHistogram& other) {
    for (size_t i = 0; i < counts_.size(); ++i) counts_[i] += other.counts_[i];
    return *this;
  }

  bool operator==(const DepthHistogram& other) const {
    return counts_ == other.counts_;
  }

 private:
  // counts_[0] is the overflow bucket; counts_[d] is depth d.
  std::array<uint64_t, kMaxTrackedDepth + 1> counts_{};
};

/// Maps a non-negative magnitude (a latency in microseconds, a batch size)
/// to a DepthHistogram bucket: bucket 1 holds [0, 2) — zero shares the
/// lowest bucket, since bucket 0 is the overflow slot — and bucket d >= 2
/// holds [2^(d-1), 2^d), so a 32-bucket histogram spans five nines of
/// dynamic range. Log2BucketLowerBound/UpperBound are the same contract in
/// the other direction (the percentile estimator interpolates between
/// them). The service layer registers its latency and batch-size
/// histograms this way; the fixed log2 buckets keep the run-report schema
/// identical to the depth-keyed histograms.
inline size_t Log2Bucket(uint64_t v) {
  return v == 0 ? 1 : static_cast<size_t>(std::bit_width(v));
}

/// Smallest magnitude mapping to log2 bucket `d` (>= 1): 0 for bucket 1,
/// 2^(d-1) otherwise.
inline uint64_t Log2BucketLowerBound(size_t d) {
  return d <= 1 ? 0 : uint64_t{1} << (d - 1);
}

/// One past the largest magnitude mapping to log2 bucket `d`: 2^d.
inline uint64_t Log2BucketUpperBound(size_t d) { return uint64_t{1} << d; }

/// Estimates the q-quantile (q in [0, 1]) of the observations behind a
/// log2-bucketed histogram in MetricSample layout: buckets[0] is the
/// overflow count, buckets[d] for d >= 1 counts values in
/// [Log2BucketLowerBound(d), Log2BucketUpperBound(d)).
///
/// The c observations inside a bucket [lo, hi) are idealized as evenly
/// spaced starting at the lower bound — the j-th (0-based) sits at
/// lo + j*(hi-lo)/c — and the quantile is read at rank q*(N-1) with linear
/// interpolation between the two straddling idealized observations
/// (numpy-style). With one observation per bucket this reproduces the
/// bucket lower bounds exactly; in general the estimate is off by at most
/// a factor of the bucket width. Overflow observations are all placed at
/// the overflow lower bound 2^kMaxTrackedDepth (the histogram retains no
/// upper bound for them). Returns 0 for an empty histogram.
double PercentileFromLog2Buckets(const std::vector<uint64_t>& buckets,
                                 double q);

/// Fixed-capacity uniform sample of a latency stream (Vitter's
/// Algorithm R), for exact client-side percentiles without unbounded
/// memory. Deterministic given the seed and the observation order. Not
/// thread-safe; callers shard or lock.
class LatencyReservoir {
 public:
  explicit LatencyReservoir(size_t capacity, uint64_t seed = 1)
      : capacity_(capacity), rng_(seed) {
    samples_.reserve(capacity);
  }

  /// Records one observation; once `capacity` observations have been seen,
  /// each subsequent one replaces a random retained sample with
  /// probability capacity/count (Algorithm R), keeping the retained set a
  /// uniform sample of the whole stream.
  void Add(uint64_t v) {
    ++count_;
    if (v > max_) max_ = v;
    if (samples_.size() < capacity_) {
      samples_.push_back(v);
    } else if (capacity_ > 0) {
      uint64_t j = rng_.Uniform(count_);
      if (j < capacity_) samples_[j] = v;
    }
    sorted_ = false;
  }

  /// Observations seen (not retained).
  uint64_t count() const { return count_; }

  /// Largest observation seen — exact, tracked outside the sample.
  uint64_t max() const { return max_; }

  /// The q-quantile (q in [0, 1]) over the retained samples at rank
  /// q*(n-1) with linear interpolation; exact while count() <= capacity,
  /// a uniform-sample estimate after. Returns 0 when empty.
  double Quantile(double q);

 private:
  size_t capacity_;
  Rng rng_;
  std::vector<uint64_t> samples_;
  uint64_t count_ = 0;
  uint64_t max_ = 0;
  bool sorted_ = false;
};

/// What a registered metric measures; drives report formatting only.
enum class MetricKind : uint8_t { kCounter, kGauge, kHistogram };

/// Display unit of a metric value.
enum class Unit : uint8_t { kNone, kSeconds, kBlocks, kWords, kBytes };

const char* UnitName(Unit unit);

/// One aggregated metric value, as exported by MetricsRegistry::Snapshot.
struct MetricSample {
  std::string name;
  MetricKind kind = MetricKind::kCounter;
  Unit unit = Unit::kNone;
  uint64_t value = 0;                  // counter / gauge
  double real_value = 0;               // seconds metrics (kind kGauge)
  bool is_real = false;                // true => real_value carries the value
  std::vector<uint64_t> buckets;       // histogram: [0] = overflow, [d] = depth d
};

class MetricsRegistry;

/// A per-thread batch of metric updates. No locking: each worker owns one
/// shard exclusively and the registry merges them at a barrier. Counter and
/// histogram updates are additive; gauge updates keep the maximum
/// (watermark semantics), which is order-independent — so the merged
/// aggregate is identical for every schedule.
class MetricsShard {
 public:
  void Inc(size_t slot, uint64_t n = 1) { counters_[slot] += n; }
  void GaugeMax(size_t slot, uint64_t v) {
    if (v > counters_[slot]) counters_[slot] = v;
  }
  void Observe(size_t slot, size_t depth, uint64_t n = 1) {
    histograms_[slot].Add(depth, n);
  }

  uint64_t counter(size_t slot) const { return counters_[slot]; }
  const DepthHistogram& histogram(size_t slot) const {
    return histograms_[slot];
  }

 private:
  friend class MetricsRegistry;
  MetricsShard(size_t num_scalars, size_t num_histograms)
      : counters_(num_scalars, 0), histograms_(num_histograms) {}

  std::vector<uint64_t> counters_;  // counters and gauges share slot space
  std::vector<DepthHistogram> histograms_;
};

/// The named metric catalog. Register every metric up front (returns a
/// dense slot id), create one shard per worker, merge the shards at the
/// join point, snapshot for export. Registration is not thread-safe; shard
/// updates are wait-free per shard; Merge/Snapshot must not race updates.
class MetricsRegistry {
 public:
  /// Registers a monotonically increasing counter. Returns its slot.
  size_t AddCounter(std::string name, Unit unit = Unit::kNone);

  /// Registers a watermark gauge (merge keeps the maximum).
  size_t AddGauge(std::string name, Unit unit = Unit::kNone);

  /// Registers a depth histogram. Returns a slot in the histogram space
  /// (independent of the counter/gauge slot space).
  size_t AddHistogram(std::string name);

  /// Creates a shard sized for the current registration set. The registry
  /// owns it. Register all metrics before creating shards.
  MetricsShard* CreateShard();

  /// Folds every shard created so far into the aggregate, in creation
  /// order, and resets the shards. Deterministic given deterministic
  /// per-shard content.
  void MergeShards();

  // Direct (serial-context) updates against the aggregate.
  void Inc(size_t slot, uint64_t n = 1) { aggregate_.Inc(slot, n); }
  void GaugeMax(size_t slot, uint64_t v) { aggregate_.GaugeMax(slot, v); }
  void Observe(size_t slot, size_t depth, uint64_t n = 1) {
    aggregate_.Observe(slot, depth, n);
  }

  uint64_t counter(size_t slot) const { return aggregate_.counter(slot); }
  const DepthHistogram& histogram(size_t slot) const {
    return aggregate_.histogram(slot);
  }

  /// Exports every metric, in registration order.
  std::vector<MetricSample> Snapshot() const;

 private:
  struct Meta {
    std::string name;
    MetricKind kind;
    Unit unit;
    size_t slot;  // into the matching slot space
  };

  std::vector<Meta> metas_;
  size_t num_scalars_ = 0;
  size_t num_histograms_ = 0;
  MetricsShard aggregate_{0, 0};
  std::vector<std::unique_ptr<MetricsShard>> shards_;
};

}  // namespace bbsmine::obs

#endif  // BBSMINE_OBS_METRICS_H_
