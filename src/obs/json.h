// A minimal JSON document model for the observability layer.
//
// The run-report exporter (obs/report.h) and the phase tracer (obs/trace.h)
// emit machine-readable JSON, and the round-trip tests and CI schema checks
// need to read it back. This module provides the small shared piece: a JSON
// value that can be built programmatically, serialized, and parsed again
// without external dependencies.
//
// Numbers keep their lexical class: values written as integers serialize
// and re-parse as exact 64-bit integers (counters must round-trip exactly),
// while doubles serialize with enough digits (%.17g) to round-trip
// bit-exactly through strtod.

#ifndef BBSMINE_OBS_JSON_H_
#define BBSMINE_OBS_JSON_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "util/status.h"

namespace bbsmine::obs {

/// One JSON value: null, bool, number, string, array, or object.
/// Object member order is preserved (reports should read stably).
class JsonValue {
 public:
  enum class Kind : uint8_t {
    kNull,
    kBool,
    kInt,     // signed 64-bit integer (lexically integral)
    kUint,    // unsigned 64-bit integer that does not fit int64
    kDouble,  // any number with a fraction or exponent
    kString,
    kArray,
    kObject,
  };

  JsonValue() : kind_(Kind::kNull) {}
  static JsonValue Null() { return JsonValue(); }
  static JsonValue Bool(bool v);
  static JsonValue Int(int64_t v);
  static JsonValue Uint(uint64_t v);
  static JsonValue Double(double v);
  static JsonValue String(std::string v);
  static JsonValue Array();
  static JsonValue Object();

  Kind kind() const { return kind_; }
  bool is_number() const {
    return kind_ == Kind::kInt || kind_ == Kind::kUint || kind_ == Kind::kDouble;
  }

  // Accessors; the caller is responsible for checking kind() (an accessor of
  // the wrong kind returns a zero value rather than crashing, so schema
  // validation code can stay linear).
  bool AsBool() const;
  int64_t AsInt() const;
  uint64_t AsUint() const;
  double AsDouble() const;
  const std::string& AsString() const;

  // Array operations.
  size_t size() const;
  const JsonValue& at(size_t index) const;       // array element
  JsonValue& Append(JsonValue v);                 // returns the stored element

  // Object operations.
  bool Has(const std::string& key) const;
  const JsonValue& at(const std::string& key) const;  // null value if absent
  JsonValue* MutableAt(const std::string& key);       // nullptr if absent
  JsonValue& Set(const std::string& key, JsonValue v);
  const std::vector<std::string>& keys() const { return keys_; }

  /// Serializes the value. `indent` > 0 pretty-prints with that many spaces
  /// per level; 0 emits a compact single line.
  std::string Serialize(int indent = 2) const;

  /// Parses a complete JSON document (trailing whitespace allowed).
  static Result<JsonValue> Parse(const std::string& text);

 private:
  void SerializeTo(std::string* out, int indent, int depth) const;

  Kind kind_;
  bool bool_ = false;
  int64_t int_ = 0;
  uint64_t uint_ = 0;
  double double_ = 0;
  std::string string_;
  std::vector<JsonValue> array_;
  std::vector<std::string> keys_;  // object member order
  std::map<std::string, JsonValue> members_;
};

/// Escapes a string for embedding in a JSON document (no surrounding
/// quotes). Exposed for the tracer's hand-rolled argument lists.
std::string JsonEscape(const std::string& s);

/// Writes `value` to `path` (pretty-printed, trailing newline).
Status WriteJsonFile(const JsonValue& value, const std::string& path);

/// Reads and parses the JSON document at `path`.
Result<JsonValue> ReadJsonFile(const std::string& path);

}  // namespace bbsmine::obs

#endif  // BBSMINE_OBS_JSON_H_
