#include "obs/report.h"

#include <cstdio>
#include <utility>
#include <vector>

#include "obs/metrics.h"
#include "util/iomodel.h"
#include "util/table.h"

namespace bbsmine::obs {

namespace {

// One double-valued metric that rides alongside the registry snapshot
// (MetricsRegistry stores integers; timings are real-valued).
MetricSample RealSample(const char* name, double value) {
  MetricSample s;
  s.name = name;
  s.kind = MetricKind::kGauge;
  s.unit = Unit::kSeconds;
  s.real_value = value;
  s.is_real = true;
  return s;
}

// The single metric catalog: every exported MineStats/IoStats field is
// registered here, by its dotted report path, and both the JSON "metrics"
// section and the human table are rendered from the returned samples.
// Section order: counters, io, cache, gauges, timings, depth.
std::vector<MetricSample> SnapshotStats(const MineStats& stats,
                                        const IoCostParams& io_params) {
  MetricsRegistry registry;
  struct Scalar {
    size_t slot;
    uint64_t value;
  };
  std::vector<Scalar> scalars;
  auto counter = [&](const char* name, uint64_t value, Unit unit = Unit::kNone) {
    scalars.push_back(Scalar{registry.AddCounter(name, unit), value});
  };
  counter("counters.candidates", stats.candidates);
  counter("counters.false_drops", stats.false_drops);
  counter("counters.certified", stats.certified);
  counter("counters.probed_transactions", stats.probed_transactions);
  counter("counters.extension_tests", stats.extension_tests);
  counter("counters.db_scans", stats.db_scans);
  counter("io.sequential_reads", stats.io.sequential_reads, Unit::kBlocks);
  counter("io.random_reads", stats.io.random_reads, Unit::kBlocks);
  counter("io.writes", stats.io.writes, Unit::kBlocks);
  counter("io.slice_words_touched", stats.io.slice_words_touched, Unit::kWords);
  counter("cache.hits", stats.cache_hits);
  counter("cache.misses", stats.cache_misses);
  scalars.push_back(
      Scalar{registry.AddGauge("gauges.max_queue_depth"), stats.max_queue_depth});
  struct Hist {
    size_t slot;
    const DepthHistogram* histogram;
  };
  std::vector<Hist> hists = {
      {registry.AddHistogram("depth.candidates"), &stats.candidates_by_depth},
      {registry.AddHistogram("depth.pruned"), &stats.pruned_by_depth},
      {registry.AddHistogram("depth.false_drops"), &stats.false_drops_by_depth},
  };

  // Populate the aggregate through the same update API the shards use.
  for (const Scalar& s : scalars) registry.Inc(s.slot, s.value);
  for (const Hist& h : hists) {
    for (size_t d = 1; d <= DepthHistogram::kMaxTrackedDepth; ++d) {
      registry.Observe(h.slot, d, h.histogram->at(d));
    }
    registry.Observe(h.slot, DepthHistogram::kMaxTrackedDepth + 1,
                     h.histogram->overflow());
  }

  std::vector<MetricSample> samples = registry.Snapshot();
  samples.push_back(
      RealSample("timings.filter_wall_seconds", stats.filter_wall_seconds));
  samples.push_back(
      RealSample("timings.filter_cpu_seconds", stats.filter_cpu_seconds));
  samples.push_back(
      RealSample("timings.refine_wall_seconds", stats.refine_wall_seconds));
  samples.push_back(
      RealSample("timings.refine_cpu_seconds", stats.refine_cpu_seconds));
  samples.push_back(RealSample("timings.total_seconds", stats.total_seconds));
  samples.push_back(RealSample("timings.simulated_io_seconds",
                               SimulatedIoSeconds(stats.io, io_params)));
  return samples;
}

// Splits "section.field" and returns the section object inside `metrics`,
// creating it in first-use order.
JsonValue& SectionFor(JsonValue& metrics, const std::string& name,
                      std::string* field) {
  size_t dot = name.find('.');
  std::string section = name.substr(0, dot);
  *field = name.substr(dot + 1);
  if (JsonValue* existing = metrics.MutableAt(section)) return *existing;
  return metrics.Set(section, JsonValue::Object());
}

JsonValue HistogramJson(const MetricSample& sample) {
  JsonValue h = JsonValue::Object();
  JsonValue by_depth = JsonValue::Array();
  size_t last = 0;
  for (size_t d = 1; d < sample.buckets.size(); ++d) {
    if (sample.buckets[d] != 0) last = d;
  }
  for (size_t d = 1; d <= last; ++d) {
    by_depth.Append(JsonValue::Uint(sample.buckets[d]));
  }
  h.Set("by_depth", std::move(by_depth));
  h.Set("overflow", JsonValue::Uint(sample.buckets.empty() ? 0 : sample.buckets[0]));
  h.Set("total", JsonValue::Uint(sample.value));
  return h;
}

void ReadHistogram(const JsonValue& h, DepthHistogram* out) {
  const JsonValue& by_depth = h.at("by_depth");
  for (size_t i = 0; i < by_depth.size(); ++i) {
    out->Add(i + 1, by_depth.at(i).AsUint());
  }
  out->Add(DepthHistogram::kMaxTrackedDepth + 1, h.at("overflow").AsUint());
}

std::string FormatDouble(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

}  // namespace

JsonValue MetricsSectionJson(const std::vector<MetricSample>& samples) {
  JsonValue metrics = JsonValue::Object();
  for (const MetricSample& sample : samples) {
    std::string field;
    JsonValue& section = SectionFor(metrics, sample.name, &field);
    if (sample.kind == MetricKind::kHistogram) {
      section.Set(field, HistogramJson(sample));
    } else if (sample.is_real) {
      section.Set(field, JsonValue::Double(sample.real_value));
    } else {
      section.Set(field, JsonValue::Uint(sample.value));
    }
  }
  return metrics;
}

JsonValue BuildRunReport(const RunReportContext& ctx,
                         const MiningResult& result) {
  const MineStats& stats = result.stats;
  JsonValue report = JsonValue::Object();
  report.Set("schema_version", JsonValue::Int(kRunReportSchemaVersion));
  report.Set("scheme", JsonValue::String(ctx.scheme));

  JsonValue config = JsonValue::Object();
  if (ctx.config != nullptr) {
    const MineConfig& c = *ctx.config;
    config.Set("min_support", JsonValue::Double(c.min_support));
    config.Set("algorithm", JsonValue::String(AlgorithmName(c.algorithm)));
    config.Set("memory_budget_bytes", JsonValue::Uint(c.memory_budget_bytes));
    config.Set("block_size", JsonValue::Uint(c.block_size));
    config.Set("threads", JsonValue::Uint(c.num_threads));
    config.Set("rare_first_order", JsonValue::Bool(c.rare_first_order));
    config.Set("tighten_after_probe", JsonValue::Bool(c.tighten_after_probe));
  }
  report.Set("config", std::move(config));

  JsonValue workload = JsonValue::Object();
  workload.Set("transactions", JsonValue::Uint(ctx.num_transactions));
  workload.Set("item_universe", JsonValue::Uint(ctx.item_universe));
  workload.Set("tau", JsonValue::Uint(ctx.tau));
  report.Set("workload", std::move(workload));

  JsonValue engine = JsonValue::Object();
  engine.Set("kernel", JsonValue::String(ctx.kernel));
  engine.Set("resolved_threads", JsonValue::Uint(ctx.resolved_threads));
  engine.Set("index_bits", JsonValue::Uint(ctx.index_bits));
  engine.Set("index_hashes", JsonValue::Uint(ctx.index_hashes));
  engine.Set("index_backend", JsonValue::String(ctx.index_backend));
  engine.Set("resident_slice_bytes",
             JsonValue::Uint(ctx.resident_slice_bytes));
  engine.Set("minor_faults", JsonValue::Uint(ctx.minor_faults));
  engine.Set("major_faults", JsonValue::Uint(ctx.major_faults));
  report.Set("engine", std::move(engine));

  report.Set("patterns", JsonValue::Uint(result.patterns.size()));
  report.Set("fdr", JsonValue::Double(result.FalseDropRatio()));

  IoCostParams io_params =
      ctx.config != nullptr ? ctx.config->io_params : IoCostParams::PaperEraDisk();
  JsonValue metrics = MetricsSectionJson(SnapshotStats(stats, io_params));
  // Derived rate, reported for humans; StatsFromReport ignores it.
  uint64_t accesses = stats.cache_hits + stats.cache_misses;
  metrics.MutableAt("cache")->Set(
      "hit_rate",
      JsonValue::Double(accesses == 0
                            ? 0.0
                            : static_cast<double>(stats.cache_hits) /
                                  static_cast<double>(accesses)));
  report.Set("metrics", std::move(metrics));
  return report;
}

Result<MineStats> StatsFromReport(const JsonValue& report) {
  if (report.kind() != JsonValue::Kind::kObject ||
      !report.Has("schema_version") || !report.Has("metrics")) {
    return Status::Corruption("not a run report document");
  }
  int64_t version = report.at("schema_version").AsInt();
  if (version != kRunReportSchemaVersion) {
    return Status::Corruption("unsupported run report schema_version " +
                              std::to_string(version));
  }
  const JsonValue& metrics = report.at("metrics");
  const JsonValue& counters = metrics.at("counters");
  const JsonValue& io = metrics.at("io");
  const JsonValue& cache = metrics.at("cache");
  const JsonValue& gauges = metrics.at("gauges");
  const JsonValue& timings = metrics.at("timings");
  const JsonValue& depth = metrics.at("depth");

  MineStats stats;
  stats.candidates = counters.at("candidates").AsUint();
  stats.false_drops = counters.at("false_drops").AsUint();
  stats.certified = counters.at("certified").AsUint();
  stats.probed_transactions = counters.at("probed_transactions").AsUint();
  stats.extension_tests = counters.at("extension_tests").AsUint();
  stats.db_scans = counters.at("db_scans").AsUint();
  stats.io.sequential_reads = io.at("sequential_reads").AsUint();
  stats.io.random_reads = io.at("random_reads").AsUint();
  stats.io.writes = io.at("writes").AsUint();
  stats.io.slice_words_touched = io.at("slice_words_touched").AsUint();
  stats.cache_hits = cache.at("hits").AsUint();
  stats.cache_misses = cache.at("misses").AsUint();
  stats.max_queue_depth = gauges.at("max_queue_depth").AsUint();
  stats.filter_wall_seconds = timings.at("filter_wall_seconds").AsDouble();
  stats.filter_cpu_seconds = timings.at("filter_cpu_seconds").AsDouble();
  stats.refine_wall_seconds = timings.at("refine_wall_seconds").AsDouble();
  stats.refine_cpu_seconds = timings.at("refine_cpu_seconds").AsDouble();
  stats.total_seconds = timings.at("total_seconds").AsDouble();
  ReadHistogram(depth.at("candidates"), &stats.candidates_by_depth);
  ReadHistogram(depth.at("pruned"), &stats.pruned_by_depth);
  ReadHistogram(depth.at("false_drops"), &stats.false_drops_by_depth);
  return stats;
}

void PrintRunReportTable(const JsonValue& report, std::ostream& out) {
  std::string title = "Run report";
  if (report.Has("scheme")) {
    title += ": " + report.at("scheme").AsString();
  }
  if (report.Has("engine")) {
    const JsonValue& engine = report.at("engine");
    title += " (kernel " + engine.at("kernel").AsString() + ", " +
             std::to_string(engine.at("resolved_threads").AsUint()) +
             " threads)";
  }
  ResultTable table(std::move(title));
  table.SetHeader({"metric", "value", "notes"});
  table.AddRow({"patterns", ResultTable::Int(static_cast<long long>(
                                report.at("patterns").AsUint())),
                ""});
  table.AddRow({"fdr", FormatDouble(report.at("fdr").AsDouble()), "F_fd / F"});

  const JsonValue& metrics = report.at("metrics");
  for (const std::string& section : metrics.keys()) {
    const JsonValue& fields = metrics.at(section);
    for (const std::string& field : fields.keys()) {
      const JsonValue& v = fields.at(field);
      std::string name = section + "." + field;
      if (v.kind() == JsonValue::Kind::kObject) {
        // Depth histogram: show the total plus a compact depth breakdown.
        std::string breakdown;
        const JsonValue& by_depth = v.at("by_depth");
        for (size_t d = 0; d < by_depth.size(); ++d) {
          if (!breakdown.empty()) breakdown += " ";
          breakdown += std::to_string(by_depth.at(d).AsUint());
        }
        if (v.at("overflow").AsUint() != 0) {
          breakdown += " +" + std::to_string(v.at("overflow").AsUint()) + " deep";
        }
        table.AddRow({std::move(name),
                      ResultTable::Int(
                          static_cast<long long>(v.at("total").AsUint())),
                      breakdown.empty() ? "" : "by depth: " + breakdown});
      } else if (v.kind() == JsonValue::Kind::kDouble) {
        table.AddRow({std::move(name), FormatDouble(v.AsDouble()),
                      section == "timings" ? "s" : ""});
      } else {
        table.AddRow({std::move(name),
                      ResultTable::Int(static_cast<long long>(v.AsUint())), ""});
      }
    }
  }
  table.Print(out);
}

}  // namespace bbsmine::obs
