#include "obs/metrics.h"

namespace bbsmine::obs {

const char* UnitName(Unit unit) {
  switch (unit) {
    case Unit::kNone:
      return "";
    case Unit::kSeconds:
      return "s";
    case Unit::kBlocks:
      return "blocks";
    case Unit::kWords:
      return "words";
    case Unit::kBytes:
      return "bytes";
  }
  return "";
}

size_t MetricsRegistry::AddCounter(std::string name, Unit unit) {
  size_t slot = num_scalars_++;
  metas_.push_back(Meta{std::move(name), MetricKind::kCounter, unit, slot});
  aggregate_.counters_.push_back(0);
  return slot;
}

size_t MetricsRegistry::AddGauge(std::string name, Unit unit) {
  size_t slot = num_scalars_++;
  metas_.push_back(Meta{std::move(name), MetricKind::kGauge, unit, slot});
  aggregate_.counters_.push_back(0);
  return slot;
}

size_t MetricsRegistry::AddHistogram(std::string name) {
  size_t slot = num_histograms_++;
  metas_.push_back(Meta{std::move(name), MetricKind::kHistogram, Unit::kNone,
                        slot});
  aggregate_.histograms_.emplace_back();
  return slot;
}

MetricsShard* MetricsRegistry::CreateShard() {
  shards_.emplace_back(
      new MetricsShard(num_scalars_, num_histograms_));
  return shards_.back().get();
}

void MetricsRegistry::MergeShards() {
  for (auto& shard : shards_) {
    for (const Meta& meta : metas_) {
      switch (meta.kind) {
        case MetricKind::kCounter:
          aggregate_.Inc(meta.slot, shard->counters_[meta.slot]);
          break;
        case MetricKind::kGauge:
          aggregate_.GaugeMax(meta.slot, shard->counters_[meta.slot]);
          break;
        case MetricKind::kHistogram:
          aggregate_.histograms_[meta.slot] += shard->histograms_[meta.slot];
          break;
      }
    }
    *shard = MetricsShard(num_scalars_, num_histograms_);
  }
}

std::vector<MetricSample> MetricsRegistry::Snapshot() const {
  std::vector<MetricSample> samples;
  samples.reserve(metas_.size());
  for (const Meta& meta : metas_) {
    MetricSample sample;
    sample.name = meta.name;
    sample.kind = meta.kind;
    sample.unit = meta.unit;
    if (meta.kind == MetricKind::kHistogram) {
      const DepthHistogram& h = aggregate_.histograms_[meta.slot];
      sample.value = h.total();
      sample.buckets.resize(DepthHistogram::kMaxTrackedDepth + 1, 0);
      sample.buckets[0] = h.overflow();
      for (size_t d = 1; d <= DepthHistogram::kMaxTrackedDepth; ++d) {
        sample.buckets[d] = h.at(d);
      }
    } else {
      sample.value = aggregate_.counters_[meta.slot];
    }
    samples.push_back(std::move(sample));
  }
  return samples;
}

}  // namespace bbsmine::obs
