#include "obs/metrics.h"

#include <algorithm>
#include <cmath>

namespace bbsmine::obs {

namespace {

/// The idealized observation at global rank `k` (0-based, in value order)
/// of a log2-bucketed histogram in MetricSample layout. Precondition:
/// k < total count.
double IdealizedValueAtRank(const std::vector<uint64_t>& buckets,
                            uint64_t k) {
  uint64_t cum = 0;
  for (size_t d = 1; d < buckets.size(); ++d) {
    uint64_t c = buckets[d];
    if (k < cum + c) {
      double lo = static_cast<double>(Log2BucketLowerBound(d));
      double hi = static_cast<double>(Log2BucketUpperBound(d));
      return lo + static_cast<double>(k - cum) * (hi - lo) /
                      static_cast<double>(c);
    }
    cum += c;
  }
  // Overflow: no upper bound was retained, so every overflow observation
  // collapses to the overflow lower bound.
  return static_cast<double>(
      Log2BucketUpperBound(DepthHistogram::kMaxTrackedDepth));
}

}  // namespace

double PercentileFromLog2Buckets(const std::vector<uint64_t>& buckets,
                                 double q) {
  uint64_t total = 0;
  for (uint64_t c : buckets) total += c;
  if (total == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  double rank = q * static_cast<double>(total - 1);
  uint64_t lo_rank = static_cast<uint64_t>(rank);
  uint64_t hi_rank = std::min<uint64_t>(lo_rank + 1, total - 1);
  double frac = rank - static_cast<double>(lo_rank);
  double lo = IdealizedValueAtRank(buckets, lo_rank);
  if (frac == 0.0) return lo;
  double hi = IdealizedValueAtRank(buckets, hi_rank);
  return lo + frac * (hi - lo);
}

double LatencyReservoir::Quantile(double q) {
  if (samples_.empty()) return 0.0;
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
  q = std::clamp(q, 0.0, 1.0);
  double rank = q * static_cast<double>(samples_.size() - 1);
  size_t lo_rank = static_cast<size_t>(rank);
  size_t hi_rank = std::min(lo_rank + 1, samples_.size() - 1);
  double frac = rank - static_cast<double>(lo_rank);
  double lo = static_cast<double>(samples_[lo_rank]);
  double hi = static_cast<double>(samples_[hi_rank]);
  return lo + frac * (hi - lo);
}

const char* UnitName(Unit unit) {
  switch (unit) {
    case Unit::kNone:
      return "";
    case Unit::kSeconds:
      return "s";
    case Unit::kBlocks:
      return "blocks";
    case Unit::kWords:
      return "words";
    case Unit::kBytes:
      return "bytes";
  }
  return "";
}

size_t MetricsRegistry::AddCounter(std::string name, Unit unit) {
  size_t slot = num_scalars_++;
  metas_.push_back(Meta{std::move(name), MetricKind::kCounter, unit, slot});
  aggregate_.counters_.push_back(0);
  return slot;
}

size_t MetricsRegistry::AddGauge(std::string name, Unit unit) {
  size_t slot = num_scalars_++;
  metas_.push_back(Meta{std::move(name), MetricKind::kGauge, unit, slot});
  aggregate_.counters_.push_back(0);
  return slot;
}

size_t MetricsRegistry::AddHistogram(std::string name) {
  size_t slot = num_histograms_++;
  metas_.push_back(Meta{std::move(name), MetricKind::kHistogram, Unit::kNone,
                        slot});
  aggregate_.histograms_.emplace_back();
  return slot;
}

MetricsShard* MetricsRegistry::CreateShard() {
  shards_.emplace_back(
      new MetricsShard(num_scalars_, num_histograms_));
  return shards_.back().get();
}

void MetricsRegistry::MergeShards() {
  for (auto& shard : shards_) {
    for (const Meta& meta : metas_) {
      switch (meta.kind) {
        case MetricKind::kCounter:
          aggregate_.Inc(meta.slot, shard->counters_[meta.slot]);
          break;
        case MetricKind::kGauge:
          aggregate_.GaugeMax(meta.slot, shard->counters_[meta.slot]);
          break;
        case MetricKind::kHistogram:
          aggregate_.histograms_[meta.slot] += shard->histograms_[meta.slot];
          break;
      }
    }
    *shard = MetricsShard(num_scalars_, num_histograms_);
  }
}

std::vector<MetricSample> MetricsRegistry::Snapshot() const {
  std::vector<MetricSample> samples;
  samples.reserve(metas_.size());
  for (const Meta& meta : metas_) {
    MetricSample sample;
    sample.name = meta.name;
    sample.kind = meta.kind;
    sample.unit = meta.unit;
    if (meta.kind == MetricKind::kHistogram) {
      const DepthHistogram& h = aggregate_.histograms_[meta.slot];
      sample.value = h.total();
      sample.buckets.resize(DepthHistogram::kMaxTrackedDepth + 1, 0);
      sample.buckets[0] = h.overflow();
      for (size_t d = 1; d <= DepthHistogram::kMaxTrackedDepth; ++d) {
        sample.buckets[d] = h.at(d);
      }
    } else {
      sample.value = aggregate_.counters_[meta.slot];
    }
    samples.push_back(std::move(sample));
  }
  return samples;
}

}  // namespace bbsmine::obs
