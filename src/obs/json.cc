#include "obs/json.h"

#include <cctype>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "util/file_io.h"

namespace bbsmine::obs {

JsonValue JsonValue::Bool(bool v) {
  JsonValue j;
  j.kind_ = Kind::kBool;
  j.bool_ = v;
  return j;
}

JsonValue JsonValue::Int(int64_t v) {
  JsonValue j;
  j.kind_ = Kind::kInt;
  j.int_ = v;
  return j;
}

JsonValue JsonValue::Uint(uint64_t v) {
  JsonValue j;
  if (v <= static_cast<uint64_t>(INT64_MAX)) {
    j.kind_ = Kind::kInt;
    j.int_ = static_cast<int64_t>(v);
  } else {
    j.kind_ = Kind::kUint;
    j.uint_ = v;
  }
  return j;
}

JsonValue JsonValue::Double(double v) {
  JsonValue j;
  j.kind_ = Kind::kDouble;
  j.double_ = v;
  return j;
}

JsonValue JsonValue::String(std::string v) {
  JsonValue j;
  j.kind_ = Kind::kString;
  j.string_ = std::move(v);
  return j;
}

JsonValue JsonValue::Array() {
  JsonValue j;
  j.kind_ = Kind::kArray;
  return j;
}

JsonValue JsonValue::Object() {
  JsonValue j;
  j.kind_ = Kind::kObject;
  return j;
}

bool JsonValue::AsBool() const { return kind_ == Kind::kBool && bool_; }

int64_t JsonValue::AsInt() const {
  switch (kind_) {
    case Kind::kInt:
      return int_;
    case Kind::kUint:
      return static_cast<int64_t>(uint_);
    case Kind::kDouble:
      return static_cast<int64_t>(double_);
    default:
      return 0;
  }
}

uint64_t JsonValue::AsUint() const {
  switch (kind_) {
    case Kind::kInt:
      return int_ < 0 ? 0 : static_cast<uint64_t>(int_);
    case Kind::kUint:
      return uint_;
    case Kind::kDouble:
      return double_ < 0 ? 0 : static_cast<uint64_t>(double_);
    default:
      return 0;
  }
}

double JsonValue::AsDouble() const {
  switch (kind_) {
    case Kind::kInt:
      return static_cast<double>(int_);
    case Kind::kUint:
      return static_cast<double>(uint_);
    case Kind::kDouble:
      return double_;
    default:
      return 0;
  }
}

const std::string& JsonValue::AsString() const {
  static const std::string kEmpty;
  return kind_ == Kind::kString ? string_ : kEmpty;
}

size_t JsonValue::size() const {
  if (kind_ == Kind::kArray) return array_.size();
  if (kind_ == Kind::kObject) return keys_.size();
  return 0;
}

const JsonValue& JsonValue::at(size_t index) const {
  static const JsonValue kNull;
  if (kind_ != Kind::kArray || index >= array_.size()) return kNull;
  return array_[index];
}

JsonValue& JsonValue::Append(JsonValue v) {
  kind_ = Kind::kArray;
  array_.push_back(std::move(v));
  return array_.back();
}

bool JsonValue::Has(const std::string& key) const {
  return kind_ == Kind::kObject && members_.count(key) != 0;
}

const JsonValue& JsonValue::at(const std::string& key) const {
  static const JsonValue kNull;
  auto it = members_.find(key);
  return it == members_.end() ? kNull : it->second;
}

JsonValue* JsonValue::MutableAt(const std::string& key) {
  auto it = members_.find(key);
  return it == members_.end() ? nullptr : &it->second;
}

JsonValue& JsonValue::Set(const std::string& key, JsonValue v) {
  kind_ = Kind::kObject;
  auto [it, inserted] = members_.insert_or_assign(key, std::move(v));
  if (inserted) keys_.push_back(key);
  return it->second;
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

namespace {

void AppendNumber(std::string* out, double v) {
  if (!std::isfinite(v)) {
    // JSON has no Infinity/NaN; emit null like most encoders.
    *out += "null";
    return;
  }
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  *out += buf;
  // Keep the lexical double class on round-trip: "%.17g" may print an
  // integral double as "3", which would re-parse as an integer.
  if (std::strpbrk(buf, ".eE") == nullptr) *out += ".0";
}

void Indent(std::string* out, int indent, int depth) {
  if (indent <= 0) return;
  out->push_back('\n');
  out->append(static_cast<size_t>(indent) * depth, ' ');
}

}  // namespace

void JsonValue::SerializeTo(std::string* out, int indent, int depth) const {
  char buf[32];
  switch (kind_) {
    case Kind::kNull:
      *out += "null";
      return;
    case Kind::kBool:
      *out += bool_ ? "true" : "false";
      return;
    case Kind::kInt:
      std::snprintf(buf, sizeof(buf), "%" PRId64, int_);
      *out += buf;
      return;
    case Kind::kUint:
      std::snprintf(buf, sizeof(buf), "%" PRIu64, uint_);
      *out += buf;
      return;
    case Kind::kDouble:
      AppendNumber(out, double_);
      return;
    case Kind::kString:
      *out += '"';
      *out += JsonEscape(string_);
      *out += '"';
      return;
    case Kind::kArray: {
      if (array_.empty()) {
        *out += "[]";
        return;
      }
      *out += '[';
      for (size_t i = 0; i < array_.size(); ++i) {
        if (i != 0) *out += ',';
        Indent(out, indent, depth + 1);
        array_[i].SerializeTo(out, indent, depth + 1);
      }
      Indent(out, indent, depth);
      *out += ']';
      return;
    }
    case Kind::kObject: {
      if (keys_.empty()) {
        *out += "{}";
        return;
      }
      *out += '{';
      for (size_t i = 0; i < keys_.size(); ++i) {
        if (i != 0) *out += ',';
        Indent(out, indent, depth + 1);
        *out += '"';
        *out += JsonEscape(keys_[i]);
        *out += "\": ";
        members_.at(keys_[i]).SerializeTo(out, indent, depth + 1);
      }
      Indent(out, indent, depth);
      *out += '}';
      return;
    }
  }
}

std::string JsonValue::Serialize(int indent) const {
  std::string out;
  SerializeTo(&out, indent, 0);
  return out;
}

namespace {

/// Recursive-descent parser over a complete document.
class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  Result<JsonValue> Run() {
    JsonValue value;
    if (Status st = ParseValue(&value); !st.ok()) return st;
    SkipWhitespace();
    if (pos_ != text_.size()) return Error("trailing characters");
    return value;
  }

 private:
  Status Error(const std::string& message) const {
    return Status::InvalidArgument("json: " + message + " at offset " +
                                   std::to_string(pos_));
  }

  void SkipWhitespace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    SkipWhitespace();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ConsumeLiteral(const char* literal) {
    size_t len = std::strlen(literal);
    if (text_.compare(pos_, len, literal) == 0) {
      pos_ += len;
      return true;
    }
    return false;
  }

  Status ParseValue(JsonValue* out) {
    SkipWhitespace();
    if (pos_ >= text_.size()) return Error("unexpected end of input");
    char c = text_[pos_];
    if (c == '{') return ParseObject(out);
    if (c == '[') return ParseArray(out);
    if (c == '"') return ParseString(out);
    if (ConsumeLiteral("null")) {
      *out = JsonValue::Null();
      return Status::Ok();
    }
    if (ConsumeLiteral("true")) {
      *out = JsonValue::Bool(true);
      return Status::Ok();
    }
    if (ConsumeLiteral("false")) {
      *out = JsonValue::Bool(false);
      return Status::Ok();
    }
    return ParseNumber(out);
  }

  Status ParseObject(JsonValue* out) {
    ++pos_;  // '{'
    *out = JsonValue::Object();
    if (Consume('}')) return Status::Ok();
    for (;;) {
      SkipWhitespace();
      JsonValue key;
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return Error("expected object key");
      }
      if (Status st = ParseString(&key); !st.ok()) return st;
      if (!Consume(':')) return Error("expected ':'");
      JsonValue value;
      if (Status st = ParseValue(&value); !st.ok()) return st;
      out->Set(key.AsString(), std::move(value));
      if (Consume(',')) continue;
      if (Consume('}')) return Status::Ok();
      return Error("expected ',' or '}'");
    }
  }

  Status ParseArray(JsonValue* out) {
    ++pos_;  // '['
    *out = JsonValue::Array();
    if (Consume(']')) return Status::Ok();
    for (;;) {
      JsonValue value;
      if (Status st = ParseValue(&value); !st.ok()) return st;
      out->Append(std::move(value));
      if (Consume(',')) continue;
      if (Consume(']')) return Status::Ok();
      return Error("expected ',' or ']'");
    }
  }

  Status ParseString(JsonValue* out) {
    ++pos_;  // '"'
    std::string value;
    while (pos_ < text_.size()) {
      char c = text_[pos_++];
      if (c == '"') {
        *out = JsonValue::String(std::move(value));
        return Status::Ok();
      }
      if (c != '\\') {
        value += c;
        continue;
      }
      if (pos_ >= text_.size()) break;
      char esc = text_[pos_++];
      switch (esc) {
        case '"':
        case '\\':
        case '/':
          value += esc;
          break;
        case 'n':
          value += '\n';
          break;
        case 'r':
          value += '\r';
          break;
        case 't':
          value += '\t';
          break;
        case 'b':
          value += '\b';
          break;
        case 'f':
          value += '\f';
          break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return Error("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              return Error("bad \\u escape");
            }
          }
          // The reports only ever escape control characters; decode the
          // BMP code point as UTF-8.
          if (code < 0x80) {
            value += static_cast<char>(code);
          } else if (code < 0x800) {
            value += static_cast<char>(0xC0 | (code >> 6));
            value += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            value += static_cast<char>(0xE0 | (code >> 12));
            value += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            value += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default:
          return Error("bad escape");
      }
    }
    return Error("unterminated string");
  }

  Status ParseNumber(JsonValue* out) {
    size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    bool integral = true;
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (std::isdigit(static_cast<unsigned char>(c))) {
        ++pos_;
      } else if (c == '.' || c == 'e' || c == 'E' || c == '+' || c == '-') {
        integral = false;
        ++pos_;
      } else {
        break;
      }
    }
    if (pos_ == start) return Error("expected a value");
    std::string token = text_.substr(start, pos_ - start);
    if (integral) {
      errno = 0;
      if (token[0] == '-') {
        int64_t v = std::strtoll(token.c_str(), nullptr, 10);
        if (errno == ERANGE) return Error("integer out of range");
        *out = JsonValue::Int(v);
      } else {
        uint64_t v = std::strtoull(token.c_str(), nullptr, 10);
        if (errno == ERANGE) return Error("integer out of range");
        *out = JsonValue::Uint(v);
      }
    } else {
      *out = JsonValue::Double(std::strtod(token.c_str(), nullptr));
    }
    return Status::Ok();
  }

  const std::string& text_;
  size_t pos_ = 0;
};

}  // namespace

Result<JsonValue> JsonValue::Parse(const std::string& text) {
  return Parser(text).Run();
}

Status WriteJsonFile(const JsonValue& value, const std::string& path) {
  return WriteBinaryFile(path, value.Serialize(2) + "\n");
}

Result<JsonValue> ReadJsonFile(const std::string& path) {
  auto text = ReadBinaryFile(path);
  if (!text.ok()) return text.status();
  return JsonValue::Parse(*text);
}

}  // namespace bbsmine::obs
