#include "core/mining_types.h"

#include <algorithm>

namespace bbsmine {

const char* AlgorithmName(Algorithm algorithm) {
  switch (algorithm) {
    case Algorithm::kSFS:
      return "SFS";
    case Algorithm::kSFP:
      return "SFP";
    case Algorithm::kDFS:
      return "DFS";
    case Algorithm::kDFP:
      return "DFP";
  }
  return "?";
}

void MiningResult::SortPatterns() {
  std::sort(patterns.begin(), patterns.end(),
            [](const Pattern& a, const Pattern& b) { return a.items < b.items; });
}

const Pattern* MiningResult::Find(const Itemset& items) const {
  auto it = std::lower_bound(
      patterns.begin(), patterns.end(), items,
      [](const Pattern& p, const Itemset& key) { return p.items < key; });
  if (it == patterns.end() || it->items != items) return nullptr;
  return &*it;
}

uint64_t AbsoluteThreshold(double min_support, size_t num_transactions) {
  double raw = min_support * static_cast<double>(num_transactions);
  uint64_t tau = static_cast<uint64_t>(std::ceil(raw - 1e-9));
  return tau == 0 ? 1 : tau;
}

}  // namespace bbsmine
