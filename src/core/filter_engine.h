// Shared machinery of the filtering phase.
//
// All four schemes enumerate candidate itemsets the same way (routine
// GenerateAndFilter, Figures 2 and 4 of the paper): a depth-first walk over
// items in ascending order, extending the current itemset only while its
// estimated count stays above the threshold. FilterEngine hosts the shared
// precomputation:
//
//  * the table of "estimated-frequent" singletons. BBS estimates are
//    anti-monotone (the query vector of a superset selects a superset of
//    slices, so its AND is a subset), hence any itemset containing an
//    estimated-infrequent item is itself estimated-infrequent and only
//    estimated-frequent singletons can extend a candidate; and
//
//  * each such singleton's transaction vector (the AND of its k slices),
//    so that extending a candidate by one item is a single N-bit AND with
//    popcount rather than k slice ANDs. This is algebraically identical to
//    re-running CountItemSet on the extended itemset.

#ifndef BBSMINE_CORE_FILTER_ENGINE_H_
#define BBSMINE_CORE_FILTER_ENGINE_H_

#include <cstdint>
#include <vector>

#include "core/bbs_index.h"
#include "core/mining_types.h"
#include "core/tidset.h"
#include "obs/trace.h"
#include "storage/transaction.h"
#include "util/bitvector.h"

namespace bbsmine {

/// Precomputed filtering state over one BBS index. The engine borrows the
/// index, which must outlive it.
class FilterEngine {
 public:
  /// One estimated-frequent singleton.
  struct Singleton {
    ItemId item = 0;
    uint64_t est = 0;    ///< CountItemSet({item})
    uint64_t exact = 0;  ///< true occurrence count (iff tracks_item_counts)
    BitVector vector;    ///< AND of the item's slices; one bit per transaction
  };

  /// `tau` is the absolute occurrence threshold; `io` (optional) accrues
  /// slice-read charges when the BBS is modeled as non-resident.
  FilterEngine(const BbsIndex& bbs, uint64_t tau, IoStats* io = nullptr)
      : bbs_(bbs), tau_(tau), io_(io) {}

  /// Scans the singleton universe and caches every item whose estimated
  /// count reaches tau. `universe` must be canonical. Extension-test and
  /// I/O counters accrue into `stats`.
  ///
  /// When `rare_first` is true (default) the cached singletons are ordered
  /// by ascending estimated count instead of item id. The set of itemsets
  /// the walk accepts is order-independent, but the rare-first order keeps
  /// the enumeration tree narrow, which is markedly cheaper (the classic
  /// vertical-mining ordering). Emitted itemsets are canonicalized either
  /// way.
  void Prepare(const Itemset& universe, MineStats* stats,
               bool rare_first = true);

  const BbsIndex& bbs() const { return bbs_; }
  uint64_t tau() const { return tau_; }

  /// Attaches a span tracer (not owned; may be null). Prepare records a
  /// phase span and, under the opt-in kernel category, one span per
  /// singleton CountItemSet; the filter walks read the tracer back through
  /// tracer() for their per-root subtree spans.
  void SetTracer(obs::Tracer* tracer) { tracer_ = tracer; }
  obs::Tracer* tracer() const { return tracer_; }

  /// The estimated-frequent singletons, in walk order (see Prepare).
  const std::vector<Singleton>& singletons() const { return singletons_; }

  /// Computes est(parent itemset + singletons()[idx]): *out receives
  /// parent_vector AND singleton vector; returns its popcount. Single
  /// fused kernel pass (no copy-then-AND).
  size_t Extend(size_t idx, const BitVector& parent_vector,
                BitVector* out) const {
    return out->AssignAndCount(parent_vector, singletons_[idx].vector);
  }

  /// Hybrid variant: intersects `parent` with singleton idx's vector into
  /// *out (switching to the sparse representation below the threshold) and
  /// returns the count. The intersection aborts early once the count
  /// provably cannot reach tau; the walks discard such extensions.
  size_t ExtendHybrid(size_t idx, const TidSet& parent, TidSet* out) const {
    return out->AssignIntersection(parent, singletons_[idx].vector,
                                   sparse_threshold_, tau_);
  }

  /// An all-ones vector of num_transactions bits (the root of the walk).
  BitVector AllTransactions() const;

  /// A TidSet containing every transaction (the root of the walk).
  TidSet AllTransactionsSet() const {
    return TidSet::AllOf(bbs_.num_transactions());
  }

  /// Counts at or below this switch the walk's TidSets to sparse form.
  size_t sparse_threshold() const { return sparse_threshold_; }

 private:
  const BbsIndex& bbs_;
  uint64_t tau_;
  IoStats* io_;
  obs::Tracer* tracer_ = nullptr;
  size_t sparse_threshold_ = 0;
  std::vector<Singleton> singletons_;
};

}  // namespace bbsmine

#endif  // BBSMINE_CORE_FILTER_ENGINE_H_
