// Algorithm SingleFilter (paper Figure 2).
//
// Produces the candidate set: every itemset whose *estimated* count (from
// BBS) reaches the threshold. By Lemma 4 this is a superset of the true
// frequent patterns; the refinement phase prunes the false drops.

#ifndef BBSMINE_CORE_SINGLE_FILTER_H_
#define BBSMINE_CORE_SINGLE_FILTER_H_

#include <cstdint>
#include <vector>

#include "core/filter_engine.h"
#include "core/mining_types.h"
#include "storage/transaction.h"

namespace bbsmine {

/// A candidate pattern emitted by a filtering algorithm.
struct Candidate {
  Itemset items;      // canonical
  uint64_t est = 0;   // BBS-estimated count (>= true support, Lemma 4)
};

/// Runs SingleFilter on a prepared engine and returns all candidates in
/// depth-first (lexicographic) order. Updates stats->candidates and
/// stats->extension_tests.
///
/// With `num_threads` > 1 the root-level subtrees of the walk run in
/// parallel (0 = one thread per hardware thread); the returned candidate
/// sequence is identical to the serial walk.
std::vector<Candidate> RunSingleFilter(const FilterEngine& engine,
                                       MineStats* stats,
                                       size_t num_threads = 1);

}  // namespace bbsmine

#endif  // BBSMINE_CORE_SINGLE_FILTER_H_
