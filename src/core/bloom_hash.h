// The Bloom-filter hash family mapping items to bit positions in [0, m).
//
// Paper, Section 4: "we take the four disjoint groups of bits from the
// 128-bit MD5 signature of the item name; if more bits are needed, we
// calculate the MD5 signature of the item name concatenated with itself."
// Item names here are the decimal renderings of the item ids.
//
// Positions are memoized per item: mining touches the same (few hundred)
// frequent items millions of times, so the MD5 cost is paid once per item,
// matching the paper's observation that "the computational overhead of MD5 is
// negligible".

#ifndef BBSMINE_CORE_BLOOM_HASH_H_
#define BBSMINE_CORE_BLOOM_HASH_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/bbs_config.h"
#include "storage/transaction.h"
#include "util/status.h"

namespace bbsmine {

/// A family of `num_hashes` hash functions h_j : ItemId -> [0, num_bits).
///
/// Not thread-safe: the position cache is grown lazily on first use of each
/// item.
class BloomHashFamily {
 public:
  /// Validates the parameters and constructs the family.
  /// Fails if num_bits == 0 or num_hashes == 0.
  static Result<BloomHashFamily> Create(uint32_t num_bits, uint32_t num_hashes,
                                        HashKind kind, uint64_t seed = 0);

  uint32_t num_bits() const { return num_bits_; }
  uint32_t num_hashes() const { return num_hashes_; }
  HashKind kind() const { return kind_; }
  uint64_t seed() const { return seed_; }

  /// The `num_hashes` positions of `item`, each in [0, num_bits).
  /// The returned reference is stable until the next call for a new item.
  const std::vector<uint32_t>& Positions(ItemId item) const;

  /// Number of items with memoized positions (diagnostics).
  size_t cached_items() const { return cache_filled_; }

 private:
  BloomHashFamily(uint32_t num_bits, uint32_t num_hashes, HashKind kind,
                  uint64_t seed)
      : num_bits_(num_bits),
        num_hashes_(num_hashes),
        kind_(kind),
        seed_(seed) {}

  /// Computes positions without consulting the cache.
  void ComputePositions(ItemId item, std::vector<uint32_t>* out) const;
  void ComputeMd5Positions(const std::string& name,
                           std::vector<uint32_t>* out) const;
  void ComputeMultiplyShiftPositions(ItemId item,
                                     std::vector<uint32_t>* out) const;

  uint32_t num_bits_;
  uint32_t num_hashes_;
  HashKind kind_;
  uint64_t seed_;

  // cache_[item] holds the positions once cache_valid_[item] is true.
  mutable std::vector<std::vector<uint32_t>> cache_;
  mutable std::vector<bool> cache_valid_;
  mutable size_t cache_filled_ = 0;
};

}  // namespace bbsmine

#endif  // BBSMINE_CORE_BLOOM_HASH_H_
