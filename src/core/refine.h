// The refinement phase (paper Section 3.2): pruning false drops from the
// candidate set produced by the filtering phase.
//
//  * SequentialScan loads as many candidates as fit in memory, scans the
//    database once per batch, and keeps the candidates whose exact count
//    reaches the threshold.
//  * Probe fetches only the transactions whose bits are set in the
//    candidate's CountItemSet result vector, through the TID-position index,
//    and verifies containment. ProbeCount is the per-candidate primitive;
//    the integrated SFP/DFP drivers in miner.cc call it from inside the
//    filter recursion.

#ifndef BBSMINE_CORE_REFINE_H_
#define BBSMINE_CORE_REFINE_H_

#include <cstdint>
#include <vector>

#include "core/mining_types.h"
#include "core/single_filter.h"
#include "core/tidset.h"
#include "obs/trace.h"
#include "storage/page_cache.h"
#include "storage/transaction_db.h"
#include "util/bitvector.h"

namespace bbsmine {

/// Verifies `candidates` against the database by sequential scans and
/// returns the true frequent patterns with exact supports.
///
/// `memory_budget_bytes` bounds the candidate batch resident during one scan
/// (0 = unlimited, a single scan). Updates stats->{false_drops, db_scans,
/// io, and the refinement does not change stats->candidates}.
///
/// With `num_threads` > 1 each batch's scan is partitioned across threads
/// (disjoint transaction ranges, per-thread count arrays summed at the end;
/// 0 = one thread per hardware thread). The returned patterns, supports,
/// and I/O charges are identical to the serial scan.
///
/// `tracer`, when non-null, records one kTraceRefine span per batch scan.
std::vector<Pattern> RefineSequentialScan(const TransactionDatabase& db,
                                          const std::vector<Candidate>& candidates,
                                          uint64_t tau,
                                          uint64_t memory_budget_bytes,
                                          MineStats* stats,
                                          size_t num_threads = 1,
                                          obs::Tracer* tracer = nullptr);

/// Exact support of `items` counted by probing exactly the transactions
/// whose bits are set in `result` (the CountItemSet output vector).
///
/// `cache`, when non-null, models the buffer pool: repeated probes to a
/// resident block are free. Updates stats->{probed_transactions, io}.
/// If `matching` is non-null it receives a vector (same size as `result`)
/// with exactly the bits of the transactions that truly contain `items` —
/// used by the tighten-after-probe ablation.
uint64_t ProbeCount(const TransactionDatabase& db, const Itemset& items,
                    const BitVector& result, PageCache* cache,
                    MineStats* stats, BitVector* matching = nullptr);

/// TidSet overload used by the integrated walks. If `matching_tids` is
/// non-null it receives the positions of the transactions that truly
/// contain `items` (ascending).
uint64_t ProbeCount(const TransactionDatabase& db, const Itemset& items,
                    const TidSet& result, PageCache* cache, MineStats* stats,
                    std::vector<uint32_t>* matching_tids = nullptr);

}  // namespace bbsmine

#endif  // BBSMINE_CORE_REFINE_H_
