#include "core/tidset.h"

#include <algorithm>

namespace bbsmine {

TidSet TidSet::AllOf(size_t n) {
  TidSet set;
  set.dense_ = BitVector(n);
  set.dense_.SetAll();
  set.count_ = n;
  return set;
}

TidSet TidSet::FromDense(BitVector dense, size_t sparse_threshold) {
  TidSet set;
  set.count_ = dense.Count();
  if (set.count_ <= sparse_threshold) {
    set.sparse_ = true;
    set.tids_.reserve(set.count_);
    dense.AppendSetBits(&set.tids_);
  } else {
    set.dense_ = std::move(dense);
  }
  return set;
}

size_t TidSet::AssignIntersection(const TidSet& parent, const BitVector& with,
                                  size_t sparse_threshold,
                                  uint64_t min_count) {
  if (parent.sparse_) {
    // Sparse path: probe the item vector for each parent position. Abort
    // once even keeping every remaining parent position cannot reach
    // min_count.
    sparse_ = true;
    tids_.clear();
    size_t total = parent.tids_.size();
    // The result can't outgrow the parent (nor the universe); reserving up
    // front avoids reallocation churn across the Probe refinement's many
    // small intersections.
    tids_.reserve(std::min(total, static_cast<size_t>(with.size())));
    for (size_t i = 0; i < total; ++i) {
      if (min_count > 0 && tids_.size() + (total - i) < min_count) break;
      uint32_t tid = parent.tids_[i];
      if (with.Get(tid)) tids_.push_back(tid);
    }
    count_ = tids_.size();
    return count_;
  }

  // Dense path: one fused assign-AND-count kernel pass (no copy first).
  count_ = dense_.AssignAndCount(parent.dense_, with);
  if (count_ <= sparse_threshold) {
    sparse_ = true;
    tids_.clear();
    tids_.reserve(count_);
    dense_.AppendSetBits(&tids_);
  } else {
    sparse_ = false;
  }
  return count_;
}

void TidSet::AppendPositions(std::vector<uint32_t>* out) const {
  if (sparse_) {
    out->insert(out->end(), tids_.begin(), tids_.end());
  } else {
    dense_.AppendSetBits(out);
  }
}

void TidSet::AssignSparse(std::vector<uint32_t> tids) {
  sparse_ = true;
  tids_ = std::move(tids);
  count_ = tids_.size();
  dense_ = BitVector();
}

}  // namespace bbsmine
