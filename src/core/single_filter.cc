#include "core/single_filter.h"

#include <utility>

namespace bbsmine {

namespace {

/// Recursive GenerateAndFilter (Figure 2), realized as a narrowed-sibling
/// depth-first walk: each node carries the list of singletons that survived
/// the estimate test at its parent, so an extension rejected once is never
/// re-tested inside that subtree. This is licensed by the anti-monotonicity
/// of BBS estimates (a superset's query vector selects a superset of
/// slices): est(X u {i}) < tau implies est(Y u {i}) < tau for all Y
/// containing X. The set of emitted candidates is identical to the paper's
/// formulation; only redundant CountItemSet evaluations are skipped.
class SingleFilterWalk {
 public:
  SingleFilterWalk(const FilterEngine& engine, MineStats* stats,
                   std::vector<Candidate>* out)
      : engine_(engine), stats_(stats), out_(out) {}

  void Run() {
    // Roots: every estimated-frequent singleton.
    std::vector<Node> roots;
    const auto& singles = engine_.singletons();
    roots.reserve(singles.size());
    for (size_t idx = 0; idx < singles.size(); ++idx) {
      Node node;
      node.idx = idx;
      node.est = singles[idx].est;
      node.set =
          TidSet::FromDense(singles[idx].vector, engine_.sparse_threshold());
      roots.push_back(std::move(node));
    }
    Recurse(&roots);
  }

 private:
  struct Node {
    size_t idx = 0;    // index into engine_.singletons()
    uint64_t est = 0;  // estimated count of the node's itemset
    TidSet set;        // CountItemSet result vector of the node's itemset
  };

  void Recurse(std::vector<Node>* siblings) {
    const auto& singles = engine_.singletons();
    for (size_t i = 0; i < siblings->size(); ++i) {
      Node& node = (*siblings)[i];
      current_.push_back(singles[node.idx].item);

      Itemset canonical = current_;
      Canonicalize(&canonical);
      out_->push_back(Candidate{std::move(canonical), node.est});
      if (stats_ != nullptr) ++stats_->candidates;

      std::vector<Node> children;
      for (size_t j = i + 1; j < siblings->size(); ++j) {
        Node child;
        child.idx = (*siblings)[j].idx;
        child.est = engine_.ExtendHybrid(child.idx, node.set, &child.set);
        if (stats_ != nullptr) ++stats_->extension_tests;
        if (child.est >= engine_.tau()) children.push_back(std::move(child));
      }
      if (!children.empty()) Recurse(&children);
      current_.pop_back();
    }
  }

  const FilterEngine& engine_;
  MineStats* stats_;
  std::vector<Candidate>* out_;
  Itemset current_;
};

}  // namespace

std::vector<Candidate> RunSingleFilter(const FilterEngine& engine,
                                       MineStats* stats) {
  std::vector<Candidate> out;
  SingleFilterWalk(engine, stats, &out).Run();
  return out;
}

}  // namespace bbsmine
