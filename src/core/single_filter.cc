#include "core/single_filter.h"

#include <algorithm>
#include <utility>

#include "obs/trace.h"
#include "util/stopwatch.h"
#include "util/thread_pool.h"

namespace bbsmine {

namespace {

/// Recursive GenerateAndFilter (Figure 2), realized as a narrowed-sibling
/// depth-first walk: each node carries the list of singletons that survived
/// the estimate test at its parent, so an extension rejected once is never
/// re-tested inside that subtree. This is licensed by the anti-monotonicity
/// of BBS estimates (a superset's query vector selects a superset of
/// slices): est(X u {i}) < tau implies est(Y u {i}) < tau for all Y
/// containing X. The set of emitted candidates is identical to the paper's
/// formulation; only redundant CountItemSet evaluations are skipped.
///
/// The walk is split at the root: subtree i (rooted at singleton i, with
/// extensions drawn from singletons j > i) depends only on the shared
/// read-only root table, so subtrees run on independent threads and their
/// outputs are concatenated in root order — bit-identical to the serial
/// depth-first emission.

struct Node {
  size_t idx = 0;    // index into engine.singletons()
  uint64_t est = 0;  // estimated count of the node's itemset
  TidSet set;        // CountItemSet result vector of the node's itemset
};

/// One estimated-frequent root per singleton, in walk order.
std::vector<Node> BuildRoots(const FilterEngine& engine) {
  const auto& singles = engine.singletons();
  std::vector<Node> roots;
  roots.reserve(singles.size());
  for (size_t idx = 0; idx < singles.size(); ++idx) {
    Node node;
    node.idx = idx;
    node.est = singles[idx].est;
    node.set =
        TidSet::FromDense(singles[idx].vector, engine.sparse_threshold());
    roots.push_back(std::move(node));
  }
  return roots;
}

class SingleFilterWalk {
 public:
  SingleFilterWalk(const FilterEngine& engine, MineStats* stats,
                   std::vector<Candidate>* out)
      : engine_(engine), stats_(stats), out_(out) {}

  /// Emits the whole subtree rooted at roots[i].
  void RunSubtree(const std::vector<Node>& roots, size_t i) {
    Visit(roots[i], roots, i);
  }

 private:
  /// Emits `node` (the extension of current_ by node.idx's item) and
  /// recurses into its surviving extensions, drawn from siblings[j > i].
  void Visit(const Node& node, const std::vector<Node>& siblings, size_t i) {
    const auto& singles = engine_.singletons();
    current_.push_back(singles[node.idx].item);

    Itemset canonical = current_;
    Canonicalize(&canonical);
    out_->push_back(Candidate{std::move(canonical), node.est});
    if (stats_ != nullptr) {
      ++stats_->candidates;
      stats_->candidates_by_depth.Add(current_.size());
    }

    std::vector<Node> children;
    for (size_t j = i + 1; j < siblings.size(); ++j) {
      Node child;
      child.idx = siblings[j].idx;
      child.est = engine_.ExtendHybrid(child.idx, node.set, &child.set);
      if (stats_ != nullptr) ++stats_->extension_tests;
      if (child.est >= engine_.tau()) {
        children.push_back(std::move(child));
      } else if (stats_ != nullptr) {
        stats_->pruned_by_depth.Add(current_.size() + 1);
      }
    }
    for (size_t j = 0; j < children.size(); ++j) {
      Visit(children[j], children, j);
    }
    current_.pop_back();
  }

  const FilterEngine& engine_;
  MineStats* stats_;
  std::vector<Candidate>* out_;
  Itemset current_;
};

}  // namespace

std::vector<Candidate> RunSingleFilter(const FilterEngine& engine,
                                       MineStats* stats, size_t num_threads) {
  std::vector<Node> roots = BuildRoots(engine);

  // Per-root output buffers keep the merge deterministic: concatenating in
  // root order reproduces the serial depth-first order exactly, no matter
  // which thread ran which subtree.
  std::vector<std::vector<Candidate>> per_root(roots.size());
  std::vector<MineStats> per_root_stats(roots.size());
  uint64_t queue_depth = 0;
  ParallelFor(
      num_threads, roots.size(),
      [&](size_t i) {
        obs::TraceSpan span(engine.tracer(), obs::kTraceFilter,
                            "filter.subtree");
        Stopwatch cpu;
        SingleFilterWalk walk(engine, &per_root_stats[i], &per_root[i]);
        walk.RunSubtree(roots, i);
        per_root_stats[i].filter_cpu_seconds = cpu.ElapsedSeconds();
        span.AddArg("root", i);
        span.AddArg("candidates", per_root_stats[i].candidates);
      },
      &queue_depth);

  std::vector<Candidate> out;
  size_t total = 0;
  for (const auto& chunk : per_root) total += chunk.size();
  out.reserve(total);
  for (size_t i = 0; i < roots.size(); ++i) {
    for (Candidate& candidate : per_root[i]) {
      out.push_back(std::move(candidate));
    }
    if (stats != nullptr) *stats += per_root_stats[i];
  }
  if (stats != nullptr) {
    stats->max_queue_depth = std::max(stats->max_queue_depth, queue_depth);
  }
  return out;
}

}  // namespace bbsmine
