// Approximate mining — the extension sketched in the paper's conclusion
// (Section 5): "doing away with phase 2 ... the answer patterns are but an
// approximate set of the actual answers ... we are looking into mechanisms
// to provide some kind of probability on the likelihood of a pattern to be
// a frequent pattern."
//
// This module runs the DualFilter alone (no refinement) and annotates every
// returned pattern with such a probability:
//
//   * patterns certified by CheckCount (Lemma 5 / Corollary 1) have
//     confidence exactly 1;
//   * for the rest, the number of *spurious* transactions in the
//     CountItemSet result (signatures that cover the query bits by chance)
//     is modeled as Poisson with mean
//         lambda = sum over counted transactions t of (s_t / m)^b
//     where s_t is transaction t's signature popcount (maintained by the
//     index), m the vector width, and b the number of distinct query bits.
//     The pattern is frequent iff spurious <= est - tau, so
//         confidence = P[Poisson(lambda) <= est - tau].
//
// By Lemma 4 the returned set always contains every truly frequent pattern
// (recall 1); `min_confidence` trades precision for output size.

#ifndef BBSMINE_CORE_APPROXIMATE_H_
#define BBSMINE_CORE_APPROXIMATE_H_

#include <cstdint>
#include <vector>

#include "core/bbs_index.h"
#include "core/mining_types.h"

namespace bbsmine {

/// A pattern from the approximate (filter-only) miner.
struct ApproxPattern {
  Itemset items;          // canonical
  uint64_t est = 0;       // BBS estimate (>= true support)
  double confidence = 0;  // P[pattern is truly frequent] under the model
  bool certified = false; // true when CheckCount guaranteed frequency
};

/// Knobs for approximate mining.
struct ApproxMineConfig {
  /// Minimum support as a fraction of the number of transactions.
  double min_support = 0.003;

  /// Patterns with modeled confidence below this are dropped. 0 keeps
  /// everything the filter produces (maximum recall).
  double min_confidence = 0.0;
};

/// Filter-only mining over the BBS: every estimated-frequent itemset, each
/// with a confidence annotation. Requires an index with 1-itemset counts.
/// The returned list is in walk order; stats (optional) accrues filter
/// counters.
std::vector<ApproxPattern> MineApproximate(const BbsIndex& bbs,
                                           const ApproxMineConfig& config,
                                           const Itemset& universe,
                                           MineStats* stats = nullptr);

/// P[Poisson(lambda) <= k], exposed for tests.
double PoissonCdf(double lambda, uint64_t k);

}  // namespace bbsmine

#endif  // BBSMINE_CORE_APPROXIMATE_H_
