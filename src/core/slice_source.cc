#include "core/slice_source.h"

namespace bbsmine {

Result<IndexBackend> ParseIndexBackend(std::string_view name) {
  if (name == "resident") return IndexBackend::kResident;
  if (name == "mmap") return IndexBackend::kMmap;
  return Status::InvalidArgument("unknown index backend '" +
                                 std::string(name) +
                                 "' (expected resident|mmap)");
}

const char* IndexBackendName(IndexBackend backend) {
  return backend == IndexBackend::kMmap ? "mmap" : "resident";
}

size_t ResidentSliceSource::ApproxResidentBytes() const {
  size_t total = 0;
  for (const BitVector& slice : slices_) total += slice.MemoryUsage();
  return total;
}

std::unique_ptr<SliceSource> ResidentSliceSource::Clone() const {
  auto copy = std::make_unique<ResidentSliceSource>(0);
  copy->slices_ = slices_;
  return copy;
}

void MmapSliceSource::AdviseSequentialScan() const {
  const uint64_t bytes = static_cast<uint64_t>(num_slices_) * stride_bytes_;
  file_->AdviseSequential(data_offset_, bytes);
  file_->AdviseWillNeed(data_offset_, bytes);
}

std::unique_ptr<SliceSource> MmapSliceSource::Clone() const {
  return std::make_unique<MmapSliceSource>(file_, data_offset_, stride_bytes_,
                                           num_slices_, words_per_slice_,
                                           slice_bits_);
}

}  // namespace bbsmine
