// A hybrid dense/sparse set of transaction positions.
//
// The filter walk carries, for each enumeration node, the set of
// transactions whose signatures cover the node's itemset (the CountItemSet
// result vector). Near the root these sets are large and a bit vector (one
// bit per transaction) with word-parallel AND is ideal; deeper in the walk
// the sets shrink toward the support threshold and a sorted position list
// intersected by bit probes is an order of magnitude cheaper. TidSet
// switches representation automatically when a set first drops below the
// sparsity threshold.

#ifndef BBSMINE_CORE_TIDSET_H_
#define BBSMINE_CORE_TIDSET_H_

#include <cstdint>
#include <vector>

#include "util/bitvector.h"

namespace bbsmine {

/// Hybrid transaction-position set used by the filter recursion.
class TidSet {
 public:
  TidSet() = default;

  /// A dense set holding every position in [0, n).
  static TidSet AllOf(size_t n);

  /// Wraps an existing dense vector (moves it in), converting to the sparse
  /// representation when its count is at most `sparse_threshold`.
  static TidSet FromDense(BitVector dense, size_t sparse_threshold = 0);

  bool sparse() const { return sparse_; }
  size_t count() const { return count_; }

  /// The dense representation. Only valid when !sparse().
  const BitVector& dense() const { return dense_; }

  /// The sparse representation (ascending positions). Only valid when
  /// sparse().
  const std::vector<uint32_t>& tids() const { return tids_; }

  /// Intersects `parent` with the item vector `with` (a dense bit vector of
  /// the same universe) into *this, reusing this object's buffers. Converts
  /// the result to sparse once its count is at most `sparse_threshold`.
  /// Returns the resulting count.
  ///
  /// When `min_count` > 0 the intersection may abort early once the count
  /// provably cannot reach min_count; the returned value is then some value
  /// below min_count and *this is unspecified (callers discard rejected
  /// extensions, so only the reaches/doesn't-reach signal matters).
  size_t AssignIntersection(const TidSet& parent, const BitVector& with,
                            size_t sparse_threshold, uint64_t min_count = 0);

  /// Materializes the positions (works for both representations).
  void AppendPositions(std::vector<uint32_t>* out) const;

  /// Replaces the contents with the given sparse positions (ascending).
  void AssignSparse(std::vector<uint32_t> tids);

 private:
  bool sparse_ = false;
  size_t count_ = 0;
  BitVector dense_;
  std::vector<uint32_t> tids_;
};

}  // namespace bbsmine

#endif  // BBSMINE_CORE_TIDSET_H_
