#include "core/constraint_index.h"

namespace bbsmine {

Status ConstraintIndex::Register(const std::string& name, Predicate predicate,
                                 const std::vector<Transaction>& backfill) {
  if (index_.contains(name)) {
    return Status::InvalidArgument("constraint already registered: " + name);
  }
  if (backfill.size() < num_transactions_) {
    return Status::InvalidArgument(
        "backfill covers " + std::to_string(backfill.size()) +
        " transactions but " + std::to_string(num_transactions_) +
        " were already inserted");
  }

  Entry entry;
  entry.predicate = std::move(predicate);
  entry.slice = BitVector(num_transactions_);
  for (size_t t = 0; t < num_transactions_; ++t) {
    if (entry.predicate(backfill[t])) entry.slice.Set(t);
  }

  index_.emplace(name, slices_.size());
  names_.push_back(name);
  slices_.push_back(std::move(entry));
  return Status::Ok();
}

void ConstraintIndex::OnInsert(const Transaction& txn) {
  for (Entry& entry : slices_) {
    entry.slice.PushBack(entry.predicate(txn));
  }
  ++num_transactions_;
}

Result<const BitVector*> ConstraintIndex::Slice(
    const std::string& name) const {
  auto it = index_.find(name);
  if (it == index_.end()) {
    return Status::NotFound("unknown constraint: " + name);
  }
  return &slices_[it->second].slice;
}

Result<BitVector> ConstraintIndex::And(
    const std::vector<std::string>& names) const {
  BitVector out(num_transactions_, true);
  for (const std::string& name : names) {
    Result<const BitVector*> slice = Slice(name);
    if (!slice.ok()) return slice.status();
    out.AndWith(**slice);
  }
  return out;
}

Result<BitVector> ConstraintIndex::Or(
    const std::vector<std::string>& names) const {
  BitVector out(num_transactions_);
  for (const std::string& name : names) {
    Result<const BitVector*> slice = Slice(name);
    if (!slice.ok()) return slice.status();
    out.OrWith(**slice);
  }
  return out;
}

Result<BitVector> ConstraintIndex::Not(const std::string& name) const {
  Result<const BitVector*> slice = Slice(name);
  if (!slice.ok()) return slice.status();
  BitVector out = **slice;
  out.FlipAll();
  return out;
}

}  // namespace bbsmine
