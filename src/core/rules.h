// Association-rule generation from mined frequent patterns.
//
// The paper's opening motivation: "Almost all important data mining tasks,
// such as association rule mining, correlations and causality, require
// frequent patterns to be mined first." This module implements that
// downstream step (Agrawal & Srikant's rule generation): for every frequent
// itemset Z and every non-empty proper subset A of Z, emit A => Z \ A when
//     confidence = support(Z) / support(A) >= min_confidence,
// using the anti-monotone fast path: if A => Z \ A fails, no subset of A
// can succeed as an antecedent of Z either, so consequents grow level-wise.
//
// Lift is reported against the independence baseline:
//     lift = confidence / (support(consequent) / N).

#ifndef BBSMINE_CORE_RULES_H_
#define BBSMINE_CORE_RULES_H_

#include <cstdint>
#include <vector>

#include "core/mining_types.h"

namespace bbsmine {

/// One association rule antecedent => consequent.
struct AssociationRule {
  Itemset antecedent;   // canonical, non-empty
  Itemset consequent;   // canonical, non-empty, disjoint from antecedent
  uint64_t support = 0; // support of antecedent U consequent
  double confidence = 0;
  double lift = 0;

  bool operator==(const AssociationRule& other) const {
    return antecedent == other.antecedent && consequent == other.consequent;
  }
};

/// Knobs for rule generation.
struct RuleConfig {
  /// Minimum confidence in [0, 1].
  double min_confidence = 0.5;

  /// Maximum number of rules returned (highest confidence first);
  /// 0 = unlimited.
  size_t max_rules = 0;
};

/// Generates the association rules implied by `result` over a database of
/// `num_transactions` records. `result` must contain exact supports for
/// every frequent itemset (the output of any of the exact miners); patterns
/// whose supports are flagged as estimates are used as-is.
/// Rules are returned sorted by descending confidence (ties: by support,
/// then lexicographically).
std::vector<AssociationRule> GenerateRules(const MiningResult& result,
                                           size_t num_transactions,
                                           const RuleConfig& config);

}  // namespace bbsmine

#endif  // BBSMINE_CORE_RULES_H_
