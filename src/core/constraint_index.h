// Named, incrementally maintained constraint slices (paper Section 3.4).
//
// Ad-hoc constrained queries AND one extra bit-slice into CountItemSet's
// result: "we only need to generate a bit slice such that a bit is set if
// the corresponding transaction falls in the month of October". Building
// that slice on demand costs a database scan; a production deployment keeps
// the slices for its common predicates *maintained incrementally like the
// BBS itself*. ConstraintIndex does exactly that: predicates are registered
// once, and every OnInsert extends all slices by one bit — keeping them
// aligned with the BBS's transaction positions forever.
//
// Slices compose with plain bit-vector algebra (AND/OR/NOT), so conjunctive
// and disjunctive constraints need no re-scan either.

#ifndef BBSMINE_CORE_CONSTRAINT_INDEX_H_
#define BBSMINE_CORE_CONSTRAINT_INDEX_H_

#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "storage/transaction.h"
#include "util/bitvector.h"
#include "util/status.h"

namespace bbsmine {

/// A registry of named constraint slices kept in lockstep with the
/// database/BBS insert stream.
class ConstraintIndex {
 public:
  using Predicate = std::function<bool(const Transaction&)>;

  ConstraintIndex() = default;

  /// Registers `name` with its predicate. If transactions were already
  /// inserted, `backfill` (the existing transactions, in insert order) must
  /// be supplied so the new slice covers them. Fails if the name exists.
  Status Register(const std::string& name, Predicate predicate,
                  const std::vector<Transaction>& backfill = {});

  /// Extends every registered slice with the verdicts for `txn`. Call once
  /// per transaction, in the same order as BbsIndex::Insert.
  void OnInsert(const Transaction& txn);

  /// Number of transactions observed.
  size_t num_transactions() const { return num_transactions_; }

  /// Number of registered constraints.
  size_t size() const { return slices_.size(); }

  bool Contains(const std::string& name) const {
    return index_.contains(name);
  }

  /// The slice for `name`. Fails with kNotFound for unknown names.
  Result<const BitVector*> Slice(const std::string& name) const;

  /// Conjunction of the named slices (all must exist).
  Result<BitVector> And(const std::vector<std::string>& names) const;

  /// Disjunction of the named slices (all must exist).
  Result<BitVector> Or(const std::vector<std::string>& names) const;

  /// Complement of the named slice.
  Result<BitVector> Not(const std::string& name) const;

  /// Registered names, in registration order.
  const std::vector<std::string>& names() const { return names_; }

 private:
  struct Entry {
    Predicate predicate;
    BitVector slice;
  };

  std::vector<std::string> names_;
  std::vector<Entry> slices_;
  std::unordered_map<std::string, size_t> index_;
  size_t num_transactions_ = 0;
};

}  // namespace bbsmine

#endif  // BBSMINE_CORE_CONSTRAINT_INDEX_H_
