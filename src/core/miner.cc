#include "core/miner.h"

#include <algorithm>
#include <cassert>
#include <optional>
#include <utility>

#include "core/dual_filter.h"
#include "core/filter_engine.h"
#include "core/refine.h"
#include "core/single_filter.h"
#include "obs/trace.h"
#include "storage/page_cache.h"
#include "util/stopwatch.h"
#include "util/thread_pool.h"

namespace bbsmine {

namespace {

/// Shared per-run context.
struct RunContext {
  const TransactionDatabase& db;
  const BbsIndex& bbs;       // the full (on-disk) index
  const BbsIndex* filter_index;  // the index the filter runs on (may be folded)
  const MineConfig& config;
  uint64_t tau;
  PageCache* cache;          // buffer pool model for probes (may be null)
  size_t num_threads;        // resolved worker count (>= 1)
  MiningResult* result;
};

/// Integrated filter+probe recursion shared by SFP and DFP.
///
/// For SFP every accepted candidate is probed immediately; for DFP only the
/// flag-0 (uncertain) candidates are. In both schemes the recursion only
/// descends into candidates known to be truly frequent (or, for DFP flag 2,
/// guaranteed frequent), which prevents false drops from triggering further
/// false drops.
///
/// As in the pure filter walks, the recursion splits at the root: subtree i
/// depends only on the read-only root table (and the thread-safe database /
/// page cache), so subtrees run on independent threads, each emitting into
/// its own pattern buffer; buffers are concatenated in root order, which
/// reproduces the serial emission exactly. Probes return exact counts, so
/// the pattern set and supports are schedule-independent.
class IntegratedProbeWalk {
 public:
  struct Node {
    size_t idx = 0;
    uint64_t est = 0;
    CheckCountResult check;  // only meaningful for DFP
    TidSet set;
  };

  IntegratedProbeWalk(RunContext* ctx, const FilterEngine& engine, bool dual,
                      MineStats* stats, std::vector<Pattern>* out)
      : ctx_(ctx), engine_(engine), dual_(dual), stats_(stats), out_(out) {}

  /// Roots: every estimated-frequent singleton (minus, for DFP, the
  /// exactly-known infrequent ones).
  static std::vector<Node> BuildRoots(const FilterEngine& engine, bool dual) {
    const auto& singles = engine.singletons();
    ParentState root;
    std::vector<Node> roots;
    roots.reserve(singles.size());
    for (size_t idx = 0; idx < singles.size(); ++idx) {
      const FilterEngine::Singleton& single = singles[idx];
      Node node;
      node.idx = idx;
      node.est = single.est;
      if (dual) {
        node.check = CheckCount(single.exact, single.est, root, single.est,
                                engine.tau());
        if (node.check.flag < 0) continue;  // exactly-known infrequent
      }
      node.set = TidSet::FromDense(single.vector, engine.sparse_threshold());
      roots.push_back(std::move(node));
    }
    return roots;
  }

  void RunSubtree(const std::vector<Node>& roots, size_t i) {
    // Local copy: tighten-after-probe may shrink the node's TidSet, and the
    // shared root table must stay read-only across threads.
    Node node = roots[i];
    Visit(&node, roots, i);
  }

  double probe_seconds() const { return probe_seconds_; }

 private:
  void Visit(Node* node, const std::vector<Node>& siblings, size_t i) {
    const auto& singles = engine_.singletons();
    current_.push_back(singles[node->idx].item);
    canonical_ = current_;
    Canonicalize(&canonical_);
    ++stats_->candidates;
    stats_->candidates_by_depth.Add(current_.size());

    ParentState state;
    state.est = node->est;
    state.empty = false;
    bool keep = false;

    if (dual_ && node->check.flag > 0) {
      ++stats_->certified;
      out_->push_back(
          Pattern{canonical_, node->check.count,
                  node->check.flag == 1 ? SupportKind::kExact
                                        : SupportKind::kGuaranteedEstimate});
      state.flag = node->check.flag;
      state.count = node->check.count;
      keep = true;
    } else {
      keep = ProbeAndEmit(&node->set, &state);
    }

    if (keep) {
      std::vector<Node> children;
      for (size_t j = i + 1; j < siblings.size(); ++j) {
        size_t idx = siblings[j].idx;
        const FilterEngine::Singleton& single = singles[idx];
        Node child;
        child.idx = idx;
        child.est = engine_.ExtendHybrid(idx, node->set, &child.set);
        ++stats_->extension_tests;
        if (child.est < ctx_->tau) {
          stats_->pruned_by_depth.Add(current_.size() + 1);
          continue;
        }
        if (dual_) {
          child.check = CheckCount(single.exact, single.est, state, child.est,
                                   ctx_->tau);
        }
        children.push_back(std::move(child));
      }
      for (size_t j = 0; j < children.size(); ++j) {
        Visit(&children[j], children, j);
      }
    }
    current_.pop_back();
  }

  /// Probes the database for the current itemset. On success emits the
  /// pattern with its exact support, fills `next` (flag 1), and returns
  /// true. On failure records a false drop and returns false.
  bool ProbeAndEmit(TidSet* extended, ParentState* next) {
    Stopwatch probe_timer;
    std::vector<uint32_t> matching;
    std::vector<uint32_t>* matching_out =
        ctx_->config.tighten_after_probe ? &matching : nullptr;
    uint64_t actual;
    {
      obs::TraceSpan span(ctx_->config.tracer, obs::kTraceProbe, "probe");
      actual = ProbeCount(ctx_->db, canonical_, *extended, ctx_->cache,
                          stats_, matching_out);
      span.AddArg("items", canonical_.size());
      span.AddArg("support", actual);
    }
    probe_seconds_ += probe_timer.ElapsedSeconds();
    if (actual < ctx_->tau) {
      ++stats_->false_drops;
      stats_->false_drops_by_depth.Add(canonical_.size());
      return false;
    }
    out_->push_back(Pattern{canonical_, actual, SupportKind::kExact});
    next->flag = 1;
    next->count = actual;
    if (ctx_->config.tighten_after_probe) {
      extended->AssignSparse(std::move(matching));
      // The tightened set makes the estimate exact for descendants.
      next->est = actual;
    }
    return true;
  }

  RunContext* ctx_;
  const FilterEngine& engine_;
  bool dual_;
  MineStats* stats_;
  std::vector<Pattern>* out_;
  Itemset current_;
  Itemset canonical_;
  double probe_seconds_ = 0;
};

/// Runs the integrated walk over all root subtrees (in parallel when the
/// context allows), appending the patterns to ctx->result in root order.
/// Each subtree's busy time lands in its shard's filter_cpu_seconds, minus
/// the probe time, which lands in refine_cpu_seconds (the integrated
/// schemes refine inside the filter walk).
void RunIntegratedProbeWalk(RunContext* ctx, const FilterEngine& engine,
                            bool dual, MineStats* stats) {
  std::vector<IntegratedProbeWalk::Node> roots =
      IntegratedProbeWalk::BuildRoots(engine, dual);

  std::vector<std::vector<Pattern>> per_root(roots.size());
  std::vector<MineStats> per_root_stats(roots.size());
  uint64_t queue_depth = 0;
  ParallelFor(
      ctx->num_threads, roots.size(),
      [&](size_t i) {
        obs::TraceSpan span(ctx->config.tracer, obs::kTraceFilter,
                            "filter.subtree");
        Stopwatch cpu;
        IntegratedProbeWalk walk(ctx, engine, dual, &per_root_stats[i],
                                 &per_root[i]);
        walk.RunSubtree(roots, i);
        double probe_seconds = walk.probe_seconds();
        per_root_stats[i].refine_cpu_seconds = probe_seconds;
        per_root_stats[i].filter_cpu_seconds =
            std::max(0.0, cpu.ElapsedSeconds() - probe_seconds);
        span.AddArg("root", i);
        span.AddArg("candidates", per_root_stats[i].candidates);
      },
      &queue_depth);

  for (size_t i = 0; i < roots.size(); ++i) {
    for (Pattern& pattern : per_root[i]) {
      ctx->result->patterns.push_back(std::move(pattern));
    }
    *stats += per_root_stats[i];
  }
  stats->max_queue_depth = std::max(stats->max_queue_depth, queue_depth);
}

/// Phase-3 postprocessing of the adaptive variant: re-estimates every
/// candidate on the full BBS in one streaming pass and drops the ones below
/// threshold. Returns the survivors with their (tighter) full-BBS estimates.
/// The per-candidate CountItemSet calls are independent and run in parallel;
/// survivors keep candidate order, so the output is schedule-independent.
std::vector<Candidate> PostprocessOnFullBbs(const BbsIndex& bbs,
                                            std::vector<Candidate> candidates,
                                            uint64_t tau, uint32_t block_size,
                                            MineStats* stats,
                                            size_t num_threads,
                                            obs::Tracer* tracer) {
  obs::TraceSpan span(tracer, obs::kTracePhase, "postprocess");
  span.AddArg("candidates", candidates.size());
  bbs.ChargeFullScan(&stats->io, block_size);  // one pass over the full BBS
  std::vector<size_t> estimates(candidates.size(), 0);
  std::vector<double> cpu(candidates.size(), 0.0);
  ParallelFor(
      num_threads, candidates.size(),
      [&](size_t i) {
        obs::TraceSpan kernel(tracer, obs::kTraceKernel, "bbs.count_full");
        Stopwatch sw;
        estimates[i] = bbs.CountItemSet(candidates[i].items);
        cpu[i] = sw.ElapsedSeconds();
      },
      &stats->max_queue_depth);
  stats->extension_tests += candidates.size();
  for (double s : cpu) stats->filter_cpu_seconds += s;

  std::vector<Candidate> survivors;
  survivors.reserve(candidates.size());
  for (size_t i = 0; i < candidates.size(); ++i) {
    if (estimates[i] >= tau) {
      candidates[i].est = estimates[i];
      survivors.push_back(std::move(candidates[i]));
    } else {
      stats->pruned_by_depth.Add(candidates[i].items.size());
    }
  }
  return survivors;
}

}  // namespace

MiningResult MineFrequentPatterns(const TransactionDatabase& db,
                                  const BbsIndex& bbs,
                                  const MineConfig& config,
                                  const Itemset& universe) {
  assert(bbs.num_transactions() == db.size() &&
         "the BBS must index exactly the database's transactions");
  Stopwatch total_timer;
  obs::TraceSpan mine_span(config.tracer, obs::kTracePhase, "mine");
  mine_span.AddArg("algorithm", AlgorithmName(config.algorithm));
  MiningResult result;
  MineStats& stats = result.stats;
  uint64_t tau = AbsoluteThreshold(config.min_support, db.size());
  size_t num_threads = ResolveThreads(config.num_threads);

  // --- Memory policy -------------------------------------------------------
  // Reading the BBS from storage costs one sequential pass regardless.
  bbs.ChargeFullScan(&stats.io, config.block_size);

  // Memory regimes:
  //  * resident    — the BBS and the database both fit: the integrated
  //    filter+probe recursions run, and probe first-touches cost one
  //    sequential load of the file;
  //  * constrained — the two-phase adaptive variant runs. The BBS is
  //    additionally folded into a MemBBS (Section 3.1) when it alone
  //    exceeds the budget.
  uint64_t budget = config.memory_budget_bytes;
  uint64_t db_blocks = BlocksFor(db.SerializedBytes(), config.block_size) + 1;
  bool resident =
      budget == 0 || budget >= bbs.SerializedBytes() + db.SerializedBytes();

  std::optional<BbsIndex> folded;
  const BbsIndex* filter_index = &bbs;
  if (!resident && bbs.SerializedBytes() > budget) {
    // Fold into a MemBBS using roughly 3/4 of the budget, leaving the rest
    // for the buffer pool.
    uint64_t slice_bytes = std::max<uint64_t>(1, bbs.SliceBytes());
    uint64_t target = (budget * 3 / 4) / slice_bytes;
    target = std::clamp<uint64_t>(target, 16, bbs.num_bits());
    folded = bbs.Fold(static_cast<uint32_t>(target));
    filter_index = &*folded;
  }

  uint64_t cache_blocks =
      resident ? db_blocks
               : std::max<uint64_t>(1, (budget / 4) / config.block_size);
  PageCache cache(std::min(cache_blocks, db_blocks));

  RunContext ctx{db,  bbs,    filter_index, config,
                 tau, &cache, num_threads,  &result};

  // --- Filtering (+ integrated probing for SFP/DFP) ------------------------
  Stopwatch filter_timer;
  FilterEngine engine(*filter_index, tau);
  engine.SetTracer(config.tracer);
  {
    // Prepare runs serially on the coordinating thread; its busy time
    // belongs to the filter phase's CPU total.
    Stopwatch prepare_timer;
    engine.Prepare(universe, &stats, config.rare_first_order);
    stats.filter_cpu_seconds += prepare_timer.ElapsedSeconds();
  }

  switch (config.algorithm) {
    case Algorithm::kSFS: {
      std::vector<Candidate> candidates;
      {
        obs::TraceSpan span(config.tracer, obs::kTracePhase, "filter.walk");
        candidates = RunSingleFilter(engine, &stats, num_threads);
      }
      if (folded.has_value()) {
        candidates = PostprocessOnFullBbs(bbs, std::move(candidates), tau,
                                          config.block_size, &stats,
                                          num_threads, config.tracer);
      }
      stats.filter_wall_seconds = filter_timer.ElapsedSeconds();
      Stopwatch refine_timer;
      {
        obs::TraceSpan span(config.tracer, obs::kTracePhase, "refine");
        result.patterns = RefineSequentialScan(db, candidates, tau, budget,
                                               &stats, num_threads,
                                               config.tracer);
      }
      stats.refine_wall_seconds = refine_timer.ElapsedSeconds();
      break;
    }
    case Algorithm::kDFS: {
      DualFilterOutput out;
      {
        obs::TraceSpan span(config.tracer, obs::kTracePhase, "filter.walk");
        out = RunDualFilter(engine, &stats, num_threads);
      }
      // Certified patterns go straight to the answer set.
      for (const DualCandidate& c : out.certain) {
        result.patterns.push_back(
            Pattern{c.items, c.count,
                    c.flag == 1 ? SupportKind::kExact
                                : SupportKind::kGuaranteedEstimate});
      }
      std::vector<Candidate> uncertain;
      uncertain.reserve(out.uncertain.size());
      for (DualCandidate& c : out.uncertain) {
        uncertain.push_back(Candidate{std::move(c.items), c.est});
      }
      if (folded.has_value()) {
        uncertain = PostprocessOnFullBbs(bbs, std::move(uncertain), tau,
                                         config.block_size, &stats,
                                         num_threads, config.tracer);
      }
      stats.filter_wall_seconds = filter_timer.ElapsedSeconds();
      Stopwatch refine_timer;
      std::vector<Pattern> verified;
      {
        obs::TraceSpan span(config.tracer, obs::kTracePhase, "refine");
        verified = RefineSequentialScan(db, uncertain, tau, budget, &stats,
                                        num_threads, config.tracer);
      }
      stats.refine_wall_seconds = refine_timer.ElapsedSeconds();
      result.patterns.insert(result.patterns.end(), verified.begin(),
                             verified.end());
      break;
    }
    case Algorithm::kSFP:
    case Algorithm::kDFP: {
      bool dual = config.algorithm == Algorithm::kDFP;
      if (resident) {
        // Memory-resident: the integrated filter+probe recursion. One
        // combined wall window, attributed to the filter phase (refine_wall
        // stays 0); the probe CPU arrives in refine_cpu_seconds through the
        // per-root shard merge.
        RunIntegratedProbeWalk(&ctx, engine, dual, &stats);
        stats.filter_wall_seconds = filter_timer.ElapsedSeconds();
        break;
      }
      // Adaptive three-phase variant: probing from MemBBS result vectors
      // would fetch every folded false drop from disk, so instead the
      // filter runs probe-free on the MemBBS, the postprocessing pass
      // re-estimates the survivors on the full BBS (one sequential stream),
      // and only then are the remaining candidates probed — with the tight
      // full-BBS result vectors.
      std::vector<Candidate> uncertain;
      {
        obs::TraceSpan span(config.tracer, obs::kTracePhase, "filter.walk");
        if (dual) {
          DualFilterOutput out = RunDualFilter(engine, &stats, num_threads);
          for (const DualCandidate& c : out.certain) {
            result.patterns.push_back(
                Pattern{c.items, c.count,
                        c.flag == 1 ? SupportKind::kExact
                                    : SupportKind::kGuaranteedEstimate});
          }
          uncertain.reserve(out.uncertain.size());
          for (DualCandidate& c : out.uncertain) {
            uncertain.push_back(Candidate{std::move(c.items), c.est});
          }
        } else {
          uncertain = RunSingleFilter(engine, &stats, num_threads);
        }
      }
      if (folded.has_value()) {
        uncertain = PostprocessOnFullBbs(bbs, std::move(uncertain), tau,
                                         config.block_size, &stats,
                                         num_threads, config.tracer);
      }
      stats.filter_wall_seconds = filter_timer.ElapsedSeconds();

      // Cost-based refinement choice: with a small buffer pool most probes
      // miss and pay a seek, so probing all survivors can exceed a few
      // sequential verification scans. Estimate both and take the cheaper.
      Stopwatch refine_timer;
      uint64_t expected_probes = 0;
      for (const Candidate& candidate : uncertain) {
        expected_probes += candidate.est;
      }
      uint64_t resident_blocks = cache.capacity();
      uint64_t expected_misses =
          resident_blocks >= db_blocks
              ? std::min<uint64_t>(expected_probes, db_blocks)
              : expected_probes;
      double probe_ms = static_cast<double>(expected_misses) *
                        config.io_params.random_block_ms;
      double scan_ms = static_cast<double>(db_blocks) *
                       config.io_params.sequential_block_ms;
      if (probe_ms <= scan_ms) {
        // Probe every survivor; candidates are independent, so they fan out
        // across threads, each with a private result vector and stats. The
        // merge below keeps candidate order, so the emitted patterns are
        // identical to the serial loop.
        std::vector<uint64_t> actual(uncertain.size(), 0);
        std::vector<MineStats> probe_stats(uncertain.size());
        ParallelFor(
            num_threads, uncertain.size(),
            [&](size_t i) {
              Stopwatch cpu;
              BitVector slice_result;
              // The re-estimate streams the candidate's slices from the full
              // BBS, so it is charged to the I/O model like any other
              // CountItemSet (phase 3 of the paper's cost accounting).
              {
                obs::TraceSpan kernel(config.tracer, obs::kTraceKernel,
                                      "bbs.count_full");
                bbs.CountItemSet(uncertain[i].items, &slice_result,
                                 &probe_stats[i].io);
              }
              {
                obs::TraceSpan span(config.tracer, obs::kTraceProbe, "probe");
                actual[i] = ProbeCount(db, uncertain[i].items, slice_result,
                                       &cache, &probe_stats[i]);
                span.AddArg("items", uncertain[i].items.size());
                span.AddArg("support", actual[i]);
              }
              probe_stats[i].refine_cpu_seconds = cpu.ElapsedSeconds();
            },
            &stats.max_queue_depth);
        for (size_t i = 0; i < uncertain.size(); ++i) {
          stats += probe_stats[i];
          if (actual[i] >= tau) {
            result.patterns.push_back(
                Pattern{uncertain[i].items, actual[i], SupportKind::kExact});
          } else {
            ++stats.false_drops;
            stats.false_drops_by_depth.Add(uncertain[i].items.size());
          }
        }
      } else {
        std::vector<Pattern> verified;
        {
          obs::TraceSpan span(config.tracer, obs::kTracePhase, "refine");
          verified = RefineSequentialScan(db, uncertain, tau, budget, &stats,
                                          num_threads, config.tracer);
        }
        result.patterns.insert(result.patterns.end(), verified.begin(),
                               verified.end());
      }
      stats.refine_wall_seconds = refine_timer.ElapsedSeconds();
      break;
    }
  }

  // The buffer pool's own counters are authoritative for the whole run;
  // copy (not merge) them into the stats so the report reads one source.
  PageCache::Counters cache_counters = cache.counters();
  stats.cache_hits = cache_counters.hits;
  stats.cache_misses = cache_counters.misses;
  stats.total_seconds = total_timer.ElapsedSeconds();
  return result;
}

MiningResult MineFrequentPatterns(const TransactionDatabase& db,
                                  const BbsIndex& bbs,
                                  const MineConfig& config) {
  Itemset universe(db.item_universe());
  for (ItemId i = 0; i < db.item_universe(); ++i) universe[i] = i;
  return MineFrequentPatterns(db, bbs, config, universe);
}

}  // namespace bbsmine
