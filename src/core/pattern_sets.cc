#include "core/pattern_sets.h"

#include <algorithm>
#include <map>

namespace bbsmine {

namespace {

/// Groups pattern indices by itemset length (ascending lengths).
std::vector<std::vector<size_t>> ByLength(const std::vector<Pattern>& patterns,
                                          size_t* max_len) {
  *max_len = 0;
  for (const Pattern& p : patterns) {
    *max_len = std::max(*max_len, p.items.size());
  }
  std::vector<std::vector<size_t>> buckets(*max_len + 1);
  for (size_t i = 0; i < patterns.size(); ++i) {
    buckets[patterns[i].items.size()].push_back(i);
  }
  return buckets;
}

void SortLex(std::vector<Pattern>* out) {
  std::sort(out->begin(), out->end(),
            [](const Pattern& a, const Pattern& b) { return a.items < b.items; });
}

}  // namespace

std::vector<Pattern> ClosedPatterns(const std::vector<Pattern>& patterns) {
  // A pattern is closed iff no (k+1)-superset among the frequent patterns
  // has the same support. Supersets of interest differ by one item, since
  // support is monotone along the lattice: if some superset has equal
  // support, then so does a one-item extension on the path to it.
  size_t max_len = 0;
  std::vector<std::vector<size_t>> buckets = ByLength(patterns, &max_len);

  // Index (k+1)-itemsets for superset probing.
  std::vector<Pattern> closed;
  for (size_t k = 1; k <= max_len; ++k) {
    if (buckets[k].empty()) continue;
    // Map from (k+1)-itemset to support.
    std::map<Itemset, uint64_t> next;
    if (k + 1 <= max_len) {
      for (size_t idx : buckets[k + 1]) {
        next.emplace(patterns[idx].items, patterns[idx].support);
      }
    }
    for (size_t idx : buckets[k]) {
      const Pattern& p = patterns[idx];
      bool is_closed = true;
      if (!next.empty()) {
        // Try every one-item extension present in the next level. Rather
        // than enumerating the item universe, scan the next level's
        // supersets via subset tests when the level is small, else probe
        // extensions of p by each item of each superset candidate — the
        // simple subset scan is fine at post-processing scale.
        for (const auto& [superset, support] : next) {
          if (support == p.support && IsSubsetOf(p.items, superset)) {
            is_closed = false;
            break;
          }
        }
      }
      if (is_closed) closed.push_back(p);
    }
  }
  SortLex(&closed);
  return closed;
}

std::vector<Pattern> MaximalPatterns(const std::vector<Pattern>& patterns) {
  size_t max_len = 0;
  std::vector<std::vector<size_t>> buckets = ByLength(patterns, &max_len);

  std::vector<Pattern> maximal;
  for (size_t k = 1; k <= max_len; ++k) {
    if (buckets[k].empty()) continue;
    for (size_t idx : buckets[k]) {
      const Pattern& p = patterns[idx];
      bool is_maximal = true;
      if (k + 1 <= max_len) {
        for (size_t up : buckets[k + 1]) {
          if (IsSubsetOf(p.items, patterns[up].items)) {
            is_maximal = false;
            break;
          }
        }
      }
      if (is_maximal) maximal.push_back(p);
    }
  }
  SortLex(&maximal);
  return maximal;
}

uint64_t SupportFromClosed(const std::vector<Pattern>& closed,
                           const Itemset& items) {
  uint64_t best = 0;
  for (const Pattern& p : closed) {
    if (p.support > best && IsSubsetOf(items, p.items)) best = p.support;
  }
  return best;
}

}  // namespace bbsmine
