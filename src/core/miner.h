// Top-level drivers for the four filter-and-refine mining algorithms
// (paper Section 3.3): SFS, SFP, DFS, DFP.
//
// The probe-based schemes (SFP, DFP) integrate the two phases: as soon as
// the filter accepts a candidate, the database is probed, so false drops are
// rejected before they can trigger chains of further false drops — the two
// advantages called out in Section 3.3.
//
// When a memory budget is set and the BBS does not fit, the adaptive
// three-phase variant of Section 3.1 runs instead: the BBS is folded into a
// memory-sized MemBBS (preprocessing), the filter runs on the MemBBS, and a
// single streaming pass over the full BBS re-estimates the surviving
// candidates (postprocessing) before refinement.

#ifndef BBSMINE_CORE_MINER_H_
#define BBSMINE_CORE_MINER_H_

#include "core/bbs_index.h"
#include "core/mining_types.h"
#include "storage/transaction_db.h"

namespace bbsmine {

/// Mines all frequent patterns of `db` using the BBS index, per `config`.
///
/// `universe` is the item catalog handed to the filter ("set of all items"
/// in the paper's pseudocode); it must be canonical.
/// `bbs` must index exactly the transactions of `db`, in order.
MiningResult MineFrequentPatterns(const TransactionDatabase& db,
                                  const BbsIndex& bbs,
                                  const MineConfig& config,
                                  const Itemset& universe);

/// Convenience overload: the universe is every item id in
/// [0, db.item_universe()).
MiningResult MineFrequentPatterns(const TransactionDatabase& db,
                                  const BbsIndex& bbs,
                                  const MineConfig& config);

}  // namespace bbsmine

#endif  // BBSMINE_CORE_MINER_H_
