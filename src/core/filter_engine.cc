#include "core/filter_engine.h"

#include <algorithm>

namespace bbsmine {

void FilterEngine::Prepare(const Itemset& universe, MineStats* stats,
                           bool rare_first) {
  obs::TraceSpan span(tracer_, obs::kTracePhase, "filter.prepare");
  // Below this count the walk's transaction sets switch to the sparse
  // representation; one word of the dense vector covers 64 transactions.
  sparse_threshold_ =
      std::max<size_t>(64, bbs_.num_transactions() / BitVector::kWordBits);
  singletons_.clear();
  Itemset single(1);
  BitVector vector;
  for (ItemId item : universe) {
    single[0] = item;
    size_t est;
    {
      obs::TraceSpan kernel(tracer_, obs::kTraceKernel, "bbs.count_singleton");
      est = bbs_.CountItemSetAtLeast(single, tau_, &vector, io_);
    }
    if (stats != nullptr) ++stats->extension_tests;
    if (est < tau_) {
      if (stats != nullptr) stats->pruned_by_depth.Add(1);
      continue;
    }
    Singleton s;
    s.item = item;
    s.est = est;
    s.exact = bbs_.tracks_item_counts() ? bbs_.ExactItemCount(item) : 0;
    s.vector = std::move(vector);
    vector = BitVector();
    singletons_.push_back(std::move(s));
  }
  if (rare_first) {
    std::stable_sort(singletons_.begin(), singletons_.end(),
                     [](const Singleton& a, const Singleton& b) {
                       if (a.est != b.est) return a.est < b.est;
                       return a.item < b.item;
                     });
  }
  span.AddArg("universe", universe.size());
  span.AddArg("singletons", singletons_.size());
}

BitVector FilterEngine::AllTransactions() const {
  BitVector all(bbs_.num_transactions());
  all.SetAll();
  return all;
}

}  // namespace bbsmine
