#include "core/bloom_hash.h"

#include <cassert>

#include "util/md5.h"

namespace bbsmine {

Result<BloomHashFamily> BloomHashFamily::Create(uint32_t num_bits,
                                                uint32_t num_hashes,
                                                HashKind kind, uint64_t seed) {
  if (num_bits == 0) {
    return Status::InvalidArgument("num_bits must be positive");
  }
  if (num_hashes == 0) {
    return Status::InvalidArgument("num_hashes must be positive");
  }
  return BloomHashFamily(num_bits, num_hashes, kind, seed);
}

const std::vector<uint32_t>& BloomHashFamily::Positions(ItemId item) const {
  if (item >= cache_.size()) {
    size_t new_size = std::max<size_t>(static_cast<size_t>(item) + 1,
                                       cache_.size() * 2);
    cache_.resize(new_size);
    cache_valid_.resize(new_size, false);
  }
  if (!cache_valid_[item]) {
    ComputePositions(item, &cache_[item]);
    cache_valid_[item] = true;
    ++cache_filled_;
  }
  return cache_[item];
}

void BloomHashFamily::ComputePositions(ItemId item,
                                       std::vector<uint32_t>* out) const {
  out->clear();
  out->reserve(num_hashes_);
  switch (kind_) {
    case HashKind::kMd5: {
      std::string name = std::to_string(item);
      if (seed_ != 0) {
        name += '#';
        name += std::to_string(seed_);
      }
      ComputeMd5Positions(name, out);
      break;
    }
    case HashKind::kMultiplyShift:
      ComputeMultiplyShiftPositions(item, out);
      break;
    case HashKind::kModulo:
      for (uint32_t j = 0; j < num_hashes_; ++j) {
        out->push_back((item + j) % num_bits_);
      }
      break;
  }
}

void BloomHashFamily::ComputeMd5Positions(const std::string& name,
                                          std::vector<uint32_t>* out) const {
  // Each MD5 digest of the (repeatedly self-concatenated) item name yields
  // four disjoint 32-bit groups; each group mod m is one hash position.
  std::string message = name;
  while (out->size() < num_hashes_) {
    Md5Digest digest = Md5::Hash(message);
    for (int group = 0; group < 4 && out->size() < num_hashes_; ++group) {
      uint32_t value = 0;
      for (int byte = 0; byte < 4; ++byte) {
        value |= static_cast<uint32_t>(digest[4 * group + byte]) << (8 * byte);
      }
      out->push_back(value % num_bits_);
    }
    // "If more bits are needed, we calculate the MD5 signature of the item
    // name concatenated with itself."
    message += name;
  }
}

void BloomHashFamily::ComputeMultiplyShiftPositions(
    ItemId item, std::vector<uint32_t>* out) const {
  // Fibonacci-style multiply-shift mixing; one 64-bit product per function.
  uint64_t x = (static_cast<uint64_t>(item) + 1) ^ seed_;
  for (uint32_t j = 0; j < num_hashes_; ++j) {
    uint64_t z = x + 0x9e3779b97f4a7c15ull * (j + 1);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    z ^= z >> 31;
    out->push_back(static_cast<uint32_t>(z % num_bits_));
  }
}

}  // namespace bbsmine
