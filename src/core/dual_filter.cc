#include "core/dual_filter.h"

#include <algorithm>
#include <cassert>
#include <utility>

#include "obs/trace.h"
#include "util/stopwatch.h"
#include "util/thread_pool.h"

namespace bbsmine {

CheckCountResult CheckCount(uint64_t item_exact, uint64_t item_est,
                            const ParentState& parent, uint64_t union_est,
                            uint64_t tau) {
  // Lines 1-3 (Figure 3): the extension of the empty itemset is the
  // singleton itself, whose exact count is maintained.
  if (parent.empty) {
    if (item_exact < tau) return {-1, item_exact};
    return {1, item_exact};
  }

  // Lines 4-12: the bounds only apply when the parent's count is the actual
  // count with certainty (flag == 1).
  if (parent.flag == 1) {
    bool item_tight = item_est == item_exact;
    bool parent_tight = parent.est == parent.count;
    // Corollary 1: both sides tight => the union's estimate is exact.
    if (item_tight && parent_tight) {
      return {1, union_est};
    }
    // Lemma 5 lower bound with I1 = {item} tight:
    //   act(I1 u I2) >= est(I1 u I2) - (est(I2) - act(I2)).
    // Written additively to avoid unsigned underflow when the slack exceeds
    // the union estimate.
    if (item_tight && union_est >= (parent.est - parent.count) + tau) {
      return {2, union_est};
    }
    // Lemma 5 with roles swapped (I2 tight, I1's exact count maintained):
    //   act(I1 u I2) >= est(I1 u I2) - (est(I1) - act(I1)).
    if (parent_tight && union_est >= (item_est - item_exact) + tau) {
      return {2, union_est};
    }
  }
  return {0, union_est};
}

namespace {

/// Recursive GenerateAndFilter of Figure 4, as a narrowed-sibling walk (see
/// single_filter.cc for why narrowing preserves the candidate set, and for
/// the root-level parallel split: subtree i reads only the shared root
/// table, so subtrees run concurrently and their per-root outputs are merged
/// in root order).

struct Node {
  size_t idx = 0;
  uint64_t est = 0;
  CheckCountResult check;
  TidSet set;
};

/// Roots: estimated-frequent singletons that are not exactly-known
/// infrequent, classified against the empty parent.
std::vector<Node> BuildRoots(const FilterEngine& engine) {
  const auto& singles = engine.singletons();
  ParentState root;  // empty itemset
  std::vector<Node> roots;
  roots.reserve(singles.size());
  for (size_t idx = 0; idx < singles.size(); ++idx) {
    const FilterEngine::Singleton& single = singles[idx];
    CheckCountResult check = CheckCount(single.exact, single.est, root,
                                        single.est, engine.tau());
    if (check.flag < 0) continue;  // exactly-known infrequent singleton
    Node node;
    node.idx = idx;
    node.est = single.est;
    node.check = check;
    node.set = TidSet::FromDense(single.vector, engine.sparse_threshold());
    roots.push_back(std::move(node));
  }
  return roots;
}

class DualFilterWalk {
 public:
  DualFilterWalk(const FilterEngine& engine, MineStats* stats,
                 DualFilterOutput* out)
      : engine_(engine), stats_(stats), out_(out) {}

  void RunSubtree(const std::vector<Node>& roots, size_t i) {
    Visit(roots[i], roots, i);
  }

 private:
  void Visit(const Node& node, const std::vector<Node>& siblings, size_t i) {
    const auto& singles = engine_.singletons();
    current_.push_back(singles[node.idx].item);

    Itemset canonical = current_;
    Canonicalize(&canonical);
    DualCandidate candidate{std::move(canonical), node.est, node.check.count,
                            node.check.flag};
    if (stats_ != nullptr) {
      ++stats_->candidates;
      stats_->candidates_by_depth.Add(current_.size());
    }
    if (node.check.flag > 0) {
      if (stats_ != nullptr) ++stats_->certified;
      out_->certain.push_back(std::move(candidate));
    } else {
      out_->uncertain.push_back(std::move(candidate));
    }

    ParentState state;
    state.flag = node.check.flag;
    state.count = node.check.count;
    state.est = node.est;
    state.empty = false;

    std::vector<Node> children;
    for (size_t j = i + 1; j < siblings.size(); ++j) {
      size_t idx = siblings[j].idx;
      const FilterEngine::Singleton& single = singles[idx];
      Node child;
      child.idx = idx;
      child.est = engine_.ExtendHybrid(idx, node.set, &child.set);
      if (stats_ != nullptr) ++stats_->extension_tests;
      if (child.est < engine_.tau()) {
        if (stats_ != nullptr) stats_->pruned_by_depth.Add(current_.size() + 1);
        continue;
      }
      child.check = CheckCount(single.exact, single.est, state, child.est,
                               engine_.tau());
      // flag < 0 cannot occur below the root (the parent is non-empty).
      children.push_back(std::move(child));
    }
    for (size_t j = 0; j < children.size(); ++j) {
      Visit(children[j], children, j);
    }
    current_.pop_back();
  }

  const FilterEngine& engine_;
  MineStats* stats_;
  DualFilterOutput* out_;
  Itemset current_;
};

}  // namespace

DualFilterOutput RunDualFilter(const FilterEngine& engine, MineStats* stats,
                               size_t num_threads) {
  assert(engine.bbs().tracks_item_counts() &&
         "DualFilter requires exact 1-itemset counts");
  std::vector<Node> roots = BuildRoots(engine);

  std::vector<DualFilterOutput> per_root(roots.size());
  std::vector<MineStats> per_root_stats(roots.size());
  uint64_t queue_depth = 0;
  ParallelFor(
      num_threads, roots.size(),
      [&](size_t i) {
        obs::TraceSpan span(engine.tracer(), obs::kTraceFilter,
                            "filter.subtree");
        Stopwatch cpu;
        DualFilterWalk walk(engine, &per_root_stats[i], &per_root[i]);
        walk.RunSubtree(roots, i);
        per_root_stats[i].filter_cpu_seconds = cpu.ElapsedSeconds();
        span.AddArg("root", i);
        span.AddArg("candidates", per_root_stats[i].candidates);
      },
      &queue_depth);

  // Deterministic merge in root order: identical to the serial walk.
  DualFilterOutput out;
  for (size_t i = 0; i < roots.size(); ++i) {
    for (DualCandidate& c : per_root[i].certain) {
      out.certain.push_back(std::move(c));
    }
    for (DualCandidate& c : per_root[i].uncertain) {
      out.uncertain.push_back(std::move(c));
    }
    if (stats != nullptr) *stats += per_root_stats[i];
  }
  if (stats != nullptr) {
    stats->max_queue_depth = std::max(stats->max_queue_depth, queue_depth);
  }
  return out;
}

}  // namespace bbsmine
