// SliceSource — the backend that owns a BBS index's slice words.
//
// The BBS query path (CountItemSet and friends) only ever consumes slices as
// spans of 64-bit words fed to the SIMD kernels. SliceSource abstracts where
// those words live:
//
//   * ResidentSliceSource — the classic backend: every slice is a BitVector
//     on the heap. Mutable (Insert appends bits), and the only backend that
//     charges the paper's synthetic I/O cost model (util/iomodel.h).
//   * MmapSliceSource — zero-copy over the v2 aligned on-disk layout
//     (docs/FORMATS.md): the sealed index file is mmap'd once and each
//     slice's word array is served straight from the mapping. The v2 format
//     64-byte-aligns every slice on disk, so the pointers satisfy the same
//     cache-line alignment the resident BitVectors guarantee and the kernels
//     run unmodified. Read-only; memory cost is page-cache residency, which
//     the OS reclaims under pressure — indexes larger than RAM stay
//     servable.
//
// Clone() is how snapshots share sealed segments: resident clones deep-copy,
// mmap clones share the underlying mapping (shared_ptr), so publishing a
// snapshot of an mmap'd segment costs O(1) memory.

#ifndef BBSMINE_CORE_SLICE_SOURCE_H_
#define BBSMINE_CORE_SLICE_SOURCE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "util/bitvector.h"
#include "util/bitvector_kernels.h"
#include "util/mmap_file.h"
#include "util/status.h"

namespace bbsmine {

/// Which SliceSource implementation backs an index loaded from disk.
enum class IndexBackend { kResident, kMmap };

/// Parses "resident" / "mmap" (the --index-backend flag values).
Result<IndexBackend> ParseIndexBackend(std::string_view name);

/// Flag-value name of a backend ("resident" / "mmap").
const char* IndexBackendName(IndexBackend backend);

/// A borrowed, read-only view of one bit-slice: `num_bits` bits (one per
/// transaction) backed by `num_words` 64-bit words. Bits past num_bits in
/// the last word are zero. Valid only while the owning index is alive.
struct SliceView {
  const BitVector::Word* words = nullptr;
  size_t num_words = 0;
  size_t num_bits = 0;

  bool Get(size_t i) const {
    return (words[i / BitVector::kWordBits] >> (i % BitVector::kWordBits)) &
           1u;
  }

  size_t Count() const { return kernels::Count(words, num_words); }
};

class ResidentSliceSource;

/// Owner of an index's slice words; see file comment for the backends.
class SliceSource {
 public:
  using Word = BitVector::Word;

  virtual ~SliceSource() = default;

  /// Backend name as reported in stats ("resident" / "mmap").
  virtual const char* name() const = 0;

  virtual uint32_t num_slices() const = 0;

  /// Bits per slice (= number of transactions).
  virtual size_t slice_bits() const = 0;

  /// Words per slice: ceil(slice_bits / 64).
  virtual size_t words_per_slice() const = 0;

  /// The 64-byte-aligned word array of slice `slice`.
  virtual const Word* Words(uint32_t slice) const = 0;

  SliceView View(uint32_t slice) const {
    return SliceView{Words(slice), words_per_slice(), slice_bits()};
  }

  /// Heap bytes pinned by the slice data. Zero for mmap (pages are clean,
  /// file-backed, and evictable — they are not committed memory).
  virtual size_t ApproxResidentBytes() const = 0;

  /// Whether slice reads should be billed to the synthetic IoStats cost
  /// model. False for mmap: those reads fault real pages, and charging the
  /// model too would double-count them (see storage/page_cache.h).
  virtual bool charges_synthetic_io() const = 0;

  /// Hint that all slices are about to be read front to back (full filter
  /// scan). No-op for resident; madvise readahead for mmap.
  virtual void AdviseSequentialScan() const {}

  /// Deep copy for resident, shared mapping for mmap.
  virtual std::unique_ptr<SliceSource> Clone() const = 0;

  /// Downcast for the mutation path (Insert / fold construction); returns
  /// nullptr for read-only backends.
  virtual ResidentSliceSource* AsResident() { return nullptr; }
  virtual const ResidentSliceSource* AsResident() const { return nullptr; }
};

/// Heap-resident backend: one BitVector per slice. Mutable.
class ResidentSliceSource final : public SliceSource {
 public:
  explicit ResidentSliceSource(uint32_t num_slices) : slices_(num_slices) {}

  const char* name() const override { return "resident"; }
  uint32_t num_slices() const override {
    return static_cast<uint32_t>(slices_.size());
  }
  size_t slice_bits() const override {
    return slices_.empty() ? 0 : slices_[0].size();
  }
  size_t words_per_slice() const override {
    return slices_.empty() ? 0 : slices_[0].num_words();
  }
  const Word* Words(uint32_t slice) const override {
    return slices_[slice].words().data();
  }
  size_t ApproxResidentBytes() const override;
  bool charges_synthetic_io() const override { return true; }
  std::unique_ptr<SliceSource> Clone() const override;
  ResidentSliceSource* AsResident() override { return this; }
  const ResidentSliceSource* AsResident() const override { return this; }

  BitVector& slice(uint32_t s) { return slices_[s]; }
  std::vector<BitVector>& slices() { return slices_; }
  const std::vector<BitVector>& slices() const { return slices_; }

 private:
  std::vector<BitVector> slices_;
};

/// Zero-copy backend over an mmap'd v2 index file. Read-only; the mapping
/// is shared between clones.
class MmapSliceSource final : public SliceSource {
 public:
  MmapSliceSource(std::shared_ptr<MmapFile> file, uint64_t data_offset,
                  uint64_t stride_bytes, uint32_t num_slices,
                  size_t words_per_slice, size_t slice_bits)
      : file_(std::move(file)),
        data_offset_(data_offset),
        stride_bytes_(stride_bytes),
        num_slices_(num_slices),
        words_per_slice_(words_per_slice),
        slice_bits_(slice_bits) {}

  const char* name() const override { return "mmap"; }
  uint32_t num_slices() const override { return num_slices_; }
  size_t slice_bits() const override { return slice_bits_; }
  size_t words_per_slice() const override { return words_per_slice_; }
  const Word* Words(uint32_t slice) const override {
    return reinterpret_cast<const Word*>(file_->data() + data_offset_ +
                                         static_cast<uint64_t>(slice) *
                                             stride_bytes_);
  }
  size_t ApproxResidentBytes() const override { return 0; }
  bool charges_synthetic_io() const override { return false; }
  void AdviseSequentialScan() const override;
  std::unique_ptr<SliceSource> Clone() const override;

  const std::shared_ptr<MmapFile>& file() const { return file_; }

 private:
  std::shared_ptr<MmapFile> file_;
  uint64_t data_offset_;
  uint64_t stride_bytes_;
  uint32_t num_slices_;
  size_t words_per_slice_;
  size_t slice_bits_;
};

}  // namespace bbsmine

#endif  // BBSMINE_CORE_SLICE_SOURCE_H_
