#include "core/bbs_index.h"

#include <algorithm>
#include <bit>
#include <cassert>
#include <cstring>
#include <string_view>
#include <utility>

#include "storage/transaction_db.h"
#include "util/bitvector_kernels.h"
#include "util/crc32.h"
#include "util/file_io.h"
#include "util/mmap_file.h"

namespace bbsmine {

using Word = BitVector::Word;

namespace {

// v1: packed layout, one CRC over the whole payload. Read-only legacy path.
constexpr char kMagicV1[8] = {'B', 'B', 'S', 'I', 'D', 'X', '0', '1'};
constexpr uint32_t kFormatVersionV1 = 1;

// v2: aligned layout (docs/FORMATS.md). Checksummed metadata block, then
// each slice's word array at a 64-byte-aligned file offset so the file can
// be mmap'd and handed to the SIMD kernels without copying.
constexpr char kMagicV2[8] = {'B', 'B', 'S', 'I', 'D', 'X', '0', '2'};
constexpr uint32_t kFormatVersionV2 = 2;

/// On-disk alignment of every slice's word array (cache line / AVX-512).
constexpr uint64_t kSliceAlignment = 64;

/// Bytes of fixed v2 metadata between the 16-byte prelude and the
/// variable-length arrays (see the offsets table in docs/FORMATS.md).
constexpr uint64_t kV2FixedMetaBytes = 72;
constexpr uint64_t kV2ArraysOffset = 16 + kV2FixedMetaBytes;

constexpr uint64_t RoundUpToAlignment(uint64_t v) {
  return (v + kSliceAlignment - 1) / kSliceAlignment * kSliceAlignment;
}

void AppendU32(std::string* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) out->push_back(static_cast<char>(v >> (8 * i)));
}

void AppendU64(std::string* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) out->push_back(static_cast<char>(v >> (8 * i)));
}

bool ReadU32(std::string_view in, size_t* pos, uint32_t* v) {
  if (*pos + 4 > in.size()) return false;
  uint32_t out = 0;
  for (int i = 0; i < 4; ++i) {
    out |= static_cast<uint32_t>(static_cast<uint8_t>(in[*pos + i])) << (8 * i);
  }
  *pos += 4;
  *v = out;
  return true;
}

bool ReadU64(std::string_view in, size_t* pos, uint64_t* v) {
  if (*pos + 8 > in.size()) return false;
  uint64_t out = 0;
  for (int i = 0; i < 8; ++i) {
    out |= static_cast<uint64_t>(static_cast<uint8_t>(in[*pos + i])) << (8 * i);
  }
  *pos += 8;
  *v = out;
  return true;
}

/// Parsed + structurally validated v2 header. Every field below is covered
/// by the header CRC, and the structural checks (exact offsets, strides and
/// file size) guarantee that slice reads stay inside the file — the mmap
/// path relies on that to never SIGBUS on a truncated map.
struct V2Header {
  BbsConfig config;
  uint32_t folded = 0;
  uint64_t num_transactions = 0;
  uint64_t words_per_slice = 0;
  uint64_t stride_bytes = 0;
  uint64_t data_offset = 0;
  uint64_t num_item_counts = 0;
  uint32_t data_crc = 0;

  uint32_t effective_bits() const {
    return folded != 0 ? folded : config.num_bits;
  }
};

Status ParseV2Header(std::string_view file, const std::string& path,
                     V2Header* h) {
  if (file.size() < kV2ArraysOffset) {
    return Status::Corruption("truncated header in " + path);
  }
  size_t pos = 8;
  uint32_t version = 0;
  uint32_t header_crc = 0;
  uint32_t hash_kind = 0;
  uint32_t track = 0;
  if (!ReadU32(file, &pos, &version) || !ReadU32(file, &pos, &header_crc) ||
      !ReadU32(file, &pos, &h->config.num_bits) ||
      !ReadU32(file, &pos, &h->config.num_hashes) ||
      !ReadU32(file, &pos, &hash_kind) ||
      !ReadU64(file, &pos, &h->config.seed) ||
      !ReadU32(file, &pos, &track) || !ReadU32(file, &pos, &h->folded) ||
      !ReadU64(file, &pos, &h->num_transactions) ||
      !ReadU64(file, &pos, &h->words_per_slice) ||
      !ReadU64(file, &pos, &h->stride_bytes) ||
      !ReadU64(file, &pos, &h->data_offset) ||
      !ReadU64(file, &pos, &h->num_item_counts) ||
      !ReadU32(file, &pos, &h->data_crc)) {
    return Status::Corruption("truncated header in " + path);
  }
  if (version != kFormatVersionV2) {
    return Status::Corruption("unsupported format version " +
                              std::to_string(version));
  }
  if (h->data_offset < kV2ArraysOffset || h->data_offset > file.size()) {
    return Status::Corruption("slice data offset out of bounds in " + path);
  }
  // The header CRC covers everything between the prelude and the slice
  // data: fixed fields, the variable arrays, and the alignment padding —
  // so no metadata byte is unchecked.
  if (Crc32(std::string_view(file.data() + 16, h->data_offset - 16)) !=
      header_crc) {
    return Status::Corruption("header checksum mismatch in " + path);
  }

  if (hash_kind > static_cast<uint32_t>(HashKind::kModulo)) {
    return Status::Corruption("unknown hash kind in " + path);
  }
  h->config.hash_kind = static_cast<HashKind>(hash_kind);
  h->config.track_item_counts = track != 0;
  if (h->folded > h->config.num_bits) {
    return Status::Corruption("fold target exceeds num_bits in " + path);
  }

  // Structural checks. Bounds-check each array length before multiplying so
  // a crafted header cannot overflow the arithmetic below.
  const uint64_t avail = h->data_offset - kV2ArraysOffset;
  if (h->num_item_counts > avail / 8 ||
      h->num_transactions > avail / 4 + BitVector::kWordBits) {
    return Status::Corruption("metadata arrays exceed header in " + path);
  }
  const uint64_t expected_words =
      (h->num_transactions + BitVector::kWordBits - 1) / BitVector::kWordBits;
  if (h->words_per_slice != expected_words) {
    return Status::Corruption("slice word count mismatch in " + path);
  }
  if (h->stride_bytes != RoundUpToAlignment(h->words_per_slice *
                                            sizeof(Word))) {
    return Status::Corruption("bad slice stride in " + path);
  }
  const uint64_t meta_end = kV2ArraysOffset + 8 * h->num_item_counts +
                            8 * static_cast<uint64_t>(h->effective_bits()) +
                            4 * h->num_transactions;
  if (h->data_offset != RoundUpToAlignment(meta_end)) {
    return Status::Corruption("misaligned slice data offset in " + path);
  }
  const uint64_t data_bytes = file.size() - h->data_offset;
  if (h->stride_bytes == 0) {
    if (data_bytes != 0) {
      return Status::Corruption("index size mismatch in " + path);
    }
  } else if (data_bytes / h->stride_bytes != h->effective_bits() ||
             data_bytes % h->stride_bytes != 0) {
    return Status::Corruption("index size mismatch in " + path);
  }
  return Status::Ok();
}

/// Reads the v2 metadata arrays (item counts, slice popcounts, signature
/// bits) that sit between the fixed header and the slice data.
Status ReadV2Arrays(std::string_view file, const std::string& path,
                    const V2Header& h, std::vector<uint64_t>* item_counts,
                    std::vector<size_t>* popcounts,
                    std::vector<uint32_t>* signature_bits) {
  size_t pos = kV2ArraysOffset;
  item_counts->resize(h.num_item_counts);
  for (uint64_t& count : *item_counts) {
    if (!ReadU64(file, &pos, &count)) {
      return Status::Corruption("truncated item counts in " + path);
    }
  }
  popcounts->resize(h.effective_bits());
  for (size_t& count : *popcounts) {
    uint64_t v = 0;
    if (!ReadU64(file, &pos, &v)) {
      return Status::Corruption("truncated slice popcounts in " + path);
    }
    count = static_cast<size_t>(v);
  }
  signature_bits->resize(h.num_transactions);
  for (uint32_t& bits : *signature_bits) {
    if (!ReadU32(file, &pos, &bits)) {
      return Status::Corruption("truncated signature bits in " + path);
    }
  }
  return Status::Ok();
}

}  // namespace

BbsIndex::BbsIndex(const BbsConfig& config, BloomHashFamily family,
                   uint32_t folded)
    : config_(config), family_(std::move(family)), folded_bits_(folded) {
  source_ = std::make_unique<ResidentSliceSource>(num_bits());
  slice_popcount_.resize(num_bits(), 0);
}

BbsIndex::BbsIndex(const BbsIndex& other)
    : config_(other.config_),
      family_(other.family_),
      folded_bits_(other.folded_bits_),
      num_transactions_(other.num_transactions_),
      source_(other.source_->Clone()),
      slice_popcount_(other.slice_popcount_),
      item_counts_(other.item_counts_),
      signature_bits_(other.signature_bits_) {}

BbsIndex& BbsIndex::operator=(const BbsIndex& other) {
  if (this != &other) {
    BbsIndex copy(other);
    *this = std::move(copy);
  }
  return *this;
}

Result<BbsIndex> BbsIndex::Create(const BbsConfig& config) {
  Result<BloomHashFamily> family = BloomHashFamily::Create(
      config.num_bits, config.num_hashes, config.hash_kind, config.seed);
  if (!family.ok()) return family.status();
  return BbsIndex(config, std::move(family).value(), /*folded=*/0);
}

void BbsIndex::Insert(const Itemset& items) {
  ResidentSliceSource* res = source_->AsResident();
  assert(res != nullptr && "Insert requires the resident backend");
  std::vector<BitVector>& slices = res->slices();

  size_t position = num_transactions_;
  ++num_transactions_;
  for (BitVector& slice : slices) slice.PushBack(false);
  signature_bits_.push_back(0);

  for (ItemId item : items) {
    for (uint32_t raw : family_.Positions(item)) {
      uint32_t pos = folded_bits_ != 0 ? raw % folded_bits_ : raw;
      if (!slices[pos].Get(position)) {
        slices[pos].Set(position);
        ++slice_popcount_[pos];
        ++signature_bits_.back();
      }
    }
    if (config_.track_item_counts) {
      if (item >= item_counts_.size()) item_counts_.resize(item + 1, 0);
      ++item_counts_[item];
    }
  }
}

void BbsIndex::InsertAll(const TransactionDatabase& db) {
  for (size_t i = 0; i < db.size(); ++i) Insert(db.At(i).items);
}

void BbsIndex::ItemPositions(ItemId item, std::vector<uint32_t>* out) const {
  out->clear();
  for (uint32_t raw : family_.Positions(item)) {
    out->push_back(folded_bits_ != 0 ? raw % folded_bits_ : raw);
  }
  std::sort(out->begin(), out->end());
  out->erase(std::unique(out->begin(), out->end()), out->end());
}

BitVector BbsIndex::MakeSignature(const Itemset& items) const {
  BitVector signature(num_bits());
  for (ItemId item : items) {
    for (uint32_t raw : family_.Positions(item)) {
      signature.Set(folded_bits_ != 0 ? raw % folded_bits_ : raw);
    }
  }
  return signature;
}

void BbsIndex::CollectPositions(const Itemset& items,
                                std::vector<uint32_t>* positions) const {
  positions->clear();
  for (ItemId item : items) {
    for (uint32_t raw : family_.Positions(item)) {
      positions->push_back(folded_bits_ != 0 ? raw % folded_bits_ : raw);
    }
  }
  std::sort(positions->begin(), positions->end());
  positions->erase(std::unique(positions->begin(), positions->end()),
                   positions->end());
  // Sparsest slice first: ANDing the most selective slice early shrinks the
  // intermediate result fastest.
  std::sort(positions->begin(), positions->end(),
            [this](uint32_t a, uint32_t b) {
              return slice_popcount_[a] < slice_popcount_[b];
            });
}

// Words per block of the multi-way AND below: 1 KiB-word blocks keep a
// handful of slice streams cache-resident while giving the early-abort a
// fine enough grain to pay off.
static constexpr size_t kCountBlockWords = 1024;

size_t BbsIndex::CountWithSeed(const std::vector<uint32_t>& positions,
                               const BitVector* seed, BitVector* result,
                               IoStats* io, uint64_t min_count) const {
  BitVector local;
  BitVector& out = result != nullptr ? *result : local;

  if (positions.empty()) {
    // Empty itemset: every transaction matches (optionally constrained).
    if (seed != nullptr) {
      out = *seed;
    } else {
      out = BitVector(num_transactions_);
      out.SetAll();
    }
    return out.Count();
  }

  // One blocked pass over all selected slices at once instead of k full
  // sweeps: per block, the running AND is reduced while the streams are
  // still cache-hot. After each block the loop aborts as soon as even an
  // all-ones remainder could not lift the count back to min_count — the
  // dense early-abort the filter phase relies on. On abort `out` is only
  // partially written, which the CountItemSetAtLeast contract allows.
  const size_t k = positions.size();
  const Word* seed_words = seed != nullptr ? seed->words().data() : nullptr;
  // Stack-friendly operand table; queries rarely select more than a few
  // dozen slices, but signatures of long itemsets can.
  std::vector<const Word*> srcs(k);
  for (size_t i = 0; i < k; ++i) {
    srcs[i] = SliceWords(positions[i]);
  }

  out.Resize(num_transactions_);
  Word* dst = out.MutableWords();
  const size_t n_words = out.num_words();
  std::vector<size_t> touched(k, 0);  // words streamed per slice

  size_t count = 0;
  for (size_t base = 0; base < n_words; base += kCountBlockWords) {
    const size_t len = std::min(kCountBlockWords, n_words - base);
    uint64_t block;
    size_t op;
    if (seed_words != nullptr) {
      block = kernels::AssignAndCount(dst + base, seed_words + base,
                                      srcs[0] + base, len);
      touched[0] += len;
      op = 1;
    } else if (k >= 2) {
      block = kernels::AssignAndCount(dst + base, srcs[0] + base,
                                      srcs[1] + base, len);
      touched[0] += len;
      touched[1] += len;
      op = 2;
    } else {
      block = kernels::AssignAndCount(dst + base, srcs[0] + base,
                                      srcs[0] + base, len);
      touched[0] += len;
      op = 1;
    }
    // A block whose running AND goes all-zero skips its remaining slices:
    // further ANDs cannot resurrect bits and dst is already correct there.
    for (; op < k && block != 0; ++op) {
      block = kernels::AndCount(dst + base, srcs[op] + base, len);
      touched[op] += len;
    }
    count += static_cast<size_t>(block);

    const size_t bits_done = std::min((base + len) * BitVector::kWordBits,
                                      num_transactions_);
    const size_t remaining_bits = num_transactions_ - bits_done;
    if (count + remaining_bits < min_count) break;
  }

  if (io != nullptr) {
    // Charge only what was actually streamed (the abort above may leave
    // whole slice suffixes unread), capped at the slice's serialized size.
    // Backends that fault real pages (mmap) skip the synthetic block
    // charge — getrusage sees the true cost — but the words-streamed
    // instrumentation stays backend-agnostic.
    const bool bill = source_->charges_synthetic_io();
    for (size_t i = 0; i < k; ++i) {
      if (bill) {
        uint64_t bytes = std::min<uint64_t>(
            static_cast<uint64_t>(touched[i]) * sizeof(Word), SliceBytes());
        io->sequential_reads += BlocksFor(bytes, 4096);
      }
      io->slice_words_touched += touched[i];
    }
  }
  return count;
}

size_t BbsIndex::CountItemSet(const Itemset& items, BitVector* result,
                              IoStats* io) const {
  // Per-call scratch keeps the const query path thread-safe (a shared
  // mutable buffer here would race concurrent queries).
  std::vector<uint32_t> positions;
  CollectPositions(items, &positions);
  return CountWithSeed(positions, /*seed=*/nullptr, result, io);
}

size_t BbsIndex::CountItemSetAtLeast(const Itemset& items, uint64_t tau,
                                     BitVector* result, IoStats* io) const {
  std::vector<uint32_t> positions;
  CollectPositions(items, &positions);
  if (!positions.empty()) {
    // The sparsest selected slice (positions are popcount-ordered) bounds
    // the estimate from above: below tau means no AND is needed at all.
    size_t bound = slice_popcount_[positions.front()];
    if (bound < tau) {
      if (io != nullptr && source_->charges_synthetic_io()) {
        io->sequential_reads += BlocksFor(SliceBytes(), 4096);
      }
      return bound;
    }
  }
  return CountWithSeed(positions, /*seed=*/nullptr, result, io,
                       /*min_count=*/tau);
}

size_t BbsIndex::CountItemSetConstrained(const Itemset& items,
                                         const BitVector& constraint,
                                         BitVector* result,
                                         IoStats* io) const {
  assert(constraint.size() == num_transactions_);
  std::vector<uint32_t> positions;
  CollectPositions(items, &positions);
  return CountWithSeed(positions, &constraint, result, io);
}

size_t BbsIndex::AndItemSlices(ItemId item, BitVector* result,
                               IoStats* io) const {
  assert(result->size() == num_transactions_);
  std::vector<uint32_t> positions;
  ItemPositions(item, &positions);
  // ANDing zero slices leaves `result` unchanged, so the count is the
  // vector's own popcount — not 0.
  if (positions.empty()) return result->Count();
  size_t count = 0;
  size_t slices_read = 0;
  for (size_t i = 0; i < positions.size(); ++i) {
    count = result->AndWithCount(SliceWords(positions[i]),
                                 result->num_words());
    ++slices_read;
    if (count == 0) break;
  }
  if (io != nullptr && source_->charges_synthetic_io()) {
    // Charge only the slices the loop actually streamed; the count == 0
    // break above leaves the rest unread.
    io->sequential_reads += slices_read * BlocksFor(SliceBytes(), 4096);
  }
  return count;
}

uint64_t BbsIndex::ExactItemCount(ItemId item) const {
  assert(config_.track_item_counts);
  return item < item_counts_.size() ? item_counts_[item] : 0;
}

BbsIndex BbsIndex::Fold(uint32_t new_bits) const {
  assert(new_bits > 0 && new_bits <= num_bits());
  BbsIndex folded(config_,
                  *BloomHashFamily::Create(config_.num_bits,
                                           config_.num_hashes,
                                           config_.hash_kind, config_.seed),
                  new_bits);
  folded.num_transactions_ = num_transactions_;
  ResidentSliceSource* res = folded.source_->AsResident();
  for (uint32_t pos = 0; pos < new_bits; ++pos) {
    res->slice(pos).Resize(num_transactions_);
  }
  const size_t wps = WordsPerSlice();
  for (uint32_t pos = 0; pos < num_bits(); ++pos) {
    res->slice(pos % new_bits).OrWithWords(SliceWords(pos), wps);
  }
  for (uint32_t pos = 0; pos < new_bits; ++pos) {
    folded.slice_popcount_[pos] = res->slice(pos).Count();
  }
  folded.item_counts_ = item_counts_;
  folded.RecomputeSignatureBits();
  return folded;
}

BbsIndex BbsIndex::Materialize() const {
  BbsIndex out(config_, family_, folded_bits_);
  out.num_transactions_ = num_transactions_;
  out.slice_popcount_ = slice_popcount_;
  out.item_counts_ = item_counts_;
  out.signature_bits_ = signature_bits_;
  ResidentSliceSource* res = out.source_->AsResident();
  const size_t wps = WordsPerSlice();
  for (uint32_t pos = 0; pos < num_bits(); ++pos) {
    res->slice(pos).AssignWords(SliceWords(pos), wps, num_transactions_);
  }
  return out;
}

std::vector<uint32_t> BbsIndex::ComputeSignatureBits() const {
  std::vector<uint32_t> bits(num_transactions_, 0);
  const size_t wps = WordsPerSlice();
  for (uint32_t pos = 0; pos < num_bits(); ++pos) {
    const Word* words = SliceWords(pos);
    for (size_t w = 0; w < wps; ++w) {
      Word x = words[w];
      while (x != 0) {
        const size_t t = w * BitVector::kWordBits +
                         static_cast<size_t>(std::countr_zero(x));
        ++bits[t];
        x &= x - 1;
      }
    }
  }
  return bits;
}

void BbsIndex::RecomputeSignatureBits() {
  signature_bits_ = ComputeSignatureBits();
}

void BbsIndex::ChargeFullScan(IoStats* io, uint32_t block_size) const {
  // A full filter pass reads every slice front to back — tell the backend
  // (mmap readahead) regardless of whether the synthetic model is billed.
  source_->AdviseSequentialScan();
  if (io != nullptr && source_->charges_synthetic_io()) {
    io->sequential_reads += BlocksFor(SerializedBytes(), block_size);
  }
}

std::string BbsIndex::Serialize() const {
  const uint32_t bits = num_bits();
  const size_t wps = WordsPerSlice();
  const uint64_t stride = RoundUpToAlignment(wps * sizeof(Word));
  const uint64_t meta_end = kV2ArraysOffset + 8 * item_counts_.size() +
                            8 * static_cast<uint64_t>(bits) +
                            4 * num_transactions_;
  const uint64_t data_offset = RoundUpToAlignment(meta_end);

  // Slice area first so its checksum can be embedded in the metadata. Each
  // slice's words are zero-padded to the 64-byte stride.
  std::string data;
  data.reserve(static_cast<size_t>(bits) * stride);
  for (uint32_t pos = 0; pos < bits; ++pos) {
    const Word* words = SliceWords(pos);
    for (size_t w = 0; w < wps; ++w) AppendU64(&data, words[w]);
    data.append(stride - wps * sizeof(Word), '\0');
  }
  const uint32_t data_crc = Crc32(data);

  std::string meta;
  meta.reserve(static_cast<size_t>(data_offset - 16));
  AppendU32(&meta, config_.num_bits);
  AppendU32(&meta, config_.num_hashes);
  AppendU32(&meta, static_cast<uint32_t>(config_.hash_kind));
  AppendU64(&meta, config_.seed);
  AppendU32(&meta, config_.track_item_counts ? 1 : 0);
  AppendU32(&meta, folded_bits_);
  AppendU64(&meta, num_transactions_);
  AppendU64(&meta, wps);
  AppendU64(&meta, stride);
  AppendU64(&meta, data_offset);
  AppendU64(&meta, item_counts_.size());
  AppendU32(&meta, data_crc);
  for (uint64_t count : item_counts_) AppendU64(&meta, count);
  for (uint32_t pos = 0; pos < bits; ++pos) {
    AppendU64(&meta, slice_popcount_[pos]);
  }
  for (uint32_t sig : signature_bits_) AppendU32(&meta, sig);
  meta.append(static_cast<size_t>(data_offset - meta_end), '\0');

  std::string file;
  file.reserve(16 + meta.size() + data.size());
  file.append(kMagicV2, sizeof(kMagicV2));
  AppendU32(&file, kFormatVersionV2);
  AppendU32(&file, Crc32(meta));
  file += meta;
  file += data;
  return file;
}

Status BbsIndex::Save(const std::string& path) const {
  return WriteBinaryFile(path, Serialize());
}

Result<BbsIndex> BbsIndex::Load(const std::string& path) {
  Result<std::string> contents = ReadBinaryFile(path);
  if (!contents.ok()) return contents.status();
  return Deserialize(*contents, path);
}

Result<BbsIndex> BbsIndex::Deserialize(std::string_view file,
                                       const std::string& path) {
  if (file.size() < sizeof(kMagicV2)) {
    return Status::Corruption("bad magic in " + path);
  }

  if (std::memcmp(file.data(), kMagicV2, sizeof(kMagicV2)) == 0) {
    // --- v2 aligned layout, resident load --------------------------------
    V2Header header;
    BBSMINE_RETURN_IF_ERROR(ParseV2Header(file, path, &header));
    // Resident loads read every slice anyway, so the full data checksum is
    // verified here. The mmap path skips this (it would fault every page)
    // and relies on the header CRC + structural bounds instead.
    if (Crc32(std::string_view(file.data() + header.data_offset,
                               file.size() - header.data_offset)) !=
        header.data_crc) {
      return Status::Corruption("slice data checksum mismatch in " + path);
    }
    std::vector<uint64_t> item_counts;
    std::vector<size_t> popcounts;
    std::vector<uint32_t> signature_bits;
    BBSMINE_RETURN_IF_ERROR(ReadV2Arrays(file, path, header, &item_counts,
                                         &popcounts, &signature_bits));

    Result<BloomHashFamily> family = BloomHashFamily::Create(
        header.config.num_bits, header.config.num_hashes,
        header.config.hash_kind, header.config.seed);
    if (!family.ok()) return family.status();

    BbsIndex index(header.config, std::move(family).value(), header.folded);
    index.num_transactions_ = header.num_transactions;
    index.item_counts_ = std::move(item_counts);

    ResidentSliceSource* res = index.source_->AsResident();
    const size_t wps = header.words_per_slice;
    std::vector<Word> slice_words(wps);
    for (uint32_t pos = 0; pos < index.num_bits(); ++pos) {
      // memcpy: the slice bytes are 64-byte aligned in the *file*, but the
      // in-memory string buffer carries no such guarantee.
      std::memcpy(slice_words.data(),
                  file.data() + header.data_offset +
                      static_cast<uint64_t>(pos) * header.stride_bytes,
                  wps * sizeof(Word));
      BitVector& slice = res->slice(pos);
      slice.AssignWords(slice_words.data(), wps, header.num_transactions);
      // The stored popcounts are what query planning trusts — cross-check
      // them against the actual slice data (load parity fix-up).
      if (slice.Count() != popcounts[pos]) {
        return Status::Corruption("slice popcount mismatch in " + path);
      }
      index.slice_popcount_[pos] = popcounts[pos];
    }
    if (index.ComputeSignatureBits() != signature_bits) {
      return Status::Corruption("signature bits mismatch in " + path);
    }
    index.signature_bits_ = std::move(signature_bits);
    return index;
  }

  if (std::memcmp(file.data(), kMagicV1, sizeof(kMagicV1)) != 0) {
    return Status::Corruption("bad magic in " + path);
  }

  // --- legacy v1 packed layout (read-only back-compat) -------------------
  if (file.size() < sizeof(kMagicV1) + 8) {
    return Status::Corruption("bad magic in " + path);
  }
  size_t pos = sizeof(kMagicV1);
  uint32_t version = 0;
  uint32_t expected_crc = 0;
  if (!ReadU32(file, &pos, &version) || !ReadU32(file, &pos, &expected_crc)) {
    return Status::Corruption("truncated header in " + path);
  }
  if (version != kFormatVersionV1) {
    return Status::Corruption("unsupported format version " +
                              std::to_string(version));
  }
  if (Crc32(std::string_view(file.data() + pos, file.size() - pos)) !=
      expected_crc) {
    return Status::Corruption("checksum mismatch in " + path);
  }

  BbsConfig config;
  uint32_t hash_kind = 0;
  uint32_t track = 0;
  uint32_t folded = 0;
  uint64_t num_transactions = 0;
  uint64_t num_item_counts = 0;
  if (!ReadU32(file, &pos, &config.num_bits) ||
      !ReadU32(file, &pos, &config.num_hashes) ||
      !ReadU32(file, &pos, &hash_kind) || !ReadU64(file, &pos, &config.seed) ||
      !ReadU32(file, &pos, &track) || !ReadU32(file, &pos, &folded) ||
      !ReadU64(file, &pos, &num_transactions) ||
      !ReadU64(file, &pos, &num_item_counts)) {
    return Status::Corruption("truncated payload in " + path);
  }
  if (hash_kind > static_cast<uint32_t>(HashKind::kModulo)) {
    return Status::Corruption("unknown hash kind");
  }
  config.hash_kind = static_cast<HashKind>(hash_kind);
  config.track_item_counts = track != 0;

  Result<BloomHashFamily> family = BloomHashFamily::Create(
      config.num_bits, config.num_hashes, config.hash_kind, config.seed);
  if (!family.ok()) return family.status();
  if (folded > config.num_bits) {
    return Status::Corruption("fold target exceeds num_bits");
  }

  BbsIndex index(config, std::move(family).value(), folded);
  index.num_transactions_ = num_transactions;
  index.item_counts_.resize(num_item_counts);
  for (uint64_t& count : index.item_counts_) {
    if (!ReadU64(file, &pos, &count)) {
      return Status::Corruption("truncated item counts in " + path);
    }
  }
  size_t words_per_slice =
      (num_transactions + BitVector::kWordBits - 1) / BitVector::kWordBits;
  std::vector<BitVector::Word> slice_words(words_per_slice);
  ResidentSliceSource* res = index.source_->AsResident();
  for (uint32_t slice_idx = 0; slice_idx < index.num_bits(); ++slice_idx) {
    for (size_t w = 0; w < words_per_slice; ++w) {
      if (!ReadU64(file, &pos, &slice_words[w])) {
        return Status::Corruption("truncated slice data in " + path);
      }
    }
    // Bulk word-level assign: O(words) per slice instead of O(bits).
    BitVector& slice = res->slice(slice_idx);
    slice.AssignWords(slice_words.data(), slice_words.size(),
                      num_transactions);
    index.slice_popcount_[slice_idx] = slice.Count();
  }
  if (pos != file.size()) {
    return Status::Corruption("trailing bytes in " + path);
  }
  index.RecomputeSignatureBits();
  return index;
}

Result<BbsIndex> BbsIndex::OpenMmap(const std::string& path) {
  Result<std::shared_ptr<MmapFile>> map = MmapFile::Open(path);
  if (!map.ok()) return map.status();
  std::string_view file(reinterpret_cast<const char*>((*map)->data()),
                        (*map)->size());

  if (file.size() < sizeof(kMagicV2) ||
      std::memcmp(file.data(), kMagicV2, sizeof(kMagicV2)) != 0) {
    if (file.size() >= sizeof(kMagicV1) &&
        std::memcmp(file.data(), kMagicV1, sizeof(kMagicV1)) == 0) {
      return Status::InvalidArgument(
          path + " uses the v1 packed layout, which cannot be served in "
                 "place; rebuild the index (v2 aligns slices for mmap) or "
                 "use --index-backend=resident");
    }
    return Status::Corruption("bad magic in " + path);
  }

  // Validates magic/version/header CRC and every structural bound — in
  // particular that the file covers all slices, so demand faults can never
  // run past the mapping (truncation is a clean Corruption, not a SIGBUS).
  // Only metadata pages are touched; slice data faults in lazily and its
  // checksum is deliberately not verified here.
  V2Header header;
  BBSMINE_RETURN_IF_ERROR(ParseV2Header(file, path, &header));

  std::vector<uint64_t> item_counts;
  std::vector<size_t> popcounts;
  std::vector<uint32_t> signature_bits;
  BBSMINE_RETURN_IF_ERROR(ReadV2Arrays(file, path, header, &item_counts,
                                       &popcounts, &signature_bits));

  Result<BloomHashFamily> family = BloomHashFamily::Create(
      header.config.num_bits, header.config.num_hashes,
      header.config.hash_kind, header.config.seed);
  if (!family.ok()) return family.status();

  BbsIndex index(header.config, std::move(family).value(), header.folded);
  index.num_transactions_ = header.num_transactions;
  index.slice_popcount_ = std::move(popcounts);
  index.item_counts_ = std::move(item_counts);
  index.signature_bits_ = std::move(signature_bits);
  index.source_ = std::make_unique<MmapSliceSource>(
      *map, header.data_offset, header.stride_bytes, header.effective_bits(),
      header.words_per_slice, header.num_transactions);
  // Point queries touch scattered slices; suppress the kernel's default
  // readahead until a full scan announces itself (AdviseSequentialScan).
  (*map)->AdviseRandom(header.data_offset, file.size() - header.data_offset);
  return index;
}

bool BbsIndex::operator==(const BbsIndex& other) const {
  if (!(config_ == other.config_) || folded_bits_ != other.folded_bits_ ||
      num_transactions_ != other.num_transactions_ ||
      item_counts_ != other.item_counts_) {
    return false;
  }
  const size_t wps = WordsPerSlice();
  if (wps == 0) return true;
  for (uint32_t pos = 0; pos < num_bits(); ++pos) {
    if (std::memcmp(SliceWords(pos), other.SliceWords(pos),
                    wps * sizeof(Word)) != 0) {
      return false;
    }
  }
  return true;
}

}  // namespace bbsmine
