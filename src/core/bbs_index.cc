#include "core/bbs_index.h"

#include <algorithm>
#include <cassert>
#include <cstring>
#include <string_view>

#include "storage/transaction_db.h"
#include "util/bitvector_kernels.h"
#include "util/crc32.h"
#include "util/file_io.h"

namespace bbsmine {

using Word = BitVector::Word;

namespace {

constexpr char kMagic[8] = {'B', 'B', 'S', 'I', 'D', 'X', '0', '1'};
constexpr uint32_t kFormatVersion = 1;

void AppendU32(std::string* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) out->push_back(static_cast<char>(v >> (8 * i)));
}

void AppendU64(std::string* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) out->push_back(static_cast<char>(v >> (8 * i)));
}

bool ReadU32(std::string_view in, size_t* pos, uint32_t* v) {
  if (*pos + 4 > in.size()) return false;
  uint32_t out = 0;
  for (int i = 0; i < 4; ++i) {
    out |= static_cast<uint32_t>(static_cast<uint8_t>(in[*pos + i])) << (8 * i);
  }
  *pos += 4;
  *v = out;
  return true;
}

bool ReadU64(std::string_view in, size_t* pos, uint64_t* v) {
  if (*pos + 8 > in.size()) return false;
  uint64_t out = 0;
  for (int i = 0; i < 8; ++i) {
    out |= static_cast<uint64_t>(static_cast<uint8_t>(in[*pos + i])) << (8 * i);
  }
  *pos += 8;
  *v = out;
  return true;
}

}  // namespace

BbsIndex::BbsIndex(const BbsConfig& config, BloomHashFamily family,
                   uint32_t folded)
    : config_(config), family_(std::move(family)), folded_bits_(folded) {
  slices_.resize(num_bits());
  slice_popcount_.resize(num_bits(), 0);
}

Result<BbsIndex> BbsIndex::Create(const BbsConfig& config) {
  Result<BloomHashFamily> family = BloomHashFamily::Create(
      config.num_bits, config.num_hashes, config.hash_kind, config.seed);
  if (!family.ok()) return family.status();
  return BbsIndex(config, std::move(family).value(), /*folded=*/0);
}

void BbsIndex::Insert(const Itemset& items) {
  size_t position = num_transactions_;
  ++num_transactions_;
  for (BitVector& slice : slices_) slice.PushBack(false);
  signature_bits_.push_back(0);

  for (ItemId item : items) {
    for (uint32_t raw : family_.Positions(item)) {
      uint32_t pos = folded_bits_ != 0 ? raw % folded_bits_ : raw;
      if (!slices_[pos].Get(position)) {
        slices_[pos].Set(position);
        ++slice_popcount_[pos];
        ++signature_bits_.back();
      }
    }
    if (config_.track_item_counts) {
      if (item >= item_counts_.size()) item_counts_.resize(item + 1, 0);
      ++item_counts_[item];
    }
  }
}

void BbsIndex::InsertAll(const TransactionDatabase& db) {
  for (size_t i = 0; i < db.size(); ++i) Insert(db.At(i).items);
}

void BbsIndex::ItemPositions(ItemId item, std::vector<uint32_t>* out) const {
  out->clear();
  for (uint32_t raw : family_.Positions(item)) {
    out->push_back(folded_bits_ != 0 ? raw % folded_bits_ : raw);
  }
  std::sort(out->begin(), out->end());
  out->erase(std::unique(out->begin(), out->end()), out->end());
}

BitVector BbsIndex::MakeSignature(const Itemset& items) const {
  BitVector signature(num_bits());
  for (ItemId item : items) {
    for (uint32_t raw : family_.Positions(item)) {
      signature.Set(folded_bits_ != 0 ? raw % folded_bits_ : raw);
    }
  }
  return signature;
}

void BbsIndex::CollectPositions(const Itemset& items,
                                std::vector<uint32_t>* positions) const {
  positions->clear();
  for (ItemId item : items) {
    for (uint32_t raw : family_.Positions(item)) {
      positions->push_back(folded_bits_ != 0 ? raw % folded_bits_ : raw);
    }
  }
  std::sort(positions->begin(), positions->end());
  positions->erase(std::unique(positions->begin(), positions->end()),
                   positions->end());
  // Sparsest slice first: ANDing the most selective slice early shrinks the
  // intermediate result fastest.
  std::sort(positions->begin(), positions->end(),
            [this](uint32_t a, uint32_t b) {
              return slice_popcount_[a] < slice_popcount_[b];
            });
}

// Words per block of the multi-way AND below: 1 KiB-word blocks keep a
// handful of slice streams cache-resident while giving the early-abort a
// fine enough grain to pay off.
static constexpr size_t kCountBlockWords = 1024;

size_t BbsIndex::CountWithSeed(const std::vector<uint32_t>& positions,
                               const BitVector* seed, BitVector* result,
                               IoStats* io, uint64_t min_count) const {
  BitVector local;
  BitVector& out = result != nullptr ? *result : local;

  if (positions.empty()) {
    // Empty itemset: every transaction matches (optionally constrained).
    if (seed != nullptr) {
      out = *seed;
    } else {
      out = BitVector(num_transactions_);
      out.SetAll();
    }
    return out.Count();
  }

  // One blocked pass over all selected slices at once instead of k full
  // sweeps: per block, the running AND is reduced while the streams are
  // still cache-hot. After each block the loop aborts as soon as even an
  // all-ones remainder could not lift the count back to min_count — the
  // dense early-abort the filter phase relies on. On abort `out` is only
  // partially written, which the CountItemSetAtLeast contract allows.
  const size_t k = positions.size();
  const Word* seed_words = seed != nullptr ? seed->words().data() : nullptr;
  // Stack-friendly operand table; queries rarely select more than a few
  // dozen slices, but signatures of long itemsets can.
  std::vector<const Word*> srcs(k);
  for (size_t i = 0; i < k; ++i) {
    srcs[i] = slices_[positions[i]].words().data();
  }

  out.Resize(num_transactions_);
  Word* dst = out.MutableWords();
  const size_t n_words = out.num_words();
  std::vector<size_t> touched(k, 0);  // words streamed per slice

  size_t count = 0;
  for (size_t base = 0; base < n_words; base += kCountBlockWords) {
    const size_t len = std::min(kCountBlockWords, n_words - base);
    uint64_t block;
    size_t op;
    if (seed_words != nullptr) {
      block = kernels::AssignAndCount(dst + base, seed_words + base,
                                      srcs[0] + base, len);
      touched[0] += len;
      op = 1;
    } else if (k >= 2) {
      block = kernels::AssignAndCount(dst + base, srcs[0] + base,
                                      srcs[1] + base, len);
      touched[0] += len;
      touched[1] += len;
      op = 2;
    } else {
      block = kernels::AssignAndCount(dst + base, srcs[0] + base,
                                      srcs[0] + base, len);
      touched[0] += len;
      op = 1;
    }
    // A block whose running AND goes all-zero skips its remaining slices:
    // further ANDs cannot resurrect bits and dst is already correct there.
    for (; op < k && block != 0; ++op) {
      block = kernels::AndCount(dst + base, srcs[op] + base, len);
      touched[op] += len;
    }
    count += static_cast<size_t>(block);

    const size_t bits_done = std::min((base + len) * BitVector::kWordBits,
                                      num_transactions_);
    const size_t remaining_bits = num_transactions_ - bits_done;
    if (count + remaining_bits < min_count) break;
  }

  if (io != nullptr) {
    // Charge only what was actually streamed (the abort above may leave
    // whole slice suffixes unread), capped at the slice's serialized size.
    for (size_t i = 0; i < k; ++i) {
      uint64_t bytes = std::min<uint64_t>(
          static_cast<uint64_t>(touched[i]) * sizeof(Word), SliceBytes());
      io->sequential_reads += BlocksFor(bytes, 4096);
      io->slice_words_touched += touched[i];
    }
  }
  return count;
}

size_t BbsIndex::CountItemSet(const Itemset& items, BitVector* result,
                              IoStats* io) const {
  // Per-call scratch keeps the const query path thread-safe (a shared
  // mutable buffer here would race concurrent queries).
  std::vector<uint32_t> positions;
  CollectPositions(items, &positions);
  return CountWithSeed(positions, /*seed=*/nullptr, result, io);
}

size_t BbsIndex::CountItemSetAtLeast(const Itemset& items, uint64_t tau,
                                     BitVector* result, IoStats* io) const {
  std::vector<uint32_t> positions;
  CollectPositions(items, &positions);
  if (!positions.empty()) {
    // The sparsest selected slice (positions are popcount-ordered) bounds
    // the estimate from above: below tau means no AND is needed at all.
    size_t bound = slice_popcount_[positions.front()];
    if (bound < tau) {
      if (io != nullptr) {
        io->sequential_reads += BlocksFor(SliceBytes(), 4096);
      }
      return bound;
    }
  }
  return CountWithSeed(positions, /*seed=*/nullptr, result, io,
                       /*min_count=*/tau);
}

size_t BbsIndex::CountItemSetConstrained(const Itemset& items,
                                         const BitVector& constraint,
                                         BitVector* result,
                                         IoStats* io) const {
  assert(constraint.size() == num_transactions_);
  std::vector<uint32_t> positions;
  CollectPositions(items, &positions);
  return CountWithSeed(positions, &constraint, result, io);
}

size_t BbsIndex::AndItemSlices(ItemId item, BitVector* result,
                               IoStats* io) const {
  assert(result->size() == num_transactions_);
  std::vector<uint32_t> positions;
  ItemPositions(item, &positions);
  // ANDing zero slices leaves `result` unchanged, so the count is the
  // vector's own popcount — not 0.
  if (positions.empty()) return result->Count();
  size_t count = 0;
  size_t slices_read = 0;
  for (size_t i = 0; i < positions.size(); ++i) {
    count = result->AndWithCount(slices_[positions[i]]);
    ++slices_read;
    if (count == 0) break;
  }
  if (io != nullptr) {
    // Charge only the slices the loop actually streamed; the count == 0
    // break above leaves the rest unread.
    io->sequential_reads += slices_read * BlocksFor(SliceBytes(), 4096);
  }
  return count;
}

uint64_t BbsIndex::ExactItemCount(ItemId item) const {
  assert(config_.track_item_counts);
  return item < item_counts_.size() ? item_counts_[item] : 0;
}

BbsIndex BbsIndex::Fold(uint32_t new_bits) const {
  assert(new_bits > 0 && new_bits <= num_bits());
  BbsIndex folded(config_,
                  *BloomHashFamily::Create(config_.num_bits,
                                           config_.num_hashes,
                                           config_.hash_kind, config_.seed),
                  new_bits);
  folded.num_transactions_ = num_transactions_;
  for (uint32_t pos = 0; pos < new_bits; ++pos) {
    folded.slices_[pos].Resize(num_transactions_);
  }
  for (uint32_t pos = 0; pos < num_bits(); ++pos) {
    folded.slices_[pos % new_bits].OrWith(slices_[pos]);
  }
  for (uint32_t pos = 0; pos < new_bits; ++pos) {
    folded.slice_popcount_[pos] = folded.slices_[pos].Count();
  }
  folded.item_counts_ = item_counts_;
  folded.RecomputeSignatureBits();
  return folded;
}

void BbsIndex::RecomputeSignatureBits() {
  signature_bits_.assign(num_transactions_, 0);
  std::vector<uint32_t> set_positions;
  for (uint32_t pos = 0; pos < num_bits(); ++pos) {
    set_positions.clear();
    set_positions.reserve(slice_popcount_[pos]);
    const BitVector& slice = slices_[pos];
    slice.AppendSetBits(&set_positions);
    for (uint32_t t : set_positions) ++signature_bits_[t];
  }
}

size_t BbsIndex::MemoryUsage() const {
  size_t total = 0;
  for (const BitVector& slice : slices_) total += slice.MemoryUsage();
  return total;
}

void BbsIndex::ChargeFullScan(IoStats* io, uint32_t block_size) const {
  if (io != nullptr) {
    io->sequential_reads += BlocksFor(SerializedBytes(), block_size);
  }
}

std::string BbsIndex::Serialize() const {
  std::string payload;
  AppendU32(&payload, config_.num_bits);
  AppendU32(&payload, config_.num_hashes);
  AppendU32(&payload, static_cast<uint32_t>(config_.hash_kind));
  AppendU64(&payload, config_.seed);
  AppendU32(&payload, config_.track_item_counts ? 1 : 0);
  AppendU32(&payload, folded_bits_);
  AppendU64(&payload, num_transactions_);
  AppendU64(&payload, item_counts_.size());
  for (uint64_t count : item_counts_) AppendU64(&payload, count);
  for (const BitVector& slice : slices_) {
    for (BitVector::Word word : slice.words()) AppendU64(&payload, word);
  }

  std::string file;
  file.append(kMagic, sizeof(kMagic));
  AppendU32(&file, kFormatVersion);
  AppendU32(&file, Crc32(payload));
  file += payload;
  return file;
}

Status BbsIndex::Save(const std::string& path) const {
  return WriteBinaryFile(path, Serialize());
}

Result<BbsIndex> BbsIndex::Load(const std::string& path) {
  Result<std::string> contents = ReadBinaryFile(path);
  if (!contents.ok()) return contents.status();
  return Deserialize(*contents, path);
}

Result<BbsIndex> BbsIndex::Deserialize(std::string_view file,
                                       const std::string& path) {
  if (file.size() < sizeof(kMagic) + 8 ||
      std::memcmp(file.data(), kMagic, sizeof(kMagic)) != 0) {
    return Status::Corruption("bad magic in " + path);
  }
  size_t pos = sizeof(kMagic);
  uint32_t version = 0;
  uint32_t expected_crc = 0;
  if (!ReadU32(file, &pos, &version) || !ReadU32(file, &pos, &expected_crc)) {
    return Status::Corruption("truncated header in " + path);
  }
  if (version != kFormatVersion) {
    return Status::Corruption("unsupported format version " +
                              std::to_string(version));
  }
  if (Crc32(std::string_view(file.data() + pos, file.size() - pos)) !=
      expected_crc) {
    return Status::Corruption("checksum mismatch in " + path);
  }

  BbsConfig config;
  uint32_t hash_kind = 0;
  uint32_t track = 0;
  uint32_t folded = 0;
  uint64_t num_transactions = 0;
  uint64_t num_item_counts = 0;
  if (!ReadU32(file, &pos, &config.num_bits) ||
      !ReadU32(file, &pos, &config.num_hashes) ||
      !ReadU32(file, &pos, &hash_kind) || !ReadU64(file, &pos, &config.seed) ||
      !ReadU32(file, &pos, &track) || !ReadU32(file, &pos, &folded) ||
      !ReadU64(file, &pos, &num_transactions) ||
      !ReadU64(file, &pos, &num_item_counts)) {
    return Status::Corruption("truncated payload in " + path);
  }
  if (hash_kind > static_cast<uint32_t>(HashKind::kModulo)) {
    return Status::Corruption("unknown hash kind");
  }
  config.hash_kind = static_cast<HashKind>(hash_kind);
  config.track_item_counts = track != 0;

  Result<BloomHashFamily> family = BloomHashFamily::Create(
      config.num_bits, config.num_hashes, config.hash_kind, config.seed);
  if (!family.ok()) return family.status();
  if (folded > config.num_bits) {
    return Status::Corruption("fold target exceeds num_bits");
  }

  BbsIndex index(config, std::move(family).value(), folded);
  index.num_transactions_ = num_transactions;
  index.item_counts_.resize(num_item_counts);
  for (uint64_t& count : index.item_counts_) {
    if (!ReadU64(file, &pos, &count)) {
      return Status::Corruption("truncated item counts in " + path);
    }
  }
  size_t words_per_slice =
      (num_transactions + BitVector::kWordBits - 1) / BitVector::kWordBits;
  std::vector<BitVector::Word> slice_words(words_per_slice);
  for (uint32_t slice_idx = 0; slice_idx < index.num_bits(); ++slice_idx) {
    for (size_t w = 0; w < words_per_slice; ++w) {
      if (!ReadU64(file, &pos, &slice_words[w])) {
        return Status::Corruption("truncated slice data in " + path);
      }
    }
    // Bulk word-level assign: O(words) per slice instead of O(bits).
    BitVector& slice = index.slices_[slice_idx];
    slice.AssignWords(slice_words.data(), slice_words.size(),
                      num_transactions);
    index.slice_popcount_[slice_idx] = slice.Count();
  }
  if (pos != file.size()) {
    return Status::Corruption("trailing bytes in " + path);
  }
  index.RecomputeSignatureBits();
  return index;
}

bool BbsIndex::operator==(const BbsIndex& other) const {
  return config_ == other.config_ && folded_bits_ == other.folded_bits_ &&
         num_transactions_ == other.num_transactions_ &&
         slices_ == other.slices_ && item_counts_ == other.item_counts_;
}

}  // namespace bbsmine
