#include "core/adhoc.h"

#include "core/mining_types.h"
#include "core/refine.h"

namespace bbsmine {

BitVector MakeConstraintSlice(
    const TransactionDatabase& db,
    const std::function<bool(const Transaction&)>& predicate, IoStats* io) {
  BitVector slice(db.size());
  size_t position = 0;
  db.ForEach(io, [&](const Transaction& txn) {
    if (predicate(txn)) slice.Set(position);
    ++position;
  });
  return slice;
}

AdhocQueryResult CountPatternExact(const TransactionDatabase& db,
                                   const BbsIndex& bbs, const Itemset& items,
                                   const BitVector* constraint) {
  AdhocQueryResult result;
  BitVector matches;
  if (constraint != nullptr) {
    result.estimate =
        bbs.CountItemSetConstrained(items, *constraint, &matches, &result.io);
  } else {
    result.estimate = bbs.CountItemSet(items, &matches, &result.io);
  }

  MineStats probe_stats;
  result.exact = ProbeCount(db, items, matches, /*cache=*/nullptr,
                            &probe_stats);
  result.probed_transactions = probe_stats.probed_transactions;
  result.io += probe_stats.io;
  return result;
}

}  // namespace bbsmine
