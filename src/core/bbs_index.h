// The Bit-Sliced Bloom-Filtered Signature File (BBS) — the paper's core
// contribution (Section 2).
//
// Every transaction is encoded as an m-bit Bloom filter of its items (k hash
// functions per item); the file stores the *transpose*: m bit-slices, each
// with one bit per transaction. Counting the occurrences of an itemset
// (algorithm CountItemSet, Figure 1 of the paper) ANDs the slices selected by
// the itemset's query vector and popcounts the result. The count never
// misses a containing transaction (Lemma 3) and never underestimates
// (Lemma 4); it may overestimate (false drops).
//
// The structure is dynamic and persistent: Insert appends one transaction
// (bit per slice) without rebuilding anything, and Save/Load round-trips the
// index through a checksummed file.
//
// Slice words live behind a SliceSource (core/slice_source.h): the resident
// backend (heap BitVectors, mutable) or the mmap backend (zero-copy over the
// v2 aligned on-disk layout, read-only — OpenMmap). The query path is
// backend-agnostic and bit-identical across backends; only the resident
// backend supports Insert.
//
// Thread safety: all const methods (the whole query path — CountItemSet and
// friends, ItemPositions, AndItemSlices, Fold, Save) are safe to call
// concurrently from any number of threads; they share no mutable state.
// Insert/InsertAll require exclusive access, as usual.

#ifndef BBSMINE_CORE_BBS_INDEX_H_
#define BBSMINE_CORE_BBS_INDEX_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "core/bbs_config.h"
#include "core/bloom_hash.h"
#include "core/slice_source.h"
#include "storage/transaction.h"
#include "util/bitvector.h"
#include "util/iomodel.h"
#include "util/status.h"

namespace bbsmine {

/// The bit-sliced Bloom-filtered signature file.
class BbsIndex {
 public:
  /// Validates `config` and constructs an empty index (resident backend).
  static Result<BbsIndex> Create(const BbsConfig& config);

  // Deep-copies resident slice data; mmap copies share the file mapping
  // (SliceSource::Clone), which is how snapshots of sealed mmap segments
  // stay O(1).
  BbsIndex(const BbsIndex& other);
  BbsIndex& operator=(const BbsIndex& other);
  BbsIndex(BbsIndex&&) = default;
  BbsIndex& operator=(BbsIndex&&) = default;

  const BbsConfig& config() const { return config_; }

  /// Effective number of bit-slices: config().num_bits normally, or the fold
  /// target after Fold().
  uint32_t num_bits() const {
    return folded_bits_ != 0 ? folded_bits_ : config_.num_bits;
  }

  /// True if this index is a folded (MemBBS) view produced by Fold().
  bool is_folded() const { return folded_bits_ != 0; }

  /// Number of transactions inserted.
  size_t num_transactions() const { return num_transactions_; }

  /// True when the slice words are heap-resident (and therefore mutable).
  bool resident() const { return source_->AsResident() != nullptr; }

  /// Backend name as reported by stats: "resident" or "mmap".
  const char* backend_name() const { return source_->name(); }

  /// Heap bytes pinned by the slice data: the full slice payload for the
  /// resident backend, 0 for mmap (pages are clean, file-backed, and
  /// reclaimable by the OS).
  size_t ApproxResidentBytes() const {
    return source_->ApproxResidentBytes();
  }

  /// Appends one transaction. `items` must be canonical.
  /// Precondition: resident().
  void Insert(const Itemset& items);

  /// Bulk helper: inserts every transaction of `db` in order.
  void InsertAll(const class TransactionDatabase& db);

  /// The effective hash positions (deduplicated, ascending) of `item`.
  void ItemPositions(ItemId item, std::vector<uint32_t>* out) const;

  /// Builds the m-bit signature / query vector of a canonical itemset
  /// (the bit at every hash position of every item is set).
  BitVector MakeSignature(const Itemset& items) const;

  /// Bit-slice at position `pos` (one bit per transaction). The view
  /// borrows the backend's words and stays valid while the index is alive.
  SliceView Slice(uint32_t pos) const { return source_->View(pos); }

  /// Cached popcount of slice `pos`.
  size_t SlicePopcount(uint32_t pos) const { return slice_popcount_[pos]; }

  /// Algorithm CountItemSet (paper Figure 1): estimated number of
  /// transactions containing `items`. Never less than the true support.
  /// If `result` is non-null it receives the resulting transaction bit
  /// vector (bit t set => transaction t is a potential container).
  /// If `io` is non-null, one sequential slice read is charged per slice
  /// touched (for the non-memory-resident cost model). Backends that do
  /// real I/O (mmap) skip the synthetic charge — see slice_source.h.
  size_t CountItemSet(const Itemset& items, BitVector* result = nullptr,
                      IoStats* io = nullptr) const;

  /// Threshold-aware CountItemSet: returns the exact estimate when it is at
  /// least `tau`; otherwise returns *some* value below tau (the computation
  /// aborts as soon as the estimate provably cannot reach the threshold,
  /// and `result` is left unspecified). Used by the filtering phase, which
  /// only distinguishes "reaches tau" from "does not".
  size_t CountItemSetAtLeast(const Itemset& items, uint64_t tau,
                             BitVector* result = nullptr,
                             IoStats* io = nullptr) const;

  /// CountItemSet restricted by a constraint slice (Section 3.4): only
  /// transactions whose bit is set in `constraint` are counted.
  size_t CountItemSetConstrained(const Itemset& items,
                                 const BitVector& constraint,
                                 BitVector* result = nullptr,
                                 IoStats* io = nullptr) const;

  /// Incremental extension used by the recursive miners: ANDs the slices of
  /// `item` into `result` (which must have num_transactions() bits) and
  /// returns the popcount of the updated vector. Equivalent to CountItemSet
  /// of (parent itemset + item) when `result` holds the parent's vector.
  size_t AndItemSlices(ItemId item, BitVector* result,
                       IoStats* io = nullptr) const;

  /// Whether exact 1-itemset counts are maintained (DualFilter support).
  bool tracks_item_counts() const { return config_.track_item_counts; }

  /// Number of distinct bits set in transaction `position`'s signature.
  /// Maintained on Insert; used by the approximate miner's false-drop
  /// probability model (core/approximate.h).
  uint32_t SignatureBits(size_t position) const {
    return signature_bits_[position];
  }

  /// Exact number of transactions containing `item` (0 for unseen items).
  /// Requires tracks_item_counts().
  uint64_t ExactItemCount(ItemId item) const;

  /// Builds a folded MemBBS view with `new_bits` slices: the slice at
  /// position p of this index is folded into position (p % new_bits)
  /// (preprocessing phase of the adaptive filter, Section 3.1). Counts from
  /// the folded index are still upper bounds on true support. The result is
  /// always resident — folding is the compaction path for cold segments.
  /// Precondition: 0 < new_bits <= num_bits().
  BbsIndex Fold(uint32_t new_bits) const;

  /// Deep copy with a resident backend (identity copy when already
  /// resident). The adoption path for mutable tails built from mmap files.
  BbsIndex Materialize() const;

  /// Size of one serialized slice, in bytes.
  uint64_t SliceBytes() const { return (num_transactions_ + 7) / 8; }

  /// Total serialized size of all slices, in bytes.
  uint64_t SerializedBytes() const {
    return static_cast<uint64_t>(num_bits()) * SliceBytes();
  }

  /// Approximate resident memory of the slice data, in bytes.
  size_t MemoryUsage() const { return source_->ApproxResidentBytes(); }

  /// Charges a full sequential pass over all slices to `io` (resident cost
  /// model) and hints the backend that a sequential scan is coming (mmap
  /// readahead).
  void ChargeFullScan(IoStats* io, uint32_t block_size = 4096) const;

  /// Serializes the index into the v2 aligned on-disk byte layout
  /// (docs/FORMATS.md): checksummed metadata, then each slice's word array
  /// 64-byte-aligned so the file can be mmap'd and fed to the SIMD kernels
  /// directly. Save is Serialize + one atomic file write; exposed
  /// separately so multi-file containers (SegmentedBbs manifests,
  /// checkpoints) can checksum and write segment images themselves.
  std::string Serialize() const;

  /// Parses bytes produced by Serialize — the v2 aligned layout or the
  /// legacy v1 packed layout — into a resident index. `context` names the
  /// source (file path) in error messages.
  static Result<BbsIndex> Deserialize(std::string_view file,
                                      const std::string& context);

  /// Writes the index to `path` (atomic replace; see util/file_io.h).
  Status Save(const std::string& path) const;

  /// Reads an index previously written by Save (resident backend).
  static Result<BbsIndex> Load(const std::string& path);

  /// Opens a v2 index file zero-copy via mmap. Only the metadata prefix is
  /// validated and faulted in (magic, version, header checksum, structural
  /// bounds — including that the file covers every slice, so a truncated
  /// map fails cleanly instead of SIGBUSing); slice pages fault in on
  /// demand. v1 files are rejected: the packed layout cannot be served
  /// in place (rebuild or load resident).
  static Result<BbsIndex> OpenMmap(const std::string& path);

  /// Structural equality (config, transactions, slice contents); backend
  /// agnostic, so an mmap'd index equals its resident twin.
  bool operator==(const BbsIndex& other) const;

 private:
  BbsIndex(const BbsConfig& config, BloomHashFamily family, uint32_t folded);

  /// Word array of slice `pos`, whatever the backend.
  const BitVector::Word* SliceWords(uint32_t pos) const {
    return source_->Words(pos);
  }

  /// Words per slice: ceil(num_transactions / 64).
  size_t WordsPerSlice() const {
    return (num_transactions_ + BitVector::kWordBits - 1) /
           BitVector::kWordBits;
  }

  /// Per-transaction signature popcounts recomputed from the slice data.
  std::vector<uint32_t> ComputeSignatureBits() const;

  /// Rebuilds signature_bits_ by summing slice columns (after Fold/Load).
  void RecomputeSignatureBits();

  /// Collects the distinct effective slice positions of `items`, sorted by
  /// ascending slice popcount (sparsest-first AND order).
  void CollectPositions(const Itemset& items,
                        std::vector<uint32_t>* positions) const;

  /// Shared implementation of the CountItemSet overloads. The AND loop
  /// aborts once the running count drops below `min_count` (the running
  /// count only shrinks, so the final estimate is provably below it too).
  size_t CountWithSeed(const std::vector<uint32_t>& positions,
                       const BitVector* seed, BitVector* result,
                       IoStats* io, uint64_t min_count = 1) const;

  BbsConfig config_;
  BloomHashFamily family_;
  uint32_t folded_bits_;  // 0 = unfolded
  size_t num_transactions_ = 0;
  std::unique_ptr<SliceSource> source_;  // owns the num_bits() slices
  std::vector<size_t> slice_popcount_;   // cached popcounts
  std::vector<uint64_t> item_counts_;    // exact 1-itemset counts (optional)
  std::vector<uint32_t> signature_bits_; // per-transaction signature popcount
};

}  // namespace bbsmine

#endif  // BBSMINE_CORE_BBS_INDEX_H_
