// Configuration of a BBS (Bit-Sliced Bloom-Filtered Signature File) index.

#ifndef BBSMINE_CORE_BBS_CONFIG_H_
#define BBSMINE_CORE_BBS_CONFIG_H_

#include <cstdint>

namespace bbsmine {

/// The hash family used to map items to bit positions.
enum class HashKind : uint8_t {
  /// Disjoint 32-bit groups of the MD5 digest of the item name, extended by
  /// hashing the name concatenated with itself when more groups are needed —
  /// exactly the construction of the paper (Section 4).
  kMd5 = 0,
  /// Fast multiply-shift mixing of the item id (ablation alternative; not in
  /// the paper, provided to measure whether MD5's quality matters).
  kMultiplyShift = 1,
  /// h_j(x) = (x + j) mod m. Reproduces the paper's running example
  /// (Section 2.1, h(x) = x mod 8 with one hash function); intended for
  /// examples and tests, not production use.
  kModulo = 2,
};

/// Parameters of a BBS index.
struct BbsConfig {
  /// Size of the per-transaction bit vector (m in the paper). The paper
  /// sweeps 400..6400 and settles on 1600 as the default for T10.I10.D10K.
  uint32_t num_bits = 1600;

  /// Number of independent hash functions per item (k).
  uint32_t num_hashes = 4;

  /// Hash family.
  HashKind hash_kind = HashKind::kMd5;

  /// Seed mixed into the hash family (lets tests build independent indexes).
  uint64_t seed = 0;

  /// Whether the index maintains exact occurrence counts of all 1-itemsets.
  /// Required by the DualFilter schemes (Section 3.1: "we only maintain the
  /// counts of all 1-itemsets"). Costs 8 bytes per distinct item.
  bool track_item_counts = true;

  bool operator==(const BbsConfig& other) const = default;
};

}  // namespace bbsmine

#endif  // BBSMINE_CORE_BBS_CONFIG_H_
